#!/usr/bin/env python3
"""Back-compat entry point for the fault-path async-signal-safety
lint.

The assembly-walking linter that used to live here is now the
`sigsafe` contract of the general path-contracts engine in
tools/pathlint/, which additionally proves the fault path's stack
bound, allocation-freedom and blocking discipline (see
tools/pathlint_contracts.ini and DESIGN.md §15).  This shim keeps
the historical CLI working:

    tools/sigsafe_lint.py [--repo DIR] [--strict] [--verbose]

and runs exactly the sigsafe contract against the same
tools/sigsafe_allowlist.txt, with the same exit codes.  New callers
should invoke the engine directly:

    python3 tools/pathlint --strict            # all contracts
    python3 tools/pathlint --contract sigsafe  # just this one
"""

import argparse
import importlib.util
import os
import sys

_TOOLS = os.path.dirname(os.path.abspath(__file__))


def _load_engine_cli():
    # This file runs as a script (module name "__main__"), so the
    # engine's tools/pathlint/__main__.py must be loaded under a
    # distinct name rather than imported.
    spec = importlib.util.spec_from_file_location(
        "pathlint_cli",
        os.path.join(_TOOLS, "pathlint", "__main__.py"))
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def main():
    ap = argparse.ArgumentParser(
        description="Async-signal-safety lint for the SIGSEGV fault "
                    "path (thin wrapper over tools/pathlint).")
    ap.add_argument("--repo", default=os.path.dirname(_TOOLS),
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--compiler",
                    default=os.environ.get("CXX", "g++"))
    ap.add_argument("--allowlist", default=None,
                    help="must equal the contract's configured "
                         "allowlist if given")
    ap.add_argument("--strict", action="store_true",
                    help="stale allowlist entries fail the lint "
                         "(CI mode)")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()

    if args.allowlist is not None:
        configured = os.path.join(args.repo, "tools",
                                  "sigsafe_allowlist.txt")
        if os.path.abspath(args.allowlist) != \
                os.path.abspath(configured):
            sys.exit("sigsafe_lint: --allowlist is fixed to "
                     "tools/sigsafe_allowlist.txt by the sigsafe "
                     "contract; edit tools/pathlint_contracts.ini "
                     "to point elsewhere")

    argv = ["--repo", args.repo, "--compiler", args.compiler,
            "--contract", "sigsafe"]
    if args.strict:
        argv.append("--strict")
    if args.verbose:
        argv.append("--verbose")
    return _load_engine_cli().main(argv)


if __name__ == "__main__":
    sys.exit(main())
