#!/usr/bin/env python3
"""Async-signal-safety lint for the SIGSEGV fault path.

The runtime's SIGSEGV handler (src/runtime/fault_dispatch.cc) IS the
write-admission path: it runs the dirty-budget controller, enqueues
copier work, and may block on a condition variable.  POSIX allows
almost none of libc in a signal handler, so every call the handler
can transitively reach must be either async-signal-safe, or a
deliberate, documented exception (the paper's runtime design accepts
taking the shard lock in the handler; see DESIGN.md §8).

This linter builds the handler's transitive call graph from compiler
assembly output (`g++ -S`, no clang needed) and fails when it finds a
call to a known async-signal-unsafe function that is not covered by
an entry in tools/sigsafe_allowlist.txt.  The allowlist is per call
site (caller -> callee) and every entry carries a written
justification, so the audited surface can only shrink deliberately:
a new malloc/lock/IO call on the fault path fails CI until someone
either removes it or argues for it in the allowlist.

Mechanics
---------
* Each listed translation unit is compiled with the release flags to
  assembly; `.type sym, @function` / `.size` brackets delimit
  functions, `call`/tail-`jmp` instructions provide edges.  Compiling
  at -O2 matters: the graph reflects what actually remains after
  inlining, which is the code the handler really executes.
* Virtual calls compile to indirect `call *...` instructions that
  name no symbol.  The allowlist's `virtual:` lines resolve the known
  interface seams (PagingBackend, CopierClient, PersistClient,
  FunctionRef) to their runtime implementations so the walk continues
  through them; any indirect call in a function with no `virtual:`
  entry is itself reported, so a new virtual seam cannot slip through
  unaudited.
* Allowlist entries that no longer match anything are reported as
  stale (exit status 1 under --strict, the CI mode) so dead
  exceptions get pruned instead of accumulating.

Usage:
    tools/sigsafe_lint.py [--repo DIR] [--strict] [--verbose]
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

# Translation units that can contain code reachable from the SIGSEGV
# handler.  common/logging is included so fatal()/panic() bodies are
# walked rather than treated as opaque externals.
FAULT_PATH_SOURCES = [
    "src/runtime/fault_dispatch.cc",
    "src/runtime/region.cc",
    "src/runtime/copier_pool.cc",
    "src/runtime/meta_sidecar.cc",
    "src/core/controller.cc",
    "src/core/recency.cc",
    "src/core/dirty_tracker.cc",
    "src/core/budget_pool.cc",
    "src/common/logging.cc",
    "src/common/checksum.cc",
    "src/common/pagezip.cc",
]

COMPILE_FLAGS = ["-std=c++20", "-O2", "-Wall", "-S", "-o", "-"]

ROOT_PATTERN = "segvHandler"

# The copy-out codec is flush-path-only BY DESIGN: compressed persists
# are confined to the copier threads, never the SIGSEGV admission
# path (DESIGN.md §11).  Any pagezip symbol reachable from the
# handler is reported as a hard failure with NO allowlist escape —
# unlike the unsafe-libc findings below, this one cannot be argued
# into sigsafe_allowlist.txt.
CODEC_PATTERN = "pagezip"

# Known async-signal-UNSAFE callees, matched against the raw (mangled
# or C) symbol name.  Prefixes cover mangling families (operator
# new/delete with/without alignment or nothrow).  Note what is NOT
# here: pwrite/pread/mprotect/fdatasync/sigaction/raise/abort and
# sched_yield are all on the POSIX async-signal-safe list.
UNSAFE_PREFIXES = [
    "_Znw",  # operator new
    "_Zna",  # operator new[]
    "_Zdl",  # operator delete
    "_Zda",  # operator delete[]
]

UNSAFE_EXACT = {
    "malloc", "calloc", "realloc", "free",
    "posix_memalign", "aligned_alloc",
    "pthread_mutex_lock", "pthread_mutex_trylock",
    "pthread_mutex_unlock",
    "pthread_cond_wait", "pthread_cond_timedwait",
    "pthread_cond_signal", "pthread_cond_broadcast",
    "printf", "fprintf", "vfprintf", "vsnprintf", "snprintf",
    "puts", "fputs", "fwrite", "fflush", "fputc",
    "exit", "atexit", "getenv",
    "__cxa_throw", "__cxa_allocate_exception", "__cxa_rethrow",
    "__cxa_guard_acquire", "__cxa_guard_release",
    "syslog",
}

# Mangled-substring classes: anything calling out-of-line into
# std::string or ostream machinery may allocate or take libio locks.
UNSAFE_SUBSTRINGS = [
    ("basic_string", "std::string call (may allocate)"),
    ("basic_ostream", "iostream call (locks/allocates)"),
    ("_ZSt4cerr", "iostream global"),
    ("_ZSt4cout", "iostream global"),
    ("__throw_", "libstdc++ throw helper (allocates)"),
    ("condition_variable",
     "std::condition_variable call (pthread_cond under the hood)"),
]

CALL_RE = re.compile(r"^\s+call\s+([^\s]+)")
JMP_RE = re.compile(r"^\s+jmp\s+([^\s*]+)")
TYPE_RE = re.compile(r'^\s+\.type\s+([^\s,]+),\s*@function')
SIZE_RE = re.compile(r"^\s+\.size\s+([^\s,]+),")


def run(cmd, **kw):
    return subprocess.run(cmd, check=True, capture_output=True,
                          text=True, **kw)


def demangle(symbols):
    """Map raw symbol -> demangled name (identity for C symbols)."""
    if not symbols:
        return {}
    ordered = sorted(symbols)
    out = run(["c++filt"], input="\n".join(ordered) + "\n").stdout
    return dict(zip(ordered, out.splitlines()))


def strip_plt(sym):
    return sym[:-4] if sym.endswith("@PLT") else sym


def parse_assembly(asm_text):
    """Return {function_symbol: ([callee, ...], indirect_count)}."""
    graph = {}
    current = None
    pending_types = set()
    for line in asm_text.splitlines():
        m = TYPE_RE.match(line)
        if m:
            pending_types.add(m.group(1))
            continue
        if current is None:
            # A function body begins at its label.
            label = line.split(":")[0].strip()
            if label in pending_types:
                current = label
                graph.setdefault(current, ([], 0))
            continue
        m = SIZE_RE.match(line)
        if m and m.group(1) == current:
            current = None
            continue
        m = CALL_RE.match(line)
        if not m:
            m = JMP_RE.match(line)
            # Only symbolic tail jumps count; local labels (.L*) and
            # computed jumps are control flow inside the function.
            if m and m.group(1).startswith(".L"):
                m = None
        if m:
            target = strip_plt(m.group(1))
            callees, indirect = graph[current]
            if target.startswith("*"):
                graph[current] = (callees, indirect + 1)
            else:
                callees.append(target)
    return graph


def classify_unsafe(symbol):
    """Return a reason string if `symbol` is async-signal-unsafe."""
    if symbol in UNSAFE_EXACT:
        return "async-signal-unsafe libc/pthread call"
    for prefix in UNSAFE_PREFIXES:
        if symbol.startswith(prefix):
            return "heap allocation (operator new/delete)"
    for needle, reason in UNSAFE_SUBSTRINGS:
        if needle in symbol:
            return reason
    return None


class Allowlist:
    """tools/sigsafe_allowlist.txt:

    allow: <caller-re> -> <callee-re> :: <justification>
    virtual: <caller-re> -> <impl-re> :: <why this target set>

    Both sides are Python regexes searched against demangled names
    (or raw names for C symbols) — escape literal parens.
    """

    def __init__(self, path):
        self.allows = []   # (caller_re, callee_re, why, [hits])
        self.virtuals = []  # (caller_re, target_re, why, [hits])
        with open(path, encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, 1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                kind, _, rest = line.partition(":")
                kind = kind.strip()
                if kind not in ("allow", "virtual"):
                    sys.exit(f"{path}:{lineno}: unknown directive "
                             f"'{kind}'")
# Separators need surrounding spaces: the name regexes
                # themselves contain '::' (C++ scope) and may contain
                # '->'.
                spec, sep, why = rest.partition(" :: ")
                if not sep or not why.strip():
                    sys.exit(f"{path}:{lineno}: entry needs a "
                             "' :: justification'")
                caller, sep, target = spec.partition(" -> ")
                if not sep:
                    sys.exit(f"{path}:{lineno}: entry needs "
                             "'caller -> callee'")
                try:
                    entry = (re.compile(caller.strip()),
                             re.compile(target.strip()),
                             why.strip(), [0])
                except re.error as exc:
                    sys.exit(f"{path}:{lineno}: bad regex: {exc}")
                (self.allows if kind == "allow"
                 else self.virtuals).append(entry)

    def allowed(self, caller_dem, callee_dem):
        for caller, callee, why, hits in self.allows:
            if caller.search(caller_dem) and \
                    callee.search(callee_dem):
                hits[0] += 1
                return why
        return None

    def resolve_virtual(self, caller_dem, all_functions):
        """Symbols of resolver targets for `caller_dem`."""
        targets = []
        matched = False
        for caller, target, _why, hits in self.virtuals:
            if not caller.search(caller_dem):
                continue
            matched = True
            for sym, dem in all_functions.items():
                if target.search(dem):
                    targets.append(sym)
                    hits[0] += 1
        return matched, targets

    def stale_entries(self):
        out = []
        for kind, entries in (("allow", self.allows),
                              ("virtual", self.virtuals)):
            for caller, target, _why, hits in entries:
                if hits[0] == 0:
                    out.append(f"{kind}: {caller.pattern} -> "
                               f"{target.pattern}")
        return out


def build_graph(repo, compiler, verbose):
    graph = {}
    include = os.path.join(repo, "src")
    for rel in FAULT_PATH_SOURCES:
        src = os.path.join(repo, rel)
        cmd = [compiler, *COMPILE_FLAGS, "-I", include, src]
        if verbose:
            print("  [compile]", " ".join(cmd), file=sys.stderr)
        asm = run(cmd).stdout
        for sym, (callees, indirect) in parse_assembly(asm).items():
            old_callees, old_indirect = graph.get(sym, ([], 0))
            graph[sym] = (old_callees + callees,
                          old_indirect + indirect)
    return graph


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--compiler", default=os.environ.get("CXX", "g++"))
    ap.add_argument("--allowlist", default=None)
    ap.add_argument("--strict", action="store_true",
                    help="stale allowlist entries fail the lint "
                         "(CI mode)")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()

    repo = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    allowlist_path = args.allowlist or os.path.join(
        repo, "tools", "sigsafe_allowlist.txt")
    allowlist = Allowlist(allowlist_path)

    graph = build_graph(repo, args.compiler, args.verbose)
    names = demangle(set(graph))

    roots = [s for s in graph if ROOT_PATTERN in names.get(s, s)]
    if not roots:
        sys.exit(f"sigsafe_lint: no function matching "
                 f"'{ROOT_PATTERN}' found — did the handler move?")

    # BFS from the handler; record a parent per function so findings
    # can print the path that makes them reachable.
    parent = {r: None for r in roots}
    queue = list(roots)
    violations = []
    codec_violations = []
    allowed_edges = []
    unresolved_indirect = []
    while queue:
        fn = queue.pop(0)
        fn_dem = names.get(fn, fn)
        callees, indirect = graph.get(fn, ([], 0))
        if indirect:
            matched, targets = allowlist.resolve_virtual(fn_dem, names)
            if not matched:
                unresolved_indirect.append((fn, indirect))
            for t in targets:
                if CODEC_PATTERN in names.get(t, t):
                    codec_violations.append((fn, t))
                    continue
                if t not in parent:
                    parent[t] = fn
                    queue.append(t)
        for callee in callees:
            callee_dem = names.get(callee) or demangle(
                {callee})[callee]
            if CODEC_PATTERN in callee_dem:
                codec_violations.append((fn, callee))
                continue
            reason = classify_unsafe(callee)
            if reason:
                why = allowlist.allowed(fn_dem, callee_dem)
                if why:
                    allowed_edges.append((fn, callee, why))
                else:
                    violations.append((fn, callee, reason))
                continue
            if callee in graph and callee not in parent:
                parent[callee] = fn
                queue.append(callee)

    def path_to(fn):
        chain = []
        node = fn
        while node is not None:
            chain.append(names.get(node, node))
            node = parent.get(node)
        return list(reversed(chain))

    reachable = len(parent)
    print(f"sigsafe_lint: {reachable} functions reachable from the "
          f"SIGSEGV handler across {len(FAULT_PATH_SOURCES)} TUs")
    if args.verbose:
        for fn, callee, why in allowed_edges:
            print(f"  [allowed] {names.get(fn, fn)}\n"
                  f"      -> {names.get(callee, callee)}\n"
                  f"      :: {why}")

    failed = False
    if codec_violations:
        failed = True
        print(f"\n{len(codec_violations)} copy-out codec call(s) "
              "reachable from the SIGSEGV handler — HARD failure, "
              "no allowlist escape:")
        for fn, callee in codec_violations:
            callee_dem = names.get(callee) or demangle(
                {callee})[callee]
            print(f"\n  {names.get(fn, fn)}")
            print(f"      calls {callee_dem}")
            print("      [pagezip is flush-path-only; the admission "
                  "path must never compress]")
            print("      reachable via: "
                  + "\n                 -> ".join(path_to(fn)))
        print("\nMove the call off the fault path; this finding "
              "cannot be allowlisted.")

    if violations:
        failed = True
        print(f"\n{len(violations)} async-signal-UNSAFE call(s) on "
              "the fault path with no allowlist entry:")
        for fn, callee, reason in violations:
            callee_dem = names.get(callee) or demangle(
                {callee})[callee]
            print(f"\n  {names.get(fn, fn)}")
            print(f"      calls {callee_dem}")
            print(f"      [{reason}]")
            print("      reachable via: "
                  + "\n                 -> ".join(path_to(fn)))
        print("\nEither remove the call or add a justified entry to "
              f"{os.path.relpath(allowlist_path, repo)}")

    if unresolved_indirect:
        failed = True
        print(f"\n{len(unresolved_indirect)} function(s) make "
              "indirect calls with no 'virtual:' resolution — the "
              "walk cannot see through them:")
        for fn, count in unresolved_indirect:
            print(f"  {names.get(fn, fn)}  ({count} indirect "
                  "call site(s))")
            print("      reachable via: "
                  + "\n                 -> ".join(path_to(fn)))

    stale = allowlist.stale_entries()
    if stale:
        print(f"\n{len(stale)} stale allowlist entr"
              f"{'y' if len(stale) == 1 else 'ies'} (matched "
              "nothing — prune them):")
        for entry in stale:
            print(f"  {entry}")
        if args.strict:
            failed = True

    if not failed:
        print(f"OK: every unsafe call is allowlisted "
              f"({len(allowed_edges)} audited edge(s), 0 stale)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
