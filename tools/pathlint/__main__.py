#!/usr/bin/env python3
"""pathlint: multi-contract static path auditor for the fault path.

Drives the shared gcc -S / -fstack-usage engine over the contract
spec (tools/pathlint_contracts.ini by default) and checks every
declared contract:

  sigsafe         async-signal-safety of the SIGSEGV handler's
                  transitive call graph (the PR 4 audit, engine-ized)
  stack-bound     worst-case stack depth from segvHandler vs the
                  installed sigaltstack size minus a margin
  no-alloc        no malloc/operator-new family call reachable from
                  the steady-state fault path or the emergency drain
  lock-blocking   no blocking syscall (fdatasync, pwritev, condvar
                  wait, sleeps) reachable from a mutex acquisition
                  site outside the sanctioned wait sites
  atomics         every atomic op in the hot-path files carries an
                  explicit std::memory_order

Exit status is 1 when any selected contract has findings (or, under
--strict, stale allowlist entries).  --report writes the machine-
readable pathlint_report.json for CI artifacts.

Usage:
    python3 tools/pathlint [--contract NAME]... [--strict]
                           [--report FILE] [--verbose]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from contracts import Spec, check_atomics, check_deny_reach, \
    check_stack_bound  # noqa: E402
from engine import Engine, PathlintError  # noqa: E402


def render_deny(result, verbose):
    ok = True
    print(f"pathlint[{result['contract']}]: {result['reachable']} "
          f"functions reachable from {len(result['roots'])} root(s) "
          f"across {result['tus']} TU(s)")
    if verbose:
        for edge in result["audited_edges"]:
            print(f"  [allowed] {edge['caller']}\n"
                  f"      -> {edge['callee']}\n"
                  f"      :: {edge['why']}")
    hard = [f for f in result["findings"] if f["type"] == "hard-deny"]
    deny = [f for f in result["findings"] if f["type"] == "deny"]
    indirect = [f for f in result["findings"]
                if f["type"] == "unresolved-indirect"]
    if hard:
        ok = False
        print(f"\n{len(hard)} hard-deny call(s) — no allowlist "
              "escape:")
        for f in hard:
            print(f"\n  {f['caller']}\n      calls {f['callee']}\n"
                  f"      [{f['reason']}]")
            print("      reachable via: "
                  + "\n                 -> ".join(f["path"]))
    if deny:
        ok = False
        print(f"\n{len(deny)} denied call(s) with no allowlist "
              "entry:")
        for f in deny:
            print(f"\n  {f['caller']}\n      calls {f['callee']}\n"
                  f"      [{f['reason']}]")
            print("      reachable via: "
                  + "\n                 -> ".join(f["path"]))
    if indirect:
        ok = False
        print(f"\n{len(indirect)} function(s) make indirect calls "
              "with no 'virtual:' resolution:")
        for f in indirect:
            print(f"  {f['caller']}  ({f['count']} indirect "
                  "call site(s))")
            print("      reachable via: "
                  + "\n                 -> ".join(f["path"]))
    return ok


def render_stack(result, verbose):
    if result.get("status") == "skipped":
        print(f"pathlint[{result['contract']}]: SKIPPED — "
              f"{result['note']}")
        return True
    ok = not result["findings"]
    print(f"pathlint[{result['contract']}]: worst-case depth "
          f"{result['stack_bound_bytes']} bytes "
          f"(signal frame {result['signal_frame_bytes']} + handler "
          f"chain {result['handler_depth_bytes']}) vs limit "
          f"{result['limit_bytes']} - margin "
          f"{result['margin_bytes']} => headroom "
          f"{result['headroom_bytes']} bytes")
    if verbose or not ok:
        print("  deepest chain:")
        for frame in result["worst_chain"]:
            print(f"    {frame['frame_bytes']:>6}  "
                  f"{frame['function']}")
    for f in result["findings"]:
        if f["type"] == "recursion":
            print(f"  RECURSION: {' -> '.join(f['cycle'])}")
        elif f["type"] == "unresolved-indirect":
            print(f"  UNRESOLVED INDIRECT: {f['caller']} "
                  f"({f['count']} site(s))")
        else:
            name = f.get("function", "")
            print(f"  {f['type'].upper()}: {name} — {f['reason']}")
    return ok


def render_atomics(result, _verbose):
    ok = not result["findings"]
    print(f"pathlint[{result['contract']}]: "
          f"{len(result['files'])} file(s) scanned for implicit-order "
          "atomics")
    for f in result["findings"]:
        print(f"  {f['file']}:{f['line']}: .{f['op']}(...) — "
              f"{f['reason']}\n      {f['snippet']}")
    return ok


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--repo", default=None,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--spec", default=None,
                    help="contract spec file (default: "
                         "tools/pathlint_contracts.ini)")
    ap.add_argument("--compiler", default=os.environ.get("CXX", "g++"))
    ap.add_argument("--contract", action="append", default=None,
                    help="run only the named contract(s)")
    ap.add_argument("--strict", action="store_true",
                    help="stale allowlist entries fail the lint "
                         "(CI mode)")
    ap.add_argument("--report", default=None,
                    help="write a JSON report to this path")
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args(argv)

    tools_dir = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    repo = args.repo or os.path.dirname(tools_dir)
    spec_path = args.spec or os.path.join(
        repo, "tools", "pathlint_contracts.ini")

    try:
        spec = Spec(spec_path, repo)
        eng = Engine(repo, compiler=args.compiler, flags=spec.flags,
                     verbose=args.verbose)

        selected = spec.contracts
        if args.contract:
            wanted = set(args.contract)
            selected = [c for c in spec.contracts
                        if c.name in wanted]
            unknown = wanted - {c.name for c in spec.contracts}
            if unknown:
                raise PathlintError(
                    "pathlint: unknown contract(s): "
                    + ", ".join(sorted(unknown)))

        results = []
        failed = []
        for contract in selected:
            if contract.kind == "deny-reach":
                result = check_deny_reach(contract, eng)
                ok = render_deny(result, args.verbose)
            elif contract.kind == "stack-bound":
                result = check_stack_bound(
                    contract, eng, spec.extern_frame_bytes,
                    spec.signal_frame_bytes)
                ok = render_stack(result, args.verbose)
            elif contract.kind == "atomics-order":
                result = check_atomics(contract, repo)
                ok = render_atomics(result, args.verbose)
            else:
                raise PathlintError(
                    f"pathlint: unknown contract kind "
                    f"'{contract.kind}'")
            stale = result.get("stale", [])
            if stale:
                print(f"\npathlint[{contract.name}]: {len(stale)} "
                      f"stale allowlist entr"
                      f"{'y' if len(stale) == 1 else 'ies'} "
                      "(matched nothing — prune them):")
                for entry in stale:
                    print(f"  {entry}")
                if args.strict:
                    ok = False
            status = result.get("status")
            if status != "skipped":
                result["status"] = "ok" if ok else "fail"
            if not ok:
                failed.append(contract.name)
            results.append(result)
            print()

        if args.report:
            report = {
                "tool": "pathlint",
                "spec": os.path.relpath(spec_path, repo),
                "compiler": args.compiler,
                "strict": args.strict,
                "stack_usage_available": eng.stack_usage_ok,
                "contracts": results,
                "overall": "fail" if failed else "ok",
            }
            with open(args.report, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2)
                fh.write("\n")
            print(f"pathlint: report written to {args.report}")

        if failed:
            print("pathlint: FAILED contract(s): "
                  + ", ".join(failed))
            return 1
        print(f"pathlint: OK ({len(results)} contract(s) green)")
        return 0
    except PathlintError as exc:
        print(str(exc), file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
