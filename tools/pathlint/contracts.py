"""Contract definitions and checkers for pathlint.

A contract spec file (INI; see tools/pathlint_contracts.ini) declares
each contract's root symbols, TU set, deny set, and allowlist.  Three
contract kinds exist:

* ``deny-reach``   — BFS the post-inlining call graph from the roots;
                     any call matching the deny set fails unless a
                     justified ``allow:`` entry covers the edge
                     (sigsafe, no-alloc, blocking-under-lock).
* ``stack-bound``  — combine -fstack-usage frame sizes with the call
                     graph to compute the worst-case stack depth from
                     the root, and gate it against the installed
                     sigaltstack size minus a margin.
* ``atomics-order``— textual check over named files: every atomic
                     load/store/RMW must carry an explicit
                     std::memory_order argument.

Every checker returns a plain-dict result that the CLI renders and
serializes into pathlint_report.json.
"""

import configparser
import os
import re

from engine import (Allowlist, PathlintError, compute_stack_bound,
                    walk_deny)


class DenyClassifier:
    """Deny set: exact symbols, symbol prefixes, symbol substrings.

    Matching runs against the RAW (mangled or C) symbol name, which
    is what the assembly gives us and what the historic sigsafe
    tables matched.
    """

    def __init__(self):
        self.exact = {}    # symbol -> reason
        self.prefixes = []  # (prefix, reason)
        self.substrings = []  # (needle, reason)

    def add_line(self, kind, line, where):
        names, sep, reason = line.partition(" :: ")
        if not sep or not reason.strip():
            raise PathlintError(
                f"{where}: deny entry needs ' :: reason': {line!r}")
        for name in names.split():
            if kind == "exact":
                self.exact[name] = reason.strip()
            elif kind == "prefix":
                self.prefixes.append((name, reason.strip()))
            else:
                self.substrings.append((name, reason.strip()))

    def classify(self, symbol, _demangled):
        if symbol in self.exact:
            return self.exact[symbol]
        for prefix, reason in self.prefixes:
            if symbol.startswith(prefix):
                return reason
        for needle, reason in self.substrings:
            if needle in symbol:
                return reason
        return None

    def empty(self):
        return not (self.exact or self.prefixes or self.substrings)


class Contract:
    def __init__(self, name, section, repo, engine_sources):
        self.name = name
        self.kind = section.get("kind", "deny-reach").strip()
        self.repo = repo
        sources = section.get("sources", "@engine").split()
        self.sources = []
        for s in sources:
            if s == "@engine":
                self.sources.extend(engine_sources)
            else:
                self.sources.append(s)
        self.roots = section.get("roots", "").split()
        self.allowlist_path = section.get("allowlist", "").strip()
        self.virtuals_paths = section.get("virtuals", "").split()
        self.files = section.get("files", "").split()
        self.margin_bytes = section.getint("margin_bytes", fallback=0)
        self.limit_source = section.get("limit_source", "").strip()
        self.deny = DenyClassifier()
        for kind in ("exact", "prefix", "substr"):
            raw = section.get(f"deny_{kind}", "")
            for line in raw.splitlines():
                line = line.strip()
                if line:
                    self.deny.add_line(kind, line,
                                       f"[contract:{name}] deny_{kind}")
        self.hard_deny = []
        raw = section.get("hard_deny_substr", "")
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            needle, sep, reason = line.partition(" :: ")
            if not sep or not reason.strip():
                raise PathlintError(
                    f"[contract:{name}] hard_deny_substr entry needs "
                    f"' :: reason': {line!r}")
            self.hard_deny.append((needle.strip(), reason.strip()))

    def build_allowlist(self):
        """Own allowlist (stale-tracked) + borrowed virtual seams."""
        allowlist = Allowlist()
        for path in self.virtuals_paths:
            allowlist.load(os.path.join(self.repo, path),
                           kinds=("virtual",), track_stale=False)
        if self.allowlist_path:
            allowlist.load(os.path.join(self.repo, self.allowlist_path),
                           track_stale=True)
        return allowlist


class Spec:
    def __init__(self, path, repo):
        parser = configparser.ConfigParser(delimiters=("=",),
                                           interpolation=None)
        read = parser.read(path)
        if not read:
            raise PathlintError(f"pathlint: cannot read spec {path}")
        if "engine" not in parser:
            raise PathlintError(f"{path}: missing [engine] section")
        eng = parser["engine"]
        self.sources = eng.get("sources", "").split()
        if not self.sources:
            raise PathlintError(f"{path}: [engine] sources is empty")
        self.flags = eng.get("flags", "-std=c++20 -O2 -Wall").split()
        self.extern_frame_bytes = eng.getint("extern_frame_bytes",
                                             fallback=2048)
        self.signal_frame_bytes = eng.getint("signal_frame_bytes",
                                             fallback=6144)
        self.contracts = []
        for section in parser.sections():
            if not section.startswith("contract:"):
                continue
            name = section.partition(":")[2]
            self.contracts.append(
                Contract(name, parser[section], repo, self.sources))
        if not self.contracts:
            raise PathlintError(f"{path}: no [contract:*] sections")


def find_roots(contract, graph, names):
    """Resolve a contract's root symbols.

    Plain root tokens are substring patterns over demangled names
    (the historic ROOT_PATTERN semantics).  The special token
    ``@mutex-acquirers`` selects every function that directly calls
    pthread_mutex_lock/trylock — i.e. every lock acquisition site
    the assembly shows after inlining.
    """
    roots = []
    for token in contract.roots:
        if token == "@mutex-acquirers":
            for sym, (callees, _ind) in graph.items():
                if any(c in ("pthread_mutex_lock",
                             "pthread_mutex_trylock")
                       for c in callees):
                    roots.append(sym)
        else:
            matched = [s for s in graph
                       if token in names.get(s, s)]
            if not matched:
                raise PathlintError(
                    f"pathlint[{contract.name}]: no function matching "
                    f"'{token}' found — did the root move?")
            roots.extend(matched)
    # Deterministic order, no duplicates.
    seen = set()
    out = []
    for r in roots:
        if r not in seen:
            seen.add(r)
            out.append(r)
    return out


def check_deny_reach(contract, eng):
    graph = eng.merged_graph(contract.sources)
    names = eng.names_for(graph)
    roots = find_roots(contract, graph, names)
    allowlist = contract.build_allowlist()
    hard_substr = [n for n, _r in contract.hard_deny]
    res = walk_deny(graph, names, roots, contract.deny.classify,
                    allowlist, eng.demangle_one,
                    hard_deny_substr=hard_substr)

    findings = []
    for fn, callee in res.hard_violations:
        callee_dem = names.get(callee) or eng.demangle_one(callee)
        reason = next((r for n, r in contract.hard_deny
                       if n in callee_dem), contract.hard_deny[0][1])
        findings.append({
            "type": "hard-deny",
            "caller": names.get(fn, fn),
            "callee": callee_dem,
            "reason": reason,
            "path": res.path_to(fn, names),
        })
    # One finding per (caller, callee) edge: the assembly walk records
    # every call instruction, and -O2 duplicates denied calls freely
    # (loop rotation, cold splits).
    seen_edges = set()
    for fn, callee, reason in res.violations:
        if (fn, callee) in seen_edges:
            continue
        seen_edges.add((fn, callee))
        callee_dem = names.get(callee) or eng.demangle_one(callee)
        findings.append({
            "type": "deny",
            "caller": names.get(fn, fn),
            "callee": callee_dem,
            "reason": reason,
            "path": res.path_to(fn, names),
        })
    for fn, count in res.unresolved_indirect:
        findings.append({
            "type": "unresolved-indirect",
            "caller": names.get(fn, fn),
            "count": count,
            "path": res.path_to(fn, names),
        })
    return {
        "contract": contract.name,
        "kind": contract.kind,
        "roots": [names.get(r, r) for r in roots],
        "reachable": len(res.parent),
        "tus": len(contract.sources),
        "audited_edges": [
            {"caller": names.get(fn, fn),
             "callee": names.get(c) or eng.demangle_one(c),
             "why": why}
            for fn, c, why in res.allowed_edges
        ],
        "findings": findings,
        "stale": allowlist.stale_entries(),
    }


_INT_SUFFIX_RE = re.compile(r"(?<=[0-9])\s*[uUlL]+")
_SAFE_EXPR_RE = re.compile(r"^[\d\s()*+\-xX<]+$")


def parse_limit_source(repo, limit_source):
    """'path :: symbol' — read an integer constant out of a header.

    Understands simple constant expressions (``64ull * 1024``,
    ``1 << 16``), so the gate can read the SAME constant the runtime
    installs, with no copy to drift.
    """
    path, sep, symbol = limit_source.partition(" :: ")
    if not sep or not symbol.strip():
        raise PathlintError(
            f"pathlint: limit_source needs 'path :: symbol', got "
            f"{limit_source!r}")
    path = path.strip()
    symbol = symbol.strip()
    full = os.path.join(repo, path)
    with open(full, encoding="utf-8") as fh:
        text = fh.read()
    m = re.search(re.escape(symbol) + r"\s*=\s*([^;]+);", text)
    if not m:
        raise PathlintError(
            f"pathlint: '{symbol}' not found in {path}")
    expr = _INT_SUFFIX_RE.sub("", m.group(1))
    expr = expr.replace("'", "").strip()
    if not _SAFE_EXPR_RE.match(expr):
        raise PathlintError(
            f"pathlint: cannot evaluate '{symbol}' initializer "
            f"{m.group(1).strip()!r}")
    try:
        value = int(eval(expr, {"__builtins__": {}}, {}))  # noqa: S307
    except Exception as exc:
        raise PathlintError(
            f"pathlint: bad '{symbol}' initializer: {exc}") from exc
    return value, path


def check_stack_bound(contract, eng, extern_frame_bytes,
                      signal_frame_bytes):
    if not eng.stack_usage_ok:
        return {
            "contract": contract.name,
            "kind": contract.kind,
            "status": "skipped",
            "note": "compiler does not support -fstack-usage",
            "findings": [],
            "stale": [],
        }
    graph = eng.merged_graph(contract.sources)
    names = eng.names_for(graph)
    roots = find_roots(contract, graph, names)
    allowlist = contract.build_allowlist()
    frame_sizes, dynamic = eng.frame_sizes(contract.sources, graph,
                                           names)
    limit, limit_file = parse_limit_source(eng.repo,
                                           contract.limit_source)

    worst = None
    per_root = {}
    for root in roots:
        res = compute_stack_bound(graph, names, root, allowlist,
                                  frame_sizes, extern_frame_bytes)
        per_root[names.get(root, root)] = res
        if worst is None or res.bound > worst[1].bound:
            worst = (root, res)

    root_sym, res = worst
    findings = []
    # Reachability for frame/dynamic complaints: only functions the
    # bound computation actually visited matter.
    for sym in res.missing_frames:
        findings.append({
            "type": "missing-frame",
            "function": names.get(sym, sym),
            "reason": "reachable function has no matched .su entry "
                      "and no 'frame:' override",
        })
    reachable = {s for r in per_root.values()
                 for s, _b in r.chain}
    # 'dynamic,bounded' frames report an upper bound in the bytes
    # column — usable as-is.  Only plain 'dynamic' (unbounded
    # alloca/VLA) defeats the computation.
    for sym, qualifier in dynamic:
        if qualifier != "dynamic":
            continue
        dem = names.get(sym, sym)
        if allowlist.frame_override(dem) is not None:
            continue
        findings.append({
            "type": "dynamic-frame",
            "function": dem,
            "reason": f"-fstack-usage reports '{qualifier}' "
                      "(alloca/VLA): unbounded without a 'frame:' "
                      "override",
        })
    for cycle in res.recursion_errors:
        findings.append({
            "type": "recursion",
            "cycle": cycle,
            "reason": "unannotated recursion on the fault path "
                      "(no 'recurse:' bound)",
        })
    for sym, count in res.unresolved_indirect:
        findings.append({
            "type": "unresolved-indirect",
            "caller": names.get(sym, sym),
            "count": count,
        })

    bound = signal_frame_bytes + res.bound
    budget = limit - contract.margin_bytes
    if bound > budget:
        findings.append({
            "type": "stack-overflow",
            "reason": f"worst-case depth {bound} bytes exceeds "
                      f"{limit} ({limit_file}) minus the "
                      f"{contract.margin_bytes}-byte margin",
        })
    return {
        "contract": contract.name,
        "kind": contract.kind,
        "roots": [names.get(r, r) for r in roots],
        "tus": len(contract.sources),
        "stack_bound_bytes": bound,
        "handler_depth_bytes": res.bound,
        "signal_frame_bytes": signal_frame_bytes,
        "extern_frame_bytes": extern_frame_bytes,
        "limit_bytes": limit,
        "limit_source": contract.limit_source,
        "margin_bytes": contract.margin_bytes,
        "headroom_bytes": budget - bound,
        "worst_chain": [
            {"function": fn, "frame_bytes": fb}
            for fn, fb in res.chain
        ],
        "findings": findings,
        "stale": allowlist.stale_entries(),
        "matched_frames": len(frame_sizes),
    }


# --------------------------------------------------------------- #
# Atomics explicit-order check (textual)                          #
# --------------------------------------------------------------- #

_ATOMIC_OPS = (
    ".load(", ".store(", ".exchange(", ".fetch_add(", ".fetch_sub(",
    ".fetch_and(", ".fetch_or(", ".fetch_xor(",
    ".compare_exchange_weak(", ".compare_exchange_strong(",
    ".test_and_set(", ".clear(",
)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving
    newlines so line numbers survive."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i > 1 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def check_atomics(contract, repo):
    """Every atomic op in the named files must spell its order.

    `.clear(` and `.test_and_set(` are included for atomic_flag;
    `.clear(` on non-atomic containers is filtered by requiring the
    call to have no memory_order only when the receiver expression
    ends in a known atomic member — too clever to get right textually,
    so instead: a `.clear()` with empty args on a container is
    indistinguishable, and we only flag `.clear(` when the file
    declares atomic_flag members.  Everything else flags directly.
    """
    findings = []
    scanned = []
    for rel in contract.files:
        path = os.path.join(repo, rel)
        if not os.path.exists(path):
            raise PathlintError(f"pathlint[{contract.name}]: missing "
                                f"file {rel}")
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        text = strip_comments_and_strings(raw)
        scanned.append(rel)
        has_atomic_flag = "atomic_flag" in text
        for op in _ATOMIC_OPS:
            if op in (".clear(", ".test_and_set(") and \
                    not has_atomic_flag:
                continue
            start = 0
            while True:
                idx = text.find(op, start)
                if idx < 0:
                    break
                start = idx + len(op)
                # Find the matching close paren and look for an
                # explicit memory_order inside the argument list.
                depth = 0
                j = idx + len(op) - 1
                while j < len(text):
                    if text[j] == "(":
                        depth += 1
                    elif text[j] == ")":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                args = text[idx + len(op):j]
                if "memory_order" in args:
                    continue
                # Heuristic receiver check: the op must hang off an
                # identifier (skip e.g. `ring.count` arithmetic hits
                # — those never textually end in these suffixes).
                line = text.count("\n", 0, idx) + 1
                snippet = raw.splitlines()[line - 1].strip()
                findings.append({
                    "type": "implicit-order-atomic",
                    "file": rel,
                    "line": line,
                    "op": op.strip(".("),
                    "snippet": snippet,
                    "reason": "atomic operation without an explicit "
                              "std::memory_order (defaults to "
                              "seq_cst on the hot path)",
                })
    return {
        "contract": contract.name,
        "kind": contract.kind,
        "files": scanned,
        "findings": findings,
        "stale": [],
    }
