"""Shared static-analysis engine for the pathlint contracts.

One compile pass per translation unit (`g++ -S -fstack-usage` at the
release optimization level) yields two artifacts the contracts share:

* the assembly, from which `.type`/`.size` brackets and `call`/tail-
  `jmp` instructions give the post-inlining call graph (the graph of
  what the fault path *actually executes*, not what the source
  suggests);
* the `.su` stack-usage table, giving each emitted function's frame
  size for the worst-case-depth computation.

The `.su` file names functions in GCC's pretty form (`uint64_t
ns::f(uint64_t)`) while the assembly names them mangled; the matcher
in this module bridges the two via a normalized qualified-name key
(return types dropped, operators masked, lambdas canonicalized,
template arguments optionally stripped).  Anything it cannot match is
reported, never silently guessed.

Allowlist files use the sigsafe_allowlist.txt grammar, extended:

    allow:   <caller-re> -> <callee-re> :: <justification>
    virtual: <caller-re> -> <impl-re>   :: <why this target set>
    recurse: <fn-re>     -> <depth>     :: <why bounded>
    frame:   <fn-re>     -> <bytes>     :: <why this size>

`recurse` and `frame` are consumed only by the stack-bound contract.
"""

import os
import re
import subprocess
import sys
import tempfile

CALL_RE = re.compile(r"^\s+call\s+([^\s]+)")
JMP_RE = re.compile(r"^\s+jmp\s+([^\s*]+)")
TYPE_RE = re.compile(r'^\s+\.type\s+([^\s,]+),\s*@function')
SIZE_RE = re.compile(r"^\s+\.size\s+([^\s,]+),")

# Return-address push per frame: the call instruction's 8 bytes on
# x86-64, which -fstack-usage does not count.
RET_ADDR_BYTES = 8


class PathlintError(SystemExit):
    """Configuration / environment error (not a contract finding)."""


def run(cmd, **kw):
    return subprocess.run(cmd, check=True, capture_output=True,
                          text=True, **kw)


def demangle(symbols):
    """Map raw symbol -> demangled name (identity for C symbols)."""
    if not symbols:
        return {}
    ordered = sorted(symbols)
    out = run(["c++filt"], input="\n".join(ordered) + "\n").stdout
    return dict(zip(ordered, out.splitlines()))


def strip_plt(sym):
    return sym[:-4] if sym.endswith("@PLT") else sym


def parse_assembly(asm_text):
    """Return {function_symbol: ([callee, ...], indirect_count)}."""
    graph = {}
    current = None
    pending_types = set()
    for line in asm_text.splitlines():
        m = TYPE_RE.match(line)
        if m:
            pending_types.add(m.group(1))
            continue
        if current is None:
            # A function body begins at its label.
            label = line.split(":")[0].strip()
            if label in pending_types:
                current = label
                graph.setdefault(current, ([], 0))
            continue
        m = SIZE_RE.match(line)
        if m and m.group(1) == current:
            current = None
            continue
        m = CALL_RE.match(line)
        if not m:
            m = JMP_RE.match(line)
            # Only symbolic tail jumps count; local labels (.L*) and
            # computed jumps are control flow inside the function.
            if m and m.group(1).startswith(".L"):
                m = None
        if m:
            target = strip_plt(m.group(1))
            callees, indirect = graph[current]
            if target.startswith("*"):
                graph[current] = (callees, indirect + 1)
            else:
                callees.append(target)
    return graph


def parse_su(su_text):
    """Parse a -fstack-usage table.

    Returns [(pretty_name, bytes, qualifier)] where qualifier is
    'static', 'dynamic' or 'dynamic,bounded'.
    """
    entries = []
    for raw in su_text.splitlines():
        line = raw.rstrip()
        if not line:
            continue
        cols = line.split("\t")
        if len(cols) < 3:
            # A name containing a tab would break this; gcc does not
            # emit one, so treat it as table corruption.
            raise PathlintError(f"pathlint: unparsable .su line: {raw!r}")
        loc_and_name = "\t".join(cols[:-2])
        bytes_str, qualifier = cols[-2], cols[-1]
        # file:line:col:pretty — the pretty name itself contains
        # colons (C++ scope), so split exactly three times.
        parts = loc_and_name.split(":", 3)
        if len(parts) < 4:
            raise PathlintError(f"pathlint: unparsable .su line: {raw!r}")
        entries.append((parts[3], int(bytes_str), qualifier))
    return entries


# --------------------------------------------------------------- #
# Pretty-name <-> demangled-name matching                         #
# --------------------------------------------------------------- #

# Every C++ operator token, longest first so e.g. '<<=' wins over
# '<<' and '<'.  Masking them keeps the bracket-depth scanners below
# honest: an un-masked 'operator<' would desynchronize template-depth
# tracking.
_OPERATOR_TOKENS = [
    "<<=", ">>=", "<=>", "->*", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "++", "--", "->", "()", "[]", "+=", "-=", "*=", "/=",
    "%=", "^=", "&=", "|=", "+", "-", "*", "/", "%", "^", "&", "|",
    "~", "!", "=", "<", ">", ",",
]

_OPERATOR_WORD_RE = re.compile(
    r"operator\s*(new\s*\[\]|delete\s*\[\]|new|delete|co_await|"
    r'""\s*_\w+)')

_LAMBDA_RE = re.compile(r"\{lambda(\([^{}]*\))?#\d+\}")


def mask_operators(s):
    """Replace operator tokens with bracket-free placeholders."""
    s = _OPERATOR_WORD_RE.sub(
        lambda m: "operator." + re.sub(r"\W", ".", m.group(1)), s)
    out = []
    i = 0
    while True:
        j = s.find("operator", i)
        if j < 0:
            out.append(s[i:])
            break
        out.append(s[i:j])
        k = j + len("operator")
        while k < len(s) and s[k] == " ":
            k += 1
        for tok in _OPERATOR_TOKENS:
            if s.startswith(tok, k):
                out.append("operator." + str(len(tok)) + "."
                           + "".join(f"{ord(c):02x}" for c in tok))
                i = k + len(tok)
                break
        else:
            # 'operator' as a plain identifier substring.
            out.append(s[j:k])
            i = k
    return "".join(out)


def normalize_lambda(s):
    """Canonicalize c++filt's '{lambda(T)#1}' to gcc's '<lambda(T)>'
    and gcc's '{anonymous}' to c++filt's '(anonymous namespace)'."""
    s = _LAMBDA_RE.sub(
        lambda m: "<lambda" + (m.group(1) or "") + ">", s)
    return s.replace("{anonymous}", "(anonymous namespace)")


_TRAIL_WORD_RE = re.compile(r"\s*(const|volatile|noexcept|&&|&)$")


def _strip_bracket_suffix(s):
    """Strip one trailing '[with ...]' / '[clone ...]' group,
    bracket-matched (the contents may nest brackets: array types in
    template-argument dumps like '[with Args = {char (&)[59]}]')."""
    if not s.endswith("]"):
        return s
    depth = 0
    for i in range(len(s) - 1, -1, -1):
        if s[i] == "]":
            depth += 1
        elif s[i] == "[":
            depth -= 1
            if depth == 0:
                inner = s[i + 1:-1].lstrip()
                if inner.startswith(("with", "clone", "abi:")):
                    return s[:i].rstrip()
                return s
    return s


def strip_trailing_qualifiers(s):
    s = s.strip()
    while True:
        s2 = _strip_bracket_suffix(s)
        s2 = _TRAIL_WORD_RE.sub("", s2)
        if s2 == s:
            return s
        s = s2


def split_params(masked):
    """Split 'prefix(params)' at the top-level parameter list.

    Expects a masked (operator-free) name with trailing qualifiers
    stripped.  Returns (prefix, params) or (masked, None) when there
    is no parameter list (plain C symbols).
    """
    s = strip_trailing_qualifiers(masked)
    if not s.endswith(")"):
        return s, None
    depth = 0
    for i in range(len(s) - 1, -1, -1):
        c = s[i]
        if c == ")":
            depth += 1
        elif c == "(":
            depth -= 1
            if depth == 0:
                return s[:i], s[i:]
    return s, None


def qualified_name(prefix):
    """Last whitespace-separated token at bracket depth zero.

    Drops return types and decl-specifiers ('virtual int', 'static
    uint64_t') while surviving spaces inside template argument lists
    ('vector<pair<int, long>>::f').
    """
    depth = 0
    cut = 0
    for i, c in enumerate(prefix):
        if c in "<([{":
            depth += 1
        elif c in ">)]}":
            depth -= 1
        elif c == " " and depth == 0:
            cut = i + 1
    return prefix[cut:]


def strip_template_args(name):
    """Remove top-level <...> groups: 'ns::f<long>' -> 'ns::f'."""
    out = []
    depth = 0
    for c in name:
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
        elif depth == 0:
            out.append(c)
    return "".join(out)


_WORD_RUN_RE = re.compile(
    r"[A-Za-z_][\w:]*(?:[ \t]+[A-Za-z_][\w:]*)*")
_INT_MODIFIERS = ("long", "short", "unsigned", "signed")


def normalize_typelist(s):
    """Canonicalize a comma-separated type list for pack matching.

    Bridges gcc's west-const spelling ('const char (&)[35]',
    'long unsigned int') and c++filt's east-const spelling
    ('char const (&) [35]', 'unsigned long'): cv-qualifiers are
    dropped, multi-word integer spellings are sorted with the
    redundant 'int' removed, and all whitespace is squeezed out.
    """
    def canon_words(m):
        words = [w for w in re.split(r"\s+", m.group(0))
                 if w not in ("const", "volatile")]
        if len(words) > 1 and "int" in words and \
                any(w in _INT_MODIFIERS for w in words):
            words = [w for w in words if w != "int"]
        return " ".join(sorted(words))
    s = _WORD_RUN_RE.sub(canon_words, s)
    return re.sub(r"\s+", "", s)


_TRUNCATED_WITH_RE = re.compile(r"\[with\b(.*)\]\s*$", re.S)


def _pack_key(with_content):
    """Matching key from a '[with Args = {...}]' clause's content."""
    i = with_content.find("{")
    if i >= 0:
        inner = with_content[i + 1:with_content.rfind("}")]
    else:
        parts = []
        for piece in with_content.split(";"):
            eq = piece.find("=")
            parts.append(piece[eq + 1:] if eq >= 0 else piece)
        inner = ",".join(parts)
    return "pack:" + normalize_typelist(inner)


def aggressive_key(name):
    """Structure-only key: all (...) and <...> groups removed.

    Local-lambda scopes and template arguments diverge hopelessly
    between gcc pretty names and c++filt output (typedefs, elided
    default arguments, '#1' suffixes); for names like FunctionRef's
    '::_FUN' trampolines only the scope skeleton is stable.  Lookup
    ambiguity is resolved by max-bytes, so collapsing instantiations
    onto one key errs conservative.
    """
    out = []
    depth = 0
    for c in name:
        if c in "<({":
            depth += 1
        elif c in ">)}":
            depth -= 1
        elif depth == 0:
            out.append(c)
    skeleton = re.sub(r":{2,}", "::", "".join(out)).strip(": ")
    return "agg:" + skeleton


def frame_keys(pretty):
    """Candidate matching keys for a function name, either side.

    Works on both gcc .su pretty names (return type present,
    templates as 'T f(T) [with T = long]') and c++filt output
    (no return type, templates as 'long f<long>(long)').

    Keys are tiered, most precise first; ambiguity at any tier is
    resolved by taking the max frame size:
      1. qualified name with template arguments,
      2. qualified name, template arguments stripped,
      3. 'agg:' structural skeleton (lambda trampolines),
      4. 'pack:' template-argument pack (gcc 12 truncates variadic
         instantiation pretty names to ') [with Args = {...}]',
         leaving the pack as the only identity).
    """
    s = mask_operators(normalize_lambda(pretty))
    if s.lstrip().startswith(")"):
        m = _TRUNCATED_WITH_RE.search(s)
        if m:
            return [_pack_key(m.group(1))]
        return []
    s = strip_trailing_qualifiers(s)
    prefix, _params = split_params(s)
    name = qualified_name(prefix)
    keys = [name]
    bare = strip_template_args(name)
    if bare != name:
        keys.append(bare)
    agg = aggressive_key(name)
    if agg[4:] != bare:
        keys.append(agg)
    if name.endswith(">"):
        depth = 0
        for i in range(len(name) - 1, -1, -1):
            if name[i] == ">":
                depth += 1
            elif name[i] == "<":
                depth -= 1
                if depth == 0:
                    keys.append(
                        "pack:" + normalize_typelist(name[i + 1:-1]))
                    break
    return keys


# --------------------------------------------------------------- #
# Allowlists                                                       #
# --------------------------------------------------------------- #

class Allowlist:
    """Parsed allowlist file (see module docstring for the grammar).

    `kinds` restricts which directives are honored (e.g. a contract
    borrowing only the `virtual:` seam resolutions from another
    contract's file).  `track_stale` controls whether unhit entries
    are reported stale — borrowed entries are audited by their owning
    contract, not the borrower.
    """

    DIRECTIVES = ("allow", "virtual", "recurse", "frame")

    def __init__(self):
        self.allows = []    # (caller_re, callee_re, why, [hits], origin)
        self.virtuals = []  # (caller_re, target_re, why, [hits], origin)
        self.recursions = []  # (fn_re, depth, why, [hits], origin)
        self.frames = []    # (fn_re, bytes, why, [hits], origin)
        self._stale_pools = []

    def load(self, path, kinds=None, track_stale=True):
        kinds = kinds or self.DIRECTIVES
        loaded = []
        with open(path, encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, 1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                kind, _, rest = line.partition(":")
                kind = kind.strip()
                if kind not in self.DIRECTIVES:
                    raise PathlintError(
                        f"{path}:{lineno}: unknown directive '{kind}'")
                # Separators need surrounding spaces: the name regexes
                # themselves contain '::' (C++ scope) and may contain
                # '->'.
                spec, sep, why = rest.partition(" :: ")
                if not sep or not why.strip():
                    raise PathlintError(
                        f"{path}:{lineno}: entry needs a "
                        "' :: justification'")
                left, sep, right = spec.partition(" -> ")
                if not sep:
                    raise PathlintError(
                        f"{path}:{lineno}: entry needs "
                        "'left -> right'")
                origin = f"{os.path.basename(path)}:{lineno}"
                try:
                    left_re = re.compile(left.strip())
                except re.error as exc:
                    raise PathlintError(
                        f"{path}:{lineno}: bad regex: {exc}") from exc
                if kind not in kinds:
                    continue
                entry = None
                if kind in ("allow", "virtual"):
                    try:
                        right_re = re.compile(right.strip())
                    except re.error as exc:
                        raise PathlintError(
                            f"{path}:{lineno}: bad regex: {exc}") from exc
                    entry = (left_re, right_re, why.strip(), [0], origin)
                    (self.allows if kind == "allow"
                     else self.virtuals).append(entry)
                else:
                    try:
                        value = int(right.strip())
                    except ValueError as exc:
                        raise PathlintError(
                            f"{path}:{lineno}: '{kind}' needs an "
                            f"integer, got {right.strip()!r}") from exc
                    entry = (left_re, value, why.strip(), [0], origin)
                    (self.recursions if kind == "recurse"
                     else self.frames).append(entry)
                loaded.append((kind, entry))
        if track_stale:
            self._stale_pools.extend(loaded)
        return self

    def allowed(self, caller_dem, callee_dem):
        for caller, callee, why, hits, _origin in self.allows:
            if caller.search(caller_dem) and callee.search(callee_dem):
                hits[0] += 1
                return why
        return None

    def resolve_virtual(self, caller_dem, all_functions):
        """Symbols of resolver targets for `caller_dem`."""
        targets = []
        matched = False
        for caller, target, _why, hits, _origin in self.virtuals:
            if not caller.search(caller_dem):
                continue
            matched = True
            for sym, dem in all_functions.items():
                if target.search(dem):
                    targets.append(sym)
                    hits[0] += 1
        return matched, targets

    def recursion_bound(self, fn_dem):
        for fn_re, depth, _why, hits, _origin in self.recursions:
            if fn_re.search(fn_dem):
                hits[0] += 1
                return depth
        return None

    def frame_override(self, fn_dem):
        for fn_re, nbytes, _why, hits, _origin in self.frames:
            if fn_re.search(fn_dem):
                hits[0] += 1
                return nbytes
        return None

    def stale_entries(self):
        out = []
        for kind, entry in self._stale_pools:
            left_re, right, _why, hits, _origin = entry
            if hits[0] == 0:
                right_s = right.pattern if hasattr(right, "pattern") \
                    else str(right)
                out.append(f"{kind}: {left_re.pattern} -> {right_s}")
        return out


# --------------------------------------------------------------- #
# Compilation cache                                                #
# --------------------------------------------------------------- #

class TuData:
    """One translation unit's compiled artifacts."""

    def __init__(self, rel, graph, su_entries):
        self.rel = rel
        self.graph = graph          # {sym: ([callees], indirect)}
        self.su_entries = su_entries  # [(pretty, bytes, qualifier)]


class Engine:
    """Compiles TUs once and serves merged graphs to contracts."""

    def __init__(self, repo, compiler="g++",
                 flags=("-std=c++20", "-O2", "-Wall"),
                 verbose=False):
        self.repo = repo
        self.compiler = compiler
        self.flags = list(flags)
        self.verbose = verbose
        self.stack_usage_ok = self._probe_stack_usage()
        self._cache = {}
        self._names = {}

    def _probe_stack_usage(self):
        with tempfile.TemporaryDirectory() as tmp:
            probe = os.path.join(tmp, "probe.cc")
            with open(probe, "w", encoding="utf-8") as fh:
                fh.write("int probe() { return 0; }\n")
            proc = subprocess.run(
                [self.compiler, "-S", "-fstack-usage", "-o",
                 os.path.join(tmp, "probe.s"), probe],
                capture_output=True, text=True)
            return proc.returncode == 0 and \
                os.path.exists(os.path.join(tmp, "probe.su"))

    def compile_tu(self, rel):
        if rel in self._cache:
            return self._cache[rel]
        src = os.path.join(self.repo, rel)
        if not os.path.exists(src):
            raise PathlintError(f"pathlint: missing source {rel}")
        include = os.path.join(self.repo, "src")
        with tempfile.TemporaryDirectory() as tmp:
            base = os.path.splitext(os.path.basename(rel))[0]
            out_s = os.path.join(tmp, base + ".s")
            cmd = [self.compiler, *self.flags, "-S"]
            if self.stack_usage_ok:
                cmd.append("-fstack-usage")
            cmd += ["-o", out_s, "-I", include, src]
            if self.verbose:
                print("  [compile]", " ".join(cmd), file=sys.stderr)
            run(cmd)
            with open(out_s, encoding="utf-8") as fh:
                graph = parse_assembly(fh.read())
            su_entries = []
            su_path = os.path.join(tmp, base + ".su")
            if self.stack_usage_ok and os.path.exists(su_path):
                with open(su_path, encoding="utf-8") as fh:
                    su_entries = parse_su(fh.read())
        data = TuData(rel, graph, su_entries)
        self._cache[rel] = data
        return data

    def merged_graph(self, tus):
        """Union call graph over `tus` (comdat bodies concatenated)."""
        graph = {}
        for rel in tus:
            for sym, (callees, indirect) in \
                    self.compile_tu(rel).graph.items():
                old_callees, old_indirect = graph.get(sym, ([], 0))
                graph[sym] = (old_callees + callees,
                              old_indirect + indirect)
        return graph

    def names_for(self, graph):
        missing = set(graph) - set(self._names)
        if missing:
            self._names.update(demangle(missing))
        return {s: self._names[s] for s in graph}

    def demangle_one(self, sym):
        if sym not in self._names:
            self._names.update(demangle({sym}))
        return self._names[sym]

    def frame_sizes(self, tus, graph, names):
        """Match .su entries to graph symbols.

        Returns ({sym: max_bytes}, [(sym, qualifier)] dynamic-frame
        symbols).  A symbol absent from the map has no measured
        frame; callers decide whether that matters (only reachable
        functions need sizes).
        """
        key_to_syms = {}
        for sym, dem in names.items():
            for key in frame_keys(dem):
                key_to_syms.setdefault(key, set()).add(sym)
        sizes = {}
        dynamic = []
        for rel in tus:
            for pretty, nbytes, qualifier in \
                    self.compile_tu(rel).su_entries:
                syms = set()
                for key in frame_keys(pretty):
                    syms |= key_to_syms.get(key, set())
                for sym in syms:
                    sizes[sym] = max(sizes.get(sym, 0), nbytes)
                    if "dynamic" in qualifier:
                        dynamic.append((sym, qualifier))
        return sizes, dynamic


# --------------------------------------------------------------- #
# Graph walks                                                      #
# --------------------------------------------------------------- #

class WalkResult:
    def __init__(self):
        self.parent = {}
        self.violations = []         # (fn, callee, reason)
        self.hard_violations = []    # (fn, callee)
        self.allowed_edges = []      # (fn, callee, why)
        self.unresolved_indirect = []  # (fn, count)

    def path_to(self, fn, names):
        chain = []
        node = fn
        while node is not None:
            chain.append(names.get(node, node))
            node = self.parent.get(node)
        return list(reversed(chain))


def walk_deny(graph, names, roots, classify, allowlist,
              demangle_one, hard_deny_substr=()):
    """BFS from `roots`; classify() returns a reason for deny hits.

    `hard_deny_substr` names symbols that fail with NO allowlist
    escape (the pagezip rule).  Returns a WalkResult; the BFS stops
    at denied callees (they are findings, not traversal frontier).
    """
    res = WalkResult()
    res.parent = {r: None for r in roots}
    queue = list(roots)
    while queue:
        fn = queue.pop(0)
        fn_dem = names.get(fn, fn)
        callees, indirect = graph.get(fn, ([], 0))
        if indirect:
            matched, targets = allowlist.resolve_virtual(fn_dem, names)
            if not matched:
                res.unresolved_indirect.append((fn, indirect))
            for t in targets:
                if any(s in names.get(t, t) for s in hard_deny_substr):
                    res.hard_violations.append((fn, t))
                    continue
                if t not in res.parent:
                    res.parent[t] = fn
                    queue.append(t)
        for callee in callees:
            callee_dem = names.get(callee) or demangle_one(callee)
            if any(s in callee_dem for s in hard_deny_substr):
                res.hard_violations.append((fn, callee))
                continue
            reason = classify(callee, callee_dem)
            if reason:
                why = allowlist.allowed(fn_dem, callee_dem)
                if why:
                    res.allowed_edges.append((fn, callee, why))
                else:
                    res.violations.append((fn, callee, reason))
                continue
            if callee in graph and callee not in res.parent:
                res.parent[callee] = fn
                queue.append(callee)
    return res


class StackBoundResult:
    def __init__(self):
        self.bound = 0               # deepest chain, bytes
        self.chain = []              # [(demangled, frame_bytes)]
        self.missing_frames = []     # reachable syms with no .su match
        self.dynamic_frames = []     # (sym, qualifier) unbounded
        self.recursion_errors = []   # cycle paths (list of demangled)
        self.unresolved_indirect = []


def compute_stack_bound(graph, names, root, allowlist, frame_sizes,
                        extern_frame_bytes):
    """Worst-case stack depth from `root` over the post-inlining
    call graph.

    depth(f) = frame(f) + RET_ADDR_BYTES + max over children, where
    an extern (out-of-graph) callee is charged `extern_frame_bytes`
    flat and indirect calls go through the allowlist's `virtual:`
    resolutions.  Cycles are rejected unless a `recurse:` entry
    bounds them, in which case the cycle segment is charged
    (bound - 1) extra times.
    """
    res = StackBoundResult()
    memo = {}
    on_stack = []
    on_stack_set = set()
    seen_missing = set()
    seen_indirect = set()

    def frame_of(sym):
        dem = names.get(sym, sym)
        override = allowlist.frame_override(dem)
        if override is not None:
            return override
        if sym in frame_sizes:
            return frame_sizes[sym]
        if sym not in seen_missing:
            seen_missing.add(sym)
            res.missing_frames.append(sym)
        return 0

    def depth(sym):
        if sym in memo:
            return memo[sym]
        if sym in on_stack_set:
            # Back edge: bounded recursion or an error.
            dem = names.get(sym, sym)
            bound = allowlist.recursion_bound(dem)
            idx = on_stack.index(sym)
            segment = on_stack[idx:]
            if bound is None:
                res.recursion_errors.append(
                    [names.get(s, s) for s in segment] + [dem])
                return 0, []
            extra = sum(frame_of(s) + RET_ADDR_BYTES
                        for s in segment)
            return (bound - 1) * extra, []
        on_stack.append(sym)
        on_stack_set.add(sym)
        try:
            callees, indirect = graph.get(sym, ([], 0))
            children = []
            for c in callees:
                children.append(c)
            if indirect:
                dem = names.get(sym, sym)
                matched, targets = allowlist.resolve_virtual(dem, names)
                if not matched and sym not in seen_indirect:
                    seen_indirect.add(sym)
                    res.unresolved_indirect.append((sym, indirect))
                children.extend(targets)
            best = 0
            best_chain = []
            for c in children:
                if c in graph:
                    d, chain = depth(c)
                else:
                    # Extern call (libc/pthread/kernel wrapper):
                    # charged a flat, documented budget.
                    d = extern_frame_bytes + RET_ADDR_BYTES
                    chain = [(names.get(c, c), extern_frame_bytes)]
                if d > best:
                    best = d
                    best_chain = chain
            my_frame = frame_of(sym)
            total = my_frame + RET_ADDR_BYTES + best
            result = (total,
                      [(names.get(sym, sym), my_frame)] + best_chain)
            memo[sym] = result
            return result
        finally:
            on_stack.pop()
            on_stack_set.discard(sym)

    total, chain = depth(root)
    res.bound = total
    res.chain = chain
    return res
