#!/usr/bin/env python3
"""Full-tree clang-tidy with a committed ratchet baseline.

The old CI tidy pass only checked files the branch changed, so
pre-existing warnings in untouched files were invisible and a rebase
could silently move the goalposts.  This runs clang-tidy (checks
from .clang-tidy) over the WHOLE tree and compares per-(file, check)
warning counts against tools/clang_tidy_baseline.txt:

  compare (default)  any (file, check) pair whose count EXCEEDS the
                     baseline fails, and the offending diagnostics
                     are printed; counts below baseline print a
                     ratchet hint.  New files start at zero.
  --update           rewrite the baseline from the current tree
                     (run after deliberately accepting or fixing
                     warnings; commit the result).

Baseline lines are '<count>\t<check>\t<file>', sorted, so diffs
review cleanly.  Exit codes: 0 ok, 1 regressions, 77 when clang-tidy
or the compile database cannot be had (ctest/CI SKIP convention —
ci.sh prints the note and continues).
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
from collections import Counter

SKIP = 77

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE = os.path.join(REPO, "tools", "clang_tidy_baseline.txt")

# Same surface the rest of CI lints: first-party translation units.
SOURCE_GLOBS = [
    ("src", ".cc"), ("tests", ".cc"), ("bench", ".cc"),
    ("examples", ".cpp"),
]

DIAG_RE = re.compile(
    r"^(?P<path>[^\s:][^:]*):(?P<line>\d+):(?P<col>\d+): "
    r"warning: (?P<msg>.*) \[(?P<check>[\w.,-]+)\]$")

BASELINE_HEADER = """\
# clang-tidy ratchet baseline (tools/clang_tidy_baseline.py).
#
# One line per (file, check) pair with outstanding warnings:
#     <count>\t<check>\t<file>
# CI fails when any pair's count EXCEEDS its line here (absent pair
# = zero).  Counts may only go down: fix warnings, then run
#     python3 tools/clang_tidy_baseline.py --update
# and commit the shrunken file.  Never hand-edit a count upward.
"""


def collect_sources():
    out = []
    for sub, ext in SOURCE_GLOBS:
        root = os.path.join(REPO, sub)
        for dirpath, _dirs, files in os.walk(root):
            for f in sorted(files):
                if f.endswith(ext):
                    out.append(os.path.relpath(
                        os.path.join(dirpath, f), REPO))
    return sorted(out)


def ensure_compile_db(build_dir):
    db = os.path.join(build_dir, "compile_commands.json")
    if os.path.exists(db):
        return True
    proc = subprocess.run(
        ["cmake", "-B", build_dir, "-S", REPO,
         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"],
        capture_output=True, text=True)
    if proc.returncode != 0:
        print("clang_tidy_baseline: cmake configure failed:\n"
              + proc.stderr, file=sys.stderr)
        return False
    return os.path.exists(db)


def run_tidy(build_dir, sources, jobs):
    """Per-(file, check) warning counts plus the raw diagnostics."""
    counts = Counter()
    diags = {}
    # One clang-tidy process per chunk: a single invocation over
    # hundreds of TUs serializes poorly, and per-file spawns pay the
    # startup cost N times.
    chunk = max(1, len(sources) // max(jobs, 1))
    procs = []
    for i in range(0, len(sources), chunk):
        procs.append(subprocess.Popen(
            ["clang-tidy", "-p", build_dir, "--quiet",
             *sources[i:i + chunk]],
            cwd=REPO, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True))
    for proc in procs:
        out, _ = proc.communicate()
        for line in out.splitlines():
            m = DIAG_RE.match(line)
            if not m:
                continue
            path = os.path.relpath(
                os.path.join(REPO, m.group("path")), REPO) \
                if not os.path.isabs(m.group("path")) \
                else os.path.relpath(m.group("path"), REPO)
            if path.startswith(".."):
                continue  # system/third-party header
            key = (path, m.group("check"))
            counts[key] += 1
            diags.setdefault(key, []).append(line)
    return counts, diags


def load_baseline():
    counts = Counter()
    if not os.path.exists(BASELINE):
        return counts
    with open(BASELINE, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                sys.exit(f"{BASELINE}:{lineno}: malformed line "
                         f"{line!r}")
            counts[(parts[2], parts[1])] = int(parts[0])
    return counts


def write_baseline(counts):
    with open(BASELINE, "w", encoding="utf-8") as fh:
        fh.write(BASELINE_HEADER)
        for (path, check), n in sorted(counts.items()):
            fh.write(f"{n}\t{check}\t{path}\n")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build", default=os.path.join(
        REPO, "build-lint"), help="build dir for the compile "
        "database (configured on demand)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the committed baseline from the "
                         "current tree")
    ap.add_argument("--jobs", type=int,
                    default=os.cpu_count() or 1)
    args = ap.parse_args()

    if shutil.which("clang-tidy") is None:
        print("clang_tidy_baseline: SKIPPED — clang-tidy not "
              "installed")
        return SKIP
    if not ensure_compile_db(args.build):
        print("clang_tidy_baseline: SKIPPED — no compile database")
        return SKIP

    sources = collect_sources()
    print(f"clang_tidy_baseline: tidying {len(sources)} file(s) "
          f"across the full tree")
    current, diags = run_tidy(args.build, sources, args.jobs)

    if args.update:
        write_baseline(current)
        total = sum(current.values())
        print(f"clang_tidy_baseline: baseline rewritten "
              f"({total} warning(s) across {len(current)} "
              f"(file, check) pair(s)) — review and commit "
              f"{os.path.relpath(BASELINE, REPO)}")
        return 0

    baseline = load_baseline()
    regressions = []
    improved = []
    for key, n in sorted(current.items()):
        allowed = baseline.get(key, 0)
        if n > allowed:
            regressions.append((key, n, allowed))
        elif n < allowed:
            improved.append((key, n, allowed))
    gone = [k for k in baseline if k not in current
            and baseline[k] > 0]

    if regressions:
        print(f"\nclang_tidy_baseline: {len(regressions)} "
              "(file, check) pair(s) above baseline:")
        for (path, check), n, allowed in regressions:
            print(f"\n  {path} [{check}]: {n} > baseline {allowed}")
            for d in diags[(path, check)]:
                print(f"    {d}")
        print("\nFix the new warnings (or, for a deliberate "
              "accept, run --update and commit the diff).")
        return 1
    if improved or gone:
        print(f"clang_tidy_baseline: OK — and {len(improved) + len(gone)} "
              "pair(s) improved; tighten the ratchet with --update")
    else:
        print("clang_tidy_baseline: OK — tree matches the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
