/**
 * @file
 * Concurrency scalability ablation over the real-memory runtime:
 * N application threads run a YCSB-B-like mix (95% read / 5% update,
 * scrambled-zipfian keys) against one NvRegion, each thread owning a
 * contiguous record partition, while the epoch thread samples recency
 * and the budget machinery admits/evicts under it.  Sweeps thread
 * count x shard count and emits BENCH_concurrency.json with wall
 * throughput and the update (fault-path) latency tail.
 *
 * The interesting comparison is shards=1 (the pre-sharding global
 * lock) against sharded configurations: on a many-core host the
 * sharded fault path scales with threads while the global lock
 * serializes them.  `host_cpus` is recorded in every row because the
 * curve is only meaningful given the cores that ran it — on a 1-CPU
 * container every configuration time-slices one core and the sweep
 * degenerates to an overhead (not scaling) measurement.
 *
 * --smoke: two gates, exit 1 on either failing.  (1) Median-of-5
 * single-thread parity — sharded (8 shards) throughput must stay
 * within 5% of the unsharded baseline; deliberately inline
 * persistence (no copier threads) on both sides so it compares the
 * fault path alone.  (2) Multicore scaling — on a host with more
 * than one CPU, 4-thread/4-shard throughput must reach 1.5x the
 * 1-thread/1-shard baseline with p99 no worse than 2x; on a 1-CPU
 * host the scaling gate is SKIPPED with a loud warning, because
 * every configuration time-slices one core and the ratio measures
 * scheduler fairness, not scaling.  This is the gate ci.sh runs.
 *
 * A note on the low p50 at high thread counts (e.g. ~67 ns at 8
 * threads / 1 shard): it is genuine, not a timer bug.  Records are
 * partitioned per thread, so 8 threads draw their zipfian keys from
 * 1024-record partitions — the hot set tightens, most updates land
 * on pages that are already writable (admitted earlier, not yet
 * re-protected by the epoch scan), and a non-faulting update costs
 * only the 100-byte memset plus two steady_clock reads.  Past 50%
 * non-faulting updates, p50 IS that cost.  The timed pattern's
 * minimum measurable cost is calibrated at startup and every run's
 * p50 is sanity-checked against it, so a real histogram/timer bug
 * (mis-binned percentile, dropped samples) fails loudly instead of
 * producing a plausible-looking small number.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common/distributions.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "runtime/region.hh"

using namespace viyojit;

namespace
{

constexpr std::uint64_t kRecordSize = 1024;
constexpr std::uint64_t kTotalRecords = 8192;  // 8 MiB region
constexpr std::uint64_t kBudgetPages = 256;
constexpr std::uint64_t kFieldSize = 100;
constexpr double kUpdateFraction = 0.05;  // YCSB-B

/** Defeats dead-code elimination of the read path. */
volatile std::uint64_t g_sink = 0;

struct RunConfig
{
    unsigned threads = 1;
    unsigned shards = 1;
    unsigned copierThreads = 0;
    std::uint64_t opsPerThread = 30000;
    std::uint64_t seed = 42;
};

struct RunOutcome
{
    std::uint64_t totalOps = 0;
    double wallSeconds = 0.0;
    double opsPerSec = 0.0;
    std::uint64_t updateP50Ns = 0;
    std::uint64_t updateP99Ns = 0;
    std::uint64_t writeFaults = 0;
    std::uint64_t quotaSteals = 0;
    std::uint64_t blockedEvictions = 0;
    std::uint64_t proactiveCopies = 0;
    std::uint64_t bytesPersisted = 0;
    std::uint64_t epochs = 0;
    std::uint64_t watermarkRefills = 0;
    std::uint64_t proactiveDonations = 0;
    std::uint64_t shedEvictions = 0;
    std::uint64_t backoffRetries = 0;
    std::uint64_t starvedFaults = 0;
    std::vector<runtime::RegionStats::ShardCounters> perShard;
};

/**
 * Minimum measurable cost of the timed update pattern: one field
 * memset into always-writable scratch bracketed by the same two
 * steady_clock reads the worker uses.  Calibrated once (min of 4096
 * samples — min, not median, because the floor must be a true lower
 * bound for any real update, which does at least this much work).
 */
std::uint64_t
timerFloorNs()
{
    static const std::uint64_t floor_ns = [] {
        alignas(64) static char scratch[kFieldSize];
        std::uint64_t lo = ~0ULL;
        for (int i = 0; i < 4096; ++i) {
            const auto t0 = std::chrono::steady_clock::now();
            std::memset(scratch, static_cast<char>('a' + (i % 26)),
                        kFieldSize);
            const auto ns = std::chrono::duration_cast<
                                std::chrono::nanoseconds>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
            g_sink = g_sink +
                     static_cast<unsigned char>(scratch[i % kFieldSize]);
            lo = std::min(lo, static_cast<std::uint64_t>(ns));
        }
        return lo;
    }();
    return floor_ns;
}

std::string
scratchPath()
{
    static std::atomic<unsigned> counter{0};
    return "/tmp/viyojit_abl_concurrency_" +
           std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".img";
}

RunOutcome
runOnce(const RunConfig &rc)
{
    runtime::RuntimeConfig cfg;
    cfg.dirtyBudgetPages = kBudgetPages;
    cfg.shards = rc.shards;
    cfg.copierThreads = rc.copierThreads;
    cfg.epochMicros = 1000;
    cfg.startEpochThread = true;

    const std::string path = scratchPath();
    auto region = runtime::NvRegion::create(
        path, kTotalRecords * kRecordSize, cfg);
    char *base = static_cast<char *>(region->base());

    std::atomic<unsigned> ready{0};
    std::atomic<bool> go{false};
    std::mutex mergeLock;
    LogHistogram updateLatency;

    auto worker = [&](unsigned tid) {
        // Contiguous record partition, as DriverConfig::partitions
        // carves it: thread `tid` owns [first, first + count).
        const std::uint64_t per = kTotalRecords / rc.threads;
        const std::uint64_t first = tid * per;
        const std::uint64_t count = tid + 1 == rc.threads
                                        ? kTotalRecords - first
                                        : per;
        ScrambledZipfianDistribution zipf(count);
        Rng rng(rc.seed * 0x9e3779b97f4a7c15ULL + tid + 1);
        LogHistogram local;
        std::uint64_t checksum = 0;

        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire))
            std::this_thread::yield();

        for (std::uint64_t op = 0; op < rc.opsPerThread; ++op) {
            const std::uint64_t key =
                first + std::min<std::uint64_t>(zipf.next(rng),
                                                count - 1);
            char *record = base + key * kRecordSize;
            if (rng.nextDouble() < kUpdateFraction) {
                const std::uint64_t field =
                    rng.nextBounded(kRecordSize / kFieldSize);
                const auto t0 = std::chrono::steady_clock::now();
                std::memset(record + field * kFieldSize,
                            static_cast<char>('a' + (op % 26)),
                            kFieldSize);
                const auto ns =
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
                local.record(static_cast<std::uint64_t>(ns));
            } else {
                // Touch a stride of the record like a field read.
                for (std::uint64_t off = 0; off < kRecordSize;
                     off += kFieldSize)
                    checksum += static_cast<unsigned char>(
                        record[off]);
            }
        }

        g_sink = g_sink + checksum;
        std::lock_guard<std::mutex> lk(mergeLock);
        updateLatency.merge(local);
    };

    std::vector<std::thread> threads;
    threads.reserve(rc.threads);
    for (unsigned t = 0; t < rc.threads; ++t)
        threads.emplace_back(worker, t);
    while (ready.load() < rc.threads)
        std::this_thread::yield();

    const auto start = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (std::thread &t : threads)
        t.join();
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();

    const runtime::RegionStats stats = region->stats();
    region.reset();
    std::remove(path.c_str());

    RunOutcome out;
    out.totalOps = rc.opsPerThread * rc.threads;
    out.wallSeconds = wall;
    out.opsPerSec =
        wall > 0.0 ? static_cast<double>(out.totalOps) / wall : 0.0;
    out.updateP50Ns = updateLatency.percentile(50.0);
    out.updateP99Ns = updateLatency.percentile(99.0);
    out.writeFaults = stats.writeFaults;
    out.quotaSteals = stats.quotaSteals;
    out.blockedEvictions = stats.blockedEvictions;
    out.proactiveCopies = stats.proactiveCopies;
    out.bytesPersisted = stats.bytesPersisted;
    out.epochs = stats.epochs;
    out.watermarkRefills = stats.watermarkRefills;
    out.proactiveDonations = stats.proactiveDonations;
    out.shedEvictions = stats.shedEvictions;
    out.backoffRetries = stats.backoffRetries;
    out.starvedFaults = stats.starvedFaults;
    out.perShard = stats.perShard;

    // Sanity gate on the latency path: a p50 below the calibrated
    // cost of the bare timed pattern cannot come from real updates —
    // it means the histogram or timer path is broken (mis-binned
    // percentile, dropped samples, wrong clock).  Fail the whole
    // bench rather than emit a plausible-looking wrong number.
    if (updateLatency.count() > 0 &&
        out.updateP50Ns < timerFloorNs()) {
        std::cerr << "FAIL: update_p50_ns " << out.updateP50Ns
                  << " below the calibrated timed-pattern floor of "
                  << timerFloorNs()
                  << " ns — histogram/timer path is broken\n";
        std::exit(1);
    }
    return out;
}

double
median(std::vector<double> xs)
{
    std::sort(xs.begin(), xs.end());
    return xs[xs.size() / 2];
}

/** Render one per-shard counter as a JSON array. */
template <typename Get>
std::string
shardArray(const std::vector<runtime::RegionStats::ShardCounters> &ps,
           Get get)
{
    std::string out = "[";
    for (std::size_t i = 0; i < ps.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(get(ps[i]));
    }
    out += "]";
    return out;
}

/**
 * Warn when the container exposes one CPU: every configuration then
 * time-slices a single core, so thread/shard sweeps measure overhead,
 * not scaling.  Returns the CPU count so callers can record it.
 */
unsigned
reportHostCpus(const char *context)
{
    const unsigned host_cpus = std::thread::hardware_concurrency();
    std::cout << context << ": host_cpus " << host_cpus << "\n";
    if (host_cpus == 1)
        std::cout << "warn: host_cpus == 1 — thread/shard sweeps "
                     "time-slice one core; treat results as overhead, "
                     "not scaling, measurements\n";
    return host_cpus;
}

/**
 * Multicore scaling gate: 4 threads over 4 shards (copiers draining)
 * must beat the 1-thread/1-shard baseline by 1.5x in throughput
 * without more than doubling the update p99.  Only meaningful when
 * the host actually has cores to scale onto — on a 1-CPU container
 * every configuration time-slices one core, the ratio measures
 * scheduler fairness, and the gate is skipped NON-FATALLY with a
 * warning loud enough to notice in a CI log.
 */
int
runMulticoreGate(unsigned host_cpus)
{
    if (host_cpus <= 1) {
        std::cout
            << "\n"
            << "=====================================================\n"
            << "WARN: host_cpus == 1 — SKIPPING the multicore scaling\n"
            << "WARN: gate (4t/4s vs 1t/1s needs real cores).  This\n"
            << "WARN: host cannot validate multicore scaling; run the\n"
            << "WARN: gate on a multi-core machine before trusting\n"
            << "WARN: concurrency changes.\n"
            << "=====================================================\n";
        return 0;
    }

    RunConfig baseline;
    baseline.threads = 1;
    baseline.shards = 1;
    baseline.opsPerThread = 30000;

    RunConfig multi;
    multi.threads = 4;
    multi.shards = 4;
    multi.copierThreads = 2;
    multi.opsPerThread = 30000;

    constexpr int kRuns = 3;
    std::vector<double> baseTput, multiTput, baseP99, multiP99;
    for (int i = 0; i < kRuns; ++i) {
        RunConfig a = baseline, b = multi;
        a.seed += static_cast<std::uint64_t>(i);
        b.seed += static_cast<std::uint64_t>(i);
        const RunOutcome oa = runOnce(a);
        const RunOutcome ob = runOnce(b);
        baseTput.push_back(oa.opsPerSec);
        multiTput.push_back(ob.opsPerSec);
        baseP99.push_back(static_cast<double>(oa.updateP99Ns));
        multiP99.push_back(static_cast<double>(ob.updateP99Ns));
    }
    const double speedup = median(baseTput) > 0.0
                               ? median(multiTput) / median(baseTput)
                               : 0.0;
    const double p99_ratio = median(baseP99) > 0.0
                                 ? median(multiP99) / median(baseP99)
                                 : 0.0;

    std::cout << "multicore: 4t/4s vs 1t/1s speedup " << speedup
              << " (need >= 1.5), p99 ratio " << p99_ratio
              << " (need <= 2.0)\n";
    const bool ok = speedup >= 1.5 && p99_ratio <= 2.0;
    std::cout << (ok ? "PASS" : "FAIL")
              << ": multicore scaling gate\n";
    return ok ? 0 : 1;
}

int
runSmoke()
{
    // The 1-thread parity gate is valid on any CPU count (both sides
    // time-slice identically), but record the environment so a CI log
    // reader can judge the absolute numbers.
    const unsigned host_cpus = reportHostCpus("smoke");

    // Fault path alone: inline persistence on both sides.
    RunConfig unsharded;
    unsharded.threads = 1;
    unsharded.shards = 1;
    unsharded.opsPerThread = 30000;

    RunConfig sharded = unsharded;
    sharded.shards = 8;

    // Strictly interleave the two configurations so slow drift in
    // host load (CI neighbours on a shared core) hits both medians
    // alike instead of biasing whichever config ran later.
    constexpr int kRuns = 5;
    std::vector<double> baseRuns, shardRuns;
    for (int i = 0; i < kRuns; ++i) {
        RunConfig a = unsharded, b = sharded;
        a.seed += static_cast<std::uint64_t>(i);
        b.seed += static_cast<std::uint64_t>(i);
        baseRuns.push_back(runOnce(a).opsPerSec);
        shardRuns.push_back(runOnce(b).opsPerSec);
    }
    const double base = median(baseRuns);
    const double shard = median(shardRuns);
    const double ratio = base > 0.0 ? shard / base : 0.0;

    std::cout << "smoke: unsharded " << base << " ops/s, sharded(8) "
              << shard << " ops/s, ratio " << ratio << "\n";
    const bool ok = ratio >= 0.95;
    std::cout << (ok ? "PASS" : "FAIL")
              << ": 1-thread sharded throughput within 5% of the "
                 "unsharded baseline\n";
    if (!ok)
        return 1;
    return runMulticoreGate(host_cpus);
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--smoke")
            return runSmoke();
        // Single configuration (diagnostics / profiling):
        //   --one <threads> <shards> <copiers> <ops-per-thread>
        if (std::string(argv[i]) == "--one" && i + 4 < argc) {
            RunConfig rc;
            rc.threads = static_cast<unsigned>(std::atoi(argv[i + 1]));
            rc.shards = static_cast<unsigned>(std::atoi(argv[i + 2]));
            rc.copierThreads =
                static_cast<unsigned>(std::atoi(argv[i + 3]));
            rc.opsPerThread =
                static_cast<std::uint64_t>(std::atoll(argv[i + 4]));
            const RunOutcome out = runOnce(rc);
            std::cout << "threads " << rc.threads << " shards "
                      << rc.shards << " copiers " << rc.copierThreads
                      << ": " << out.opsPerSec / 1000.0 << " Kops/s, "
                      << "p50 " << out.updateP50Ns / 1000.0
                      << " us, p99 " << out.updateP99Ns / 1000.0
                      << " us, faults " << out.writeFaults
                      << ", evict " << out.blockedEvictions
                      << ", proact " << out.proactiveCopies
                      << ", epochs " << out.epochs << ", steals "
                      << out.quotaSteals << ", refills "
                      << out.watermarkRefills << ", donates "
                      << out.proactiveDonations << ", shed "
                      << out.shedEvictions << ", backoff "
                      << out.backoffRetries << ", starved "
                      << out.starvedFaults << "\n";
            return 0;
        }
    }

    const unsigned hostCpus = reportHostCpus("sweep");
    const std::vector<unsigned> threadSweep = {1, 2, 4, 8};
    const std::vector<unsigned> shardSweep = {1, 8};

    Table table("Ablation: YCSB-B scalability, threads x shards "
                "(host cpus: " + std::to_string(hostCpus) + ")");
    table.setHeader({"Threads", "Shards", "Copiers", "Ops",
                     "Kops/s", "Upd p50 (us)", "Upd p99 (us)",
                     "Faults", "Steals", "Refills", "Donates",
                     "Shed", "Backoff", "Evict", "Proact",
                     "MiB", "Epochs"});

    struct Row
    {
        RunConfig rc;
        RunOutcome out;
    };
    std::vector<Row> rows;

    for (unsigned shards : shardSweep) {
        for (unsigned threads : threadSweep) {
            RunConfig rc;
            rc.threads = threads;
            rc.shards = shards;
            // Background copiers only make sense with shards to
            // drain; the unsharded rows are the pre-PR baseline.
            rc.copierThreads = shards > 1 ? 2 : 0;
            const RunOutcome out = runOnce(rc);
            rows.push_back({rc, out});
            table.addRow(
                {std::to_string(threads), std::to_string(shards),
                 std::to_string(rc.copierThreads),
                 std::to_string(out.totalOps),
                 Table::fmt(out.opsPerSec / 1000.0, 1),
                 Table::fmt(static_cast<double>(out.updateP50Ns) /
                            1000.0, 1),
                 Table::fmt(static_cast<double>(out.updateP99Ns) /
                            1000.0, 1),
                 std::to_string(out.writeFaults),
                 std::to_string(out.quotaSteals),
                 std::to_string(out.watermarkRefills),
                 std::to_string(out.proactiveDonations),
                 std::to_string(out.shedEvictions),
                 std::to_string(out.backoffRetries),
                 std::to_string(out.blockedEvictions),
                 std::to_string(out.proactiveCopies),
                 Table::fmt(static_cast<double>(out.bytesPersisted) /
                            (1024.0 * 1024.0), 1),
                 std::to_string(out.epochs)});
        }
    }
    table.print(std::cout);

    std::ofstream json("BENCH_concurrency.json");
    json << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        json << "  {\"threads\": " << r.rc.threads
             << ", \"shards\": " << r.rc.shards
             << ", \"copier_threads\": " << r.rc.copierThreads
             << ", \"ops\": " << r.out.totalOps
             << ", \"wall_seconds\": " << r.out.wallSeconds
             << ", \"throughput_ops_per_sec\": " << r.out.opsPerSec
             << ", \"update_p50_ns\": " << r.out.updateP50Ns
             << ", \"update_p99_ns\": " << r.out.updateP99Ns
             << ", \"write_faults\": " << r.out.writeFaults
             << ", \"quota_steals\": " << r.out.quotaSteals
             << ", \"watermark_refills\": " << r.out.watermarkRefills
             << ", \"proactive_donations\": "
             << r.out.proactiveDonations
             << ", \"shed_evictions\": " << r.out.shedEvictions
             << ", \"backoff_retries\": " << r.out.backoffRetries
             << ", \"starved_faults\": " << r.out.starvedFaults
             << ", \"per_shard\": {"
             << "\"steals\": " << shardArray(r.out.perShard,
                    [](const auto &s) { return s.steals; })
             << ", \"watermark_refills\": "
             << shardArray(r.out.perShard,
                    [](const auto &s) { return s.watermarkRefills; })
             << ", \"proactive_donations\": "
             << shardArray(r.out.perShard,
                    [](const auto &s) { return s.proactiveDonations; })
             << ", \"backoff_retries\": "
             << shardArray(r.out.perShard,
                    [](const auto &s) { return s.backoffRetries; })
             << "}"
             << ", \"host_cpus\": " << hostCpus
             << ", \"single_cpu_warning\": "
             << (hostCpus == 1 ? "true" : "false") << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "]\n";
    std::cout << "\nWrote BENCH_concurrency.json\n";
    return 0;
}
