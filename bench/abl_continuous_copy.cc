/**
 * @file
 * Extension ablation: threshold-triggered continuous copying vs. the
 * paper's epoch-boundary-only copying.
 *
 * The paper pumps proactive copies once per epoch; bursts that
 * arrive mid-epoch can exhaust the slack and block on the SSD (one
 * of its three stated overhead sources).  This library also supports
 * launching copies the moment the dirty count crosses the threshold
 * (in the fault path and on IO completion).  The ablation shows the
 * blocked-eviction count collapsing and write-heavy throughput
 * improving — a design refinement the paper's own mechanism enables.
 */

#include <iostream>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace viyojit;
using namespace viyojit::bench;

int
main()
{
    Table table("Ablation: continuous vs boundary-only proactive "
                "copying (2 GB budget)");
    table.setHeader({"Workload", "Boundary (K-ops/s)",
                     "Boundary blocks", "Continuous (K-ops/s)",
                     "Continuous blocks", "Gain"});

    for (char workload : {'A', 'B', 'C', 'D', 'F'}) {
        ExperimentConfig boundary;
        boundary.workload = workload;
        boundary.budgetPaperGb = 2.0;
        boundary.continuousCopyTrigger = false;
        const ExperimentResult paper_style = runExperiment(boundary);

        ExperimentConfig continuous = boundary;
        continuous.continuousCopyTrigger = true;
        const ExperimentResult extended = runExperiment(continuous);

        table.addRow(
            {std::string("YCSB-") + workload,
             Table::fmt(paper_style.run.throughputOpsPerSec / 1000.0),
             Table::fmt(paper_style.controller.blockedEvictions),
             Table::fmt(extended.run.throughputOpsPerSec / 1000.0),
             Table::fmt(extended.controller.blockedEvictions),
             Table::pct(extended.run.throughputOpsPerSec /
                            paper_style.run.throughputOpsPerSec -
                        1.0)});
    }
    table.print(std::cout);

    std::cout << "\nContinuous triggering removes nearly all"
                 " SSD-blocked evictions; the benefit concentrates in"
                 " write-heavy workloads, where the paper reports its"
                 " largest overheads.\n";
    return 0;
}
