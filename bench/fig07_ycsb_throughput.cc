/**
 * @file
 * Figure 7: YCSB throughput vs. dirty budget, Viyojit against the
 * full-battery NV-DRAM baseline, for workloads A, B, C, D, and F.
 *
 * Paper reference points (17.5 GB heap, budgets as % of it):
 *   - 11% battery (2 GB): -25% (A), -8% (B), -7% (C), -10% (D),
 *     -17% (F);
 *   - throughput approaches the baseline as the budget approaches
 *     the heap size (read-heavy workloads converge first).
 */

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace viyojit;
using namespace viyojit::bench;

int
main(int argc, char **argv)
{
    // --quick trims the budget sweep for CI-style smoke runs.
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

    const std::vector<char> workloads = {'A', 'B', 'C', 'D', 'F'};
    const std::vector<double> budgets_gb =
        quick ? std::vector<double>{2.0, 8.0, 18.0}
              : std::vector<double>{1.0, 2.0, 4.0, 6.0, 8.0, 10.0,
                                    12.0, 14.0, 16.0, 18.0};

    std::printf("Figure 7: YCSB throughput vs dirty budget "
                "(scaled 1/1024; 17.5 paper-GB initial heap)\n\n");

    Table summary("Fig 7f summary: throughput overhead vs baseline");
    summary.setHeader({"Workload", "11% (2 GB)", "23% (4 GB)",
                       "46% (8 GB)"});

    for (char workload : workloads) {
        ExperimentConfig base_cfg;
        base_cfg.workload = workload;
        base_cfg.budgetPaperGb = 0.0; // baseline
        const ExperimentResult baseline = runExperiment(base_cfg);

        Table table(std::string("Fig 7: YCSB-") + workload);
        table.setHeader({"Budget (GB)", "Budget (% heap)",
                         "Viyojit (K-ops/s)", "NV-DRAM (K-ops/s)",
                         "Overhead"});

        double over2 = 0.0;
        double over4 = 0.0;
        double over8 = 0.0;
        for (double gb : budgets_gb) {
            ExperimentConfig cfg;
            cfg.workload = workload;
            cfg.budgetPaperGb = gb;
            const ExperimentResult result = runExperiment(cfg);
            const double overhead =
                throughputOverhead(result, baseline);
            if (gb == 2.0)
                over2 = overhead;
            if (gb == 4.0)
                over4 = overhead;
            if (gb == 8.0)
                over8 = overhead;
            table.addRow(
                {Table::fmt(gb, 0), Table::pct(gb / 17.5),
                 Table::fmt(result.run.throughputOpsPerSec / 1000.0),
                 Table::fmt(baseline.run.throughputOpsPerSec / 1000.0),
                 Table::pct(overhead)});
        }
        table.print(std::cout);
        std::cout << "\n";
        summary.addRow({std::string("YCSB-") + workload,
                        Table::pct(over2), Table::pct(over4),
                        Table::pct(over8)});
    }

    summary.print(std::cout);
    std::printf("\nPaper: 11%% battery costs 25%% (A), 8%% (B), "
                "7%% (C), 10%% (D), 17%% (F) of throughput.\n");
    return 0;
}
