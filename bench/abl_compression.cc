/**
 * @file
 * Copy-out compression ablation: raw page writeback versus
 * measured-size compressed copy-out, across payload shapes.
 *
 * The paper's section-7 argument: the dirty budget is a BANDWIDTH
 * budget in disguise — the battery covers raw_bytes / drain_rate
 * seconds of flush — so shrinking the copy-out stream multiplies the
 * raw bytes the same joules retire.  Whether it does depends on the
 * payload:
 *
 *   records    - short random keys padded with constant filler, the
 *                shape the codec is built for; stored streams shrink
 *                several-fold and the measured ratio feeds straight
 *                into the budget arithmetic.
 *   random     - incompressible by construction; the codec must
 *                bypass to raw (stored == raw) and the flush must
 *                cost the same sim ticks as with the codec off.
 *
 * Each cell drives the same seeded access stream through the same
 * manager twice (codec off / codec on), drains on simulated battery
 * power, and re-derives the dirty budget from the MEASURED raw drain
 * rate — the multiplier reported is end-to-end, not the codec's
 * in-vitro ratio.  The governor-style prediction from the tracker's
 * conservative floor ratio is printed alongside so the two ways of
 * arriving at the budget can be compared.  Emits
 * BENCH_compression.json; --smoke gates the claims for CI.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "battery/battery.hh"
#include "common/distributions.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "core/dirty_tracker.hh"
#include "core/manager.hh"
#include "mmu/mmu.hh"
#include "sim/context.hh"
#include "storage/ssd.hh"

using namespace viyojit;

namespace
{

enum class Workload
{
    recordsSequential,
    recordsZipfian,
    randomUniform,
};

const char *
workloadName(Workload w)
{
    switch (w) {
    case Workload::recordsSequential:
        return "records-seq";
    case Workload::recordsZipfian:
        return "records-zipf";
    case Workload::randomUniform:
        return "random-uniform";
    }
    return "?";
}

bool
compressible(Workload w)
{
    return w != Workload::randomUniform;
}

struct RunConfig
{
    std::uint64_t pages = 4096;
    std::uint64_t budgetPages = 512;
    std::uint64_t accesses = 8 * 4096;
    std::uint64_t pageSize = 4096;
};

struct RunOutcome
{
    Tick streamTicks = 0;
    Tick flushTicks = 0;
    std::uint64_t flushedPages = 0;
    /** Wire bytes the SSD transferred vs raw bytes retired. */
    std::uint64_t wireBytes = 0;
    std::uint64_t rawBytes = 0;
    /** Tracker aggregates after the run (1.0 with the codec off). */
    double ewmaRatio = 1.0;
    double floorRatio = 1.0;
    /** Raw-byte drain rate of the battery flush, bytes/s. */
    double rawDrainRate = 0.0;
    /** Flush ticks normalized per drained page. */
    double ticksPerPage = 0.0;
};

/**
 * Drive one seeded content-write stream through a manager and drain
 * it on battery.  The SSD is transfer-bound for 4 KiB pages (10 us
 * transfer vs 2 us admission), which is where shrinking the stream
 * pays; runs coalesce in both modes so the comparison isolates the
 * codec.
 */
RunOutcome
runOne(Workload workload, bool codec, const RunConfig &rc)
{
    sim::SimContext ctx;
    storage::SsdConfig ssd_config;
    ssd_config.writeBandwidth = 400.0e6;
    ssd_config.readBandwidth = 800.0e6;
    ssd_config.perIoLatency = 2_us;
    ssd_config.enableCompression = codec;
    storage::Ssd ssd(ctx, ssd_config);

    core::ViyojitConfig config;
    config.pageSize = rc.pageSize;
    config.dirtyBudgetPages = rc.budgetPages;
    config.coalesceRuns = true;
    config.maxRunPages = 16;
    config.extentShift = 4;
    config.maxOutstandingIos = 64;
    core::ViyojitManager manager(ctx, ssd, config, mmu::MmuCostModel{},
                                 rc.pages);
    const Addr base = manager.vmmap(rc.pages * rc.pageSize);
    manager.start();

    Rng rng(0xc0dec0ULL + static_cast<std::uint64_t>(workload));
    ZipfianDistribution zipf(rc.pages);
    std::vector<char> payload(rc.pageSize);

    RunOutcome out;
    const Tick stream_start = ctx.now();
    for (std::uint64_t i = 0; i < rc.accesses; ++i) {
        PageNum page = 0;
        switch (workload) {
        case Workload::recordsSequential:
            page = i % rc.pages;
            break;
        case Workload::recordsZipfian:
            page = zipf.next(rng);
            break;
        case Workload::randomUniform:
            page = rng.nextBounded(rc.pages);
            break;
        }
        if (compressible(workload)) {
            // Record-style page: ~20% random key bytes, the rest
            // constant filler (the shape of serialized KV records).
            for (std::uint64_t b = 0; b < rc.pageSize; ++b)
                payload[b] = b % 100 < 20
                                 ? static_cast<char>(rng.next())
                                 : static_cast<char>(0x20);
        } else {
            for (std::uint64_t b = 0; b < rc.pageSize; ++b)
                payload[b] = static_cast<char>(rng.next());
        }
        manager.memWrite(base + page * rc.pageSize, payload.data(),
                         rc.pageSize);
    }

    out.streamTicks = ctx.now() - stream_start;
    const core::FlushReport report = manager.powerFailureFlush();
    out.flushTicks = report.flushDuration;
    out.flushedPages = report.dirtyPagesAtFailure;
    out.wireBytes = ssd.bytesWritten();
    out.rawBytes = ssd.logicalBytesWritten();
    out.ewmaRatio = manager.controller().tracker().ewmaRatio();
    out.floorRatio = manager.controller().tracker().floorRatio();
    if (report.flushDuration > 0) {
        out.rawDrainRate =
            static_cast<double>(report.bytesFlushed) /
            ticksToSeconds(report.flushDuration);
        if (out.flushedPages > 0)
            out.ticksPerPage =
                static_cast<double>(out.flushTicks) /
                static_cast<double>(out.flushedPages);
    }
    return out;
}

struct Sample
{
    Workload workload;
    RunOutcome off;
    RunOutcome on;
    /** End-to-end budget multiplier from the measured drain rates. */
    double budgetMultiplier = 0.0;
    /** Governor-style prediction from the conservative floor. */
    double floorPrediction = 1.0;
    /** Wire-byte reduction of the whole run (raw / wire). */
    double wireReduction = 1.0;
    /** Per-page flush-tick ratio, codec-on / codec-off. */
    double tickRatio = 1.0;
    std::uint64_t budgetPagesOff = 0;
    std::uint64_t budgetPagesOn = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";

    RunConfig rc;
    if (smoke) {
        rc.pages = 1024;
        rc.budgetPages = 128;
        rc.accesses = 16 * rc.pages;
    }

    // Battery sizing context for the budget columns: a 300 W host
    // with a 3 kJ reserve, 0.8 bandwidth safety factor.
    battery::PowerModel power;
    power.cpuWatts = 240.0;
    power.ssdWatts = 20.0;
    power.otherWatts = 40.0;
    const double reserve_joules = 3000.0;

    const unsigned host_cpus = std::thread::hardware_concurrency();

    Table table("Ablation: raw copy-out vs measured-size compression "
                "(transfer-bound SSD)");
    table.setHeader({"Workload", "Wire x", "EWMA", "Floor",
                     "Budget off", "Budget on", "Multiplier",
                     "Tick ratio"});

    std::vector<Sample> samples;
    for (Workload workload :
         {Workload::recordsSequential, Workload::recordsZipfian,
          Workload::randomUniform}) {
        Sample s;
        s.workload = workload;
        s.off = runOne(workload, /*codec=*/false, rc);
        s.on = runOne(workload, /*codec=*/true, rc);

        // The budget each mode's MEASURED raw drain rate buys at the
        // same reserve: compression raises the raw drain rate (the
        // same wire seconds retire more raw bytes), and that — not a
        // codec benchmark — is what multiplies the budget.
        battery::DirtyBudgetCalculator calc(power, 400.0e6, 0.8);
        calc.setMeasuredFlushBandwidth(s.off.rawDrainRate);
        s.budgetPagesOff =
            calc.budgetPages(reserve_joules, rc.pageSize);
        calc.setMeasuredFlushBandwidth(s.on.rawDrainRate);
        s.budgetPagesOn =
            calc.budgetPages(reserve_joules, rc.pageSize);
        s.budgetMultiplier =
            s.budgetPagesOff > 0
                ? static_cast<double>(s.budgetPagesOn) /
                      static_cast<double>(s.budgetPagesOff)
                : 0.0;
        s.floorPrediction = s.on.floorRatio;
        s.wireReduction =
            s.on.wireBytes > 0
                ? static_cast<double>(s.on.rawBytes) /
                      static_cast<double>(s.on.wireBytes)
                : 1.0;
        s.tickRatio = s.off.ticksPerPage > 0.0
                          ? s.on.ticksPerPage / s.off.ticksPerPage
                          : 1.0;

        samples.push_back(s);
        table.addRow({workloadName(workload),
                      Table::fmt(s.wireReduction, 2) + "x",
                      Table::fmt(s.on.ewmaRatio, 2),
                      Table::fmt(s.on.floorRatio, 2),
                      std::to_string(s.budgetPagesOff),
                      std::to_string(s.budgetPagesOn),
                      Table::fmt(s.budgetMultiplier, 2) + "x",
                      Table::fmt(s.tickRatio, 3)});
    }
    table.print(std::cout);

    std::ofstream json("BENCH_compression.json");
    json << "[\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        json << "  {\"workload\": \"" << workloadName(s.workload)
             << "\", \"host_cpus\": " << host_cpus
             << ", \"pages\": " << rc.pages
             << ", \"budget_pages\": " << rc.budgetPages
             << ", \"accesses\": " << rc.accesses
             << ", \"off_flush_ticks\": " << s.off.flushTicks
             << ", \"on_flush_ticks\": " << s.on.flushTicks
             << ", \"off_flushed_pages\": " << s.off.flushedPages
             << ", \"on_flushed_pages\": " << s.on.flushedPages
             << ", \"on_wire_bytes\": " << s.on.wireBytes
             << ", \"on_raw_bytes\": " << s.on.rawBytes
             << ", \"wire_reduction\": " << s.wireReduction
             << ", \"ewma_ratio\": " << s.on.ewmaRatio
             << ", \"floor_ratio\": " << s.on.floorRatio
             << ", \"off_raw_drain_bps\": " << s.off.rawDrainRate
             << ", \"on_raw_drain_bps\": " << s.on.rawDrainRate
             << ", \"budget_pages_off\": " << s.budgetPagesOff
             << ", \"budget_pages_on\": " << s.budgetPagesOn
             << ", \"budget_multiplier\": " << s.budgetMultiplier
             << ", \"flush_tick_ratio\": " << s.tickRatio << "}"
             << (i + 1 < samples.size() ? ",\n" : "\n");
    }
    json << "]\n";
    std::cout << "\nWrote BENCH_compression.json\n";

    // The headline claims: measured compression must multiply the
    // effective budget where the payload allows it, and must cost
    // nothing measurable where it does not.
    bool ok = true;
    const double zipf_bar = smoke ? 1.2 : 1.3;
    const double seq_bar = smoke ? 1.2 : 1.3;
    for (const Sample &s : samples) {
        if (s.workload == Workload::randomUniform)
            continue;
        const double bar =
            s.workload == Workload::recordsZipfian ? zipf_bar
                                                   : seq_bar;
        if (s.budgetMultiplier < bar) {
            ok = false;
            std::cout << "FAIL: " << workloadName(s.workload)
                      << " budget multiplier " << s.budgetMultiplier
                      << "x below the " << bar << "x bar\n";
        }
    }
    std::cout << (ok ? "PASS" : "FAIL")
              << ": compressed copy-out multiplies the effective "
                 "budget >=" << zipf_bar << "x on record payloads\n";

    // Bypass gate: on incompressible data the codec must step aside —
    // per-page flush ticks within 3% of the codec-off run, and no
    // wire-byte inflation.
    const Sample &uniform = samples.back();
    const bool bypass_ok =
        uniform.tickRatio >= 0.97 && uniform.tickRatio <= 1.03 &&
        uniform.on.wireBytes <= uniform.on.rawBytes;
    if (!bypass_ok)
        ok = false;
    std::cout << (bypass_ok ? "PASS" : "FAIL")
              << ": incompressible flush at "
              << Table::fmt(uniform.tickRatio, 3)
              << "x of codec-off per-page ticks (bar 0.97..1.03)\n";
    return ok ? 0 : 1;
}
