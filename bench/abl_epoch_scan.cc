/**
 * @file
 * Epoch-boundary cost ablation: legacy O(mapped-pages) paths (eager
 * history shifts, full page-table walk, per-epoch victim sort)
 * versus the O(dirty) fast paths (lazy histories, summary-bit-pruned
 * hierarchical scan, bucketed victim queue).
 *
 * The paper runs a 1 ms epoch loop whose boundary work — dirty-bit
 * scan, history roll, victim ordering — was proportional to the
 * *mapped* heap.  Viyojit's whole point is that the battery bounds
 * the *dirty* set far below capacity, so at production heaps the
 * boundary must cost O(dirty).  This bench sweeps mapped pages x
 * dirty fraction, times one epoch boundary on both paths, and emits
 * BENCH_epoch_scan.json.
 */

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "core/dirty_tracker.hh"
#include "core/recency.hh"
#include "mmu/mmu.hh"
#include "sim/context.hh"

using namespace viyojit;

namespace
{

struct Sample
{
    std::uint64_t mappedPages;
    double dirtyFraction;
    std::uint64_t dirtyPages;
    double legacyNsPerEpoch;
    double fastNsPerEpoch;
    double speedup;
};

/**
 * Time the epoch-boundary body (scan + fold + queue maintenance)
 * exactly as DirtyBudgetController::onEpochBoundary composes it,
 * over `epochs` boundaries with `dirty_pages` random pages dirtied
 * before each.  Returns wall ns per epoch.
 */
double
timeEpochBoundary(std::uint64_t mapped_pages, std::uint64_t dirty_pages,
                  bool legacy, int epochs)
{
    sim::SimContext ctx;
    mmu::MmuCostModel costs;
    mmu::Mmu mmu(ctx, costs);
    for (PageNum p = 0; p < mapped_pages; ++p)
        mmu.mapPage(p, /*writable=*/true);

    core::DirtyPageTracker tracker(mapped_pages);
    core::EpochRecencyTracker recency(mapped_pages, 64);
    recency.setLegacyQueue(legacy);
    recency.rebuildVictimQueue(tracker);

    Rng rng(0xab1e9045ULL + mapped_pages + dirty_pages);
    std::vector<PageNum> dirtied;
    dirtied.reserve(dirty_pages);

    std::chrono::steady_clock::duration total{0};
    for (int e = 0; e < epochs; ++e) {
        // Untimed: fault-path work dirties a random subset.
        dirtied.clear();
        while (dirtied.size() < dirty_pages) {
            const PageNum p = rng.nextBounded(mapped_pages);
            if (!tracker.markDirty(p))
                continue;
            recency.recordUpdate(p);
            mmu.pageTable().noteDirty(p);
            dirtied.push_back(p);
        }

        // Timed: the boundary as the controller runs it.
        const auto start = std::chrono::steady_clock::now();
        mmu.scanAndClearDirty(
            0, mapped_pages, /*flush_tlb=*/false,
            [&](PageNum page, bool was_dirty) {
                if (was_dirty)
                    recency.recordUpdate(page);
            },
            legacy);
        tracker.resetEpochCount();
        recency.advanceEpoch();
        recency.rebuildVictimQueue(tracker);
        total += std::chrono::steady_clock::now() - start;

        // Untimed: proactive copies drain the dirty set again.
        for (PageNum p : dirtied)
            tracker.markClean(p);
    }
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(total)
            .count());
    return ns / epochs;
}

} // namespace

int
main()
{
    const std::vector<std::uint64_t> mapped_sweep = {
        1ULL << 16, 1ULL << 18, 1ULL << 20};
    const std::vector<double> fraction_sweep = {0.0001, 0.001, 0.01,
                                                0.1};

    Table table("Ablation: epoch-boundary cost, legacy O(mapped) vs "
                "O(dirty) fast path");
    table.setHeader({"Mapped pages", "Dirty frac", "Dirty pages",
                     "Legacy (us/epoch)", "Fast (us/epoch)",
                     "Speedup"});

    std::vector<Sample> samples;
    for (std::uint64_t mapped : mapped_sweep) {
        for (double frac : fraction_sweep) {
            const std::uint64_t dirty = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       static_cast<double>(mapped) * frac));
            // Keep total work comparable across sizes.
            const int epochs =
                mapped >= (1ULL << 20) ? 10 : 30;
            const double legacy_ns =
                timeEpochBoundary(mapped, dirty, true, epochs);
            const double fast_ns =
                timeEpochBoundary(mapped, dirty, false, epochs);
            const Sample s{mapped,
                           frac,
                           dirty,
                           legacy_ns,
                           fast_ns,
                           legacy_ns / fast_ns};
            samples.push_back(s);
            table.addRow({std::to_string(mapped), Table::fmt(frac, 4),
                          std::to_string(dirty),
                          Table::fmt(legacy_ns / 1000.0),
                          Table::fmt(fast_ns / 1000.0),
                          Table::fmt(s.speedup, 1) + "x"});
        }
    }
    table.print(std::cout);

    std::ofstream json("BENCH_epoch_scan.json");
    json << "[\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        json << "  {\"mapped_pages\": " << s.mappedPages
             << ", \"dirty_fraction\": " << s.dirtyFraction
             << ", \"dirty_pages\": " << s.dirtyPages
             << ", \"legacy_ns_per_epoch\": " << s.legacyNsPerEpoch
             << ", \"fast_ns_per_epoch\": " << s.fastNsPerEpoch
             << ", \"speedup\": " << s.speedup << "}"
             << (i + 1 < samples.size() ? "," : "") << "\n";
    }
    json << "]\n";
    std::cout << "\nWrote BENCH_epoch_scan.json\n";

    // The headline claim: at a 1M-page heap with <=1% dirty, the
    // boundary must be at least an order of magnitude cheaper.
    bool ok = true;
    for (const Sample &s : samples) {
        if (s.mappedPages >= (1ULL << 20) && s.dirtyFraction <= 0.01 &&
            s.speedup < 10.0) {
            ok = false;
            std::cout << "FAIL: only " << s.speedup << "x at "
                      << s.mappedPages << " pages, "
                      << s.dirtyFraction << " dirty\n";
        }
    }
    std::cout << (ok ? "PASS" : "FAIL")
              << ": >=10x epoch-boundary reduction at 1M mapped "
                 "pages, <=1% dirty\n";
    return ok ? 0 : 1;
}
