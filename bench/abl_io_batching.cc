/**
 * @file
 * Coalesced-IO flush-path ablation: per-page proactive copies versus
 * run detection + scatter-gather writeback, across access patterns.
 *
 * The flush path is IOPS-bound on real devices long before it is
 * bandwidth-bound: a 4 KiB page write costs one admission slot no
 * matter how small it is.  Coalescing page-number-adjacent victims
 * into one vectored run amortizes that slot across the run.  How
 * many runs actually form depends on the access pattern and on
 * whether victim selection is locality-aware (extent secondary key):
 *
 *   sequential - victims are naturally adjacent; runs form freely.
 *   zipfian    - a dense hot head plus scattered cold tail; the
 *                extent key regroups same-extent victims that pure
 *                recency order interleaves.
 *   uniform    - victims land anywhere; runs rarely form, and the
 *                coalesced path must cost no more than per-page.
 *
 * Each cell runs the same access stream through the same manager
 * twice (per-page vs coalesced+extent), then drains on simulated
 * battery power.  The measured drain rate feeds the battery sizing
 * loop: DirtyBudgetCalculator::setMeasuredFlushBandwidth rederives
 * the dirty budget and the J/GiB provisioning cost from what the
 * flush path actually achieves, not the nameplate bandwidth.
 * Emits BENCH_io_batching.json; --smoke gates the claims for CI.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "battery/battery.hh"
#include "common/distributions.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "common/types.hh"
#include "core/manager.hh"
#include "mmu/mmu.hh"
#include "sim/context.hh"
#include "storage/ssd.hh"

using namespace viyojit;

namespace
{

enum class Pattern
{
    sequential,
    zipfian,
    uniform,
};

const char *
patternName(Pattern p)
{
    switch (p) {
    case Pattern::sequential:
        return "sequential";
    case Pattern::zipfian:
        return "zipfian";
    case Pattern::uniform:
        return "uniform";
    }
    return "?";
}

struct RunConfig
{
    std::uint64_t pages = 4096;
    std::uint64_t budgetPages = 512;
    std::uint64_t accesses = 8 * 4096;
    std::uint64_t pageSize = 4096;
};

struct RunOutcome
{
    Tick streamTicks = 0;
    Tick flushTicks = 0;
    std::uint64_t flushedPages = 0;
    std::uint64_t runSubmits = 0;
    std::uint64_t runPagesCoalesced = 0;
    std::uint64_t runPagesBridged = 0;
    double avgRunPages = 1.0;
    /** Drain rate achieved by the battery flush, bytes/s. */
    double flushBandwidth = 0.0;
    /** Background-scrub work done during the stream (scrub mode). */
    std::uint64_t scrubScanned = 0;
    std::uint64_t scrubSkippedBusy = 0;
    std::uint64_t scrubBudgetSkips = 0;
};

/**
 * Drive one access stream through a manager and drain it on battery.
 * The SSD is tuned to be admission-bound for 4 KiB pages (40 us IOPS
 * gate vs 2 us transfer), which is where coalescing pays.
 */
RunOutcome
runOne(Pattern pattern, bool coalesced, const RunConfig &rc,
       std::uint64_t scrub_pages_per_slice = 0)
{
    sim::SimContext ctx;
    storage::SsdConfig ssd_config;
    ssd_config.writeBandwidth = 2.0e9;
    ssd_config.maxIops = 25000.0;
    ssd_config.perIoLatency = 10_us;
    storage::Ssd ssd(ctx, ssd_config);

    core::ViyojitConfig config;
    config.pageSize = rc.pageSize;
    config.dirtyBudgetPages = rc.budgetPages;
    config.coalesceRuns = coalesced;
    config.maxRunPages = 16;
    config.extentShift = coalesced ? 4 : 0;
    // Bridge up to 8 clean pages per gap: the admission slot (40 us)
    // costs 20x the per-page transfer (2 us), so short gaps are
    // cheaper to write through than to split the run over.
    config.maxBridgePages = coalesced ? 8 : 0;
    // Enough in-flight page credit for several full runs: with the
    // default cap of one run, every completion refills one page and
    // the staging window degenerates to per-page writes.
    config.maxOutstandingIos = 64;
    core::ViyojitManager manager(ctx, ssd, config, mmu::MmuCostModel{},
                                 rc.pages);
    const Addr base = manager.vmmap(rc.pages * rc.pageSize);
    manager.start();

    Rng rng(0x10ba7c4ULL + static_cast<std::uint64_t>(pattern));
    ZipfianDistribution zipf(rc.pages);

    // Scrub cadence: one bounded pass per 1/64th of the stream, the
    // shape the runtime's epoch thread gives it (scrubPagesPerEpoch).
    const std::uint64_t slice =
        scrub_pages_per_slice > 0
            ? std::max<std::uint64_t>(1, rc.accesses / 64)
            : 0;

    RunOutcome out;
    const Tick stream_start = ctx.now();
    for (std::uint64_t i = 0; i < rc.accesses; ++i) {
        PageNum page = 0;
        switch (pattern) {
        case Pattern::sequential:
            page = i % rc.pages;
            break;
        case Pattern::zipfian:
            page = zipf.next(rng);
            break;
        case Pattern::uniform:
            page = rng.nextBounded(rc.pages);
            break;
        }
        manager.write(base + page * rc.pageSize, rc.pageSize);
        if (slice > 0 && (i + 1) % slice == 0) {
            const core::ScrubReport scrub =
                manager.scrubPass(scrub_pages_per_slice);
            out.scrubScanned += scrub.scanned;
            out.scrubSkippedBusy += scrub.skippedBusy;
            out.scrubBudgetSkips += scrub.skippedBudget;
        }
    }

    out.streamTicks = ctx.now() - stream_start;
    const core::IoFaultStats pre = manager.ioFaultStats();
    const std::uint64_t pre_pages = ssd.pageWriteCount();
    const core::FlushReport report = manager.powerFailureFlush();
    out.flushTicks = report.flushDuration;
    out.flushedPages = report.dirtyPagesAtFailure;
    const core::IoFaultStats io = manager.ioFaultStats();
    out.runSubmits = io.runSubmits;
    out.runPagesCoalesced = io.runPagesCoalesced;
    out.runPagesBridged = manager.controller().stats().runPagesBridged;
    // Average pages per device IO over the drain itself, counting
    // the per-page submissions coalescing failed to batch.
    const std::uint64_t drain_pages = ssd.pageWriteCount() - pre_pages;
    const std::uint64_t drain_run_pages =
        io.runPagesCoalesced - pre.runPagesCoalesced;
    const std::uint64_t drain_runs = io.runSubmits - pre.runSubmits;
    const std::uint64_t ios =
        drain_pages - drain_run_pages + drain_runs;
    out.avgRunPages = ios > 0 ? static_cast<double>(drain_pages) /
                                    static_cast<double>(ios)
                              : 1.0;
    if (report.flushDuration > 0)
        out.flushBandwidth =
            static_cast<double>(report.bytesFlushed) /
            ticksToSeconds(report.flushDuration);
    return out;
}

struct Sample
{
    Pattern pattern;
    RunOutcome perPage;
    RunOutcome coalesced;
    double flushSpeedup = 0.0;
    double streamSpeedup = 0.0;
    std::uint64_t budgetPagesNameplate = 0;
    std::uint64_t budgetPagesMeasured = 0;
    double joulesPerGibMeasured = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = argc > 1 && std::string(argv[1]) == "--smoke";

    RunConfig rc;
    if (smoke) {
        rc.pages = 1024;
        rc.budgetPages = 128;
        rc.accesses = 16 * rc.pages;
    }

    // Battery sizing context for the re-derivation columns: a 300 W
    // host with a 3 kJ reserve, 0.8 bandwidth safety factor.
    battery::PowerModel power;
    power.cpuWatts = 240.0;
    power.ssdWatts = 20.0;
    power.otherWatts = 40.0;
    const double reserve_joules = 3000.0;

    const unsigned host_cpus = std::thread::hardware_concurrency();

    Table table("Ablation: per-page flush vs coalesced run writeback "
                "(IOPS-bound SSD)");
    table.setHeader({"Pattern", "Flush GB/s pp", "Flush GB/s run",
                     "Avg run", "Flush speedup", "Stream speedup",
                     "Budget pages", "J/GiB"});

    std::vector<Sample> samples;
    for (Pattern pattern : {Pattern::sequential, Pattern::zipfian,
                            Pattern::uniform}) {
        Sample s;
        s.pattern = pattern;
        s.perPage = runOne(pattern, /*coalesced=*/false, rc);
        s.coalesced = runOne(pattern, /*coalesced=*/true, rc);
        s.flushSpeedup =
            s.coalesced.flushBandwidth / s.perPage.flushBandwidth;
        s.streamSpeedup =
            static_cast<double>(s.perPage.streamTicks) /
            static_cast<double>(s.coalesced.streamTicks);

        // Re-derive the dirty budget from the measured drain rate of
        // each mode: the battery covers what the flush path actually
        // sustains, so a faster coalesced drain buys budget pages at
        // the same reserve (and fewer joules per durable GiB).
        battery::DirtyBudgetCalculator calc(power, 2.0e9, 0.8);
        calc.setMeasuredFlushBandwidth(s.perPage.flushBandwidth);
        s.budgetPagesNameplate =
            calc.budgetPages(reserve_joules, rc.pageSize);
        calc.setMeasuredFlushBandwidth(s.coalesced.flushBandwidth);
        s.budgetPagesMeasured =
            calc.budgetPages(reserve_joules, rc.pageSize);
        s.joulesPerGibMeasured =
            calc.requiredJoules(1_GiB);

        samples.push_back(s);
        table.addRow(
            {patternName(pattern),
             Table::fmt(s.perPage.flushBandwidth / 1e9, 3),
             Table::fmt(s.coalesced.flushBandwidth / 1e9, 3),
             Table::fmt(s.coalesced.avgRunPages, 2),
             Table::fmt(s.flushSpeedup, 2) + "x",
             Table::fmt(s.streamSpeedup, 2) + "x",
             std::to_string(s.budgetPagesMeasured),
             Table::fmt(s.joulesPerGibMeasured, 1)});
    }
    // Scrub-overhead cell: the zipfian coalesced run again, with the
    // background scrubber re-verifying durable pages during the
    // stream.  The claim is that verification rides along for (near)
    // free: the budget/busy gates keep it off the flush path, so the
    // drain rate must stay within 5% of the scrub-free run.
    const Sample &zipf_sample = samples[1];
    const RunOutcome scrubbed =
        runOne(Pattern::zipfian, /*coalesced=*/true, rc,
               /*scrub_pages_per_slice=*/64);
    const double scrub_ratio =
        zipf_sample.coalesced.flushBandwidth > 0.0
            ? scrubbed.flushBandwidth /
                  zipf_sample.coalesced.flushBandwidth
            : 0.0;
    table.addRow({"zipfian+scrub",
                  Table::fmt(zipf_sample.coalesced.flushBandwidth /
                             1e9, 3),
                  Table::fmt(scrubbed.flushBandwidth / 1e9, 3),
                  Table::fmt(scrubbed.avgRunPages, 2),
                  Table::fmt(scrub_ratio, 3) + "x", "-", "-",
                  std::to_string(scrubbed.scrubScanned) + " scanned"});
    table.print(std::cout);

    std::ofstream json("BENCH_io_batching.json");
    json << "[\n";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        json << "  {\"pattern\": \"" << patternName(s.pattern)
             << "\", \"host_cpus\": " << host_cpus
             << ", \"pages\": " << rc.pages
             << ", \"budget_pages\": " << rc.budgetPages
             << ", \"accesses\": " << rc.accesses
             << ", \"per_page_flush_ticks\": " << s.perPage.flushTicks
             << ", \"coalesced_flush_ticks\": "
             << s.coalesced.flushTicks
             << ", \"flushed_pages\": " << s.coalesced.flushedPages
             << ", \"run_submits\": " << s.coalesced.runSubmits
             << ", \"run_pages_coalesced\": "
             << s.coalesced.runPagesCoalesced
             << ", \"run_pages_bridged\": "
             << s.coalesced.runPagesBridged
             << ", \"avg_run_pages\": " << s.coalesced.avgRunPages
             << ", \"per_page_flush_gbps\": "
             << s.perPage.flushBandwidth / 1e9
             << ", \"coalesced_flush_gbps\": "
             << s.coalesced.flushBandwidth / 1e9
             << ", \"flush_speedup\": " << s.flushSpeedup
             << ", \"stream_speedup\": " << s.streamSpeedup
             << ", \"derived_budget_pages_per_page\": "
             << s.budgetPagesNameplate
             << ", \"derived_budget_pages_coalesced\": "
             << s.budgetPagesMeasured
             << ", \"joules_per_gib_coalesced\": "
             << s.joulesPerGibMeasured << "},\n";
    }
    json << "  {\"pattern\": \"zipfian_scrub\""
         << ", \"host_cpus\": " << host_cpus
         << ", \"pages\": " << rc.pages
         << ", \"budget_pages\": " << rc.budgetPages
         << ", \"accesses\": " << rc.accesses
         << ", \"scrub_scanned\": " << scrubbed.scrubScanned
         << ", \"scrub_skipped_busy\": " << scrubbed.scrubSkippedBusy
         << ", \"scrub_budget_skips\": " << scrubbed.scrubBudgetSkips
         << ", \"baseline_flush_gbps\": "
         << zipf_sample.coalesced.flushBandwidth / 1e9
         << ", \"scrub_flush_gbps\": "
         << scrubbed.flushBandwidth / 1e9
         << ", \"scrub_flush_ratio\": " << scrub_ratio << "}\n";
    json << "]\n";
    std::cout << "\nWrote BENCH_io_batching.json\n";

    // The headline claims: coalescing must win big where locality
    // exists, and must never lose where it does not.
    bool ok = true;
    const double seq_bar = smoke ? 3.0 : 4.0;
    const double zipf_bar = smoke ? 1.2 : 1.5;
    const double uniform_bar = smoke ? 0.9 : 0.95;
    for (const Sample &s : samples) {
        double bar = 0.0;
        switch (s.pattern) {
        case Pattern::sequential:
            bar = seq_bar;
            break;
        case Pattern::zipfian:
            bar = zipf_bar;
            break;
        case Pattern::uniform:
            bar = uniform_bar;
            break;
        }
        if (s.flushSpeedup < bar) {
            ok = false;
            std::cout << "FAIL: " << patternName(s.pattern)
                      << " flush speedup " << s.flushSpeedup
                      << "x below the " << bar << "x bar\n";
        }
    }
    std::cout << (ok ? "PASS" : "FAIL")
              << ": coalesced flush >=" << seq_bar
              << "x sequential, >=" << zipf_bar << "x zipfian, >="
              << uniform_bar << "x uniform\n";

    // Scrub gate: background verification costs at most 5% of the
    // zipfian coalesced flush rate, and actually did some scanning.
    const bool scrub_ok = scrub_ratio >= 0.95 &&
                          scrubbed.scrubScanned > 0;
    if (!scrub_ok)
        ok = false;
    std::cout << (scrub_ok ? "PASS" : "FAIL")
              << ": zipfian flush with background scrub at "
              << scrub_ratio << "x of scrub-free (bar 0.95, "
              << scrubbed.scrubScanned << " pages scanned)\n";
    return ok ? 0 : 1;
}
