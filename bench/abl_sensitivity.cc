/**
 * @file
 * Section 6.1 sensitivity checks: the paper fixed 16 outstanding IOs
 * and a 1 ms epoch after finding other values gave similar results.
 * This bench sweeps both knobs around those defaults on YCSB-A with
 * an 11% battery and reports the throughput spread.
 */

#include <iostream>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace viyojit;
using namespace viyojit::bench;

int
main()
{
    {
        Table table("Sensitivity: outstanding-IO cap (YCSB-A, 2 GB "
                    "budget, 1 ms epoch)");
        table.setHeader({"Max outstanding IOs", "Throughput (K-ops/s)",
                         "Blocked evictions"});
        for (unsigned ios : {4u, 8u, 16u, 32u, 64u}) {
            ExperimentConfig cfg;
            cfg.workload = 'A';
            cfg.budgetPaperGb = 2.0;
            cfg.maxOutstandingIos = ios;
            const ExperimentResult result = runExperiment(cfg);
            table.addRow(
                {std::to_string(ios),
                 Table::fmt(result.run.throughputOpsPerSec / 1000.0),
                 Table::fmt(result.controller.blockedEvictions)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    {
        Table table("Sensitivity: epoch length (YCSB-A, 2 GB budget, "
                    "16 IOs)");
        table.setHeader({"Epoch", "Throughput (K-ops/s)",
                         "Proactive copies"});
        for (Tick epoch : {250_us, 500_us, 1_ms, 2_ms, 4_ms}) {
            ExperimentConfig cfg;
            cfg.workload = 'A';
            cfg.budgetPaperGb = 2.0;
            cfg.epochLength = epoch;
            const ExperimentResult result = runExperiment(cfg);
            table.addRow(
                {Table::fmt(static_cast<double>(epoch) / 1.0e6, 2) +
                     " ms",
                 Table::fmt(result.run.throughputOpsPerSec / 1000.0),
                 Table::fmt(result.controller.proactiveCopies)});
        }
        table.print(std::cout);
    }

    std::cout << "\nPaper: results were insensitive to both knobs"
                 " around 16 IOs / 1 ms, which is why only those are"
                 " reported.\n";
    return 0;
}
