/**
 * @file
 * Figure 4: pages needed to cover 90/95/99% of all writes, as a
 * percentage of the *total* volume pages (same analysis as fig 3,
 * different denominator; the percentages are uniformly lower and the
 * classification is unchanged).
 */

#include <iostream>

#include "common/table.hh"
#include "trace/analyzer.hh"
#include "trace/generators.hh"

using namespace viyojit;
using namespace viyojit::trace;

int
main()
{
    for (const AppParams &app : allApplications()) {
        Table table("Fig 4: " + app.name +
                    " — pages for write percentiles (% of total)");
        table.setHeader({"Volume", "90th %-ile", "95th %-ile",
                         "99th %-ile"});
        for (std::size_t v = 0; v < app.volumes.size(); ++v) {
            VolumeTraceGenerator gen(app.volumes[v],
                                     static_cast<std::uint32_t>(v),
                                     app.duration, 1000 + v);
            VolumeAnalyzer analyzer(gen.info(), {});
            TraceRecord record;
            while (gen.next(record))
                analyzer.observe(record);
            const SkewMetric skew = analyzer.skewMetrics();
            table.addRow({app.volumes[v].name,
                          Table::pct(skew.coverage90OfTotal),
                          Table::pct(skew.coverage95OfTotal),
                          Table::pct(skew.coverage99OfTotal)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Paper: same trends as fig 3 with lower percentages,"
                 " since touched pages are a subset of the volume.\n";
    return 0;
}
