/**
 * @file
 * Figure 3: pages needed to cover 90/95/99% of all writes, as a
 * percentage of the pages *touched* (read or written) in the trace.
 *
 * Paper reference classes:
 *  - low-write volumes with mostly-unique writes need a high
 *    fraction (e.g. Azure A);
 *  - Cosmos B/C: low writes, further skewed (~30% of pages for 99%);
 *  - Cosmos F: heavy writes, ~10% of pages for 99%;
 *  - Cosmos E: heavy writes to mostly unique pages.
 */

#include <iostream>

#include "common/table.hh"
#include "trace/analyzer.hh"
#include "trace/generators.hh"

using namespace viyojit;
using namespace viyojit::trace;

int
main()
{
    for (const AppParams &app : allApplications()) {
        Table table("Fig 3: " + app.name +
                    " — pages for write percentiles (% of touched)");
        table.setHeader({"Volume", "90th %-ile", "95th %-ile",
                         "99th %-ile", "write frac"});
        for (std::size_t v = 0; v < app.volumes.size(); ++v) {
            VolumeTraceGenerator gen(app.volumes[v],
                                     static_cast<std::uint32_t>(v),
                                     app.duration, 1000 + v);
            VolumeAnalyzer analyzer(gen.info(), {});
            TraceRecord record;
            while (gen.next(record))
                analyzer.observe(record);
            const SkewMetric skew = analyzer.skewMetrics();
            table.addRow({app.volumes[v].name,
                          Table::pct(skew.coverage90OfTouched),
                          Table::pct(skew.coverage95OfTouched),
                          Table::pct(skew.coverage99OfTouched),
                          Table::pct(skew.writeVolumeFraction)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Paper classes: Cosmos B/C ~30% at the 99th %-ile;"
                 " Cosmos F ~10%; Cosmos E and the low-write unique-"
                 "page volumes near 100%.\n";
    return 0;
}
