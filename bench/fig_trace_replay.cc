/**
 * @file
 * Section 3 meets section 5: replay the data-center traces through
 * the actual dirty-budget machinery, provisioned at the paper's
 * headline 15% ("battery would be needed for less than 15% of
 * NV-DRAM allocated capacity, with proper management").
 *
 * One representative volume per class is replayed against a manager
 * whose budget is 15% of the volume; the measure of "proper
 * management" is that writes almost never block on the SSD and the
 * dirty set stays within budget (durability holds by construction —
 * it is also verified).  The class-4 volume (Cosmos E: heavy writes
 * to unique pages) is the paper's predicted worst case and shows it.
 */

#include <iostream>

#include "common/table.hh"
#include "core/manager.hh"
#include "trace/generators.hh"

using namespace viyojit;
using namespace viyojit::trace;

namespace
{

struct ReplayResult
{
    std::uint64_t writes = 0;
    std::uint64_t faults = 0;
    std::uint64_t blocked = 0;
    std::uint64_t maxDirty = 0;
    bool durable = false;
};

ReplayResult
replay(const VolumeParams &params, double budget_fraction,
       Tick duration)
{
    constexpr std::uint64_t page = 4096;
    const std::uint64_t pages = params.sizeBytes / page;

    sim::SimContext ctx;
    storage::Ssd ssd(ctx, storage::SsdConfig{});
    core::ViyojitConfig cfg;
    cfg.pageSize = page;
    cfg.dirtyBudgetPages = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(
               budget_fraction * static_cast<double>(pages)));
    // Trace arrivals are ~100/s (scaled wall-clock), so a coarser
    // epoch than YCSB's 1 ms keeps the same ops-per-epoch ratio.
    cfg.epochLength = 100_ms;
    core::ViyojitManager manager(ctx, ssd, cfg, mmu::MmuCostModel{},
                                 pages);
    const Addr base = manager.vmmap(params.sizeBytes);
    manager.start();

    VolumeTraceGenerator generator(params, 0, duration, 4242);
    ReplayResult result;
    TraceRecord record;
    while (generator.next(record)) {
        // Arrivals pace the virtual clock; epochs fire in between.
        if (record.timestamp > ctx.now())
            ctx.events().runUntil(record.timestamp);
        if (!record.isWrite)
            continue;
        manager.write(base + record.offset, record.length);
        ++result.writes;
        result.maxDirty =
            std::max(result.maxDirty, manager.dirtyPageCount());
    }
    result.faults = manager.controller().stats().writeFaults;
    result.blocked = manager.controller().stats().blockedEvictions;
    manager.powerFailureFlush();
    result.durable = manager.verifyDurability();
    return result;
}

} // namespace

int
main()
{
    struct Pick
    {
        const char *label;
        AppParams app;
        std::size_t volume;
    };
    const Pick picks[] = {
        {"Azure A (class 1: light, unique)", azureBlobParams(), 0},
        {"Cosmos B (class 2: light, skewed)", cosmosParams(), 1},
        {"Cosmos F (class 3: heavy, skewed)", cosmosParams(), 5},
        {"Cosmos E (class 4: heavy, unique)", cosmosParams(), 4},
        {"Search A (read-heavy serving)", searchIndexParams(), 0},
    };

    Table table("Trace replay at 15% battery (2 paper-hours per "
                "volume)");
    table.setHeader({"Volume (class)", "Writes", "Faults",
                     "Blocked on SSD", "Max dirty / budget",
                     "Durable"});

    for (const Pick &pick : picks) {
        const VolumeParams &params = pick.app.volumes[pick.volume];
        const Tick duration =
            std::min<Tick>(pick.app.duration, 120_s);
        const ReplayResult result = replay(params, 0.15, duration);
        const std::uint64_t budget = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   0.15 *
                   static_cast<double>(params.sizeBytes / 4096)));
        table.addRow({pick.label, Table::fmt(result.writes),
                      Table::fmt(result.faults),
                      Table::fmt(result.blocked),
                      Table::fmt(result.maxDirty) + " / " +
                          Table::fmt(budget),
                      result.durable ? "yes" : "NO"});
    }
    table.print(std::cout);

    std::cout << "\nWith 15% battery, classes 1-3 replay with little"
                 " or no SSD blocking; the class-4 volume (heavy"
                 " writes to unique pages) is the case the paper"
                 " flags as not worth decoupling — visible here as"
                 " sustained blocking.  Durability holds everywhere"
                 " regardless.\n";
    return 0;
}
