#include "bench/harness.hh"

#include "common/logging.hh"

namespace viyojit::bench
{

storage::SsdConfig
ExperimentConfig::defaultSsd()
{
    storage::SsdConfig cfg;
    // The paper's device sustains 625 K-IOPS; flush-bandwidth
    // estimates in section 2.2 use ~4 GB/s.  We keep the absolute
    // latencies and scale nothing here: a 4 KiB page still costs a
    // real page's IO time, which is what the fault path blocks on.
    cfg.writeBandwidth = 2.0e9;
    cfg.readBandwidth = 3.0e9;
    cfg.perIoLatency = 60_us;
    cfg.maxIops = 625000.0;
    cfg.queueDepth = 64;
    return cfg;
}

mmu::MmuCostModel
ExperimentConfig::defaultMmuCosts()
{
    mmu::MmuCostModel costs;
    costs.trapCost = 15_us;
    costs.walkCost = 60_ns;
    costs.dirtySetCost = 30_ns;
    costs.protectCost = 400_ns;
    costs.shootdownCost = 500_ns;
    costs.fullFlushCost = 2_us;
    costs.dirtyScanPerPage = 15_ns;
    costs.chargeScanToClock = false;
    return costs;
}

std::uint64_t
recordsForHeap(double heap_paper_gb)
{
    // One record = a 128 B metadata object (dictEntry + robj + sds
    // key) plus a 1 KiB value object, with 8 B block headers on
    // each; buckets and heap metadata add ~4%.
    const std::uint64_t heap_bytes = PaperScale::paperGb(heap_paper_gb);
    return static_cast<std::uint64_t>(
        static_cast<double>(heap_bytes) * 0.96 / 1168.0);
}

ExperimentResult
runExperiment(const ExperimentConfig &config)
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, config.ssd);

    core::ViyojitConfig core_cfg;
    core_cfg.pageSize = PaperScale::pageSize;
    core_cfg.enforceBudget = !config.isBaseline();
    core_cfg.dirtyBudgetPages =
        config.isBaseline() ? 0
                            : PaperScale::paperGbPages(
                                  config.budgetPaperGb);
    core_cfg.epochLength = config.epochLength;
    core_cfg.maxOutstandingIos = config.maxOutstandingIos;
    core_cfg.flushTlbOnScan = config.flushTlbOnScan;
    core_cfg.continuousCopyTrigger = config.continuousCopyTrigger;
    core_cfg.hardwareAssist = config.hardwareAssist;
    core_cfg.updateTimeTieBreak = config.updateTimeTieBreak;
    core_cfg.legacyEpochScan = config.legacyEpochScan;

    const std::uint64_t capacity_pages =
        PaperScale::paperGbPages(config.capacityPaperGb);

    core::ViyojitManager manager(ctx, ssd, core_cfg, config.mmuCosts,
                                 capacity_pages);

    // The heap region gets the whole NV-DRAM so workload D's inserts
    // have room to grow past the initial dataset, like the paper's
    // 60 GB NV-DRAM holding a 17.5 GB heap.
    const std::uint64_t region_bytes =
        capacity_pages * PaperScale::pageSize;
    const Addr region = manager.vmmap(region_bytes);
    pheap::SimNvSpace space(manager, region, region_bytes);
    pheap::PersistentHeap heap = pheap::PersistentHeap::create(space);

    const std::uint64_t records = recordsForHeap(config.heapPaperGb);
    kvstore::KvStore store = kvstore::KvStore::create(
        heap, records + records / 3);
    // The paper's Redis allocates a fresh value object per SET.
    store.setAllocateOnUpdate(true);

    ycsb::WorkloadSpec spec = ycsb::standardWorkload(config.workload);
    spec.fieldCount = 10;
    spec.fieldLength = 90; // 900 B values -> 1 KiB allocator class

    ycsb::DriverConfig driver_cfg;
    driver_cfg.recordCount = records;
    driver_cfg.operationCount = config.operationCount;
    driver_cfg.baseOpCost = config.baseOpCost;
    driver_cfg.seed = config.seed;
    driver_cfg.updateWritesFullValue = true;
    // Project the paper-scale request skew onto the scaled records
    // (figure 5: skew sharpens with population size; see DESIGN.md).
    driver_cfg.zipfScaleShift = PaperScale::scaleShift;

    ycsb::YcsbDriver driver(ctx, store, spec, driver_cfg);

    // Epochs run during the load too: Viyojit is a live system, and
    // recency/pressure state must be warm when the run begins.
    manager.start();
    driver.load();

    const std::uint64_t ssd_bytes_before = ssd.bytesWritten();
    const core::ControllerStats stats_before =
        config.isBaseline() ? core::ControllerStats{}
                            : manager.controller().stats();
    ExperimentResult result;
    result.run = driver.run();
    result.records = store.size();
    result.ssdBytesDuringRun = ssd.bytesWritten() - ssd_bytes_before;
    result.dirtyPagesAtEnd = manager.dirtyPageCount();
    if (!config.isBaseline()) {
        // Report run-phase deltas, not load-phase noise.
        const core::ControllerStats &now =
            manager.controller().stats();
        result.controller.writeFaults =
            now.writeFaults - stats_before.writeFaults;
        result.controller.blockedEvictions =
            now.blockedEvictions - stats_before.blockedEvictions;
        result.controller.proactiveCopies =
            now.proactiveCopies - stats_before.proactiveCopies;
        result.controller.inFlightWaits =
            now.inFlightWaits - stats_before.inFlightWaits;
        result.controller.epochs = now.epochs - stats_before.epochs;
    }

    result.finalFlush = manager.powerFailureFlush();
    result.durable = manager.verifyDurability();

    // Fig 9's rate counts run-phase copies plus "writing out the
    // entire heap at the end of the experiment", which the paper
    // notes a baseline system would pay identically — so the tail
    // term is the whole written heap, independent of the budget.
    const double run_seconds = ticksToSeconds(result.run.elapsed);
    if (run_seconds > 0.0) {
        const double total_bytes =
            static_cast<double>(result.ssdBytesDuringRun) +
            static_cast<double>(manager.writtenPageCount() *
                                PaperScale::pageSize);
        result.avgWriteRateMBps = total_bytes / run_seconds / 1.0e6;
    }
    return result;
}

double
throughputOverhead(const ExperimentResult &viyojit,
                   const ExperimentResult &baseline)
{
    VIYOJIT_ASSERT(baseline.run.throughputOpsPerSec > 0,
                   "baseline produced no throughput");
    return (baseline.run.throughputOpsPerSec -
            viyojit.run.throughputOpsPerSec) /
           baseline.run.throughputOpsPerSec;
}

} // namespace viyojit::bench
