/**
 * @file
 * Figure 9: average SSD write rate during each experiment (run-phase
 * proactive/blocked copies plus the end-of-experiment flush of the
 * whole heap, which a baseline system would also pay), per workload,
 * across dirty budgets.
 *
 * Paper reference: the heaviest case (YCSB-A at ~11% battery) stays
 * around 200 MB/s — easily sustained by a modern SSD, so proactive
 * copying does not wear the device meaningfully.  Rates fall as the
 * budget grows (less eviction churn) and write-heavy workloads sit
 * above read-heavy ones.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace viyojit;
using namespace viyojit::bench;

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const std::vector<char> workloads = {'D', 'A', 'F', 'B', 'C'};
    const std::vector<double> budgets_gb =
        quick ? std::vector<double>{2.0, 8.0, 18.0}
              : std::vector<double>{1.0, 2.0, 4.0, 8.0, 12.0, 16.0,
                                    18.0};

    Table table("Fig 9: average SSD write rate (MB/s of virtual time,"
                " scaled system)");
    std::vector<std::string> header = {"Budget (GB)"};
    for (char w : workloads)
        header.push_back(std::string("YCSB-") + w);
    table.setHeader(header);

    for (double gb : budgets_gb) {
        std::vector<std::string> row = {Table::fmt(gb, 0)};
        for (char workload : workloads) {
            ExperimentConfig cfg;
            cfg.workload = workload;
            cfg.budgetPaperGb = gb;
            const ExperimentResult result = runExperiment(cfg);
            row.push_back(Table::fmt(result.avgWriteRateMBps, 1));
        }
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nPaper: peak ~200 MB/s (YCSB-A at 11% battery);"
                 " rates fall with budget and write-heavy workloads"
                 " dominate.  Scaled rates are lower in absolute"
                 " terms (the dataset is 1/1024 of the paper's); the"
                 " ordering and budget trend are the comparison"
                 " points.\n";
    return 0;
}
