/**
 * @file
 * Battery-as-a-resource extension (paper section 6.3's discussion):
 * two co-located tenants share one physical battery.  Their write
 * bursts are anti-correlated (tenant 0 bursts while tenant 1 idles
 * and vice versa), so a broker that reapportions the dirty budget by
 * demand ("battery ballooning") beats a static half/half split —
 * the statistical-multiplexing effect the paper predicts.
 */

#include <cstdio>
#include <iostream>

#include "bench/harness.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/broker.hh"

using namespace viyojit;
using namespace viyojit::bench;

namespace
{

struct PhaseResult
{
    Tick elapsed = 0;
    std::uint64_t blocked = 0;
    std::uint64_t faults = 0;
};

/**
 * Run alternating burst phases over two managers; returns total
 * virtual time and blocked-eviction counts.
 */
PhaseResult
runPhases(sim::SimContext &ctx, core::ViyojitManager &t0,
          core::ViyojitManager &t1, Addr base0, Addr base1,
          std::uint64_t pages, core::BatteryBudgetBroker *broker)
{
    Rng rng(17);
    const Tick start = ctx.now();
    constexpr int phases = 8;
    constexpr int ops_per_phase = 6000;
    // The burst working set (720 pages) thrashes a static half
    // budget (512) but fits comfortably when the broker lends the
    // idle tenant's share.
    const std::uint64_t burst_set = 720;

    for (int phase = 0; phase < phases; ++phase) {
        core::ViyojitManager &hot = (phase % 2 == 0) ? t0 : t1;
        core::ViyojitManager &cold = (phase % 2 == 0) ? t1 : t0;
        const Addr hot_base = (phase % 2 == 0) ? base0 : base1;
        const Addr cold_base = (phase % 2 == 0) ? base1 : base0;
        (void)pages;

        for (int i = 0; i < ops_per_phase; ++i) {
            // The bursting tenant hammers its working set...
            const PageNum hp = rng.nextBounded(burst_set);
            hot.write(hot_base + hp * PaperScale::pageSize, 256);
            // ...the other trickles within a small one.
            if (i % 20 == 0) {
                const PageNum cp = rng.nextBounded(48);
                cold.write(cold_base + cp * PaperScale::pageSize, 64);
            }
            ctx.events().runUntil(ctx.now());
            // The broker reacts to demand within the phase, like a
            // balloon driver polling pressure.
            if (broker && i % 500 == 499)
                broker->rebalance();
        }
    }

    PhaseResult out;
    out.elapsed = ctx.now() - start;
    out.blocked = t0.controller().stats().blockedEvictions +
                  t1.controller().stats().blockedEvictions;
    out.faults = t0.controller().stats().writeFaults +
                 t1.controller().stats().writeFaults;
    return out;
}

PhaseResult
runScenario(bool with_broker)
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, ExperimentConfig::defaultSsd());

    constexpr std::uint64_t tenant_pages = 4096;
    constexpr std::uint64_t machine_budget = 1024;

    core::ViyojitConfig cfg;
    cfg.pageSize = PaperScale::pageSize;
    cfg.dirtyBudgetPages = machine_budget / 2; // static split start
    core::ViyojitManager t0(ctx, ssd, cfg,
                            ExperimentConfig::defaultMmuCosts(),
                            tenant_pages, /*region_id=*/0);
    core::ViyojitManager t1(ctx, ssd, cfg,
                            ExperimentConfig::defaultMmuCosts(),
                            tenant_pages, /*region_id=*/1);
    const Addr base0 = t0.vmmap(tenant_pages * PaperScale::pageSize);
    const Addr base1 = t1.vmmap(tenant_pages * PaperScale::pageSize);
    t0.start();
    t1.start();

    if (with_broker) {
        core::BatteryBudgetBroker broker(machine_budget);
        broker.addTenant(t0, core::TenantPolicy{64, 1.0});
        broker.addTenant(t1, core::TenantPolicy{64, 1.0});
        return runPhases(ctx, t0, t1, base0, base1, tenant_pages,
                         &broker);
    }
    return runPhases(ctx, t0, t1, base0, base1, tenant_pages, nullptr);
}

} // namespace

int
main()
{
    const PhaseResult fixed = runScenario(false);
    const PhaseResult brokered = runScenario(true);

    Table table("Battery ballooning: static split vs demand broker "
                "(1024-page battery, anti-correlated tenants)");
    table.setHeader({"Policy", "Virtual time (ms)",
                     "Blocked evictions", "Write faults"});
    table.addRow({"static 50/50",
                  Table::fmt(ticksToSeconds(fixed.elapsed) * 1000.0),
                  Table::fmt(fixed.blocked),
                  Table::fmt(fixed.faults)});
    table.addRow({"demand broker",
                  Table::fmt(ticksToSeconds(brokered.elapsed) * 1000.0),
                  Table::fmt(brokered.blocked),
                  Table::fmt(brokered.faults)});
    table.print(std::cout);

    const double speedup = ticksToSeconds(fixed.elapsed) /
                           ticksToSeconds(brokered.elapsed);
    std::printf("\nBroker speedup on the same work: %.2fx — the "
                "multiplexing gain the paper's section 6.3 "
                "anticipates from treating battery as a first-class "
                "schedulable resource.\n",
                speedup);
    return 0;
}
