/**
 * @file
 * Section 8 "Increased availability": bounding the dirty set bounds
 * shutdown (flush) time, so planned reboots get dramatically faster
 * — 4 TB at 4 GB/s means ~17 minutes of flushing for a conventional
 * NV-DRAM server, versus the minutes-to-seconds a dirty budget
 * allows.
 *
 * Two parts: the analytic table for data-center scale DRAM sizes,
 * and a live measurement on the scaled simulator comparing the
 * baseline's power-failure flush against Viyojit's across budgets.
 */

#include <iostream>

#include "battery/battery.hh"
#include "bench/harness.hh"
#include "common/table.hh"

using namespace viyojit;
using namespace viyojit::bench;

int
main()
{
    {
        battery::PowerModel power;
        power.cpuWatts = 240.0;
        power.dramWattsPerGib = 0.0;
        power.ssdWatts = 20.0;
        power.otherWatts = 40.0;
        battery::DirtyBudgetCalculator calc(power, 4.0e9, 1.0);

        Table table("Shutdown flush time, 4 GB/s to SSD "
                    "(analytic, section 8)");
        table.setHeader({"DRAM", "Full backup", "10% dirty budget",
                         "1% dirty budget"});
        for (double tb : {1.0, 2.0, 4.0, 8.0}) {
            const auto bytes = static_cast<std::uint64_t>(
                tb * 1024.0 * static_cast<double>(1_GiB));
            auto fmt_time = [&](std::uint64_t b) {
                const double s = calc.flushSeconds(b);
                return s >= 90.0 ? Table::fmt(s / 60.0, 1) + " min"
                                 : Table::fmt(s, 1) + " s";
            };
            table.addRow({Table::fmt(tb, 0) + " TB", fmt_time(bytes),
                          fmt_time(bytes / 10), fmt_time(bytes / 100)});
        }
        table.print(std::cout);
        std::cout << "\nPaper: 4 TB needs ~17 minutes to shut down"
                     " cleanly; the dirty budget bounds it.\n\n";
    }

    {
        Table table("Live measurement: power-failure flush after a "
                    "YCSB-A run (scaled system)");
        table.setHeader({"System", "Dirty pages at failure",
                         "Flush time (virtual ms)"});

        ExperimentConfig base;
        base.workload = 'A';
        base.budgetPaperGb = 0.0;
        base.operationCount = 30000;
        const ExperimentResult baseline = runExperiment(base);
        table.addRow(
            {"NV-DRAM baseline (full battery)",
             Table::fmt(baseline.finalFlush.dirtyPagesAtFailure),
             Table::fmt(
                 ticksToSeconds(baseline.finalFlush.flushDuration) *
                 1000.0)});

        for (double gb : {8.0, 4.0, 2.0, 1.0}) {
            ExperimentConfig cfg = base;
            cfg.budgetPaperGb = gb;
            const ExperimentResult result = runExperiment(cfg);
            table.addRow(
                {"Viyojit, " + Table::fmt(gb, 0) + " GB budget",
                 Table::fmt(result.finalFlush.dirtyPagesAtFailure),
                 Table::fmt(
                     ticksToSeconds(result.finalFlush.flushDuration) *
                     1000.0)});
        }
        table.print(std::cout);
        std::cout << "\nThe flush time scales with the dirty set, not"
                     " the DRAM size: smaller budgets mean faster"
                     " shutdowns and higher availability.\n";
    }
    return 0;
}
