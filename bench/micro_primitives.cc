/**
 * @file
 * Google-benchmark microbenchmarks of the mechanism's hot paths:
 * dirty-tracker updates, recency maintenance, victim selection, the
 * page-table walk, TLB lookups, and the full simulated fault path.
 * These bound the *host* cost of the bookkeeping the paper's shared
 * library does in its fault handler and epoch thread.
 */

#include <benchmark/benchmark.h>

#include <algorithm>

#include "common/distributions.hh"
#include "common/rng.hh"
#include "core/controller.hh"
#include "core/dirty_tracker.hh"
#include "core/manager.hh"
#include "core/recency.hh"
#include "mmu/mmu.hh"

using namespace viyojit;

namespace
{

void
BM_DirtyTrackerMarkCycle(benchmark::State &state)
{
    core::DirtyPageTracker tracker(1 << 16);
    Rng rng(1);
    for (auto _ : state) {
        const PageNum p = rng.nextBounded(1 << 16);
        tracker.markDirty(p);
        tracker.markClean(p);
    }
}
BENCHMARK(BM_DirtyTrackerMarkCycle);

void
BM_RecencyAdvanceEpoch(benchmark::State &state)
{
    const auto pages = static_cast<std::uint64_t>(state.range(0));
    const bool legacy = state.range(1) != 0;
    core::EpochRecencyTracker recency(pages, 64);
    recency.setLegacyQueue(legacy);
    for (auto _ : state)
        recency.advanceEpoch();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(pages));
    state.SetLabel(legacy ? "legacy eager fold, O(pages)"
                          : "lazy fold, O(1)");
}
BENCHMARK(BM_RecencyAdvanceEpoch)
    ->ArgsProduct({{1 << 10, 1 << 15, 1 << 20}, {0, 1}});

void
BM_VictimQueueRebuild(benchmark::State &state)
{
    // Rebuild is the legacy path's per-epoch sort; the bucketed
    // queue maintains itself incrementally and rebuild is a no-op
    // there (see BM_VictimPickSteadyState for its cost).
    const auto pages = static_cast<std::uint64_t>(state.range(0));
    core::DirtyPageTracker tracker(pages);
    core::EpochRecencyTracker recency(pages, 64);
    recency.setLegacyQueue(true);
    Rng rng(2);
    for (PageNum p = 0; p < pages / 2; ++p)
        tracker.markDirty(rng.nextBounded(pages));
    for (auto _ : state)
        recency.rebuildVictimQueue(tracker);
}
BENCHMARK(BM_VictimQueueRebuild)->Range(1 << 10, 1 << 18);

void
BM_VictimPickSteadyState(benchmark::State &state)
{
    // The bucketed queue under the controller's steady-state rhythm:
    // pick a victim, clean it, readmit another page.
    const auto pages = static_cast<std::uint64_t>(state.range(0));
    core::DirtyPageTracker tracker(pages);
    core::EpochRecencyTracker recency(pages, 64);
    Rng rng(2);
    for (PageNum p = 0; p < pages; ++p) {
        const PageNum d = rng.nextBounded(pages);
        if (tracker.markDirty(d))
            recency.recordUpdate(d);
    }
    const auto never = [](PageNum) { return false; };
    for (auto _ : state) {
        const PageNum admitted = rng.nextBounded(pages);
        if (tracker.markDirty(admitted))
            recency.recordUpdate(admitted);
        const PageNum victim = recency.pickVictim(tracker, never);
        if (victim != invalidPage)
            tracker.markClean(victim);
    }
}
BENCHMARK(BM_VictimPickSteadyState)->Range(1 << 10, 1 << 18);

void
BM_PageTableWalk(benchmark::State &state)
{
    mmu::PageTable table;
    for (PageNum p = 0; p < 4096; ++p)
        table.map(p, mmu::Pte::writableBit);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.find(rng.nextBounded(4096)));
    }
}
BENCHMARK(BM_PageTableWalk);

void
BM_TlbLookup(benchmark::State &state)
{
    mmu::Tlb tlb(mmu::TlbConfig{});
    for (PageNum p = 0; p < 1024; ++p)
        tlb.insert(p, true, false);
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.lookup(rng.nextBounded(1024)));
}
BENCHMARK(BM_TlbLookup);

void
BM_SimulatedFaultPath(benchmark::State &state)
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, storage::SsdConfig{});
    core::ViyojitConfig cfg;
    cfg.dirtyBudgetPages = 512;
    core::ViyojitManager manager(ctx, ssd, cfg, mmu::MmuCostModel{},
                                 1 << 14);
    const Addr base = manager.vmmap((1ULL << 14) * defaultPageSize);
    manager.start();
    Rng rng(5);
    ZipfianDistribution dist(1 << 14);
    for (auto _ : state) {
        manager.write(base + dist.next(rng) * defaultPageSize, 64);
        manager.processEvents();
    }
    state.SetLabel("includes trap+evict bookkeeping on host");
}
BENCHMARK(BM_SimulatedFaultPath);

void
BM_EpochScan(benchmark::State &state)
{
    const auto pages = static_cast<std::uint64_t>(state.range(0));
    const bool legacy = state.range(1) != 0;
    sim::SimContext ctx;
    mmu::Mmu mmu(ctx, mmu::MmuCostModel{});
    for (PageNum p = 0; p < pages; ++p)
        mmu.mapPage(p, true);
    Rng rng(6);
    const std::uint64_t dirty = std::max<std::uint64_t>(pages / 64, 1);
    for (auto _ : state) {
        state.PauseTiming();
        for (std::uint64_t i = 0; i < dirty; ++i)
            mmu.pageTable().noteDirty(rng.nextBounded(pages));
        state.ResumeTiming();
        mmu.scanAndClearDirty(0, pages, true, [](PageNum, bool) {},
                              legacy);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(pages));
    state.SetLabel(legacy ? "legacy full walk"
                          : "summary-pruned, ~1.6% dirty");
}
BENCHMARK(BM_EpochScan)
    ->ArgsProduct({{1 << 10, 1 << 14, 1 << 18}, {0, 1}});

} // namespace

BENCHMARK_MAIN();
