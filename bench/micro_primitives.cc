/**
 * @file
 * Google-benchmark microbenchmarks of the mechanism's hot paths:
 * dirty-tracker updates, recency maintenance, victim selection, the
 * page-table walk, TLB lookups, and the full simulated fault path.
 * These bound the *host* cost of the bookkeeping the paper's shared
 * library does in its fault handler and epoch thread.
 */

#include <benchmark/benchmark.h>

#include "common/distributions.hh"
#include "common/rng.hh"
#include "core/controller.hh"
#include "core/dirty_tracker.hh"
#include "core/manager.hh"
#include "core/recency.hh"
#include "mmu/mmu.hh"

using namespace viyojit;

namespace
{

void
BM_DirtyTrackerMarkCycle(benchmark::State &state)
{
    core::DirtyPageTracker tracker(1 << 16);
    Rng rng(1);
    for (auto _ : state) {
        const PageNum p = rng.nextBounded(1 << 16);
        tracker.markDirty(p);
        tracker.markClean(p);
    }
}
BENCHMARK(BM_DirtyTrackerMarkCycle);

void
BM_RecencyAdvanceEpoch(benchmark::State &state)
{
    const auto pages = static_cast<std::uint64_t>(state.range(0));
    core::EpochRecencyTracker recency(pages, 64);
    for (auto _ : state)
        recency.advanceEpoch();
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(pages));
}
BENCHMARK(BM_RecencyAdvanceEpoch)->Range(1 << 10, 1 << 20);

void
BM_VictimQueueRebuild(benchmark::State &state)
{
    const auto pages = static_cast<std::uint64_t>(state.range(0));
    core::DirtyPageTracker tracker(pages);
    core::EpochRecencyTracker recency(pages, 64);
    Rng rng(2);
    for (PageNum p = 0; p < pages / 2; ++p)
        tracker.markDirty(rng.nextBounded(pages));
    for (auto _ : state)
        recency.rebuildVictimQueue(tracker);
}
BENCHMARK(BM_VictimQueueRebuild)->Range(1 << 10, 1 << 18);

void
BM_PageTableWalk(benchmark::State &state)
{
    mmu::PageTable table;
    for (PageNum p = 0; p < 4096; ++p)
        table.map(p, mmu::Pte::writableBit);
    Rng rng(3);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.find(rng.nextBounded(4096)));
    }
}
BENCHMARK(BM_PageTableWalk);

void
BM_TlbLookup(benchmark::State &state)
{
    mmu::Tlb tlb(mmu::TlbConfig{});
    for (PageNum p = 0; p < 1024; ++p)
        tlb.insert(p, true, false);
    Rng rng(4);
    for (auto _ : state)
        benchmark::DoNotOptimize(tlb.lookup(rng.nextBounded(1024)));
}
BENCHMARK(BM_TlbLookup);

void
BM_SimulatedFaultPath(benchmark::State &state)
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, storage::SsdConfig{});
    core::ViyojitConfig cfg;
    cfg.dirtyBudgetPages = 512;
    core::ViyojitManager manager(ctx, ssd, cfg, mmu::MmuCostModel{},
                                 1 << 14);
    const Addr base = manager.vmmap((1ULL << 14) * defaultPageSize);
    manager.start();
    Rng rng(5);
    ZipfianDistribution dist(1 << 14);
    for (auto _ : state) {
        manager.write(base + dist.next(rng) * defaultPageSize, 64);
        manager.processEvents();
    }
    state.SetLabel("includes trap+evict bookkeeping on host");
}
BENCHMARK(BM_SimulatedFaultPath);

void
BM_EpochScan(benchmark::State &state)
{
    const auto pages = static_cast<std::uint64_t>(state.range(0));
    sim::SimContext ctx;
    mmu::Mmu mmu(ctx, mmu::MmuCostModel{});
    for (PageNum p = 0; p < pages; ++p)
        mmu.mapPage(p, true);
    for (auto _ : state) {
        mmu.scanAndClearDirty(0, pages, true,
                              [](PageNum, bool) {});
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(pages));
}
BENCHMARK(BM_EpochScan)->Range(1 << 10, 1 << 18);

} // namespace

BENCHMARK_MAIN();
