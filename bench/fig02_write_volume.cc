/**
 * @file
 * Figure 2: worst-interval data written as a fraction of volume
 * size, for three interval lengths, across the four applications'
 * volumes (adversarial unique-page assumption).
 *
 * Paper reference: for a majority of volumes the one-hour fraction
 * stays below ~15%; Cosmos is the outlier with volumes reaching
 * ~80%.
 */

#include <iostream>
#include <vector>

#include "common/table.hh"
#include "trace/analyzer.hh"
#include "trace/generators.hh"

using namespace viyojit;
using namespace viyojit::trace;

int
main()
{
    const std::vector<Tick> intervals = {ScaledIntervals::oneMinute,
                                         ScaledIntervals::tenMinutes,
                                         ScaledIntervals::oneHour};

    for (const AppParams &app : allApplications()) {
        Table table("Fig 2: " + app.name +
                    " — worst-interval write volume (% of volume)");
        table.setHeader({"Volume", "One Minute", "Ten Minutes",
                         "One Hour"});
        for (std::size_t v = 0; v < app.volumes.size(); ++v) {
            VolumeTraceGenerator gen(app.volumes[v],
                                     static_cast<std::uint32_t>(v),
                                     app.duration, 1000 + v);
            VolumeAnalyzer analyzer(gen.info(), intervals);
            TraceRecord record;
            while (gen.next(record))
                analyzer.observe(record);
            const auto metrics = analyzer.intervalMetrics();
            table.addRow({app.volumes[v].name,
                          Table::pct(metrics[0].worstFractionOfVolume),
                          Table::pct(metrics[1].worstFractionOfVolume),
                          Table::pct(metrics[2].worstFractionOfVolume)});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    std::cout << "Paper: majority of volumes stay below ~15% per hour;"
                 " Cosmos reaches ~80% on its heaviest volumes.\n"
                 "(Interval labels are paper wall-clock at the 60:1"
                 " time scale.)\n";
    return 0;
}
