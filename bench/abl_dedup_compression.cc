/**
 * @file
 * Section 7 extension: "The write bandwidth to secondary storage
 * could be further reduced by using compression and de-duplication."
 *
 * The SSD model supports both: dedup elides page writes whose
 * content already matches the durable image; compression transfers
 * the measured pagezip size instead of the raw page.  This bench
 * measures the proactive-copy traffic of YCSB-A under each setting.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace viyojit;
using namespace viyojit::bench;

namespace
{

ExperimentResult
runWith(bool dedup, bool compression)
{
    ExperimentConfig cfg;
    cfg.workload = 'A';
    cfg.budgetPaperGb = 2.0;
    cfg.ssd.enableDedup = dedup;
    cfg.ssd.enableCompression = compression;
    return runExperiment(cfg);
}

} // namespace

int
main()
{
    Table table("Section 7 extension: SSD traffic reducers "
                "(YCSB-A, 2 GB budget)");
    table.setHeader({"Configuration", "SSD bytes (run phase)",
                     "Write rate (MB/s)", "Throughput (K-ops/s)",
                     "Durable"});

    struct Variant
    {
        const char *name;
        bool dedup;
        bool compression;
    };
    const Variant variants[] = {
        {"plain", false, false},
        {"dedup", true, false},
        {"compression", false, true},
        {"dedup + compression", true, true},
    };

    std::uint64_t plain_bytes = 0;
    for (const Variant &variant : variants) {
        const ExperimentResult result =
            runWith(variant.dedup, variant.compression);
        if (!variant.dedup && !variant.compression)
            plain_bytes = result.ssdBytesDuringRun;
        table.addRow(
            {variant.name, Table::fmt(result.ssdBytesDuringRun),
             Table::fmt(result.avgWriteRateMBps, 2),
             Table::fmt(result.run.throughputOpsPerSec / 1000.0),
             result.durable ? "yes" : "NO"});
    }
    table.print(std::cout);

    const ExperimentResult both = runWith(true, true);
    std::cout << "\nTraffic reduction with both reducers: "
              << Table::pct(1.0 - static_cast<double>(
                                      both.ssdBytesDuringRun) /
                                      static_cast<double>(plain_bytes))
              << " — extending SSD lifetime exactly as section 7"
                 " anticipates, with durability intact.\n";
    return 0;
}
