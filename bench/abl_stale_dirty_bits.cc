/**
 * @file
 * Section 6.3 ablation: disable the TLB flush before each epoch
 * dirty-bit scan, so the scan reads stale bits and the least-
 * recently-updated list degrades.
 *
 * Paper reference: "we turned off the TLB flushing which lead to
 * reading stale dirty bit information ... caused the throughput to
 * drop by more than half in cases with low battery provisioning such
 * as with 2 or 3 GB dirty budget."
 */

#include <iostream>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace viyojit;
using namespace viyojit::bench;

int
main()
{
    const std::vector<double> budgets_gb = {2.0, 3.0, 6.0, 12.0};

    Table table("Ablation: stale dirty bits (no TLB flush on scan), "
                "YCSB-A");
    table.setHeader({"Budget (GB)", "Precise LRU (K-ops/s)",
                     "Stale, history-only sort (K-ops/s)", "Slowdown",
                     "Stale + update-time tie-break (K-ops/s)"});

    for (double gb : budgets_gb) {
        ExperimentConfig precise;
        precise.workload = 'A';
        precise.budgetPaperGb = gb;
        precise.flushTlbOnScan = true;
        const ExperimentResult with_flush = runExperiment(precise);

        // The paper's implementation orders victims by the scanned
        // 64-epoch history alone; with stale bits that ordering is
        // garbage and hot pages get flushed (section 6.3).
        ExperimentConfig stale = precise;
        stale.flushTlbOnScan = false;
        stale.updateTimeTieBreak = false;
        const ExperimentResult paper_like = runExperiment(stale);

        // This library also stamps update times in the fault path;
        // the stamps keep correcting stale histories, so the TLB
        // flush stops being load-bearing — a robustness improvement
        // over the paper's design.
        ExperimentConfig robust = stale;
        robust.updateTimeTieBreak = true;
        const ExperimentResult self_healing = runExperiment(robust);

        table.addRow(
            {Table::fmt(gb, 0),
             Table::fmt(with_flush.run.throughputOpsPerSec / 1000.0),
             Table::fmt(paper_like.run.throughputOpsPerSec / 1000.0),
             Table::fmt(with_flush.run.throughputOpsPerSec /
                            paper_like.run.throughputOpsPerSec,
                        2) +
                 "x",
             Table::fmt(self_healing.run.throughputOpsPerSec /
                        1000.0)});
    }
    table.print(std::cout);

    std::cout << "\nPaper: stale dirty bits more than halved *their*"
                 " prototype's throughput at 2-3 GB budgets.  This"
                 " implementation only degrades 4-15% even with the"
                 " paper's history-only ordering, because the fault"
                 " path itself records an update (the dirty-list"
                 " append doubles as a recency signal) and natural"
                 " TLB evictions leak fresh dirty bits for any"
                 " working set larger than the TLB; with the"
                 " update-time tie-break the flush stops mattering"
                 " entirely.  The *direction* matches the paper; the"
                 " magnitude is an implementation sensitivity its"
                 " prototype had and this one does not (see"
                 " EXPERIMENTS.md).\n";
    return 0;
}
