/**
 * @file
 * Figure 1: DRAM density growth vs. lithium battery density growth,
 * 1990-2020 (projected past 2015).
 *
 * Paper reference points: lithium grew ~3.3x over 25 years while
 * DRAM (GB per rack unit) grew by more than four orders of
 * magnitude, so backing up all DRAM with batteries stops scaling.
 */

#include <iostream>

#include "battery/scaling.hh"
#include "common/table.hh"

using namespace viyojit;

int
main()
{
    battery::ScalingModel model;

    Table table("Fig 1: relative growth since 1990 (log-scale series)");
    table.setHeader({"Year", "DRAM (GB/RU, rel.)", "Lithium (J/vol, rel.)",
                     "Gap (DRAM/Li)", "Projected"});
    for (const battery::GrowthPoint &point : model.series(2020, 5, 2015)) {
        table.addRow({std::to_string(point.year),
                      Table::fmt(point.dramRelative, 1),
                      Table::fmt(point.lithiumRelative, 2),
                      Table::fmt(point.dramRelative /
                                     point.lithiumRelative,
                                 1),
                      point.projected ? "yes" : "no"});
    }
    table.print(std::cout);

    std::cout << "\nPaper: lithium ~3.3x over 25 years; DRAM >50,000x"
                 " in the same period.\n"
              << "Model 2015 endpoints: DRAM "
              << Table::fmt(model.dramRelative(2015), 0) << "x, lithium "
              << Table::fmt(model.lithiumRelative(2015), 2) << "x.\n";
    return 0;
}
