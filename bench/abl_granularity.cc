/**
 * @file
 * Tracking-granularity ablation (paper section 7: "Viyojit can also
 * perform dirty tracking and limiting at a finer byte-level
 * granularity using Mondrian Memory Protection ... This would not
 * only enable better utilization of provisioned battery capacity but
 * also reduce the write traffic to secondary storage").
 *
 * The core tracks at a configurable page size; this sweep holds the
 * battery (dirty budget in BYTES) fixed and varies the tracking
 * granularity, measuring throughput and SSD traffic.  Finer pages
 * stretch the same joules over more distinct dirty locations and
 * shrink each eviction's IO; coarser pages amortize trap costs.
 */

#include <iostream>

#include "common/rng.hh"
#include "common/table.hh"
#include "core/manager.hh"

using namespace viyojit;

namespace
{

struct GranularityResult
{
    Tick elapsed = 0;
    std::uint64_t faults = 0;
    std::uint64_t ssdBytes = 0;
};

GranularityResult
run(std::uint64_t page_size)
{
    constexpr std::uint64_t region_bytes = 32 * 1024 * 1024;
    constexpr std::uint64_t budget_bytes = 2 * 1024 * 1024;

    sim::SimContext ctx;
    storage::Ssd ssd(ctx, storage::SsdConfig{});
    core::ViyojitConfig cfg;
    cfg.pageSize = page_size;
    cfg.dirtyBudgetPages = budget_bytes / page_size;
    core::ViyojitManager manager(ctx, ssd, cfg, mmu::MmuCostModel{},
                                 region_bytes / page_size);
    const Addr base = manager.vmmap(region_bytes);
    manager.start();

    // Small skewed writes: the workload where granularity matters
    // (each write dirties one tracking unit regardless of its size).
    Rng rng(21);
    const Tick start = ctx.now();
    for (int i = 0; i < 40000; ++i) {
        const double u = rng.nextDouble();
        const std::uint64_t offset = static_cast<std::uint64_t>(
            u * u * static_cast<double>(region_bytes - 256));
        manager.write(base + offset, 64 + rng.nextBounded(128));
        ctx.clock().advance(20_us);
        manager.processEvents();
    }

    GranularityResult result;
    result.elapsed = ctx.now() - start;
    result.faults = manager.controller().stats().writeFaults;
    result.ssdBytes = ssd.bytesWritten();
    return result;
}

} // namespace

int
main()
{
    Table table("Granularity ablation: fixed 2 MiB battery budget, "
                "small skewed writes");
    table.setHeader({"Tracking unit", "Budget (units)",
                     "Run time (virtual ms)", "Write faults",
                     "SSD bytes copied"});

    for (std::uint64_t page : {std::uint64_t{512}, std::uint64_t{1024},
                               std::uint64_t{2048}, std::uint64_t{4096},
                               std::uint64_t{8192},
                               std::uint64_t{16384}}) {
        const GranularityResult result = run(page);
        table.addRow({Table::fmt(page) + " B",
                      Table::fmt(std::uint64_t{2097152} / page),
                      Table::fmt(ticksToSeconds(result.elapsed) *
                                 1000.0),
                      Table::fmt(result.faults),
                      Table::fmt(result.ssdBytes)});
    }
    table.print(std::cout);

    std::cout << "\nFiner tracking copies fewer bytes per eviction"
                 " (less SSD wear) and spreads the same battery over"
                 " more locations, at the price of more traps —"
                 " the Mondrian trade-off of section 7.\n";
    return 0;
}
