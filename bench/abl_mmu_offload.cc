/**
 * @file
 * Section 5.4 "Offloading to the MMU": compare the software
 * implementation (write-protection traps on every first write, TLB
 * flush per epoch scan) against the proposed MMU extension (hardware
 * dirty counting with a threshold interrupt, write-through shadow
 * bits, no scan flush).
 *
 * Paper's claim: "a hardware implementation ... could eradicate such
 * tail latency overheads" — the p99 gap between Viyojit and the
 * baseline should collapse, and throughput overhead shrink, while
 * the durability guarantee is unchanged.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace viyojit;
using namespace viyojit::bench;

namespace
{

ExperimentResult
runMode(char workload, double budget_gb, bool hw_assist)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.budgetPaperGb = budget_gb;
    cfg.hardwareAssist = hw_assist;
    // Continuous copying in both arms so the comparison isolates the
    // trap mechanism rather than SSD blocking (which boundary-only
    // copying adds identically to both).
    cfg.continuousCopyTrigger = true;
    return runExperiment(cfg);
}

const LogHistogram &
updateHist(const ExperimentResult &result)
{
    return result.run.updateLatency;
}

} // namespace

int
main()
{
    Table table("Section 5.4: software traps vs MMU dirty-count "
                "assist (2 GB budget)");
    table.setHeader({"Workload", "Metric", "Baseline", "Software",
                     "MMU assist"});

    for (char workload : {'A', 'C'}) {
        ExperimentConfig base_cfg;
        base_cfg.workload = workload;
        base_cfg.budgetPaperGb = 0.0;
        const ExperimentResult baseline = runExperiment(base_cfg);
        const ExperimentResult software =
            runMode(workload, 2.0, false);
        const ExperimentResult assisted = runMode(workload, 2.0, true);

        table.addRow(
            {std::string("YCSB-") + workload, "throughput (K-ops/s)",
             Table::fmt(baseline.run.throughputOpsPerSec / 1000.0),
             Table::fmt(software.run.throughputOpsPerSec / 1000.0),
             Table::fmt(assisted.run.throughputOpsPerSec / 1000.0)});
        table.addRow(
            {"", "overhead",
             "-",
             Table::pct(throughputOverhead(software, baseline)),
             Table::pct(throughputOverhead(assisted, baseline))});
        if (workload == 'A') {
            table.addRow(
                {"", "update p99 (us)",
                 Table::fmt(static_cast<double>(
                                updateHist(baseline).percentile(99)) /
                            1000.0),
                 Table::fmt(static_cast<double>(
                                updateHist(software).percentile(99)) /
                            1000.0),
                 Table::fmt(static_cast<double>(
                                updateHist(assisted).percentile(99)) /
                            1000.0)});
        }
        table.addRow({"", "durable after failure", "-",
                      software.durable ? "yes" : "NO",
                      assisted.durable ? "yes" : "NO"});
    }
    table.print(std::cout);

    std::cout << "\nPaper section 5.4: hardware dirty counting"
                 " removes the per-first-write trap; only threshold"
                 " crossings cost OS time, so the tail-latency"
                 " penalty collapses while durability is unchanged.\n";
    return 0;
}
