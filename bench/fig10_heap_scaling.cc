/**
 * @file
 * Figure 10: throughput overhead at equal battery *fractions* for
 * two initial heap sizes (17.5 GB-equivalent and 52.5 GB-equivalent,
 * i.e. 3x).  YCSB-D is excluded because its inserts outgrow the
 * NV-DRAM at the larger heap — the same exclusion as the paper.
 *
 * Paper reference: overheads *decrease* with the larger heap at the
 * same battery fraction, confirming that write skew sharpens as the
 * dataset grows (the fig-5 effect measured end to end).
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace viyojit;
using namespace viyojit::bench;

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const std::vector<char> workloads =
        quick ? std::vector<char>{'A', 'C'}
              : std::vector<char>{'A', 'B', 'C', 'F'};
    const std::vector<double> fractions = {0.114, 0.229, 0.457};
    const std::vector<double> heaps_gb = {17.5, 52.5};

    Table table("Fig 10: overhead at equal battery fractions, two "
                "heap sizes");
    table.setHeader({"Workload", "11% of 17.5", "11% of 52.5",
                     "23% of 17.5", "23% of 52.5", "46% of 17.5",
                     "46% of 52.5"});

    for (char workload : workloads) {
        std::vector<std::string> row = {std::string("YCSB-") +
                                        workload};
        std::vector<std::vector<double>> overheads(
            fractions.size(), std::vector<double>(heaps_gb.size()));
        for (std::size_t h = 0; h < heaps_gb.size(); ++h) {
            ExperimentConfig base_cfg;
            base_cfg.workload = workload;
            base_cfg.heapPaperGb = heaps_gb[h];
            base_cfg.budgetPaperGb = 0.0;
            // Proportionally more ops keep the run:heap ratio fixed.
            base_cfg.operationCount = static_cast<std::uint64_t>(
                60000.0 * heaps_gb[h] / 17.5);
            const ExperimentResult baseline = runExperiment(base_cfg);

            for (std::size_t f = 0; f < fractions.size(); ++f) {
                ExperimentConfig cfg = base_cfg;
                cfg.budgetPaperGb = fractions[f] * heaps_gb[h];
                const ExperimentResult result = runExperiment(cfg);
                overheads[f][h] = throughputOverhead(result, baseline);
            }
        }
        for (std::size_t f = 0; f < fractions.size(); ++f)
            for (std::size_t h = 0; h < heaps_gb.size(); ++h)
                row.push_back(Table::pct(overheads[f][h]));
        table.addRow(row);
    }
    table.print(std::cout);

    std::cout << "\nPaper: at every battery fraction the 52.5 GB heap"
                 " shows a lower overhead than the 17.5 GB heap —"
                 " skew grows with dataset size.\n";
    return 0;
}
