/**
 * @file
 * Section 8 startup-side experiment: after a reboot, how quickly can
 * the server serve requests again under the three restore
 * strategies?  The paper: "The start up time can be optimized by
 * fetching pages from SSD to DRAM on demand while sequentially
 * reading data in the background after the OS boots."
 *
 * The image is produced by a real YCSB-A run + power-failure flush;
 * the boot-time request stream replays the same zipf skew.
 */

#include <iostream>

#include "bench/harness.hh"
#include "common/distributions.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/recovery.hh"

using namespace viyojit;
using namespace viyojit::bench;
using viyojit::core::RestoreStrategy;

namespace
{

struct BootResult
{
    Tick firstThousandServed = 0;
    double avgStallUs = 0.0;
    Tick fullyResident = 0;
};

BootResult
boot(RestoreStrategy strategy)
{
    // Build the durable image: a run plus its emergency flush.
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, ExperimentConfig::defaultSsd());
    core::ViyojitConfig cfg;
    cfg.pageSize = PaperScale::pageSize;
    cfg.dirtyBudgetPages = PaperScale::paperGbPages(2.0);
    const std::uint64_t pages = PaperScale::paperGbPages(20.0);
    core::ViyojitManager manager(
        ctx, ssd, cfg, ExperimentConfig::defaultMmuCosts(), pages);
    const Addr base = manager.vmmap(pages * PaperScale::pageSize);
    manager.start();
    Rng load_rng(3);
    ZipfianDistribution dist(pages);
    for (int i = 0; i < 40000; ++i) {
        manager.write(base + dist.next(load_rng) * PaperScale::pageSize,
                      128);
        manager.processEvents();
    }
    manager.powerFailureFlush();

    // Reboot: a fresh clock, the SSD image intact.
    const Tick boot_time = ctx.now();
    core::RecoveryManager recovery(ctx, ssd, 0, pages,
                                   PaperScale::pageSize, strategy);
    recovery.begin();
    if (strategy == RestoreStrategy::eager)
        recovery.waitUntilFullyResident();

    Rng request_rng(3);
    BootResult result;
    Tick stall_sum = 0;
    for (int i = 0; i < 4000; ++i) {
        const PageNum page = dist.next(request_rng);
        stall_sum += recovery.access(page);
        // Requests also take service time.
        ctx.clock().advance(25_us);
        ctx.events().runUntil(ctx.now());
        if (i == 999)
            result.firstThousandServed = ctx.now() - boot_time;
    }
    result.avgStallUs = static_cast<double>(stall_sum) / 4000.0 / 1000.0;
    if (strategy != RestoreStrategy::demandOnly) {
        recovery.waitUntilFullyResident();
        result.fullyResident =
            recovery.stats().fullyResidentAt - boot_time;
    }
    return result;
}

} // namespace

int
main()
{
    Table table("Section 8: restore strategies after a power cycle "
                "(20 paper-GB image)");
    table.setHeader({"Strategy", "First 1000 reqs served (ms)",
                     "Avg request stall (us)",
                     "Fully resident (ms)"});

    const BootResult eager = boot(RestoreStrategy::eager);
    table.addRow({"eager preload",
                  Table::fmt(ticksToSeconds(
                                 eager.firstThousandServed) *
                             1000.0),
                  Table::fmt(eager.avgStallUs),
                  Table::fmt(ticksToSeconds(eager.fullyResident) *
                             1000.0)});

    const BootResult demand = boot(RestoreStrategy::demandOnly);
    table.addRow({"demand only",
                  Table::fmt(ticksToSeconds(
                                 demand.firstThousandServed) *
                             1000.0),
                  Table::fmt(demand.avgStallUs), "never sweeps"});

    const BootResult both = boot(RestoreStrategy::demandPlusBackground);
    table.addRow({"demand + background (paper)",
                  Table::fmt(ticksToSeconds(
                                 both.firstThousandServed) *
                             1000.0),
                  Table::fmt(both.avgStallUs),
                  Table::fmt(ticksToSeconds(both.fullyResident) *
                             1000.0)});

    table.print(std::cout);
    std::cout << "\nDemand + background serves the first requests"
                 " almost as fast as demand-only while still reaching"
                 " full residency like the eager preload — the"
                 " combination section 8 recommends.\n";
    return 0;
}
