/**
 * @file
 * Battery-model arithmetic from sections 2.2, 5.1 and 8:
 *
 *  - the headline sizing example: 4 TB of DRAM at a 4 GB/s flush
 *    rate and ~300 W needs ~300 KJ (about 10x a phone battery by
 *    volume, ~25x after derating);
 *  - the battery -> dirty-budget conversion across battery sizes;
 *  - dynamic budget retuning as the pack ages, heats up, or loses
 *    cells (section 8, "Handling battery cell failures"), including
 *    the end-to-end effect on a live manager.
 */

#include <iostream>

#include "battery/battery.hh"
#include "bench/harness.hh"
#include "common/table.hh"

using namespace viyojit;
using namespace viyojit::bench;

int
main()
{
    battery::PowerModel power;
    power.cpuWatts = 240.0;
    power.dramWattsPerGib = 0.0;
    power.ssdWatts = 20.0;
    power.otherWatts = 40.0; // 300 W total, the paper's figure

    {
        battery::DirtyBudgetCalculator calc(power, 4.0e9, 1.0);
        Table table("Sizing example (paper section 2.2)");
        table.setHeader({"DRAM", "Flush time", "Energy needed"});
        for (double tb : {1.0, 2.0, 4.0, 8.0}) {
            const auto bytes = static_cast<std::uint64_t>(
                tb * static_cast<double>(1_GiB) * 1024.0);
            table.addRow(
                {Table::fmt(tb, 0) + " TB",
                 Table::fmt(calc.flushSeconds(bytes) / 60.0, 1) +
                     " min",
                 Table::fmt(calc.requiredJoules(bytes) / 1000.0, 0) +
                     " KJ"});
        }
        table.print(std::cout);
        std::cout << "\nPaper: 4 TB at 4 GB/s and ~300 W -> ~300 KJ"
                     " and ~17 minutes of flushing.\n\n";
    }

    {
        battery::DirtyBudgetCalculator calc(power, 4.0e9, 0.8);
        Table table("Battery -> dirty budget conversion");
        table.setHeader({"Nominal (KJ)", "Effective (KJ)",
                         "Dirty budget (GB)", "Budget (4 KiB pages)"});
        for (double kj : {5.0, 10.0, 20.0, 40.0, 80.0}) {
            battery::BatteryConfig cfg;
            cfg.nominalJoules = kj * 1000.0;
            battery::Battery pack(cfg);
            const double effective = pack.effectiveJoules();
            table.addRow(
                {Table::fmt(kj, 0), Table::fmt(effective / 1000.0, 1),
                 Table::fmt(static_cast<double>(
                                calc.budgetBytes(effective)) /
                                static_cast<double>(1_GiB),
                            2),
                 Table::fmt(calc.budgetPages(effective, 4096))});
        }
        table.print(std::cout);
        std::cout << "\n";
    }

    {
        // Section 8 end to end: a live manager retunes its budget as
        // the battery fades, and the dirty set shrinks to match.
        sim::SimContext ctx;
        storage::Ssd ssd(ctx, ExperimentConfig::defaultSsd());
        core::ViyojitConfig cfg;
        cfg.pageSize = PaperScale::pageSize;
        cfg.dirtyBudgetPages = 1024;
        core::ViyojitManager manager(
            ctx, ssd, cfg, ExperimentConfig::defaultMmuCosts(), 8192);
        const Addr base = manager.vmmap(4096 * PaperScale::pageSize);
        manager.start();
        for (PageNum p = 0; p < 1024; ++p)
            manager.write(base + p * PaperScale::pageSize, 64);

        battery::BatteryConfig bat_cfg;
        bat_cfg.nominalJoules = 30000.0;
        battery::Battery pack(bat_cfg);

        // Couple the battery to the manager: capacity changes retune
        // the budget proportionally.  The fresh pack is provisioned
        // for exactly the initial 1024-page budget, so fade maps
        // linearly onto pages (the scaled analogue of the joules ->
        // bytes conversion of section 5.1).
        const double joules_per_page =
            pack.effectiveJoules() / 1024.0;
        pack.addCapacityListener([&](double joules) {
            const auto pages = static_cast<std::uint64_t>(
                joules / joules_per_page);
            manager.setDirtyBudget(std::max<std::uint64_t>(pages, 1));
        });

        Table table("Section 8: budget retuning under battery fade "
                    "(live manager)");
        table.setHeader({"Event", "Effective (KJ)", "Budget (pages)",
                         "Dirty pages"});
        auto row = [&](const std::string &event) {
            table.addRow({event,
                          Table::fmt(pack.effectiveJoules() / 1000.0,
                                     2),
                          Table::fmt(manager.controller().dirtyBudget()),
                          Table::fmt(manager.dirtyPageCount())});
        };
        row("fresh pack");
        pack.setAgeYears(2.0);
        row("2 years old");
        pack.setAmbientCelsius(40.0);
        row("+ 40C ambient");
        pack.setFailedCellFraction(0.25);
        row("+ 25% cells failed");
        table.print(std::cout);

        std::cout << "\nThe dirty-page count always tracks the shrunk"
                     " budget: the server keeps operating with full"
                     " durability instead of giving up when capacity"
                     " drops (paper section 8).\n";
    }
    return 0;
}
