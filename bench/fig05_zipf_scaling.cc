/**
 * @file
 * Figure 5: under a Zipf write distribution, the fraction of pages
 * required to cover a given percentile of writes *falls* as the
 * total page count grows — the paper's argument that bigger NV-DRAM
 * makes battery/DRAM decoupling more attractive, not less.
 *
 * Both the analytic coverage (exact distribution mass) and a sampled
 * check (finite trace of Zipf draws) are reported.
 */

#include <algorithm>
#include <iostream>
#include <vector>

#include "common/distributions.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "trace/analyzer.hh"

using namespace viyojit;
using namespace viyojit::trace;

namespace
{

/** Sampled coverage: draw 32 writes per page, count hot pages. */
double
sampledCoverage(std::uint64_t pages, double percentile, Rng &rng)
{
    ZipfianDistribution dist(pages);
    std::vector<std::uint32_t> counts(pages, 0);
    const std::uint64_t draws = pages * 32;
    for (std::uint64_t i = 0; i < draws; ++i)
        ++counts[dist.next(rng)];
    std::sort(counts.begin(), counts.end(),
              std::greater<std::uint32_t>());
    const auto target = static_cast<std::uint64_t>(
        percentile * static_cast<double>(draws));
    std::uint64_t covered = 0;
    std::uint64_t used = 0;
    for (std::uint32_t c : counts) {
        if (covered >= target)
            break;
        covered += c;
        ++used;
    }
    return static_cast<double>(used) / static_cast<double>(pages);
}

} // namespace

int
main()
{
    const std::vector<std::uint64_t> sizes = {
        1ULL << 12, 1ULL << 14, 1ULL << 16, 1ULL << 18, 1ULL << 20,
        1ULL << 22};
    const std::vector<double> percentiles = {0.90, 0.95, 0.99};

    const auto series = zipfCoverageSeries(sizes, percentiles);

    Rng rng(5);
    Table table("Fig 5: Zipf(0.99) page fraction covering write "
                "percentiles");
    table.setHeader({"Total pages", "90% (analytic)", "95% (analytic)",
                     "99% (analytic)", "90% (sampled)"});
    for (const ZipfCoveragePoint &point : series) {
        // Sampling every size is costly; sample the smaller ones.
        const std::string sampled =
            point.pageCount <= (1ULL << 18)
                ? Table::pct(sampledCoverage(point.pageCount, 0.90,
                                             rng))
                : "-";
        table.addRow({Table::fmt(point.pageCount),
                      Table::pct(point.fractions[0]),
                      Table::pct(point.fractions[1]),
                      Table::pct(point.fractions[2]), sampled});
    }
    table.print(std::cout);

    std::cout << "\nPaper: the required fraction decreases "
                 "monotonically as the page population grows.\n";
    return 0;
}
