/**
 * @file
 * Figure 8: average and 99th-percentile operation latency vs. dirty
 * budget, per workload, for the operation class most exposed to
 * Viyojit's write traps (update for A/B, read for C, insert for D,
 * read-modify-write for F).
 *
 * Paper reference: the p99 with Viyojit stays above the baseline at
 * every budget — even budgets larger than the heap — because write
 * protection (and its traps) is always on for the whole NV-DRAM;
 * average latency converges to the baseline once the budget covers
 * the write working set.
 */

#include <iostream>
#include <string>
#include <vector>

#include "bench/harness.hh"
#include "common/table.hh"

using namespace viyojit;
using namespace viyojit::bench;

namespace
{

ycsb::OpType
focusOp(char workload)
{
    switch (workload) {
      case 'A':
      case 'B':
        return ycsb::OpType::update;
      case 'C':
        return ycsb::OpType::read;
      case 'D':
        return ycsb::OpType::insert;
      default:
        return ycsb::OpType::readModifyWrite;
    }
}

const char *
focusName(char workload)
{
    switch (workload) {
      case 'A':
      case 'B':
        return "update";
      case 'C':
        return "read";
      case 'D':
        return "insert";
      default:
        return "read-modify-write";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    const std::vector<char> workloads = {'A', 'B', 'C', 'D', 'F'};
    const std::vector<double> budgets_gb =
        quick ? std::vector<double>{2.0, 8.0, 18.0}
              : std::vector<double>{1.0, 2.0, 4.0, 8.0, 12.0, 16.0,
                                    18.0};

    std::printf("Figure 8: YCSB operation latency vs dirty budget\n\n");

    Table summary("Fig 8f summary: average latency overhead");
    summary.setHeader({"Workload / op", "11% (2 GB)", "46% (8 GB)"});

    for (char workload : workloads) {
        ExperimentConfig base_cfg;
        base_cfg.workload = workload;
        base_cfg.budgetPaperGb = 0.0;
        const ExperimentResult baseline = runExperiment(base_cfg);
        const LogHistogram &base_hist =
            baseline.run.latencyFor(focusOp(workload));

        Table table(std::string("Fig 8: YCSB-") + workload + " " +
                    focusName(workload) + " latency (us)");
        table.setHeader({"Budget (GB)", "Viyojit avg", "Viyojit p99",
                         "NV-DRAM avg", "NV-DRAM p99"});

        double over2 = 0.0;
        double over8 = 0.0;
        for (double gb : budgets_gb) {
            ExperimentConfig cfg;
            cfg.workload = workload;
            cfg.budgetPaperGb = gb;
            const ExperimentResult result = runExperiment(cfg);
            const LogHistogram &hist =
                result.run.latencyFor(focusOp(workload));
            const double overhead =
                (hist.mean() - base_hist.mean()) / base_hist.mean();
            if (gb == 2.0)
                over2 = overhead;
            if (gb == 8.0)
                over8 = overhead;
            table.addRow(
                {Table::fmt(gb, 0), Table::fmt(hist.mean() / 1000.0),
                 Table::fmt(static_cast<double>(hist.percentile(99)) /
                            1000.0),
                 Table::fmt(base_hist.mean() / 1000.0),
                 Table::fmt(
                     static_cast<double>(base_hist.percentile(99)) /
                     1000.0)});
        }
        table.print(std::cout);
        std::cout << "\n";
        summary.addRow({std::string("YCSB-") + workload + " " +
                            focusName(workload),
                        Table::pct(over2), Table::pct(over8)});
    }

    summary.print(std::cout);
    std::printf("\nPaper: p99 stays above baseline at every budget"
                " (write protection covers all of NV-DRAM); averages"
                " converge for large budgets.\n");
    return 0;
}
