/**
 * @file
 * Shared experiment harness for the evaluation benches.
 *
 * Assembles the full stack the paper evaluates — SSD model, MMU
 * model, Viyojit manager (or the full-battery baseline), persistent
 * heap, KV store, YCSB driver — runs one experiment, and reports the
 * metrics behind figures 7, 8, 9, and 10.
 *
 * Scaling: quantities are the paper's divided by `scaleShift` powers
 * of two (default 2^10): the 17.5 GB Redis heap becomes 17.5 MiB, a
 * 2 GB dirty budget becomes 2 MiB (512 pages), the 60 GB NV-DRAM
 * becomes 60 MiB.  Every reported comparison is a ratio against the
 * baseline, which the scaling preserves.
 */

#ifndef VIYOJIT_BENCH_HARNESS_HH
#define VIYOJIT_BENCH_HARNESS_HH

#include <cstdint>
#include <memory>
#include <string>

#include "core/failure.hh"
#include "core/manager.hh"
#include "kvstore/kvstore.hh"
#include "mmu/mmu.hh"
#include "pheap/nv_space.hh"
#include "pheap/pheap.hh"
#include "storage/ssd.hh"
#include "ycsb/driver.hh"
#include "ycsb/workload.hh"

namespace viyojit::bench
{

/** Scaled paper quantities. */
struct PaperScale
{
    /** log2 of the downscale factor (10 -> 1/1024). */
    static constexpr unsigned scaleShift = 10;

    /**
     * Tracking page size used by the scaled experiments.  The paper
     * tracks 4 KiB pages over gigabytes; scaling capacities by 2^10
     * while keeping 4 KiB pages would collapse the page population
     * (and with it the page-level Zipf skew the mechanism exploits —
     * the fig-5 effect in reverse).  A 2 KiB tracking page recovers
     * part of that population; EXPERIMENTS.md quantifies the residue.
     */
    static constexpr std::uint64_t pageSize = 2048;

    /** Bytes representing one paper gigabyte after scaling. */
    static constexpr std::uint64_t
    paperGb(double gb)
    {
        return static_cast<std::uint64_t>(
            gb * static_cast<double>(1_GiB >> scaleShift));
    }

    /** Pages representing one paper gigabyte after scaling. */
    static constexpr std::uint64_t
    paperGbPages(double gb)
    {
        return paperGb(gb) / pageSize;
    }
};

/** Full configuration of one experiment run. */
struct ExperimentConfig
{
    /** YCSB workload letter: A, B, C, D, or F. */
    char workload = 'A';

    /**
     * Dirty budget in paper-GB (scaled internally).  0 selects the
     * full-battery NV-DRAM baseline.
     */
    double budgetPaperGb = 2.0;

    /** Initial dataset size in paper-GB (17.5 in the paper). */
    double heapPaperGb = 17.5;

    /** Total NV-DRAM capacity in paper-GB (60 in the paper). */
    double capacityPaperGb = 60.0;

    /** Run-phase operations (paper: 10 M; scaled default 60 K). */
    std::uint64_t operationCount = 60000;

    /** Epoch length (paper: 1 ms). */
    Tick epochLength = 1_ms;

    /** Outstanding-IO cap (paper: 16). */
    unsigned maxOutstandingIos = 16;

    /** TLB flush before dirty scans (false = section 6.3 ablation). */
    bool flushTlbOnScan = true;

    /** Section-5.4 MMU assist instead of write-protection traps. */
    bool hardwareAssist = false;

    /** Update-time tie-break in victim ordering (library default). */
    bool updateTimeTieBreak = true;

    /**
     * Run epoch boundaries on the pre-optimization O(mapped) paths
     * (see core::ViyojitConfig::legacyEpochScan); for A/B checks
     * that the O(dirty) fast paths leave figure results unchanged.
     */
    bool legacyEpochScan = false;

    /**
     * Copy-trigger policy.  False (default here) reproduces the
     * paper's design: proactive copies launch at epoch boundaries
     * and overflow blocks on the SSD — one of the paper's three
     * overhead sources.  True enables this library's extension
     * (threshold-triggered continuous copying); the
     * abl_continuous_copy bench quantifies the difference.
     */
    bool continuousCopyTrigger = false;

    std::uint64_t seed = 42;

    /** Per-op service cost outside NV accesses. */
    Tick baseOpCost = 22_us;

    storage::SsdConfig ssd = defaultSsd();
    mmu::MmuCostModel mmuCosts = defaultMmuCosts();

    /** SSD resembling the paper's Azure device, scaled. */
    static storage::SsdConfig defaultSsd();

    /** MMU costs calibrated to the paper's trap/TLB magnitudes. */
    static mmu::MmuCostModel defaultMmuCosts();

    bool isBaseline() const { return budgetPaperGb <= 0.0; }
};

/** Everything a bench needs to print a figure row. */
struct ExperimentResult
{
    ycsb::RunResult run;

    /** Bytes copied to the SSD during the run phase. */
    std::uint64_t ssdBytesDuringRun = 0;

    /** Fig 9 metric: run-phase copies + final heap flush, averaged
     *  over the run duration, in MB/s of virtual time. */
    double avgWriteRateMBps = 0.0;

    /** Controller stats (zeroed for the baseline). */
    core::ControllerStats controller;

    /** Dirty pages at the end of the run. */
    std::uint64_t dirtyPagesAtEnd = 0;

    /** Report of the final power-failure flush. */
    core::FlushReport finalFlush;

    /** Durability verified after the final flush. */
    bool durable = false;

    std::uint64_t records = 0;
};

/** Run one experiment end to end. */
ExperimentResult runExperiment(const ExperimentConfig &config);

/**
 * Throughput overhead of a Viyojit run vs. a baseline run:
 * (baseline - viyojit) / baseline.
 */
double throughputOverhead(const ExperimentResult &viyojit,
                          const ExperimentResult &baseline);

/** The record count a heap of the given paper-GB holds. */
std::uint64_t recordsForHeap(double heap_paper_gb);

} // namespace viyojit::bench

#endif // VIYOJIT_BENCH_HARNESS_HH
