#!/usr/bin/env bash
# CI entry point: static-analysis gates, then build and test three
# configurations.
#
#   lint             pathlint --strict (all fault-path contracts:
#                    sigsafe, stack-bound, no-alloc, lock-blocking,
#                    atomics; writes pathlint_report.json), the
#                    annotation negative-compile suite, a full-tree
#                    clang-tidy pass against the committed ratchet
#                    baseline and a clang -Wthread-safety -Werror
#                    build (clang legs skipped cleanly when clang is
#                    not installed)
#   build-release/   Release            the configuration the benches use
#   build-sanitize/  RelWithDebInfo     ASan + UBSan + -Werror
#   build-tsan/      RelWithDebInfo     TSan (VIYOJIT_SANITIZE=thread)
#
# `./ci.sh lint` runs only the lint stage.  The full run puts lint
# first: the gates are seconds, the build matrix is minutes.
#
# The release and sanitize configurations run the full ctest suite;
# the sanitizer pass is what catches the bit-twiddling mistakes the
# fast epoch paths invite (summary-mask indexing, shift widths,
# heap/cursor bookkeeping), and it builds with VIYOJIT_WERROR=ON so
# warning regressions fail CI instead of scrolling past.  The TSan
# pass runs the threaded suites against the sharded runtime, and the
# release build additionally gates on the concurrency smoke benchmark
# (sharding must not slow the single-threaded path down).

set -euo pipefail
cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc)}

run_lint() {
    # Fault-path contracts (tools/pathlint_contracts.ini): async-
    # signal-safety, the worst-case stack bound vs the installed
    # sigaltstack, allocation-freedom of fault path + emergency
    # drain, blocking discipline under locks, and explicit
    # memory_order on hot-path atomics.  Needs only the gcc
    # toolchain (the engine reads -S assembly and -fstack-usage
    # tables; a compiler without -fstack-usage skips just the
    # stack-bound contract, loudly, inside the tool).  --strict also
    # rejects stale allowlist entries so the audited set can only
    # shrink; pathlint_report.json is the CI artifact with the
    # computed stack bound.
    if command -v "${CXX:-g++}" >/dev/null 2>&1 \
            && command -v c++filt >/dev/null 2>&1; then
        echo "=== Lint: pathlint (fault-path contracts, --strict) ==="
        python3 tools/pathlint --strict --report pathlint_report.json
    else
        echo "WARNING: ${CXX:-g++} or c++filt not installed —" \
             "pathlint contracts SKIPPED (no fault-path audit ran)"
    fi

    # Thread-safety annotation contracts, from the breaking side:
    # broken TUs must trip clang, and must stay valid C++ for gcc.
    echo "=== Lint: annotation negative-compile suite ==="
    python3 tests/annotations_negcompile/run_negcompile.py
    if command -v clang++ >/dev/null 2>&1; then
        python3 tests/annotations_negcompile/run_negcompile.py \
            --compiler clang++
    else
        echo "clang++ not installed; clang negcompile leg skipped"
    fi

    # Full-tree annotation check: the contracts only have teeth under
    # clang, so build the tree with -Wthread-safety[-beta] + -Werror
    # when clang is available (CMakeLists.txt turns the flags on for
    # clang by default).
    if command -v clang++ >/dev/null 2>&1; then
        echo "=== Lint: clang -Wthread-safety build ==="
        cmake -B build-clang-tsa -S . \
              -DCMAKE_CXX_COMPILER=clang++ \
              -DCMAKE_BUILD_TYPE=RelWithDebInfo \
              -DVIYOJIT_WERROR=ON
        cmake --build build-clang-tsa -j "${JOBS}"
    else
        echo "clang++ not installed; -Wthread-safety build skipped" \
             "(annotations compile to no-ops under gcc)"
    fi

    # clang-tidy (.clang-tidy: bugprone-*, concurrency-*,
    # performance-*) over the FULL tree, ratcheted against the
    # committed tools/clang_tidy_baseline.txt — changed-files-only
    # linting let pre-existing warnings hide in untouched files.
    # The tool exits 77 when clang-tidy or the compile database is
    # unavailable; that is a loud skip, not a pass.
    echo "=== Lint: clang-tidy (full tree vs committed baseline) ==="
    local tidy_rc=0
    python3 tools/clang_tidy_baseline.py --build build-lint \
        || tidy_rc=$?
    if [[ "${tidy_rc}" -eq 77 ]]; then
        echo "WARNING: clang-tidy baseline pass SKIPPED (see above)"
    elif [[ "${tidy_rc}" -ne 0 ]]; then
        return "${tidy_rc}"
    fi

    echo "=== Lint OK ==="
}

run_lint
if [[ "${1:-}" == "lint" ]]; then
    exit 0
fi

echo "=== Release build ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "${JOBS}"
ctest --test-dir build-release --output-on-failure -j "${JOBS}"

# Concurrency gates (bench/abl_concurrency.cc):
#  1. Sharding overhead: one thread over a sharded region must run
#     within 5% of the unsharded baseline (interleaved median-of-5).
#  2. Multicore scaling: 4 threads over 4 shards must reach >= 1.5x
#     the 1-thread throughput with fault p99 <= 2x (interleaved
#     median-of-3).  On a single-CPU host the scaling leg cannot
#     mean anything, so it prints a loud warning and passes — the
#     gate only has teeth where parallelism exists.
echo "=== Concurrency smoke (parity + multicore scaling) ==="
./build-release/bench/abl_concurrency --smoke

# Coalesced-IO gate: batched run writeback must beat the per-page
# flush where locality exists and never lose where it does not
# (bench/abl_io_batching.cc; bars are relaxed under --smoke).
echo "=== IO-batching smoke (per-page vs coalesced flush) ==="
./build-release/bench/abl_io_batching --smoke

# Copy-out compression gate: the measured-ratio budget multiplier
# must hold on compressible records and cost nothing measurable on
# incompressible data (bench/abl_compression.cc; bars relaxed under
# --smoke).
echo "=== Compression smoke (effective-budget multiplier) ==="
./build-release/bench/abl_compression --smoke

echo "=== ASan/UBSan build (-Werror) ==="
cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DVIYOJIT_SANITIZE=ON -DVIYOJIT_WERROR=ON
cmake --build build-sanitize -j "${JOBS}"
ctest --test-dir build-sanitize --output-on-failure -j "${JOBS}"

# Seed-randomized torture pass: every CI run explores a different
# power-cut/fault trajectory under the sanitizers.  The fixed-seed
# torture runs above are regression tests; this one is the search.
# A failure replays exactly with the printed seed (see EXPERIMENTS.md).
TORTURE_SEED=${VIYOJIT_TORTURE_SEED:-$(( $(date +%s) ^ $$ ))}
echo "=== Randomized torture run (VIYOJIT_TORTURE_SEED=${TORTURE_SEED}) ==="
if ! VIYOJIT_TORTURE_SEED="${TORTURE_SEED}" \
     ./build-sanitize/tests/torture_test \
     --gtest_filter='TortureTest.SurvivesSeededPowerCutsUnderFaultInjection:TortureTest.SurvivesPowerCutsDuringBatchedFlush:TortureTest.SurvivesPowerCutsDuringCompressedFlush'
then
    echo "torture run FAILED; replay with:" >&2
    echo "  VIYOJIT_TORTURE_SEED=${TORTURE_SEED} ./build-sanitize/tests/torture_test" >&2
    exit 1
fi

# Corruption-torture pass: the same randomized seed, but with the
# storage medium lying — silent bit flips, dropped writes, misdirected
# writes — plus power cuts landing mid-batched-flush.  The suite fails
# if even one corrupted page is silently accepted as durable
# (auditUnattributed must be zero); ZeroSilentAcceptanceAcrossSeeds
# alone covers three derived sub-seeds, so each CI run proves the
# verified-durability property on >= 3 distinct fault trajectories.
echo "=== Randomized corruption torture (VIYOJIT_TORTURE_SEED=${TORTURE_SEED}) ==="
if ! VIYOJIT_TORTURE_SEED="${TORTURE_SEED}" \
     ./build-sanitize/tests/torture_test \
     --gtest_filter='CorruptionTortureTest.*'
then
    echo "corruption torture FAILED; replay with:" >&2
    echo "  VIYOJIT_TORTURE_SEED=${TORTURE_SEED} ./build-sanitize/tests/torture_test --gtest_filter='CorruptionTortureTest.*'" >&2
    exit 1
fi

# TSan pass over the threaded suites.  report_signal_unsafe=0 stays
# because TSan's signal check is all-or-nothing per process — but it
# is no longer the audit.  The pathlint sigsafe contract (lint
# stage above) walks the handler's call graph and pins every
# signal-context call to a justified allowlist entry, so a NEW
# unsafe call fails CI even though TSan stays quiet.  Races and
# lock-order inversions still fail hard here.
echo "=== TSan build (threaded suites) ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DVIYOJIT_SANITIZE=thread
cmake --build build-tsan -j "${JOBS}" \
      --target concurrency_test torture_test runtime_test
for suite in concurrency_test torture_test runtime_test; do
    echo "--- TSan: ${suite} ---"
    TSAN_OPTIONS="report_signal_unsafe=0 halt_on_error=0 exitcode=66" \
        "./build-tsan/tests/${suite}"
done

echo "=== CI OK: lint + three build configurations green ==="
