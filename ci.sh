#!/usr/bin/env bash
# CI entry point: build and test two configurations.
#
#   build-release/   Release            the configuration the benches use
#   build-sanitize/  RelWithDebInfo     ASan + UBSan (VIYOJIT_SANITIZE=ON)
#
# Both run the full ctest suite; the sanitizer pass is what catches
# the bit-twiddling mistakes the fast epoch paths invite (summary-mask
# indexing, shift widths, heap/cursor bookkeeping).

set -euo pipefail
cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc)}

echo "=== Release build ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "${JOBS}"
ctest --test-dir build-release --output-on-failure -j "${JOBS}"

echo "=== ASan/UBSan build ==="
cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DVIYOJIT_SANITIZE=ON
cmake --build build-sanitize -j "${JOBS}"
ctest --test-dir build-sanitize --output-on-failure -j "${JOBS}"

# Seed-randomized torture pass: every CI run explores a different
# power-cut/fault trajectory under the sanitizers.  The fixed-seed
# torture runs above are regression tests; this one is the search.
# A failure replays exactly with the printed seed (see EXPERIMENTS.md).
TORTURE_SEED=${VIYOJIT_TORTURE_SEED:-$(( $(date +%s) ^ $$ ))}
echo "=== Randomized torture run (VIYOJIT_TORTURE_SEED=${TORTURE_SEED}) ==="
if ! VIYOJIT_TORTURE_SEED="${TORTURE_SEED}" \
     ./build-sanitize/tests/torture_test \
     --gtest_filter='TortureTest.SurvivesSeededPowerCutsUnderFaultInjection'
then
    echo "torture run FAILED; replay with:" >&2
    echo "  VIYOJIT_TORTURE_SEED=${TORTURE_SEED} ./build-sanitize/tests/torture_test" >&2
    exit 1
fi

echo "=== CI OK: both configurations green ==="
