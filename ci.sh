#!/usr/bin/env bash
# CI entry point: build and test three configurations.
#
#   build-release/   Release            the configuration the benches use
#   build-sanitize/  RelWithDebInfo     ASan + UBSan (VIYOJIT_SANITIZE=ON)
#   build-tsan/      RelWithDebInfo     TSan (VIYOJIT_SANITIZE=thread)
#
# The first two run the full ctest suite; the sanitizer pass is what
# catches the bit-twiddling mistakes the fast epoch paths invite
# (summary-mask indexing, shift widths, heap/cursor bookkeeping).  The
# TSan pass runs the threaded suites (concurrency, torture, runtime)
# against the sharded runtime, and the release build additionally
# gates on the concurrency smoke benchmark (sharding must not slow
# the single-threaded path down).

set -euo pipefail
cd "$(dirname "$0")"

JOBS=${JOBS:-$(nproc)}

echo "=== Release build ==="
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j "${JOBS}"
ctest --test-dir build-release --output-on-failure -j "${JOBS}"

# Sharding overhead gate: one thread over a sharded region must run
# within 5% of the unsharded baseline (interleaved median-of-5; see
# bench/abl_concurrency.cc).
echo "=== Concurrency smoke (sharded vs unsharded, 1 thread) ==="
./build-release/bench/abl_concurrency --smoke

echo "=== ASan/UBSan build ==="
cmake -B build-sanitize -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DVIYOJIT_SANITIZE=ON
cmake --build build-sanitize -j "${JOBS}"
ctest --test-dir build-sanitize --output-on-failure -j "${JOBS}"

# Seed-randomized torture pass: every CI run explores a different
# power-cut/fault trajectory under the sanitizers.  The fixed-seed
# torture runs above are regression tests; this one is the search.
# A failure replays exactly with the printed seed (see EXPERIMENTS.md).
TORTURE_SEED=${VIYOJIT_TORTURE_SEED:-$(( $(date +%s) ^ $$ ))}
echo "=== Randomized torture run (VIYOJIT_TORTURE_SEED=${TORTURE_SEED}) ==="
if ! VIYOJIT_TORTURE_SEED="${TORTURE_SEED}" \
     ./build-sanitize/tests/torture_test \
     --gtest_filter='TortureTest.SurvivesSeededPowerCutsUnderFaultInjection'
then
    echo "torture run FAILED; replay with:" >&2
    echo "  VIYOJIT_TORTURE_SEED=${TORTURE_SEED} ./build-sanitize/tests/torture_test" >&2
    exit 1
fi

# TSan pass over the threaded suites.  report_signal_unsafe=0 mutes
# the malloc-inside-SIGSEGV-handler reports: allocating in the fault
# handler is inherent to the userspace mprotect runtime (the handler
# IS the admission path), and those reports are not data races.
# Everything else — races, lock-order inversions — still fails hard.
echo "=== TSan build (threaded suites) ==="
cmake -B build-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DVIYOJIT_SANITIZE=thread
cmake --build build-tsan -j "${JOBS}" \
      --target concurrency_test torture_test runtime_test
for suite in concurrency_test torture_test runtime_test; do
    echo "--- TSan: ${suite} ---"
    TSAN_OPTIONS="report_signal_unsafe=0 halt_on_error=0 exitcode=66" \
        "./build-tsan/tests/${suite}"
done

echo "=== CI OK: all three configurations green ==="
