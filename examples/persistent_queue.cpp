/**
 * @file
 * A crash-proof work queue on real battery-backed memory: the
 * producer appends jobs to a persistent ring log inside an NvRegion,
 * the consumer acknowledges them with truncateFront, and a power cut
 * in the middle loses nothing — the classic write-ahead-log shape
 * the paper's introduction motivates, where Viyojit shines because
 * only the log tail is ever hot.
 *
 * Run:  ./persistent_queue [backing-file]
 */

#include <cstdio>
#include <string>

#include "pheap/nv_space.hh"
#include "plog/plog.hh"
#include "runtime/region.hh"

using namespace viyojit;

int
main(int argc, char **argv)
{
    const std::string backing =
        argc > 1 ? argv[1] : "/tmp/viyojit_queue.img";

    runtime::RuntimeConfig config;
    config.dirtyBudgetPages = 6; // the tail fits in a few pages
    config.startEpochThread = true;

    {
        auto region = runtime::NvRegion::create(backing, 1_MiB,
                                                config);
        pheap::PlainNvSpace space(
            static_cast<char *>(region->base()), region->size());
        auto log = plog::PersistentLog::create(space);

        // Producer: enqueue 2000 jobs; consumer: ack the first 1500.
        for (int i = 0; i < 2000; ++i)
            log.append("job{id=" + std::to_string(i) + "}");
        log.truncateFront(1500);

        const auto stats = log.stats();
        const auto region_stats = region->stats();
        std::printf("enqueued 2000, acked 1500 -> %llu pending "
                    "(seq %llu..%llu)\n",
                    (unsigned long long)stats.records,
                    (unsigned long long)stats.headSeq,
                    (unsigned long long)stats.tailSeq);
        std::printf("dirty pages never exceeded the %llu-page "
                    "battery budget (max writes live in the tail); "
                    "faults=%llu\n",
                    (unsigned long long)config.dirtyBudgetPages,
                    (unsigned long long)region_stats.writeFaults);

        // Power cut: flush the dirty tail on battery.
        region->flushAll();
        std::printf("power lost; dirty tail flushed\n");
    }

    // Reboot.
    auto region = runtime::NvRegion::recover(backing, config);
    pheap::PlainNvSpace space(static_cast<char *>(region->base()),
                              region->size());
    auto log = plog::PersistentLog::attach(space);
    const bool intact = log.validate();
    const auto stats = log.stats();
    std::printf("after reboot: %llu jobs pending, checksums %s\n",
                (unsigned long long)stats.records,
                intact ? "clean" : "CORRUPT");
    const auto first = log.read(stats.headSeq);
    std::printf("resuming with %s\n",
                first ? first->c_str() : "(nothing)");
    return intact && stats.records == 500 ? 0 : 1;
}
