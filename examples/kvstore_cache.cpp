/**
 * @file
 * A persistent front-end cache, the paper's motivating scenario:
 * Redis-style store whose whole heap lives in battery-backed DRAM so
 * a power cycle restarts it *warm* instead of cold.
 *
 * The example runs a session of traffic on the simulated substrate,
 * cuts power mid-flight, verifies durability, then "reboots" by
 * re-attaching the store to the same heap and keeps serving — no
 * cache warm-up, tiny battery.
 */

#include <cstdio>
#include <string>

#include "battery/battery.hh"
#include "core/failure.hh"
#include "core/manager.hh"
#include "kvstore/kvstore.hh"
#include "pheap/nv_space.hh"
#include "pheap/pheap.hh"

using namespace viyojit;

int
main()
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, storage::SsdConfig{});

    // 64 MiB of NV-DRAM, but battery for only ~6% of it.
    core::ViyojitConfig config;
    config.dirtyBudgetPages = 1024;
    core::ViyojitManager manager(ctx, ssd, config,
                                 mmu::MmuCostModel{}, 16384);

    const std::uint64_t region_bytes = 16384 * defaultPageSize;
    const Addr region = manager.vmmap(region_bytes);
    pheap::SimNvSpace space(manager, region, region_bytes);
    auto heap = pheap::PersistentHeap::create(space);
    auto store = kvstore::KvStore::create(heap, 8192);
    store.setAllocateOnUpdate(true);
    manager.start();

    // Serve a session: populate, then a read-mostly mix.
    std::printf("serving traffic...\n");
    for (int i = 0; i < 5000; ++i) {
        store.put("user:" + std::to_string(i),
                  "profile-data-" + std::to_string(i * 7));
    }
    for (int i = 0; i < 20000; ++i) {
        const std::string key = "user:" + std::to_string(i % 5000);
        if (i % 10 == 0)
            store.put(key, "updated-" + std::to_string(i));
        else
            store.get(key);
        manager.processEvents();
    }
    std::printf("records: %llu, dirty pages: %llu of %llu budget\n",
                (unsigned long long)store.size(),
                (unsigned long long)manager.dirtyPageCount(),
                (unsigned long long)config.dirtyBudgetPages);

    // Lights out.  The battery only has to cover the dirty budget.
    battery::BatteryConfig bat_cfg;
    bat_cfg.nominalJoules = 600.0; // a few phone-battery percent
    battery::Battery battery(bat_cfg);
    core::PowerFailureInjector injector(manager, battery,
                                        battery::PowerModel{});
    const core::FailureReport report = injector.inject();
    std::printf("power failure: flushed %llu pages in %.2f ms, "
                "needed %.1f J of %.1f J available -> %s, content %s\n",
                (unsigned long long)report.dirtyPages,
                ticksToSeconds(report.flushDuration) * 1000.0,
                report.joulesNeeded, report.joulesAvailable,
                report.survived ? "survived" : "DEAD",
                report.contentVerified ? "verified" : "CORRUPT");

    // Reboot: attach to the same heap; the cache is already warm.
    auto heap2 = pheap::PersistentHeap::attach(space);
    auto warm = kvstore::KvStore::attach(heap2);
    manager.start();
    std::printf("after reboot: %llu records already present\n",
                (unsigned long long)warm.size());
    const auto sample = warm.get("user:4242");
    std::printf("user:4242 -> %s\n",
                sample ? sample->c_str() : "(missing!)");
    return sample && warm.size() == 5000 ? 0 : 1;
}
