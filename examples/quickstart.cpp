/**
 * @file
 * Quickstart: battery-bounded non-volatile memory on real pages.
 *
 * Creates an NvRegion backed by a file, writes to it (first writes
 * trap transparently), shows the dirty budget holding, simulates a
 * power failure by flushing, and recovers the contents in a second
 * region — the full lifecycle in ~60 lines of application code.
 *
 * Run:  ./quickstart [backing-file]
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "runtime/region.hh"

using namespace viyojit;

int
main(int argc, char **argv)
{
    const std::string backing =
        argc > 1 ? argv[1] : "/tmp/viyojit_quickstart.img";

    runtime::RuntimeConfig config;
    config.dirtyBudgetPages = 8; // tiny on purpose: watch it enforce
    config.startEpochThread = true;
    config.epochMicros = 1000; // the paper's 1 ms epoch

    {
        auto region = runtime::NvRegion::create(backing, 256_KiB,
                                                config);
        char *mem = static_cast<char *>(region->base());
        std::printf("region: %llu pages of %llu bytes, budget %llu\n",
                    (unsigned long long)region->pageCount(),
                    (unsigned long long)region->pageSize(),
                    (unsigned long long)config.dirtyBudgetPages);

        // Ordinary stores; Viyojit tracks them via write faults.
        std::strcpy(mem, "hello, battery-backed world");
        for (std::uint64_t p = 0; p < region->pageCount(); ++p)
            mem[p * region->pageSize() + 64] = static_cast<char>(p);

        const runtime::RegionStats stats = region->stats();
        std::printf("wrote every page: faults=%llu dirty=%llu "
                    "(<= budget), proactive copies=%llu\n",
                    (unsigned long long)stats.writeFaults,
                    (unsigned long long)stats.dirtyPages,
                    (unsigned long long)stats.proactiveCopies);

        // Power is about to fail: flush the dirty set on "battery".
        const std::uint64_t flushed = region->flushAll();
        std::printf("emergency flush wrote %llu pages; battery only "
                    "ever needs to cover %llu\n",
                    (unsigned long long)flushed,
                    (unsigned long long)config.dirtyBudgetPages);
    }

    // Reboot: recover the region from the backing file.
    auto recovered = runtime::NvRegion::recover(backing, config);
    const char *mem = static_cast<const char *>(recovered->base());
    std::printf("recovered: \"%s\"\n", mem);
    std::printf("page 5 tag: %d (expected 5)\n",
                mem[5 * recovered->pageSize() + 64]);
    return 0;
}
