/**
 * @file
 * Command-line trace analyzer: run the paper's section-3 analysis on
 * a real CSV trace of your own system.
 *
 * Usage:
 *     trace_csv_tool <trace.csv> <volume_size_bytes> [page_size]
 *     trace_csv_tool --demo
 *
 * CSV format (see src/trace/csv.hh):
 *     timestamp_ns,volume_id,offset,length,op
 *     12345,0,40960,4096,W
 *
 * `--demo` writes a synthetic trace to /tmp, then analyzes it — a
 * self-contained smoke run showing the expected output.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "trace/analyzer.hh"
#include "trace/csv.hh"
#include "trace/generators.hh"

using namespace viyojit;
using namespace viyojit::trace;

namespace
{

int
analyze(const std::string &path, std::uint64_t volume_bytes,
        std::uint64_t page_size)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
    }

    VolumeAnalyzer analyzer(VolumeInfo{path, volume_bytes},
                            {60_s, 600_s, 3600_s}, page_size);
    Tick max_ts = 0;
    const CsvReadStats stats =
        readCsv(in, [&](const TraceRecord &record) {
            analyzer.observe(record);
            max_ts = std::max(max_ts, record.timestamp);
        });
    std::printf("parsed %llu records (%llu malformed lines skipped), "
                "span %.1f s\n\n",
                (unsigned long long)stats.records,
                (unsigned long long)stats.skippedLines,
                ticksToSeconds(max_ts));
    if (stats.records == 0)
        return 1;

    Table intervals("Worst-interval write volume (fig 2 analysis)");
    intervals.setHeader({"Interval", "Worst bytes", "% of volume"});
    const char *labels[] = {"1 minute", "10 minutes", "1 hour"};
    const auto metrics = analyzer.intervalMetrics();
    for (std::size_t i = 0; i < metrics.size(); ++i) {
        intervals.addRow({labels[i],
                          Table::fmt(metrics[i].worstIntervalBytes),
                          Table::pct(
                              metrics[i].worstFractionOfVolume)});
    }
    intervals.print(std::cout);

    const SkewMetric skew = analyzer.skewMetrics();
    Table skew_table("\nWrite skew (fig 3/4 analysis)");
    skew_table.setHeader({"Metric", "Value"});
    skew_table.addRow({"writes", Table::fmt(skew.totalWrites)});
    skew_table.addRow({"reads", Table::fmt(skew.totalReads)});
    skew_table.addRow({"pages touched", Table::fmt(skew.touchedPages)});
    skew_table.addRow(
        {"pages for 90% of writes (of touched)",
         Table::pct(skew.coverage90OfTouched)});
    skew_table.addRow(
        {"pages for 99% of writes (of touched)",
         Table::pct(skew.coverage99OfTouched)});
    skew_table.addRow({"pages for 99% of writes (of total)",
                       Table::pct(skew.coverage99OfTotal)});
    skew_table.print(std::cout);

    const double recommended = std::min(
        1.0, std::max(metrics.back().worstFractionOfVolume,
                      skew.coverage99OfTotal) *
                 1.5);
    std::printf("\nrecommended battery provisioning: %s of a full "
                "backup battery\n",
                Table::pct(recommended).c_str());
    return 0;
}

int
demo()
{
    const std::string path = "/tmp/viyojit_demo_trace.csv";
    const VolumeParams params = searchIndexParams().volumes[0];
    VolumeTraceGenerator generator(params, 0, 600_s, 99);
    {
        std::ofstream out(path);
        writeCsvHeader(out);
        TraceRecord record;
        while (generator.next(record)) {
            // The generators run at the 60:1 paper time scale;
            // export real-time stamps so the CSV looks like a
            // genuine 10-hour trace.
            record.timestamp *= 60;
            writeCsvRecord(out, record);
        }
    }
    std::printf("wrote demo trace to %s\n", path.c_str());
    return analyze(path, params.sizeBytes, defaultPageSize);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && std::string(argv[1]) == "--demo")
        return demo();
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: %s <trace.csv> <volume_size_bytes> "
                     "[page_size]\n       %s --demo\n",
                     argv[0], argv[0]);
        return 2;
    }
    const std::uint64_t volume_bytes = std::strtoull(argv[2], nullptr, 10);
    const std::uint64_t page_size =
        argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                 : defaultPageSize;
    if (volume_bytes == 0 || page_size == 0) {
        std::fprintf(stderr, "sizes must be positive integers\n");
        return 2;
    }
    return analyze(argv[1], volume_bytes, page_size);
}
