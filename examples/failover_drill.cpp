/**
 * @file
 * Failover drill: a fleet operator's worst week, compressed.
 *
 * A server runs a write-heavy workload on battery-bounded NV-DRAM
 * while its battery pack ages, overheats, and loses cells.  After
 * each capacity change Viyojit retunes the dirty budget (paper
 * section 8), and we cut power to prove durability still holds with
 * the degraded pack.  The baseline with a full-capacity battery
 * requirement would have had to stop serving at the first capacity
 * drop below 100%.
 */

#include <cstdio>
#include <string>

#include "battery/battery.hh"
#include "common/rng.hh"
#include "core/failure.hh"
#include "core/manager.hh"

using namespace viyojit;

namespace
{

/** Run a burst of page writes with a zipfian working set. */
void
serveTraffic(core::ViyojitManager &manager, Addr base,
             std::uint64_t pages, Rng &rng, int ops)
{
    for (int i = 0; i < ops; ++i) {
        // Cheap zipf-ish skew: quadratic bias toward low pages.
        const double u = rng.nextDouble();
        const auto page =
            static_cast<PageNum>(u * u * static_cast<double>(pages));
        manager.write(base + page * defaultPageSize,
                      64 + rng.nextBounded(1024));
        manager.processEvents();
    }
}

} // namespace

int
main()
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, storage::SsdConfig{});

    constexpr std::uint64_t region_pages = 8192;
    core::ViyojitConfig config;
    config.dirtyBudgetPages = 768;
    core::ViyojitManager manager(ctx, ssd, config,
                                 mmu::MmuCostModel{}, region_pages);
    const Addr base = manager.vmmap(region_pages * defaultPageSize);
    manager.start();

    battery::BatteryConfig bat_cfg;
    bat_cfg.nominalJoules = 2500.0;
    battery::Battery battery(bat_cfg);
    battery::PowerModel power;

    // Provision: fresh effective energy covers exactly the budget.
    const double joules_per_page =
        battery.effectiveJoules() /
        static_cast<double>(config.dirtyBudgetPages);
    battery.addCapacityListener([&](double joules) {
        const auto pages =
            static_cast<std::uint64_t>(joules / joules_per_page);
        manager.setDirtyBudget(std::max<std::uint64_t>(pages, 1));
        std::printf("  -> budget retuned to %llu pages\n",
                    (unsigned long long)pages);
    });

    core::PowerFailureInjector injector(manager, battery, power);
    Rng rng(7);

    struct Episode
    {
        const char *label;
        void (*degrade)(battery::Battery &);
    };
    const Episode episodes[] = {
        {"week 1: fresh pack", [](battery::Battery &) {}},
        {"year 2: pack aged",
         [](battery::Battery &b) { b.setAgeYears(2.0); }},
        {"heat wave: 42C ambient",
         [](battery::Battery &b) { b.setAmbientCelsius(42.0); }},
        {"cell failure: 20% capacity lost",
         [](battery::Battery &b) { b.setFailedCellFraction(0.2); }},
    };

    bool all_good = true;
    for (const Episode &episode : episodes) {
        std::printf("%s\n", episode.label);
        episode.degrade(battery);
        serveTraffic(manager, base, region_pages, rng, 4000);
        std::printf("  dirty: %llu pages, headroom: %.1f J\n",
                    (unsigned long long)manager.dirtyPageCount(),
                    injector.currentHeadroomJoules());

        const core::FailureReport report = injector.inject();
        std::printf("  POWER CUT: flushed %llu pages, needed %.1f J"
                    " of %.1f J -> %s, content %s\n",
                    (unsigned long long)report.dirtyPages,
                    report.joulesNeeded, report.joulesAvailable,
                    report.survived ? "survived" : "DEAD",
                    report.contentVerified ? "verified" : "CORRUPT");
        all_good = all_good && report.survived &&
                   report.contentVerified;
        manager.start(); // reboot
    }

    std::printf("\n%s\n", all_good
                              ? "every failover survived on the "
                                "degraded battery"
                              : "DURABILITY VIOLATION");
    return all_good ? 0 : 1;
}
