/**
 * @file
 * Capacity-planning tool: run the section-3 trace analysis over a
 * workload and recommend a battery fraction.
 *
 * For each application (or one named on the command line) it
 * generates the synthetic trace, measures worst-interval write
 * volume and write skew, and derives the dirty budget — and hence
 * battery fraction — that would cover the 99th percentile of writes
 * with headroom.  This is exactly the sizing workflow the paper
 * suggests operators run on their own traces.
 *
 * Run:  ./trace_explorer [azure|cosmos|pagerank|search]
 */

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "trace/analyzer.hh"
#include "trace/generators.hh"

using namespace viyojit;
using namespace viyojit::trace;

namespace
{

AppParams
pickApp(const std::string &name)
{
    if (name == "azure")
        return azureBlobParams();
    if (name == "cosmos")
        return cosmosParams();
    if (name == "pagerank")
        return pageRankParams();
    if (name == "search")
        return searchIndexParams();
    std::fprintf(stderr,
                 "unknown app '%s' (azure|cosmos|pagerank|search)\n",
                 name.c_str());
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<AppParams> apps;
    if (argc > 1)
        apps.push_back(pickApp(argv[1]));
    else
        apps = allApplications();

    for (const AppParams &app : apps) {
        Table table(app.name + " — battery sizing recommendation");
        table.setHeader({"Volume", "worst hour", "99% write pages",
                         "recommended battery", "verdict"});

        double machine_total = 0.0;
        double machine_weighted = 0.0;
        for (std::size_t v = 0; v < app.volumes.size(); ++v) {
            VolumeTraceGenerator gen(app.volumes[v],
                                     static_cast<std::uint32_t>(v),
                                     app.duration, 1000 + v);
            VolumeAnalyzer analyzer(gen.info(),
                                    {ScaledIntervals::oneHour});
            TraceRecord record;
            while (gen.next(record))
                analyzer.observe(record);

            const auto hour = analyzer.intervalMetrics()[0];
            const SkewMetric skew = analyzer.skewMetrics();

            // Battery to cover the hot write set with 1.5x headroom,
            // never above full provisioning.
            const double hot_fraction = skew.coverage99OfTotal;
            const double recommended = std::min(
                1.0,
                std::max(hour.worstFractionOfVolume, hot_fraction) *
                    1.5);
            const char *verdict =
                recommended < 0.25
                    ? "decouple: big battery saving"
                    : (recommended < 0.6 ? "decouple: moderate saving"
                                         : "full battery advisable");

            const auto size =
                static_cast<double>(app.volumes[v].sizeBytes);
            machine_total += size;
            machine_weighted += size * recommended;

            table.addRow({app.volumes[v].name,
                          Table::pct(hour.worstFractionOfVolume),
                          Table::pct(hot_fraction),
                          Table::pct(recommended), verdict});
        }
        table.print(std::cout);
        std::printf("machine-level battery: %s of full provisioning\n\n",
                    Table::pct(machine_weighted / machine_total)
                        .c_str());
    }

    std::printf("Paper: battery for <15%% of NV-DRAM suffices for a"
                " majority of volumes.\n");
    return 0;
}
