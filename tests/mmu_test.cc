/**
 * @file
 * Unit tests for the MMU substrate: PTE bits, the radix page table,
 * the TLB, fault delivery, and the epoch dirty-bit scan (including
 * the stale-TLB behaviour behind the paper's section 6.3 ablation).
 */

#include <gtest/gtest.h>

#include <vector>

#include "mmu/mmu.hh"

namespace viyojit::mmu
{
namespace
{

// ---------------------------------------------------------------------
// Pte
// ---------------------------------------------------------------------

TEST(PteTest, FlagRoundTrip)
{
    Pte pte;
    EXPECT_FALSE(pte.present());
    pte.setPresent(true);
    pte.setWritable(true);
    pte.setDirty(true);
    pte.setAccessed(true);
    pte.setShadowDirty(true);
    EXPECT_TRUE(pte.present());
    EXPECT_TRUE(pte.writable());
    EXPECT_TRUE(pte.dirty());
    EXPECT_TRUE(pte.accessed());
    EXPECT_TRUE(pte.shadowDirty());
    pte.setDirty(false);
    EXPECT_FALSE(pte.dirty());
    EXPECT_TRUE(pte.writable());
}

TEST(PteTest, PfnField)
{
    Pte pte;
    pte.setPfn(0x123456);
    pte.setPresent(true);
    EXPECT_EQ(pte.pfn(), 0x123456u);
    EXPECT_TRUE(pte.present()); // flags survive pfn writes
}

// ---------------------------------------------------------------------
// PageTable
// ---------------------------------------------------------------------

TEST(PageTableTest, MapAndFind)
{
    PageTable table;
    table.map(42, Pte::writableBit);
    const Pte *pte = table.find(42);
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->present());
    EXPECT_TRUE(pte->writable());
    EXPECT_EQ(pte->pfn(), 42u);
}

TEST(PageTableTest, FindUnmappedReturnsNull)
{
    PageTable table;
    EXPECT_EQ(table.find(42), nullptr);
    table.map(42, 0);
    EXPECT_EQ(table.find(43)->present(), false);
}

TEST(PageTableTest, UnmapClearsEntry)
{
    PageTable table;
    table.map(7, 0);
    EXPECT_TRUE(table.isMapped(7));
    table.unmap(7);
    EXPECT_FALSE(table.isMapped(7));
    EXPECT_EQ(table.mappedCount(), 0u);
}

TEST(PageTableTest, MappedCount)
{
    PageTable table;
    for (PageNum p = 0; p < 100; ++p)
        table.map(p, 0);
    EXPECT_EQ(table.mappedCount(), 100u);
    table.map(50, 0); // re-map is not a new mapping
    EXPECT_EQ(table.mappedCount(), 100u);
}

TEST(PageTableTest, SparseVpnsAcrossLevels)
{
    PageTable table;
    // VPNs that differ in every radix level.
    const std::vector<PageNum> vpns = {0, 511, 512, 1ULL << 18,
                                       1ULL << 27, (1ULL << 30) + 5};
    for (PageNum vpn : vpns)
        table.map(vpn, 0);
    for (PageNum vpn : vpns)
        EXPECT_TRUE(table.isMapped(vpn)) << vpn;
    EXPECT_EQ(table.mappedCount(), vpns.size());
}

TEST(PageTableTest, ForEachPresentVisitsRange)
{
    PageTable table;
    for (PageNum p = 10; p < 20; ++p)
        table.map(p, 0);
    std::vector<PageNum> seen;
    table.forEachPresent(12, 17, [&](PageNum vpn, Pte &) {
        seen.push_back(vpn);
    });
    EXPECT_EQ(seen, (std::vector<PageNum>{12, 13, 14, 15, 16}));
}

TEST(PageTableTest, ForEachPresentSkipsAbsentSubtrees)
{
    PageTable table;
    table.map(5, 0);
    table.map(1ULL << 30, 0);
    std::size_t visits = 0;
    table.forEachPresent(0, PageTable::maxVpn,
                         [&](PageNum, Pte &) { ++visits; });
    EXPECT_EQ(visits, 2u);
}

TEST(PageTableTest, VisitorCanMutate)
{
    PageTable table;
    table.map(3, 0);
    table.forEachPresent(0, 10, [](PageNum, Pte &pte) {
        pte.setDirty(true);
    });
    EXPECT_TRUE(table.find(3)->dirty());
}

// ---------------------------------------------------------------------
// Tlb
// ---------------------------------------------------------------------

TlbConfig
tinyTlb()
{
    TlbConfig cfg;
    cfg.entryCount = 8;
    cfg.associativity = 2;
    return cfg;
}

TEST(TlbTest, MissThenHit)
{
    Tlb tlb(tinyTlb());
    EXPECT_FALSE(tlb.lookup(5).hit);
    tlb.insert(5, true, false);
    const auto view = tlb.lookup(5);
    EXPECT_TRUE(view.hit);
    EXPECT_TRUE(view.writable);
    EXPECT_FALSE(view.dirtyCached);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbTest, LruEvictionWithinSet)
{
    Tlb tlb(tinyTlb()); // 4 sets, 2 ways
    // Three VPNs in the same set (stride = set count = 4).
    tlb.insert(0, true, false);
    tlb.insert(4, true, false);
    (void)tlb.lookup(0); // make 0 recent; 4 becomes LRU
    tlb.insert(8, true, false);
    EXPECT_TRUE(tlb.lookup(0).hit);
    EXPECT_FALSE(tlb.lookup(4).hit);
    EXPECT_TRUE(tlb.lookup(8).hit);
}

TEST(TlbTest, FlushPage)
{
    Tlb tlb(tinyTlb());
    tlb.insert(3, true, false);
    tlb.flushPage(3);
    EXPECT_FALSE(tlb.lookup(3).hit);
    EXPECT_EQ(tlb.shootdowns(), 1u);
}

TEST(TlbTest, FlushAll)
{
    Tlb tlb(tinyTlb());
    for (PageNum p = 0; p < 8; ++p)
        tlb.insert(p, true, false);
    tlb.flushAll();
    for (PageNum p = 0; p < 8; ++p)
        EXPECT_FALSE(tlb.lookup(p).hit);
    EXPECT_EQ(tlb.flushes(), 1u);
}

TEST(TlbTest, MarkDirtyUpdatesCachedState)
{
    Tlb tlb(tinyTlb());
    tlb.insert(2, true, false);
    tlb.markDirty(2);
    EXPECT_TRUE(tlb.lookup(2).dirtyCached);
}

// ---------------------------------------------------------------------
// Mmu
// ---------------------------------------------------------------------

struct MmuFixture : public ::testing::Test
{
    MmuFixture()
        : mmu(ctx, costs)
    {
        for (PageNum p = 0; p < 16; ++p)
            mmu.mapPage(p, /*writable=*/false);
    }

    sim::SimContext ctx;
    MmuCostModel costs;
    Mmu mmu;
};

TEST_F(MmuFixture, ReadDoesNotFault)
{
    mmu.access(0, false);
    EXPECT_EQ(ctx.stats().counterValue("mmu.write_faults"), 0u);
    EXPECT_TRUE(mmu.findPte(0)->accessed());
}

TEST_F(MmuFixture, WriteToProtectedPageFaults)
{
    PageNum faulted = invalidPage;
    mmu.setWriteFaultHandler([&](PageNum vpn) {
        faulted = vpn;
        mmu.unprotectPage(vpn);
    });
    mmu.access(3, true);
    EXPECT_EQ(faulted, 3u);
    EXPECT_EQ(ctx.stats().counterValue("mmu.write_faults"), 1u);
    EXPECT_TRUE(mmu.findPte(3)->dirty());
}

TEST_F(MmuFixture, SecondWriteDoesNotFault)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    mmu.access(3, true);
    mmu.access(3, true);
    EXPECT_EQ(ctx.stats().counterValue("mmu.write_faults"), 1u);
}

TEST_F(MmuFixture, TrapCostCharged)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    const Tick before = ctx.now();
    mmu.access(3, true);
    EXPECT_GE(ctx.now() - before, costs.trapCost);
}

TEST_F(MmuFixture, ProtectReflectedInIsProtected)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    EXPECT_TRUE(mmu.isProtected(5));
    mmu.access(5, true);
    EXPECT_FALSE(mmu.isProtected(5));
    mmu.protectPage(5);
    EXPECT_TRUE(mmu.isProtected(5));
}

TEST_F(MmuFixture, ProtectShootsDownTlbEntry)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    mmu.access(4, true); // now cached writable
    mmu.protectPage(4);
    PageNum faulted = invalidPage;
    mmu.setWriteFaultHandler([&](PageNum vpn) {
        faulted = vpn;
        mmu.unprotectPage(vpn);
    });
    mmu.access(4, true); // must fault again, not hit stale TLB
    EXPECT_EQ(faulted, 4u);
}

TEST_F(MmuFixture, ScanReportsAndClearsDirtyBits)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    mmu.access(1, true);
    mmu.access(2, true);

    std::vector<PageNum> dirty;
    mmu.scanAndClearDirty(0, 16, true, [&](PageNum vpn, bool was) {
        if (was)
            dirty.push_back(vpn);
    });
    EXPECT_EQ(dirty, (std::vector<PageNum>{1, 2}));

    // Bits are cleared now.
    dirty.clear();
    mmu.scanAndClearDirty(0, 16, true, [&](PageNum vpn, bool was) {
        if (was)
            dirty.push_back(vpn);
    });
    EXPECT_TRUE(dirty.empty());
}

TEST_F(MmuFixture, RewriteAfterFlushedScanSetsDirtyAgain)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    mmu.access(1, true);
    mmu.scanAndClearDirty(0, 16, true, [](PageNum, bool) {});
    mmu.access(1, true); // TLB was flushed -> dirty bit set again
    bool was_dirty = false;
    mmu.scanAndClearDirty(0, 16, true, [&](PageNum vpn, bool was) {
        if (vpn == 1)
            was_dirty = was;
    });
    EXPECT_TRUE(was_dirty);
}

TEST_F(MmuFixture, StaleTlbHidesRewrites)
{
    // The section 6.3 ablation: without the TLB flush, the cached
    // dirty state swallows the PTE dirty-bit update, so the next scan
    // reads stale (clean) bits for re-written pages.
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    mmu.access(1, true);
    mmu.scanAndClearDirty(0, 16, false, [](PageNum, bool) {});
    mmu.access(1, true); // TLB still caches dirty=1: no PTE update
    bool was_dirty = false;
    mmu.scanAndClearDirty(0, 16, false, [&](PageNum vpn, bool was) {
        if (vpn == 1)
            was_dirty = was;
    });
    EXPECT_FALSE(was_dirty);
}

TEST_F(MmuFixture, AccessRangeTouchesSpannedPages)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    // 100 bytes starting 50 bytes before a page boundary.
    mmu.accessRange(defaultPageSize - 50, 100, true);
    EXPECT_TRUE(mmu.findPte(0)->dirty());
    EXPECT_TRUE(mmu.findPte(1)->dirty());
    EXPECT_FALSE(mmu.findPte(2)->dirty());
}

TEST_F(MmuFixture, UnmappedAccessPanics)
{
    EXPECT_DEATH(mmu.access(999, false), "unmapped");
}

TEST_F(MmuFixture, BrokenHandlerPanics)
{
    mmu.setWriteFaultHandler([](PageNum) { /* never unprotects */ });
    EXPECT_DEATH(mmu.access(0, true), "failed to unprotect");
}

} // namespace
} // namespace viyojit::mmu
