/**
 * @file
 * Unit tests for the MMU substrate: PTE bits, the radix page table,
 * the TLB, fault delivery, and the epoch dirty-bit scan (including
 * the stale-TLB behaviour behind the paper's section 6.3 ablation).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "mmu/mmu.hh"

namespace viyojit::mmu
{
namespace
{

// ---------------------------------------------------------------------
// Pte
// ---------------------------------------------------------------------

TEST(PteTest, FlagRoundTrip)
{
    Pte pte;
    EXPECT_FALSE(pte.present());
    pte.setPresent(true);
    pte.setWritable(true);
    pte.setDirty(true);
    pte.setAccessed(true);
    pte.setShadowDirty(true);
    EXPECT_TRUE(pte.present());
    EXPECT_TRUE(pte.writable());
    EXPECT_TRUE(pte.dirty());
    EXPECT_TRUE(pte.accessed());
    EXPECT_TRUE(pte.shadowDirty());
    pte.setDirty(false);
    EXPECT_FALSE(pte.dirty());
    EXPECT_TRUE(pte.writable());
}

TEST(PteTest, PfnField)
{
    Pte pte;
    pte.setPfn(0x123456);
    pte.setPresent(true);
    EXPECT_EQ(pte.pfn(), 0x123456u);
    EXPECT_TRUE(pte.present()); // flags survive pfn writes
}

// ---------------------------------------------------------------------
// PageTable
// ---------------------------------------------------------------------

TEST(PageTableTest, MapAndFind)
{
    PageTable table;
    table.map(42, Pte::writableBit);
    const Pte *pte = table.find(42);
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->present());
    EXPECT_TRUE(pte->writable());
    EXPECT_EQ(pte->pfn(), 42u);
}

TEST(PageTableTest, FindUnmappedReturnsNull)
{
    PageTable table;
    EXPECT_EQ(table.find(42), nullptr);
    table.map(42, 0);
    EXPECT_EQ(table.find(43)->present(), false);
}

TEST(PageTableTest, UnmapClearsEntry)
{
    PageTable table;
    table.map(7, 0);
    EXPECT_TRUE(table.isMapped(7));
    table.unmap(7);
    EXPECT_FALSE(table.isMapped(7));
    EXPECT_EQ(table.mappedCount(), 0u);
}

TEST(PageTableTest, MappedCount)
{
    PageTable table;
    for (PageNum p = 0; p < 100; ++p)
        table.map(p, 0);
    EXPECT_EQ(table.mappedCount(), 100u);
    table.map(50, 0); // re-map is not a new mapping
    EXPECT_EQ(table.mappedCount(), 100u);
}

TEST(PageTableTest, SparseVpnsAcrossLevels)
{
    PageTable table;
    // VPNs that differ in every radix level.
    const std::vector<PageNum> vpns = {0, 511, 512, 1ULL << 18,
                                       1ULL << 27, (1ULL << 30) + 5};
    for (PageNum vpn : vpns)
        table.map(vpn, 0);
    for (PageNum vpn : vpns)
        EXPECT_TRUE(table.isMapped(vpn)) << vpn;
    EXPECT_EQ(table.mappedCount(), vpns.size());
}

TEST(PageTableTest, ForEachPresentVisitsRange)
{
    PageTable table;
    for (PageNum p = 10; p < 20; ++p)
        table.map(p, 0);
    std::vector<PageNum> seen;
    table.forEachPresent(12, 17, [&](PageNum vpn, Pte &) {
        seen.push_back(vpn);
    });
    EXPECT_EQ(seen, (std::vector<PageNum>{12, 13, 14, 15, 16}));
}

TEST(PageTableTest, ForEachPresentSkipsAbsentSubtrees)
{
    PageTable table;
    table.map(5, 0);
    table.map(1ULL << 30, 0);
    std::size_t visits = 0;
    table.forEachPresent(0, PageTable::maxVpn,
                         [&](PageNum, Pte &) { ++visits; });
    EXPECT_EQ(visits, 2u);
}

TEST(PageTableTest, VisitorCanMutate)
{
    PageTable table;
    table.map(3, 0);
    table.forEachPresent(0, 10, [](PageNum, Pte &pte) {
        pte.setDirty(true);
    });
    EXPECT_TRUE(table.find(3)->dirty());
}

TEST(PageTableTest, ForEachDirtyVisitsOnlyDirtyPages)
{
    PageTable table;
    for (PageNum p = 0; p < 100; ++p)
        table.map(p, 0);
    table.noteDirty(17);
    table.noteDirty(63);
    table.noteDirty(64);
    std::vector<PageNum> seen;
    const DirtyScanStats stats = table.forEachDirty(
        0, 100, [&](PageNum vpn, Pte &pte) {
            seen.push_back(vpn);
            pte.setDirty(false);
        });
    EXPECT_EQ(seen, (std::vector<PageNum>{17, 63, 64}));
    EXPECT_EQ(stats.visitedPages, 3u);
    // The scan drained the bits and the summaries with them.
    EXPECT_FALSE(table.anyDirty());
    EXPECT_TRUE(table.dirtySummariesConsistent());
    const DirtyScanStats again = table.forEachDirty(
        0, 100, [&](PageNum, Pte &) { FAIL() << "nothing is dirty"; });
    EXPECT_EQ(again.visitedPages, 0u);
}

TEST(PageTableTest, ForEachDirtyPrunesCleanSubtrees)
{
    PageTable table;
    table.map(5, 0);
    table.map(1ULL << 30, 0); // a second, far-away subtree
    table.noteDirty(5);
    std::vector<PageNum> seen;
    const DirtyScanStats stats = table.forEachDirty(
        0, PageTable::maxVpn, [&](PageNum vpn, Pte &pte) {
            seen.push_back(vpn);
            pte.setDirty(false);
        });
    EXPECT_EQ(seen, (std::vector<PageNum>{5}));
    // The clean subtree was pruned at the root without descending.
    EXPECT_GE(stats.skippedSubtrees, 1u);
    EXPECT_EQ(stats.visitedNodes, 4u); // root + one path down
}

TEST(PageTableTest, ForEachDirtyHonorsRange)
{
    PageTable table;
    for (PageNum p = 10; p < 20; ++p) {
        table.map(p, 0);
        table.noteDirty(p);
    }
    std::vector<PageNum> seen;
    table.forEachDirty(12, 17, [&](PageNum vpn, Pte &pte) {
        seen.push_back(vpn);
        pte.setDirty(false);
    });
    EXPECT_EQ(seen, (std::vector<PageNum>{12, 13, 14, 15, 16}));
    // Pages outside the scanned range keep their dirty bits and the
    // summaries still know about them.
    EXPECT_TRUE(table.find(11)->dirty());
    EXPECT_TRUE(table.anyDirty());
    EXPECT_TRUE(table.dirtySummariesConsistent());
}

/**
 * Fuzz the any-dirty-below summaries: after an arbitrary mix of map,
 * unmap, re-map, dirty, clean, and partial-range scans, every summary
 * bit must be set iff some present descendant PTE is dirty, and the
 * pruned scan must report exactly the reference dirty set.
 */
TEST(PageTableTest, DirtySummaryInvariantUnderRandomOps)
{
    PageTable table;
    Rng rng(0x5eedULL);
    // A sparse universe crossing all four radix levels.
    std::vector<PageNum> universe;
    for (int i = 0; i < 48; ++i)
        universe.push_back(rng.nextBounded(PageTable::maxVpn));
    for (PageNum p = 1000; p < 1032; ++p)
        universe.push_back(p); // plus one dense leaf
    std::set<PageNum> mapped;
    std::set<PageNum> dirty;

    for (int op = 0; op < 5000; ++op) {
        const PageNum vpn =
            universe[rng.nextBounded(universe.size())];
        switch (rng.nextBounded(6)) {
          case 0:
            // (Re-)map wipes any prior dirty state of the slot.
            table.map(vpn, 0);
            mapped.insert(vpn);
            dirty.erase(vpn);
            break;
          case 1:
            table.unmap(vpn);
            mapped.erase(vpn);
            dirty.erase(vpn);
            break;
          case 2:
            if (mapped.count(vpn)) {
                table.noteDirty(vpn);
                dirty.insert(vpn);
            }
            break;
          case 3:
            table.clearDirty(vpn);
            dirty.erase(vpn);
            break;
          default: {
            // Partial-range draining scan, like an epoch boundary
            // over a sub-region.
            const PageNum lo = rng.nextBounded(PageTable::maxVpn);
            const PageNum hi =
                lo + rng.nextBounded(PageTable::maxVpn - lo + 1);
            std::vector<PageNum> seen;
            table.forEachDirty(lo, hi, [&](PageNum p, Pte &pte) {
                seen.push_back(p);
                pte.setDirty(false);
            });
            std::vector<PageNum> expected(
                dirty.lower_bound(lo), dirty.lower_bound(hi));
            ASSERT_EQ(seen, expected)
                << "scan [" << lo << ", " << hi << ") diverged";
            dirty.erase(dirty.lower_bound(lo), dirty.lower_bound(hi));
            break;
          }
        }
        if (op % 97 == 0) {
            ASSERT_TRUE(table.dirtySummariesConsistent())
                << "summaries inconsistent after op " << op;
        }
    }

    ASSERT_TRUE(table.dirtySummariesConsistent());
    std::vector<PageNum> seen;
    table.forEachDirty(0, PageTable::maxVpn + 1,
                       [&](PageNum p, Pte &pte) {
                           seen.push_back(p);
                           pte.setDirty(false);
                       });
    EXPECT_EQ(seen,
              std::vector<PageNum>(dirty.begin(), dirty.end()));
    EXPECT_FALSE(table.anyDirty());
}

// ---------------------------------------------------------------------
// Tlb
// ---------------------------------------------------------------------

TlbConfig
tinyTlb()
{
    TlbConfig cfg;
    cfg.entryCount = 8;
    cfg.associativity = 2;
    return cfg;
}

TEST(TlbTest, MissThenHit)
{
    Tlb tlb(tinyTlb());
    EXPECT_FALSE(tlb.lookup(5).hit);
    tlb.insert(5, true, false);
    const auto view = tlb.lookup(5);
    EXPECT_TRUE(view.hit);
    EXPECT_TRUE(view.writable);
    EXPECT_FALSE(view.dirtyCached);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(TlbTest, LruEvictionWithinSet)
{
    Tlb tlb(tinyTlb()); // 4 sets, 2 ways
    // Three VPNs in the same set (stride = set count = 4).
    tlb.insert(0, true, false);
    tlb.insert(4, true, false);
    (void)tlb.lookup(0); // make 0 recent; 4 becomes LRU
    tlb.insert(8, true, false);
    EXPECT_TRUE(tlb.lookup(0).hit);
    EXPECT_FALSE(tlb.lookup(4).hit);
    EXPECT_TRUE(tlb.lookup(8).hit);
}

TEST(TlbTest, FlushPage)
{
    Tlb tlb(tinyTlb());
    tlb.insert(3, true, false);
    tlb.flushPage(3);
    EXPECT_FALSE(tlb.lookup(3).hit);
    EXPECT_EQ(tlb.shootdowns(), 1u);
}

TEST(TlbTest, FlushAll)
{
    Tlb tlb(tinyTlb());
    for (PageNum p = 0; p < 8; ++p)
        tlb.insert(p, true, false);
    tlb.flushAll();
    for (PageNum p = 0; p < 8; ++p)
        EXPECT_FALSE(tlb.lookup(p).hit);
    EXPECT_EQ(tlb.flushes(), 1u);
}

TEST(TlbTest, MarkDirtyUpdatesCachedState)
{
    Tlb tlb(tinyTlb());
    tlb.insert(2, true, false);
    tlb.markDirty(2);
    EXPECT_TRUE(tlb.lookup(2).dirtyCached);
}

// ---------------------------------------------------------------------
// Mmu
// ---------------------------------------------------------------------

struct MmuFixture : public ::testing::Test
{
    MmuFixture()
        : mmu(ctx, costs)
    {
        for (PageNum p = 0; p < 16; ++p)
            mmu.mapPage(p, /*writable=*/false);
    }

    sim::SimContext ctx;
    MmuCostModel costs;
    Mmu mmu;
};

TEST_F(MmuFixture, ReadDoesNotFault)
{
    mmu.access(0, false);
    EXPECT_EQ(ctx.stats().counterValue("mmu.write_faults"), 0u);
    EXPECT_TRUE(mmu.findPte(0)->accessed());
}

TEST_F(MmuFixture, WriteToProtectedPageFaults)
{
    PageNum faulted = invalidPage;
    mmu.setWriteFaultHandler([&](PageNum vpn) {
        faulted = vpn;
        mmu.unprotectPage(vpn);
    });
    mmu.access(3, true);
    EXPECT_EQ(faulted, 3u);
    EXPECT_EQ(ctx.stats().counterValue("mmu.write_faults"), 1u);
    EXPECT_TRUE(mmu.findPte(3)->dirty());
}

TEST_F(MmuFixture, SecondWriteDoesNotFault)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    mmu.access(3, true);
    mmu.access(3, true);
    EXPECT_EQ(ctx.stats().counterValue("mmu.write_faults"), 1u);
}

TEST_F(MmuFixture, TrapCostCharged)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    const Tick before = ctx.now();
    mmu.access(3, true);
    EXPECT_GE(ctx.now() - before, costs.trapCost);
}

TEST_F(MmuFixture, ProtectReflectedInIsProtected)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    EXPECT_TRUE(mmu.isProtected(5));
    mmu.access(5, true);
    EXPECT_FALSE(mmu.isProtected(5));
    mmu.protectPage(5);
    EXPECT_TRUE(mmu.isProtected(5));
}

TEST_F(MmuFixture, ProtectShootsDownTlbEntry)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    mmu.access(4, true); // now cached writable
    mmu.protectPage(4);
    PageNum faulted = invalidPage;
    mmu.setWriteFaultHandler([&](PageNum vpn) {
        faulted = vpn;
        mmu.unprotectPage(vpn);
    });
    mmu.access(4, true); // must fault again, not hit stale TLB
    EXPECT_EQ(faulted, 4u);
}

TEST_F(MmuFixture, ScanReportsAndClearsDirtyBits)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    mmu.access(1, true);
    mmu.access(2, true);

    std::vector<PageNum> dirty;
    mmu.scanAndClearDirty(0, 16, true, [&](PageNum vpn, bool was) {
        if (was)
            dirty.push_back(vpn);
    });
    EXPECT_EQ(dirty, (std::vector<PageNum>{1, 2}));

    // Bits are cleared now.
    dirty.clear();
    mmu.scanAndClearDirty(0, 16, true, [&](PageNum vpn, bool was) {
        if (was)
            dirty.push_back(vpn);
    });
    EXPECT_TRUE(dirty.empty());
}

TEST_F(MmuFixture, RewriteAfterFlushedScanSetsDirtyAgain)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    mmu.access(1, true);
    mmu.scanAndClearDirty(0, 16, true, [](PageNum, bool) {});
    mmu.access(1, true); // TLB was flushed -> dirty bit set again
    bool was_dirty = false;
    mmu.scanAndClearDirty(0, 16, true, [&](PageNum vpn, bool was) {
        if (vpn == 1)
            was_dirty = was;
    });
    EXPECT_TRUE(was_dirty);
}

TEST_F(MmuFixture, StaleTlbHidesRewrites)
{
    // The section 6.3 ablation: without the TLB flush, the cached
    // dirty state swallows the PTE dirty-bit update, so the next scan
    // reads stale (clean) bits for re-written pages.
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    mmu.access(1, true);
    mmu.scanAndClearDirty(0, 16, false, [](PageNum, bool) {});
    mmu.access(1, true); // TLB still caches dirty=1: no PTE update
    bool was_dirty = false;
    mmu.scanAndClearDirty(0, 16, false, [&](PageNum vpn, bool was) {
        if (vpn == 1)
            was_dirty = was;
    });
    EXPECT_FALSE(was_dirty);
}

TEST_F(MmuFixture, LegacyWalkMatchesHierarchicalScan)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    mmu.access(1, true);
    mmu.access(7, true);
    std::vector<PageNum> hier;
    mmu.scanAndClearDirty(0, 16, true, [&](PageNum vpn, bool was) {
        if (was)
            hier.push_back(vpn);
    });
    EXPECT_EQ(hier, (std::vector<PageNum>{1, 7}));

    // Redirty the same pages and rescan on the legacy full walk: the
    // dirty report is identical, but every present page is visited.
    mmu.access(1, true);
    mmu.access(7, true);
    std::vector<PageNum> legacy;
    std::uint64_t visited = 0;
    mmu.scanAndClearDirty(
        0, 16, true,
        [&](PageNum vpn, bool was) {
            ++visited;
            if (was)
                legacy.push_back(vpn);
        },
        /*legacy_walk=*/true);
    EXPECT_EQ(legacy, hier);
    EXPECT_EQ(visited, 16u);
    EXPECT_TRUE(mmu.pageTable().dirtySummariesConsistent());
}

TEST_F(MmuFixture, HierarchicalScanCountsSkippedSubtrees)
{
    mmu.mapPage(1ULL << 30, /*writable=*/false); // far-away subtree
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    mmu.access(1, true);
    mmu.scanAndClearDirty(0, (1ULL << 30) + 1, true,
                          [](PageNum, bool) {});
    EXPECT_GE(ctx.stats().counterValue("mmu.scan_skipped_subtrees"),
              1u);
}

TEST_F(MmuFixture, AccessRangeTouchesSpannedPages)
{
    mmu.setWriteFaultHandler(
        [&](PageNum vpn) { mmu.unprotectPage(vpn); });
    // 100 bytes starting 50 bytes before a page boundary.
    mmu.accessRange(defaultPageSize - 50, 100, true);
    EXPECT_TRUE(mmu.findPte(0)->dirty());
    EXPECT_TRUE(mmu.findPte(1)->dirty());
    EXPECT_FALSE(mmu.findPte(2)->dirty());
}

TEST_F(MmuFixture, UnmappedAccessPanics)
{
    EXPECT_DEATH(mmu.access(999, false), "unmapped");
}

TEST_F(MmuFixture, BrokenHandlerPanics)
{
    mmu.setWriteFaultHandler([](PageNum) { /* never unprotects */ });
    EXPECT_DEATH(mmu.access(0, true), "failed to unprotect");
}

} // namespace
} // namespace viyojit::mmu
