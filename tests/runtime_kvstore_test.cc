/**
 * @file
 * Full-stack integration on REAL memory: the persistent heap and KV
 * store running inside an mprotect-tracked NvRegion, with the dirty
 * budget enforced by actual SIGSEGV faults, crash-flushed to the
 * backing file, and recovered into a warm store — the paper's
 * Redis-on-NV-DRAM scenario end to end, no simulation.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "kvstore/kvstore.hh"
#include "pheap/nv_space.hh"
#include "pheap/pheap.hh"
#include "runtime/region.hh"

namespace viyojit
{
namespace
{

std::string
tempPath(const std::string &tag)
{
    return "/tmp/viyojit_rtkv_" + tag + "_" +
           std::to_string(::getpid()) + ".img";
}

runtime::RuntimeConfig
budgetConfig(std::uint64_t pages, bool epoch_thread = false)
{
    runtime::RuntimeConfig cfg;
    cfg.dirtyBudgetPages = pages;
    cfg.startEpochThread = epoch_thread;
    return cfg;
}

struct RuntimeKvFixture : public ::testing::Test
{
    void
    TearDown() override
    {
        for (const std::string &path : cleanup)
            ::unlink(path.c_str());
    }

    std::string
    makePath(const std::string &tag)
    {
        cleanup.push_back(tempPath(tag));
        return cleanup.back();
    }

    std::vector<std::string> cleanup;
};

TEST_F(RuntimeKvFixture, StoreRunsUnderTinyBudget)
{
    auto region = runtime::NvRegion::create(makePath("tiny"), 2_MiB,
                                            budgetConfig(16));
    pheap::PlainNvSpace space(static_cast<char *>(region->base()),
                              region->size());
    auto heap = pheap::PersistentHeap::create(space);
    auto store = kvstore::KvStore::create(heap, 257);

    for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE(store.put("key" + std::to_string(i),
                              "value-" + std::to_string(i * 3)));
        ASSERT_LE(region->stats().dirtyPages, 16u);
        if (i % 50 == 0)
            region->epochTick();
    }
    for (int i = 0; i < 300; ++i) {
        EXPECT_EQ(*store.get("key" + std::to_string(i)),
                  "value-" + std::to_string(i * 3));
    }
    EXPECT_GT(region->stats().writeFaults, 0u);
}

TEST_F(RuntimeKvFixture, CrashAndWarmRestart)
{
    const std::string path = makePath("warm");
    {
        auto region = runtime::NvRegion::create(path, 2_MiB,
                                                budgetConfig(24));
        pheap::PlainNvSpace space(static_cast<char *>(region->base()),
                                  region->size());
        auto heap = pheap::PersistentHeap::create(space);
        auto store = kvstore::KvStore::create(heap, 509);
        store.setAllocateOnUpdate(true);
        for (int i = 0; i < 400; ++i)
            ASSERT_TRUE(store.put("user" + std::to_string(i),
                                  "profile" + std::to_string(i)));
        for (int i = 0; i < 100; ++i)
            ASSERT_TRUE(store.put("user" + std::to_string(i),
                                  "updated" + std::to_string(i)));
        region->flushAll(); // the power-failure path
        // Destructor also flushes, but the explicit flush is the
        // semantics under test.
    }

    auto region = runtime::NvRegion::recover(path, budgetConfig(24));
    pheap::PlainNvSpace space(static_cast<char *>(region->base()),
                              region->size());
    auto heap = pheap::PersistentHeap::attach(space);
    auto store = kvstore::KvStore::attach(heap);
    EXPECT_EQ(store.size(), 400u);
    EXPECT_EQ(*store.get("user42"), "updated42");
    EXPECT_EQ(*store.get("user399"), "profile399");
    // The recovered store is fully writable.
    EXPECT_TRUE(store.put("user42", "again"));
    EXPECT_EQ(*store.get("user42"), "again");
}

TEST_F(RuntimeKvFixture, RandomOpsMatchReferenceUnderBudget)
{
    auto region = runtime::NvRegion::create(makePath("fuzz"), 4_MiB,
                                            budgetConfig(12));
    pheap::PlainNvSpace space(static_cast<char *>(region->base()),
                              region->size());
    auto heap = pheap::PersistentHeap::create(space);
    auto store = kvstore::KvStore::create(heap, 127);
    std::map<std::string, std::string> reference;
    Rng rng(31337);

    for (int i = 0; i < 3000; ++i) {
        const std::string key =
            "k" + std::to_string(rng.nextBounded(150));
        if (rng.nextBool(0.6)) {
            const std::string value(
                1 + rng.nextBounded(200),
                static_cast<char>('a' + rng.nextBounded(26)));
            ASSERT_TRUE(store.put(key, value));
            reference[key] = value;
        } else {
            const auto got = store.get(key);
            const auto it = reference.find(key);
            if (it == reference.end())
                ASSERT_FALSE(got.has_value());
            else
                ASSERT_EQ(*got, it->second);
        }
        ASSERT_LE(region->stats().dirtyPages, 12u);
        if (i % 97 == 0)
            region->epochTick();
    }
}

TEST_F(RuntimeKvFixture, ConcurrentWritersUnderEpochThread)
{
    // Two app threads hammer disjoint halves of the region while the
    // epoch thread re-protects and copies in the background: the
    // SIGSEGV path, the recursive lock, and the budget must all hold.
    runtime::RuntimeConfig cfg = budgetConfig(32, true);
    cfg.epochMicros = 300;
    auto region = runtime::NvRegion::create(makePath("mt"), 4_MiB,
                                            cfg);
    char *base = static_cast<char *>(region->base());
    const std::uint64_t ps = region->pageSize();
    const std::uint64_t half_pages = region->pageCount() / 2;

    std::atomic<bool> failed{false};
    auto writer = [&](unsigned id) {
        Rng rng(id);
        for (int i = 0; i < 4000; ++i) {
            const std::uint64_t p =
                id * half_pages + rng.nextBounded(half_pages);
            base[p * ps + (i % ps)] = static_cast<char>(i + id);
            if (region->stats().dirtyPages > 32)
                failed.store(true);
        }
    };
    std::thread t0(writer, 0);
    std::thread t1(writer, 1);
    t0.join();
    t1.join();
    EXPECT_FALSE(failed.load());
    EXPECT_LE(region->stats().dirtyPages, 32u);

    // Everything written is recoverable.
    region->flushAll();
    EXPECT_EQ(region->stats().dirtyPages, 0u);
}

} // namespace
} // namespace viyojit
