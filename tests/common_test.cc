/**
 * @file
 * Unit tests for the common library: RNG, distributions, histograms,
 * stats, and table formatting.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/checksum.hh"
#include "common/distributions.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace viyojit
{
namespace
{

// ---------------------------------------------------------------------
// Types and literals
// ---------------------------------------------------------------------

TEST(TypesTest, ByteLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(3_GiB, 3ull * 1024 * 1024 * 1024);
}

TEST(TypesTest, TimeLiterals)
{
    EXPECT_EQ(1_us, 1000u);
    EXPECT_EQ(1_ms, 1000000u);
    EXPECT_EQ(2_s, 2000000000u);
}

TEST(TypesTest, TickSecondConversionRoundTrip)
{
    EXPECT_DOUBLE_EQ(ticksToSeconds(1_s), 1.0);
    EXPECT_EQ(secondsToTicks(0.5), 500 * 1000 * 1000u);
    EXPECT_EQ(secondsToTicks(ticksToSeconds(123456789)), 123456789u);
}

// ---------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(RngTest, NextDoubleInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, NextBoundedStaysInBounds)
{
    Rng rng(4);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(17), 17u);
}

TEST(RngTest, NextBoundedCoversAllResidues)
{
    Rng rng(5);
    std::map<std::uint64_t, int> seen;
    for (int i = 0; i < 5000; ++i)
        ++seen[rng.nextBounded(7)];
    EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInRangeInclusive)
{
    Rng rng(6);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 20000; ++i) {
        const auto v = rng.nextInRange(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        saw_lo |= (v == 10);
        saw_hi |= (v == 13);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliRate)
{
    Rng rng(8);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean)
{
    Rng rng(9);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, GaussianMoments)
{
    Rng rng(10);
    double sum = 0;
    double sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.nextGaussian(2.0, 3.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 2.0, 0.05);
    EXPECT_NEAR(var, 9.0, 0.3);
}

TEST(RngTest, SplitProducesIndependentStream)
{
    Rng a(11);
    Rng b = a.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

// ---------------------------------------------------------------------
// Distributions
// ---------------------------------------------------------------------

TEST(UniformDistTest, CoversSpace)
{
    Rng rng(20);
    UniformDistribution dist(10);
    std::map<std::uint64_t, int> seen;
    for (int i = 0; i < 10000; ++i)
        ++seen[dist.next(rng)];
    EXPECT_EQ(seen.size(), 10u);
}

TEST(UniformDistTest, Resize)
{
    Rng rng(21);
    UniformDistribution dist(5);
    dist.setItemCount(100);
    EXPECT_EQ(dist.itemCount(), 100u);
    bool above = false;
    for (int i = 0; i < 1000; ++i)
        above |= dist.next(rng) >= 5;
    EXPECT_TRUE(above);
}

TEST(ZipfianDistTest, ItemZeroIsMostPopular)
{
    Rng rng(22);
    ZipfianDistribution dist(1000);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 100000; ++i)
        ++counts[dist.next(rng)];
    // Item 0 should dominate any mid-range item.
    EXPECT_GT(counts[0], counts[500] * 10);
    EXPECT_GT(counts[0], counts[100] * 5);
}

TEST(ZipfianDistTest, MassConcentration)
{
    Rng rng(23);
    ZipfianDistribution dist(100000);
    std::uint64_t head_hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (dist.next(rng) < 10000)
            ++head_hits;
    }
    // Zipf(0.99): top 10% of items take well over half the draws.
    EXPECT_GT(head_hits, static_cast<std::uint64_t>(0.55 * n));
}

TEST(ZipfianDistTest, StaysInRangeAfterGrowth)
{
    Rng rng(24);
    ZipfianDistribution dist(10);
    dist.setItemCount(1000);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(dist.next(rng), 1000u);
}

TEST(ScrambledZipfianTest, SpreadsHotItems)
{
    Rng rng(25);
    ScrambledZipfianDistribution dist(1000);
    std::vector<int> counts(1000, 0);
    for (int i = 0; i < 200000; ++i)
        ++counts[dist.next(rng)];
    // The hottest item should NOT be item 0 deterministically spread:
    // find the max and check it is hot but scattered (max item's two
    // neighbours are not both hot).
    int max_idx = 0;
    for (int i = 0; i < 1000; ++i) {
        if (counts[i] > counts[max_idx])
            max_idx = i;
    }
    EXPECT_GT(counts[max_idx], 200000 / 1000 * 5);
}

TEST(LatestDistTest, FavorsNewestItems)
{
    Rng rng(26);
    LatestDistribution dist(1000);
    std::uint64_t newest_third = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        if (dist.next(rng) >= 667)
            ++newest_third;
    }
    EXPECT_GT(newest_third, static_cast<std::uint64_t>(0.7 * n));
}

TEST(LatestDistTest, TracksGrowth)
{
    Rng rng(27);
    LatestDistribution dist(10);
    dist.setItemCount(1000);
    bool saw_new = false;
    for (int i = 0; i < 1000; ++i)
        saw_new |= dist.next(rng) >= 990;
    EXPECT_TRUE(saw_new);
}

TEST(HotspotDistTest, RespectsHotFraction)
{
    Rng rng(28);
    HotspotDistribution dist(1000, 0.1, 0.9);
    std::uint64_t hot_hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (dist.next(rng) < 100)
            ++hot_hits;
    }
    EXPECT_NEAR(static_cast<double>(hot_hits) / n, 0.9, 0.02);
}

TEST(FnvHashTest, DistinctInputsRarelyCollide)
{
    std::map<std::uint64_t, int> seen;
    for (std::uint64_t i = 0; i < 10000; ++i)
        ++seen[fnv1aHash64(i)];
    EXPECT_EQ(seen.size(), 10000u);
}

// ---------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------

TEST(LogHistogramTest, EmptyHistogram)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(LogHistogramTest, SingleValue)
{
    LogHistogram h;
    h.record(42);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.minValue(), 42u);
    EXPECT_EQ(h.maxValue(), 42u);
    EXPECT_DOUBLE_EQ(h.mean(), 42.0);
    EXPECT_EQ(h.percentile(50), 42u);
    EXPECT_EQ(h.percentile(99), 42u);
}

TEST(LogHistogramTest, PercentileBoundedRelativeError)
{
    LogHistogram h;
    for (std::uint64_t v = 1; v <= 100000; ++v)
        h.record(v);
    // True p50 is 50000; the log-bucketed estimate must be within one
    // sub-bucket (2^-5 relative).
    const std::uint64_t p50 = h.percentile(50);
    EXPECT_NEAR(static_cast<double>(p50), 50000.0, 50000.0 * 0.05);
    const std::uint64_t p99 = h.percentile(99);
    EXPECT_NEAR(static_cast<double>(p99), 99000.0, 99000.0 * 0.05);
}

TEST(LogHistogramTest, MeanIsExact)
{
    LogHistogram h;
    h.record(10);
    h.record(20);
    h.record(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_EQ(h.sum(), 60u);
}

TEST(LogHistogramTest, RecordWithCount)
{
    LogHistogram h;
    h.record(5, 10);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_EQ(h.sum(), 50u);
}

TEST(LogHistogramTest, BucketDecodeMatchesEncodeAcrossTiers)
{
    // Encoder/decoder round-trip at the direct/log split and across
    // log tiers.  The decoder used to accept "phantom" indices (the
    // direct guard tested the tier, not the index), where the log
    // formula shifts by a negative count; the guard now mirrors the
    // encoder exactly, so every value's reported percentile must sit
    // in [v, v + sub-bucket width).  A far-larger sentinel value
    // keeps the max clamp from masking the decoded upper bound.
    const std::uint64_t probes[] = {
        1,       31,           32,           33,
        63,      64,           100,          1000,
        4095,    4096,         (1ULL << 20) - 1,
        1ULL << 20,            (1ULL << 20) + 1,
        (1ULL << 40) - 1,      1ULL << 40};
    for (const std::uint64_t v : probes) {
        LogHistogram h;
        h.record(v, 10);
        h.record(1ULL << 50);
        const std::uint64_t p50 = h.percentile(50);
        EXPECT_GE(p50, v) << "value " << v;
        if (v < 32) {
            // Direct-indexed range is exact.
            EXPECT_EQ(p50, v) << "value " << v;
        } else {
            // One sub-bucket of slack: width 2^(tier-5) <= v/16.
            EXPECT_LE(p50 - v, v / 16) << "value " << v;
        }
    }
}

TEST(LogHistogramTest, PercentileNeverBelowRecordedMin)
{
    // The timer-floor sanity gate in the concurrency bench depends
    // on this: a p50 below every recorded sample would mean the
    // histogram invents latencies the timer never measured.
    LogHistogram h;
    for (std::uint64_t v = 40; v <= 4000; v += 7)
        h.record(v);
    EXPECT_GE(h.percentile(1), 40u);
    EXPECT_GE(h.percentile(50), 40u);
    EXPECT_LE(h.percentile(99), h.maxValue());
}

TEST(LogHistogramTest, ZeroValue)
{
    LogHistogram h;
    h.record(0);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.percentile(50), 0u);
}

TEST(LogHistogramTest, Merge)
{
    LogHistogram a;
    LogHistogram b;
    a.record(100);
    b.record(200);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.minValue(), 100u);
    EXPECT_EQ(a.maxValue(), 200u);
}

TEST(LogHistogramTest, Reset)
{
    LogHistogram h;
    h.record(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
}

TEST(LogHistogramTest, LargeValues)
{
    LogHistogram h;
    const std::uint64_t big = 1ULL << 55;
    h.record(big);
    EXPECT_GE(h.percentile(50), big / 2);
    EXPECT_EQ(h.maxValue(), big);
}

TEST(LogHistogramTest, PercentileIsMonotone)
{
    LogHistogram h;
    Rng rng(31);
    for (int i = 0; i < 10000; ++i)
        h.record(rng.nextBounded(1000000));
    std::uint64_t prev = 0;
    for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
        const std::uint64_t v = h.percentile(p);
        EXPECT_GE(v, prev);
        prev = v;
    }
}

TEST(LinearHistogramTest, Bucketing)
{
    LinearHistogram h(0, 100, 10);
    h.record(5);
    h.record(15);
    h.record(95);
    h.record(200); // clamps to last bucket
    EXPECT_EQ(h.bucketValue(0), 1u);
    EXPECT_EQ(h.bucketValue(1), 1u);
    EXPECT_EQ(h.bucketValue(9), 2u);
    EXPECT_EQ(h.count(), 4u);
}

TEST(LinearHistogramTest, BucketEdges)
{
    LinearHistogram h(100, 200, 10);
    EXPECT_EQ(h.bucketLo(0), 100u);
    EXPECT_EQ(h.bucketLo(5), 150u);
}

// ---------------------------------------------------------------------
// Stats registry
// ---------------------------------------------------------------------

TEST(StatsTest, CounterBasics)
{
    StatsRegistry reg;
    reg.counter("a.b").increment();
    reg.counter("a.b").increment(4);
    EXPECT_EQ(reg.counterValue("a.b"), 5u);
    EXPECT_EQ(reg.counterValue("missing"), 0u);
}

TEST(StatsTest, GaugeHighWatermark)
{
    StatsRegistry reg;
    auto &g = reg.gauge("g");
    g.set(10);
    g.set(3);
    g.add(2);
    EXPECT_EQ(reg.gaugeValue("g"), 5);
    EXPECT_EQ(g.highWatermark(), 10);
}

TEST(StatsTest, ResetAll)
{
    StatsRegistry reg;
    reg.counter("c").increment(9);
    reg.gauge("g").set(9);
    reg.resetAll();
    EXPECT_EQ(reg.counterValue("c"), 0u);
    EXPECT_EQ(reg.gaugeValue("g"), 0);
}

TEST(StatsTest, DumpContainsNames)
{
    StatsRegistry reg;
    reg.counter("x.y").increment(3);
    std::ostringstream oss;
    reg.dump(oss);
    EXPECT_NE(oss.str().find("x.y 3"), std::string::npos);
}

// ---------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------

TEST(TableTest, FormatHelpers)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmt(static_cast<std::uint64_t>(1234567)),
              "1,234,567");
    EXPECT_EQ(Table::pct(0.123, 1), "12.3%");
}

TEST(TableTest, PrintAlignsColumns)
{
    Table t("demo");
    t.setHeader({"col1", "c2"});
    t.addRow({"a", "bbbb"});
    t.addRow({"cccc", "d"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("demo"), std::string::npos);
    EXPECT_NE(out.find("col1"), std::string::npos);
    EXPECT_NE(out.find("cccc"), std::string::npos);
}

TEST(TableTest, CsvOutput)
{
    Table t;
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

// ---------------------------------------------------------------------
// Property sweep: zipfian skew grows with theta
// ---------------------------------------------------------------------

class ZipfThetaSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfThetaSweep, HeadMassIncreasesWithTheta)
{
    const double theta = GetParam();
    Rng rng(40);
    ZipfianDistribution dist(10000, theta);
    std::uint64_t head = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        if (dist.next(rng) < 100)
            ++head;
    }
    // With any supported theta, the head 1% must be over-represented
    // relative to uniform (which would give 1%).
    EXPECT_GT(static_cast<double>(head) / n, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfThetaSweep,
                         ::testing::Values(0.5, 0.7, 0.9, 0.99));

// ---------------------------------------------------------------------
// CRC32C (the shared durability checksum)
// ---------------------------------------------------------------------

TEST(Crc32cTest, KnownAnswerVectors)
{
    // The canonical Castagnoli check value (RFC 3720 appendix, and
    // every hardware CRC32C implementation).
    EXPECT_EQ(common::crc32c("123456789", 9), 0xE3069283u);
    EXPECT_EQ(common::crc32c("", 0), 0u);
    // 32 zero bytes — the iSCSI test vector.
    const std::array<unsigned char, 32> zeros{};
    EXPECT_EQ(common::crc32c(zeros.data(), zeros.size()),
              0x8A9136AAu);
    std::array<unsigned char, 32> ones;
    ones.fill(0xFF);
    EXPECT_EQ(common::crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, SeedChainsIncrementalComputation)
{
    const std::string data = "decoupled battery and DRAM capacities";
    const std::uint32_t whole =
        common::crc32c(data.data(), data.size());
    for (std::size_t split = 0; split <= data.size(); ++split) {
        const std::uint32_t head =
            common::crc32c(data.data(), split);
        EXPECT_EQ(common::crc32c(data.data() + split,
                                 data.size() - split, head),
                  whole);
    }
}

TEST(Crc32cTest, SingleBitFlipsChangeTheSum)
{
    std::vector<unsigned char> page(4096, 0xA5);
    const std::uint32_t clean =
        common::crc32c(page.data(), page.size());
    for (const std::size_t at : {std::size_t{0}, std::size_t{1},
                                 std::size_t{2048},
                                 std::size_t{4095}}) {
        for (int bit = 0; bit < 8; ++bit) {
            page[at] ^= static_cast<unsigned char>(1 << bit);
            EXPECT_NE(common::crc32c(page.data(), page.size()), clean)
                << "missed flip of bit " << bit << " at byte " << at;
            page[at] ^= static_cast<unsigned char>(1 << bit);
        }
    }
    EXPECT_EQ(common::crc32c(page.data(), page.size()), clean);
}

TEST(Crc32cTest, U64MatchesLittleEndianBytes)
{
    const std::uint64_t value = 0x0123456789ABCDEFULL;
    std::array<unsigned char, 8> bytes;
    for (int i = 0; i < 8; ++i)
        bytes[static_cast<std::size_t>(i)] =
            static_cast<unsigned char>(value >> (8 * i));
    EXPECT_EQ(common::crc32cU64(value),
              common::crc32c(bytes.data(), bytes.size()));
    EXPECT_EQ(common::crc32cU64(value, 0xDEADBEEFu),
              common::crc32c(bytes.data(), bytes.size(),
                             0xDEADBEEFu));
}

} // namespace
} // namespace viyojit
