/**
 * @file
 * Robustness and edge-case tests that cut across modules: the
 * straddling-store guard, device backpressure, budget retuning under
 * in-flight IO, the scaled-Zipf projection, and victim-ordering
 * configuration.
 */

#include <gtest/gtest.h>

#include <deque>
#include <set>

#include "common/distributions.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/controller.hh"
#include "core/manager.hh"

namespace viyojit::core
{
namespace
{

/** Backend with manual completion and a device submit limit. */
class LimitedBackend : public PagingBackend
{
  public:
    LimitedBackend(std::uint64_t pages, unsigned device_limit)
        : protected_(pages, 1), deviceLimit_(device_limit)
    {}

    std::uint64_t pageCount() const override
    {
        return protected_.size();
    }
    std::uint64_t pageSize() const override { return 4096; }
    void protectPage(PageNum p) override { protected_[p] = 1; }
    void unprotectPage(PageNum p) override { protected_[p] = 0; }

    void
    scanAndClearDirty(bool, FunctionRef<void(PageNum, bool)> fn) override
    {
        for (PageNum p = 0; p < protected_.size(); ++p)
            fn(p, false);
    }

    void
    persistPageAsync(PageNum p) override
    {
        pending.push_back(p);
    }

    void persistPageBlocking(PageNum) override { ++blockingWrites; }

    void
    waitForPersist(PageNum p) override
    {
        for (auto it = pending.begin(); it != pending.end(); ++it) {
            if (*it == p) {
                pending.erase(it);
                complete(p);
                return;
            }
        }
    }

    void
    waitForAnyPersist() override
    {
        if (pending.empty())
            return;
        const PageNum p = pending.front();
        pending.pop_front();
        complete(p);
    }

    unsigned outstandingIos() const override
    {
        return static_cast<unsigned>(pending.size());
    }

    bool
    canSubmit() const override
    {
        return pending.size() < deviceLimit_;
    }

    std::vector<std::uint8_t> protected_;
    std::deque<PageNum> pending;
    unsigned deviceLimit_;
    unsigned blockingWrites = 0;

  private:
    void
    complete(PageNum p)
    {
        ASSERT_NE(client_, nullptr);
        client_->onPersistComplete(p);
    }
};

ViyojitConfig
config(std::uint64_t budget)
{
    ViyojitConfig cfg;
    cfg.dirtyBudgetPages = budget;
    cfg.maxOutstandingIos = 16;
    return cfg;
}

TEST(BackpressureTest, PumpRespectsDeviceLimit)
{
    LimitedBackend backend(64, 3);
    ViyojitConfig cfg = config(8);
    DirtyBudgetController controller(backend, cfg);
    for (PageNum p = 0; p < 8; ++p)
        controller.onWriteFault(p);
    controller.onEpochBoundary(); // pump wants up to 16, device caps 3
    EXPECT_LE(backend.outstandingIos(), 3u);
}

TEST(BackpressureTest, CompletionsRefillUnderDeviceLimit)
{
    LimitedBackend backend(64, 2);
    DirtyBudgetController controller(backend, config(8));
    for (PageNum p = 0; p < 8; ++p)
        controller.onWriteFault(p);
    controller.onEpochBoundary();
    const std::uint64_t dirty_before = controller.tracker().count();
    while (backend.outstandingIos() > 0)
        backend.waitForAnyPersist();
    EXPECT_LT(controller.tracker().count(), dirty_before);
    EXPECT_LE(backend.outstandingIos(), 2u);
}

TEST(GuardTest, LastAdmittedPageSurvivesThePump)
{
    // Two pages admitted back-to-back (a straddling store); the pump
    // must not evict the first while the second is being admitted.
    LimitedBackend backend(16, 16);
    ViyojitConfig cfg = config(4);
    DirtyBudgetController controller(backend, cfg);
    // Saturate the budget so the threshold forces evictions.
    for (PageNum p = 0; p < 4; ++p)
        controller.onWriteFault(p);
    controller.onEpochBoundary();
    while (backend.outstandingIos() > 0)
        backend.waitForAnyPersist();

    controller.onWriteFault(10);
    controller.onWriteFault(11); // the second half of the store
    EXPECT_TRUE(controller.tracker().isDirty(10) ||
                !backend.protected_[10]);
    // Page 10 must still be writable: the store would otherwise
    // re-fault on it forever.
    EXPECT_FALSE(backend.protected_[10]);
    EXPECT_FALSE(backend.protected_[11]);
}

TEST(GuardTest, TinyBudgetStillMakesProgress)
{
    // Budget 2 is the minimum for straddling stores; alternating
    // admissions must not deadlock or panic.
    LimitedBackend backend(16, 16);
    DirtyBudgetController controller(backend, config(2));
    for (int round = 0; round < 50; ++round) {
        controller.onWriteFault(round % 5);
        EXPECT_LE(controller.tracker().count(), 2u);
    }
}

TEST(BudgetRetuneTest, ShrinkWithInFlightCopies)
{
    LimitedBackend backend(64, 16);
    DirtyBudgetController controller(backend, config(16));
    for (PageNum p = 0; p < 16; ++p)
        controller.onWriteFault(p);
    controller.onEpochBoundary(); // some copies now in flight
    controller.setDirtyBudget(4);
    EXPECT_LE(controller.tracker().count(), 4u);
    while (backend.outstandingIos() > 0)
        backend.waitForAnyPersist();
    EXPECT_LE(controller.tracker().count(), 4u);
}

TEST(RecencyConfigTest, HistoryOnlyOrderingFallsBackToPageNumber)
{
    DirtyPageTracker tracker(8);
    EpochRecencyTracker recency(8, 64);
    recency.setUseSeqTieBreak(false);
    tracker.markDirty(5);
    tracker.markDirty(2);
    recency.recordUpdate(5); // later seq, but ties on history
    recency.recordUpdate(2);
    recency.advanceEpoch();
    recency.rebuildVictimQueue(tracker);
    // Equal histories: page-number order decides (2 first).
    const PageNum victim =
        recency.pickVictim(tracker, [](PageNum) { return false; });
    EXPECT_EQ(victim, 2u);
}

TEST(RecencyConfigTest, SeqTieBreakOrdersWithinEpoch)
{
    DirtyPageTracker tracker(8);
    EpochRecencyTracker recency(8, 64);
    tracker.markDirty(5);
    tracker.markDirty(2);
    recency.recordUpdate(2); // older update
    recency.recordUpdate(5); // newer update, same epoch
    recency.advanceEpoch();
    recency.rebuildVictimQueue(tracker);
    const PageNum victim =
        recency.pickVictim(tracker, [](PageNum) { return false; });
    EXPECT_EQ(victim, 2u); // least recently updated despite 5 > 2
}

// ---------------------------------------------------------------------
// Scaled Zipf projection
// ---------------------------------------------------------------------

TEST(ScaledZipfTest, StaysInRange)
{
    Rng rng(8);
    ScaledZipfianDistribution dist(1000, 10);
    for (int i = 0; i < 20000; ++i)
        EXPECT_LT(dist.next(rng), 1000u);
}

TEST(ScaledZipfTest, MoreConcentratedThanPlainZipf)
{
    // The projection gives the scaled population the coverage profile
    // of the (n << 10)-item distribution, which is more concentrated
    // than Zipf over n items (the fig-5 effect).
    const std::uint64_t n = 4000;
    const int draws = 200000;
    auto top_decile_mass = [&](IntegerDistribution &dist) {
        Rng rng(9);
        std::vector<std::uint32_t> counts(n, 0);
        for (int i = 0; i < draws; ++i)
            ++counts[dist.next(rng)];
        std::sort(counts.begin(), counts.end(),
                  std::greater<std::uint32_t>());
        std::uint64_t mass = 0;
        for (std::uint64_t i = 0; i < n / 10; ++i)
            mass += counts[i];
        return static_cast<double>(mass) / draws;
    };
    ScrambledZipfianDistribution plain(n);
    ScaledZipfianDistribution scaled(n, 10);
    EXPECT_GT(top_decile_mass(scaled), top_decile_mass(plain) + 0.05);
}

TEST(ScaledZipfTest, GrowsWithInserts)
{
    Rng rng(10);
    ScaledZipfianDistribution dist(100, 10);
    dist.setItemCount(200);
    EXPECT_EQ(dist.itemCount(), 200u);
    bool upper_half = false;
    for (int i = 0; i < 5000; ++i)
        upper_half |= dist.next(rng) >= 100;
    EXPECT_TRUE(upper_half);
}

TEST(ScaledZipfTest, IncrementalZetaMatchesFresh)
{
    // Growing step by step must agree with constructing at the final
    // size (the incremental zeta path vs. the cached path).
    Rng rng_a(11);
    Rng rng_b(11);
    ScaledZipfianDistribution grown(1 << 10, 4);
    for (std::uint64_t n = (1 << 10) + 1; n <= (1 << 10) + 64; ++n)
        grown.setItemCount(n);
    ScaledZipfianDistribution fresh((1 << 10) + 64, 4);
    for (int i = 0; i < 2000; ++i)
        EXPECT_EQ(grown.next(rng_a), fresh.next(rng_b));
}

// ---------------------------------------------------------------------
// Hardware-assist + tie-break interactions through the manager
// ---------------------------------------------------------------------

TEST(ManagerModesTest, AllModeCombinationsStayDurable)
{
    for (bool hw : {false, true}) {
        for (bool continuous : {false, true}) {
            for (bool tie_break : {false, true}) {
                sim::SimContext ctx;
                storage::Ssd ssd(ctx, storage::SsdConfig{});
                ViyojitConfig cfg;
                cfg.dirtyBudgetPages = 8;
                cfg.hardwareAssist = hw;
                cfg.continuousCopyTrigger = continuous;
                cfg.updateTimeTieBreak = tie_break;
                cfg.epochLength = 100_us;
                ViyojitManager mgr(ctx, ssd, cfg,
                                   mmu::MmuCostModel{}, 64);
                const Addr base = mgr.vmmap(48 * defaultPageSize);
                mgr.start();
                Rng rng(hw * 4 + continuous * 2 + tie_break);
                for (int i = 0; i < 600; ++i) {
                    mgr.write(base + rng.nextBounded(48) *
                                         defaultPageSize,
                              16 + rng.nextBounded(64));
                    mgr.processEvents();
                    ASSERT_LE(mgr.dirtyPageCount(), 8u);
                }
                mgr.powerFailureFlush();
                EXPECT_TRUE(mgr.verifyDurability())
                    << "hw=" << hw << " cont=" << continuous
                    << " tie=" << tie_break;
            }
        }
    }
}

} // namespace
} // namespace viyojit::core
