/**
 * @file
 * Unit tests for the battery model: derating chain, fade, capacity
 * listeners, dirty-budget conversion, and the fig-1 scaling model.
 */

#include <gtest/gtest.h>

#include "battery/battery.hh"
#include "battery/scaling.hh"
#include "common/logging.hh"

namespace viyojit::battery
{
namespace
{

BatteryConfig
plainConfig()
{
    BatteryConfig cfg;
    cfg.nominalJoules = 10000.0;
    cfg.depthOfDischarge = 0.5;
    cfg.chemistryDerate = 0.7;
    cfg.fadePerYear = 0.05;
    cfg.fadePerDegreeAbove25 = 0.005;
    return cfg;
}

TEST(BatteryTest, EffectiveAppliesDerateChain)
{
    Battery battery(plainConfig());
    // 10000 * 0.7 * 0.5 = 3500 J fresh.
    EXPECT_DOUBLE_EQ(battery.effectiveJoules(), 3500.0);
}

TEST(BatteryTest, AgeFadesCapacity)
{
    Battery battery(plainConfig());
    battery.setAgeYears(4.0);
    // 20% fade after 4 years.
    EXPECT_DOUBLE_EQ(battery.effectiveJoules(), 3500.0 * 0.8);
}

TEST(BatteryTest, TemperatureFadesCapacity)
{
    Battery battery(plainConfig());
    battery.setAmbientCelsius(45.0);
    EXPECT_DOUBLE_EQ(battery.effectiveJoules(), 3500.0 * 0.9);
}

TEST(BatteryTest, TemperatureBelow25HasNoEffect)
{
    Battery battery(plainConfig());
    battery.setAmbientCelsius(10.0);
    EXPECT_DOUBLE_EQ(battery.effectiveJoules(), 3500.0);
}

TEST(BatteryTest, FailedCellsScaleCapacity)
{
    Battery battery(plainConfig());
    battery.setFailedCellFraction(0.25);
    EXPECT_DOUBLE_EQ(battery.effectiveJoules(), 3500.0 * 0.75);
}

TEST(BatteryTest, CapacityNeverNegative)
{
    Battery battery(plainConfig());
    battery.setAgeYears(100.0);
    EXPECT_GE(battery.effectiveJoules(), 0.0);
}

TEST(BatteryTest, ListenersFireOnChange)
{
    Battery battery(plainConfig());
    double observed = -1.0;
    battery.addCapacityListener(
        [&](double joules) { observed = joules; });
    battery.setAgeYears(2.0);
    EXPECT_DOUBLE_EQ(observed, 3500.0 * 0.9);
}

TEST(BatteryTest, FlushSecondsUsesPowerModel)
{
    Battery battery(plainConfig());
    PowerModel power;
    power.cpuWatts = 100.0;
    power.dramWattsPerGib = 0.0;
    power.ssdWatts = 0.0;
    power.otherWatts = 0.0;
    EXPECT_DOUBLE_EQ(battery.flushSeconds(power), 35.0);
}

TEST(BatteryTest, InvalidConfigRejected)
{
    BatteryConfig cfg = plainConfig();
    cfg.depthOfDischarge = 1.5;
    EXPECT_DEATH({ Battery battery(cfg); }, "depth of discharge");
}

TEST(PowerModelTest, FlushWattsSumsComponents)
{
    PowerModel power;
    power.cpuWatts = 100.0;
    power.dramWattsPerGib = 0.5;
    power.dramGib = 64.0;
    power.ssdWatts = 10.0;
    power.otherWatts = 20.0;
    EXPECT_DOUBLE_EQ(power.flushWatts(), 162.0);
}

// ---------------------------------------------------------------------
// DirtyBudgetCalculator
// ---------------------------------------------------------------------

PowerModel
watts300()
{
    PowerModel power;
    power.cpuWatts = 240.0;
    power.dramWattsPerGib = 0.0;
    power.ssdWatts = 20.0;
    power.otherWatts = 40.0;
    return power; // 300 W total
}

TEST(BudgetCalcTest, BudgetBytesFromJoules)
{
    // 300 W, 4 GB/s raw, safety 0.8 -> 3.2 GB/s conservative.
    DirtyBudgetCalculator calc(watts300(), 4.0e9, 0.8);
    // 3000 J / 300 W = 10 s -> 32 GB.
    EXPECT_EQ(calc.budgetBytes(3000.0),
              static_cast<std::uint64_t>(3.2e10));
}

TEST(BudgetCalcTest, BudgetPages)
{
    DirtyBudgetCalculator calc(watts300(), 4.0e9, 0.8);
    EXPECT_EQ(calc.budgetPages(3000.0, 4096),
              static_cast<std::uint64_t>(3.2e10) / 4096);
}

TEST(BudgetCalcTest, RequiredJoulesRoundTrip)
{
    DirtyBudgetCalculator calc(watts300(), 4.0e9, 0.8);
    const std::uint64_t bytes = 1ULL << 30;
    const double joules = calc.requiredJoules(bytes);
    EXPECT_NEAR(static_cast<double>(calc.budgetBytes(joules)),
                static_cast<double>(bytes), 16.0);
}

TEST(BudgetCalcTest, PaperScaleSanityCheck)
{
    // Paper section 2.2: 4 TB at 4 GB/s and ~300 W needs ~300 KJ.
    DirtyBudgetCalculator calc(watts300(), 4.0e9, 1.0);
    const double joules = calc.requiredJoules(4ull << 40);
    EXPECT_NEAR(joules, 3.3e5, 0.4e5);
}

TEST(BudgetCalcTest, FlushSecondsMatchesBandwidth)
{
    DirtyBudgetCalculator calc(watts300(), 2.0e9, 1.0);
    EXPECT_DOUBLE_EQ(calc.flushSeconds(2ull * 1000 * 1000 * 1000), 1.0);
}

TEST(BudgetCalcTest, MeasuredFlushRateOverridesNameplate)
{
    // A measured (coalesced) flush rate replaces the nameplate
    // bandwidth in the derivation: twice the rate halves the required
    // energy per byte and doubles the budget for a given reserve.
    DirtyBudgetCalculator calc(watts300(), 4.0e9, 0.8);
    const std::uint64_t nameplate = calc.budgetBytes(3000.0);

    calc.setMeasuredFlushBandwidth(8.0e9);
    EXPECT_DOUBLE_EQ(calc.measuredFlushBandwidth(), 8.0e9);
    EXPECT_EQ(calc.budgetBytes(3000.0), 2 * nameplate);
    EXPECT_DOUBLE_EQ(calc.flushSeconds(6'400'000'000ull), 1.0);

    // Clearing the measurement falls back to the nameplate figure.
    calc.setMeasuredFlushBandwidth(0.0);
    EXPECT_EQ(calc.budgetBytes(3000.0), nameplate);
}

TEST(BudgetCalcTest, AchievedCompressionMultipliesRawBudget)
{
    // The channel carries stored bytes; an achieved ratio r retires
    // r raw bytes per channel byte, so the raw-byte budget scales by
    // r and the raw-byte flush time divides by it.  Energy math
    // stays consistent: requiredJoules(budgetBytes(J)) == J.
    DirtyBudgetCalculator calc(watts300(), 4.0e9, 0.8);
    const std::uint64_t raw = calc.budgetBytes(3000.0);

    calc.setAchievedCompression(2.0);
    EXPECT_DOUBLE_EQ(calc.achievedCompression(), 2.0);
    EXPECT_EQ(calc.budgetBytes(3000.0), 2 * raw);
    EXPECT_EQ(calc.budgetPages(3000.0, 4096), 2 * raw / 4096);
    // 3.2 GB/s stored * 2 = 6.4 GB/s raw.
    EXPECT_DOUBLE_EQ(calc.flushSeconds(6'400'000'000ull), 1.0);
    EXPECT_NEAR(calc.requiredJoules(calc.budgetBytes(3000.0)),
                3000.0, 1e-6);

    calc.setAchievedCompression(1.0);
    EXPECT_EQ(calc.budgetBytes(3000.0), raw);
}

// ---------------------------------------------------------------------
// ScalingModel (fig 1)
// ---------------------------------------------------------------------

TEST(ScalingModelTest, EndpointsMatchPaper)
{
    ScalingModel model;
    EXPECT_DOUBLE_EQ(model.dramRelative(1990), 1.0);
    EXPECT_NEAR(model.dramRelative(2015), 50000.0, 1.0);
    EXPECT_NEAR(model.lithiumRelative(2015), 3.3, 0.01);
}

TEST(ScalingModelTest, GapGrowsMonotonically)
{
    ScalingModel model;
    double prev = 0.0;
    for (int year = 1990; year <= 2020; year += 5) {
        const double gap = model.gap(year);
        EXPECT_GT(gap, prev);
        prev = gap;
    }
}

TEST(ScalingModelTest, GapExceedsFourOrdersByProjection)
{
    ScalingModel model;
    EXPECT_GT(model.gap(2015), 1.0e4);
}

TEST(ScalingModelTest, SeriesMarksProjections)
{
    ScalingModel model;
    const auto series = model.series(2020, 5, 2015);
    ASSERT_EQ(series.size(), 7u);
    EXPECT_FALSE(series[0].projected);
    EXPECT_FALSE(series[5].projected); // 2015
    EXPECT_TRUE(series[6].projected);  // 2020
}

} // namespace
} // namespace viyojit::battery
