/**
 * @file
 * MUST NOT compile clean under clang -Wthread-safety-beta: acquires
 * two mutexes against their declared ACQUIRED_AFTER order.  This is
 * rule R1 of DESIGN.md section 8 — the region retune mutex orders
 * before every shard lock (Shard::lock is ACQUIRED_AFTER the owning
 * region's retuneLock_) — reduced to two locks.
 *
 * Lock-order checking ships behind -Wthread-safety-beta; the driver
 * passes it, matching the VIYOJIT_THREAD_SAFETY build flags.
 *
 * negcompile-expect: -Wthread-safety
 */

#include "common/thread_annotations.hh"

namespace
{

struct TwoLocks
{
    viyojit::common::Mutex retune;
    viyojit::common::Mutex shard ACQUIRED_AFTER(retune);
};

} // namespace

int
main()
{
    TwoLocks locks;
    viyojit::common::MutexLock shard_guard(locks.shard);
    viyojit::common::MutexLock retune_guard(locks.retune); // BROKEN
    return 0;
}
