/**
 * @file
 * MUST NOT compile clean under clang -Wthread-safety: calls an
 * EXCLUDES(lock) function while holding the lock.  This is the
 * self-deadlock shape the annotation on SafeModeGovernor::
 * applyBudget(... EXCLUDES(pool_.retuneLock())) guards against
 * (safe_mode.hh), reduced to one class.
 *
 * negcompile-expect: -Wthread-safety
 */

#include <cstdint>

#include "common/thread_annotations.hh"

namespace
{

class Pool
{
  public:
    void
    retune(std::uint64_t quota) EXCLUDES(lock_)
    {
        viyojit::common::MutexLock guard(lock_);
        quota_ = quota;
    }

    void
    drainAndRetune() EXCLUDES(lock_)
    {
        viyojit::common::MutexLock guard(lock_);
        retune(0); // BROKEN: retune() EXCLUDES the held lock_.
    }

  private:
    viyojit::common::Mutex lock_;
    std::uint64_t quota_ GUARDED_BY(lock_) = 0;
};

} // namespace

int
main()
{
    Pool pool;
    pool.drainAndRetune();
    return 0;
}
