/**
 * @file
 * MUST NOT compile clean under clang -Wthread-safety: writes a
 * GUARDED_BY field without holding its mutex.  This is the exact
 * mistake the annotations on NvRegion::ShardBackend's writableWords_
 * / summary_ / ioPending_ members exist to catch (region.cc).
 *
 * negcompile-expect: -Wthread-safety
 */

#include <cstdint>

#include "common/thread_annotations.hh"

namespace
{

struct Counter
{
    viyojit::common::Mutex lock;
    std::uint64_t value GUARDED_BY(lock) = 0;
};

} // namespace

int
main()
{
    Counter counter;
    counter.value = 7; // BROKEN: no lock held.
    return static_cast<int>(counter.value);
}
