#!/usr/bin/env python3
"""Negative-compile suite for the thread-safety annotations.

Each *.cc in this directory except positive_control.cc deliberately
violates a concurrency contract from src/common/thread_annotations.hh.
Under clang with -Wthread-safety -Wthread-safety-beta every broken TU
must produce a thread-safety diagnostic (matched against the TU's
`negcompile-expect:` marker) and the positive control must compile
warning-free — so the suite fails both when an annotation stops
catching its bug AND when a macro breaks good code.

Under gcc the annotations expand to nothing; every TU (broken ones
included) must then simply compile, which pins down that the macros
stay no-ops outside clang and that the TUs do not rot into invalid
C++.  CI runs the suite with whichever compilers exist: the gcc leg
always, the clang leg when a clang++ is on PATH (ci.sh lint).
"""

import argparse
import os
import re
import subprocess
import sys

POSITIVE = "positive_control.cc"

BASE_FLAGS = ["-std=c++20", "-fsyntax-only", "-Wall", "-Wextra"]
CLANG_FLAGS = ["-Wthread-safety", "-Wthread-safety-beta"]
DIAG_RE = re.compile(r"\[-Wthread-safety")


def is_clang(compiler):
    out = subprocess.run([compiler, "--version"], capture_output=True,
                         text=True, check=True)
    return "clang" in out.stdout.lower()


def expected_marker(path):
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            marker = line.partition("negcompile-expect:")[2].strip()
            if marker:
                return marker
    return None


def compile_tu(compiler, flags, src_root, path):
    cmd = [compiler, *flags, "-I", src_root, path]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    return proc.returncode, proc.stderr


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--compiler",
                    default=os.environ.get("CXX", "g++"))
    ap.add_argument("--repo", default=None,
                    help="repository root (default: ../../ from here)")
    args = ap.parse_args()

    here = os.path.dirname(os.path.abspath(__file__))
    repo = args.repo or os.path.dirname(os.path.dirname(here))
    src_root = os.path.join(repo, "src")

    clang = is_clang(args.compiler)
    flags = BASE_FLAGS + (CLANG_FLAGS if clang else [])
    mode = "clang (expect diagnostics)" if clang \
        else "gcc (annotations no-op, expect clean compiles)"
    print(f"negcompile: compiler={args.compiler} mode={mode}")

    cases = sorted(f for f in os.listdir(here) if f.endswith(".cc"))
    if POSITIVE not in cases:
        sys.exit("negcompile: positive control missing")

    failures = []
    for case in cases:
        path = os.path.join(here, case)
        rc, stderr = compile_tu(args.compiler, flags, src_root, path)
        diag = DIAG_RE.search(stderr)
        if rc != 0:
            # Even broken TUs are valid C++ — only the *analysis*
            # complains, and only as warnings.  A hard error means
            # the TU or the harness rotted.
            failures.append((case, "failed to parse:\n" + stderr))
            continue
        if case == POSITIVE or not clang:
            if clang and diag:
                failures.append(
                    (case, "positive control raised a thread-safety "
                           "diagnostic:\n" + stderr))
            continue
        # clang + broken TU: require the expected diagnostic.
        marker = expected_marker(path) or "-Wthread-safety"
        if not diag or marker not in stderr:
            failures.append(
                (case, f"expected a '{marker}' diagnostic, compiler "
                       "stayed silent — the annotation no longer "
                       "catches this bug.\n" + stderr))
            continue
        print(f"  {case}: caught "
              f"({len(DIAG_RE.findall(stderr))} diagnostic(s))")

    if failures:
        print(f"\nnegcompile: {len(failures)} case(s) FAILED:")
        for case, why in failures:
            print(f"\n  {case}: {why}")
        return 1
    print(f"negcompile: OK ({len(cases)} TU(s), "
          f"{'clang' if clang else 'gcc'} leg)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
