/**
 * @file
 * MUST NOT compile clean under clang -Wthread-safety: calls a
 * REQUIRES(lock) function without holding the lock.  Mirrors the
 * PagingBackend seam, where every ShardBackend method REQUIRES the
 * owning shard's mutex (region.cc).
 *
 * negcompile-expect: -Wthread-safety
 */

#include <cstdint>

#include "common/thread_annotations.hh"

namespace
{

class Shard
{
  public:
    void
    persistLocked(std::uint64_t page) REQUIRES(lock_)
    {
        lastPersisted_ = page;
    }

  private:
    viyojit::common::Mutex lock_;
    std::uint64_t lastPersisted_ GUARDED_BY(lock_) = 0;
};

} // namespace

int
main()
{
    Shard shard;
    shard.persistLocked(3); // BROKEN: lock_ not held.
    return 0;
}
