/**
 * @file
 * Positive control for the negative-compile suite: correct locking
 * that must compile WARNING-FREE under clang -Wthread-safety
 * -Wthread-safety-beta and under gcc (where the annotations are
 * no-ops).  If this file ever fails, the suite's harness or the
 * annotation macros are broken — not the checked-in runtime code.
 */

#include <cstdint>

#include "common/thread_annotations.hh"

namespace
{

class Account
{
  public:
    void
    deposit(std::uint64_t amount) EXCLUDES(lock_)
    {
        viyojit::common::MutexLock guard(lock_);
        balance_ += amount;
    }

    std::uint64_t
    balanceLocked() const REQUIRES(lock_)
    {
        return balance_;
    }

    std::uint64_t
    balance() EXCLUDES(lock_)
    {
        viyojit::common::MutexLock guard(lock_);
        return balanceLocked();
    }

  private:
    mutable viyojit::common::Mutex lock_;
    std::uint64_t balance_ GUARDED_BY(lock_) = 0;
};

} // namespace

int
main()
{
    Account account;
    account.deposit(5);
    return account.balance() == 5 ? 0 : 1;
}
