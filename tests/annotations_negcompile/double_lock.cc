/**
 * @file
 * MUST NOT compile clean under clang -Wthread-safety: acquires a
 * mutex that is already held (std::mutex would deadlock at runtime;
 * the analysis rejects it at compile time).
 *
 * negcompile-expect: -Wthread-safety
 */

#include "common/thread_annotations.hh"

int
main()
{
    viyojit::common::Mutex mutex;
    viyojit::common::MutexLock outer(mutex);
    viyojit::common::MutexLock inner(mutex); // BROKEN: re-acquire.
    return 0;
}
