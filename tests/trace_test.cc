/**
 * @file
 * Unit tests for the trace substrate: the analyzer's interval and
 * skew metrics on hand-built traces, the Zipf coverage analysis, and
 * the synthetic generators' class properties.
 */

#include <gtest/gtest.h>

#include <vector>

#include "trace/analyzer.hh"
#include "trace/generators.hh"

namespace viyojit::trace
{
namespace
{

VolumeInfo
vol16M()
{
    return VolumeInfo{"test", 16_MiB};
}

TraceRecord
rec(Tick t, std::uint64_t off, std::uint32_t len, bool write)
{
    return TraceRecord{t, 0, off, len, write};
}

TEST(AnalyzerTest, WorstIntervalPicksHeaviest)
{
    VolumeAnalyzer az(vol16M(), {10_s});
    // Interval 0: 1 MiB written; interval 1: 3 MiB.
    az.observe(rec(1_s, 0, 1_MiB, true));
    az.observe(rec(11_s, 0, 1_MiB, true));
    az.observe(rec(12_s, 1_MiB, 2_MiB, true));
    const auto metrics = az.intervalMetrics();
    ASSERT_EQ(metrics.size(), 1u);
    EXPECT_EQ(metrics[0].worstIntervalBytes, 3_MiB);
    EXPECT_DOUBLE_EQ(metrics[0].worstFractionOfVolume, 3.0 / 16.0);
}

TEST(AnalyzerTest, MultipleIntervalLengths)
{
    VolumeAnalyzer az(vol16M(), {1_s, 10_s});
    az.observe(rec(500_ms, 0, 1_MiB, true));
    az.observe(rec(1500_ms, 0, 1_MiB, true));
    const auto metrics = az.intervalMetrics();
    ASSERT_EQ(metrics.size(), 2u);
    // 1 s intervals see 1 MiB each; the 10 s interval sees both.
    EXPECT_EQ(metrics[0].worstIntervalBytes, 1_MiB);
    EXPECT_EQ(metrics[1].worstIntervalBytes, 2_MiB);
}

TEST(AnalyzerTest, ReadsDoNotCountAsWrites)
{
    VolumeAnalyzer az(vol16M(), {10_s});
    az.observe(rec(1_s, 0, 4_MiB, false));
    const auto metrics = az.intervalMetrics();
    EXPECT_EQ(metrics[0].worstIntervalBytes, 0u);
}

TEST(AnalyzerTest, WorstIntervalClampedToVolume)
{
    VolumeAnalyzer az(vol16M(), {10_s});
    for (int i = 0; i < 40; ++i)
        az.observe(rec(1_s, 0, 1_MiB, true));
    EXPECT_DOUBLE_EQ(az.intervalMetrics()[0].worstFractionOfVolume,
                     1.0);
}

TEST(AnalyzerTest, SkewAllWritesOnePage)
{
    VolumeAnalyzer az(vol16M(), {});
    for (int i = 0; i < 100; ++i)
        az.observe(rec(i, 0, 100, true));
    const SkewMetric skew = az.skewMetrics();
    EXPECT_EQ(skew.writtenPages, 1u);
    EXPECT_EQ(skew.touchedPages, 1u);
    EXPECT_DOUBLE_EQ(skew.coverage99OfTouched, 1.0);
    EXPECT_NEAR(skew.coverage99OfTotal, 1.0 / 4096.0, 1e-6);
}

TEST(AnalyzerTest, SkewUniformWritesNeedProportionalPages)
{
    VolumeAnalyzer az(vol16M(), {});
    // 100 pages, one write each: 90% of writes needs 90 pages.
    for (int i = 0; i < 100; ++i)
        az.observe(rec(i, i * defaultPageSize, 100, true));
    const SkewMetric skew = az.skewMetrics();
    EXPECT_EQ(skew.writtenPages, 100u);
    EXPECT_NEAR(skew.coverage90OfTouched, 0.90, 0.011);
    EXPECT_NEAR(skew.coverage99OfTouched, 0.99, 0.011);
}

TEST(AnalyzerTest, SkewHotPageDominates)
{
    VolumeAnalyzer az(vol16M(), {});
    // Page 0 gets 991 writes; pages 1..9 get one each.
    for (int i = 0; i < 991; ++i)
        az.observe(rec(i, 0, 64, true));
    for (int i = 1; i <= 9; ++i)
        az.observe(rec(i, i * defaultPageSize, 64, true));
    const SkewMetric skew = az.skewMetrics();
    // 99% of 1000 writes = 990 <= 991, so one page suffices.
    EXPECT_NEAR(skew.coverage99OfTouched, 0.1, 0.001);
}

TEST(AnalyzerTest, TouchedIncludesReadOnlyPages)
{
    VolumeAnalyzer az(vol16M(), {});
    az.observe(rec(0, 0, 64, true));
    az.observe(rec(1, 10 * defaultPageSize, 64, false));
    const SkewMetric skew = az.skewMetrics();
    EXPECT_EQ(skew.touchedPages, 2u);
    EXPECT_EQ(skew.writtenPages, 1u);
    // One hot page over two touched pages.
    EXPECT_DOUBLE_EQ(skew.coverage99OfTouched, 0.5);
}

TEST(AnalyzerTest, SpanningWriteTouchesMultiplePages)
{
    VolumeAnalyzer az(vol16M(), {});
    az.observe(rec(0, defaultPageSize - 10, 20, true));
    EXPECT_EQ(az.skewMetrics().writtenPages, 2u);
}

TEST(AnalyzerTest, RecordBeyondVolumeDies)
{
    VolumeAnalyzer az(vol16M(), {});
    EXPECT_DEATH(az.observe(rec(0, 16_MiB - 10, 100, true)),
                 "beyond volume");
}

// ---------------------------------------------------------------------
// Zipf coverage (fig 5)
// ---------------------------------------------------------------------

TEST(ZipfCoverageTest, FullPercentileNeedsAllPages)
{
    EXPECT_DOUBLE_EQ(zipfCoverageFraction(100, 1.0), 1.0);
}

TEST(ZipfCoverageTest, CoverageBelowOneForPartialMass)
{
    const double f = zipfCoverageFraction(10000, 0.90);
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 0.9);
}

TEST(ZipfCoverageTest, FractionFallsAsPopulationGrows)
{
    // The paper's fig-5 claim: bigger NV-DRAM -> smaller hot fraction.
    const double small = zipfCoverageFraction(1 << 12, 0.90);
    const double medium = zipfCoverageFraction(1 << 16, 0.90);
    const double large = zipfCoverageFraction(1 << 20, 0.90);
    EXPECT_GT(small, medium);
    EXPECT_GT(medium, large);
}

TEST(ZipfCoverageTest, HigherPercentileNeedsMorePages)
{
    const double p90 = zipfCoverageFraction(100000, 0.90);
    const double p99 = zipfCoverageFraction(100000, 0.99);
    EXPECT_GT(p99, p90);
}

TEST(ZipfCoverageTest, SeriesMatchesPointQueries)
{
    const std::vector<std::uint64_t> sizes = {1000, 10000};
    const auto series = zipfCoverageSeries(sizes, {0.90, 0.99});
    ASSERT_EQ(series.size(), 2u);
    EXPECT_NEAR(series[0].fractions[0],
                zipfCoverageFraction(1000, 0.90), 1e-9);
    EXPECT_NEAR(series[1].fractions[1],
                zipfCoverageFraction(10000, 0.99), 1e-9);
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

TEST(GeneratorTest, RecordsStayInVolumeAndDuration)
{
    const VolumeParams params = azureBlobParams().volumes[0];
    VolumeTraceGenerator gen(params, 0, 60_s, 1);
    TraceRecord record;
    std::uint64_t count = 0;
    while (gen.next(record)) {
        ++count;
        EXPECT_LE(record.offset + record.length, params.sizeBytes);
        EXPECT_LT(record.timestamp, 60_s);
        EXPECT_GT(record.length, 0u);
        EXPECT_EQ(record.length % 512, 0u);
    }
    EXPECT_GT(count, 1000u);
}

TEST(GeneratorTest, DeterministicForSeed)
{
    const VolumeParams params = azureBlobParams().volumes[0];
    VolumeTraceGenerator a(params, 0, 10_s, 7);
    VolumeTraceGenerator b(params, 0, 10_s, 7);
    TraceRecord ra;
    TraceRecord rb;
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(a.next(ra));
        ASSERT_TRUE(b.next(rb));
        EXPECT_EQ(ra.timestamp, rb.timestamp);
        EXPECT_EQ(ra.offset, rb.offset);
        EXPECT_EQ(ra.isWrite, rb.isWrite);
    }
}

TEST(GeneratorTest, WriteFractionApproximatelyRespected)
{
    VolumeParams params = azureBlobParams().volumes[0];
    params.writeFraction = 0.25;
    VolumeTraceGenerator gen(params, 0, 120_s, 3);
    TraceRecord record;
    std::uint64_t writes = 0;
    std::uint64_t total = 0;
    while (gen.next(record)) {
        ++total;
        writes += record.isWrite;
    }
    EXPECT_NEAR(static_cast<double>(writes) / total, 0.25, 0.02);
}

TEST(GeneratorTest, AllApplicationsHaveExpectedVolumeCounts)
{
    const auto apps = allApplications();
    ASSERT_EQ(apps.size(), 4u);
    EXPECT_EQ(apps[0].volumes.size(), 8u); // Azure A-H
    EXPECT_EQ(apps[1].volumes.size(), 7u); // Cosmos A-G
    EXPECT_EQ(apps[2].volumes.size(), 6u); // Page rank A-F
    EXPECT_EQ(apps[3].volumes.size(), 6u); // Search index A-F
}

TEST(GeneratorTest, SkewedVolumeShowsSkewInAnalysis)
{
    // Cosmos F is the paper's class-3 volume: heavy + highly skewed.
    const AppParams cosmos = cosmosParams();
    const VolumeParams &params = cosmos.volumes[5];
    ASSERT_EQ(params.name, "F");
    VolumeTraceGenerator gen(params, 0, cosmos.duration, 11);
    VolumeAnalyzer az(gen.info(), {});
    TraceRecord record;
    while (gen.next(record))
        az.observe(record);
    const SkewMetric skew = az.skewMetrics();
    // 99% of writes from a small fraction of touched pages.
    EXPECT_LT(skew.coverage99OfTouched, 0.35);
}

TEST(GeneratorTest, UniqueVolumeShowsNoSkew)
{
    // Cosmos E is class 4: heavy writes to mostly unique pages.
    const AppParams cosmos = cosmosParams();
    const VolumeParams &params = cosmos.volumes[4];
    ASSERT_EQ(params.name, "E");
    VolumeTraceGenerator gen(params, 0, cosmos.duration, 12);
    VolumeAnalyzer az(gen.info(), {});
    TraceRecord record;
    while (gen.next(record))
        az.observe(record);
    const SkewMetric skew = az.skewMetrics();
    EXPECT_GT(skew.coverage99OfTouched, 0.5);
}

TEST(GeneratorTest, BurstsRaiseWorstInterval)
{
    VolumeParams params = azureBlobParams().volumes[0];
    params.burstMultiplier = 10.0;
    params.burstDuty = 0.1;
    params.burstPeriod = 60_s;
    VolumeTraceGenerator bursty(params, 0, 600_s, 5);
    VolumeAnalyzer az_bursty(bursty.info(), {10_s});
    TraceRecord record;
    while (bursty.next(record))
        az_bursty.observe(record);

    params.burstMultiplier = 1.0;
    VolumeTraceGenerator steady(params, 0, 600_s, 5);
    VolumeAnalyzer az_steady(steady.info(), {10_s});
    while (steady.next(record))
        az_steady.observe(record);

    EXPECT_GT(az_bursty.intervalMetrics()[0].worstIntervalBytes,
              az_steady.intervalMetrics()[0].worstIntervalBytes);
}

} // namespace
} // namespace viyojit::trace
