/**
 * @file
 * Tests for the section-5.4 hardware-assisted mode: no traps on
 * first writes, budget still enforced exactly, write-through dirty
 * bits keeping recency fresh without TLB flushes, writeback
 * collisions handled, and durability unchanged.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/failure.hh"
#include "core/manager.hh"

namespace viyojit::core
{
namespace
{

struct HwAssistFixture : public ::testing::Test
{
    static constexpr std::uint64_t capacityPages = 128;

    HwAssistFixture()
        : ssd(ctx, storage::SsdConfig{})
    {}

    std::unique_ptr<ViyojitManager>
    makeManager(std::uint64_t budget)
    {
        ViyojitConfig cfg;
        cfg.dirtyBudgetPages = budget;
        cfg.hardwareAssist = true;
        cfg.epochLength = 100_us;
        return std::make_unique<ViyojitManager>(
            ctx, ssd, cfg, mmu::MmuCostModel{}, capacityPages);
    }

    sim::SimContext ctx;
    storage::Ssd ssd;
};

TEST_F(HwAssistFixture, FirstWritesDoNotTrap)
{
    auto mgr = makeManager(16);
    const Addr base = mgr->vmmap(32 * defaultPageSize);
    for (int p = 0; p < 8; ++p)
        mgr->write(base + p * defaultPageSize, 16);
    EXPECT_EQ(ctx.stats().counterValue("mmu.write_faults"), 0u);
    EXPECT_EQ(mgr->dirtyPageCount(), 8u);
}

TEST_F(HwAssistFixture, BudgetStillEnforcedExactly)
{
    auto mgr = makeManager(4);
    const Addr base = mgr->vmmap(64 * defaultPageSize);
    for (int p = 0; p < 48; ++p) {
        mgr->write(base + p * defaultPageSize, 16);
        ASSERT_LE(mgr->dirtyPageCount(), 4u);
    }
    EXPECT_GT(mgr->controller().stats().blockedEvictions, 0u);
}

TEST_F(HwAssistFixture, CleanPagesStayWritable)
{
    auto mgr = makeManager(4);
    const Addr base = mgr->vmmap(16 * defaultPageSize);
    // Fill past the budget so evictions happen.
    for (int p = 0; p < 12; ++p)
        mgr->write(base + p * defaultPageSize, 16);
    const auto faults_before =
        ctx.stats().counterValue("mmu.write_faults");
    // Rewrite an evicted page: under the assist this must NOT trap
    // (the page was unprotected after writeback).
    for (int p = 0; p < 12; ++p)
        mgr->write(base + p * defaultPageSize, 16);
    EXPECT_EQ(ctx.stats().counterValue("mmu.write_faults"),
              faults_before);
}

TEST_F(HwAssistFixture, CheaperThanSoftwareTraps)
{
    // Measure the virtual time of the same write pattern under both
    // modes; the assist must be faster (no per-first-write trap).
    auto run = [](bool hw) {
        sim::SimContext run_ctx;
        storage::Ssd run_ssd(run_ctx, storage::SsdConfig{});
        ViyojitConfig cfg;
        cfg.dirtyBudgetPages = 16;
        cfg.hardwareAssist = hw;
        ViyojitManager mgr(run_ctx, run_ssd, cfg, mmu::MmuCostModel{},
                           128);
        const Addr base = mgr.vmmap(64 * defaultPageSize);
        mgr.start();
        Rng rng(3);
        for (int i = 0; i < 2000; ++i) {
            mgr.write(base + rng.nextBounded(64) * defaultPageSize,
                      32);
            mgr.processEvents();
        }
        return run_ctx.now();
    };
    EXPECT_LT(run(true), run(false));
}

TEST_F(HwAssistFixture, RecencyFreshWithoutTlbFlush)
{
    auto mgr = makeManager(8);
    const Addr base = mgr->vmmap(16 * defaultPageSize);
    mgr->start();

    // Page 0 is written every epoch; page 1 once.  With write-through
    // dirty bits the scans see page 0's repeat writes even though no
    // TLB flush happens, so page 1 is the eviction victim.
    mgr->write(base + defaultPageSize, 16);
    for (int e = 0; e < 20; ++e) {
        mgr->write(base, 16);
        ctx.clock().advance(100_us);
        mgr->processEvents();
    }
    // No full TLB flush ever happened under the assist...
    EXPECT_EQ(mgr->mmu().tlb().flushes(), 0u);
    // ...and recency still ranks the hot page above the cold one.
    const auto &recency = mgr->controller().recency();
    EXPECT_GT(recency.history(0), recency.history(1));
}

TEST_F(HwAssistFixture, WritebackCollisionStillSafe)
{
    auto mgr = makeManager(4);
    const Addr base = mgr->vmmap(32 * defaultPageSize);
    mgr->start();
    Rng rng(9);
    // Hammer a working set larger than the budget; collisions with
    // in-flight writebacks must be absorbed, never lost.
    for (int i = 0; i < 3000; ++i) {
        const PageNum p = rng.nextBounded(12);
        mgr->write(base + p * defaultPageSize, 16);
        mgr->processEvents();
        ASSERT_LE(mgr->dirtyPageCount(), 4u);
    }
    mgr->powerFailureFlush();
    EXPECT_TRUE(mgr->verifyDurability());
}

TEST_F(HwAssistFixture, DurabilityAcrossRandomFailures)
{
    for (int seed = 0; seed < 5; ++seed) {
        sim::SimContext trial_ctx;
        storage::Ssd trial_ssd(trial_ctx, storage::SsdConfig{});
        ViyojitConfig cfg;
        cfg.dirtyBudgetPages = 6;
        cfg.hardwareAssist = true;
        cfg.epochLength = 50_us;
        ViyojitManager mgr(trial_ctx, trial_ssd, cfg,
                           mmu::MmuCostModel{}, 64);
        const Addr base = mgr.vmmap(48 * defaultPageSize);
        mgr.start();
        Rng rng(seed);
        for (int i = 0; i < 30 + seed * 53; ++i) {
            mgr.write(base + rng.nextBounded(48) * defaultPageSize,
                      8 + rng.nextBounded(64));
            mgr.processEvents();
        }
        mgr.powerFailureFlush();
        EXPECT_TRUE(mgr.verifyDurability()) << "seed " << seed;
    }
}

} // namespace
} // namespace viyojit::core
