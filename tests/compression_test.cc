/**
 * @file
 * Codec property suite for the pagezip page compressor: round-trip
 * fidelity across page populations (random, zero, run-heavy, text-
 * like, incompressible), the worst-case output bound, the
 * incompressible bypass, and — most importantly — the failure
 * contract: truncated or corrupted streams must fail cleanly or be
 * caught by the raw-page CRC the durability surfaces layer on top;
 * silent wrong-data acceptance is the one outcome that must never
 * happen (DESIGN.md §11).
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/checksum.hh"
#include "common/pagezip.hh"
#include "common/rng.hh"

using namespace viyojit;
using common::crc32c;
using common::pagezipBound;
using common::pagezipCompress;
using common::pagezipDecompress;

namespace
{

constexpr std::size_t kPage = 4096;

enum class Population
{
    zero,
    runHeavy,
    textLike,
    record,
    random,
};

std::vector<std::uint8_t>
makePage(Population pop, Rng &rng, std::size_t len = kPage)
{
    std::vector<std::uint8_t> page(len);
    switch (pop) {
    case Population::zero:
        break;
    case Population::runHeavy:
        // Alternating runs of a repeated byte and short noise.
        for (std::size_t i = 0; i < len;) {
            const std::size_t run =
                1 + rng.nextBounded(96);
            const auto b =
                static_cast<std::uint8_t>(rng.nextBounded(4));
            for (std::size_t j = 0; j < run && i < len; ++j, ++i)
                page[i] = b;
            const std::size_t noise = rng.nextBounded(5);
            for (std::size_t j = 0; j < noise && i < len; ++j, ++i)
                page[i] =
                    static_cast<std::uint8_t>(rng.next() & 0xFF);
        }
        break;
    case Population::textLike: {
        static const char words[] =
            "the quick brown fox jumps over the lazy dog and then "
            "writes another page of dirty bytes to the backing ssd ";
        for (std::size_t i = 0; i < len; ++i)
            page[i] = static_cast<std::uint8_t>(
                words[(i + rng.nextBounded(4)) %
                      (sizeof(words) - 1)]);
        break;
    }
    case Population::record:
        // KV-store-ish records: a short random key, padded value.
        for (std::size_t i = 0; i < len; ++i) {
            const std::size_t off = i % 100;
            page[i] = off < 20 ? static_cast<std::uint8_t>(
                                     rng.next() & 0xFF)
                               : static_cast<std::uint8_t>(0x20);
        }
        break;
    case Population::random:
        for (auto &b : page)
            b = static_cast<std::uint8_t>(rng.next() & 0xFF);
        break;
    }
    return page;
}

/** Compress, asserting the bound; empty result means bypass. */
std::vector<std::uint8_t>
compressed(const std::vector<std::uint8_t> &page)
{
    std::vector<std::uint8_t> out(pagezipBound(page.size()));
    const std::size_t stored = pagezipCompress(
        page.data(), page.size(), out.data(), out.size());
    EXPECT_LE(stored, pagezipBound(page.size()));
    out.resize(stored);
    return out;
}

} // namespace

TEST(PagezipTest, RoundTripAcrossPopulations)
{
    Rng rng(0xC0DEC);
    for (const Population pop :
         {Population::zero, Population::runHeavy,
          Population::textLike, Population::record}) {
        for (int iter = 0; iter < 16; ++iter) {
            const auto page = makePage(pop, rng);
            const auto enc = compressed(page);
            ASSERT_FALSE(enc.empty())
                << "compressible population bypassed";
            // The bypass bar: accepted encodings beat 1.05x.
            EXPECT_LE(enc.size() * 21, page.size() * 20);
            std::vector<std::uint8_t> dec(page.size(), 0xAA);
            ASSERT_TRUE(pagezipDecompress(enc.data(), enc.size(),
                                          dec.data(), dec.size()));
            EXPECT_EQ(page, dec);
        }
    }
}

TEST(PagezipTest, RoundTripOddSizes)
{
    Rng rng(0x51235);
    for (const std::size_t len :
         {std::size_t{32}, std::size_t{33}, std::size_t{100},
          std::size_t{511}, std::size_t{4095}, std::size_t{4097},
          std::size_t{16384}}) {
        const auto page = makePage(Population::runHeavy, rng, len);
        const auto enc = compressed(page);
        if (enc.empty())
            continue; // tiny inputs may legitimately bypass
        std::vector<std::uint8_t> dec(len);
        ASSERT_TRUE(pagezipDecompress(enc.data(), enc.size(),
                                      dec.data(), dec.size()));
        EXPECT_EQ(page, dec);
    }
}

TEST(PagezipTest, IncompressiblePagesBypass)
{
    Rng rng(0xBAD5EED);
    for (int iter = 0; iter < 8; ++iter) {
        const auto page = makePage(Population::random, rng);
        std::vector<std::uint8_t> out(pagezipBound(kPage));
        EXPECT_EQ(0u, pagezipCompress(page.data(), page.size(),
                                      out.data(), out.size()));
    }
    // Inputs under the minimum size always bypass.
    const auto tiny = makePage(Population::zero, rng, 16);
    std::vector<std::uint8_t> out(pagezipBound(16));
    EXPECT_EQ(0u, pagezipCompress(tiny.data(), tiny.size(),
                                  out.data(), out.size()));
}

TEST(PagezipTest, UndersizedDestinationBypasses)
{
    Rng rng(0x1DE5);
    const auto page = makePage(Population::zero, rng);
    std::vector<std::uint8_t> out(pagezipBound(kPage) - 1);
    EXPECT_EQ(0u, pagezipCompress(page.data(), page.size(),
                                  out.data(), out.size()));
}

TEST(PagezipTest, TruncatedStreamsFailCleanly)
{
    Rng rng(0x7126);
    const auto page = makePage(Population::record, rng);
    const auto enc = compressed(page);
    ASSERT_FALSE(enc.empty());
    std::vector<std::uint8_t> dec(kPage);
    // Every truncation point: never crash, never accept — a prefix
    // either fails to parse or stops short of the raw length.
    for (std::size_t cut = 0; cut < enc.size(); ++cut)
        EXPECT_FALSE(pagezipDecompress(enc.data(), cut, dec.data(),
                                       dec.size()))
            << "accepted a " << cut << "-byte prefix of "
            << enc.size();
}

TEST(PagezipTest, TrailingGarbageRejected)
{
    Rng rng(0x7433);
    const auto page = makePage(Population::textLike, rng);
    auto enc = compressed(page);
    ASSERT_FALSE(enc.empty());
    enc.push_back(0x00);
    std::vector<std::uint8_t> dec(kPage);
    EXPECT_FALSE(pagezipDecompress(enc.data(), enc.size(),
                                   dec.data(), dec.size()));
}

TEST(PagezipTest, WrongRawLengthRejected)
{
    Rng rng(0x9e37);
    const auto page = makePage(Population::runHeavy, rng);
    const auto enc = compressed(page);
    ASSERT_FALSE(enc.empty());
    std::vector<std::uint8_t> small(kPage - 1);
    EXPECT_FALSE(pagezipDecompress(enc.data(), enc.size(),
                                   small.data(), small.size()));
    std::vector<std::uint8_t> big(kPage + 1);
    EXPECT_FALSE(pagezipDecompress(enc.data(), enc.size(),
                                   big.data(), big.size()));
}

/**
 * The verified-durability pipeline: decompress, then CRC the raw
 * output against the commit record.  A corrupted stream must end in
 * decoder failure or a CRC mismatch (both quarantine the page); the
 * only way it may pass the CRC is by reproducing the original bytes
 * exactly, which is not wrong data.
 */
TEST(PagezipTest, CorruptedStreamsNeverAcceptedSilently)
{
    Rng rng(0xF1A9);
    for (const Population pop :
         {Population::zero, Population::runHeavy,
          Population::textLike, Population::record}) {
        const auto page = makePage(pop, rng);
        const auto enc = compressed(page);
        ASSERT_FALSE(enc.empty());
        const std::uint32_t raw_crc =
            crc32c(page.data(), page.size());
        for (int iter = 0; iter < 256; ++iter) {
            auto bad = enc;
            // 1-3 corruptions: bit flips and byte rewrites.
            const int hits = 1 + static_cast<int>(rng.nextBounded(3));
            for (int h = 0; h < hits; ++h) {
                const std::size_t at = rng.nextBounded(bad.size());
                if (rng.next() & 1)
                    bad[at] ^= static_cast<std::uint8_t>(
                        1u << rng.nextBounded(8));
                else
                    bad[at] = static_cast<std::uint8_t>(
                        rng.next() & 0xFF);
            }
            if (bad == enc)
                continue;
            std::vector<std::uint8_t> dec(kPage, 0x55);
            const bool ok = pagezipDecompress(
                bad.data(), bad.size(), dec.data(), dec.size());
            if (!ok)
                continue; // decoder caught it: quarantined
            if (crc32c(dec.data(), dec.size()) != raw_crc)
                continue; // CRC caught it: quarantined
            // CRC passed: the bytes must actually be the original.
            EXPECT_EQ(0, std::memcmp(dec.data(), page.data(), kPage))
                << "silent wrong-data acceptance";
        }
    }
}

TEST(PagezipTest, RandomStreamsNeverCrashDecoder)
{
    Rng rng(0xDECDEC);
    std::vector<std::uint8_t> dec(kPage);
    for (int iter = 0; iter < 512; ++iter) {
        const std::size_t len = 1 + rng.nextBounded(512);
        std::vector<std::uint8_t> junk(len);
        for (auto &b : junk)
            b = static_cast<std::uint8_t>(rng.next() & 0xFF);
        // Must return, in bounds, with either verdict.
        (void)pagezipDecompress(junk.data(), junk.size(), dec.data(),
                                dec.size());
    }
}
