/**
 * @file
 * Unit tests for the paper's core mechanism: dirty tracking, epoch
 * recency, pressure prediction, the dirty-budget controller (against
 * a mock backend), and the simulated manager end to end.
 */

#include <gtest/gtest.h>

#include <deque>
#include <set>
#include <vector>

#include "common/distributions.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/controller.hh"
#include "core/dirty_tracker.hh"
#include "core/failure.hh"
#include "core/manager.hh"
#include "core/pressure.hh"
#include "core/recency.hh"

namespace viyojit::core
{
namespace
{

// ---------------------------------------------------------------------
// DirtyPageTracker
// ---------------------------------------------------------------------

TEST(DirtyTrackerTest, MarkDirtyOnce)
{
    DirtyPageTracker tracker(10);
    EXPECT_TRUE(tracker.markDirty(3));
    EXPECT_FALSE(tracker.markDirty(3));
    EXPECT_EQ(tracker.count(), 1u);
    EXPECT_TRUE(tracker.isDirty(3));
}

TEST(DirtyTrackerTest, MarkCleanRemoves)
{
    DirtyPageTracker tracker(10);
    tracker.markDirty(3);
    EXPECT_TRUE(tracker.markClean(3));
    EXPECT_FALSE(tracker.markClean(3));
    EXPECT_EQ(tracker.count(), 0u);
    EXPECT_FALSE(tracker.isDirty(3));
}

TEST(DirtyTrackerTest, SwapRemoveKeepsSetConsistent)
{
    DirtyPageTracker tracker(10);
    for (PageNum p = 0; p < 5; ++p)
        tracker.markDirty(p);
    tracker.markClean(0); // 4 swaps into slot 0
    std::set<PageNum> dirty;
    tracker.forEachDirty([&](PageNum p) { dirty.insert(p); });
    EXPECT_EQ(dirty, (std::set<PageNum>{1, 2, 3, 4}));
}

TEST(DirtyTrackerTest, HighWatermark)
{
    DirtyPageTracker tracker(10);
    tracker.markDirty(1);
    tracker.markDirty(2);
    tracker.markClean(1);
    tracker.markClean(2);
    EXPECT_EQ(tracker.highWatermark(), 2u);
}

TEST(DirtyTrackerTest, EpochCounter)
{
    DirtyPageTracker tracker(10);
    tracker.markDirty(1);
    tracker.markDirty(2);
    EXPECT_EQ(tracker.newDirtyThisEpoch(), 2u);
    tracker.resetEpochCount();
    EXPECT_EQ(tracker.newDirtyThisEpoch(), 0u);
    tracker.markDirty(3);
    EXPECT_EQ(tracker.newDirtyThisEpoch(), 1u);
}

/** Property test: tracker agrees with a reference std::set. */
TEST(DirtyTrackerTest, MatchesReferenceSetUnderRandomOps)
{
    const std::uint64_t pages = 64;
    DirtyPageTracker tracker(pages);
    std::set<PageNum> reference;
    Rng rng(123);
    for (int i = 0; i < 20000; ++i) {
        const PageNum p = rng.nextBounded(pages);
        if (rng.nextBool(0.5)) {
            EXPECT_EQ(tracker.markDirty(p), reference.insert(p).second);
        } else {
            EXPECT_EQ(tracker.markClean(p), reference.erase(p) == 1);
        }
        EXPECT_EQ(tracker.count(), reference.size());
    }
    std::set<PageNum> dirty;
    tracker.forEachDirty([&](PageNum p) { dirty.insert(p); });
    EXPECT_EQ(dirty, reference);
}

// ---------------------------------------------------------------------
// EpochRecencyTracker
// ---------------------------------------------------------------------

TEST(RecencyTest, HistoryShiftsEachEpoch)
{
    EpochRecencyTracker recency(4, 64);
    recency.recordUpdate(0);
    EXPECT_EQ(recency.history(0), 1ULL << 63);
    recency.advanceEpoch();
    EXPECT_EQ(recency.history(0), 1ULL << 62);
    recency.advanceEpoch();
    EXPECT_EQ(recency.history(0), 1ULL << 61);
}

TEST(RecencyTest, WindowBoundsHistory)
{
    EpochRecencyTracker recency(4, 2);
    recency.recordUpdate(0);
    recency.advanceEpoch();
    recency.advanceEpoch();
    EXPECT_EQ(recency.history(0), 0u);
    EXPECT_TRUE(recency.coldInWindow(0));
}

TEST(RecencyTest, MoreRecentMeansLargerHistory)
{
    EpochRecencyTracker recency(4, 64);
    recency.recordUpdate(0);
    recency.advanceEpoch();
    recency.recordUpdate(1); // page 1 updated more recently
    EXPECT_GT(recency.history(1), recency.history(0));
}

TEST(RecencyTest, VictimIsLeastRecentlyUpdated)
{
    DirtyPageTracker tracker(8);
    EpochRecencyTracker recency(8, 64);
    for (PageNum p = 0; p < 3; ++p)
        tracker.markDirty(p);
    // Page 2 updated now, page 1 one epoch ago, page 0 two epochs ago.
    recency.recordUpdate(0);
    recency.advanceEpoch();
    recency.recordUpdate(1);
    recency.advanceEpoch();
    recency.recordUpdate(2);
    recency.rebuildVictimQueue(tracker);
    const PageNum victim =
        recency.pickVictim(tracker, [](PageNum) { return false; });
    EXPECT_EQ(victim, 0u);
}

TEST(RecencyTest, VictimSkipsExcludedAndClean)
{
    DirtyPageTracker tracker(8);
    EpochRecencyTracker recency(8, 64);
    tracker.markDirty(0);
    tracker.markDirty(1);
    tracker.markDirty(2);
    recency.rebuildVictimQueue(tracker);
    tracker.markClean(0);
    const PageNum victim = recency.pickVictim(
        tracker, [](PageNum p) { return p == 1; });
    EXPECT_EQ(victim, 2u);
}

TEST(RecencyTest, FallbackFindsPagesDirtiedAfterRebuild)
{
    DirtyPageTracker tracker(8);
    EpochRecencyTracker recency(8, 64);
    recency.rebuildVictimQueue(tracker); // empty queue
    tracker.markDirty(5);
    const PageNum victim =
        recency.pickVictim(tracker, [](PageNum) { return false; });
    EXPECT_EQ(victim, 5u);
}

TEST(RecencyTest, NoVictimWhenAllExcluded)
{
    DirtyPageTracker tracker(8);
    EpochRecencyTracker recency(8, 64);
    tracker.markDirty(1);
    recency.rebuildVictimQueue(tracker);
    const PageNum victim =
        recency.pickVictim(tracker, [](PageNum) { return true; });
    EXPECT_EQ(victim, invalidPage);
}

/**
 * The bucketed victim queue must evict in exactly the order of the
 * legacy per-epoch full sort.  Drive two independent universes — one
 * on each path — through the same random mix of faults, re-updates,
 * epoch boundaries, cleans, and boundary victim drains, and demand
 * identical histories and identical pick sequences throughout.
 * (ViyojitConfig::legacyEpochScan documents this test by name.)
 */
TEST(RecencyTest, VictimOrderEquivalence)
{
    constexpr PageNum pages = 256;
    constexpr unsigned window = 16;
    constexpr int ops = 10000;
    Rng rng(0x1c71f5eedULL);

    DirtyPageTracker trackerLegacy(pages);
    DirtyPageTracker trackerFast(pages);
    EpochRecencyTracker legacy(pages, window);
    EpochRecencyTracker fast(pages, window);
    legacy.setLegacyQueue(true);
    legacy.rebuildVictimQueue(trackerLegacy);

    std::uint64_t picks = 0;
    for (int op = 0; op < ops; ++op) {
        const double roll = rng.nextDouble();
        if (roll < 0.70) {
            // Fault / hardware-dirty re-update.
            const PageNum p = rng.nextBounded(pages);
            if (!trackerLegacy.isDirty(p)) {
                trackerLegacy.markDirty(p);
                trackerFast.markDirty(p);
            }
            legacy.recordUpdate(p);
            fast.recordUpdate(p);
        } else if (roll < 0.85) {
            // Proactive-copy completion: clean a random page.
            const PageNum p = rng.nextBounded(pages);
            if (trackerLegacy.isDirty(p)) {
                trackerLegacy.markClean(p);
                trackerFast.markClean(p);
            }
        } else {
            // Epoch boundary, then drain a few victims the way the
            // controller does (pick, protect+copy, mark clean).
            legacy.advanceEpoch();
            fast.advanceEpoch();
            legacy.rebuildVictimQueue(trackerLegacy);
            fast.rebuildVictimQueue(trackerFast);
            for (PageNum p = 0; p < pages; ++p) {
                ASSERT_EQ(legacy.history(p), fast.history(p))
                    << "history diverged for page " << p;
            }
            const int drains = static_cast<int>(rng.nextBounded(4));
            const PageNum excluded = rng.nextBounded(pages);
            for (int d = 0; d < drains; ++d) {
                const auto skip = [excluded](PageNum p) {
                    return p == excluded;
                };
                const PageNum a =
                    legacy.pickVictim(trackerLegacy, skip);
                const PageNum b = fast.pickVictim(trackerFast, skip);
                ASSERT_EQ(a, b) << "eviction order diverged at op "
                                << op << " drain " << d;
                if (a == invalidPage)
                    break;
                trackerLegacy.markClean(a);
                trackerFast.markClean(a);
                ++picks;
            }
        }
    }
    // The run must have actually exercised the queues.
    EXPECT_GT(picks, 100u);
}

/**
 * The extent key is a SECONDARY sort: it may reorder victims only
 * among pages of equal recency standing (same history signature),
 * never across recency buckets.  Drive twin bucketed trackers — one
 * with the extent key, one without — through the same workload and,
 * at full drains, demand position-by-position identical history
 * classes and an identical victim multiset, while the page order
 * itself must differ somewhere (the key actually did something).
 * (EpochRecencyTracker::setExtentShift documents this test by name.)
 */
TEST(RecencyTest, ExtentKeyReordersOnlyWithinBuckets)
{
    constexpr PageNum pages = 256;
    constexpr unsigned window = 8;
    constexpr int ops = 6000;
    Rng rng(0xe71e57ULL);

    DirtyPageTracker trackerPlain(pages);
    DirtyPageTracker trackerExtent(pages);
    EpochRecencyTracker plain(pages, window);
    EpochRecencyTracker extent(pages, window);
    extent.setExtentShift(4); // 16-page extents

    bool reordered = false;
    std::uint64_t drained = 0;
    for (int op = 0; op < ops; ++op) {
        const double roll = rng.nextDouble();
        if (roll < 0.80) {
            const PageNum p = rng.nextBounded(pages);
            if (!trackerPlain.isDirty(p)) {
                trackerPlain.markDirty(p);
                trackerExtent.markDirty(p);
            }
            plain.recordUpdate(p);
            extent.recordUpdate(p);
        } else if (roll < 0.97) {
            plain.advanceEpoch();
            extent.advanceEpoch();
        } else {
            // Full drain: pop every victim from both universes.
            plain.rebuildVictimQueue(trackerPlain);
            extent.rebuildVictimQueue(trackerExtent);
            std::vector<PageNum> seqPlain, seqExtent;
            const auto never = [](PageNum) { return false; };
            for (;;) {
                const PageNum a = plain.pickVictim(trackerPlain, never);
                const PageNum b =
                    extent.pickVictim(trackerExtent, never);
                ASSERT_EQ(a == invalidPage, b == invalidPage)
                    << "drain lengths diverged at op " << op;
                if (a == invalidPage)
                    break;
                // Identical recency class at every position: the
                // extent key only permutes within a class.  The
                // class is the epoch bucket — the history MSB names
                // the page's last-update epoch — not the full
                // history word, whose sub-epoch refinement the
                // locality key deliberately trades away.  (The twins
                // see identical updates, so their per-page histories
                // are identical.)
                const auto bucketOf = [](std::uint64_t h) {
                    return h == 0 ? 0 : 64 - __builtin_clzll(h);
                };
                ASSERT_EQ(bucketOf(plain.history(a)),
                          bucketOf(plain.history(b)))
                    << "extent key crossed a recency bucket at op "
                    << op << ": " << a << " vs " << b;
                seqPlain.push_back(a);
                seqExtent.push_back(b);
                trackerPlain.markClean(a);
                trackerExtent.markClean(b);
                ++drained;
            }
            reordered |= seqPlain != seqExtent;
            std::sort(seqPlain.begin(), seqPlain.end());
            std::sort(seqExtent.begin(), seqExtent.end());
            ASSERT_EQ(seqPlain, seqExtent)
                << "victim multiset diverged at op " << op;
        }
    }
    EXPECT_GT(drained, 200u);
    // The key must have reordered something, or this test proved
    // nothing about its scope.
    EXPECT_TRUE(reordered);
}

// ---------------------------------------------------------------------
// DirtyPagePressure
// ---------------------------------------------------------------------

TEST(PressureTest, EwmaWeights)
{
    DirtyPagePressure pressure(0.75);
    pressure.observe(100);
    EXPECT_DOUBLE_EQ(pressure.predicted(), 75.0);
    pressure.observe(100);
    EXPECT_DOUBLE_EQ(pressure.predicted(), 75.0 * 0.25 + 75.0);
}

TEST(PressureTest, ThresholdIsBudgetMinusPressure)
{
    DirtyPagePressure pressure(0.75);
    pressure.observe(40); // predicted 30
    EXPECT_EQ(pressure.threshold(100), 70u);
}

TEST(PressureTest, ThresholdFloorsAtHalfBudget)
{
    // An over-budget burst prediction must not drive the threshold to
    // zero (that would make every fault drain the whole dirty set);
    // half the budget is the robustness floor.
    DirtyPagePressure pressure(1.0);
    pressure.observe(500);
    EXPECT_EQ(pressure.threshold(100), 50u);
}

TEST(PressureTest, ConvergesToSteadyRate)
{
    DirtyPagePressure pressure(0.75);
    for (int i = 0; i < 50; ++i)
        pressure.observe(20);
    EXPECT_NEAR(pressure.predicted(), 20.0, 0.01);
}

TEST(PressureTest, SloHeadroomClampsThreshold)
{
    // The EWMA reacts one epoch late, so SLO mode reserves a fixed
    // headroom below the prediction-driven threshold.  With zero
    // prediction the clamp is the whole story: threshold drops from
    // the full budget to budget - headroom.
    DirtyPagePressure pressure(0.75);
    EXPECT_EQ(pressure.threshold(100), 100u);
    EXPECT_EQ(pressure.threshold(100, 20), 80u);

    // A prediction already deeper than the headroom wins (the clamp
    // is a floor on slack, not an additive reserve).
    pressure.observe(40); // predicted 30
    EXPECT_EQ(pressure.threshold(100), 70u);
    EXPECT_EQ(pressure.threshold(100, 20), 70u);
    EXPECT_EQ(pressure.threshold(100, 40), 60u);
}

TEST(PressureTest, SloHeadroomCappedAtHalfBudget)
{
    // Headroom beyond half the budget would override the hot-page
    // retention floor; it is capped instead.
    DirtyPagePressure pressure(0.75);
    EXPECT_EQ(pressure.threshold(100, 90), 50u);

    // And the over-budget burst floor still holds with headroom set.
    DirtyPagePressure saturated(1.0);
    saturated.observe(500);
    EXPECT_EQ(saturated.threshold(100, 20), 50u);
}

// ---------------------------------------------------------------------
// Controller against a mock backend
// ---------------------------------------------------------------------

/** Deterministic in-memory backend with manual IO completion. */
class MockBackend : public PagingBackend
{
  public:
    explicit MockBackend(std::uint64_t pages)
        : protected_(pages, 1)
    {}

    std::uint64_t pageCount() const override
    {
        return protected_.size();
    }

    std::uint64_t pageSize() const override { return 4096; }

    void protectPage(PageNum p) override { protected_[p] = 1; }
    void unprotectPage(PageNum p) override { protected_[p] = 0; }

    void
    scanAndClearDirty(bool, FunctionRef<void(PageNum, bool)> fn) override
    {
        for (PageNum p = 0; p < protected_.size(); ++p) {
            const bool dirty = hwDirty.count(p) > 0;
            fn(p, dirty);
        }
        hwDirty.clear();
    }

    void
    persistPageAsync(PageNum p) override
    {
        pending.push_back(p);
        ++persistCount;
    }

    void
    persistPageBlocking(PageNum p) override
    {
        (void)p;
        ++persistCount;
        ++blockingCount;
    }

    void
    waitForPersist(PageNum p) override
    {
        for (auto it = pending.begin(); it != pending.end(); ++it) {
            if (*it == p) {
                pending.erase(it);
                complete(p);
                return;
            }
        }
    }

    void
    waitForAnyPersist() override
    {
        if (pending.empty())
            return;
        const PageNum p = pending.front();
        pending.pop_front();
        complete(p);
    }

    unsigned outstandingIos() const override
    {
        return static_cast<unsigned>(pending.size());
    }

    /** Complete every pending IO. */
    void
    completeAll()
    {
        while (!pending.empty())
            waitForAnyPersist();
    }

    bool isProtected(PageNum p) const { return protected_[p] != 0; }

    std::vector<std::uint8_t> protected_;
    std::set<PageNum> hwDirty;
    std::deque<PageNum> pending;
    unsigned persistCount = 0;
    unsigned blockingCount = 0;

  private:
    void
    complete(PageNum p)
    {
        ASSERT_NE(client_, nullptr);
        client_->onPersistComplete(p);
    }
};

ViyojitConfig
smallConfig(std::uint64_t budget)
{
    ViyojitConfig cfg;
    cfg.dirtyBudgetPages = budget;
    cfg.maxOutstandingIos = 4;
    return cfg;
}

TEST(ControllerTest, FaultAdmitsAndUnprotects)
{
    MockBackend backend(16);
    DirtyBudgetController ctl(backend, smallConfig(4));
    ctl.onWriteFault(3);
    EXPECT_FALSE(backend.isProtected(3));
    EXPECT_TRUE(ctl.tracker().isDirty(3));
    EXPECT_EQ(ctl.stats().writeFaults, 1u);
}

TEST(ControllerTest, BudgetNeverExceeded)
{
    MockBackend backend(16);
    DirtyBudgetController ctl(backend, smallConfig(4));
    for (PageNum p = 0; p < 10; ++p) {
        ctl.onWriteFault(p);
        EXPECT_LE(ctl.tracker().count(), 4u);
    }
    EXPECT_GT(ctl.stats().blockedEvictions, 0u);
}

TEST(ControllerTest, BlockedEvictionProtectsBeforeCopy)
{
    MockBackend backend(16);
    DirtyBudgetController ctl(backend, smallConfig(2));
    ctl.onWriteFault(0);
    ctl.onWriteFault(1);
    ctl.onWriteFault(2); // evicts one of 0/1
    // The evicted page is protected again (clean pages must trap).
    const bool zero_clean = !ctl.tracker().isDirty(0);
    const PageNum evicted = zero_clean ? 0 : 1;
    EXPECT_TRUE(backend.isProtected(evicted));
    EXPECT_EQ(backend.blockingCount, 1u);
}

TEST(ControllerTest, ZeroBudgetRejected)
{
    MockBackend backend(16);
    EXPECT_THROW(
        { DirtyBudgetController ctl(backend, smallConfig(0)); },
        FatalError);
}

TEST(ControllerTest, EvictionPrefersLeastRecentlyUpdated)
{
    MockBackend backend(16);
    DirtyBudgetController ctl(backend, smallConfig(3));
    ctl.onWriteFault(0);
    ctl.onWriteFault(1);
    ctl.onWriteFault(2);
    // Epoch passes; only pages 1 and 2 keep getting written.
    backend.hwDirty = {1, 2};
    ctl.onEpochBoundary();
    backend.completeAll(); // absorb proactive copies
    // Page 0 is the cold one; a new fault must evict 0 first if it is
    // still dirty.
    if (ctl.tracker().isDirty(0)) {
        ctl.onWriteFault(5);
        EXPECT_FALSE(ctl.tracker().isDirty(0));
    }
}

TEST(ControllerTest, EpochPumpsProactiveCopiesTowardThreshold)
{
    MockBackend backend(64);
    ViyojitConfig cfg = smallConfig(16);
    DirtyBudgetController ctl(backend, cfg);
    for (PageNum p = 0; p < 12; ++p)
        ctl.onWriteFault(p);
    // Burst of 12 new pages -> pressure 9 -> threshold 7.
    ctl.onEpochBoundary();
    EXPECT_GT(ctl.stats().proactiveCopies, 0u);
    backend.completeAll();
    EXPECT_LE(ctl.tracker().count(), ctl.currentThreshold() + 4);
}

TEST(ControllerTest, CompletionRefillsPipeline)
{
    MockBackend backend(64);
    ViyojitConfig cfg = smallConfig(8);
    cfg.maxOutstandingIos = 2;
    DirtyBudgetController ctl(backend, cfg);
    for (PageNum p = 0; p < 8; ++p)
        ctl.onWriteFault(p);
    ctl.onEpochBoundary();
    // Only 2 outstanding at a time, but completions refill.
    EXPECT_LE(backend.outstandingIos(), 2u);
    backend.completeAll();
    // All proactive work landed without exceeding the IO cap.
    EXPECT_EQ(backend.outstandingIos(), 0u);
}

TEST(ControllerTest, FaultOnInFlightPageWaits)
{
    MockBackend backend(16);
    ViyojitConfig cfg = smallConfig(4);
    DirtyBudgetController ctl(backend, cfg);
    for (PageNum p = 0; p < 4; ++p)
        ctl.onWriteFault(p);
    ctl.onEpochBoundary(); // starts proactive copies
    ASSERT_GT(backend.outstandingIos(), 0u);
    const PageNum in_flight = backend.pending.front();
    ctl.onWriteFault(in_flight);
    EXPECT_GT(ctl.stats().inFlightWaits, 0u);
    EXPECT_TRUE(ctl.tracker().isDirty(in_flight));
    EXPECT_FALSE(backend.isProtected(in_flight));
}

TEST(ControllerTest, RuntimeStyleRedirtyOfDirtyProtectedPage)
{
    // The runtime backend re-protects dirty pages each epoch; a fault
    // on a dirty page must not double-count it.
    MockBackend backend(16);
    DirtyBudgetController ctl(backend, smallConfig(4));
    ctl.onWriteFault(1);
    backend.protectPage(1); // epoch re-protection
    ctl.onWriteFault(1);
    EXPECT_EQ(ctl.tracker().count(), 1u);
    EXPECT_FALSE(backend.isProtected(1));
}

TEST(ControllerTest, ShrinkBudgetEvictsDown)
{
    MockBackend backend(16);
    DirtyBudgetController ctl(backend, smallConfig(8));
    for (PageNum p = 0; p < 8; ++p)
        ctl.onWriteFault(p);
    ctl.setDirtyBudget(3);
    EXPECT_LE(ctl.tracker().count(), 3u);
    EXPECT_EQ(ctl.dirtyBudget(), 3u);
}

TEST(ControllerTest, GrowBudgetAllowsMoreDirty)
{
    MockBackend backend(16);
    DirtyBudgetController ctl(backend, smallConfig(2));
    ctl.onWriteFault(0);
    ctl.onWriteFault(1);
    ctl.setDirtyBudget(4);
    ctl.onWriteFault(2);
    ctl.onWriteFault(3);
    EXPECT_EQ(ctl.tracker().count(), 4u);
    EXPECT_EQ(ctl.stats().blockedEvictions, 0u);
}

TEST(ControllerTest, FlushAllDirtyEmptiesTracker)
{
    MockBackend backend(32);
    DirtyBudgetController ctl(backend, smallConfig(16));
    for (PageNum p = 0; p < 10; ++p)
        ctl.onWriteFault(p);
    const std::uint64_t flushed = ctl.flushAllDirty();
    EXPECT_EQ(flushed, 10u);
    EXPECT_EQ(ctl.tracker().count(), 0u);
}

TEST(ControllerTest, FlushPageBlockingSinglePage)
{
    MockBackend backend(16);
    DirtyBudgetController ctl(backend, smallConfig(8));
    ctl.onWriteFault(5);
    ctl.flushPageBlocking(5);
    EXPECT_FALSE(ctl.tracker().isDirty(5));
    EXPECT_TRUE(backend.isProtected(5));
    // Clean page: no-op.
    ctl.flushPageBlocking(5);
    EXPECT_EQ(backend.blockingCount, 1u);
}

/** Property sweep: budget invariant holds across budgets and skews. */
class BudgetSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>>
{
};

TEST_P(BudgetSweep, DirtyCountNeverExceedsBudget)
{
    const auto [budget, theta] = GetParam();
    MockBackend backend(256);
    DirtyBudgetController ctl(backend, smallConfig(budget));
    Rng rng(7);
    ZipfianDistribution dist(256, theta);
    for (int i = 0; i < 3000; ++i) {
        const PageNum p = dist.next(rng);
        if (backend.isProtected(p))
            ctl.onWriteFault(p);
        else
            backend.hwDirty.insert(p);
        ASSERT_LE(ctl.tracker().count(), budget);
        if (i % 50 == 0) {
            ctl.onEpochBoundary();
            ASSERT_LE(ctl.tracker().count(), budget);
        }
        if (i % 170 == 0)
            backend.completeAll();
    }
    backend.completeAll();
    EXPECT_LE(ctl.tracker().count(), budget);
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, BudgetSweep,
    ::testing::Combine(::testing::Values(1, 2, 8, 32, 128),
                       ::testing::Values(0.5, 0.99)));

// ---------------------------------------------------------------------
// ViyojitManager over the simulated substrate
// ---------------------------------------------------------------------

struct ManagerFixture : public ::testing::Test
{
    static constexpr std::uint64_t capacityPages = 64;

    ManagerFixture()
        : ssd(ctx, storage::SsdConfig{})
    {}

    std::unique_ptr<ViyojitManager>
    makeManager(std::uint64_t budget, bool enforce = true)
    {
        ViyojitConfig cfg;
        cfg.dirtyBudgetPages = budget;
        cfg.enforceBudget = enforce;
        cfg.epochLength = 100_us;
        return std::make_unique<ViyojitManager>(
            ctx, ssd, cfg, mmu::MmuCostModel{}, capacityPages);
    }

    sim::SimContext ctx;
    storage::Ssd ssd;
};

TEST_F(ManagerFixture, VmmapReturnsPageAlignedRegions)
{
    auto mgr = makeManager(8);
    const Addr a = mgr->vmmap(10000);
    const Addr b = mgr->vmmap(1);
    EXPECT_EQ(a % defaultPageSize, 0u);
    EXPECT_EQ(b, a + 3 * defaultPageSize);
}

TEST_F(ManagerFixture, CapacityExhaustionIsFatal)
{
    auto mgr = makeManager(8);
    EXPECT_THROW(mgr->vmmap(65 * defaultPageSize), FatalError);
}

TEST_F(ManagerFixture, WritesTrackedAndBudgetEnforced)
{
    auto mgr = makeManager(4);
    const Addr base = mgr->vmmap(16 * defaultPageSize);
    for (int p = 0; p < 12; ++p) {
        mgr->write(base + p * defaultPageSize, 8);
        EXPECT_LE(mgr->dirtyPageCount(), 4u);
    }
}

TEST_F(ManagerFixture, MemWriteStoresBytes)
{
    auto mgr = makeManager(8);
    const Addr base = mgr->vmmap(defaultPageSize);
    const char msg[] = "hello nvm";
    mgr->memWrite(base, msg, sizeof(msg));
    char out[sizeof(msg)] = {};
    mgr->memRead(base, out, sizeof(msg));
    EXPECT_STREQ(out, "hello nvm");
}

TEST_F(ManagerFixture, PowerFailureFlushMakesEverythingDurable)
{
    auto mgr = makeManager(4);
    const Addr base = mgr->vmmap(16 * defaultPageSize);
    mgr->start();
    for (int p = 0; p < 16; ++p)
        mgr->write(base + p * defaultPageSize, 64);
    EXPECT_FALSE(mgr->verifyDurability());
    const FlushReport report = mgr->powerFailureFlush();
    EXPECT_LE(report.dirtyPagesAtFailure, 4u);
    EXPECT_TRUE(mgr->verifyDurability());
}

TEST_F(ManagerFixture, BridgedRunsWriteThroughCleanGaps)
{
    ViyojitConfig cfg;
    cfg.dirtyBudgetPages = 8;
    cfg.epochLength = 100_us;
    cfg.coalesceRuns = true;
    cfg.maxRunPages = 16;
    cfg.maxBridgePages = 4;
    auto mgr = std::make_unique<ViyojitManager>(
        ctx, ssd, cfg, mmu::MmuCostModel{}, capacityPages);
    const Addr base = mgr->vmmap(32 * defaultPageSize);
    mgr->start();
    // Dirty every other page up to the budget: the burst drives
    // pressure past the proactive threshold, so epoch boundaries
    // stage victims into the run window on wall power.  The gaps are
    // clean pages whose DRAM content equals the durable copy, so the
    // drain may write through them to merge stretches into one
    // device IO.
    for (PageNum p : {0, 2, 4, 6, 8, 10, 12, 14})
        mgr->write(base + p * defaultPageSize, 8);
    for (int i = 0; i < 20; ++i) {
        ctx.clock().advance(50_us);
        mgr->processEvents();
    }
    const auto &st = mgr->controller().stats();
    EXPECT_GT(st.runSubmits, 0u);
    EXPECT_GT(st.runPagesBridged, 0u);
    EXPECT_GT(st.runPagesCoalesced, st.runPagesBridged);
    // The proactive pump drains only to the threshold; the emergency
    // flush settles the rest — without adding a single bridged page.
    const std::uint64_t bridged = st.runPagesBridged;
    mgr->powerFailureFlush();
    EXPECT_EQ(mgr->controller().stats().runPagesBridged, bridged);
    EXPECT_TRUE(mgr->verifyDurability());
}

TEST_F(ManagerFixture, EmergencyFlushNeverBridges)
{
    ViyojitConfig cfg;
    cfg.dirtyBudgetPages = 8;
    cfg.epochLength = 100_us;
    cfg.coalesceRuns = true;
    cfg.maxRunPages = 16;
    cfg.maxBridgePages = 4;
    auto mgr = std::make_unique<ViyojitManager>(
        ctx, ssd, cfg, mmu::MmuCostModel{}, capacityPages);
    const Addr base = mgr->vmmap(16 * defaultPageSize);
    mgr->start();
    // Same alternating-dirty shape bridging loves — but on battery
    // power every transferred byte drains the flush window the
    // battery was sized for, so the emergency drain must write the
    // four dirty pages alone and leave the clean gaps alone.
    for (PageNum p : {0, 2, 4, 6})
        mgr->write(base + p * defaultPageSize, 8);
    const FlushReport report = mgr->powerFailureFlush();
    EXPECT_EQ(report.dirtyPagesAtFailure, 4u);
    const auto &st = mgr->controller().stats();
    EXPECT_EQ(st.runPagesBridged, 0u);
    EXPECT_EQ(st.runSubmits, 0u);
    EXPECT_EQ(st.runPagesCoalesced, 0u);
    EXPECT_TRUE(mgr->verifyDurability());
}

TEST_F(ManagerFixture, BridgingRespectsGapBound)
{
    ViyojitConfig cfg;
    cfg.dirtyBudgetPages = 8;
    cfg.epochLength = 100_us;
    cfg.coalesceRuns = true;
    cfg.maxRunPages = 16;
    cfg.maxBridgePages = 1;
    auto mgr = std::make_unique<ViyojitManager>(
        ctx, ssd, cfg, mmu::MmuCostModel{}, capacityPages);
    const Addr base = mgr->vmmap(16 * defaultPageSize);
    mgr->start();
    // Pages 0,1 then a 3-page gap then 5,6: the gap exceeds the
    // 1-page bridge bound, so the stretches must flush separately.
    for (PageNum p : {0, 1, 5, 6})
        mgr->write(base + p * defaultPageSize, 8);
    mgr->powerFailureFlush();
    const auto &st = mgr->controller().stats();
    EXPECT_EQ(st.runSubmits, 2u);
    EXPECT_EQ(st.runPagesBridged, 0u);
    EXPECT_EQ(st.runPagesCoalesced, 4u);
    EXPECT_TRUE(mgr->verifyDurability());
}

TEST_F(ManagerFixture, BaselineModeHasNoFaults)
{
    auto mgr = makeManager(1, /*enforce=*/false);
    const Addr base = mgr->vmmap(16 * defaultPageSize);
    for (int p = 0; p < 16; ++p)
        mgr->write(base + p * defaultPageSize, 8);
    EXPECT_EQ(ctx.stats().counterValue("mmu.write_faults"), 0u);
    EXPECT_EQ(mgr->dirtyPageCount(), 16u);
}

TEST_F(ManagerFixture, BaselineFlushPersistsEverything)
{
    auto mgr = makeManager(1, /*enforce=*/false);
    const Addr base = mgr->vmmap(8 * defaultPageSize);
    for (int p = 0; p < 8; ++p)
        mgr->write(base + p * defaultPageSize, 8);
    const FlushReport report = mgr->powerFailureFlush();
    EXPECT_EQ(report.dirtyPagesAtFailure, 8u);
    EXPECT_TRUE(mgr->verifyDurability());
}

TEST_F(ManagerFixture, EpochsRunWhileProcessingEvents)
{
    auto mgr = makeManager(8);
    mgr->vmmap(8 * defaultPageSize);
    mgr->start();
    // Advance in op-sized steps, as a driver does; epochs fire on
    // their 100 us boundaries.  (A single 1 ms jump coalesces missed
    // timers into one, like a real periodic timer.)
    for (int i = 0; i < 20; ++i) {
        ctx.clock().advance(50_us);
        mgr->processEvents();
    }
    EXPECT_GE(mgr->controller().stats().epochs, 9u);
    mgr->stop();
}

TEST_F(ManagerFixture, VmunmapFlushesRegion)
{
    auto mgr = makeManager(8);
    const Addr base = mgr->vmmap(4 * defaultPageSize);
    mgr->write(base, 4 * defaultPageSize);
    mgr->vmunmap(base, 4 * defaultPageSize);
    EXPECT_TRUE(mgr->verifyDurability());
    EXPECT_EQ(mgr->dirtyPageCount(), 0u);
}

TEST_F(ManagerFixture, SetDirtyBudgetRetunes)
{
    auto mgr = makeManager(8);
    const Addr base = mgr->vmmap(16 * defaultPageSize);
    for (int p = 0; p < 8; ++p)
        mgr->write(base + p * defaultPageSize, 8);
    mgr->setDirtyBudget(2);
    EXPECT_LE(mgr->dirtyPageCount(), 2u);
}

TEST_F(ManagerFixture, ViyojitWritesCostMoreThanBaseline)
{
    // The trap overhead must be visible in virtual time.
    auto viyojit = makeManager(8);
    const Addr base = viyojit->vmmap(8 * defaultPageSize);
    const Tick t0 = ctx.now();
    for (int p = 0; p < 8; ++p)
        viyojit->write(base + p * defaultPageSize, 8);
    const Tick viyojit_cost = ctx.now() - t0;

    sim::SimContext ctx2;
    storage::Ssd ssd2(ctx2, storage::SsdConfig{});
    ViyojitConfig cfg;
    cfg.enforceBudget = false;
    ViyojitManager baseline(ctx2, ssd2, cfg, mmu::MmuCostModel{},
                            capacityPages);
    const Addr base2 = baseline.vmmap(8 * defaultPageSize);
    const Tick t1 = ctx2.now();
    for (int p = 0; p < 8; ++p)
        baseline.write(base2 + p * defaultPageSize, 8);
    const Tick baseline_cost = ctx2.now() - t1;

    EXPECT_GT(viyojit_cost, baseline_cost);
}

// ---------------------------------------------------------------------
// PowerFailureInjector
// ---------------------------------------------------------------------

TEST_F(ManagerFixture, InjectorReportsSurvivalWithAmpleBattery)
{
    auto mgr = makeManager(4);
    const Addr base = mgr->vmmap(16 * defaultPageSize);
    for (int p = 0; p < 16; ++p)
        mgr->write(base + p * defaultPageSize, 32);

    battery::BatteryConfig bat_cfg;
    bat_cfg.nominalJoules = 1.0e6;
    battery::Battery battery(bat_cfg);
    PowerFailureInjector injector(*mgr, battery,
                                  battery::PowerModel{});
    const FailureReport report = injector.inject();
    EXPECT_TRUE(report.survived);
    EXPECT_TRUE(report.contentVerified);
    EXPECT_LE(report.dirtyPages, 4u);
}

TEST_F(ManagerFixture, InjectorDetectsUndersizedBattery)
{
    auto mgr = makeManager(32);
    const Addr base = mgr->vmmap(40 * defaultPageSize);
    for (int p = 0; p < 32; ++p)
        mgr->write(base + p * defaultPageSize, 32);

    battery::BatteryConfig bat_cfg;
    bat_cfg.nominalJoules = 0.001; // absurdly small
    battery::Battery battery(bat_cfg);
    PowerFailureInjector injector(*mgr, battery,
                                  battery::PowerModel{});
    const FailureReport report = injector.inject();
    EXPECT_FALSE(report.survived);
    // The data still lands (the sim flushes), but the energy books
    // say a real system would have died: the whole point of sizing
    // the budget from the battery.
    EXPECT_GT(report.joulesNeeded, report.joulesAvailable);
}

/** Property: durability after failure at random points in a run. */
class FailurePointSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(FailurePointSweep, AlwaysDurable)
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, storage::SsdConfig{});
    ViyojitConfig cfg;
    cfg.dirtyBudgetPages = 6;
    cfg.epochLength = 50_us;
    ViyojitManager mgr(ctx, ssd, cfg, mmu::MmuCostModel{}, 64);
    const Addr base = mgr.vmmap(48 * defaultPageSize);
    mgr.start();

    Rng rng(GetParam());
    const int ops_before_failure = 20 + GetParam() * 37;
    for (int i = 0; i < ops_before_failure; ++i) {
        const PageNum p = rng.nextBounded(48);
        mgr.write(base + p * defaultPageSize,
                  8 + rng.nextBounded(100));
    }
    mgr.powerFailureFlush();
    EXPECT_TRUE(mgr.verifyDurability());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FailurePointSweep,
                         ::testing::Range(0, 12));

} // namespace
} // namespace viyojit::core
