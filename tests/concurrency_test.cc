/**
 * @file
 * Concurrency tests for the sharded runtime, written to run under
 * ThreadSanitizer (ci.sh builds them with VIYOJIT_SANITIZE=thread).
 *
 * The stress tests run real writer threads against one NvRegion with
 * the epoch thread advancing and the budget machinery evicting under
 * them; writers touch overlapping pages across shard boundaries, and
 * each thread writes a disjoint byte slot within a page so the only
 * sharing TSan sees is the runtime's own.  The directed tests pin
 * down the quota-migration paths: borrowing from the pool, stealing
 * from sibling shards once the pool is dry, concurrent retunes, and
 * page-straddling stores across a shard boundary.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/budget_pool.hh"
#include "runtime/region.hh"

namespace viyojit::runtime
{
namespace
{

std::string
tempPath(const std::string &tag)
{
    return "/tmp/viyojit_conc_" + tag + "_" +
           std::to_string(::getpid()) + ".img";
}

struct ConcurrencyFixture : public ::testing::Test
{
    void
    TearDown() override
    {
        for (const std::string &path : cleanup)
            ::unlink(path.c_str());
    }

    std::string
    makePath(const std::string &tag)
    {
        const std::string path = tempPath(tag);
        cleanup.push_back(path);
        return path;
    }

    std::vector<std::string> cleanup;
};

/** Sharded config with the epoch thread running. */
RuntimeConfig
shardedConfig(std::uint64_t budget, unsigned shards,
              unsigned copier_threads)
{
    RuntimeConfig cfg;
    cfg.dirtyBudgetPages = budget;
    cfg.shards = shards;
    cfg.copierThreads = copier_threads;
    cfg.epochMicros = 500;
    cfg.startEpochThread = true;
    return cfg;
}

/** Sharded config ticked manually (deterministic directed tests). */
RuntimeConfig
manualSharded(std::uint64_t budget, unsigned shards)
{
    RuntimeConfig cfg = shardedConfig(budget, shards, 0);
    cfg.startEpochThread = false;
    return cfg;
}

TEST_F(ConcurrencyFixture, WritersAcrossShardsRespectBudget)
{
    constexpr unsigned kWriters = 4;
    constexpr std::uint64_t kOpsPerWriter = 12000;
    const RuntimeConfig cfg = shardedConfig(/*budget=*/64,
                                            /*shards=*/4,
                                            /*copier_threads=*/2);
    auto region = NvRegion::create(makePath("stress"), 1_MiB, cfg);
    char *base = static_cast<char *>(region->base());
    const std::uint64_t pages = region->pageCount();
    const std::uint64_t page_size = region->pageSize();

    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> budgetViolations{0};

    // Sampler: coherent whole-region snapshots while writers run.
    std::thread sampler([&]() {
        while (!done.load(std::memory_order_acquire)) {
            const RegionStats s = region->stats();
            if (s.dirtyPages > s.dirtyBudgetPages)
                budgetViolations.fetch_add(1);
            std::this_thread::yield();
        }
    });

    std::vector<std::thread> writers;
    for (unsigned tid = 0; tid < kWriters; ++tid) {
        writers.emplace_back([&, tid]() {
            // Random pages over the whole region: every writer
            // crosses every shard, and all writers share pages
            // (disjoint 8-byte slots keep the app race-free).
            Rng rng(0xc0ffee + tid);
            for (std::uint64_t op = 0; op < kOpsPerWriter; ++op) {
                const std::uint64_t page = rng.nextBounded(pages);
                char *slot =
                    base + page * page_size + tid * 8;
                std::memcpy(slot, &op, sizeof(op));
            }
        });
    }
    for (std::thread &w : writers)
        w.join();
    done.store(true, std::memory_order_release);
    sampler.join();

    EXPECT_EQ(budgetViolations.load(), 0u);

    const RegionStats stats = region->stats();
    EXPECT_EQ(stats.shards, 4u);
    EXPECT_GT(stats.writeFaults, 0u);
    EXPECT_LE(stats.dirtyPages, stats.dirtyBudgetPages);
    EXPECT_EQ(stats.dirtyBudgetPages, 64u);
    // The budget (64) is far below the touched page population
    // (256), so the run must have persisted evicted pages.
    EXPECT_GT(stats.bytesPersisted, 0u);
}

TEST_F(ConcurrencyFixture, OverlappingWritesSurviveFlushAndRecover)
{
    constexpr unsigned kWriters = 4;
    const std::string path = makePath("overlap");
    const RuntimeConfig cfg = shardedConfig(/*budget=*/16,
                                            /*shards=*/4,
                                            /*copier_threads=*/2);
    {
        auto region = NvRegion::create(path, 256_KiB, cfg);
        char *base = static_cast<char *>(region->base());
        const std::uint64_t pages = region->pageCount();
        const std::uint64_t page_size = region->pageSize();

        // Every writer stamps its slot on EVERY page, in a
        // different order, so shard-boundary pages see concurrent
        // faults from several threads.
        std::vector<std::thread> writers;
        for (unsigned tid = 0; tid < kWriters; ++tid) {
            writers.emplace_back([&, tid]() {
                for (std::uint64_t i = 0; i < pages; ++i) {
                    const std::uint64_t page =
                        (i * 17 + tid * 31) % pages;
                    char *slot =
                        base + page * page_size + tid * 8;
                    const std::uint64_t tag =
                        (static_cast<std::uint64_t>(tid) << 56) |
                        page;
                    std::memcpy(slot, &tag, sizeof(tag));
                }
            });
        }
        for (std::thread &w : writers)
            w.join();

        region->flushAll();
        EXPECT_EQ(region->stats().dirtyPages, 0u);
        EXPECT_EQ(region->flushAll(), 0u); // idempotent
    }

    // Recovery sees every slot of every page from the backing file.
    RuntimeConfig recover_cfg = manualSharded(16, 4);
    auto region = NvRegion::recover(path, recover_cfg);
    const char *base = static_cast<const char *>(region->base());
    const std::uint64_t pages = region->pageCount();
    const std::uint64_t page_size = region->pageSize();
    for (std::uint64_t page = 0; page < pages; ++page) {
        for (unsigned tid = 0; tid < kWriters; ++tid) {
            std::uint64_t tag = 0;
            std::memcpy(&tag, base + page * page_size + tid * 8,
                        sizeof(tag));
            EXPECT_EQ(tag, (static_cast<std::uint64_t>(tid) << 56) |
                               page)
                << "page " << page << " slot " << tid;
        }
    }
}

TEST_F(ConcurrencyFixture, HotShardBorrowsQuotaFromPool)
{
    // 4 shards x 64 pages; initial quota is budget/(2*shards) = 8
    // pages per shard, half the budget parked in the pool.  Dirtying
    // 20 pages of shard 0 alone must grow its quota by borrowing.
    auto region = NvRegion::create(makePath("borrow"), 1_MiB,
                                   manualSharded(64, 4));
    char *base = static_cast<char *>(region->base());
    const std::uint64_t page_size = region->pageSize();

    for (std::uint64_t page = 0; page < 20; ++page)
        base[page * page_size] = 'b';

    const RegionStats stats = region->stats();
    EXPECT_EQ(stats.dirtyPages, 20u);
    EXPECT_GT(stats.quotaBorrowedPages, 0u);
    EXPECT_EQ(stats.quotaSteals, 0u);
    EXPECT_LE(stats.dirtyPages, stats.dirtyBudgetPages);
}

TEST_F(ConcurrencyFixture, DryPoolForcesCrossShardSteal)
{
    // Fill all four shards, then shrink the budget to the 2-per-shard
    // floor: the pool is left empty and every shard's quota is tight.
    // New admissions in shard 0 can only proceed by stealing quota
    // from a sibling shard.
    auto region = NvRegion::create(makePath("steal"), 1_MiB,
                                   manualSharded(64, 4));
    char *base = static_cast<char *>(region->base());
    const std::uint64_t page_size = region->pageSize();
    const std::uint64_t pages_per_shard = region->pageCount() / 4;

    for (unsigned shard = 0; shard < 4; ++shard) {
        for (std::uint64_t i = 0; i < 12; ++i)
            base[(shard * pages_per_shard + i) * page_size] = 's';
    }
    EXPECT_EQ(region->stats().dirtyPages, 48u);

    region->setDirtyBudget(8); // floor: 2 pages x 4 shards, pool dry
    EXPECT_LE(region->stats().dirtyPages, 8u);
    EXPECT_EQ(region->stats().dirtyBudgetPages, 8u);

    // Flush: every shard now holds 2 pages of quota with zero dirty
    // pages — pure spare quota, and the pool is still empty.
    region->flushAll();
    EXPECT_EQ(region->stats().dirtyPages, 0u);

    // Shard 0 admits three fresh pages; only two fit its floor
    // quota, so the third must claw a sibling's spare quota through
    // the pool (cheaper than evicting shard 0's own pages).
    for (std::uint64_t i = 20; i < 23; ++i)
        base[i * page_size] = 'S';

    const RegionStats stats = region->stats();
    EXPECT_EQ(stats.dirtyPages, 3u);
    EXPECT_GE(stats.quotaSteals, 1u);
    EXPECT_LE(stats.dirtyPages, 8u);
}

TEST_F(ConcurrencyFixture, StoreStraddlingShardBoundary)
{
    // 64 pages, 4 shards -> shard blocks of 16 pages.  An unaligned
    // u64 write across each block boundary faults two pages owned by
    // DIFFERENT controllers on one instruction; both must admit for
    // the store to complete (each shard's straddling guard protects
    // its half).
    auto region = NvRegion::create(makePath("straddle"), 256_KiB,
                                   manualSharded(8, 4));
    char *base = static_cast<char *>(region->base());
    const std::uint64_t page_size = region->pageSize();
    const std::uint64_t pages_per_shard = region->pageCount() / 4;

    for (unsigned boundary = 1; boundary < 4; ++boundary) {
        const std::uint64_t offset =
            boundary * pages_per_shard * page_size - 4;
        const std::uint64_t value = 0x1122334455667788ULL + boundary;
        std::memcpy(base + offset, &value, sizeof(value));
        std::uint64_t readback = 0;
        std::memcpy(&readback, base + offset, sizeof(readback));
        EXPECT_EQ(readback, value);
    }
    const RegionStats stats = region->stats();
    EXPECT_LE(stats.dirtyPages, stats.dirtyBudgetPages);
}

TEST_F(ConcurrencyFixture, ConcurrentRetunesKeepInvariants)
{
    const RuntimeConfig cfg = shardedConfig(/*budget=*/64,
                                            /*shards=*/4,
                                            /*copier_threads=*/2);
    auto region = NvRegion::create(makePath("retune"), 1_MiB, cfg);
    char *base = static_cast<char *>(region->base());
    const std::uint64_t pages = region->pageCount();
    const std::uint64_t page_size = region->pageSize();

    // Fixed-work writers (a time- or flag-bounded loop can finish
    // with zero scheduled iterations on a loaded single-CPU host):
    // each thread performs a set number of writes, and the main
    // thread keeps retuning until all the work is done.
    constexpr std::uint64_t kOpsPerWriter = 4000;
    std::atomic<std::uint64_t> remaining{2 * kOpsPerWriter};
    std::vector<std::thread> writers;
    for (unsigned tid = 0; tid < 2; ++tid) {
        writers.emplace_back([&, tid]() {
            Rng rng(77 + tid);
            for (std::uint64_t op = 0; op < kOpsPerWriter; ++op) {
                const std::uint64_t page = rng.nextBounded(pages);
                base[page * page_size + tid] =
                    static_cast<char>('a' + tid);
                remaining.fetch_sub(1, std::memory_order_relaxed);
            }
        });
    }

    // Main thread retunes the budget under the writers, governor
    // style, and takes coherent snapshots between retunes.  After a
    // shrink returns, the summed dirty count fits the new total
    // (and can only have been driven further down by the writers'
    // evictions until the next grow).
    std::uint64_t round = 0;
    while (remaining.load(std::memory_order_relaxed) > 0) {
        const std::uint64_t budget = (round++ % 2 == 0) ? 16 : 64;
        region->setDirtyBudget(budget);
        const RegionStats stats = region->stats();
        EXPECT_EQ(stats.dirtyBudgetPages, budget);
        EXPECT_LE(stats.dirtyPages, budget);
        std::this_thread::yield();
    }
    for (std::thread &w : writers)
        w.join();
    EXPECT_GT(round, 0u);

    const RegionStats stats = region->stats();
    EXPECT_LE(stats.dirtyPages, stats.dirtyBudgetPages);
    EXPECT_GT(stats.writeFaults, 0u);
}

TEST_F(ConcurrencyFixture, WatermarkHysteresisDoesNotPingPong)
{
    // A shard whose spare quota sits inside the watermark band
    // [low, high) must not migrate quota at epoch boundaries: the
    // refill trigger (spare < low) and the donation trigger
    // (spare >= high) both restore to mid, so a stable shard needs
    // at least half a band of real demand change before either side
    // fires again.  manualSharded(64, 4) derives low=1 mid=2 high=4
    // from the fair share; 5 dirty pages against the initial quota
    // of 8 parks spare at 3 — mid-band.
    auto region = NvRegion::create(makePath("hysteresis"), 1_MiB,
                                   manualSharded(64, 4));
    char *base = static_cast<char *>(region->base());
    const std::uint64_t page_size = region->pageSize();
    const std::uint64_t pages_per_shard = region->pageCount() / 4;

    for (unsigned shard = 0; shard < 4; ++shard) {
        for (std::uint64_t i = 0; i < 5; ++i)
            base[(shard * pages_per_shard + i) * page_size] = 'h';
    }

    const RegionStats before = region->stats();
    EXPECT_EQ(before.dirtyPages, 20u);

    for (int tick = 0; tick < 10; ++tick)
        region->epochTick();

    // Ten boundaries, zero migrations in either direction.
    const RegionStats after = region->stats();
    EXPECT_EQ(after.dirtyPages, before.dirtyPages);
    EXPECT_EQ(after.watermarkRefills, before.watermarkRefills);
    EXPECT_EQ(after.proactiveDonations, before.proactiveDonations);
    EXPECT_EQ(after.quotaBorrowedPages, before.quotaBorrowedPages);
    EXPECT_EQ(after.quotaReturnedPages, before.quotaReturnedPages);
    EXPECT_EQ(after.quotaSteals, before.quotaSteals);
}

TEST(BudgetPoolFuzz, ConcurrentMigrationsPreserveInvariant)
{
    // Four "shards" fuzz the lock-free borrow/deposit paths with
    // watermark-style migrations while a governor thread retunes the
    // total through all three total-changing paths (grow, confiscate,
    // borrow-then-destroyReclaimed).  Every operation conserves
    // pages, so at each phase barrier the §4.1 accounting must hold:
    // sum(shard quotas) + available() <= totalPages(), with equality
    // once quiesced (no grant in transit).
    core::BudgetPool pool(1024, 512);
    constexpr unsigned kWorkers = 4;
    constexpr std::uint64_t kInitialQuota = 128; // 4 x 128 = the 512
    std::vector<std::uint64_t> local(kWorkers, kInitialQuota);

    for (int phase = 0; phase < 3; ++phase) {
        std::vector<std::thread> threads;
        for (unsigned w = 0; w < kWorkers; ++w) {
            threads.emplace_back([&pool, &local, phase, w]() {
                Rng rng(131 * phase + w);
                for (int op = 0; op < 8000; ++op) {
                    switch (rng.nextBounded(4)) {
                    case 0: // batched refill toward mid
                        local[w] +=
                            pool.tryBorrow(1 + rng.nextBounded(8));
                        break;
                    case 1: // proactive donation of surplus
                        if (local[w] > 16) {
                            const std::uint64_t give = local[w] - 16;
                            local[w] -= give;
                            pool.deposit(give);
                        }
                        break;
                    case 2: // completion trickles one page back
                        if (local[w] > 0) {
                            --local[w];
                            pool.deposit(1);
                        }
                        break;
                    default: // churn: borrow and return immediately
                        pool.deposit(pool.tryBorrow(4));
                        break;
                    }
                }
            });
        }
        threads.emplace_back([&pool, phase]() {
            Rng rng(9000 + phase);
            for (int op = 0; op < 1000; ++op) {
                switch (rng.nextBounded(3)) {
                case 0: // battery recovered
                    pool.grow(8);
                    break;
                case 1: // governor destroys unassigned quota
                    pool.confiscate(8);
                    break;
                default: { // claw-back: quota dies without ever
                           // re-entering available()
                    const std::uint64_t got = pool.tryBorrow(8);
                    if (got > 0)
                        pool.destroyReclaimed(got);
                    break;
                }
                }
            }
        });
        for (std::thread &t : threads)
            t.join();

        std::uint64_t assigned = 0;
        for (std::uint64_t quota : local)
            assigned += quota;
        EXPECT_LE(assigned + pool.available(), pool.totalPages());
        EXPECT_EQ(assigned + pool.available(), pool.totalPages());
    }
}

TEST_F(ConcurrencyFixture, EpochThreadAdvancesUnderLoad)
{
    const RuntimeConfig cfg = shardedConfig(/*budget=*/32,
                                            /*shards=*/2,
                                            /*copier_threads=*/1);
    auto region = NvRegion::create(makePath("epochs"), 512_KiB, cfg);
    char *base = static_cast<char *>(region->base());
    const std::uint64_t pages = region->pageCount();
    const std::uint64_t page_size = region->pageSize();

    Rng rng(11);
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(200);
    while (std::chrono::steady_clock::now() < deadline) {
        const std::uint64_t page = rng.nextBounded(pages);
        base[page * page_size] = 'e';
    }

    const RegionStats stats = region->stats();
    EXPECT_GT(stats.epochs, 0u);
    EXPECT_LE(stats.dirtyPages, stats.dirtyBudgetPages);
}

} // namespace
} // namespace viyojit::runtime
