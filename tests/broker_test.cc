/**
 * @file
 * Tests for the battery-budget broker: allocation invariants,
 * guaranteed minimums, demand-driven reapportioning, machine-level
 * capacity changes, and thrash-driven growth.
 */

#include <gtest/gtest.h>

#include <memory>

#include "bench/harness.hh"
#include "common/logging.hh"
#include "core/broker.hh"

namespace viyojit::core
{
namespace
{

struct BrokerFixture : public ::testing::Test
{
    static constexpr std::uint64_t tenantPages = 2048;

    BrokerFixture()
        : ssd(ctx, storage::SsdConfig{})
    {}

    ViyojitManager &
    makeTenant(std::uint64_t initial_budget)
    {
        ViyojitConfig cfg;
        cfg.dirtyBudgetPages = initial_budget;
        cfg.epochLength = 100_us;
        managers.push_back(std::make_unique<ViyojitManager>(
            ctx, ssd, cfg, mmu::MmuCostModel{}, tenantPages,
            static_cast<std::uint32_t>(managers.size())));
        ViyojitManager &mgr = *managers.back();
        bases.push_back(mgr.vmmap(tenantPages * defaultPageSize));
        mgr.start();
        return mgr;
    }

    void
    dirtyPages(std::size_t tenant, std::uint64_t count)
    {
        for (std::uint64_t p = 0; p < count; ++p) {
            managers[tenant]->write(bases[tenant] +
                                        p * defaultPageSize,
                                    16);
        }
    }

    std::uint64_t
    allocationSum(const BatteryBudgetBroker &broker) const
    {
        std::uint64_t sum = 0;
        for (std::size_t i = 0; i < broker.tenantCount(); ++i)
            sum += broker.allocationOf(i);
        return sum;
    }

    sim::SimContext ctx;
    storage::Ssd ssd;
    std::vector<std::unique_ptr<ViyojitManager>> managers;
    std::vector<Addr> bases;
};

TEST_F(BrokerFixture, AllocationsNeverExceedTotal)
{
    BatteryBudgetBroker broker(512);
    broker.addTenant(makeTenant(256), TenantPolicy{32, 1.0});
    broker.addTenant(makeTenant(256), TenantPolicy{32, 1.0});
    EXPECT_LE(allocationSum(broker), 512u);
    dirtyPages(0, 200);
    dirtyPages(1, 50);
    broker.rebalance();
    EXPECT_LE(allocationSum(broker), 512u);
}

TEST_F(BrokerFixture, SurplusSplitsByWeight)
{
    BatteryBudgetBroker broker(1000);
    broker.addTenant(makeTenant(100), TenantPolicy{10, 3.0});
    broker.addTenant(makeTenant(100), TenantPolicy{10, 1.0});
    broker.rebalance();
    // With no demand, the surplus splits roughly 3:1.
    EXPECT_GT(broker.allocationOf(0),
              2 * broker.allocationOf(1));
    EXPECT_LE(allocationSum(broker), 1000u);
}

TEST_F(BrokerFixture, DemandAttractsBudget)
{
    BatteryBudgetBroker broker(512);
    broker.addTenant(makeTenant(256), TenantPolicy{32, 1.0});
    broker.addTenant(makeTenant(256), TenantPolicy{32, 1.0});
    dirtyPages(0, 200); // tenant 0 is busy, tenant 1 idle
    broker.rebalance();
    EXPECT_GT(broker.allocationOf(0), broker.allocationOf(1));
    EXPECT_GE(broker.allocationOf(1), 32u); // floor held
}

TEST_F(BrokerFixture, ThrashSignalsGrowth)
{
    BatteryBudgetBroker broker(512);
    ViyojitManager &busy = *managers.emplace(
        managers.end(),
        [&]() {
            ViyojitConfig cfg;
            cfg.dirtyBudgetPages = 64;
            return std::make_unique<ViyojitManager>(
                ctx, ssd, cfg, mmu::MmuCostModel{}, tenantPages, 7);
        }())->get();
    bases.push_back(busy.vmmap(tenantPages * defaultPageSize));
    busy.start();
    broker.addTenant(busy, TenantPolicy{16, 1.0});

    // Cycle a working set larger than the allocation: faults pile up.
    for (int round = 0; round < 3; ++round) {
        for (std::uint64_t p = 0; p < 128; ++p)
            busy.write(bases.back() + p * defaultPageSize, 16);
    }
    const std::uint64_t before = broker.allocationOf(0);
    broker.rebalance();
    EXPECT_GT(broker.allocationOf(0), before / 2);
    EXPECT_GE(broker.allocationOf(0), 128u); // enough to stop thrash
}

TEST_F(BrokerFixture, OversubscriptionKeepsMinimums)
{
    BatteryBudgetBroker broker(300);
    broker.addTenant(makeTenant(150), TenantPolicy{100, 1.0});
    broker.addTenant(makeTenant(150), TenantPolicy{100, 1.0});
    dirtyPages(0, 150);
    dirtyPages(1, 150);
    broker.rebalance();
    EXPECT_GE(broker.allocationOf(0), 100u);
    EXPECT_GE(broker.allocationOf(1), 100u);
    EXPECT_LE(allocationSum(broker), 300u);
}

TEST_F(BrokerFixture, SetTotalPagesShrinksEveryone)
{
    BatteryBudgetBroker broker(512);
    broker.addTenant(makeTenant(256), TenantPolicy{32, 1.0});
    broker.addTenant(makeTenant(256), TenantPolicy{32, 1.0});
    dirtyPages(0, 180);
    dirtyPages(1, 180);
    broker.setTotalPages(256); // battery fade at machine level
    EXPECT_LE(allocationSum(broker), 256u);
    // Managers actually evicted down to their new budgets.
    EXPECT_LE(managers[0]->dirtyPageCount(),
              broker.allocationOf(0));
    EXPECT_LE(managers[1]->dirtyPageCount(),
              broker.allocationOf(1));
}

TEST_F(BrokerFixture, RejectsOvercommittedMinimums)
{
    BatteryBudgetBroker broker(100);
    broker.addTenant(makeTenant(50), TenantPolicy{60, 1.0});
    EXPECT_THROW(
        broker.addTenant(makeTenant(50), TenantPolicy{60, 1.0}),
        FatalError);
}

TEST_F(BrokerFixture, RejectsBadPolicies)
{
    BatteryBudgetBroker broker(100);
    EXPECT_THROW(
        broker.addTenant(makeTenant(50), TenantPolicy{0, 1.0}),
        FatalError);
    EXPECT_THROW(
        broker.addTenant(makeTenant(50), TenantPolicy{10, 0.0}),
        FatalError);
}

TEST_F(BrokerFixture, DurabilityHeldUnderRebalancing)
{
    BatteryBudgetBroker broker(256);
    broker.addTenant(makeTenant(128), TenantPolicy{16, 1.0});
    broker.addTenant(makeTenant(128), TenantPolicy{16, 1.0});
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const std::size_t t = rng.nextBounded(2);
        managers[t]->write(bases[t] +
                               rng.nextBounded(tenantPages) *
                                   defaultPageSize,
                           16);
        if (i % 100 == 99)
            broker.rebalance();
    }
    for (auto &mgr : managers) {
        mgr->powerFailureFlush();
        EXPECT_TRUE(mgr->verifyDurability());
    }
}

} // namespace
} // namespace viyojit::core
