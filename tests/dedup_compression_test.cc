/**
 * @file
 * Tests for the section-7 SSD traffic reducers: content-hash
 * de-duplication and transparent compression, plus the manager's
 * content hashing and measured (pagezip) copy-out sizes.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.hh"
#include "core/manager.hh"
#include "storage/ssd.hh"

namespace viyojit
{
namespace
{

storage::SsdConfig
dedupConfig()
{
    storage::SsdConfig cfg;
    cfg.enableDedup = true;
    return cfg;
}

TEST(SsdDedupTest, IdenticalRewriteElided)
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, dedupConfig());
    const storage::StorageKey key{0, 1};
    ssd.writePageSync(key, 42, 4096);
    ctx.events().drain();
    const std::uint64_t bytes_before = ssd.bytesWritten();

    ssd.writePageSync(key, 42, 4096); // identical content
    ctx.events().drain();
    EXPECT_EQ(ssd.bytesWritten(), bytes_before);
    EXPECT_EQ(ssd.dedupHits(), 1u);
}

TEST(SsdDedupTest, ChangedContentStillWritten)
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, dedupConfig());
    const storage::StorageKey key{0, 1};
    ssd.writePageSync(key, 42, 4096);
    ctx.events().drain();
    ssd.writePageSync(key, 43, 4096);
    ctx.events().drain();
    EXPECT_EQ(ssd.dedupHits(), 0u);
    EXPECT_EQ(ssd.durableHash(key), 43u);
    EXPECT_EQ(ssd.bytesWritten(), 8192u);
}

TEST(SsdDedupTest, DedupCompletionStillFiresCallback)
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, dedupConfig());
    const storage::StorageKey key{0, 1};
    ssd.writePageSync(key, 7, 4096);
    ctx.events().drain();
    bool fired = false;
    ssd.writePage(key, 7, 4096, [&]() { fired = true; });
    ctx.events().drain();
    EXPECT_TRUE(fired);
    EXPECT_EQ(ssd.outstanding(), 0u);
}

TEST(SsdCompressionTest, CompressedBytesReduceTraffic)
{
    sim::SimContext ctx;
    storage::SsdConfig cfg;
    cfg.enableCompression = true;
    storage::Ssd ssd(ctx, cfg);
    ssd.writePageSync({0, 1}, 1, 4096, 512);
    ctx.events().drain();
    EXPECT_EQ(ssd.bytesWritten(), 512u);
    EXPECT_EQ(ssd.logicalBytesWritten(), 4096u);
}

TEST(SsdCompressionTest, IgnoredWhenDisabled)
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, storage::SsdConfig{});
    ssd.writePageSync({0, 1}, 1, 4096, 512);
    ctx.events().drain();
    EXPECT_EQ(ssd.bytesWritten(), 4096u);
}

TEST(SsdCompressionTest, CompressedTransferIsFaster)
{
    sim::SimContext ctx;
    storage::SsdConfig cfg;
    cfg.enableCompression = true;
    cfg.perIoLatency = 0;
    cfg.maxIops = 1e9;
    storage::Ssd ssd(ctx, cfg);
    const Tick small = ssd.writePageSync({0, 1}, 1, 1_MiB, 64_KiB);
    ctx.events().drain();
    sim::SimContext ctx2;
    storage::Ssd plain(ctx2, storage::SsdConfig{});
    const Tick big = plain.writePageSync({0, 1}, 1, 1_MiB);
    EXPECT_LT(small, big);
}

// ---------------------------------------------------------------------
// Manager content hashing and estimation
// ---------------------------------------------------------------------

struct HashFixture : public ::testing::Test
{
    HashFixture()
        : ssd(ctx, storage::SsdConfig{}),
          manager(ctx, ssd, makeConfig(), mmu::MmuCostModel{}, 16)
    {
        base = manager.vmmap(8 * defaultPageSize);
    }

    static core::ViyojitConfig
    makeConfig()
    {
        core::ViyojitConfig cfg;
        cfg.dirtyBudgetPages = 8;
        return cfg;
    }

    sim::SimContext ctx;
    storage::Ssd ssd;
    core::ViyojitManager manager;
    Addr base = 0;
};

TEST_F(HashFixture, ContentHashChangesWithContent)
{
    const std::uint64_t before = manager.pageContentHash(0);
    manager.memWrite(base, "x", 1);
    EXPECT_NE(manager.pageContentHash(0), before);
}

TEST_F(HashFixture, IdenticalPagesHashEqual)
{
    manager.memWrite(base, "same", 4);
    manager.memWrite(base + defaultPageSize, "same", 4);
    EXPECT_EQ(manager.pageContentHash(0), manager.pageContentHash(1));
}

TEST_F(HashFixture, MeasurementOffWithoutSsdCompression)
{
    // HashFixture's SSD has compression disabled: every page stores
    // raw (0) no matter how compressible.
    EXPECT_EQ(manager.measuredStoredSize(0), 0u);
}

/** Same manager over a compression-enabled SSD. */
struct ZipFixture : public ::testing::Test
{
    static storage::SsdConfig
    zipConfig()
    {
        storage::SsdConfig cfg;
        cfg.enableCompression = true;
        return cfg;
    }

    ZipFixture()
        : ssd(ctx, zipConfig()),
          manager(ctx, ssd, HashFixture::makeConfig(),
                  mmu::MmuCostModel{}, 16)
    {
        base = manager.vmmap(8 * defaultPageSize);
    }

    sim::SimContext ctx;
    storage::Ssd ssd;
    core::ViyojitManager manager;
    Addr base = 0;
};

TEST_F(ZipFixture, ZeroPageCompressesHard)
{
    const std::uint64_t stored = manager.measuredStoredSize(0);
    ASSERT_GT(stored, 0u);
    EXPECT_LT(stored, defaultPageSize / 4);
}

TEST_F(ZipFixture, RandomPageBypassesToRaw)
{
    Rng rng(11);
    std::vector<char> noise(defaultPageSize);
    for (char &c : noise)
        c = static_cast<char>(rng.nextBounded(256));
    manager.memWrite(base, noise.data(), noise.size());
    EXPECT_EQ(manager.measuredStoredSize(0), 0u);
}

TEST_F(ZipFixture, MeasuredRatioFeedsTracker)
{
    manager.memWrite(base, "compress me", 11);
    (void)manager.measuredStoredSize(0);
    const auto &tracker = manager.controller().tracker();
    EXPECT_EQ(tracker.compressionSamples(), 1u);
    EXPECT_GT(tracker.ewmaRatio(), 2.0);
    EXPECT_NE(tracker.compressibility(0), 0);
}

TEST_F(ZipFixture, CompressedFlushCommitsStoredLength)
{
    manager.memWrite(base, "abcabcabc", 9);
    manager.powerFailureFlush();
    ASSERT_TRUE(manager.verifyDurability());
    const auto &meta = manager.sidecarEntry(0);
    ASSERT_TRUE(meta.valid);
    EXPECT_GT(meta.storedLength, 0u);
    EXPECT_LT(meta.storedLength, defaultPageSize);
    // The device transferred the compressed size, not the raw page.
    EXPECT_LT(ssd.bytesWritten(), ssd.logicalBytesWritten());
}

TEST_F(HashFixture, DurabilityIsContentBased)
{
    manager.memWrite(base, "abc", 3);
    manager.powerFailureFlush();
    ASSERT_TRUE(manager.verifyDurability());
    // Overwrite with identical content: still durable by content.
    manager.memWrite(base, "abc", 3);
    EXPECT_TRUE(manager.verifyDurability());
    // Different content: no longer durable until flushed.
    manager.memWrite(base, "xyz", 3);
    EXPECT_FALSE(manager.verifyDurability());
    manager.powerFailureFlush();
    EXPECT_TRUE(manager.verifyDurability());
}

} // namespace
} // namespace viyojit
