/**
 * @file
 * End-to-end integration tests over the full evaluation stack (SSD +
 * MMU + manager + heap + store + YCSB driver), asserting the paper's
 * qualitative claims as invariants:
 *
 *  - durability holds at the end of every run, at every budget;
 *  - Viyojit never beats the full-battery baseline, and converges to
 *    it as the budget approaches the heap size;
 *  - write-heavy workloads pay more than read-heavy ones at small
 *    budgets;
 *  - tail latency stays above the baseline even at large budgets;
 *  - stale dirty bits (the section 6.3 ablation) hurt at low budgets;
 *  - bigger heaps shrink the overhead at equal battery fractions.
 */

#include <gtest/gtest.h>

#include "bench/harness.hh"

namespace viyojit::bench
{
namespace
{

ExperimentConfig
quickConfig(char workload, double budget_gb)
{
    ExperimentConfig cfg;
    cfg.workload = workload;
    cfg.budgetPaperGb = budget_gb;
    cfg.operationCount = 20000;
    return cfg;
}

TEST(IntegrationTest, BaselineProducesSaneThroughput)
{
    const ExperimentResult result = runExperiment(quickConfig('A', 0));
    // ~45 K-ops/s with the default 22 us op cost.
    EXPECT_GT(result.run.throughputOpsPerSec, 20000.0);
    EXPECT_LT(result.run.throughputOpsPerSec, 80000.0);
    EXPECT_TRUE(result.durable);
}

TEST(IntegrationTest, ViyojitNeverBeatsBaseline)
{
    const ExperimentResult baseline =
        runExperiment(quickConfig('A', 0));
    for (double gb : {2.0, 8.0, 18.0}) {
        const ExperimentResult result =
            runExperiment(quickConfig('A', gb));
        EXPECT_LE(result.run.throughputOpsPerSec,
                  baseline.run.throughputOpsPerSec * 1.005)
            << "budget " << gb;
    }
}

TEST(IntegrationTest, OverheadShrinksWithBudget)
{
    const ExperimentResult baseline =
        runExperiment(quickConfig('A', 0));
    const double small = throughputOverhead(
        runExperiment(quickConfig('A', 2.0)), baseline);
    const double large = throughputOverhead(
        runExperiment(quickConfig('A', 18.0)), baseline);
    EXPECT_GT(small, large);
    // Near-converged once the budget exceeds the heap.
    EXPECT_LT(large, 0.08);
}

TEST(IntegrationTest, WriteHeavyPaysMoreThanReadHeavy)
{
    const double overhead_a = throughputOverhead(
        runExperiment(quickConfig('A', 2.0)),
        runExperiment(quickConfig('A', 0)));
    const double overhead_c = throughputOverhead(
        runExperiment(quickConfig('C', 2.0)),
        runExperiment(quickConfig('C', 0)));
    EXPECT_GT(overhead_a, overhead_c * 1.5);
    // Paper band sanity: A in the teens-to-thirties, C single digits.
    EXPECT_GT(overhead_a, 0.10);
    EXPECT_LT(overhead_c, 0.12);
}

TEST(IntegrationTest, TailLatencyAlwaysAboveBaseline)
{
    const ExperimentResult baseline =
        runExperiment(quickConfig('A', 0));
    // Even with a budget beyond the heap size, traps still happen.
    const ExperimentResult result =
        runExperiment(quickConfig('A', 18.0));
    EXPECT_GT(result.run.updateLatency.percentile(99),
              baseline.run.updateLatency.percentile(99));
}

TEST(IntegrationTest, StaleDirtyBitsHurtAtLowBudget)
{
    // The section-6.3 collapse needs the paper's history-only victim
    // sort; this library's fault-path update-time stamps otherwise
    // heal the staleness (see abl_stale_dirty_bits).
    ExperimentConfig precise = quickConfig('A', 6.0);
    ExperimentConfig stale = precise;
    stale.flushTlbOnScan = false;
    stale.updateTimeTieBreak = false;
    const ExperimentResult with_flush = runExperiment(precise);
    const ExperimentResult without_flush = runExperiment(stale);
    EXPECT_GT(with_flush.run.throughputOpsPerSec,
              without_flush.run.throughputOpsPerSec * 1.05);
}

TEST(IntegrationTest, LargerHeapDoesNotRaiseOverheadAtEqualFraction)
{
    // The paper's fig 10 shows the overhead *falling* with heap size
    // thanks to Zipf skew sharpening at multi-million-page
    // populations.  At 1/1024 scale the sharpening residue is small
    // (see EXPERIMENTS.md), so the testable invariant is that the
    // larger heap is at least no worse at the same battery fraction;
    // run length scales with the heap like the fig-10 bench.
    auto overhead_for = [](double heap_gb) {
        ExperimentConfig base;
        base.workload = 'A';
        base.heapPaperGb = heap_gb;
        base.budgetPaperGb = 0;
        base.operationCount =
            static_cast<std::uint64_t>(20000.0 * heap_gb / 17.5);
        ExperimentConfig cfg = base;
        cfg.budgetPaperGb = heap_gb * 0.229; // the paper's 23%
        return throughputOverhead(runExperiment(cfg),
                                  runExperiment(base));
    };
    EXPECT_LT(overhead_for(52.5), overhead_for(17.5) + 0.02);
}

TEST(IntegrationTest, WriteRateOrderingMatchesFig9)
{
    const ExperimentResult a = runExperiment(quickConfig('A', 2.0));
    const ExperimentResult c = runExperiment(quickConfig('C', 2.0));
    EXPECT_GT(a.avgWriteRateMBps, c.avgWriteRateMBps);
}

/** Durability invariant across workloads and budgets. */
class DurabilitySweep
    : public ::testing::TestWithParam<std::tuple<char, double>>
{
};

TEST_P(DurabilitySweep, EveryRunEndsDurable)
{
    const auto [workload, budget] = GetParam();
    ExperimentConfig cfg = quickConfig(workload, budget);
    cfg.operationCount = 8000;
    const ExperimentResult result = runExperiment(cfg);
    EXPECT_TRUE(result.durable);
    EXPECT_EQ(result.finalFlush.dirtyPagesAtFailure == 0 ||
                  result.finalFlush.flushDuration > 0,
              true);
    if (budget > 0) {
        // The flush can never exceed what the battery was sized for.
        EXPECT_LE(result.finalFlush.dirtyPagesAtFailure,
                  PaperScale::paperGbPages(budget));
    }
}

INSTANTIATE_TEST_SUITE_P(
    WorkloadsAndBudgets, DurabilitySweep,
    ::testing::Combine(::testing::Values('A', 'B', 'C', 'D', 'F'),
                       ::testing::Values(0.0, 1.0, 4.0, 16.0)));

} // namespace
} // namespace viyojit::bench
