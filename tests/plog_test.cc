/**
 * @file
 * Tests for the persistent ring log: append/read/truncate semantics,
 * wrap-around, fullness, recovery, checksums, and a property test
 * against a reference deque — on plain memory and on the simulated
 * NV substrate.
 */

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "core/manager.hh"
#include "plog/plog.hh"

namespace viyojit::plog
{
namespace
{

struct PlogFixture : public ::testing::Test
{
    PlogFixture()
        : buffer(64_KiB, 0), space(buffer.data(), buffer.size())
    {}

    std::vector<char> buffer;
    pheap::PlainNvSpace space;
};

TEST_F(PlogFixture, CreateEmpty)
{
    PersistentLog log = PersistentLog::create(space);
    const LogStats s = log.stats();
    EXPECT_EQ(s.records, 0u);
    EXPECT_EQ(s.headSeq, 0u);
    EXPECT_EQ(s.tailSeq, 0u);
    EXPECT_GT(s.bytesCapacity, 60_KiB);
}

TEST_F(PlogFixture, AppendAssignsIncreasingSequences)
{
    PersistentLog log = PersistentLog::create(space);
    EXPECT_EQ(log.append("one"), 1u);
    EXPECT_EQ(log.append("two"), 2u);
    EXPECT_EQ(log.append("three"), 3u);
    EXPECT_EQ(log.stats().records, 3u);
    EXPECT_EQ(log.stats().tailSeq, 3u);
}

TEST_F(PlogFixture, ReadBySequence)
{
    PersistentLog log = PersistentLog::create(space);
    log.append("alpha");
    log.append("beta");
    EXPECT_EQ(*log.read(1), "alpha");
    EXPECT_EQ(*log.read(2), "beta");
    EXPECT_FALSE(log.read(0).has_value());
    EXPECT_FALSE(log.read(3).has_value());
}

TEST_F(PlogFixture, EmptyPayloadSupported)
{
    PersistentLog log = PersistentLog::create(space);
    const SequenceNum seq = log.append("");
    EXPECT_EQ(seq, 1u);
    EXPECT_EQ(log.read(seq)->size(), 0u);
}

TEST_F(PlogFixture, TruncateFrontReclaims)
{
    PersistentLog log = PersistentLog::create(space);
    for (int i = 0; i < 10; ++i)
        log.append("record-" + std::to_string(i));
    EXPECT_EQ(log.truncateFront(4), 4u);
    EXPECT_EQ(log.stats().records, 6u);
    EXPECT_EQ(log.stats().headSeq, 5u);
    EXPECT_FALSE(log.read(4).has_value());
    EXPECT_EQ(*log.read(5), "record-4");
}

TEST_F(PlogFixture, TruncateAllResets)
{
    PersistentLog log = PersistentLog::create(space);
    log.append("a");
    log.append("b");
    EXPECT_EQ(log.truncateFront(99), 2u);
    EXPECT_EQ(log.stats().records, 0u);
    // Sequences keep increasing after a full drain.
    EXPECT_EQ(log.append("c"), 3u);
}

TEST_F(PlogFixture, FillsThenRejects)
{
    PersistentLog log = PersistentLog::create(space);
    const std::string payload(1000, 'x');
    std::uint64_t appended = 0;
    while (log.append(payload) != 0)
        ++appended;
    EXPECT_GT(appended, 50u);
    // Consuming frees space again.
    log.truncateFront(5);
    EXPECT_NE(log.append(payload), 0u);
}

TEST_F(PlogFixture, OversizePayloadRejected)
{
    PersistentLog log = PersistentLog::create(space);
    const std::string huge(log.maxPayload() + 1, 'x');
    EXPECT_EQ(log.append(huge), 0u);
    const std::string fits(log.maxPayload(), 'x');
    EXPECT_NE(log.append(fits), 0u);
}

TEST_F(PlogFixture, WrapAroundPreservesOrder)
{
    PersistentLog log = PersistentLog::create(space);
    const std::string payload(3000, 'y');
    // Fill, drain the front, keep appending: the tail wraps.
    std::deque<SequenceNum> live;
    for (int i = 0; i < 200; ++i) {
        SequenceNum seq = log.append(payload + std::to_string(i));
        if (seq == 0) {
            log.truncateFront(live.front() + 3);
            while (!live.empty() && live.front() <= live.front() + 3 &&
                   log.stats().headSeq > live.front())
                live.pop_front();
            seq = log.append(payload + std::to_string(i));
            ASSERT_NE(seq, 0u);
        }
        live.push_back(seq);
    }
    // Order and contents intact.
    SequenceNum prev = 0;
    log.forEach([&](SequenceNum seq, std::string_view data) {
        EXPECT_GT(seq, prev);
        prev = seq;
        EXPECT_EQ(data.substr(0, 3000), payload);
    });
    EXPECT_TRUE(log.validate());
}

TEST_F(PlogFixture, AttachRecoversState)
{
    {
        PersistentLog log = PersistentLog::create(space);
        log.append("persisted-1");
        log.append("persisted-2");
        log.truncateFront(1);
    }
    PersistentLog log = PersistentLog::attach(space);
    EXPECT_EQ(log.stats().records, 1u);
    EXPECT_EQ(*log.read(2), "persisted-2");
    EXPECT_EQ(log.append("after-reboot"), 3u);
    EXPECT_TRUE(log.validate());
}

TEST_F(PlogFixture, AttachUnformattedFails)
{
    EXPECT_THROW(PersistentLog::attach(space), FatalError);
}

TEST_F(PlogFixture, ValidateDetectsCorruption)
{
    PersistentLog log = PersistentLog::create(space);
    log.append("untouchable");
    EXPECT_TRUE(log.validate());
    // Flip a payload byte behind the log's back (simulated media
    // corruption in the backing file).
    buffer[200] ^= 0x5a;
    buffer[201] ^= 0x5a;
    // Either the payload byte or padding was hit; flip a known one:
    bool corrupted = !log.validate();
    if (!corrupted) {
        for (std::size_t i = 64; i < 400 && !corrupted; ++i) {
            buffer[i] ^= 1;
            corrupted = !log.validate();
            buffer[i] ^= 1;
        }
    }
    EXPECT_TRUE(corrupted);
}

TEST_F(PlogFixture, AttachRejectsCorruptRecords)
{
    PersistentLog log = PersistentLog::create(space);
    log.append("soon to rot");
    // Find a byte whose flip the integrity scan catches (the hunt
    // ValidateDetectsCorruption uses) and leave it flipped: attach()
    // runs the same scan and must refuse the log instead of handing
    // back silently corrupt records.
    bool corrupted = false;
    for (std::size_t i = 64; i < 400 && !corrupted; ++i) {
        buffer[i] ^= 1;
        corrupted = !log.validate();
        if (!corrupted)
            buffer[i] ^= 1;
    }
    ASSERT_TRUE(corrupted);
    EXPECT_THROW(PersistentLog::attach(space), FatalError);
}

/** Property: log agrees with a reference deque under random ops. */
TEST_F(PlogFixture, MatchesReferenceDeque)
{
    PersistentLog log = PersistentLog::create(space);
    std::deque<std::pair<SequenceNum, std::string>> reference;
    Rng rng(777);

    for (int i = 0; i < 4000; ++i) {
        const double action = rng.nextDouble();
        if (action < 0.55) {
            const std::string payload(
                rng.nextBounded(400),
                static_cast<char>('a' + rng.nextBounded(26)));
            const SequenceNum seq = log.append(payload);
            if (seq != 0)
                reference.emplace_back(seq, payload);
            // 0 = full; the reference is unchanged.
        } else if (action < 0.8 && !reference.empty()) {
            const std::size_t pick =
                rng.nextBounded(reference.size());
            const auto &[seq, expected] = reference[pick];
            const auto got = log.read(seq);
            ASSERT_TRUE(got.has_value());
            EXPECT_EQ(*got, expected);
        } else if (!reference.empty()) {
            const std::size_t drop =
                rng.nextBounded(reference.size()) / 2;
            const SequenceNum up_to = reference[drop].first;
            log.truncateFront(up_to);
            while (!reference.empty() &&
                   reference.front().first <= up_to)
                reference.pop_front();
        }
        ASSERT_EQ(log.stats().records, reference.size());
    }
    EXPECT_TRUE(log.validate());
}

TEST(PlogSimTest, LogSurvivesPowerFailureOnSimulatedNvdram)
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, storage::SsdConfig{});
    core::ViyojitConfig cfg;
    cfg.dirtyBudgetPages = 8; // tiny battery; the log tail is hot
    core::ViyojitManager mgr(ctx, ssd, cfg, mmu::MmuCostModel{}, 128);
    const Addr base = mgr.vmmap(96 * defaultPageSize);
    pheap::SimNvSpace space(mgr, base, 96 * defaultPageSize);
    mgr.start();

    PersistentLog log = PersistentLog::create(space);
    for (int i = 0; i < 500; ++i) {
        log.append("entry-" + std::to_string(i));
        mgr.processEvents();
        // The budget holds even though the log has written far more
        // pages than the battery covers: old pages cool off.
        ASSERT_LE(mgr.dirtyPageCount(), 8u);
    }
    mgr.powerFailureFlush();
    EXPECT_TRUE(mgr.verifyDurability());
    EXPECT_TRUE(log.validate());
    EXPECT_EQ(log.stats().records, 500u);
}

} // namespace
} // namespace viyojit::plog
