/**
 * @file
 * Unit tests for the SSD model: timing, durability image, queue
 * limits, and wear accounting.
 */

#include <gtest/gtest.h>

#include "storage/ssd.hh"

namespace viyojit::storage
{
namespace
{

SsdConfig
fastConfig()
{
    SsdConfig cfg;
    cfg.writeBandwidth = 1.0e9; // 1 GB/s
    cfg.readBandwidth = 2.0e9;
    cfg.perIoLatency = 10_us;
    cfg.maxIops = 1.0e6;
    cfg.queueDepth = 4;
    return cfg;
}

TEST(SsdTest, WriteCompletionTimeIncludesTransferAndLatency)
{
    sim::SimContext ctx;
    Ssd ssd(ctx, fastConfig());
    // 4 KiB at 1 GB/s ~= 4096 ns transfer + 10 us latency.
    const Tick done =
        ssd.writePageSync({0, 1}, 1, 4096);
    EXPECT_GE(done, 4096u + 10000u);
    EXPECT_LE(done, 4096u + 10000u + 1000u);
}

TEST(SsdTest, DurabilityAtCompletionNotSubmission)
{
    sim::SimContext ctx;
    Ssd ssd(ctx, fastConfig());
    const StorageKey key{0, 7};
    ssd.writePageSync(key, 99, 4096);
    EXPECT_FALSE(ssd.hasPage(key)); // not yet durable
    ctx.events().drain();
    EXPECT_TRUE(ssd.hasPage(key));
    EXPECT_EQ(ssd.durableHash(key), 99u);
}

TEST(SsdTest, BandwidthSerializesTransfers)
{
    sim::SimContext ctx;
    Ssd ssd(ctx, fastConfig());
    const Tick first = ssd.writePageSync({0, 1}, 1, 1000000);
    const Tick second = ssd.writePageSync({0, 2}, 1, 1000000);
    // The second transfer starts after the first finishes the channel.
    EXPECT_GE(second, first + 1000000 - 10000);
}

TEST(SsdTest, CallbackFires)
{
    sim::SimContext ctx;
    Ssd ssd(ctx, fastConfig());
    bool fired = false;
    ssd.writePage({0, 3}, 5, 4096, [&]() { fired = true; });
    EXPECT_FALSE(fired);
    ctx.events().drain();
    EXPECT_TRUE(fired);
}

TEST(SsdTest, OutstandingTracksInFlight)
{
    sim::SimContext ctx;
    Ssd ssd(ctx, fastConfig());
    EXPECT_EQ(ssd.outstanding(), 0u);
    ssd.writePageSync({0, 1}, 1, 4096);
    ssd.writePageSync({0, 2}, 1, 4096);
    EXPECT_EQ(ssd.outstanding(), 2u);
    ctx.events().drain();
    EXPECT_EQ(ssd.outstanding(), 0u);
}

TEST(SsdTest, CanAcceptRespectsQueueDepth)
{
    sim::SimContext ctx;
    Ssd ssd(ctx, fastConfig());
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_TRUE(ssd.canAccept());
        ssd.writePageSync({0, i}, 1, 4096);
    }
    EXPECT_FALSE(ssd.canAccept());
    ctx.events().drain();
    EXPECT_TRUE(ssd.canAccept());
}

TEST(SsdTest, WearAccounting)
{
    sim::SimContext ctx;
    Ssd ssd(ctx, fastConfig());
    ssd.writePageSync({0, 1}, 1, 4096);
    ssd.writePageSync({0, 2}, 1, 4096);
    ctx.events().drain();
    EXPECT_EQ(ssd.bytesWritten(), 8192u);
    EXPECT_EQ(ssd.pageWriteCount(), 2u);
    EXPECT_EQ(ctx.stats().counterValue("ssd.bytes_written"), 8192u);
}

TEST(SsdTest, RewriteUpdatesHash)
{
    sim::SimContext ctx;
    Ssd ssd(ctx, fastConfig());
    const StorageKey key{1, 5};
    ssd.writePageSync(key, 1, 4096);
    ctx.events().drain();
    ssd.writePageSync(key, 2, 4096);
    ctx.events().drain();
    EXPECT_EQ(ssd.durableHash(key), 2u);
}

TEST(SsdTest, RegionsAreIndependent)
{
    sim::SimContext ctx;
    Ssd ssd(ctx, fastConfig());
    ssd.writePageSync({0, 5}, 11, 4096);
    ssd.writePageSync({1, 5}, 22, 4096);
    ctx.events().drain();
    EXPECT_EQ(ssd.durableHash({0, 5}), 11u);
    EXPECT_EQ(ssd.durableHash({1, 5}), 22u);
}

TEST(SsdTest, ReadModelsLatency)
{
    sim::SimContext ctx;
    Ssd ssd(ctx, fastConfig());
    bool fired = false;
    const Tick done = ssd.readPage({0, 1}, 4096, [&]() { fired = true; });
    EXPECT_GT(done, 0u);
    ctx.events().drain();
    EXPECT_TRUE(fired);
}

TEST(SsdTest, IopsGateSpacesSmallIos)
{
    sim::SimContext ctx;
    SsdConfig cfg = fastConfig();
    cfg.maxIops = 1000.0; // 1 ms between admissions
    cfg.queueDepth = 16;
    Ssd ssd(ctx, cfg);
    const Tick a = ssd.writePageSync({0, 1}, 1, 512);
    const Tick b = ssd.writePageSync({0, 2}, 1, 512);
    EXPECT_GE(b - a, 1_ms - 10_us);
}

TEST(SsdTest, ResetClearsEverything)
{
    sim::SimContext ctx;
    Ssd ssd(ctx, fastConfig());
    ssd.writePageSync({0, 1}, 7, 4096);
    ctx.events().drain();
    ssd.reset();
    EXPECT_EQ(ssd.bytesWritten(), 0u);
    EXPECT_FALSE(ssd.hasPage({0, 1}));
    EXPECT_EQ(ssd.outstanding(), 0u);
}

TEST(SsdTest, UnwrittenPageHasZeroHash)
{
    sim::SimContext ctx;
    Ssd ssd(ctx, fastConfig());
    EXPECT_EQ(ssd.durableHash({9, 9}), 0u);
    EXPECT_FALSE(ssd.hasPage({9, 9}));
}

} // namespace
} // namespace viyojit::storage
