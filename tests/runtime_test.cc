/**
 * @file
 * Tests for the real-memory runtime: mprotect faults, budget
 * enforcement on live pages, epoch recency, flush durability, and
 * crash/recovery round trips through the backing file.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <cerrno>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "runtime/meta_sidecar.hh"
#include "runtime/region.hh"

namespace viyojit::runtime
{
namespace
{

std::string
tempPath(const std::string &tag)
{
    return "/tmp/viyojit_test_" + tag + "_" +
           std::to_string(::getpid()) + ".img";
}

RuntimeConfig
manualConfig(std::uint64_t budget)
{
    RuntimeConfig cfg;
    cfg.dirtyBudgetPages = budget;
    cfg.startEpochThread = false; // deterministic tests tick manually
    return cfg;
}

struct RegionFixture : public ::testing::Test
{
    void
    TearDown() override
    {
        for (const std::string &path : cleanup)
            ::unlink(path.c_str());
    }

    std::string
    makePath(const std::string &tag)
    {
        const std::string path = tempPath(tag);
        cleanup.push_back(path);
        return path;
    }

    std::vector<std::string> cleanup;
};

TEST_F(RegionFixture, CreateGivesZeroedReadableMemory)
{
    auto region =
        NvRegion::create(makePath("zero"), 64_KiB, manualConfig(4));
    const char *data = static_cast<const char *>(region->base());
    for (std::uint64_t i = 0; i < region->size(); i += 4096)
        EXPECT_EQ(data[i], 0);
    EXPECT_EQ(region->size() % region->pageSize(), 0u);
}

TEST_F(RegionFixture, FirstWriteFaultsAndSucceeds)
{
    auto region =
        NvRegion::create(makePath("fw"), 64_KiB, manualConfig(4));
    char *data = static_cast<char *>(region->base());
    data[0] = 'x';
    data[1] = 'y';
    EXPECT_EQ(data[0], 'x');
    EXPECT_EQ(region->stats().writeFaults, 1u);
    EXPECT_EQ(region->stats().dirtyPages, 1u);
}

TEST_F(RegionFixture, SecondPageFaultsSeparately)
{
    auto region =
        NvRegion::create(makePath("p2"), 64_KiB, manualConfig(4));
    char *data = static_cast<char *>(region->base());
    data[0] = 'a';
    data[region->pageSize()] = 'b';
    EXPECT_EQ(region->stats().writeFaults, 2u);
    EXPECT_EQ(region->stats().dirtyPages, 2u);
}

TEST_F(RegionFixture, BudgetEnforcedOnRealPages)
{
    auto region =
        NvRegion::create(makePath("budget"), 256_KiB, manualConfig(3));
    char *data = static_cast<char *>(region->base());
    const std::uint64_t ps = region->pageSize();
    for (std::uint64_t p = 0; p < region->pageCount(); ++p) {
        data[p * ps] = static_cast<char>(p);
        EXPECT_LE(region->stats().dirtyPages, 3u);
    }
    EXPECT_GT(region->stats().blockedEvictions, 0u);
    // All content still readable and correct.
    for (std::uint64_t p = 0; p < region->pageCount(); ++p)
        EXPECT_EQ(data[p * ps], static_cast<char>(p));
}

TEST_F(RegionFixture, FlushAllMakesFileMatchMemory)
{
    const std::string path = makePath("flush");
    auto region = NvRegion::create(path, 64_KiB, manualConfig(8));
    char *data = static_cast<char *>(region->base());
    const std::uint64_t ps = region->pageSize();
    for (std::uint64_t p = 0; p < region->pageCount(); ++p)
        std::memset(data + p * ps, 'A' + static_cast<int>(p % 26), ps);
    region->flushAll();
    EXPECT_EQ(region->stats().dirtyPages, 0u);

    std::ifstream file(path, std::ios::binary);
    std::vector<char> file_bytes(region->size());
    file.read(file_bytes.data(),
              static_cast<std::streamsize>(file_bytes.size()));
    EXPECT_EQ(std::memcmp(file_bytes.data(), data, region->size()), 0);
}

TEST_F(RegionFixture, RecoveryRestoresContents)
{
    const std::string path = makePath("recover");
    {
        auto region = NvRegion::create(path, 64_KiB, manualConfig(8));
        char *data = static_cast<char *>(region->base());
        std::strcpy(data, "survives the power cut");
        std::strcpy(data + region->pageSize() * 3, "page three");
        // Destructor flushes (graceful shutdown).
    }
    auto region = NvRegion::recover(path, manualConfig(8));
    const char *data = static_cast<const char *>(region->base());
    EXPECT_STREQ(data, "survives the power cut");
    EXPECT_STREQ(data + region->pageSize() * 3, "page three");
    EXPECT_EQ(region->stats().dirtyPages, 0u);
}

TEST_F(RegionFixture, RecoveredRegionIsWritable)
{
    const std::string path = makePath("rewrite");
    {
        auto region = NvRegion::create(path, 64_KiB, manualConfig(4));
        static_cast<char *>(region->base())[0] = '1';
    }
    auto region = NvRegion::recover(path, manualConfig(4));
    char *data = static_cast<char *>(region->base());
    data[0] = '2';
    EXPECT_EQ(data[0], '2');
    EXPECT_EQ(region->stats().writeFaults, 1u);
}

TEST_F(RegionFixture, EpochTickReprotectsDirtyPages)
{
    auto region =
        NvRegion::create(makePath("epoch"), 64_KiB, manualConfig(8));
    char *data = static_cast<char *>(region->base());
    data[0] = 'a';
    EXPECT_EQ(region->stats().writeFaults, 1u);
    region->epochTick();
    // Still dirty (within budget), but re-protected: the next write
    // faults again, which is how recency is sampled.
    data[1] = 'b';
    EXPECT_EQ(region->stats().writeFaults, 2u);
    EXPECT_EQ(region->stats().dirtyPages, 1u);
}

TEST_F(RegionFixture, ColdPagesGetCopiedProactively)
{
    auto region =
        NvRegion::create(makePath("cold"), 256_KiB, manualConfig(8));
    char *data = static_cast<char *>(region->base());
    const std::uint64_t ps = region->pageSize();
    // Dirty 8 pages (at budget), then keep writing only page 0
    // across epochs; pressure stays positive so the copier drains
    // cold pages below the threshold.
    for (int p = 0; p < 8; ++p)
        data[p * ps] = 'x';
    for (int e = 0; e < 10; ++e) {
        region->epochTick();
        data[0] = static_cast<char>('a' + e);
    }
    EXPECT_GT(region->stats().proactiveCopies, 0u);
    EXPECT_LT(region->stats().dirtyPages, 8u);
}

TEST_F(RegionFixture, SetDirtyBudgetShrinks)
{
    auto region =
        NvRegion::create(makePath("shrink"), 256_KiB, manualConfig(8));
    char *data = static_cast<char *>(region->base());
    const std::uint64_t ps = region->pageSize();
    for (int p = 0; p < 8; ++p)
        data[p * ps] = 'x';
    region->setDirtyBudget(2);
    EXPECT_LE(region->stats().dirtyPages, 2u);
    // And the budget holds for future writes.
    for (std::uint64_t p = 8; p < region->pageCount(); ++p) {
        data[p * ps] = 'y';
        EXPECT_LE(region->stats().dirtyPages, 2u);
    }
}

TEST_F(RegionFixture, EpochThreadRunsUnattended)
{
    RuntimeConfig cfg = manualConfig(8);
    cfg.startEpochThread = true;
    cfg.epochMicros = 200;
    auto region =
        NvRegion::create(makePath("thread"), 64_KiB, cfg);
    char *data = static_cast<char *>(region->base());
    for (int i = 0; i < 50; ++i) {
        data[(i % 8) * region->pageSize()] = static_cast<char>(i);
        ::usleep(100);
    }
    EXPECT_GT(region->stats().epochs, 3u);
}

TEST_F(RegionFixture, RandomWritesSurviveCrashFlush)
{
    const std::string path = makePath("fuzz");
    std::vector<char> expected;
    {
        auto region = NvRegion::create(path, 512_KiB, manualConfig(5));
        char *data = static_cast<char *>(region->base());
        Rng rng(2024);
        for (int i = 0; i < 4000; ++i) {
            const std::uint64_t off =
                rng.nextBounded(region->size() - 8);
            data[off] = static_cast<char>(rng.nextBounded(256));
            if (i % 200 == 0)
                region->epochTick();
        }
        region->flushAll(); // the power-failure flush
        expected.assign(data, data + region->size());
    }
    auto region = NvRegion::recover(path, manualConfig(5));
    EXPECT_EQ(std::memcmp(region->base(), expected.data(),
                          expected.size()),
              0);
}

TEST_F(RegionFixture, ZeroBudgetRejected)
{
    RuntimeConfig cfg;
    cfg.dirtyBudgetPages = 0;
    EXPECT_THROW(NvRegion::create(makePath("zb"), 64_KiB, cfg),
                 FatalError);
}

TEST_F(RegionFixture, CoalescedFlushMakesFileMatchMemory)
{
    // Sequential dirtying with the coalesced-IO path on: victims are
    // page-number-adjacent, so the flush must go out as vectored run
    // writes — and the file must still match memory byte for byte.
    const std::string path = makePath("coalesce");
    RuntimeConfig cfg = manualConfig(8);
    cfg.coalesceRuns = true;
    cfg.maxRunPages = 8;
    cfg.extentShift = 2;
    auto region = NvRegion::create(path, 64_KiB, cfg);
    char *data = static_cast<char *>(region->base());
    const std::uint64_t ps = region->pageSize();
    for (std::uint64_t p = 0; p < region->pageCount(); ++p)
        std::memset(data + p * ps, 'a' + static_cast<int>(p % 26), ps);
    region->flushAll();
    EXPECT_EQ(region->stats().dirtyPages, 0u);

    // Runs actually formed: more pages moved per IO than one.
    const RegionStats stats = region->stats();
    EXPECT_GT(stats.runSubmits, 0u);
    EXPECT_GT(stats.runPagesCoalesced, stats.runSubmits);

    std::ifstream file(path, std::ios::binary);
    std::vector<char> file_bytes(region->size());
    file.read(file_bytes.data(),
              static_cast<std::streamsize>(file_bytes.size()));
    EXPECT_EQ(std::memcmp(file_bytes.data(), data, region->size()), 0);
}

TEST_F(RegionFixture, CoalescedRecoveryRoundTrip)
{
    const std::string path = makePath("coalesce_rec");
    RuntimeConfig cfg = manualConfig(8);
    cfg.coalesceRuns = true;
    cfg.extentShift = 2;
    std::vector<char> expected;
    {
        auto region = NvRegion::create(path, 64_KiB, cfg);
        char *data = static_cast<char *>(region->base());
        Rng rng(0xc0a1e5ce);
        for (std::uint64_t i = 0; i < region->size(); ++i)
            data[i] = static_cast<char>(rng.next());
        expected.assign(data, data + region->size());
        region->flushAll();
    }
    auto region = NvRegion::recover(path, cfg);
    EXPECT_EQ(std::memcmp(region->base(), expected.data(),
                          expected.size()),
              0);
}

TEST_F(RegionFixture, CoalescedWithCopiersMatchesFile)
{
    // The copier-pool run path: one ring slot per run, the worker
    // batch bounded by summed pages, one group sync per batch with a
    // run in it.  End state must equal the inline path's.
    const std::string path = makePath("coalesce_cp");
    RuntimeConfig cfg = manualConfig(8);
    cfg.coalesceRuns = true;
    cfg.maxRunPages = 8;
    cfg.copierThreads = 2;
    auto region = NvRegion::create(path, 256_KiB, cfg);
    char *data = static_cast<char *>(region->base());
    const std::uint64_t ps = region->pageSize();
    for (int sweep = 0; sweep < 3; ++sweep) {
        for (std::uint64_t p = 0; p < region->pageCount(); ++p)
            std::memset(data + p * ps,
                        'A' + static_cast<int>((p + sweep) % 26), ps);
        region->epochTick();
    }
    region->flushAll();
    EXPECT_EQ(region->stats().dirtyPages, 0u);
    EXPECT_GT(region->stats().runSubmits, 0u);

    std::ifstream file(path, std::ios::binary);
    std::vector<char> file_bytes(region->size());
    file.read(file_bytes.data(),
              static_cast<std::streamsize>(file_bytes.size()));
    EXPECT_EQ(std::memcmp(file_bytes.data(), data, region->size()), 0);
}

TEST(SyscallRetryTest, FdatasyncReportsNonRetryableErrno)
{
    // EBADF is not transient: the helper must return it to the
    // caller (who escalates) instead of retrying or aborting.
    EXPECT_EQ(fdatasyncWithRetry(-1), EBADF);
}

TEST(SyscallRetryTest, PwriteFullyWritesAndReportsErrors)
{
    const std::string path = tempPath("pwrite");
    const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC,
                          0600);
    ASSERT_GE(fd, 0);
    const std::string payload = "durable bytes";
    EXPECT_EQ(pwriteFullyWithRetry(fd, payload.data(), payload.size(),
                                   4096),
              0);

    std::vector<char> back(payload.size());
    ASSERT_EQ(::pread(fd, back.data(), back.size(), 4096),
              static_cast<ssize_t>(back.size()));
    EXPECT_EQ(std::string(back.begin(), back.end()), payload);
    ::close(fd);

    // A closed descriptor is a hard error, returned not retried.
    EXPECT_EQ(pwriteFullyWithRetry(fd, payload.data(), payload.size(),
                                   0),
              EBADF);
    ::unlink(path.c_str());
}

TEST(SyscallRetryTest, AdvanceIovecsResumesMidArray)
{
    char buf[600];
    const auto fresh = [&]() {
        return std::array<struct iovec, 3>{
            {{buf, 100}, {buf + 100, 200}, {buf + 300, 300}}};
    };

    // Nothing transferred: array untouched.
    auto iov = fresh();
    EXPECT_EQ(advanceIovecs(iov.data(), 3, 0), 0u);
    EXPECT_EQ(iov[0].iov_len, 100u);

    // Exactly the first entry: resume at index 1, untouched.
    iov = fresh();
    EXPECT_EQ(advanceIovecs(iov.data(), 3, 100), 1u);
    EXPECT_EQ(iov[1].iov_base, buf + 100);
    EXPECT_EQ(iov[1].iov_len, 200u);

    // Mid-second-entry: its base and length shift by the overlap.
    iov = fresh();
    EXPECT_EQ(advanceIovecs(iov.data(), 3, 150), 1u);
    EXPECT_EQ(iov[1].iov_base, buf + 150);
    EXPECT_EQ(iov[1].iov_len, 150u);
    EXPECT_EQ(iov[2].iov_len, 300u);

    // One byte short of everything: resume inside the last entry.
    iov = fresh();
    EXPECT_EQ(advanceIovecs(iov.data(), 3, 599), 2u);
    EXPECT_EQ(iov[2].iov_base, buf + 599);
    EXPECT_EQ(iov[2].iov_len, 1u);

    // Fully transferred: index == count, nothing left.
    iov = fresh();
    EXPECT_EQ(advanceIovecs(iov.data(), 3, 600), 3u);
}

TEST(SyscallRetryTest, PwritevFullyWritesMultipleIovecsAndReportsErrors)
{
    const std::string path = tempPath("pwritev");
    const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC,
                          0600);
    ASSERT_GE(fd, 0);

    std::string a = "torn ", b = "runs ", c = "never persist clean";
    std::array<struct iovec, 3> iov{{{a.data(), a.size()},
                                     {b.data(), b.size()},
                                     {c.data(), c.size()}}};
    EXPECT_EQ(pwritevFullyWithRetry(fd, iov.data(), 3, 8192), 0);

    const std::string expected = "torn runs never persist clean";
    std::vector<char> back(expected.size());
    ASSERT_EQ(::pread(fd, back.data(), back.size(), 8192),
              static_cast<ssize_t>(back.size()));
    EXPECT_EQ(std::string(back.begin(), back.end()), expected);
    ::close(fd);

    // A closed descriptor is a hard error, returned not retried.
    std::array<struct iovec, 1> bad{{{a.data(), a.size()}}};
    EXPECT_EQ(pwritevFullyWithRetry(fd, bad.data(), 1, 0), EBADF);
    ::unlink(path.c_str());
}

TEST(SyscallRetryTest, PreadFullyReadsAndReportsErrors)
{
    const std::string path = tempPath("pread");
    const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC,
                          0600);
    ASSERT_GE(fd, 0);
    const std::string payload = "recovered bytes";
    ASSERT_EQ(::pwrite(fd, payload.data(), payload.size(), 4096),
              static_cast<ssize_t>(payload.size()));

    std::vector<char> back(payload.size());
    EXPECT_EQ(preadFullyWithRetry(fd, back.data(), back.size(), 4096),
              0);
    EXPECT_EQ(std::string(back.begin(), back.end()), payload);

    // EOF before the requested length is an error, not a short
    // success: recovery sizes reads from the file, so a short image
    // means the file shrank or the device lied.
    std::vector<char> over(payload.size() + 16);
    EXPECT_EQ(preadFullyWithRetry(fd, over.data(), over.size(), 4096),
              EIO);
    // Reading entirely past the end is the same truncated-image case.
    EXPECT_EQ(preadFullyWithRetry(fd, back.data(), back.size(),
                                  1_MiB),
              EIO);
    ::close(fd);

    // A closed descriptor is a hard error, returned not retried.
    EXPECT_EQ(preadFullyWithRetry(fd, back.data(), back.size(), 4096),
              EBADF);
    ::unlink(path.c_str());
}

// ---------------------------------------------------------------------
// Verified durability: the commit sidecar, recovery classification,
// and the background scrubber (DESIGN.md §10).
// ---------------------------------------------------------------------

TEST_F(RegionFixture, SidecarVerifiesCleanRecovery)
{
    const std::string path = makePath("sidecar");
    cleanup.push_back(path + ".meta");
    const std::uint64_t ps = 4096;
    {
        auto region = NvRegion::create(path, 64_KiB, manualConfig(8));
        ASSERT_TRUE(region->hasSidecar());
        char *data = static_cast<char *>(region->base());
        for (std::uint64_t p = 0; p < region->pageCount(); ++p)
            std::memset(data + p * ps, 'A' + static_cast<int>(p), ps);
        region->flushAll();
    }
    auto region = NvRegion::recover(path, manualConfig(8));
    const RuntimeRecoveryReport &report = region->recoveryReport();
    EXPECT_TRUE(report.sidecarFound);
    EXPECT_EQ(report.verifiedPages, region->pageCount());
    EXPECT_EQ(report.checksumMismatches, 0u);
    EXPECT_EQ(report.badEntries, 0u);
    EXPECT_TRUE(report.quarantined.empty());
    const char *data = static_cast<const char *>(region->base());
    for (std::uint64_t p = 0; p < region->pageCount(); ++p)
        EXPECT_EQ(data[p * ps], 'A' + static_cast<int>(p));
}

TEST_F(RegionFixture, CorruptBackingPageIsQuarantinedNotTrusted)
{
    const std::string path = makePath("rot");
    cleanup.push_back(path + ".meta");
    const std::uint64_t ps = 4096;
    {
        auto region = NvRegion::create(path, 64_KiB, manualConfig(8));
        char *data = static_cast<char *>(region->base());
        for (std::uint64_t p = 0; p < region->pageCount(); ++p)
            std::memset(data + p * ps, 'A' + static_cast<int>(p), ps);
        region->flushAll();
    }
    // Rot one byte of page 3 behind the runtime's back.
    {
        const int fd = ::open(path.c_str(), O_RDWR);
        ASSERT_GE(fd, 0);
        char byte;
        ASSERT_EQ(::pread(fd, &byte, 1, 3 * ps + 17), 1);
        byte ^= 0x40;
        ASSERT_EQ(::pwrite(fd, &byte, 1, 3 * ps + 17), 1);
        ::close(fd);
    }
    auto region = NvRegion::recover(path, manualConfig(8));
    const RuntimeRecoveryReport &report = region->recoveryReport();
    EXPECT_TRUE(report.sidecarFound);
    EXPECT_EQ(report.checksumMismatches, 1u);
    EXPECT_EQ(report.tornRunPages + report.staleEpochPages +
                  report.silentCorruptPages,
              1u);
    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_EQ(report.quarantined[0], 3u);
    EXPECT_EQ(report.verifiedPages, region->pageCount() - 1);
}

TEST_F(RegionFixture, TornSidecarEntryLoadsPageUnverified)
{
    const std::string path = makePath("tornmeta");
    const std::string meta_path = path + ".meta";
    cleanup.push_back(meta_path);
    const std::uint64_t ps = 4096;
    {
        auto region = NvRegion::create(path, 64_KiB, manualConfig(8));
        char *data = static_cast<char *>(region->base());
        for (std::uint64_t p = 0; p < region->pageCount(); ++p)
            std::memset(data + p * ps, 'A' + static_cast<int>(p), ps);
        region->flushAll();
    }
    // Tear page 2's commit record: its self-CRC must fail, so the
    // page loads unverified (no record to check against) instead of
    // being condemned by garbage metadata.
    {
        const int fd = ::open(meta_path.c_str(), O_RDWR);
        ASSERT_GE(fd, 0);
        const off_t at =
            static_cast<off_t>(MetaSidecar::kEntriesOffset + 2 * 32);
        char byte;
        ASSERT_EQ(::pread(fd, &byte, 1, at), 1);
        byte ^= 0xFF;
        ASSERT_EQ(::pwrite(fd, &byte, 1, at), 1);
        ::close(fd);
    }
    auto region = NvRegion::recover(path, manualConfig(8));
    const RuntimeRecoveryReport &report = region->recoveryReport();
    EXPECT_TRUE(report.sidecarFound);
    EXPECT_EQ(report.badEntries, 1u);
    EXPECT_EQ(report.unverifiedPages, 1u);
    EXPECT_EQ(report.verifiedPages, region->pageCount() - 1);
    EXPECT_EQ(report.checksumMismatches, 0u);
    EXPECT_TRUE(report.quarantined.empty());
    // Content still loads — it just carries no durability claim.
    const char *data = static_cast<const char *>(region->base());
    EXPECT_EQ(data[2 * ps], 'C');
}

TEST_F(RegionFixture, LegacyImageWithoutSidecarLoadsUnverified)
{
    const std::string path = makePath("legacy");
    cleanup.push_back(path + ".meta");
    {
        RuntimeConfig cfg = manualConfig(8);
        cfg.checksumCommits = false; // pre-sidecar writer
        auto region = NvRegion::create(path, 64_KiB, cfg);
        ASSERT_FALSE(region->hasSidecar());
        char *data = static_cast<char *>(region->base());
        std::strcpy(data, "legacy but intact");
        region->flushAll();
    }
    auto region = NvRegion::recover(path, manualConfig(8));
    const RuntimeRecoveryReport &report = region->recoveryReport();
    EXPECT_FALSE(report.sidecarFound);
    EXPECT_TRUE(report.quarantined.empty());
    // A fresh sidecar starts so future flushes are verified.
    EXPECT_TRUE(region->hasSidecar());
    EXPECT_STREQ(static_cast<const char *>(region->base()),
                 "legacy but intact");
}

TEST_F(RegionFixture, ScrubTickRepairsRottedDurableCopy)
{
    const std::string path = makePath("scrub");
    cleanup.push_back(path + ".meta");
    const std::uint64_t ps = 4096;
    auto region = NvRegion::create(path, 64_KiB, manualConfig(8));
    char *data = static_cast<char *>(region->base());
    for (std::uint64_t p = 0; p < region->pageCount(); ++p)
        std::memset(data + p * ps, 'A' + static_cast<int>(p), ps);
    region->flushAll();

    // Rot page 5's durable copy while the region is live; DRAM still
    // holds the committed content.
    {
        const int fd = ::open(path.c_str(), O_RDWR);
        ASSERT_GE(fd, 0);
        char byte;
        ASSERT_EQ(::pread(fd, &byte, 1, 5 * ps + 100), 1);
        byte ^= 0x08;
        ASSERT_EQ(::pwrite(fd, &byte, 1, 5 * ps + 100), 1);
        ::close(fd);
    }

    region->scrubTick(region->pageCount());
    const RegionStats stats = region->stats();
    EXPECT_EQ(stats.scrubMismatches, 1u);
    EXPECT_EQ(stats.scrubRepaired, 1u);
    EXPECT_GT(stats.scrubScanned, 0u);

    // The durable image matches memory again.
    std::ifstream file(path, std::ios::binary);
    std::vector<char> file_bytes(region->size());
    file.read(file_bytes.data(),
              static_cast<std::streamsize>(file_bytes.size()));
    EXPECT_EQ(std::memcmp(file_bytes.data(), data, region->size()),
              0);

    // A second pass finds nothing new to repair.
    region->scrubTick(region->pageCount());
    EXPECT_EQ(region->stats().scrubMismatches, 1u);
}

// ---------------------------------------------------------------------
// Compressed copy-out path (RuntimeConfig::compressFlush)
// ---------------------------------------------------------------------

RuntimeConfig
compressConfig(std::uint64_t budget)
{
    RuntimeConfig cfg = manualConfig(budget);
    cfg.copierThreads = 2; // the codec runs on copier threads only
    cfg.compressFlush = true;
    return cfg;
}

TEST_F(RegionFixture, CompressFlushRejectsUnsupportedConfigs)
{
    // No sidecar: the stored length would have nowhere to live, and
    // recovery could not tell a compressed slot from raw data.
    RuntimeConfig no_meta = compressConfig(4);
    no_meta.checksumCommits = false;
    EXPECT_THROW(NvRegion::create(makePath("cz_nm"), 64_KiB, no_meta),
                 FatalError);
    // No copiers: inline persists run on the SIGSEGV admission path,
    // which must never reach the codec.
    RuntimeConfig no_copiers = compressConfig(4);
    no_copiers.copierThreads = 0;
    EXPECT_THROW(
        NvRegion::create(makePath("cz_nc"), 64_KiB, no_copiers),
        FatalError);
}

TEST_F(RegionFixture, CompressedFlushShipsFewerBytesAndRecovers)
{
    const std::string path = makePath("cz_rt");
    cleanup.push_back(path + ".meta");
    const std::uint64_t ps = 4096;
    std::vector<char> expected;
    {
        auto region =
            NvRegion::create(path, 64_KiB, compressConfig(8));
        char *data = static_cast<char *>(region->base());
        for (std::uint64_t p = 0; p < region->pageCount(); ++p)
            std::memset(data + p * ps, 'A' + static_cast<int>(p),
                        ps);
        expected.assign(data, data + region->size());
        region->flushAll();
        const RegionStats stats = region->stats();
        EXPECT_GT(stats.compressedPersists, 0u);
        // Constant-fill pages compress hard: the wire carried far
        // fewer bytes than the raw pages it retired.
        EXPECT_LT(stats.storedBytesPersisted,
                  stats.bytesPersisted / 4);
    }
    // Recovery needs no compressFlush of its own: the stored length
    // rides in the commit record, so a plain config decodes and
    // verifies the compressed image.
    auto region = NvRegion::recover(path, manualConfig(8));
    const RuntimeRecoveryReport &report = region->recoveryReport();
    EXPECT_TRUE(report.sidecarFound);
    EXPECT_GT(report.compressedPages, 0u);
    EXPECT_EQ(report.verifiedPages, region->pageCount());
    EXPECT_EQ(report.checksumMismatches, 0u);
    EXPECT_TRUE(report.quarantined.empty());
    EXPECT_EQ(std::memcmp(region->base(), expected.data(),
                          expected.size()),
              0);
}

TEST_F(RegionFixture, IncompressiblePagesBypassToRawAndRecover)
{
    const std::string path = makePath("cz_rand");
    cleanup.push_back(path + ".meta");
    std::vector<char> expected;
    {
        auto region =
            NvRegion::create(path, 64_KiB, compressConfig(8));
        char *data = static_cast<char *>(region->base());
        Rng rng(0x5eed);
        for (std::uint64_t i = 0; i < region->size(); ++i)
            data[i] = static_cast<char>(rng.next());
        expected.assign(data, data + region->size());
        region->flushAll();
        const RegionStats stats = region->stats();
        // Random pages never clear the codec's ~1.05 gate: every
        // copier persist bypassed to raw.
        EXPECT_GT(stats.compressBypasses, 0u);
        EXPECT_EQ(stats.compressedPersists, 0u);
    }
    auto region = NvRegion::recover(path, manualConfig(8));
    const RuntimeRecoveryReport &report = region->recoveryReport();
    EXPECT_EQ(report.compressedPages, 0u);
    EXPECT_EQ(report.verifiedPages, region->pageCount());
    EXPECT_TRUE(report.quarantined.empty());
    EXPECT_EQ(std::memcmp(region->base(), expected.data(),
                          expected.size()),
              0);
}

TEST_F(RegionFixture, CorruptCompressedSlotIsQuarantined)
{
    const std::string path = makePath("cz_rot");
    cleanup.push_back(path + ".meta");
    const std::uint64_t ps = 4096;
    {
        auto region =
            NvRegion::create(path, 64_KiB, compressConfig(8));
        char *data = static_cast<char *>(region->base());
        for (std::uint64_t p = 0; p < region->pageCount(); ++p)
            std::memset(data + p * ps, 'A' + static_cast<int>(p),
                        ps);
        region->flushAll();
        ASSERT_GT(region->stats().compressedPersists, 0u);
    }
    // Rot a byte INSIDE page 3's stored stream (constant-fill pages
    // encode to well under 64 bytes, so offset 5 is inside it).
    {
        const int fd = ::open(path.c_str(), O_RDWR);
        ASSERT_GE(fd, 0);
        char byte;
        ASSERT_EQ(::pread(fd, &byte, 1, 3 * ps + 5), 1);
        byte ^= 0x40;
        ASSERT_EQ(::pwrite(fd, &byte, 1, 3 * ps + 5), 1);
        ::close(fd);
    }
    auto region = NvRegion::recover(path, manualConfig(8));
    const RuntimeRecoveryReport &report = region->recoveryReport();
    EXPECT_TRUE(report.sidecarFound);
    // Decode failure or raw-CRC mismatch — either way the page is
    // condemned, classified, and quarantined like any other
    // corruption.
    EXPECT_EQ(report.checksumMismatches, 1u);
    EXPECT_EQ(report.tornRunPages + report.staleEpochPages +
                  report.silentCorruptPages,
              1u);
    ASSERT_EQ(report.quarantined.size(), 1u);
    EXPECT_EQ(report.quarantined[0], 3u);
    EXPECT_EQ(report.verifiedPages, region->pageCount() - 1);
}

TEST_F(RegionFixture, ScrubRepairsRottedCompressedSlot)
{
    const std::string path = makePath("cz_scrub");
    cleanup.push_back(path + ".meta");
    const std::uint64_t ps = 4096;
    auto region = NvRegion::create(path, 64_KiB, compressConfig(8));
    char *data = static_cast<char *>(region->base());
    for (std::uint64_t p = 0; p < region->pageCount(); ++p)
        std::memset(data + p * ps, 'A' + static_cast<int>(p), ps);
    region->flushAll();
    ASSERT_GT(region->stats().compressedPersists, 0u);

    // Rot page 5's stored stream while the region is live.
    {
        const int fd = ::open(path.c_str(), O_RDWR);
        ASSERT_GE(fd, 0);
        char byte;
        ASSERT_EQ(::pread(fd, &byte, 1, 5 * ps + 5), 1);
        byte ^= 0x08;
        ASSERT_EQ(::pwrite(fd, &byte, 1, 5 * ps + 5), 1);
        ::close(fd);
    }

    region->scrubTick(region->pageCount());
    const RegionStats stats = region->stats();
    EXPECT_EQ(stats.scrubMismatches, 1u);
    EXPECT_EQ(stats.scrubRepaired, 1u);

    // A second pass is clean (the repair rewrote the slot raw with a
    // fresh commit record), and recovery round-trips the content.
    region->scrubTick(region->pageCount());
    EXPECT_EQ(region->stats().scrubMismatches, 1u);
    std::vector<char> expected(data, data + region->size());
    region.reset();
    auto recovered = NvRegion::recover(path, manualConfig(8));
    EXPECT_EQ(recovered->recoveryReport().checksumMismatches, 0u);
    EXPECT_TRUE(recovered->recoveryReport().quarantined.empty());
    EXPECT_EQ(std::memcmp(recovered->base(), expected.data(),
                          expected.size()),
              0);
}

} // namespace
} // namespace viyojit::runtime
