/**
 * @file
 * Tests for the real-memory runtime: mprotect faults, budget
 * enforcement on live pages, epoch recency, flush durability, and
 * crash/recovery round trips through the backing file.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "runtime/region.hh"

namespace viyojit::runtime
{
namespace
{

std::string
tempPath(const std::string &tag)
{
    return "/tmp/viyojit_test_" + tag + "_" +
           std::to_string(::getpid()) + ".img";
}

RuntimeConfig
manualConfig(std::uint64_t budget)
{
    RuntimeConfig cfg;
    cfg.dirtyBudgetPages = budget;
    cfg.startEpochThread = false; // deterministic tests tick manually
    return cfg;
}

struct RegionFixture : public ::testing::Test
{
    void
    TearDown() override
    {
        for (const std::string &path : cleanup)
            ::unlink(path.c_str());
    }

    std::string
    makePath(const std::string &tag)
    {
        const std::string path = tempPath(tag);
        cleanup.push_back(path);
        return path;
    }

    std::vector<std::string> cleanup;
};

TEST_F(RegionFixture, CreateGivesZeroedReadableMemory)
{
    auto region =
        NvRegion::create(makePath("zero"), 64_KiB, manualConfig(4));
    const char *data = static_cast<const char *>(region->base());
    for (std::uint64_t i = 0; i < region->size(); i += 4096)
        EXPECT_EQ(data[i], 0);
    EXPECT_EQ(region->size() % region->pageSize(), 0u);
}

TEST_F(RegionFixture, FirstWriteFaultsAndSucceeds)
{
    auto region =
        NvRegion::create(makePath("fw"), 64_KiB, manualConfig(4));
    char *data = static_cast<char *>(region->base());
    data[0] = 'x';
    data[1] = 'y';
    EXPECT_EQ(data[0], 'x');
    EXPECT_EQ(region->stats().writeFaults, 1u);
    EXPECT_EQ(region->stats().dirtyPages, 1u);
}

TEST_F(RegionFixture, SecondPageFaultsSeparately)
{
    auto region =
        NvRegion::create(makePath("p2"), 64_KiB, manualConfig(4));
    char *data = static_cast<char *>(region->base());
    data[0] = 'a';
    data[region->pageSize()] = 'b';
    EXPECT_EQ(region->stats().writeFaults, 2u);
    EXPECT_EQ(region->stats().dirtyPages, 2u);
}

TEST_F(RegionFixture, BudgetEnforcedOnRealPages)
{
    auto region =
        NvRegion::create(makePath("budget"), 256_KiB, manualConfig(3));
    char *data = static_cast<char *>(region->base());
    const std::uint64_t ps = region->pageSize();
    for (std::uint64_t p = 0; p < region->pageCount(); ++p) {
        data[p * ps] = static_cast<char>(p);
        EXPECT_LE(region->stats().dirtyPages, 3u);
    }
    EXPECT_GT(region->stats().blockedEvictions, 0u);
    // All content still readable and correct.
    for (std::uint64_t p = 0; p < region->pageCount(); ++p)
        EXPECT_EQ(data[p * ps], static_cast<char>(p));
}

TEST_F(RegionFixture, FlushAllMakesFileMatchMemory)
{
    const std::string path = makePath("flush");
    auto region = NvRegion::create(path, 64_KiB, manualConfig(8));
    char *data = static_cast<char *>(region->base());
    const std::uint64_t ps = region->pageSize();
    for (std::uint64_t p = 0; p < region->pageCount(); ++p)
        std::memset(data + p * ps, 'A' + static_cast<int>(p % 26), ps);
    region->flushAll();
    EXPECT_EQ(region->stats().dirtyPages, 0u);

    std::ifstream file(path, std::ios::binary);
    std::vector<char> file_bytes(region->size());
    file.read(file_bytes.data(),
              static_cast<std::streamsize>(file_bytes.size()));
    EXPECT_EQ(std::memcmp(file_bytes.data(), data, region->size()), 0);
}

TEST_F(RegionFixture, RecoveryRestoresContents)
{
    const std::string path = makePath("recover");
    {
        auto region = NvRegion::create(path, 64_KiB, manualConfig(8));
        char *data = static_cast<char *>(region->base());
        std::strcpy(data, "survives the power cut");
        std::strcpy(data + region->pageSize() * 3, "page three");
        // Destructor flushes (graceful shutdown).
    }
    auto region = NvRegion::recover(path, manualConfig(8));
    const char *data = static_cast<const char *>(region->base());
    EXPECT_STREQ(data, "survives the power cut");
    EXPECT_STREQ(data + region->pageSize() * 3, "page three");
    EXPECT_EQ(region->stats().dirtyPages, 0u);
}

TEST_F(RegionFixture, RecoveredRegionIsWritable)
{
    const std::string path = makePath("rewrite");
    {
        auto region = NvRegion::create(path, 64_KiB, manualConfig(4));
        static_cast<char *>(region->base())[0] = '1';
    }
    auto region = NvRegion::recover(path, manualConfig(4));
    char *data = static_cast<char *>(region->base());
    data[0] = '2';
    EXPECT_EQ(data[0], '2');
    EXPECT_EQ(region->stats().writeFaults, 1u);
}

TEST_F(RegionFixture, EpochTickReprotectsDirtyPages)
{
    auto region =
        NvRegion::create(makePath("epoch"), 64_KiB, manualConfig(8));
    char *data = static_cast<char *>(region->base());
    data[0] = 'a';
    EXPECT_EQ(region->stats().writeFaults, 1u);
    region->epochTick();
    // Still dirty (within budget), but re-protected: the next write
    // faults again, which is how recency is sampled.
    data[1] = 'b';
    EXPECT_EQ(region->stats().writeFaults, 2u);
    EXPECT_EQ(region->stats().dirtyPages, 1u);
}

TEST_F(RegionFixture, ColdPagesGetCopiedProactively)
{
    auto region =
        NvRegion::create(makePath("cold"), 256_KiB, manualConfig(8));
    char *data = static_cast<char *>(region->base());
    const std::uint64_t ps = region->pageSize();
    // Dirty 8 pages (at budget), then keep writing only page 0
    // across epochs; pressure stays positive so the copier drains
    // cold pages below the threshold.
    for (int p = 0; p < 8; ++p)
        data[p * ps] = 'x';
    for (int e = 0; e < 10; ++e) {
        region->epochTick();
        data[0] = static_cast<char>('a' + e);
    }
    EXPECT_GT(region->stats().proactiveCopies, 0u);
    EXPECT_LT(region->stats().dirtyPages, 8u);
}

TEST_F(RegionFixture, SetDirtyBudgetShrinks)
{
    auto region =
        NvRegion::create(makePath("shrink"), 256_KiB, manualConfig(8));
    char *data = static_cast<char *>(region->base());
    const std::uint64_t ps = region->pageSize();
    for (int p = 0; p < 8; ++p)
        data[p * ps] = 'x';
    region->setDirtyBudget(2);
    EXPECT_LE(region->stats().dirtyPages, 2u);
    // And the budget holds for future writes.
    for (std::uint64_t p = 8; p < region->pageCount(); ++p) {
        data[p * ps] = 'y';
        EXPECT_LE(region->stats().dirtyPages, 2u);
    }
}

TEST_F(RegionFixture, EpochThreadRunsUnattended)
{
    RuntimeConfig cfg = manualConfig(8);
    cfg.startEpochThread = true;
    cfg.epochMicros = 200;
    auto region =
        NvRegion::create(makePath("thread"), 64_KiB, cfg);
    char *data = static_cast<char *>(region->base());
    for (int i = 0; i < 50; ++i) {
        data[(i % 8) * region->pageSize()] = static_cast<char>(i);
        ::usleep(100);
    }
    EXPECT_GT(region->stats().epochs, 3u);
}

TEST_F(RegionFixture, RandomWritesSurviveCrashFlush)
{
    const std::string path = makePath("fuzz");
    std::vector<char> expected;
    {
        auto region = NvRegion::create(path, 512_KiB, manualConfig(5));
        char *data = static_cast<char *>(region->base());
        Rng rng(2024);
        for (int i = 0; i < 4000; ++i) {
            const std::uint64_t off =
                rng.nextBounded(region->size() - 8);
            data[off] = static_cast<char>(rng.nextBounded(256));
            if (i % 200 == 0)
                region->epochTick();
        }
        region->flushAll(); // the power-failure flush
        expected.assign(data, data + region->size());
    }
    auto region = NvRegion::recover(path, manualConfig(5));
    EXPECT_EQ(std::memcmp(region->base(), expected.data(),
                          expected.size()),
              0);
}

TEST_F(RegionFixture, ZeroBudgetRejected)
{
    RuntimeConfig cfg;
    cfg.dirtyBudgetPages = 0;
    EXPECT_THROW(NvRegion::create(makePath("zb"), 64_KiB, cfg),
                 FatalError);
}

TEST(SyscallRetryTest, FdatasyncReportsNonRetryableErrno)
{
    // EBADF is not transient: the helper must return it to the
    // caller (who escalates) instead of retrying or aborting.
    EXPECT_EQ(fdatasyncWithRetry(-1), EBADF);
}

TEST(SyscallRetryTest, PwriteFullyWritesAndReportsErrors)
{
    const std::string path = tempPath("pwrite");
    const int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC,
                          0600);
    ASSERT_GE(fd, 0);
    const std::string payload = "durable bytes";
    EXPECT_EQ(pwriteFullyWithRetry(fd, payload.data(), payload.size(),
                                   4096),
              0);

    std::vector<char> back(payload.size());
    ASSERT_EQ(::pread(fd, back.data(), back.size(), 4096),
              static_cast<ssize_t>(back.size()));
    EXPECT_EQ(std::string(back.begin(), back.end()), payload);
    ::close(fd);

    // A closed descriptor is a hard error, returned not retried.
    EXPECT_EQ(pwriteFullyWithRetry(fd, payload.data(), payload.size(),
                                   0),
              EBADF);
    ::unlink(path.c_str());
}

} // namespace
} // namespace viyojit::runtime
