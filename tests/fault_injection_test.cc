/**
 * @file
 * Fault-injection and degraded-mode tests: the seeded SSD fault
 * model, the manager's retry/timeout/abort machinery, the safe-mode
 * governor's budget re-derivation, runtime battery degradation
 * events, broker floor scaling under a shrunken machine budget, and
 * restore under injected read errors.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "battery/battery.hh"
#include "battery/fault_injector.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "core/broker.hh"
#include "core/failure.hh"
#include "core/manager.hh"
#include "core/recovery.hh"
#include "core/safe_mode.hh"
#include "sim/context.hh"
#include "storage/fault_model.hh"
#include "storage/ssd.hh"

namespace viyojit::core
{
namespace
{

// ---------------------------------------------------------------------
// FaultModel unit behaviour
// ---------------------------------------------------------------------

TEST(FaultModelTest, SameSeedReplaysIdenticalDecisions)
{
    storage::FaultModelConfig config;
    config.seed = 99;
    config.writeErrorProb = 0.3;
    config.readErrorProb = 0.2;
    config.tailLatencyProb = 0.1;
    storage::FaultModel a(config);
    storage::FaultModel b(config);

    for (PageNum p = 0; p < 200; ++p) {
        const auto wa = a.onWriteSubmit(0, p);
        const auto wb = b.onWriteSubmit(0, p);
        EXPECT_EQ(wa.status, wb.status);
        EXPECT_EQ(wa.latencyMultiplier, wb.latencyMultiplier);
        EXPECT_EQ(wa.extraLatency, wb.extraLatency);
        const auto ra = a.onReadSubmit(0, p);
        const auto rb = b.onReadSubmit(0, p);
        EXPECT_EQ(ra.status, rb.status);
    }
    EXPECT_EQ(a.injectedWriteErrors(), b.injectedWriteErrors());
    EXPECT_EQ(a.injectedReadErrors(), b.injectedReadErrors());
    EXPECT_EQ(a.tailLatencySpikes(), b.tailLatencySpikes());
}

TEST(FaultModelTest, HardErrorMarksPageBadAndRemapRecovers)
{
    storage::FaultModelConfig config;
    config.writeErrorProb = 0.999; // probabilities live in [0, 1)
    config.hardErrorFraction = 1.0;
    storage::FaultModel model(config);

    // Deterministic stream: walk pages until the (near-certain)
    // first hard error lands.
    PageNum bad = 0;
    storage::FaultModel::Decision first;
    for (; bad < 16; ++bad) {
        first = model.onWriteSubmit(0, bad);
        if (first.status != storage::IoStatus::ok)
            break;
    }
    ASSERT_EQ(first.status, storage::IoStatus::hardError);
    EXPECT_TRUE(model.isBad(0, bad));
    EXPECT_EQ(model.hardErrors(), 1u);

    // The retry remaps the bad page first (extra latency, counted);
    // with injection off it then succeeds and the page is good again.
    model.setWriteErrorProb(0.0);
    const auto second = model.onWriteSubmit(0, bad);
    EXPECT_EQ(second.status, storage::IoStatus::ok);
    EXPECT_EQ(second.extraLatency, config.remapLatency);
    EXPECT_EQ(model.badPageRemaps(), 1u);
    EXPECT_FALSE(model.isBad(0, bad));
}

TEST(FaultModelTest, TailLatencySpikesMultiplyLatency)
{
    storage::FaultModelConfig config;
    config.tailLatencyProb = 0.999;
    storage::FaultModel model(config);
    storage::FaultModel::Decision spiked;
    for (PageNum p = 0; p < 16; ++p) {
        spiked = model.onWriteSubmit(0, p);
        if (spiked.latencyMultiplier > 1.0)
            break;
    }
    EXPECT_EQ(spiked.status, storage::IoStatus::ok);
    EXPECT_EQ(spiked.latencyMultiplier, config.tailLatencyMultiplier);
    EXPECT_GE(model.tailLatencySpikes(), 1u);
}

TEST(FaultModelTest, ExpectedAttemptsAmplifyWithErrorProbability)
{
    storage::FaultModelConfig config;
    storage::FaultModel model(config);
    EXPECT_DOUBLE_EQ(model.expectedWriteAttempts(), 1.0);
    model.setWriteErrorProb(0.5);
    EXPECT_DOUBLE_EQ(model.expectedWriteAttempts(), 2.0);
}

TEST(FaultModelTest, BandwidthDegradationScalesEffectiveBandwidth)
{
    sim::SimContext ctx;
    storage::SsdConfig config;
    storage::Ssd ssd(ctx, config);
    ssd.setFaultModel(std::make_unique<storage::FaultModel>(
        storage::FaultModelConfig{}));
    const double healthy = ssd.effectiveWriteBandwidth();
    ssd.faultModel()->setBandwidthDegradation(0.5);
    EXPECT_DOUBLE_EQ(ssd.effectiveWriteBandwidth(), healthy * 0.5);
}

// ---------------------------------------------------------------------
// Manager retry / timeout / abort machinery
// ---------------------------------------------------------------------

struct FaultedManagerFixture : public ::testing::Test
{
    static constexpr std::uint64_t pages = 64;

    void
    build(const storage::FaultModelConfig &faults,
          std::uint64_t budget, Tick io_timeout = 0,
          Tick per_io_latency = 20_us)
    {
        storage::SsdConfig ssd_config;
        ssd_config.perIoLatency = per_io_latency;
        ssd = std::make_unique<storage::Ssd>(ctx, ssd_config);
        ssd->setFaultModel(
            std::make_unique<storage::FaultModel>(faults));

        ViyojitConfig config;
        config.dirtyBudgetPages = budget;
        config.maxIoRetries = 6;
        config.retryBackoffBase = 10_us;
        config.retryBackoffCap = 100_us;
        config.ioTimeout = io_timeout;
        config.coalesceRuns = coalesceRuns;
        config.maxRunPages = maxRunPages;
        config.extentShift = extentShift;
        manager = std::make_unique<ViyojitManager>(
            ctx, *ssd, config, mmu::MmuCostModel{}, pages);
        base = manager->vmmap(pages * manager->config().pageSize);
        manager->start();
    }

    void
    touch(PageNum page)
    {
        const char byte = static_cast<char>(page * 31 + 1);
        manager->memWrite(base + page * manager->config().pageSize,
                          &byte, 1);
    }

    sim::SimContext ctx;
    std::unique_ptr<storage::Ssd> ssd;
    std::unique_ptr<ViyojitManager> manager;
    Addr base = 0;

    /** Coalesced-IO knobs, set before build(). */
    bool coalesceRuns = false;
    unsigned maxRunPages = 16;
    unsigned extentShift = 0;
};

TEST_F(FaultedManagerFixture, InjectedErrorsAreRetriedAndDataSurvives)
{
    storage::FaultModelConfig faults;
    faults.seed = 5;
    faults.writeErrorProb = 0.3;
    build(faults, /*budget=*/8);

    // Well past the budget: evictions must push copies through the
    // faulty device.
    for (PageNum p = 0; p < pages; ++p)
        touch(p);
    // Stop the self-rescheduling epochs so the queue can settle.
    manager->stop();
    ctx.events().drain();

    EXPECT_GT(manager->ioFaultStats().retries, 0u);
    EXPECT_GT(ssd->faultModel()->injectedWriteErrors(), 0u);

    manager->powerFailureFlush();
    EXPECT_TRUE(manager->verifyDurability());
}

TEST_F(FaultedManagerFixture, BlockingEvictionExhaustionEscalates)
{
    storage::FaultModelConfig faults;
    faults.seed = 17;
    faults.writeErrorProb = 0.999;
    faults.hardErrorFraction = 0.0;
    build(faults, /*budget=*/2);

    // The third distinct dirty page forces a blocking eviction; every
    // attempt fails, and the fault path cannot abandon the page.
    touch(0);
    touch(1);
    EXPECT_THROW(touch(2), FatalError);
}

TEST_F(FaultedManagerFixture, TimeoutsAbandonAttemptsAndAbortCopies)
{
    // Service time (5 ms latency) far beyond the 1 ms deadline: every
    // async attempt is abandoned at its deadline, and after
    // maxIoRetries the copy aborts, leaving the page dirty.
    build(storage::FaultModelConfig{}, /*budget=*/8,
          /*io_timeout=*/1_ms, /*per_io_latency=*/5_ms);

    for (PageNum p = 0; p < 8; ++p)
        touch(p);
    // Epoch boundaries observe the burst and pump proactive copies.
    ctx.events().runUntil(ctx.now() + 200_ms);

    const IoFaultStats &io = manager->ioFaultStats();
    EXPECT_GT(io.timeouts, 0u);
    EXPECT_GT(io.abortedCopies, 0u);
    // Straggling completions of abandoned attempts were dropped.
    EXPECT_GT(io.staleCompletions, 0u);
    // Aborted copies leave their pages dirty — nothing went clean
    // without landing on the device.
    EXPECT_GT(manager->dirtyPageCount(), 0u);

    manager->powerFailureFlush();
    EXPECT_TRUE(manager->verifyDurability());
}

TEST_F(FaultedManagerFixture, RunSplitsOnBadPageAndDataSurvives)
{
    // Coalesced flush against a device injecting hard errors that
    // mark pages bad: a failed slice must split out of its run and
    // retry through the per-page chain, where the fault model's
    // bad-page remap absorbs it.  Nothing may go clean without
    // landing on the device.
    storage::FaultModelConfig faults;
    faults.seed = 41;
    faults.writeErrorProb = 0.25;
    faults.hardErrorFraction = 0.5;
    coalesceRuns = true;
    extentShift = 2;
    build(faults, /*budget=*/8);

    // Sequential sweeps well past the budget: victims are adjacent,
    // so proactive copies and evictions coalesce into runs.  The
    // emergency flush then drains the rest in page order, in full runs
    // through the still-faulty device — with a 16-page run at 25%
    // per-page error probability, splits are near-certain.
    for (int sweep = 0; sweep < 4; ++sweep)
        for (PageNum p = 0; p < pages; ++p)
            touch(p);
    manager->powerFailureFlush();

    const IoFaultStats io = manager->ioFaultStats();
    EXPECT_GT(io.runSubmits, 0u);
    EXPECT_GT(io.runPagesCoalesced, io.runSubmits);
    EXPECT_GT(io.runSplits, 0u)
        << "runSubmits=" << io.runSubmits
        << " runPages=" << io.runPagesCoalesced
        << " retries=" << io.retries;
    EXPECT_GT(ssd->faultModel()->injectedWriteErrors(), 0u);
    EXPECT_TRUE(manager->verifyDurability());
}

TEST_F(FaultedManagerFixture, GroupCompletionsGoStaleAfterRunTimeout)
{
    // Service time far beyond the IO deadline, coalescing on: every
    // page of a submitted run times out (generation bump) before the
    // group completion event fires, so the whole group completion
    // must be dropped as stale — one stale per page of the run.
    coalesceRuns = true;
    build(storage::FaultModelConfig{}, /*budget=*/8,
          /*io_timeout=*/1_ms, /*per_io_latency=*/5_ms);

    for (PageNum p = 0; p < 8; ++p)
        touch(p);
    ctx.events().runUntil(ctx.now() + 200_ms);

    const IoFaultStats io = manager->ioFaultStats();
    EXPECT_GT(io.runSubmits, 0u);
    EXPECT_GT(io.timeouts, 0u);
    EXPECT_GE(io.staleCompletions, io.runPagesCoalesced);

    manager->powerFailureFlush();
    EXPECT_TRUE(manager->verifyDurability());
}

// ---------------------------------------------------------------------
// Safe-mode governor
// ---------------------------------------------------------------------

struct GovernorFixture : public ::testing::Test
{
    static constexpr std::uint64_t pages = 64;
    static constexpr std::uint64_t budget = 16;

    GovernorFixture()
    {
        storage::SsdConfig ssd_config;
        ssd_config.writeBandwidth = 50.0e6;
        ssd_config.perIoLatency = 80_us;
        ssd = std::make_unique<storage::Ssd>(ctx, ssd_config);
        ssd->setFaultModel(
            std::make_unique<storage::FaultModel>(
                storage::FaultModelConfig{}));

        ViyojitConfig config;
        config.dirtyBudgetPages = budget;
        manager = std::make_unique<ViyojitManager>(
            ctx, *ssd, config, mmu::MmuCostModel{}, pages);
        manager->vmmap(pages * config.pageSize);
        manager->start();

        // Battery sized so the healthy derived budget clears the
        // nominal budget with ~30% margin (same sizing rule as the
        // torture harness).
        safeConfig.flushOverheadReserve = 2_ms;
        safeConfig.writeThroughFloorPages = 4;
        const double payload_seconds =
            static_cast<double>(budget * config.pageSize) /
            (ssd_config.writeBandwidth *
             safeConfig.bandwidthSafetyFactor);
        battery::BatteryConfig battery_config;
        battery_config.nominalJoules =
            (ticksToSeconds(safeConfig.flushOverheadReserve) +
             payload_seconds * 1.3) *
            power.flushWatts() /
            (battery_config.chemistryDerate *
             battery_config.depthOfDischarge);
        battery =
            std::make_unique<battery::Battery>(battery_config);
    }

    sim::SimContext ctx;
    std::unique_ptr<storage::Ssd> ssd;
    std::unique_ptr<ViyojitManager> manager;
    std::unique_ptr<battery::Battery> battery;
    battery::PowerModel power;
    SafeModeConfig safeConfig;
};

TEST_F(GovernorFixture, HealthyHardwareKeepsNominalBudget)
{
    SafeModeGovernor governor(*manager, *battery, power, safeConfig);
    EXPECT_EQ(governor.mode(), SafeMode::normal);
    EXPECT_EQ(governor.appliedBudgetPages(), budget);
    EXPECT_GT(governor.derivedBudgetPages(), budget);
}

TEST_F(GovernorFixture, SsdWearShrinksBudgetAndRecedes)
{
    SafeModeGovernor governor(*manager, *battery, power, safeConfig);

    ssd->faultModel()->setBandwidthDegradation(0.5);
    governor.reevaluate();
    EXPECT_EQ(governor.mode(), SafeMode::degraded);
    EXPECT_LT(governor.appliedBudgetPages(), budget);
    EXPECT_GE(governor.appliedBudgetPages(),
              safeConfig.minBudgetPages);
    EXPECT_GE(governor.stats().safeModeEntries, 1u);
    EXPECT_GE(governor.stats().budgetShrinks, 1u);

    ssd->faultModel()->setBandwidthDegradation(1.0);
    governor.reevaluate();
    EXPECT_EQ(governor.mode(), SafeMode::normal);
    EXPECT_EQ(governor.appliedBudgetPages(), budget);
    EXPECT_GE(governor.stats().budgetGrows, 1u);
}

TEST_F(GovernorFixture, BatteryFadeDrivesGovernorThroughListener)
{
    SafeModeGovernor governor(*manager, *battery, power, safeConfig);
    // No manual reevaluate: the capacity listener must react.
    battery->setFailedCellFraction(0.5);
    EXPECT_LT(governor.appliedBudgetPages(), budget);
    EXPECT_NE(governor.mode(), SafeMode::normal);
}

TEST_F(GovernorFixture, DeepDegradationPinsWriteThroughAndHolds41)
{
    SafeModeGovernor governor(*manager, *battery, power, safeConfig);
    battery->setFailedCellFraction(0.9);
    EXPECT_EQ(governor.mode(), SafeMode::writeThrough);
    EXPECT_EQ(governor.appliedBudgetPages(),
              safeConfig.minBudgetPages);
    EXPECT_GE(governor.stats().writeThroughEntries, 1u);

    // Even pinned, the section-4.1 invariant holds on the degraded
    // pack: a cut right now is survivable.
    for (PageNum p = 0; p < 8; ++p) {
        const char byte = static_cast<char>(p + 1);
        manager->memWrite(p * manager->config().pageSize, &byte, 1);
    }
    PowerFailureInjector injector(*manager, *battery, power);
    EXPECT_GE(injector.currentHeadroomJoules(), 0.0);
    const FailureReport report = injector.inject();
    EXPECT_TRUE(report.survived);
    EXPECT_TRUE(report.contentVerified);
}

TEST_F(GovernorFixture, PeriodicModePicksUpSsdWear)
{
    SafeModeGovernor governor(*manager, *battery, power, safeConfig);
    governor.startPeriodic(1_ms);
    ssd->faultModel()->setBandwidthDegradation(0.5);
    ctx.events().runUntil(ctx.now() + 5_ms);
    EXPECT_EQ(governor.mode(), SafeMode::degraded);
    governor.stopPeriodic();
}

TEST_F(GovernorFixture, MeasuredFlushRateRaisesDerivedBudget)
{
    SafeModeGovernor governor(*manager, *battery, power, safeConfig);
    const std::uint64_t nameplate_derived =
        governor.derivedBudgetPages();

    // A coalesced-flush measurement sustaining twice the nameplate
    // rate roughly doubles the derived budget (the flush-overhead
    // reserve keeps it from being exactly 2x).
    governor.setMeasuredFlushBandwidth(
        2.0 * ssd->config().writeBandwidth);
    EXPECT_GT(governor.derivedBudgetPages(),
              nameplate_derived * 3 / 2);
    // The applied budget never exceeds the configured nominal.
    EXPECT_EQ(governor.appliedBudgetPages(), budget);
    EXPECT_EQ(governor.mode(), SafeMode::normal);

    // Reverting to the nameplate model restores the old derivation.
    governor.setMeasuredFlushBandwidth(0.0);
    EXPECT_EQ(governor.derivedBudgetPages(), nameplate_derived);
}

TEST_F(GovernorFixture, MeasuredRateStillDeratesWithLaterSsdWear)
{
    // Degradation that happens AFTER the measurement must still
    // shrink the budget: the measured rate is rescaled by the
    // device's current health factor on every derivation.
    SafeModeGovernor governor(*manager, *battery, power, safeConfig);
    governor.setMeasuredFlushBandwidth(
        2.0 * ssd->config().writeBandwidth);
    const std::uint64_t measured_healthy =
        governor.derivedBudgetPages();

    ssd->faultModel()->setBandwidthDegradation(0.25);
    governor.reevaluate();
    EXPECT_LT(governor.derivedBudgetPages(), measured_healthy / 3);
    EXPECT_EQ(governor.mode(), SafeMode::degraded);
    EXPECT_LT(governor.appliedBudgetPages(), budget);

    ssd->faultModel()->setBandwidthDegradation(1.0);
    governor.reevaluate();
    EXPECT_EQ(governor.derivedBudgetPages(), measured_healthy);
    EXPECT_EQ(governor.mode(), SafeMode::normal);
}

TEST(GovernorCompressionTest, MeasuredRatioRaisesAdmittedBudget)
{
    // The tentpole arithmetic end to end: compressible copy-outs
    // record a measured ratio, the governor scales the admissible
    // dirty budget by the flush-window FLOOR of that ratio — above
    // the configured nominal — and a later incompressible burst
    // drags it straight back down.
    sim::SimContext ctx;
    storage::SsdConfig ssd_config;
    ssd_config.writeBandwidth = 50.0e6;
    ssd_config.enableCompression = true;
    storage::Ssd ssd(ctx, ssd_config);

    ViyojitConfig config;
    config.dirtyBudgetPages = 16;
    ViyojitManager manager(ctx, ssd, config, mmu::MmuCostModel{}, 64);
    const Addr base = manager.vmmap(64 * config.pageSize);
    manager.start();

    battery::PowerModel power;
    SafeModeConfig safe_config;
    safe_config.flushOverheadReserve = 2_ms;
    safe_config.writeThroughFloorPages = 4;
    // Same sizing rule as GovernorFixture: the healthy raw-flush
    // derivation clears the nominal budget with ~30% margin.
    const double payload_seconds =
        static_cast<double>(config.dirtyBudgetPages *
                            config.pageSize) /
        (ssd_config.writeBandwidth *
         safe_config.bandwidthSafetyFactor);
    battery::BatteryConfig battery_config;
    battery_config.nominalJoules =
        (ticksToSeconds(safe_config.flushOverheadReserve) +
         payload_seconds * 1.3) *
        power.flushWatts() /
        (battery_config.chemistryDerate *
         battery_config.depthOfDischarge);
    battery::Battery battery(battery_config);

    SafeModeGovernor governor(manager, battery, power, safe_config);
    EXPECT_EQ(governor.appliedBudgetPages(), 16u);

    // Phase 1: record-style compressible pages through a real flush,
    // so the copy-out path measures real codec output.
    std::vector<char> page(config.pageSize);
    Rng rng(0x600D);
    for (PageNum p = 0; p < 12; ++p) {
        for (std::uint64_t i = 0; i < config.pageSize; ++i)
            page[i] = i % 100 < 20
                          ? static_cast<char>(rng.next() & 0xFF)
                          : static_cast<char>(0x20);
        manager.memWrite(base + p * config.pageSize, page.data(),
                         page.size());
    }
    manager.powerFailureFlush();
    ASSERT_TRUE(manager.verifyDurability());
    const double floor =
        manager.controller().tracker().floorRatio();
    ASSERT_GE(floor, 1.3) << "record payload should clear 1.3x";

    governor.reevaluate();
    EXPECT_GT(governor.appliedBudgetPages(), 16u)
        << "measured compression must raise admitted dirty pages";
    EXPECT_EQ(governor.mode(), SafeMode::normal);

    // Phase 2: an incompressible burst floors the ratio back to 1,
    // and with it the cap back to the configured nominal.
    manager.start();
    for (PageNum p = 0; p < 12; ++p) {
        for (char &c : page)
            c = static_cast<char>(rng.next() & 0xFF);
        manager.memWrite(base + p * config.pageSize, page.data(),
                         page.size());
    }
    manager.powerFailureFlush();
    EXPECT_DOUBLE_EQ(manager.controller().tracker().floorRatio(),
                     1.0);
    governor.reevaluate();
    EXPECT_EQ(governor.appliedBudgetPages(), 16u);
}

// ---------------------------------------------------------------------
// Battery fault injector
// ---------------------------------------------------------------------

TEST(BatteryFaultInjectorTest, SameSeedSameDegradationTrajectory)
{
    battery::BatteryFaultConfig config;
    config.seed = 12;
    config.checkInterval = 1_ms;
    config.cellFailureProb = 0.3;
    config.fadeProb = 0.2;
    config.recoveryProb = 0.1;

    auto run = [&config]() {
        sim::SimContext ctx;
        battery::Battery battery{battery::BatteryConfig{}};
        battery::BatteryFaultInjector injector(ctx, battery, config);
        injector.start();
        ctx.events().runUntil(100_ms);
        injector.stop();
        return std::tuple{injector.stats().cellFailureEvents,
                          injector.stats().fadeEvents,
                          injector.stats().recoveryEvents,
                          battery.effectiveJoules()};
    };
    EXPECT_EQ(run(), run());
}

TEST(BatteryFaultInjectorTest, EventsFireListenersAndRespectCap)
{
    sim::SimContext ctx;
    battery::Battery battery{battery::BatteryConfig{}};

    battery::BatteryFaultConfig config;
    config.checkInterval = 1_ms;
    config.cellFailureProb = 1.0;
    config.cellFailureStep = 0.1;
    config.maxFailedFraction = 0.3;

    std::uint64_t notifications = 0;
    battery.addCapacityListener(
        [&notifications](double) { ++notifications; });

    battery::BatteryFaultInjector injector(ctx, battery, config);
    injector.start();
    ctx.events().runUntil(20_ms);
    injector.stop();

    EXPECT_GT(injector.stats().cellFailureEvents, 0u);
    EXPECT_GT(notifications, 0u);
    EXPECT_LE(battery.failedCellFraction(),
              config.maxFailedFraction + 1e-9);
}

TEST(BatteryFaultInjectorTest, StopMakesPendingDrawsNoOps)
{
    sim::SimContext ctx;
    battery::Battery battery{battery::BatteryConfig{}};
    battery::BatteryFaultConfig config;
    config.checkInterval = 1_ms;
    config.cellFailureProb = 1.0;
    battery::BatteryFaultInjector injector(ctx, battery, config);
    injector.start();
    ctx.events().runUntil(5_ms);
    injector.stop();
    const std::uint64_t events = injector.stats().cellFailureEvents;
    ctx.events().runUntil(50_ms);
    EXPECT_EQ(injector.stats().cellFailureEvents, events);
}

// ---------------------------------------------------------------------
// Broker under a degraded machine budget
// ---------------------------------------------------------------------

struct BrokerDegradationFixture : public ::testing::Test
{
    static constexpr std::uint64_t pages = 64;

    BrokerDegradationFixture() : ssd(ctx, storage::SsdConfig{})
    {
        ViyojitConfig config;
        config.dirtyBudgetPages = 8;
        a = std::make_unique<ViyojitManager>(
            ctx, ssd, config, mmu::MmuCostModel{}, pages, 0);
        b = std::make_unique<ViyojitManager>(
            ctx, ssd, config, mmu::MmuCostModel{}, pages, 1);
    }

    sim::SimContext ctx;
    storage::Ssd ssd;
    std::unique_ptr<ViyojitManager> a;
    std::unique_ptr<ViyojitManager> b;
};

TEST_F(BrokerDegradationFixture, RegistrationStillRejectsOverdraft)
{
    BatteryBudgetBroker broker(16);
    broker.addTenant(*a, {.minPages = 10});
    EXPECT_THROW(broker.addTenant(*b, {.minPages = 10}), FatalError);
}

TEST_F(BrokerDegradationFixture, ShrunkBudgetScalesFloorsNotFatal)
{
    BatteryBudgetBroker broker(16);
    broker.addTenant(*a, {.minPages = 8});
    broker.addTenant(*b, {.minPages = 8});

    // A degraded battery no longer covers the contracted floors: the
    // broker scales them proportionally instead of oversubscribing.
    broker.setTotalPages(8);
    EXPECT_EQ(broker.totalPages(), 8u);
    const std::uint64_t total =
        broker.allocationOf(0) + broker.allocationOf(1);
    EXPECT_LE(total, 8u);
    EXPECT_GE(broker.allocationOf(0), 1u);
    EXPECT_GE(broker.allocationOf(1), 1u);

    // Recovery restores the contracted minimums.
    broker.setTotalPages(16);
    EXPECT_GE(broker.allocationOf(0), 8u);
    EXPECT_GE(broker.allocationOf(1), 8u);
}

TEST_F(BrokerDegradationFixture, AttachedBatteryRebalancesOnFade)
{
    battery::BatteryConfig battery_config;
    battery_config.nominalJoules = 4000.0;
    battery::Battery battery(battery_config);
    const battery::DirtyBudgetCalculator calc(
        battery::PowerModel{}, 2.0e9);

    BatteryBudgetBroker broker(
        calc.budgetPages(battery.effectiveJoules(),
                         a->config().pageSize));
    broker.addTenant(*a, {.minPages = 2});
    broker.addTenant(*b, {.minPages = 2});
    broker.attachBattery(battery, calc, a->config().pageSize);

    const std::uint64_t healthy = broker.totalPages();
    battery.setFailedCellFraction(0.5);
    EXPECT_LT(broker.totalPages(), healthy);
    EXPECT_GE(broker.totalPages(), 1u);
    battery.setFailedCellFraction(0.0);
    EXPECT_EQ(broker.totalPages(), healthy);
}

// ---------------------------------------------------------------------
// Restore under injected read errors
// ---------------------------------------------------------------------

struct FaultedRecoveryFixture : public ::testing::Test
{
    static constexpr std::uint64_t pages = 64;
    static constexpr std::uint64_t pageSize = 4096;

    FaultedRecoveryFixture() : ssd(ctx, storage::SsdConfig{})
    {
        // Seed the image on the ideal device, then attach the faults.
        for (PageNum p = 0; p < pages; ++p)
            ssd.writePageSync({0, p}, p + 1, pageSize);
        ctx.events().drain();
    }

    void
    injectReadErrors(double prob, std::uint64_t seed = 3)
    {
        storage::FaultModelConfig config;
        config.seed = seed;
        config.readErrorProb = prob;
        ssd.setFaultModel(
            std::make_unique<storage::FaultModel>(config));
    }

    sim::SimContext ctx;
    storage::Ssd ssd;
};

TEST_F(FaultedRecoveryFixture, DemandFetchesRetryThroughReadErrors)
{
    injectReadErrors(0.4);
    RecoveryManager recovery(ctx, ssd, 0, pages, pageSize,
                             RestoreStrategy::demandOnly);
    recovery.begin();
    for (PageNum p = 0; p < pages; ++p)
        recovery.access(p);
    EXPECT_TRUE(recovery.fullyResident());
    EXPECT_GT(recovery.stats().readRetries, 0u);
}

TEST_F(FaultedRecoveryFixture, BackgroundSweepSkipsAndRevisits)
{
    injectReadErrors(0.4);
    RecoveryManager recovery(ctx, ssd, 0, pages, pageSize,
                             RestoreStrategy::demandPlusBackground);
    recovery.begin();
    recovery.waitUntilFullyResident();
    EXPECT_TRUE(recovery.fullyResident());
    EXPECT_GT(recovery.stats().sweepSkips, 0u);
    EXPECT_GT(recovery.stats().fullyResidentAt, 0u);
}

TEST_F(FaultedRecoveryFixture, EagerRestoreSurvivesReadErrors)
{
    injectReadErrors(0.3);
    RecoveryManager recovery(ctx, ssd, 0, pages, pageSize,
                             RestoreStrategy::eager);
    recovery.begin();
    recovery.waitUntilFullyResident();
    EXPECT_TRUE(recovery.fullyResident());
    EXPECT_GT(recovery.stats().fullyResidentAt, 0u);
}

TEST_F(FaultedRecoveryFixture, DemandRetryExhaustionQuarantines)
{
    injectReadErrors(0.999);
    RecoveryManager recovery(ctx, ssd, 0, pages, pageSize,
                             RestoreStrategy::demandOnly,
                             /*max_outstanding_reads=*/16,
                             /*max_read_retries=*/3);
    recovery.begin();
    // Exhausting the demand-read retry budget quarantines the page
    // instead of killing the process: access returns (the caller gets
    // a zero/stale page plus a quarantine record) and recovery keeps
    // making progress.
    recovery.access(0);
    EXPECT_TRUE(recovery.isQuarantined(0));
    EXPECT_EQ(recovery.stats().demandRetryExhausted, 1u);
    EXPECT_EQ(recovery.stats().quarantinedPages, 1u);
    EXPECT_EQ(recovery.quarantinedPages(),
              std::vector<PageNum>{0});
}

TEST_F(FaultedRecoveryFixture, SweepRevisitExhaustionQuarantines)
{
    injectReadErrors(0.95);
    RecoveryManager recovery(ctx, ssd, 0, pages, pageSize,
                             RestoreStrategy::demandPlusBackground,
                             /*max_outstanding_reads=*/8,
                             /*max_read_retries=*/8,
                             /*max_revisit_passes=*/2);
    recovery.begin();
    // No foreground accesses: every page settles through the sweep.
    // At this error rate most pages burn through their revisit passes
    // and must be quarantined — the restore still has to terminate
    // with every page settled one way or the other.
    recovery.waitUntilFullyResident();
    EXPECT_TRUE(recovery.fullyResident());
    EXPECT_EQ(recovery.residentPages(), pages);
    const RecoveryStats &stats = recovery.stats();
    EXPECT_GT(stats.sweepSkips, 0u);
    EXPECT_GT(stats.sweepRevisitExhausted, 0u);
    EXPECT_EQ(stats.quarantinedPages, stats.sweepRevisitExhausted);
    EXPECT_EQ(recovery.quarantinedPages().size(),
              stats.quarantinedPages);
    // Quarantined pages count as settled for the availability clock.
    EXPECT_GT(stats.fullyResidentAt, 0u);
}

TEST_F(FaultedRecoveryFixture, ManifestMismatchesClassifyByEpoch)
{
    // No device faults: every failure below comes from checksum
    // verification.  The image holds hash p+1 per page; three
    // manifest entries lie, each on a different side of the sealed
    // epoch boundary.
    RecoveryManifest manifest;
    manifest.lastSealedEpoch = 5;
    manifest.pages.resize(pages);
    for (PageNum p = 0; p < pages; ++p) {
        manifest.pages[p].crc = p + 1;
        manifest.pages[p].epoch = 4;
        manifest.pages[p].valid = true;
    }
    manifest.pages[7].crc = 0xBAD;
    manifest.pages[7].epoch = 6; // newer than the seal: torn tail
    manifest.pages[8].crc = 0xBAD;
    manifest.pages[8].epoch = 5; // at the seal: stale epoch
    manifest.pages[9].crc = 0xBAD;
    manifest.pages[9].epoch = 3; // long sealed: silent corruption

    RecoveryManager recovery(ctx, ssd, 0, pages, pageSize,
                             RestoreStrategy::demandOnly,
                             /*max_outstanding_reads=*/16,
                             /*max_read_retries=*/1);
    recovery.attachManifest(std::move(manifest));
    recovery.begin();
    for (PageNum p = 0; p < pages; ++p)
        recovery.access(p);

    const RecoveryStats &stats = recovery.stats();
    EXPECT_EQ(stats.checksumMismatches, 3u);
    EXPECT_EQ(stats.tornRunPages, 1u);
    EXPECT_EQ(stats.staleEpochPages, 1u);
    EXPECT_EQ(stats.silentCorruptPages, 1u);
    EXPECT_EQ(stats.demandRetryExhausted, 3u);
    EXPECT_EQ(recovery.quarantinedPages(),
              (std::vector<PageNum>{7, 8, 9}));
    // The clean majority verified and loaded normally.
    EXPECT_FALSE(recovery.isQuarantined(0));
    EXPECT_TRUE(recovery.fullyResident());
    // Settlement includes the quarantined trio: the availability
    // clock stops when the last page is DECIDED, not perfect.
    EXPECT_GT(stats.fullyResidentAt, 0u);
}

} // namespace
} // namespace viyojit::core
