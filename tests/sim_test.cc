/**
 * @file
 * Unit tests for the simulation core: virtual clock and event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/context.hh"

namespace viyojit::sim
{
namespace
{

TEST(ClockTest, StartsAtZero)
{
    VirtualClock clock;
    EXPECT_EQ(clock.now(), 0u);
}

TEST(ClockTest, AdvanceAccumulates)
{
    VirtualClock clock;
    clock.advance(10);
    clock.advance(5);
    EXPECT_EQ(clock.now(), 15u);
}

TEST(ClockTest, AdvanceToAbsolute)
{
    VirtualClock clock;
    clock.advanceTo(100);
    EXPECT_EQ(clock.now(), 100u);
}

TEST(ClockTest, Reset)
{
    VirtualClock clock;
    clock.advance(7);
    clock.reset();
    EXPECT_EQ(clock.now(), 0u);
}

TEST(EventQueueTest, RunsInTimeOrder)
{
    VirtualClock clock;
    EventQueue q(clock);
    std::vector<int> order;
    q.schedule(30, [&]() { order.push_back(3); });
    q.schedule(10, [&]() { order.push_back(1); });
    q.schedule(20, [&]() { order.push_back(2); });
    q.drain();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(clock.now(), 30u);
}

TEST(EventQueueTest, SameTickFifo)
{
    VirtualClock clock;
    EventQueue q(clock);
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        q.schedule(10, [&order, i]() { order.push_back(i); });
    q.drain();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary)
{
    VirtualClock clock;
    EventQueue q(clock);
    int fired = 0;
    q.schedule(10, [&]() { ++fired; });
    q.schedule(20, [&]() { ++fired; });
    q.runUntil(15);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(clock.now(), 15u);
    EXPECT_EQ(q.pendingCount(), 1u);
}

TEST(EventQueueTest, RunUntilInclusive)
{
    VirtualClock clock;
    EventQueue q(clock);
    int fired = 0;
    q.schedule(10, [&]() { ++fired; });
    q.runUntil(10);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueTest, LateEventDoesNotRewindClock)
{
    VirtualClock clock;
    EventQueue q(clock);
    q.schedule(10, []() {});
    clock.advanceTo(50); // caller modelled a synchronous cost
    q.runUntil(50);
    EXPECT_EQ(clock.now(), 50u);
}

TEST(EventQueueTest, ScheduleAfterUsesNow)
{
    VirtualClock clock;
    EventQueue q(clock);
    clock.advanceTo(100);
    Tick fired_at = 0;
    q.scheduleAfter(25, [&]() { fired_at = clock.now(); });
    q.drain();
    EXPECT_EQ(fired_at, 125u);
}

TEST(EventQueueTest, EventsCanScheduleEvents)
{
    VirtualClock clock;
    EventQueue q(clock);
    int depth = 0;
    std::function<void()> chain = [&]() {
        if (++depth < 5)
            q.scheduleAfter(10, chain);
    };
    q.schedule(10, chain);
    q.drain();
    EXPECT_EQ(depth, 5);
    EXPECT_EQ(clock.now(), 50u);
}

TEST(EventQueueTest, NextEventTimeAndEmpty)
{
    VirtualClock clock;
    EventQueue q(clock);
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.nextEventTime(), maxTick);
    q.schedule(42, []() {});
    EXPECT_EQ(q.nextEventTime(), 42u);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueueTest, ClearDropsEvents)
{
    VirtualClock clock;
    EventQueue q(clock);
    int fired = 0;
    q.schedule(10, [&]() { ++fired; });
    q.clear();
    q.drain();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, RunOneReturnsFalseWhenEmpty)
{
    VirtualClock clock;
    EventQueue q(clock);
    EXPECT_FALSE(q.runOne());
}

TEST(SimContextTest, BundlesSingletons)
{
    SimContext ctx;
    EXPECT_EQ(ctx.now(), 0u);
    ctx.clock().advance(5);
    EXPECT_EQ(ctx.now(), 5u);
    ctx.stats().counter("x").increment();
    EXPECT_EQ(ctx.stats().counterValue("x"), 1u);
}

} // namespace
} // namespace viyojit::sim
