/**
 * @file
 * Seeded power-cut torture runs.
 *
 * The main run takes its seed from VIYOJIT_TORTURE_SEED when set (so
 * CI can randomize and a failure replays exactly); on failure the
 * seed and the replay incantation are printed.  A separate case
 * pins the determinism contract: the same seed must produce the
 * identical run, counter for counter.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/torture.hh"

namespace viyojit::core
{
namespace
{

std::uint64_t
tortureSeed()
{
    const char *env = std::getenv("VIYOJIT_TORTURE_SEED");
    if (env == nullptr || *env == '\0')
        return 20170624; // ISCA'17 vintage default
    return std::strtoull(env, nullptr, 10);
}

TEST(TortureTest, SurvivesSeededPowerCutsUnderFaultInjection)
{
    TortureConfig config;
    config.seed = tortureSeed();
    config.cuts = 500;

    const TortureResult result = runTorture(config);

    EXPECT_TRUE(result.passed)
        << result.failureDetail << "\n  seed: " << config.seed
        << "\n  replay: VIYOJIT_TORTURE_SEED=" << config.seed
        << " ./torture_test";
    EXPECT_EQ(result.cutsRun, config.cuts);

    // The run must have genuinely exercised the fault machinery, not
    // idled through a healthy system.
    EXPECT_GT(result.totalRetries, 0u) << "seed " << config.seed;
    EXPECT_GT(result.injectedWriteErrors, 0u) << "seed " << config.seed;
    EXPECT_GT(result.cutsMidFlight, 0u) << "seed " << config.seed;
    EXPECT_GT(result.cutsInSafeMode, 0u) << "seed " << config.seed;
    EXPECT_GT(result.budgetShrinks, 0u) << "seed " << config.seed;
    EXPECT_GT(result.batteryCellFailures, 0u) << "seed " << config.seed;
    EXPECT_GE(result.minHeadroomJoules, 0.0) << "seed " << config.seed;
}

TEST(TortureTest, SurvivesPowerCutsDuringBatchedFlush)
{
    // Same harness, with the coalesced-IO flush path on: victims
    // batch into vectored run writes whose durability is granted
    // only at the single completion event, so cuts land inside the
    // torn-run window — submitted, not yet durable.  A torn run must
    // never verify as clean; the emergency flush must re-persist it.
    TortureConfig config;
    config.seed = tortureSeed() ^ 0xba7c4;
    config.cuts = 300;
    config.coalesceRuns = true;
    config.maxRunPages = 16;
    config.extentShift = 2;
    config.maxBridgePages = 4;

    const TortureResult result = runTorture(config);

    EXPECT_TRUE(result.passed)
        << result.failureDetail << "\n  seed: " << config.seed
        << "\n  replay: VIYOJIT_TORTURE_SEED=" << config.seed
        << " ./torture_test";
    EXPECT_EQ(result.cutsRun, config.cuts);

    // Evidence the batched path was genuinely tortured: runs were
    // submitted and carried more pages than IOs, cuts landed with a
    // run still in flight, and injected IO errors split runs back
    // into per-page retries.
    EXPECT_GT(result.runSubmits, 0u) << "seed " << config.seed;
    EXPECT_GT(result.runPagesCoalesced, result.runSubmits)
        << "seed " << config.seed;
    EXPECT_GT(result.cutsMidRun, 0u) << "seed " << config.seed;
    EXPECT_GT(result.runSplits, 0u) << "seed " << config.seed;
    EXPECT_GE(result.minHeadroomJoules, 0.0) << "seed " << config.seed;
}

TEST(TortureTest, SurvivesPowerCutsDuringCompressedFlush)
{
    // Compressed copy-out on top of the coalesced path: every flush
    // ships the codec's measured stored size, so cuts land in the
    // middle of shortened transfers and the recovery audit verifies
    // RAW content against what those transfers claimed to persist.
    TortureConfig config;
    config.seed = tortureSeed() ^ 0xc0dec;
    config.cuts = 300;
    config.coalesceRuns = true;
    config.maxRunPages = 16;
    config.extentShift = 2;
    config.compressFlush = true;

    const TortureResult result = runTorture(config);

    EXPECT_TRUE(result.passed)
        << result.failureDetail << "\n  seed: " << config.seed
        << "\n  replay: VIYOJIT_TORTURE_SEED=" << config.seed
        << " ./torture_test";
    EXPECT_EQ(result.cutsRun, config.cuts);
    EXPECT_EQ(result.auditUnattributed, 0u) << "seed " << config.seed;

    // Evidence the compressed path was genuinely tortured: cuts
    // landed mid-flush, and the SSD moved measurably fewer wire
    // bytes than the raw bytes those transfers retired.
    EXPECT_GT(result.cutsMidFlight, 0u) << "seed " << config.seed;
    EXPECT_GT(result.ssdLogicalBytesWritten, 0u) << "seed " << config.seed;
    EXPECT_LT(result.ssdBytesWritten,
              result.ssdLogicalBytesWritten / 2)
        << "seed " << config.seed;
    EXPECT_GE(result.minHeadroomJoules, 0.0) << "seed " << config.seed;
}

TEST(TortureTest, BatchedFlushSameSeedReplaysIdentically)
{
    TortureConfig config;
    config.seed = 31;
    config.cuts = 40;
    config.coalesceRuns = true;
    config.extentShift = 2;
    config.maxBridgePages = 4;

    const TortureResult first = runTorture(config);
    const TortureResult second = runTorture(config);

    EXPECT_EQ(first.passed, second.passed);
    EXPECT_EQ(first.runSubmits, second.runSubmits);
    EXPECT_EQ(first.runPagesCoalesced, second.runPagesCoalesced);
    EXPECT_EQ(first.runSplits, second.runSplits);
    EXPECT_EQ(first.cutsMidRun, second.cutsMidRun);
    EXPECT_EQ(first.totalRetries, second.totalRetries);
    EXPECT_DOUBLE_EQ(first.minHeadroomJoules,
                     second.minHeadroomJoules);
}

TEST(TortureTest, ParanoidShortRunHoldsInvariantAfterEveryOp)
{
    TortureConfig config;
    config.seed = tortureSeed() ^ 0x5eed;
    config.cuts = 40;
    config.paranoid = true;
    const TortureResult result = runTorture(config);
    EXPECT_TRUE(result.passed)
        << result.failureDetail << "\n  seed: " << config.seed;
}

TEST(TortureTest, MultiShardDurabilityHoldsAtEveryCut)
{
    // Four managers drawing quotas from one BudgetPool, one battery
    // behind them.  The harness itself fails a cut when the SUMMED
    // dirty count exceeds the pooled budget or the serialized flush
    // does not fit the (degraded) battery window; the assertions
    // below additionally require evidence that the run exercised the
    // distributed-budget machinery rather than idling inside one
    // shard.
    TortureConfig config;
    config.seed = tortureSeed() ^ 0x54a7d;
    config.cuts = 120;
    config.shards = 4;

    const TortureResult result = runTorture(config);

    EXPECT_TRUE(result.passed)
        << result.failureDetail << "\n  seed: " << config.seed;
    EXPECT_EQ(result.cutsRun, config.cuts);
    EXPECT_EQ(result.shards, 4u);

    // The summed dirty set stayed within the pooled budget at every
    // cut (the harness fails otherwise), and actually approached it:
    // a run whose peak never neared the budget would not have tested
    // the bound.
    EXPECT_LE(result.maxSummedDirtyPages, config.dirtyBudgetPages);
    EXPECT_GT(result.maxSummedDirtyPages, 0u);

    // Quotas migrated through the pool, and the governor degraded
    // the pooled budget at least once.
    EXPECT_GT(result.quotaBorrowedPages, 0u);
    EXPECT_GT(result.quotaReturnedPages, 0u);
    EXPECT_GT(result.budgetShrinks, 0u);
    EXPECT_GE(result.minHeadroomJoules, 0.0);
    EXPECT_LE(result.budgetPoolPages, config.dirtyBudgetPages);
}

TEST(TortureTest, MultiShardSameSeedReplaysIdentically)
{
    TortureConfig config;
    config.seed = 23;
    config.cuts = 40;
    config.shards = 4;

    const TortureResult first = runTorture(config);
    const TortureResult second = runTorture(config);

    EXPECT_EQ(first.passed, second.passed);
    EXPECT_EQ(first.maxSummedDirtyPages, second.maxSummedDirtyPages);
    EXPECT_EQ(first.quotaBorrowedPages, second.quotaBorrowedPages);
    EXPECT_EQ(first.quotaReturnedPages, second.quotaReturnedPages);
    EXPECT_EQ(first.totalRetries, second.totalRetries);
    EXPECT_EQ(first.injectedWriteErrors, second.injectedWriteErrors);
    EXPECT_DOUBLE_EQ(first.minHeadroomJoules,
                     second.minHeadroomJoules);
}

TEST(TortureTest, SameSeedReplaysIdentically)
{
    TortureConfig config;
    config.seed = 7;
    config.cuts = 60;

    const TortureResult first = runTorture(config);
    const TortureResult second = runTorture(config);

    EXPECT_EQ(first.passed, second.passed);
    EXPECT_EQ(first.cutsRun, second.cutsRun);
    EXPECT_EQ(first.cutsMidFlight, second.cutsMidFlight);
    EXPECT_EQ(first.cutsInSafeMode, second.cutsInSafeMode);
    EXPECT_EQ(first.totalRetries, second.totalRetries);
    EXPECT_EQ(first.totalAborts, second.totalAborts);
    EXPECT_EQ(first.injectedWriteErrors, second.injectedWriteErrors);
    EXPECT_EQ(first.safeModeEntries, second.safeModeEntries);
    EXPECT_EQ(first.budgetShrinks, second.budgetShrinks);
    EXPECT_EQ(first.batteryCellFailures, second.batteryCellFailures);
    EXPECT_EQ(first.batteryRecoveries, second.batteryRecoveries);
    EXPECT_DOUBLE_EQ(first.minHeadroomJoules,
                     second.minHeadroomJoules);
}

// ---------------------------------------------------------------------
// Corruption torture: silent faults on, verified durability must
// catch every one.  `passed` in these runs means zero silent
// wrong-data acceptance — every settled-image mismatch the post-cut
// audit finds is attributed to an injected fault, an aborted copy, or
// an unsettled page.  One unattributed mismatch fails the run.
// ---------------------------------------------------------------------

TortureConfig
corruptionConfig(std::uint64_t seed)
{
    TortureConfig config;
    config.seed = seed;
    config.cuts = 120;
    config.silentBitFlipProb = 0.01;
    config.droppedWriteProb = 0.005;
    config.misdirectedWriteProb = 0.002;
    config.scrubPagesPerRound = 32;
    return config;
}

TEST(CorruptionTortureTest, ZeroSilentAcceptanceAcrossSeeds)
{
    // Three trajectories derived from the (CI-randomized) master
    // seed: every run must hold the zero-silent-acceptance bar.
    const std::uint64_t master = tortureSeed();
    for (std::uint64_t salt : {0x0ULL, 0xc0fefeULL, 0x5c4bbedULL}) {
        const TortureConfig config = corruptionConfig(master ^ salt);
        const TortureResult result = runTorture(config);
        EXPECT_TRUE(result.passed)
            << result.failureDetail << "\n  seed: " << config.seed
            << "\n  replay: VIYOJIT_TORTURE_SEED=" << config.seed
            << " ./torture_test";
        EXPECT_EQ(result.auditUnattributed, 0u)
            << "seed " << config.seed;

        // Evidence the verified-durability machinery was genuinely
        // exercised: the injector lied, the read-back verify caught
        // flushes, and the scrubber scanned settled pages.
        EXPECT_GT(result.injectedSilentFaults, 0u)
            << "seed " << config.seed;
        EXPECT_GT(result.verifyFailures, 0u) << "seed " << config.seed;
        EXPECT_GT(result.scrubScanned, 0u) << "seed " << config.seed;
    }
}

TEST(CorruptionTortureTest, BatchedFlushPowerCutWithCorruption)
{
    // The acceptance-critical composition: cuts landing inside
    // coalesced run writes WHILE the device is silently corrupting
    // acknowledged IO.  A torn run must classify as torn, a rotted
    // page as injected — never as silently accepted wrong data.
    TortureConfig config = corruptionConfig(tortureSeed() ^ 0xba7c4);
    config.cuts = 150;
    config.coalesceRuns = true;
    config.maxRunPages = 16;
    config.extentShift = 2;
    config.maxBridgePages = 4;

    const TortureResult result = runTorture(config);

    EXPECT_TRUE(result.passed)
        << result.failureDetail << "\n  seed: " << config.seed
        << "\n  replay: VIYOJIT_TORTURE_SEED=" << config.seed
        << " ./torture_test";
    EXPECT_EQ(result.auditUnattributed, 0u) << "seed " << config.seed;
    EXPECT_GT(result.injectedSilentFaults, 0u) << "seed " << config.seed;
    EXPECT_GT(result.runSubmits, 0u) << "seed " << config.seed;
    EXPECT_GT(result.cutsMidRun, 0u) << "seed " << config.seed;
}

TEST(CorruptionTortureTest, CompressedFlushPowerCutWithCorruption)
{
    // Compression composed with silent corruption: a transfer that
    // is both shortened by the codec and lied about by the device
    // must still classify as injected — never as silently accepted
    // wrong data.  The audit compares RAW content hashes, so a
    // corrupted compressed stream surfaces exactly like a raw one.
    TortureConfig config = corruptionConfig(tortureSeed() ^ 0xc03dec);
    config.cuts = 150;
    config.coalesceRuns = true;
    config.maxRunPages = 16;
    config.compressFlush = true;

    const TortureResult result = runTorture(config);

    EXPECT_TRUE(result.passed)
        << result.failureDetail << "\n  seed: " << config.seed
        << "\n  replay: VIYOJIT_TORTURE_SEED=" << config.seed
        << " ./torture_test";
    EXPECT_EQ(result.auditUnattributed, 0u) << "seed " << config.seed;
    EXPECT_GT(result.injectedSilentFaults, 0u) << "seed " << config.seed;
    EXPECT_LT(result.ssdBytesWritten, result.ssdLogicalBytesWritten)
        << "seed " << config.seed;
}

TEST(CorruptionTortureTest, ShardedCorruptionSurvives)
{
    TortureConfig config = corruptionConfig(tortureSeed() ^ 0x54a7d);
    config.shards = 4;

    const TortureResult result = runTorture(config);

    EXPECT_TRUE(result.passed)
        << result.failureDetail << "\n  seed: " << config.seed
        << "\n  replay: VIYOJIT_TORTURE_SEED=" << config.seed
        << " ./torture_test";
    EXPECT_EQ(result.auditUnattributed, 0u) << "seed " << config.seed;
    EXPECT_GT(result.injectedSilentFaults, 0u) << "seed " << config.seed;
    EXPECT_LE(result.maxSummedDirtyPages, config.dirtyBudgetPages);
}

TEST(CorruptionTortureTest, ScrubRepairsRottedDurableCopies)
{
    // Higher fault pressure and an aggressive scrub cadence: the
    // scrubber must actually find rotted durable copies and repair
    // them from the still-clean DRAM copy.
    TortureConfig config = corruptionConfig(tortureSeed() ^ 0x5c4b);
    config.cuts = 80;
    config.silentBitFlipProb = 0.03;
    config.droppedWriteProb = 0.02;
    config.scrubPagesPerRound = 128;

    const TortureResult result = runTorture(config);

    EXPECT_TRUE(result.passed)
        << result.failureDetail << "\n  seed: " << config.seed;
    EXPECT_EQ(result.auditUnattributed, 0u) << "seed " << config.seed;
    EXPECT_GT(result.scrubScanned, 0u) << "seed " << config.seed;
    EXPECT_GT(result.scrubMismatches, 0u) << "seed " << config.seed;
    EXPECT_GT(result.scrubRepairs, 0u) << "seed " << config.seed;
}

TEST(CorruptionTortureTest, SameSeedReplaysIdentically)
{
    TortureConfig config = corruptionConfig(101);
    config.cuts = 40;

    const TortureResult first = runTorture(config);
    const TortureResult second = runTorture(config);

    EXPECT_EQ(first.passed, second.passed);
    EXPECT_EQ(first.injectedSilentFaults, second.injectedSilentFaults);
    EXPECT_EQ(first.verifyFailures, second.verifyFailures);
    EXPECT_EQ(first.auditMismatches, second.auditMismatches);
    EXPECT_EQ(first.auditUnattributed, second.auditUnattributed);
    EXPECT_EQ(first.scrubScanned, second.scrubScanned);
    EXPECT_EQ(first.scrubMismatches, second.scrubMismatches);
    EXPECT_EQ(first.scrubRepairs, second.scrubRepairs);
}

TEST(TortureTest, DistinctSeedsExploreDistinctTrajectories)
{
    TortureConfig a;
    a.seed = 11;
    a.cuts = 30;
    TortureConfig b = a;
    b.seed = 13;
    const TortureResult ra = runTorture(a);
    const TortureResult rb = runTorture(b);
    EXPECT_TRUE(ra.passed) << ra.failureDetail;
    EXPECT_TRUE(rb.passed) << rb.failureDetail;
    // Different seeds should not replay the same event stream.
    EXPECT_FALSE(ra.totalRetries == rb.totalRetries &&
                 ra.injectedWriteErrors == rb.injectedWriteErrors &&
                 ra.batteryCellFailures == rb.batteryCellFailures &&
                 ra.minHeadroomJoules == rb.minHeadroomJoules);
}

} // namespace
} // namespace viyojit::core
