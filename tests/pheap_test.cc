/**
 * @file
 * Unit tests for the persistent heap: formatting, allocation classes,
 * free-list reuse, recovery, and accounting against both the plain
 * and the simulated NV spaces.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "pheap/nv_space.hh"
#include "pheap/pheap.hh"

namespace viyojit::pheap
{
namespace
{

struct PheapFixture : public ::testing::Test
{
    PheapFixture()
        : buffer(1_MiB, 0), space(buffer.data(), buffer.size())
    {}

    std::vector<char> buffer;
    PlainNvSpace space;
};

TEST_F(PheapFixture, CreateFormatsHeader)
{
    PersistentHeap heap = PersistentHeap::create(space);
    EXPECT_EQ(heap.root(), nullOffset);
    EXPECT_EQ(heap.stats().liveAllocations, 0u);
}

TEST_F(PheapFixture, AttachToUnformattedFails)
{
    EXPECT_THROW(PersistentHeap::attach(space), FatalError);
}

TEST_F(PheapFixture, AllocReturnsNonNullDistinctOffsets)
{
    PersistentHeap heap = PersistentHeap::create(space);
    std::set<NvOffset> seen;
    for (int i = 0; i < 100; ++i) {
        const NvOffset off = heap.alloc(64);
        ASSERT_NE(off, nullOffset);
        EXPECT_TRUE(seen.insert(off).second);
    }
    EXPECT_EQ(heap.stats().liveAllocations, 100u);
}

TEST_F(PheapFixture, AllocationsAreUsable)
{
    PersistentHeap heap = PersistentHeap::create(space);
    const NvOffset a = heap.alloc(32);
    const NvOffset b = heap.alloc(32);
    heap.store<std::uint64_t>(a, 0xdeadbeef);
    heap.store<std::uint64_t>(b, 0xcafef00d);
    EXPECT_EQ(heap.load<std::uint64_t>(a), 0xdeadbeefu);
    EXPECT_EQ(heap.load<std::uint64_t>(b), 0xcafef00du);
}

TEST_F(PheapFixture, AllocSizeRoundsToClass)
{
    PersistentHeap heap = PersistentHeap::create(space);
    EXPECT_EQ(heap.allocSize(heap.alloc(1)), 16u);
    EXPECT_EQ(heap.allocSize(heap.alloc(16)), 16u);
    EXPECT_EQ(heap.allocSize(heap.alloc(17)), 32u);
    EXPECT_EQ(heap.allocSize(heap.alloc(1000)), 1024u);
    EXPECT_EQ(heap.allocSize(heap.alloc(1025)), 2048u);
}

TEST_F(PheapFixture, FreeThenAllocReusesBlock)
{
    PersistentHeap heap = PersistentHeap::create(space);
    const NvOffset a = heap.alloc(64);
    heap.free(a);
    const NvOffset b = heap.alloc(64);
    EXPECT_EQ(a, b);
    EXPECT_GT(heap.stats().freeListHits, 0u);
}

TEST_F(PheapFixture, FreeListIsPerClass)
{
    PersistentHeap heap = PersistentHeap::create(space);
    const NvOffset small = heap.alloc(16);
    heap.free(small);
    const NvOffset big = heap.alloc(4096);
    EXPECT_NE(small, big);
}

TEST_F(PheapFixture, DoubleFreeDies)
{
    PersistentHeap heap = PersistentHeap::create(space);
    const NvOffset a = heap.alloc(64);
    heap.free(a);
    EXPECT_DEATH(heap.free(a), "double free");
}

TEST_F(PheapFixture, OutOfSpaceReturnsNull)
{
    PersistentHeap heap = PersistentHeap::create(space);
    std::uint64_t allocated = 0;
    while (true) {
        const NvOffset off = heap.alloc(64_KiB);
        if (off == nullOffset)
            break;
        allocated += 64_KiB;
    }
    EXPECT_GT(allocated, 512_KiB);
    // Heap still functional for smaller allocations via free lists.
    const NvOffset small = heap.alloc(16);
    (void)small;
}

TEST_F(PheapFixture, RootPersists)
{
    PersistentHeap heap = PersistentHeap::create(space);
    const NvOffset obj = heap.alloc(128);
    heap.setRoot(obj);
    EXPECT_EQ(heap.root(), obj);
}

TEST_F(PheapFixture, AttachRecoversState)
{
    NvOffset root = nullOffset;
    NvOffset data = nullOffset;
    {
        PersistentHeap heap = PersistentHeap::create(space);
        data = heap.alloc(64);
        heap.store<std::uint64_t>(data, 777);
        heap.setRoot(data);
        root = data;
    }
    // "Reboot": attach to the same bytes.
    PersistentHeap heap = PersistentHeap::attach(space);
    EXPECT_EQ(heap.root(), root);
    EXPECT_EQ(heap.load<std::uint64_t>(root), 777u);
    EXPECT_EQ(heap.stats().liveAllocations, 1u);
    // Allocator still consistent: new allocations do not collide.
    const NvOffset fresh = heap.alloc(64);
    EXPECT_NE(fresh, data);
}

TEST_F(PheapFixture, AttachWithWrongSizeFails)
{
    PersistentHeap::create(space);
    PlainNvSpace half(buffer.data(), buffer.size() / 2);
    EXPECT_THROW(PersistentHeap::attach(half), FatalError);
}

TEST_F(PheapFixture, WriteReadBytes)
{
    PersistentHeap heap = PersistentHeap::create(space);
    const NvOffset off = heap.alloc(256);
    const std::string msg = "persistent payload";
    heap.writeBytes(off, msg.data(), msg.size());
    std::string out(msg.size(), '\0');
    heap.readBytes(off, out.data(), out.size());
    EXPECT_EQ(out, msg);
}

TEST_F(PheapFixture, TooLargeAllocationDies)
{
    PersistentHeap heap = PersistentHeap::create(space);
    EXPECT_DEATH((void)heap.alloc(4_MiB), "too large");
}

/** Property: random alloc/free keeps all live payloads intact. */
TEST_F(PheapFixture, RandomAllocFreeIntegrity)
{
    PersistentHeap heap = PersistentHeap::create(space);
    Rng rng(99);
    struct Live
    {
        NvOffset off;
        std::uint64_t tag;
    };
    std::vector<Live> live;
    for (int i = 0; i < 3000; ++i) {
        if (live.empty() || rng.nextBool(0.6)) {
            const std::uint64_t size = 8 + rng.nextBounded(500);
            const NvOffset off = heap.alloc(size);
            if (off == nullOffset)
                continue;
            const std::uint64_t tag = rng.next();
            heap.store<std::uint64_t>(off, tag);
            live.push_back({off, tag});
        } else {
            const std::size_t pick = rng.nextBounded(live.size());
            EXPECT_EQ(heap.load<std::uint64_t>(live[pick].off),
                      live[pick].tag);
            heap.free(live[pick].off);
            live[pick] = live.back();
            live.pop_back();
        }
    }
    for (const Live &item : live)
        EXPECT_EQ(heap.load<std::uint64_t>(item.off), item.tag);
    EXPECT_EQ(heap.stats().liveAllocations, live.size());
}

// ---------------------------------------------------------------------
// SimNvSpace integration: heap writes are charged and tracked
// ---------------------------------------------------------------------

TEST(SimNvSpaceTest, HeapWritesDirtySimPages)
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, storage::SsdConfig{});
    core::ViyojitConfig cfg;
    cfg.dirtyBudgetPages = 8;
    core::ViyojitManager mgr(ctx, ssd, cfg, mmu::MmuCostModel{}, 64);
    const Addr base = mgr.vmmap(32 * defaultPageSize);
    SimNvSpace space(mgr, base, 32 * defaultPageSize);

    PersistentHeap heap = PersistentHeap::create(space);
    const NvOffset off = heap.alloc(64);
    heap.store<std::uint64_t>(off, 42);

    EXPECT_GT(mgr.dirtyPageCount(), 0u);
    EXPECT_GT(ctx.stats().counterValue("mmu.write_faults"), 0u);
}

TEST(SimNvSpaceTest, HeapContentsSurviveSimPowerFailure)
{
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, storage::SsdConfig{});
    core::ViyojitConfig cfg;
    cfg.dirtyBudgetPages = 4;
    core::ViyojitManager mgr(ctx, ssd, cfg, mmu::MmuCostModel{}, 64);
    const Addr base = mgr.vmmap(32 * defaultPageSize);
    SimNvSpace space(mgr, base, 32 * defaultPageSize);

    PersistentHeap heap = PersistentHeap::create(space);
    for (int i = 0; i < 50; ++i) {
        const NvOffset off = heap.alloc(100);
        ASSERT_NE(off, nullOffset);
        heap.store<std::uint64_t>(off, i);
    }
    mgr.powerFailureFlush();
    EXPECT_TRUE(mgr.verifyDurability());
}

} // namespace
} // namespace viyojit::pheap
