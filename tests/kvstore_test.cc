/**
 * @file
 * Unit tests for the persistent KV store: CRUD semantics, in-place
 * field updates, collision chains, recovery, and the metadata-write-
 * on-read behaviour the evaluation depends on.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "kvstore/kvstore.hh"
#include "pheap/nv_space.hh"

namespace viyojit::kvstore
{
namespace
{

struct KvFixture : public ::testing::Test
{
    KvFixture()
        : buffer(4_MiB, 0), space(buffer.data(), buffer.size()),
          heap(pheap::PersistentHeap::create(space)),
          store(KvStore::create(heap, 257))
    {}

    std::vector<char> buffer;
    pheap::PlainNvSpace space;
    pheap::PersistentHeap heap;
    KvStore store;
};

TEST_F(KvFixture, PutThenGet)
{
    EXPECT_TRUE(store.put("alpha", "one"));
    const auto value = store.get("alpha");
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, "one");
}

TEST_F(KvFixture, GetMissingReturnsNullopt)
{
    EXPECT_FALSE(store.get("nope").has_value());
    EXPECT_EQ(store.stats().misses, 1u);
}

TEST_F(KvFixture, PutOverwritesInPlace)
{
    store.put("k", "aaaa");
    store.put("k", "bbbb");
    EXPECT_EQ(*store.get("k"), "bbbb");
    EXPECT_EQ(store.size(), 1u);
}

TEST_F(KvFixture, PutGrowsValueViaRealloc)
{
    store.put("k", "small");
    const std::string big(500, 'x');
    store.put("k", big);
    EXPECT_EQ(*store.get("k"), big);
    EXPECT_EQ(store.size(), 1u);
}

TEST_F(KvFixture, PutShrinksValue)
{
    store.put("k", std::string(200, 'a'));
    store.put("k", "tiny");
    EXPECT_EQ(*store.get("k"), "tiny");
}

TEST_F(KvFixture, InsertFailsOnExisting)
{
    EXPECT_TRUE(store.insert("k", "v1"));
    EXPECT_FALSE(store.insert("k", "v2"));
    EXPECT_EQ(*store.get("k"), "v1");
}

TEST_F(KvFixture, UpdateInPlaceRewritesRange)
{
    store.put("k", "0123456789");
    EXPECT_TRUE(store.updateInPlace("k", 3, "XYZ"));
    EXPECT_EQ(*store.get("k"), "012XYZ6789");
}

TEST_F(KvFixture, UpdateInPlaceRejectsOutOfRange)
{
    store.put("k", "0123");
    EXPECT_FALSE(store.updateInPlace("k", 3, "XY"));
    EXPECT_FALSE(store.updateInPlace("missing", 0, "X"));
}

TEST_F(KvFixture, ReadModifyWrite)
{
    store.put("k", "AAAABBBB");
    EXPECT_TRUE(store.readModifyWrite("k", "ZZ"));
    EXPECT_EQ(*store.get("k"), "ZZAABBBB");
    EXPECT_FALSE(store.readModifyWrite("missing", "ZZ"));
}

TEST_F(KvFixture, RemoveDeletesKey)
{
    store.put("k", "v");
    EXPECT_TRUE(store.remove("k"));
    EXPECT_FALSE(store.get("k").has_value());
    EXPECT_FALSE(store.remove("k"));
    EXPECT_EQ(store.size(), 0u);
}

TEST_F(KvFixture, ContainsDoesNotCountAsAccess)
{
    store.put("k", "v");
    const auto gets_before = store.stats().gets;
    EXPECT_TRUE(store.contains("k"));
    EXPECT_FALSE(store.contains("other"));
    EXPECT_EQ(store.stats().gets, gets_before);
}

TEST_F(KvFixture, SizeTracksRecords)
{
    for (int i = 0; i < 20; ++i)
        store.put("key" + std::to_string(i), "v");
    EXPECT_EQ(store.size(), 20u);
    store.remove("key5");
    EXPECT_EQ(store.size(), 19u);
}

TEST_F(KvFixture, EmptyValueSupported)
{
    store.put("k", "");
    const auto value = store.get("k");
    ASSERT_TRUE(value.has_value());
    EXPECT_TRUE(value->empty());
}

TEST_F(KvFixture, StatsCountOperations)
{
    store.put("a", "1");
    store.insert("b", "2");
    store.get("a");
    store.remove("b");
    EXPECT_EQ(store.stats().puts, 1u);
    EXPECT_EQ(store.stats().inserts, 1u);
    EXPECT_EQ(store.stats().gets, 1u);
    EXPECT_EQ(store.stats().removes, 1u);
}

TEST(KvCollisionTest, ChainsSurviveCollisions)
{
    // One bucket: everything collides.
    std::vector<char> buffer(1_MiB, 0);
    pheap::PlainNvSpace space(buffer.data(), buffer.size());
    auto heap = pheap::PersistentHeap::create(space);
    auto store = KvStore::create(heap, 1);
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(store.put("key" + std::to_string(i),
                              "val" + std::to_string(i)));
    }
    for (int i = 0; i < 50; ++i) {
        EXPECT_EQ(*store.get("key" + std::to_string(i)),
                  "val" + std::to_string(i));
    }
    // Remove from the middle of the chain.
    EXPECT_TRUE(store.remove("key25"));
    EXPECT_FALSE(store.get("key25").has_value());
    EXPECT_EQ(*store.get("key24"), "val24");
    EXPECT_EQ(*store.get("key26"), "val26");
}

TEST(KvRecoveryTest, AttachFindsAllRecords)
{
    std::vector<char> buffer(1_MiB, 0);
    {
        pheap::PlainNvSpace space(buffer.data(), buffer.size());
        auto heap = pheap::PersistentHeap::create(space);
        auto store = KvStore::create(heap, 64);
        for (int i = 0; i < 30; ++i)
            store.put("k" + std::to_string(i), "v" + std::to_string(i));
    }
    // "Reboot" onto the same bytes.
    pheap::PlainNvSpace space(buffer.data(), buffer.size());
    auto heap = pheap::PersistentHeap::attach(space);
    auto store = KvStore::attach(heap);
    EXPECT_EQ(store.size(), 30u);
    for (int i = 0; i < 30; ++i)
        EXPECT_EQ(*store.get("k" + std::to_string(i)),
                  "v" + std::to_string(i));
}

TEST(KvRecoveryTest, AttachWithoutRootFails)
{
    std::vector<char> buffer(1_MiB, 0);
    pheap::PlainNvSpace space(buffer.data(), buffer.size());
    auto heap = pheap::PersistentHeap::create(space);
    EXPECT_THROW(KvStore::attach(heap), FatalError);
}

TEST(KvMetadataTest, GetPerformsStores)
{
    // The paper's YCSB-C insight: reads still dirty NV-DRAM because
    // of record metadata updates.
    sim::SimContext ctx;
    storage::Ssd ssd(ctx, storage::SsdConfig{});
    core::ViyojitConfig cfg;
    cfg.dirtyBudgetPages = 16;
    core::ViyojitManager mgr(ctx, ssd, cfg, mmu::MmuCostModel{}, 256);
    const Addr base = mgr.vmmap(128 * defaultPageSize);
    pheap::SimNvSpace space(mgr, base, 128 * defaultPageSize);
    auto heap = pheap::PersistentHeap::create(space);
    auto store = KvStore::create(heap, 64);
    store.put("k", "v");

    mgr.powerFailureFlush(); // everything clean now
    ASSERT_TRUE(mgr.verifyDurability());
    const auto dirty_before = mgr.dirtyPageCount();
    store.get("k");
    EXPECT_GT(mgr.dirtyPageCount(), dirty_before);
}

/** Property: store agrees with std::map under random ops. */
TEST(KvPropertyTest, MatchesReferenceMap)
{
    std::vector<char> buffer(8_MiB, 0);
    pheap::PlainNvSpace space(buffer.data(), buffer.size());
    auto heap = pheap::PersistentHeap::create(space);
    auto store = KvStore::create(heap, 128);
    std::map<std::string, std::string> reference;
    Rng rng(1234);

    for (int i = 0; i < 5000; ++i) {
        const std::string key =
            "key" + std::to_string(rng.nextBounded(200));
        const double action = rng.nextDouble();
        if (action < 0.5) {
            const std::string value(1 + rng.nextBounded(300),
                                    static_cast<char>(
                                        'a' + rng.nextBounded(26)));
            EXPECT_TRUE(store.put(key, value));
            reference[key] = value;
        } else if (action < 0.8) {
            const auto got = store.get(key);
            const auto it = reference.find(key);
            if (it == reference.end()) {
                EXPECT_FALSE(got.has_value());
            } else {
                ASSERT_TRUE(got.has_value());
                EXPECT_EQ(*got, it->second);
            }
        } else {
            EXPECT_EQ(store.remove(key), reference.erase(key) == 1);
        }
        EXPECT_EQ(store.size(), reference.size());
    }
}

} // namespace
} // namespace viyojit::kvstore
