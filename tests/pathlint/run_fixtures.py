#!/usr/bin/env python3
"""Negative-fixture suite for the pathlint contracts engine.

Runs tools/pathlint against tests/pathlint/fixtures/ — four
deliberately-violating translation units plus one implicit-order
atomics file — and asserts from the JSON report that every fixture
trips EXACTLY its own contract:

  fixture_sigsafe.cc    sigsafe        flags the stdio call
  fixture_stack.cc      stack-bound    48 KiB frame vs 16 KiB limit
  fixture_noalloc.cc    no-alloc       flags operator new[]/delete[]
  fixture_lockblock.cc  lock-blocking  flags fdatasync under a mutex
  fixture_atomics.cc    atomics        flags the implicit-order ops

"Exactly" is checked both ways: each contract must fail with its
expected finding type against its own fixture's symbols, and must
never report a finding that names another fixture's marker symbol.

Exit 0 on success, 1 on assertion failure, 77 (ctest SKIP) when the
toolchain cannot support the engine at all.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys
import tempfile

SKIP = 77

HERE = os.path.dirname(os.path.abspath(__file__))

# Marker symbols, one per fixture; used for the cross-contamination
# assertion.
MARKERS = {
    "sigsafe": "sigsafeViolator",
    "stack-bound": "stackHog",
    "no-alloc": "allocOnFaultPath",
    "lock-blocking": "syncUnderLock",
}


def fail(msg):
    print(f"run_fixtures: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def finding_text(finding):
    return json.dumps(finding, sort_keys=True)


def assert_deny_contract(contract, name, marker, callee_re):
    findings = contract["findings"]
    if contract.get("status") != "fail":
        fail(f"[{name}] expected status 'fail', got "
             f"{contract.get('status')!r}")
    if not findings:
        fail(f"[{name}] no findings — the fixture was not flagged")
    for f in findings:
        if f["type"] != "deny":
            fail(f"[{name}] unexpected finding type {f['type']!r}: "
                 + finding_text(f))
        if marker not in f["caller"]:
            fail(f"[{name}] finding against a non-fixture caller: "
                 + finding_text(f))
        if not re.search(callee_re, f["callee"]):
            fail(f"[{name}] unexpected denied callee "
                 f"(wanted /{callee_re}/): " + finding_text(f))
    print(f"  [{name}] {len(findings)} finding(s), all "
          f"'{marker}' -> /{callee_re}/")


def assert_no_cross_contamination(contracts):
    for name, contract in contracts.items():
        for f in contract["findings"]:
            blob = finding_text(f)
            for other, marker in MARKERS.items():
                if other != name and marker in blob:
                    fail(f"[{name}] finding references fixture "
                         f"'{other}' marker {marker!r}: {blob}")
    print("  no contract reports another fixture's symbols")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=os.path.dirname(
        os.path.dirname(HERE)))
    ap.add_argument("--compiler",
                    default=os.environ.get("CXX", "g++"))
    args = ap.parse_args()
    repo = os.path.abspath(args.repo)

    for tool in (args.compiler, "c++filt", "python3"):
        if shutil.which(tool) is None:
            print(f"run_fixtures: SKIPPED — {tool} not installed "
                  "(the pathlint engine needs the gcc toolchain)")
            return SKIP

    spec = os.path.join(HERE, "fixtures", "fixture_contracts.ini")
    with tempfile.TemporaryDirectory() as tmp:
        report_path = os.path.join(tmp, "report.json")
        cmd = [sys.executable,
               os.path.join(repo, "tools", "pathlint"),
               "--repo", repo, "--spec", spec,
               "--compiler", args.compiler,
               "--report", report_path]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode == 2:
            fail("pathlint errored out (exit 2):\n" + proc.stderr)
        if proc.returncode != 1:
            fail(f"expected exit 1 (findings), got "
                 f"{proc.returncode}:\n{proc.stdout}\n{proc.stderr}")
        with open(report_path, encoding="utf-8") as fh:
            report = json.load(fh)

    contracts = {c["contract"]: c for c in report["contracts"]}
    expected = {"sigsafe", "stack-bound", "no-alloc",
                "lock-blocking", "atomics"}
    if set(contracts) != expected:
        fail(f"report covers {sorted(contracts)}, "
             f"expected {sorted(expected)}")

    # sigsafe: gcc may lower fprintf to fwrite; both are denied.
    assert_deny_contract(contracts["sigsafe"], "sigsafe",
                         MARKERS["sigsafe"], r"f(printf|write|puts)")
    assert_deny_contract(contracts["no-alloc"], "no-alloc",
                         r"OnFaultPath", r"operator (new|delete)")
    assert_deny_contract(contracts["lock-blocking"], "lock-blocking",
                         MARKERS["lock-blocking"], r"fdatasync")

    stack = contracts["stack-bound"]
    if stack.get("status") == "skipped":
        # -fstack-usage unsupported: the engine must have said so in
        # the report, and the other four contracts still ran.
        if report.get("stack_usage_available"):
            fail("[stack-bound] skipped although the report claims "
                 "-fstack-usage is available")
        print("  [stack-bound] SKIPPED — compiler lacks "
              "-fstack-usage (other contracts still asserted)")
    else:
        if stack.get("status") != "fail":
            fail(f"[stack-bound] expected status 'fail', got "
                 f"{stack.get('status')!r}")
        types = [f["type"] for f in stack["findings"]]
        if types != ["stack-overflow"]:
            fail(f"[stack-bound] expected exactly one "
                 f"'stack-overflow' finding, got {types}: "
                 + finding_text(stack["findings"]))
        hog_frames = [f for f in stack["worst_chain"]
                      if MARKERS["stack-bound"] in f["function"]]
        if not hog_frames:
            fail("[stack-bound] stackHog missing from the worst "
                 "chain")
        limit = stack["limit_bytes"]
        if limit != 16 * 1024:
            fail(f"[stack-bound] limit_source misread: got {limit}, "
                 "expected 16384 from fixture_stack.hh")
        if stack["stack_bound_bytes"] <= limit:
            fail(f"[stack-bound] computed bound "
                 f"{stack['stack_bound_bytes']} does not exceed the "
                 f"{limit}-byte fixture limit")
        print(f"  [stack-bound] bound {stack['stack_bound_bytes']} "
              f"> limit {limit} - margin {stack['margin_bytes']}, "
              "exactly one stack-overflow finding")

    atomics = contracts["atomics"]
    if atomics.get("status") != "fail":
        fail(f"[atomics] expected status 'fail', got "
             f"{atomics.get('status')!r}")
    flagged = [(f["file"], f["op"]) for f in atomics["findings"]]
    if len(flagged) != 2:
        fail(f"[atomics] expected exactly the two implicit-order "
             f"ops, got {flagged}")
    for f in atomics["findings"]:
        if "fixture_atomics.cc" not in f["file"]:
            fail("[atomics] finding outside the fixture file: "
                 + finding_text(f))
        if "Explicit" in f["snippet"]:
            fail("[atomics] explicit-order op wrongly flagged: "
                 + finding_text(f))
    print(f"  [atomics] both implicit-order ops flagged, "
          "explicit-order ops clean")

    assert_no_cross_contamination(contracts)
    print("run_fixtures: OK — every fixture trips exactly its "
          "contract")
    return 0


if __name__ == "__main__":
    sys.exit(main())
