#!/usr/bin/env python3
"""Unit self-tests for the pathlint engine's pure layers.

Covers the pieces whose failure modes are silent (a mismatched .su
entry just loses a frame size; a wrong depth computation just prints
a smaller bound): the .su parser, the four-tier pretty-name <->
demangled-name matching keys, the allowlist grammar, the deny
classifier, the assembly parser, and the worst-case stack-depth
computation with extern charges, recursion bounds, and frame
overrides.  Everything here is hermetic — no compiler, no
subprocesses.

Run directly or via ctest (pathlint_engine_units).
"""

import os
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.abspath(__file__))))
sys.path.insert(0, os.path.join(REPO, "tools", "pathlint"))

import engine  # noqa: E402
from engine import (Allowlist, PathlintError, RET_ADDR_BYTES,  # noqa: E402
                    aggressive_key, compute_stack_bound, frame_keys,
                    normalize_typelist, parse_assembly, parse_su,
                    strip_trailing_qualifiers)
from contracts import DenyClassifier, \
    strip_comments_and_strings  # noqa: E402


class ParseSuTest(unittest.TestCase):
    def test_static_entry(self):
        entries = parse_su(
            "src/a.cc:10:5:void viyojit::f(int)\t160\tstatic\n")
        self.assertEqual(entries,
                         [("void viyojit::f(int)", 160, "static")])

    def test_dynamic_bounded_qualifier_preserved(self):
        entries = parse_su(
            "src/a.cc:4:1:int g()\t528\tdynamic,bounded\n")
        self.assertEqual(entries[0][2], "dynamic,bounded")

    def test_colons_inside_pretty_name(self):
        entries = parse_su(
            "src/a.cc:7:3:void ns::C::m(std::vector<int>)\t96\t"
            "static\n")
        self.assertEqual(entries[0][0],
                         "void ns::C::m(std::vector<int>)")

    def test_gcc12_truncated_variadic_entry(self):
        # GCC 12 truncates variadic-template pretty names to just the
        # close paren plus the [with ...] clause; the parser must
        # carry it through for the pack-key matcher.
        line = ("src/common/logging.hh:38:1:) "
                "[with Args = {const char (&)[35]}]\t496\tstatic\n")
        entries = parse_su(line)
        self.assertEqual(entries[0][1], 496)
        self.assertTrue(entries[0][0].startswith(")"))

    def test_malformed_line_raises(self):
        with self.assertRaises(PathlintError):
            parse_su("not a stack-usage line\n")
        with self.assertRaises(PathlintError):
            parse_su("missing_location\t42\tstatic\n")


class FrameKeyTest(unittest.TestCase):
    """frame_keys() must give gcc .su pretty names and c++filt
    output at least one key in common for the same function."""

    def keys_intersect(self, su_pretty, demangled):
        a = set(frame_keys(su_pretty))
        b = set(frame_keys(demangled))
        self.assertTrue(a & b,
                        f"no shared key:\n  su  {sorted(a)}\n"
                        f"  dem {sorted(b)}")

    def test_plain_function(self):
        self.keys_intersect(
            "void viyojit::runtime::segvHandler(int, siginfo_t*, "
            "void*)",
            "viyojit::runtime::segvHandler(int, siginfo_t*, void*)")

    def test_template_instantiation_bare_name_tier(self):
        # gcc spells the instantiation '[with T = ...]', c++filt
        # spells it 'f<...>': tier 2 (template-stripped) bridges.
        self.keys_intersect(
            "T viyojit::clampPow2(T) [with T = long unsigned int]",
            "unsigned long viyojit::clampPow2<unsigned long>"
            "(unsigned long)")

    def test_truncated_variadic_pack_tier(self):
        # The gcc 12 truncated entry has ONLY the pack as identity;
        # normalize_typelist must bridge west-const 'const char
        # (&)[35]' to east-const 'char const (&) [35]'.
        self.keys_intersect(
            ") [with Args = {const char (&)[35]}]",
            "void viyojit::composeMessage<char const (&) [35]>"
            "(char const (&) [35])")

    def test_anonymous_namespace_spelling(self):
        self.keys_intersect(
            "void {anonymous}::helper(int)",
            "(anonymous namespace)::helper(int)")

    def test_const_member_function(self):
        self.keys_intersect(
            "uint64_t viyojit::core::BudgetPool::available() const",
            "viyojit::core::BudgetPool::available() const")

    def test_truncated_entry_without_with_clause_matches_nothing(self):
        self.assertEqual(frame_keys(")"), [])


class NormalizeTypelistTest(unittest.TestCase):
    def test_integer_spellings_converge(self):
        self.assertEqual(normalize_typelist("long unsigned int"),
                         normalize_typelist("unsigned long"))

    def test_west_east_const_converge(self):
        self.assertEqual(normalize_typelist("const char (&)[35]"),
                         normalize_typelist("char const (&) [35]"))

    def test_distinct_packs_stay_distinct(self):
        self.assertNotEqual(
            normalize_typelist("const char (&)[35]"),
            normalize_typelist("const char (&)[36]"))


class StripQualifiersTest(unittest.TestCase):
    def test_nested_brackets_in_with_clause(self):
        self.assertEqual(
            strip_trailing_qualifiers(
                "void f(Args&& ...) [with Args = {char (&)[59]}]"),
            "void f(Args&& ...)")

    def test_clone_suffix_and_const(self):
        self.assertEqual(
            strip_trailing_qualifiers(
                "int C::m() const [clone .isra.0]"),
            "int C::m()")

    def test_array_return_type_not_stripped(self):
        # A trailing ']' that is NOT a with/clone/abi group must
        # survive.
        self.assertEqual(strip_trailing_qualifiers("f(int[3])"),
                         "f(int[3])")


class AggressiveKeyTest(unittest.TestCase):
    def test_lambda_trampoline_scopes_converge(self):
        # gcc pretty vs c++filt for a FunctionRef _FUN trampoline:
        # typedefed parameter spellings and '#1' suffixes diverge,
        # the scope skeleton does not.
        gcc = ("viyojit::FunctionRef<void(long unsigned int)>::"
               "FunctionRef<viyojit::f()::<lambda(viyojit::PageNum)>"
               ">::_FUN")
        filt = ("viyojit::FunctionRef<void (unsigned long)>::"
                "FunctionRef<viyojit::f()::{lambda(unsigned long)#1}"
                ">::_FUN")
        self.assertEqual(aggressive_key(engine.normalize_lambda(gcc)),
                         aggressive_key(engine.normalize_lambda(filt)))


class ParseAssemblyTest(unittest.TestCase):
    ASM = """\
\t.type\tfoo, @function
foo:
\tpushq\t%rbp
\tcall\tbar@PLT
\tcall\t*%rax
\tjmp\t.L3
\tjmp\ttail_target
\t.size\tfoo, .-foo
\t.type\tbaz, @function
baz:
\tret
\t.size\tbaz, .-baz
"""

    def test_calls_indirects_and_tail_jumps(self):
        graph = parse_assembly(self.ASM)
        callees, indirect = graph["foo"]
        self.assertEqual(callees, ["bar", "tail_target"])
        self.assertEqual(indirect, 1)
        self.assertEqual(graph["baz"], ([], 0))


class AllowlistTest(unittest.TestCase):
    def load(self, text):
        with tempfile.NamedTemporaryFile(
                "w", suffix=".txt", delete=False) as fh:
            fh.write(text)
            path = fh.name
        try:
            return Allowlist().load(path)
        finally:
            os.unlink(path)

    def test_justification_mandatory(self):
        with self.assertRaises(PathlintError):
            self.load("allow: a -> b\n")

    def test_unknown_directive_rejected(self):
        with self.assertRaises(PathlintError):
            self.load("permit: a -> b :: why\n")

    def test_recurse_needs_integer(self):
        with self.assertRaises(PathlintError):
            self.load("recurse: f -> lots :: why\n")

    def test_hit_tracking_and_stale(self):
        al = self.load("allow: caller -> callee :: ok\n"
                       "allow: never -> ever :: unused\n")
        self.assertEqual(al.allowed("ns::caller(int)",
                                    "ns::callee()"), "ok")
        stale = al.stale_entries()
        self.assertEqual(len(stale), 1)
        self.assertIn("never", stale[0])

    def test_recursion_and_frame_lookup(self):
        al = self.load(
            "recurse: __introsort_loop< -> 48 :: depth_limit\n"
            "frame: ^extfn$ -> 4096 :: measured by hand\n")
        self.assertEqual(
            al.recursion_bound("void std::__introsort_loop<It>(It)"),
            48)
        self.assertIsNone(al.recursion_bound("plain_fn()"))
        self.assertEqual(al.frame_override("extfn"), 4096)


class DenyClassifierTest(unittest.TestCase):
    def test_exact_prefix_substr(self):
        d = DenyClassifier()
        d.add_line("exact", "malloc free :: heap", "t")
        d.add_line("prefix", "_Znw :: new", "t")
        d.add_line("substr", "basic_string :: string", "t")
        self.assertEqual(d.classify("malloc", "malloc"), "heap")
        self.assertEqual(d.classify("_ZnwmPv", "..."), "new")
        self.assertEqual(
            d.classify("_ZNSt7basic_stringIcE5clearEv", "..."),
            "string")
        self.assertIsNone(d.classify("memcpy", "memcpy"))

    def test_reason_mandatory(self):
        d = DenyClassifier()
        with self.assertRaises(PathlintError):
            d.add_line("exact", "malloc", "t")


class StripCommentsTest(unittest.TestCase):
    def test_atomics_in_comments_and_strings_blanked(self):
        src = ('x.store(1); // y.store(2)\n'
               '/* z.load() */ s = "a.load()";\n')
        out = strip_comments_and_strings(src)
        self.assertIn("x.store(1)", out)
        self.assertNotIn("y.store", out)
        self.assertNotIn("z.load", out)
        self.assertNotIn("a.load", out)
        self.assertEqual(out.count("\n"), src.count("\n"))


class StackBoundTest(unittest.TestCase):
    """compute_stack_bound over synthetic graphs; names are the
    identity map so demangled == symbol."""

    def bound(self, graph, frames, allow_text="", extern=2048):
        names = {s: s for s in graph}
        al = Allowlist()
        if allow_text:
            with tempfile.NamedTemporaryFile(
                    "w", suffix=".txt", delete=False) as fh:
                fh.write(allow_text)
                path = fh.name
            try:
                al.load(path)
            finally:
                os.unlink(path)
        return compute_stack_bound(graph, names, "root", al, frames,
                                   extern)

    def test_linear_chain(self):
        graph = {"root": (["mid"], 0), "mid": (["leaf"], 0),
                 "leaf": ([], 0)}
        res = self.bound(graph, {"root": 100, "mid": 200,
                                 "leaf": 50})
        self.assertEqual(res.bound, 100 + 200 + 50
                         + 3 * RET_ADDR_BYTES)
        self.assertEqual(res.chain, [("root", 100), ("mid", 200),
                                     ("leaf", 50)])

    def test_max_over_siblings(self):
        graph = {"root": (["a", "b"], 0), "a": ([], 0),
                 "b": ([], 0)}
        res = self.bound(graph, {"root": 64, "a": 1000, "b": 8})
        self.assertEqual(res.bound, 64 + 1000 + 2 * RET_ADDR_BYTES)
        self.assertEqual([f for f, _ in res.chain], ["root", "a"])

    def test_extern_flat_charge(self):
        graph = {"root": (["pwritev"], 0)}
        res = self.bound(graph, {"root": 96}, extern=2048)
        self.assertEqual(res.bound, 96 + 2048 + 2 * RET_ADDR_BYTES)

    def test_missing_frame_reported_not_guessed(self):
        graph = {"root": (["mid"], 0), "mid": ([], 0)}
        res = self.bound(graph, {"root": 100})
        self.assertEqual(res.missing_frames, ["mid"])
        self.assertEqual(res.bound, 100 + 0 + 2 * RET_ADDR_BYTES)

    def test_unannotated_recursion_is_an_error(self):
        graph = {"root": (["rec"], 0), "rec": (["rec"], 0)}
        res = self.bound(graph, {"root": 32, "rec": 64})
        self.assertEqual(len(res.recursion_errors), 1)
        self.assertEqual(res.recursion_errors[0],
                         ["rec", "rec"])

    def test_recurse_bound_charges_cycle_segment(self):
        # rec self-recurses with a declared depth of 3: the cycle
        # segment (frame + return address) is charged twice more on
        # top of the normal chain.
        graph = {"root": (["rec"], 0), "rec": (["rec"], 0)}
        res = self.bound(
            graph, {"root": 32, "rec": 64},
            allow_text="recurse: ^rec$ -> 3 :: test bound\n")
        segment = 64 + RET_ADDR_BYTES
        expected = (32 + RET_ADDR_BYTES) + (64 + RET_ADDR_BYTES) \
            + 2 * segment
        self.assertEqual(res.bound, expected)
        self.assertEqual(res.recursion_errors, [])

    def test_two_function_cycle_segment(self):
        graph = {"root": (["a"], 0), "a": (["b"], 0),
                 "b": (["a"], 0)}
        res = self.bound(
            graph, {"root": 16, "a": 100, "b": 200},
            allow_text="recurse: ^a$ -> 2 :: test bound\n")
        segment = (100 + RET_ADDR_BYTES) + (200 + RET_ADDR_BYTES)
        expected = (16 + RET_ADDR_BYTES) + segment + 1 * segment
        self.assertEqual(res.bound, expected)

    def test_frame_override_wins_over_su(self):
        graph = {"root": (["big"], 0), "big": ([], 0)}
        res = self.bound(
            graph, {"root": 10, "big": 999999},
            allow_text="frame: ^big$ -> 128 :: hand-measured\n")
        self.assertEqual(res.bound, 10 + 128 + 2 * RET_ADDR_BYTES)

    def test_unresolved_indirect_reported(self):
        graph = {"root": ([], 3)}
        res = self.bound(graph, {"root": 40})
        self.assertEqual(res.unresolved_indirect, [("root", 3)])

    def test_virtual_resolution_feeds_depth(self):
        graph = {"root": ([], 1), "impl": ([], 0)}
        res = self.bound(
            graph, {"root": 40, "impl": 600},
            allow_text="virtual: ^root$ -> ^impl$ :: sole impl\n")
        self.assertEqual(res.bound, 40 + 600 + 2 * RET_ADDR_BYTES)
        self.assertEqual(res.unresolved_indirect, [])


if __name__ == "__main__":
    unittest.main(verbosity=2)
