// Negative fixture for the stack-bound contract: a 48 KiB frame
// against the 16 KiB kFixtureStackBytes declared in
// fixture_stack.hh.  The volatile buffer keeps -O2 from eliding the
// array, and the volatile element accesses keep the init loop from
// being recognized as memset (a memset call would add an extern
// charge and muddy the single-frame arithmetic).  No denied calls,
// no locks — this TU must trip ONLY stack-bound.

#include "fixture_stack.hh"

namespace fixture {

unsigned char stackHog(unsigned idx) {
    volatile unsigned char buf[3 * kFixtureStackBytes];
    for (unsigned i = 0; i < sizeof buf; ++i) {
        buf[i] = static_cast<unsigned char>(i);
    }
    return buf[idx % sizeof buf];
}

}  // namespace fixture
