// Negative fixture for the no-alloc contract: operator new[] on a
// fault-path-shaped function.  The contract's _Zna prefix deny must
// flag it.  No stdio, no locks, small frame — this TU must trip
// ONLY no-alloc.

#include <cstddef>

namespace fixture {

int* allocOnFaultPath(std::size_t n) {
    return new int[n];
}

void freeOnFaultPath(int* p) {
    delete[] p;
}

}  // namespace fixture
