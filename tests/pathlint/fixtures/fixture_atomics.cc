// Negative fixture for the atomics contract: implicit-order atomic
// operations (defaulting to seq_cst).  The textual scan must flag
// the store and the load; the explicitCounter ops spell their order
// and must NOT be flagged.  This file is scanned, never compiled —
// it is deliberately absent from the fixture spec's [engine] sources.

#include <atomic>

namespace fixture {

std::atomic<unsigned> gImplicit{0};
std::atomic<unsigned> gExplicit{0};

unsigned bumpImplicit() {
    gImplicit.store(1u);  // implicit seq_cst: must be flagged
    return gImplicit.load();  // implicit seq_cst: must be flagged
}

unsigned bumpExplicit() {
    gExplicit.store(1u, std::memory_order_release);
    return gExplicit.load(std::memory_order_acquire);
}

}  // namespace fixture
