// Negative fixture for the sigsafe contract: a handler-shaped
// function that calls into stdio.  The contract must flag the
// fprintf (or the fwrite gcc lowers it to) as an async-signal-unsafe
// call with no allowlist entry.  No allocation, no locks, no
// blocking syscalls — this TU must trip ONLY sigsafe.

#include <cstdio>

namespace fixture {

void sigsafeViolator(int signo) {
    std::fprintf(stderr, "fault %d\n", signo);
}

}  // namespace fixture
