// Declared alt-stack size for the stack-bound negative fixture.
// The initializer must stay in the `name = expr;` shape
// parse_limit_source() reads, mirroring kFaultStackBytes in
// src/runtime/fault_dispatch.hh.
#pragma once

namespace fixture {

inline constexpr unsigned long long kFixtureStackBytes = 16ull * 1024;

}  // namespace fixture
