// Negative fixture for the lock-blocking contract: a durability
// barrier issued while holding a pthread mutex.  The
// @mutex-acquirers root selector must pick syncUnderLock up from the
// assembly (it calls pthread_mutex_lock directly) and flag the
// fdatasync with no sanctioned-wait entry.  This is the exact shape
// DESIGN.md §8 forbids outside the audited persist paths.  The other
// fixture TUs take no locks, so this TU must trip ONLY
// lock-blocking.

#include <pthread.h>
#include <unistd.h>

namespace fixture {

namespace {
pthread_mutex_t gMutex = PTHREAD_MUTEX_INITIALIZER;
}  // namespace

int syncUnderLock(int fd) {
    pthread_mutex_lock(&gMutex);
    int rc = fdatasync(fd);
    pthread_mutex_unlock(&gMutex);
    return rc;
}

}  // namespace fixture
