/**
 * @file
 * Tests for the post-reboot restore manager: strategy behaviours,
 * residency invariants, demand/background interleaving, and the
 * availability ordering section 8 predicts.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "common/logging.hh"
#include "core/recovery.hh"

namespace viyojit::core
{
namespace
{

struct RecoveryFixture : public ::testing::Test
{
    static constexpr std::uint64_t pages = 64;
    static constexpr std::uint64_t pageSize = 4096;

    RecoveryFixture()
        : ssd(ctx, storage::SsdConfig{})
    {
        // Persist an image for every page.
        for (PageNum p = 0; p < pages; ++p)
            ssd.writePageSync({0, p}, p + 1, pageSize);
        ctx.events().drain();
    }

    RecoveryManager
    make(RestoreStrategy strategy, unsigned depth = 8)
    {
        return RecoveryManager(ctx, ssd, 0, pages, pageSize, strategy,
                               depth);
    }

    sim::SimContext ctx;
    storage::Ssd ssd;
};

TEST_F(RecoveryFixture, NothingResidentBeforeBegin)
{
    RecoveryManager recovery = make(RestoreStrategy::eager);
    EXPECT_EQ(recovery.residentPages(), 0u);
    EXPECT_FALSE(recovery.fullyResident());
}

TEST_F(RecoveryFixture, EagerSweepLoadsEverything)
{
    RecoveryManager recovery = make(RestoreStrategy::eager);
    recovery.begin();
    recovery.waitUntilFullyResident();
    EXPECT_TRUE(recovery.fullyResident());
    EXPECT_EQ(recovery.stats().backgroundFetches, pages);
    EXPECT_EQ(recovery.stats().demandFetches, 0u);
    EXPECT_GT(recovery.stats().fullyResidentAt, 0u);
}

TEST_F(RecoveryFixture, EagerAccessWaitsForSweep)
{
    RecoveryManager recovery = make(RestoreStrategy::eager);
    recovery.begin();
    // The last page is reached only after the whole sweep.
    const Tick stall = recovery.access(pages - 1);
    EXPECT_GT(stall, 0u);
    EXPECT_TRUE(recovery.fullyResident() ||
                recovery.residentPages() >= pages - 1);
}

TEST_F(RecoveryFixture, DemandOnlyFetchesExactlyWhatIsTouched)
{
    RecoveryManager recovery = make(RestoreStrategy::demandOnly);
    recovery.begin();
    recovery.access(5);
    recovery.access(9);
    recovery.access(5); // already resident: no new fetch
    EXPECT_EQ(recovery.stats().demandFetches, 2u);
    EXPECT_EQ(recovery.stats().backgroundFetches, 0u);
    EXPECT_EQ(recovery.residentPages(), 2u);
    EXPECT_FALSE(recovery.fullyResident());
}

TEST_F(RecoveryFixture, ResidentAccessIsFree)
{
    RecoveryManager recovery = make(RestoreStrategy::demandOnly);
    recovery.begin();
    recovery.access(7);
    EXPECT_EQ(recovery.access(7), 0u);
}

TEST_F(RecoveryFixture, BackgroundSweepSkipsDemandedPages)
{
    RecoveryManager recovery =
        make(RestoreStrategy::demandPlusBackground, 2);
    recovery.begin();
    recovery.access(0); // the sweep would fetch 0 anyway
    recovery.access(50);
    recovery.waitUntilFullyResident();
    EXPECT_TRUE(recovery.fullyResident());
    // No double fetches: every page is read exactly once (the sweep
    // skips pages that were demand-fetched or already queued).
    EXPECT_EQ(recovery.stats().demandFetches +
                  recovery.stats().backgroundFetches,
              pages);
}

TEST_F(RecoveryFixture, DemandPlusBackgroundServesFasterThanEager)
{
    // First access to a far page: eager waits for the whole sweep,
    // demand fetches just that page.
    RecoveryManager eager = make(RestoreStrategy::eager, 4);
    eager.begin();
    const Tick eager_stall = eager.access(pages - 1);

    sim::SimContext ctx2;
    storage::Ssd ssd2(ctx2, storage::SsdConfig{});
    for (PageNum p = 0; p < pages; ++p)
        ssd2.writePageSync({0, p}, p + 1, pageSize);
    ctx2.events().drain();
    RecoveryManager demand(ctx2, ssd2, 0, pages, pageSize,
                           RestoreStrategy::demandPlusBackground, 4);
    demand.begin();
    const Tick demand_stall = demand.access(pages - 1);

    EXPECT_LT(demand_stall, eager_stall);
}

TEST_F(RecoveryFixture, RandomAccessPatternAlwaysCompletes)
{
    RecoveryManager recovery =
        make(RestoreStrategy::demandPlusBackground);
    recovery.begin();
    Rng rng(4);
    for (int i = 0; i < 200; ++i)
        recovery.access(rng.nextBounded(pages));
    recovery.waitUntilFullyResident();
    EXPECT_TRUE(recovery.fullyResident());
    EXPECT_EQ(recovery.residentPages(), pages);
}

TEST_F(RecoveryFixture, InvalidConfigRejected)
{
    EXPECT_THROW(RecoveryManager(ctx, ssd, 0, 0, pageSize,
                                 RestoreStrategy::eager),
                 FatalError);
    EXPECT_THROW(RecoveryManager(ctx, ssd, 0, pages, pageSize,
                                 RestoreStrategy::eager, 0),
                 FatalError);
}

} // namespace
} // namespace viyojit::core
