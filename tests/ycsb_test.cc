/**
 * @file
 * Unit tests for the YCSB workload generator and driver.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/logging.hh"
#include "pheap/nv_space.hh"
#include "ycsb/driver.hh"
#include "ycsb/workload.hh"

namespace viyojit::ycsb
{
namespace
{

TEST(WorkloadSpecTest, StandardMixes)
{
    const WorkloadSpec a = standardWorkload('A');
    EXPECT_DOUBLE_EQ(a.readProportion, 0.5);
    EXPECT_DOUBLE_EQ(a.updateProportion, 0.5);
    EXPECT_EQ(a.distribution, RequestDistribution::zipfian);

    const WorkloadSpec b = standardWorkload('B');
    EXPECT_DOUBLE_EQ(b.readProportion, 0.95);

    const WorkloadSpec c = standardWorkload('C');
    EXPECT_DOUBLE_EQ(c.readProportion, 1.0);

    const WorkloadSpec d = standardWorkload('D');
    EXPECT_DOUBLE_EQ(d.insertProportion, 0.05);
    EXPECT_EQ(d.distribution, RequestDistribution::latest);

    const WorkloadSpec f = standardWorkload('F');
    EXPECT_DOUBLE_EQ(f.rmwProportion, 0.5);
}

TEST(WorkloadSpecTest, UnknownLetterFatal)
{
    EXPECT_THROW(standardWorkload('E'), FatalError);
    EXPECT_THROW(standardWorkload('Z'), FatalError);
}

TEST(WorkloadSpecTest, ValueSize)
{
    WorkloadSpec spec = standardWorkload('A');
    EXPECT_EQ(spec.valueSize(), 1000u);
}

TEST(DriverTest, KeyFormatFixedWidth)
{
    EXPECT_EQ(YcsbDriver::keyFor(0), "user000000000000");
    EXPECT_EQ(YcsbDriver::keyFor(42), "user000000000042");
    EXPECT_EQ(YcsbDriver::keyFor(0).size(),
              YcsbDriver::keyFor(999999).size());
}

struct DriverFixture : public ::testing::Test
{
    DriverFixture()
        : buffer(32_MiB, 0), space(buffer.data(), buffer.size()),
          heap(pheap::PersistentHeap::create(space)),
          store(kvstore::KvStore::create(heap, 4096))
    {
        config.recordCount = 500;
        config.operationCount = 2000;
        config.baseOpCost = 10_us;
    }

    RunResult
    runWorkload(char letter)
    {
        YcsbDriver driver(ctx, store, standardWorkload(letter), config);
        driver.load();
        return driver.run();
    }

    sim::SimContext ctx;
    std::vector<char> buffer;
    pheap::PlainNvSpace space;
    pheap::PersistentHeap heap;
    kvstore::KvStore store;
    DriverConfig config;
};

TEST_F(DriverFixture, LoadInsertsAllRecords)
{
    YcsbDriver driver(ctx, store, standardWorkload('A'), config);
    driver.load();
    EXPECT_EQ(store.size(), 500u);
    EXPECT_TRUE(store.get(YcsbDriver::keyFor(0)).has_value());
    EXPECT_TRUE(store.get(YcsbDriver::keyFor(499)).has_value());
}

TEST_F(DriverFixture, RunExecutesAllOps)
{
    const RunResult result = runWorkload('A');
    EXPECT_EQ(result.operations, 2000u);
    EXPECT_GT(result.elapsed, 0u);
    EXPECT_GT(result.throughputOpsPerSec, 0.0);
}

TEST_F(DriverFixture, MixMatchesProportions)
{
    const RunResult result = runWorkload('A');
    const double reads =
        static_cast<double>(result.readLatency.count());
    const double updates =
        static_cast<double>(result.updateLatency.count());
    EXPECT_NEAR(reads / 2000.0, 0.5, 0.05);
    EXPECT_NEAR(updates / 2000.0, 0.5, 0.05);
    EXPECT_EQ(result.insertLatency.count(), 0u);
    EXPECT_EQ(result.rmwLatency.count(), 0u);
}

TEST_F(DriverFixture, ReadOnlyWorkloadOnlyReads)
{
    const RunResult result = runWorkload('C');
    EXPECT_EQ(result.readLatency.count(), 2000u);
    EXPECT_EQ(result.updateLatency.count(), 0u);
}

TEST_F(DriverFixture, InsertWorkloadGrowsStore)
{
    const RunResult result = runWorkload('D');
    EXPECT_GT(result.insertLatency.count(), 50u);
    EXPECT_EQ(store.size(), 500u + result.insertLatency.count());
}

TEST_F(DriverFixture, RmwWorkloadRuns)
{
    const RunResult result = runWorkload('F');
    EXPECT_NEAR(static_cast<double>(result.rmwLatency.count()) / 2000.0,
                0.5, 0.05);
}

TEST_F(DriverFixture, ThroughputReflectsBaseCost)
{
    // With 10 us per op and no NV overhead, throughput is pinned at
    // exactly 100 K-ops/s (PlainNvSpace charges nothing extra).
    const RunResult result = runWorkload('C');
    EXPECT_LE(result.throughputOpsPerSec, 100000.0 + 1.0);
    EXPECT_GT(result.throughputOpsPerSec, 20000.0);
}

TEST_F(DriverFixture, LatencyFloorIsBaseCost)
{
    const RunResult result = runWorkload('C');
    EXPECT_GE(result.readLatency.minValue(), 10_us);
}

TEST_F(DriverFixture, InvalidProportionsFatal)
{
    WorkloadSpec bad = standardWorkload('A');
    bad.updateProportion = 0.7; // sums to 1.2
    EXPECT_THROW(YcsbDriver(ctx, store, bad, config), FatalError);
}

TEST_F(DriverFixture, PartitionedLoadInsertsOnlyOwnedSlice)
{
    config.partitions = 4;
    config.partitionIndex = 1;
    YcsbDriver driver(ctx, store, standardWorkload('A'), config);
    driver.load();

    // 500 records / 4 partitions: slice 1 is [125, 250).
    EXPECT_EQ(store.size(), 125u);
    EXPECT_FALSE(store.get(YcsbDriver::keyFor(0)).has_value());
    EXPECT_FALSE(store.get(YcsbDriver::keyFor(124)).has_value());
    EXPECT_TRUE(store.get(YcsbDriver::keyFor(125)).has_value());
    EXPECT_TRUE(store.get(YcsbDriver::keyFor(249)).has_value());
    EXPECT_FALSE(store.get(YcsbDriver::keyFor(250)).has_value());
}

TEST_F(DriverFixture, PartitionsCoverKeySpaceWithoutOverlap)
{
    // Four drivers over ONE store, as four app threads would run:
    // loads must tile [0, recordCount) exactly (insert() fails on a
    // duplicate key, so any overlap would abort the load).
    std::vector<std::unique_ptr<YcsbDriver>> drivers;
    for (unsigned p = 0; p < 4; ++p) {
        config.partitions = 4;
        config.partitionIndex = p;
        config.seed = 42 + p;
        drivers.push_back(std::make_unique<YcsbDriver>(
            ctx, store, standardWorkload('A'), config));
        drivers.back()->load();
    }
    EXPECT_EQ(store.size(), 500u);
    EXPECT_TRUE(store.get(YcsbDriver::keyFor(0)).has_value());
    EXPECT_TRUE(store.get(YcsbDriver::keyFor(499)).has_value());
}

TEST_F(DriverFixture, PartitionedRunsOperateOnOwnedKeysOnly)
{
    // A partitioned run asserts internally that every chosen key is
    // present (read of a loaded key must hit); running all four
    // partitions against the shared store passes only if each
    // driver's chooser stays inside its own slice.
    std::vector<std::unique_ptr<YcsbDriver>> drivers;
    for (unsigned p = 0; p < 4; ++p) {
        config.partitions = 4;
        config.partitionIndex = p;
        config.seed = 7 + p;
        config.operationCount = 500;
        drivers.push_back(std::make_unique<YcsbDriver>(
            ctx, store, standardWorkload('B'), config));
        drivers.back()->load();
    }
    for (auto &driver : drivers) {
        const RunResult result = driver->run();
        EXPECT_EQ(result.operations, 500u);
    }
}

TEST_F(DriverFixture, PartitionedInsertsNeverCollide)
{
    // Workload D inserts new records; partitioned drivers must pick
    // globally unique tail ids (recordCount + index + k*partitions).
    // A collision would make insert() fail, so the store must grow
    // by exactly the number of insert attempts.
    std::vector<std::unique_ptr<YcsbDriver>> drivers;
    for (unsigned p = 0; p < 4; ++p) {
        config.partitions = 4;
        config.partitionIndex = p;
        config.seed = 99 + p;
        config.operationCount = 800;
        drivers.push_back(std::make_unique<YcsbDriver>(
            ctx, store, standardWorkload('D'), config));
        drivers.back()->load();
    }
    std::uint64_t inserts = 0;
    for (auto &driver : drivers) {
        const RunResult result = driver->run();
        inserts += result.insertLatency.count();
    }
    EXPECT_GT(inserts, 0u);
    EXPECT_EQ(store.size(), 500u + inserts);
}

TEST_F(DriverFixture, PartitionConfigValidation)
{
    config.partitions = 4;
    config.partitionIndex = 4; // out of range
    EXPECT_THROW(YcsbDriver(ctx, store, standardWorkload('A'), config),
                 FatalError);
    config.partitions = 0;
    config.partitionIndex = 0;
    EXPECT_THROW(YcsbDriver(ctx, store, standardWorkload('A'), config),
                 FatalError);
    config.partitions = 1000; // more partitions than records
    EXPECT_THROW(YcsbDriver(ctx, store, standardWorkload('A'), config),
                 FatalError);
}

TEST(DriverDeterminismTest, SameSeedSameResult)
{
    auto run_once = [](std::uint64_t seed) {
        sim::SimContext ctx;
        std::vector<char> buffer(32_MiB, 0);
        pheap::PlainNvSpace space(buffer.data(), buffer.size());
        auto heap = pheap::PersistentHeap::create(space);
        auto store = kvstore::KvStore::create(heap, 4096);
        DriverConfig config;
        config.recordCount = 300;
        config.operationCount = 1000;
        config.seed = seed;
        YcsbDriver driver(ctx, store, standardWorkload('A'), config);
        driver.load();
        const RunResult result = driver.run();
        // Elapsed time is seed-insensitive on the zero-cost plain
        // space; the op mix split is the seed-sensitive signature.
        return result.readLatency.count();
    };
    EXPECT_EQ(run_once(5), run_once(5));
    EXPECT_NE(run_once(5), run_once(6));
}

/** Latency histogram of reads under D skews toward recent records. */
TEST_F(DriverFixture, LatestDistributionReadsRecentKeys)
{
    YcsbDriver driver(ctx, store, standardWorkload('D'), config);
    driver.load();
    driver.run();
    // Indirect check: the store grew and nothing crashed reading
    // just-inserted keys (the driver asserts internally on misses).
    EXPECT_GT(store.size(), 500u);
}

} // namespace
} // namespace viyojit::ycsb
