/**
 * @file
 * Tests for the trace CSV reader/writer: round trips, malformed-line
 * tolerance, and end-to-end analysis of an imported trace.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/analyzer.hh"
#include "trace/csv.hh"
#include "trace/generators.hh"

namespace viyojit::trace
{
namespace
{

TEST(CsvTest, ParseValidLine)
{
    TraceRecord record;
    ASSERT_TRUE(parseCsvLine("12345,2,40960,4096,W", record));
    EXPECT_EQ(record.timestamp, 12345u);
    EXPECT_EQ(record.volumeId, 2u);
    EXPECT_EQ(record.offset, 40960u);
    EXPECT_EQ(record.length, 4096u);
    EXPECT_TRUE(record.isWrite);
}

TEST(CsvTest, ParseReadOpLowercase)
{
    TraceRecord record;
    ASSERT_TRUE(parseCsvLine("1,0,0,512,r", record));
    EXPECT_FALSE(record.isWrite);
}

TEST(CsvTest, ParseToleratesWindowsLineEndings)
{
    TraceRecord record;
    EXPECT_TRUE(parseCsvLine("1,0,0,512,W\r", record));
}

TEST(CsvTest, RejectsMalformedLines)
{
    TraceRecord record;
    EXPECT_FALSE(parseCsvLine("", record));
    EXPECT_FALSE(parseCsvLine("# comment", record));
    EXPECT_FALSE(parseCsvLine("1,0,0,512", record));        // no op
    EXPECT_FALSE(parseCsvLine("1,0,0,512,X", record));      // bad op
    EXPECT_FALSE(parseCsvLine("a,0,0,512,W", record));      // bad num
    EXPECT_FALSE(parseCsvLine("1,0,0,0,W", record));        // zero len
    EXPECT_FALSE(parseCsvLine("1,0,0,512,WW", record));     // long op
}

TEST(CsvTest, ReadStreamSkipsHeaderAndCountsGlitches)
{
    std::istringstream in(
        "timestamp_ns,volume_id,offset,length,op\n"
        "100,0,0,512,W\n"
        "garbage line\n"
        "# a comment\n"
        "200,0,512,512,R\n");
    std::vector<TraceRecord> records;
    const CsvReadStats stats = readCsv(
        in, [&](const TraceRecord &r) { records.push_back(r); });
    EXPECT_EQ(stats.records, 2u);
    EXPECT_EQ(stats.skippedLines, 1u);
    ASSERT_EQ(records.size(), 2u);
    EXPECT_TRUE(records[0].isWrite);
    EXPECT_FALSE(records[1].isWrite);
}

TEST(CsvTest, WriteReadRoundTrip)
{
    std::ostringstream out;
    writeCsvHeader(out);
    TraceRecord original{987654321, 3, 1_MiB, 8192, true};
    writeCsvRecord(out, original);
    writeCsvRecord(out, TraceRecord{987655000, 3, 0, 512, false});

    std::istringstream in(out.str());
    std::vector<TraceRecord> records;
    readCsv(in, [&](const TraceRecord &r) { records.push_back(r); });
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].timestamp, original.timestamp);
    EXPECT_EQ(records[0].volumeId, original.volumeId);
    EXPECT_EQ(records[0].offset, original.offset);
    EXPECT_EQ(records[0].length, original.length);
    EXPECT_EQ(records[0].isWrite, original.isWrite);
    EXPECT_FALSE(records[1].isWrite);
}

TEST(CsvTest, GeneratedTraceSurvivesRoundTripAnalysis)
{
    // Export a synthetic volume to CSV, re-import it, and check the
    // analyzer produces identical skew metrics both ways.
    const VolumeParams params = azureBlobParams().volumes[0];
    const Tick duration = 30_s;

    VolumeTraceGenerator direct_gen(params, 0, duration, 77);
    VolumeAnalyzer direct(direct_gen.info(), {10_s});
    std::ostringstream csv;
    writeCsvHeader(csv);
    TraceRecord record;
    while (direct_gen.next(record)) {
        direct.observe(record);
        writeCsvRecord(csv, record);
    }

    std::istringstream in(csv.str());
    VolumeAnalyzer imported(VolumeInfo{params.name, params.sizeBytes},
                            {10_s});
    const CsvReadStats stats = readCsv(
        in, [&](const TraceRecord &r) { imported.observe(r); });
    EXPECT_EQ(stats.skippedLines, 0u);

    const SkewMetric a = direct.skewMetrics();
    const SkewMetric b = imported.skewMetrics();
    EXPECT_EQ(a.totalWrites, b.totalWrites);
    EXPECT_EQ(a.touchedPages, b.touchedPages);
    EXPECT_DOUBLE_EQ(a.coverage99OfTouched, b.coverage99OfTouched);
    EXPECT_EQ(direct.intervalMetrics()[0].worstIntervalBytes,
              imported.intervalMetrics()[0].worstIntervalBytes);
}

} // namespace
} // namespace viyojit::trace
