file(REMOVE_RECURSE
  "CMakeFiles/trace_csv_tool.dir/trace_csv_tool.cpp.o"
  "CMakeFiles/trace_csv_tool.dir/trace_csv_tool.cpp.o.d"
  "trace_csv_tool"
  "trace_csv_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_csv_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
