# Empty dependencies file for trace_csv_tool.
# This may be replaced when dependencies are built.
