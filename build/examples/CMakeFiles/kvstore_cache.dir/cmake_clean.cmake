file(REMOVE_RECURSE
  "CMakeFiles/kvstore_cache.dir/kvstore_cache.cpp.o"
  "CMakeFiles/kvstore_cache.dir/kvstore_cache.cpp.o.d"
  "kvstore_cache"
  "kvstore_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
