# Empty compiler generated dependencies file for kvstore_cache.
# This may be replaced when dependencies are built.
