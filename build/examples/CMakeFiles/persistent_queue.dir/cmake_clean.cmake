file(REMOVE_RECURSE
  "CMakeFiles/persistent_queue.dir/persistent_queue.cpp.o"
  "CMakeFiles/persistent_queue.dir/persistent_queue.cpp.o.d"
  "persistent_queue"
  "persistent_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistent_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
