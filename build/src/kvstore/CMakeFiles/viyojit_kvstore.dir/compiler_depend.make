# Empty compiler generated dependencies file for viyojit_kvstore.
# This may be replaced when dependencies are built.
