file(REMOVE_RECURSE
  "CMakeFiles/viyojit_kvstore.dir/kvstore.cc.o"
  "CMakeFiles/viyojit_kvstore.dir/kvstore.cc.o.d"
  "libviyojit_kvstore.a"
  "libviyojit_kvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viyojit_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
