file(REMOVE_RECURSE
  "libviyojit_kvstore.a"
)
