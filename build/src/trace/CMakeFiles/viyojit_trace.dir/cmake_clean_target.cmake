file(REMOVE_RECURSE
  "libviyojit_trace.a"
)
