# Empty compiler generated dependencies file for viyojit_trace.
# This may be replaced when dependencies are built.
