file(REMOVE_RECURSE
  "CMakeFiles/viyojit_trace.dir/analyzer.cc.o"
  "CMakeFiles/viyojit_trace.dir/analyzer.cc.o.d"
  "CMakeFiles/viyojit_trace.dir/csv.cc.o"
  "CMakeFiles/viyojit_trace.dir/csv.cc.o.d"
  "CMakeFiles/viyojit_trace.dir/generators.cc.o"
  "CMakeFiles/viyojit_trace.dir/generators.cc.o.d"
  "libviyojit_trace.a"
  "libviyojit_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viyojit_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
