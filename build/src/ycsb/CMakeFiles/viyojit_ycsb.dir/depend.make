# Empty dependencies file for viyojit_ycsb.
# This may be replaced when dependencies are built.
