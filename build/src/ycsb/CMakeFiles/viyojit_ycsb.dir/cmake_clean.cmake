file(REMOVE_RECURSE
  "CMakeFiles/viyojit_ycsb.dir/driver.cc.o"
  "CMakeFiles/viyojit_ycsb.dir/driver.cc.o.d"
  "libviyojit_ycsb.a"
  "libviyojit_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viyojit_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
