file(REMOVE_RECURSE
  "libviyojit_ycsb.a"
)
