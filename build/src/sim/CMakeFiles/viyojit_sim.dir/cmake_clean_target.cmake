file(REMOVE_RECURSE
  "libviyojit_sim.a"
)
