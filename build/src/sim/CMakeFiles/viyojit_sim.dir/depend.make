# Empty dependencies file for viyojit_sim.
# This may be replaced when dependencies are built.
