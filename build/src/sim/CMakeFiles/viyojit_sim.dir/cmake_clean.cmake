file(REMOVE_RECURSE
  "CMakeFiles/viyojit_sim.dir/event_queue.cc.o"
  "CMakeFiles/viyojit_sim.dir/event_queue.cc.o.d"
  "libviyojit_sim.a"
  "libviyojit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viyojit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
