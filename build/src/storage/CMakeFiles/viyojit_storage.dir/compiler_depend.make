# Empty compiler generated dependencies file for viyojit_storage.
# This may be replaced when dependencies are built.
