file(REMOVE_RECURSE
  "libviyojit_storage.a"
)
