file(REMOVE_RECURSE
  "CMakeFiles/viyojit_storage.dir/ssd.cc.o"
  "CMakeFiles/viyojit_storage.dir/ssd.cc.o.d"
  "libviyojit_storage.a"
  "libviyojit_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viyojit_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
