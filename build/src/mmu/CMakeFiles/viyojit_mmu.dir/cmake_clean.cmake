file(REMOVE_RECURSE
  "CMakeFiles/viyojit_mmu.dir/mmu.cc.o"
  "CMakeFiles/viyojit_mmu.dir/mmu.cc.o.d"
  "CMakeFiles/viyojit_mmu.dir/page_table.cc.o"
  "CMakeFiles/viyojit_mmu.dir/page_table.cc.o.d"
  "CMakeFiles/viyojit_mmu.dir/tlb.cc.o"
  "CMakeFiles/viyojit_mmu.dir/tlb.cc.o.d"
  "libviyojit_mmu.a"
  "libviyojit_mmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viyojit_mmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
