# Empty dependencies file for viyojit_mmu.
# This may be replaced when dependencies are built.
