file(REMOVE_RECURSE
  "libviyojit_mmu.a"
)
