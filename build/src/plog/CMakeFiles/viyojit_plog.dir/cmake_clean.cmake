file(REMOVE_RECURSE
  "CMakeFiles/viyojit_plog.dir/plog.cc.o"
  "CMakeFiles/viyojit_plog.dir/plog.cc.o.d"
  "libviyojit_plog.a"
  "libviyojit_plog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viyojit_plog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
