file(REMOVE_RECURSE
  "libviyojit_plog.a"
)
