# Empty compiler generated dependencies file for viyojit_plog.
# This may be replaced when dependencies are built.
