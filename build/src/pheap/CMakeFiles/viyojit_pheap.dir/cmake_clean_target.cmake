file(REMOVE_RECURSE
  "libviyojit_pheap.a"
)
