# Empty dependencies file for viyojit_pheap.
# This may be replaced when dependencies are built.
