file(REMOVE_RECURSE
  "CMakeFiles/viyojit_pheap.dir/pheap.cc.o"
  "CMakeFiles/viyojit_pheap.dir/pheap.cc.o.d"
  "libviyojit_pheap.a"
  "libviyojit_pheap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viyojit_pheap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
