# Empty dependencies file for viyojit_runtime.
# This may be replaced when dependencies are built.
