file(REMOVE_RECURSE
  "libviyojit_runtime.a"
)
