file(REMOVE_RECURSE
  "CMakeFiles/viyojit_runtime.dir/fault_dispatch.cc.o"
  "CMakeFiles/viyojit_runtime.dir/fault_dispatch.cc.o.d"
  "CMakeFiles/viyojit_runtime.dir/region.cc.o"
  "CMakeFiles/viyojit_runtime.dir/region.cc.o.d"
  "libviyojit_runtime.a"
  "libviyojit_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viyojit_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
