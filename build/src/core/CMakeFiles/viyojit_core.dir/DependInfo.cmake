
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/broker.cc" "src/core/CMakeFiles/viyojit_core.dir/broker.cc.o" "gcc" "src/core/CMakeFiles/viyojit_core.dir/broker.cc.o.d"
  "/root/repo/src/core/controller.cc" "src/core/CMakeFiles/viyojit_core.dir/controller.cc.o" "gcc" "src/core/CMakeFiles/viyojit_core.dir/controller.cc.o.d"
  "/root/repo/src/core/dirty_tracker.cc" "src/core/CMakeFiles/viyojit_core.dir/dirty_tracker.cc.o" "gcc" "src/core/CMakeFiles/viyojit_core.dir/dirty_tracker.cc.o.d"
  "/root/repo/src/core/failure.cc" "src/core/CMakeFiles/viyojit_core.dir/failure.cc.o" "gcc" "src/core/CMakeFiles/viyojit_core.dir/failure.cc.o.d"
  "/root/repo/src/core/manager.cc" "src/core/CMakeFiles/viyojit_core.dir/manager.cc.o" "gcc" "src/core/CMakeFiles/viyojit_core.dir/manager.cc.o.d"
  "/root/repo/src/core/pressure.cc" "src/core/CMakeFiles/viyojit_core.dir/pressure.cc.o" "gcc" "src/core/CMakeFiles/viyojit_core.dir/pressure.cc.o.d"
  "/root/repo/src/core/recency.cc" "src/core/CMakeFiles/viyojit_core.dir/recency.cc.o" "gcc" "src/core/CMakeFiles/viyojit_core.dir/recency.cc.o.d"
  "/root/repo/src/core/recovery.cc" "src/core/CMakeFiles/viyojit_core.dir/recovery.cc.o" "gcc" "src/core/CMakeFiles/viyojit_core.dir/recovery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mmu/CMakeFiles/viyojit_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/viyojit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/viyojit_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/viyojit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/viyojit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
