# Empty dependencies file for viyojit_core.
# This may be replaced when dependencies are built.
