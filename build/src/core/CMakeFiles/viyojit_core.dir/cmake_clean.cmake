file(REMOVE_RECURSE
  "CMakeFiles/viyojit_core.dir/broker.cc.o"
  "CMakeFiles/viyojit_core.dir/broker.cc.o.d"
  "CMakeFiles/viyojit_core.dir/controller.cc.o"
  "CMakeFiles/viyojit_core.dir/controller.cc.o.d"
  "CMakeFiles/viyojit_core.dir/dirty_tracker.cc.o"
  "CMakeFiles/viyojit_core.dir/dirty_tracker.cc.o.d"
  "CMakeFiles/viyojit_core.dir/failure.cc.o"
  "CMakeFiles/viyojit_core.dir/failure.cc.o.d"
  "CMakeFiles/viyojit_core.dir/manager.cc.o"
  "CMakeFiles/viyojit_core.dir/manager.cc.o.d"
  "CMakeFiles/viyojit_core.dir/pressure.cc.o"
  "CMakeFiles/viyojit_core.dir/pressure.cc.o.d"
  "CMakeFiles/viyojit_core.dir/recency.cc.o"
  "CMakeFiles/viyojit_core.dir/recency.cc.o.d"
  "CMakeFiles/viyojit_core.dir/recovery.cc.o"
  "CMakeFiles/viyojit_core.dir/recovery.cc.o.d"
  "libviyojit_core.a"
  "libviyojit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viyojit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
