file(REMOVE_RECURSE
  "libviyojit_core.a"
)
