file(REMOVE_RECURSE
  "libviyojit_battery.a"
)
