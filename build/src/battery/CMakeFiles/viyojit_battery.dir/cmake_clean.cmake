file(REMOVE_RECURSE
  "CMakeFiles/viyojit_battery.dir/battery.cc.o"
  "CMakeFiles/viyojit_battery.dir/battery.cc.o.d"
  "CMakeFiles/viyojit_battery.dir/scaling.cc.o"
  "CMakeFiles/viyojit_battery.dir/scaling.cc.o.d"
  "libviyojit_battery.a"
  "libviyojit_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viyojit_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
