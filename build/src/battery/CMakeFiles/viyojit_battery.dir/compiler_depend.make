# Empty compiler generated dependencies file for viyojit_battery.
# This may be replaced when dependencies are built.
