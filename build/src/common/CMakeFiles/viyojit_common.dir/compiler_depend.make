# Empty compiler generated dependencies file for viyojit_common.
# This may be replaced when dependencies are built.
