file(REMOVE_RECURSE
  "CMakeFiles/viyojit_common.dir/distributions.cc.o"
  "CMakeFiles/viyojit_common.dir/distributions.cc.o.d"
  "CMakeFiles/viyojit_common.dir/histogram.cc.o"
  "CMakeFiles/viyojit_common.dir/histogram.cc.o.d"
  "CMakeFiles/viyojit_common.dir/logging.cc.o"
  "CMakeFiles/viyojit_common.dir/logging.cc.o.d"
  "CMakeFiles/viyojit_common.dir/rng.cc.o"
  "CMakeFiles/viyojit_common.dir/rng.cc.o.d"
  "CMakeFiles/viyojit_common.dir/stats.cc.o"
  "CMakeFiles/viyojit_common.dir/stats.cc.o.d"
  "CMakeFiles/viyojit_common.dir/table.cc.o"
  "CMakeFiles/viyojit_common.dir/table.cc.o.d"
  "libviyojit_common.a"
  "libviyojit_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viyojit_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
