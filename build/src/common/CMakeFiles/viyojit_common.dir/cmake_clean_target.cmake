file(REMOVE_RECURSE
  "libviyojit_common.a"
)
