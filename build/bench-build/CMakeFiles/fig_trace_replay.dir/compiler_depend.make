# Empty compiler generated dependencies file for fig_trace_replay.
# This may be replaced when dependencies are built.
