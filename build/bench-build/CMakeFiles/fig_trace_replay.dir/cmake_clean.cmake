file(REMOVE_RECURSE
  "../bench/fig_trace_replay"
  "../bench/fig_trace_replay.pdb"
  "CMakeFiles/fig_trace_replay.dir/fig_trace_replay.cc.o"
  "CMakeFiles/fig_trace_replay.dir/fig_trace_replay.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_trace_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
