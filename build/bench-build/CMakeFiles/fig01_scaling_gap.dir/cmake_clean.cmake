file(REMOVE_RECURSE
  "../bench/fig01_scaling_gap"
  "../bench/fig01_scaling_gap.pdb"
  "CMakeFiles/fig01_scaling_gap.dir/fig01_scaling_gap.cc.o"
  "CMakeFiles/fig01_scaling_gap.dir/fig01_scaling_gap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_scaling_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
