# Empty dependencies file for fig05_zipf_scaling.
# This may be replaced when dependencies are built.
