file(REMOVE_RECURSE
  "../bench/fig05_zipf_scaling"
  "../bench/fig05_zipf_scaling.pdb"
  "CMakeFiles/fig05_zipf_scaling.dir/fig05_zipf_scaling.cc.o"
  "CMakeFiles/fig05_zipf_scaling.dir/fig05_zipf_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_zipf_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
