# Empty compiler generated dependencies file for viyojit_bench_harness.
# This may be replaced when dependencies are built.
