file(REMOVE_RECURSE
  "../lib/libviyojit_bench_harness.a"
)
