file(REMOVE_RECURSE
  "../lib/libviyojit_bench_harness.a"
  "../lib/libviyojit_bench_harness.pdb"
  "CMakeFiles/viyojit_bench_harness.dir/harness.cc.o"
  "CMakeFiles/viyojit_bench_harness.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viyojit_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
