file(REMOVE_RECURSE
  "../bench/abl_stale_dirty_bits"
  "../bench/abl_stale_dirty_bits.pdb"
  "CMakeFiles/abl_stale_dirty_bits.dir/abl_stale_dirty_bits.cc.o"
  "CMakeFiles/abl_stale_dirty_bits.dir/abl_stale_dirty_bits.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_stale_dirty_bits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
