# Empty dependencies file for abl_stale_dirty_bits.
# This may be replaced when dependencies are built.
