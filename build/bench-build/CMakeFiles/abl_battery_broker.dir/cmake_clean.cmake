file(REMOVE_RECURSE
  "../bench/abl_battery_broker"
  "../bench/abl_battery_broker.pdb"
  "CMakeFiles/abl_battery_broker.dir/abl_battery_broker.cc.o"
  "CMakeFiles/abl_battery_broker.dir/abl_battery_broker.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_battery_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
