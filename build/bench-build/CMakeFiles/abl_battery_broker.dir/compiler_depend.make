# Empty compiler generated dependencies file for abl_battery_broker.
# This may be replaced when dependencies are built.
