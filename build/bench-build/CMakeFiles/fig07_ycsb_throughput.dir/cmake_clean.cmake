file(REMOVE_RECURSE
  "../bench/fig07_ycsb_throughput"
  "../bench/fig07_ycsb_throughput.pdb"
  "CMakeFiles/fig07_ycsb_throughput.dir/fig07_ycsb_throughput.cc.o"
  "CMakeFiles/fig07_ycsb_throughput.dir/fig07_ycsb_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_ycsb_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
