# Empty compiler generated dependencies file for fig07_ycsb_throughput.
# This may be replaced when dependencies are built.
