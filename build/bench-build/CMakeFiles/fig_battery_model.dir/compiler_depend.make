# Empty compiler generated dependencies file for fig_battery_model.
# This may be replaced when dependencies are built.
