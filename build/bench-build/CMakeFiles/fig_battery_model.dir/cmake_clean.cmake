file(REMOVE_RECURSE
  "../bench/fig_battery_model"
  "../bench/fig_battery_model.pdb"
  "CMakeFiles/fig_battery_model.dir/fig_battery_model.cc.o"
  "CMakeFiles/fig_battery_model.dir/fig_battery_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_battery_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
