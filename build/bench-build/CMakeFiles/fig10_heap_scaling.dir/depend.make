# Empty dependencies file for fig10_heap_scaling.
# This may be replaced when dependencies are built.
