# Empty dependencies file for fig09_write_rate.
# This may be replaced when dependencies are built.
