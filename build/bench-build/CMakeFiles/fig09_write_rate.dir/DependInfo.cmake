
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig09_write_rate.cc" "bench-build/CMakeFiles/fig09_write_rate.dir/fig09_write_rate.cc.o" "gcc" "bench-build/CMakeFiles/fig09_write_rate.dir/fig09_write_rate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench-build/CMakeFiles/viyojit_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/ycsb/CMakeFiles/viyojit_ycsb.dir/DependInfo.cmake"
  "/root/repo/build/src/kvstore/CMakeFiles/viyojit_kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/pheap/CMakeFiles/viyojit_pheap.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/viyojit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mmu/CMakeFiles/viyojit_mmu.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/viyojit_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/viyojit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/viyojit_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/battery/CMakeFiles/viyojit_battery.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/viyojit_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
