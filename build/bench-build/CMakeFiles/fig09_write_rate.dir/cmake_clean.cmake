file(REMOVE_RECURSE
  "../bench/fig09_write_rate"
  "../bench/fig09_write_rate.pdb"
  "CMakeFiles/fig09_write_rate.dir/fig09_write_rate.cc.o"
  "CMakeFiles/fig09_write_rate.dir/fig09_write_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_write_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
