# Empty dependencies file for fig03_write_skew_touched.
# This may be replaced when dependencies are built.
