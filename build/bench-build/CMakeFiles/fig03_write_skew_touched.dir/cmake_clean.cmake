file(REMOVE_RECURSE
  "../bench/fig03_write_skew_touched"
  "../bench/fig03_write_skew_touched.pdb"
  "CMakeFiles/fig03_write_skew_touched.dir/fig03_write_skew_touched.cc.o"
  "CMakeFiles/fig03_write_skew_touched.dir/fig03_write_skew_touched.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_write_skew_touched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
