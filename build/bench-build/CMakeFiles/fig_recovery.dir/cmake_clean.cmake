file(REMOVE_RECURSE
  "../bench/fig_recovery"
  "../bench/fig_recovery.pdb"
  "CMakeFiles/fig_recovery.dir/fig_recovery.cc.o"
  "CMakeFiles/fig_recovery.dir/fig_recovery.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
