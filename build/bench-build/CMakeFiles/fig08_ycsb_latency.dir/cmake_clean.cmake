file(REMOVE_RECURSE
  "../bench/fig08_ycsb_latency"
  "../bench/fig08_ycsb_latency.pdb"
  "CMakeFiles/fig08_ycsb_latency.dir/fig08_ycsb_latency.cc.o"
  "CMakeFiles/fig08_ycsb_latency.dir/fig08_ycsb_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ycsb_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
