# Empty dependencies file for fig08_ycsb_latency.
# This may be replaced when dependencies are built.
