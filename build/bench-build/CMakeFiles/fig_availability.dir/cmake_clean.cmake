file(REMOVE_RECURSE
  "../bench/fig_availability"
  "../bench/fig_availability.pdb"
  "CMakeFiles/fig_availability.dir/fig_availability.cc.o"
  "CMakeFiles/fig_availability.dir/fig_availability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
