# Empty dependencies file for fig_availability.
# This may be replaced when dependencies are built.
