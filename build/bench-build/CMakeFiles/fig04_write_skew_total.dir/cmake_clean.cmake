file(REMOVE_RECURSE
  "../bench/fig04_write_skew_total"
  "../bench/fig04_write_skew_total.pdb"
  "CMakeFiles/fig04_write_skew_total.dir/fig04_write_skew_total.cc.o"
  "CMakeFiles/fig04_write_skew_total.dir/fig04_write_skew_total.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_write_skew_total.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
