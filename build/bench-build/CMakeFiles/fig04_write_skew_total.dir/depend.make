# Empty dependencies file for fig04_write_skew_total.
# This may be replaced when dependencies are built.
