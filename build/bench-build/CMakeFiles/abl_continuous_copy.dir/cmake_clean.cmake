file(REMOVE_RECURSE
  "../bench/abl_continuous_copy"
  "../bench/abl_continuous_copy.pdb"
  "CMakeFiles/abl_continuous_copy.dir/abl_continuous_copy.cc.o"
  "CMakeFiles/abl_continuous_copy.dir/abl_continuous_copy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_continuous_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
