# Empty compiler generated dependencies file for abl_continuous_copy.
# This may be replaced when dependencies are built.
