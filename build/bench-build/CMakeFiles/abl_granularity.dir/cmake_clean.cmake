file(REMOVE_RECURSE
  "../bench/abl_granularity"
  "../bench/abl_granularity.pdb"
  "CMakeFiles/abl_granularity.dir/abl_granularity.cc.o"
  "CMakeFiles/abl_granularity.dir/abl_granularity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
