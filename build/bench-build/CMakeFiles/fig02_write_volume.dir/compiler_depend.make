# Empty compiler generated dependencies file for fig02_write_volume.
# This may be replaced when dependencies are built.
