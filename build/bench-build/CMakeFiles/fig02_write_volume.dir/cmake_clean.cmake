file(REMOVE_RECURSE
  "../bench/fig02_write_volume"
  "../bench/fig02_write_volume.pdb"
  "CMakeFiles/fig02_write_volume.dir/fig02_write_volume.cc.o"
  "CMakeFiles/fig02_write_volume.dir/fig02_write_volume.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_write_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
