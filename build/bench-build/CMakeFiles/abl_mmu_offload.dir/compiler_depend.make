# Empty compiler generated dependencies file for abl_mmu_offload.
# This may be replaced when dependencies are built.
