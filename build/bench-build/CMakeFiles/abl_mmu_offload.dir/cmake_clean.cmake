file(REMOVE_RECURSE
  "../bench/abl_mmu_offload"
  "../bench/abl_mmu_offload.pdb"
  "CMakeFiles/abl_mmu_offload.dir/abl_mmu_offload.cc.o"
  "CMakeFiles/abl_mmu_offload.dir/abl_mmu_offload.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_mmu_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
