file(REMOVE_RECURSE
  "../bench/abl_dedup_compression"
  "../bench/abl_dedup_compression.pdb"
  "CMakeFiles/abl_dedup_compression.dir/abl_dedup_compression.cc.o"
  "CMakeFiles/abl_dedup_compression.dir/abl_dedup_compression.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dedup_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
