# Empty dependencies file for abl_dedup_compression.
# This may be replaced when dependencies are built.
