file(REMOVE_RECURSE
  "CMakeFiles/plog_test.dir/plog_test.cc.o"
  "CMakeFiles/plog_test.dir/plog_test.cc.o.d"
  "plog_test"
  "plog_test.pdb"
  "plog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
