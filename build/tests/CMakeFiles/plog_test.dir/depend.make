# Empty dependencies file for plog_test.
# This may be replaced when dependencies are built.
