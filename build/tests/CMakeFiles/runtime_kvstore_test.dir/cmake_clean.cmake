file(REMOVE_RECURSE
  "CMakeFiles/runtime_kvstore_test.dir/runtime_kvstore_test.cc.o"
  "CMakeFiles/runtime_kvstore_test.dir/runtime_kvstore_test.cc.o.d"
  "runtime_kvstore_test"
  "runtime_kvstore_test.pdb"
  "runtime_kvstore_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/runtime_kvstore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
