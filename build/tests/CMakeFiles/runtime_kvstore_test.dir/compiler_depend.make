# Empty compiler generated dependencies file for runtime_kvstore_test.
# This may be replaced when dependencies are built.
