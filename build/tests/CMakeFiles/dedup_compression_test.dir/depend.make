# Empty dependencies file for dedup_compression_test.
# This may be replaced when dependencies are built.
