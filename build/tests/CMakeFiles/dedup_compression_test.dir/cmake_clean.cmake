file(REMOVE_RECURSE
  "CMakeFiles/dedup_compression_test.dir/dedup_compression_test.cc.o"
  "CMakeFiles/dedup_compression_test.dir/dedup_compression_test.cc.o.d"
  "dedup_compression_test"
  "dedup_compression_test.pdb"
  "dedup_compression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_compression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
