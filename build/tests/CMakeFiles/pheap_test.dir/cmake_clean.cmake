file(REMOVE_RECURSE
  "CMakeFiles/pheap_test.dir/pheap_test.cc.o"
  "CMakeFiles/pheap_test.dir/pheap_test.cc.o.d"
  "pheap_test"
  "pheap_test.pdb"
  "pheap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pheap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
