# Empty compiler generated dependencies file for hw_assist_test.
# This may be replaced when dependencies are built.
