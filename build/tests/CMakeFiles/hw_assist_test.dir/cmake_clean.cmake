file(REMOVE_RECURSE
  "CMakeFiles/hw_assist_test.dir/hw_assist_test.cc.o"
  "CMakeFiles/hw_assist_test.dir/hw_assist_test.cc.o.d"
  "hw_assist_test"
  "hw_assist_test.pdb"
  "hw_assist_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_assist_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
