# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/mmu_test[1]_include.cmake")
include("/root/repo/build/tests/battery_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/pheap_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/ycsb_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/broker_test[1]_include.cmake")
include("/root/repo/build/tests/hw_assist_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/dedup_compression_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/plog_test[1]_include.cmake")
