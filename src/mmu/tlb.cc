#include "mmu/tlb.hh"

#include "common/logging.hh"

namespace viyojit::mmu
{

Tlb::Tlb(const TlbConfig &config)
    : ways_(config.associativity)
{
    VIYOJIT_ASSERT(config.entryCount > 0, "empty TLB");
    VIYOJIT_ASSERT(config.associativity > 0, "zero associativity");
    VIYOJIT_ASSERT(config.entryCount % config.associativity == 0,
                   "TLB entries must divide evenly into sets");
    setCount_ = config.entryCount / config.associativity;
    entries_.resize(config.entryCount);
}

Tlb::Entry *
Tlb::findEntry(PageNum vpn)
{
    const unsigned set = static_cast<unsigned>(vpn % setCount_);
    Entry *base = &entries_[static_cast<std::size_t>(set) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].vpn == vpn)
            return &base[w];
    }
    return nullptr;
}

TlbEntryView
Tlb::lookup(PageNum vpn)
{
    Entry *e = findEntry(vpn);
    if (!e) {
        ++misses_;
        return {};
    }
    ++hits_;
    e->lastUse = ++useClock_;
    return {true, e->writable, e->dirtyCached};
}

void
Tlb::insert(PageNum vpn, bool writable, bool dirty)
{
    Entry *e = findEntry(vpn);
    if (!e) {
        const unsigned set = static_cast<unsigned>(vpn % setCount_);
        Entry *base = &entries_[static_cast<std::size_t>(set) * ways_];
        e = &base[0];
        for (unsigned w = 0; w < ways_; ++w) {
            if (!base[w].valid) {
                e = &base[w];
                break;
            }
            if (base[w].lastUse < e->lastUse)
                e = &base[w];
        }
    }
    e->valid = true;
    e->vpn = vpn;
    e->writable = writable;
    e->dirtyCached = dirty;
    e->lastUse = ++useClock_;
}

void
Tlb::markDirty(PageNum vpn)
{
    if (Entry *e = findEntry(vpn))
        e->dirtyCached = true;
}

void
Tlb::flushPage(PageNum vpn)
{
    if (Entry *e = findEntry(vpn)) {
        e->valid = false;
        ++shootdowns_;
    }
}

void
Tlb::flushAll()
{
    for (auto &e : entries_)
        e.valid = false;
    ++fullFlushes_;
}

} // namespace viyojit::mmu
