/**
 * @file
 * Set-associative TLB model.
 *
 * Caches the (writable, dirty) state of recently used translations.
 * Viyojit's correctness rules depend on TLB behaviour: changing a
 * page's write protection requires shooting down its entry, and the
 * epoch dirty-bit scan requires a full flush so subsequent first
 * writes set the in-memory dirty bit again (paper section 5.2).
 */

#ifndef VIYOJIT_MMU_TLB_HH
#define VIYOJIT_MMU_TLB_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace viyojit::mmu
{

/** TLB geometry and behaviour knobs. */
struct TlbConfig
{
    unsigned entryCount = 1536;
    unsigned associativity = 12;
};

/** Result of a TLB lookup. */
struct TlbEntryView
{
    bool hit = false;
    bool writable = false;
    bool dirtyCached = false;
};

/** Set-associative TLB with LRU replacement within each set. */
class Tlb
{
  public:
    explicit Tlb(const TlbConfig &config);

    /** Look up a VPN without modifying state other than recency. */
    TlbEntryView lookup(PageNum vpn);

    /** Install or refresh an entry after a walk. */
    void insert(PageNum vpn, bool writable, bool dirty);

    /** Mark the cached dirty flag for a present entry. */
    void markDirty(PageNum vpn);

    /** Invalidate one page (TLB shootdown). */
    void flushPage(PageNum vpn);

    /** Invalidate everything. */
    void flushAll();

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t flushes() const { return fullFlushes_; }
    std::uint64_t shootdowns() const { return shootdowns_; }

  private:
    struct Entry
    {
        bool valid = false;
        PageNum vpn = invalidPage;
        bool writable = false;
        bool dirtyCached = false;
        std::uint64_t lastUse = 0;
    };

    Entry *findEntry(PageNum vpn);

    unsigned setCount_;
    unsigned ways_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t fullFlushes_ = 0;
    std::uint64_t shootdowns_ = 0;
};

} // namespace viyojit::mmu

#endif // VIYOJIT_MMU_TLB_HH
