#include "mmu/mmu.hh"

#include <utility>

#include "common/logging.hh"

namespace viyojit::mmu
{

Mmu::Mmu(sim::SimContext &ctx, const MmuCostModel &costs,
         const TlbConfig &tlb_config)
    : ctx_(ctx), costs_(costs), tlb_(tlb_config)
{
}

void
Mmu::mapPage(PageNum vpn, bool writable)
{
    std::uint64_t flags = 0;
    if (writable)
        flags |= Pte::writableBit;
    table_.map(vpn, flags);
}

void
Mmu::unmapPage(PageNum vpn)
{
    table_.unmap(vpn);
    tlb_.flushPage(vpn);
}

void
Mmu::setWriteFaultHandler(WriteFaultHandler handler)
{
    faultHandler_ = std::move(handler);
}

void
Mmu::access(PageNum vpn, bool is_write)
{
    // A faulting write retries after the handler runs; bound the
    // retries so a broken handler cannot livelock the simulation.
    for (int attempt = 0; attempt < 8; ++attempt) {
        TlbEntryView view = tlb_.lookup(vpn);
        if (!view.hit) {
            ctx_.clock().advance(costs_.walkCost);
            Pte *pte = table_.find(vpn);
            VIYOJIT_ASSERT(pte && pte->present(),
                           "access to unmapped NV page ", vpn);
            pte->setAccessed(true);
            view = TlbEntryView{true, pte->writable(), pte->dirty()};
            tlb_.insert(vpn, pte->writable(), pte->dirty());
        }

        if (!is_write)
            return;

        if (!view.writable) {
            // Write-protection violation: deliver the fault.
            ctx_.clock().advance(costs_.trapCost);
            ctx_.stats().counter("mmu.write_faults").increment();
            VIYOJIT_ASSERT(faultHandler_,
                           "write fault with no handler installed");
            faultHandler_(vpn);
            // The handler is expected to have unprotected the page
            // (and shot down the TLB entry); retry the access.
            continue;
        }

        if (!view.dirtyCached) {
            // First write since the entry was cached: hardware walks
            // to set the dirty bit.
            ctx_.clock().advance(costs_.dirtySetCost);
            Pte *pte = table_.find(vpn);
            VIYOJIT_ASSERT(pte && pte->present(), "lost mapping");
            table_.noteDirty(vpn);
            pte->setShadowDirty(true);
            tlb_.markDirty(vpn);
        } else if (costs_.writeThroughDirty) {
            // Section-5.4 MMU: the dirty/shadow bits are written
            // through on every store, free of charge, so scans never
            // read stale bits and need no TLB flush.
            Pte *pte = table_.find(vpn);
            VIYOJIT_ASSERT(pte && pte->present(), "lost mapping");
            table_.noteDirty(vpn);
            pte->setShadowDirty(true);
        }
        return;
    }
    panic("write fault handler failed to unprotect page ", vpn);
}

void
Mmu::accessRange(Addr addr, std::uint64_t len, bool is_write,
                 std::uint64_t page_size)
{
    if (len == 0)
        return;
    const PageNum first = addr / page_size;
    const PageNum last = (addr + len - 1) / page_size;
    for (PageNum vpn = first; vpn <= last; ++vpn)
        access(vpn, is_write);
}

void
Mmu::protectPage(PageNum vpn)
{
    Pte *pte = table_.find(vpn);
    VIYOJIT_ASSERT(pte && pte->present(), "protecting unmapped page");
    pte->setWritable(false);
    ctx_.clock().advance(costs_.protectCost + costs_.shootdownCost);
    tlb_.flushPage(vpn);
    ctx_.stats().counter("mmu.protects").increment();
}

void
Mmu::unprotectPage(PageNum vpn)
{
    Pte *pte = table_.find(vpn);
    VIYOJIT_ASSERT(pte && pte->present(), "unprotecting unmapped page");
    pte->setWritable(true);
    ctx_.clock().advance(costs_.protectCost + costs_.shootdownCost);
    tlb_.flushPage(vpn);
    ctx_.stats().counter("mmu.unprotects").increment();
}

bool
Mmu::isProtected(PageNum vpn) const
{
    const Pte *pte = table_.find(vpn);
    return pte && pte->present() && !pte->writable();
}

void
Mmu::scanAndClearDirty(PageNum begin, PageNum end, bool flush_tlb,
                       FunctionRef<void(PageNum, bool was_dirty)> visitor,
                       bool legacy_walk)
{
    if (flush_tlb) {
        // Flushing first means post-scan writes reload PTEs and set
        // the in-memory dirty bit again, so the next scan sees them.
        ctx_.clock().advance(costs_.fullFlushCost);
        tlb_.flushAll();
    }
    // `charged` is the work the scan actually performs: every present
    // page on the legacy walk, only touched tree nodes + dirty leaves
    // on the hierarchical one.
    std::uint64_t visited = 0;
    std::uint64_t charged = 0;
    if (legacy_walk) {
        table_.forEachPresent(begin, end, [&](PageNum vpn, Pte &pte) {
            ++visited;
            const bool was_dirty = pte.dirty();
            if (was_dirty)
                table_.clearDirty(vpn);
            visitor(vpn, was_dirty);
        });
        charged = visited;
    } else {
        const DirtyScanStats stats = table_.forEachDirty(
            begin, end, [&](PageNum vpn, Pte &pte) {
                pte.setDirty(false);
                visitor(vpn, /*was_dirty=*/true);
            });
        visited = stats.visitedPages;
        charged = stats.visitedPages + stats.visitedNodes;
        ctx_.stats()
            .counter("mmu.scan_skipped_subtrees")
            .increment(stats.skippedSubtrees);
    }
    if (costs_.chargeScanToClock)
        ctx_.clock().advance(costs_.dirtyScanPerPage * charged);
    ctx_.stats()
        .counter("mmu.scan_background_ticks")
        .increment(costs_.dirtyScanPerPage * charged);
    ctx_.stats().counter("mmu.dirty_scans").increment();
    ctx_.stats().counter("mmu.dirty_scan_pages").increment(visited);
}

} // namespace viyojit::mmu
