#include "mmu/page_table.hh"

#include "common/logging.hh"

namespace viyojit::mmu
{

PageTable::PageTable() = default;

void
PageTable::map(PageNum vpn, std::uint64_t flags, PageNum pfn)
{
    VIYOJIT_ASSERT(vpn <= maxVpn, "VPN out of addressable range");

    const unsigned i3 = index(vpn, 3);
    auto &l3_slot = root_.children[i3];
    if (!l3_slot) {
        l3_slot = std::make_unique<Level3>();
        setBit(root_.presentMask, i3);
    }
    const unsigned i2 = index(vpn, 2);
    auto &l2_slot = l3_slot->children[i2];
    if (!l2_slot) {
        l2_slot = std::make_unique<Level2>();
        setBit(l3_slot->presentMask, i2);
    }
    const unsigned i1 = index(vpn, 1);
    auto &l1_slot = l2_slot->children[i1];
    if (!l1_slot) {
        l1_slot = std::make_unique<Level1>();
        setBit(l2_slot->presentMask, i1);
    }

    const unsigned i0 = index(vpn, 0);
    Pte &pte = l1_slot->entries[i0];
    if (!pte.present())
        ++mappedCount_;
    else if (pte.dirty())
        clearDirtyPath(vpn);
    pte = Pte(flags | Pte::presentBit);
    pte.setPfn(pfn == invalidPage ? vpn : pfn);
    setBit(l1_slot->presentMask, i0);
    if (pte.dirty())
        noteDirty(vpn);
}

void
PageTable::unmap(PageNum vpn)
{
    Pte *pte = find(vpn);
    if (pte && pte->present()) {
        if (pte->dirty())
            clearDirtyPath(vpn);
        *pte = Pte();
        --mappedCount_;
        // The interior present masks stay set (nodes are never
        // freed); only the leaf presence bit is cleared.
        Level1 &l1 = *root_.children[index(vpn, 3)]
                          ->children[index(vpn, 2)]
                          ->children[index(vpn, 1)];
        clearBit(l1.presentMask, index(vpn, 0));
    }
}

bool
PageTable::isMapped(PageNum vpn) const
{
    const Pte *pte = find(vpn);
    return pte && pte->present();
}

Pte *
PageTable::find(PageNum vpn)
{
    if (vpn > maxVpn)
        return nullptr;
    auto &l3 = root_.children[index(vpn, 3)];
    if (!l3)
        return nullptr;
    auto &l2 = l3->children[index(vpn, 2)];
    if (!l2)
        return nullptr;
    auto &l1 = l2->children[index(vpn, 1)];
    if (!l1)
        return nullptr;
    return &l1->entries[index(vpn, 0)];
}

const Pte *
PageTable::find(PageNum vpn) const
{
    return const_cast<PageTable *>(this)->find(vpn);
}

void
PageTable::noteDirty(PageNum vpn)
{
    VIYOJIT_ASSERT(vpn <= maxVpn, "VPN out of addressable range");
    const unsigned i3 = index(vpn, 3);
    auto &l3 = root_.children[i3];
    VIYOJIT_ASSERT(l3, "noteDirty on unmapped page ", vpn);
    const unsigned i2 = index(vpn, 2);
    auto &l2 = l3->children[i2];
    VIYOJIT_ASSERT(l2, "noteDirty on unmapped page ", vpn);
    const unsigned i1 = index(vpn, 1);
    auto &l1 = l2->children[i1];
    VIYOJIT_ASSERT(l1, "noteDirty on unmapped page ", vpn);
    const unsigned i0 = index(vpn, 0);
    Pte &pte = l1->entries[i0];
    VIYOJIT_ASSERT(pte.present(), "noteDirty on unmapped page ", vpn);

    pte.setDirty(true);
    setBit(l1->dirtyMask, i0);
    setBit(l2->dirtyMask, i1);
    setBit(l3->dirtyMask, i2);
    setBit(root_.dirtyMask, i3);
}

void
PageTable::clearDirty(PageNum vpn)
{
    Pte *pte = find(vpn);
    if (!pte || !pte->present())
        return;
    pte->setDirty(false);
    clearDirtyPath(vpn);
}

void
PageTable::clearDirtyPath(PageNum vpn)
{
    const unsigned i3 = index(vpn, 3);
    const unsigned i2 = index(vpn, 2);
    const unsigned i1 = index(vpn, 1);
    const unsigned i0 = index(vpn, 0);
    Level3 &l3 = *root_.children[i3];
    Level2 &l2 = *l3.children[i2];
    Level1 &l1 = *l2.children[i1];
    clearBit(l1.dirtyMask, i0);
    if (!allZero(l1.dirtyMask))
        return;
    clearBit(l2.dirtyMask, i1);
    if (!allZero(l2.dirtyMask))
        return;
    clearBit(l3.dirtyMask, i2);
    if (!allZero(l3.dirtyMask))
        return;
    clearBit(root_.dirtyMask, i3);
}

bool
PageTable::anyDirty() const
{
    return !allZero(root_.dirtyMask);
}

bool
PageTable::dirtySummariesConsistent() const
{
    auto *self = const_cast<PageTable *>(this);
    for (unsigned i3 = 0; i3 < levelEntries; ++i3) {
        auto &l3 = self->root_.children[i3];
        bool dirty3 = false;
        if (l3) {
            for (unsigned i2 = 0; i2 < levelEntries; ++i2) {
                auto &l2 = l3->children[i2];
                bool dirty2 = false;
                if (l2) {
                    for (unsigned i1 = 0; i1 < levelEntries; ++i1) {
                        auto &l1 = l2->children[i1];
                        bool dirty1 = false;
                        if (l1) {
                            for (unsigned i0 = 0; i0 < levelEntries;
                                 ++i0) {
                                const Pte &pte = l1->entries[i0];
                                const bool leaf_dirty =
                                    pte.present() && pte.dirty();
                                if (leaf_dirty != testBit(l1->dirtyMask,
                                                          i0)) {
                                    return false;
                                }
                                dirty1 |= leaf_dirty;
                            }
                        }
                        if (dirty1 != (l1 && testBit(l2->dirtyMask, i1)))
                            return false;
                        dirty2 |= dirty1;
                    }
                }
                if (dirty2 != (l2 && testBit(l3->dirtyMask, i2)))
                    return false;
                dirty3 |= dirty2;
            }
        }
        if (dirty3 != (l3 && testBit(root_.dirtyMask, i3)))
            return false;
    }
    return true;
}

void
PageTable::forEachPresent(PageNum begin, PageNum end,
                          FunctionRef<void(PageNum, Pte &)> fn)
{
    if (begin >= end)
        return;
    // Walk the radix tree via the present masks, pruning absent
    // subtrees without probing their pointer arrays.
    forEachMaskedChild(
        root_.presentMask, 3, 0, begin, end, [&](unsigned i3) {
            Level3 &l3 = *root_.children[i3];
            const PageNum base3 = static_cast<PageNum>(i3)
                                  << (levelBits * 3);
            forEachMaskedChild(
                l3.presentMask, 2, base3, begin, end, [&](unsigned i2) {
                    Level2 &l2 = *l3.children[i2];
                    const PageNum base2 =
                        base3 |
                        (static_cast<PageNum>(i2) << (levelBits * 2));
                    forEachMaskedChild(
                        l2.presentMask, 1, base2, begin, end,
                        [&](unsigned i1) {
                            Level1 &l1 = *l2.children[i1];
                            const PageNum base1 =
                                base2 |
                                (static_cast<PageNum>(i1) << levelBits);
                            forEachMaskedChild(
                                l1.presentMask, 0, base1, begin, end,
                                [&](unsigned i0) {
                                    Pte &pte = l1.entries[i0];
                                    if (pte.present())
                                        fn(base1 | i0, pte);
                                });
                        });
                });
        });
}

} // namespace viyojit::mmu
