#include "mmu/page_table.hh"

#include "common/logging.hh"

namespace viyojit::mmu
{

PageTable::PageTable() = default;

void
PageTable::map(PageNum vpn, std::uint64_t flags, PageNum pfn)
{
    VIYOJIT_ASSERT(vpn <= maxVpn, "VPN out of addressable range");

    auto &l3_slot = root_.children[index(vpn, 3)];
    if (!l3_slot)
        l3_slot = std::make_unique<Level3>();
    auto &l2_slot = l3_slot->children[index(vpn, 2)];
    if (!l2_slot)
        l2_slot = std::make_unique<Level2>();
    auto &l1_slot = l2_slot->children[index(vpn, 1)];
    if (!l1_slot)
        l1_slot = std::make_unique<Level1>();

    Pte &pte = l1_slot->entries[index(vpn, 0)];
    if (!pte.present())
        ++mappedCount_;
    pte = Pte(flags | Pte::presentBit);
    pte.setPfn(pfn == invalidPage ? vpn : pfn);
}

void
PageTable::unmap(PageNum vpn)
{
    Pte *pte = find(vpn);
    if (pte && pte->present()) {
        *pte = Pte();
        --mappedCount_;
    }
}

bool
PageTable::isMapped(PageNum vpn) const
{
    const Pte *pte = find(vpn);
    return pte && pte->present();
}

Pte *
PageTable::find(PageNum vpn)
{
    if (vpn > maxVpn)
        return nullptr;
    auto &l3 = root_.children[index(vpn, 3)];
    if (!l3)
        return nullptr;
    auto &l2 = l3->children[index(vpn, 2)];
    if (!l2)
        return nullptr;
    auto &l1 = l2->children[index(vpn, 1)];
    if (!l1)
        return nullptr;
    return &l1->entries[index(vpn, 0)];
}

const Pte *
PageTable::find(PageNum vpn) const
{
    return const_cast<PageTable *>(this)->find(vpn);
}

void
PageTable::forEachPresent(PageNum begin, PageNum end,
                          const std::function<void(PageNum, Pte &)> &fn)
{
    if (begin >= end)
        return;
    // Walk the radix tree, pruning absent subtrees.
    for (unsigned i3 = 0; i3 < levelEntries; ++i3) {
        auto &l3 = root_.children[i3];
        if (!l3)
            continue;
        const PageNum base3 = static_cast<PageNum>(i3)
                              << (levelBits * 3);
        if (base3 >= end || base3 + (1ULL << (levelBits * 3)) <= begin)
            continue;
        for (unsigned i2 = 0; i2 < levelEntries; ++i2) {
            auto &l2 = l3->children[i2];
            if (!l2)
                continue;
            const PageNum base2 =
                base3 | (static_cast<PageNum>(i2) << (levelBits * 2));
            if (base2 >= end ||
                base2 + (1ULL << (levelBits * 2)) <= begin) {
                continue;
            }
            for (unsigned i1 = 0; i1 < levelEntries; ++i1) {
                auto &l1 = l2->children[i1];
                if (!l1)
                    continue;
                const PageNum base1 =
                    base2 | (static_cast<PageNum>(i1) << levelBits);
                if (base1 >= end ||
                    base1 + (1ULL << levelBits) <= begin) {
                    continue;
                }
                for (unsigned i0 = 0; i0 < levelEntries; ++i0) {
                    const PageNum vpn = base1 | i0;
                    if (vpn < begin || vpn >= end)
                        continue;
                    Pte &pte = l1->entries[i0];
                    if (pte.present())
                        fn(vpn, pte);
                }
            }
        }
    }
}

} // namespace viyojit::mmu
