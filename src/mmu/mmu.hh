/**
 * @file
 * MMU facade: translates accesses against the page table through the
 * TLB, charges modelled costs to the virtual clock, maintains
 * accessed/dirty bits with hardware semantics, and delivers
 * write-protection faults to a registered handler (Viyojit's fault
 * path, paper figure 6 steps 2-3).
 */

#ifndef VIYOJIT_MMU_MMU_HH
#define VIYOJIT_MMU_MMU_HH

#include <cstdint>
#include <functional>

#include "common/function_ref.hh"
#include "common/types.hh"
#include "mmu/page_table.hh"
#include "mmu/tlb.hh"
#include "sim/context.hh"

namespace viyojit::mmu
{

/**
 * Virtual-time costs of MMU operations.  Defaults are calibrated to
 * the magnitudes the paper reports for its Nehalem-class testbed
 * (user-level trap round trip in the microseconds; PTE manipulation
 * and shootdowns in the hundreds of nanoseconds).
 */
struct MmuCostModel
{
    /** Write-protection fault: trap + handler entry/exit. */
    Tick trapCost = 3_us;

    /** Page-table walk on a TLB miss. */
    Tick walkCost = 60_ns;

    /** Hardware dirty-bit set (write-back of the PTE). */
    Tick dirtySetCost = 30_ns;

    /** Toggling a page's write-protection (PTE update). */
    Tick protectCost = 400_ns;

    /** Single-page TLB shootdown. */
    Tick shootdownCost = 500_ns;

    /** Full TLB flush (instruction only; refills charge walks). */
    Tick fullFlushCost = 2_us;

    /** Per-page cost of the epoch dirty-bit scan walk. */
    Tick dirtyScanPerPage = 15_ns;

    /**
     * Charge the per-page scan time to the main clock.  False by
     * default: the scan runs on a background core in the paper's
     * 20-core testbed, so only its TLB-flush side effect stalls the
     * application.  (True models a single-core machine.)
     */
    bool chargeScanToClock = false;

    /**
     * Model the section-5.4 MMU extension: the hardware writes the
     * dirty/shadow bits through on *every* store (not just the first
     * after a TLB fill), so epoch scans read fresh bits without a
     * TLB flush, and first writes need no write-protection trap.
     */
    bool writeThroughDirty = false;

    /**
     * OS entry cost when the hardware dirty counter crosses the
     * budget threshold (the section-5.4 interrupt) — paid only when
     * eviction work is actually needed, unlike the per-first-write
     * trap of the software implementation.
     */
    Tick assistInterruptCost = 2_us;
};

/** MMU over one NV virtual address space. */
class Mmu
{
  public:
    /**
     * Write-fault handler: invoked with the faulting VPN; must leave
     * the page writable (or the access is retried and faults again).
     */
    using WriteFaultHandler = std::function<void(PageNum)>;

    Mmu(sim::SimContext &ctx, const MmuCostModel &costs,
        const TlbConfig &tlb_config = TlbConfig{});

    /** Map a VPN, write-protected by default (paper fig. 6 step 1). */
    void mapPage(PageNum vpn, bool writable = false);

    /** Remove a mapping. */
    void unmapPage(PageNum vpn);

    /** Install the write-fault handler. */
    void setWriteFaultHandler(WriteFaultHandler handler);

    /**
     * Perform one access to `vpn`.  Charges TLB/walk costs, raises a
     * write fault through the handler when a write hits a protected
     * page, and maintains A/D bits like hardware.
     */
    void access(PageNum vpn, bool is_write);

    /** Access every page overlapped by [addr, addr + len). */
    void accessRange(Addr addr, std::uint64_t len, bool is_write,
                     std::uint64_t page_size = defaultPageSize);

    /** Write-protect a page and shoot down its TLB entry. */
    void protectPage(PageNum vpn);

    /** Make a page writable and shoot down its TLB entry. */
    void unprotectPage(PageNum vpn);

    /** True if the VPN is currently write-protected. */
    bool isProtected(PageNum vpn) const;

    /**
     * Epoch scan: report and clear the hardware dirty bit of pages in
     * [begin, end).  When `flush_tlb` is true the TLB is fully
     * flushed first so the scan observes fresh bits (the paper's
     * default); when false, stale cached-dirty TLB state makes the
     * scan miss updates (the section 6.3 ablation).
     *
     * The default path prunes clean subtrees via the page table's
     * any-dirty-below summary bits and visits only dirty pages
     * (`was_dirty == true` on every visit); scan time is charged per
     * node actually touched, and pruned children are counted in the
     * `mmu.scan_skipped_subtrees` stat.  `legacy_walk` restores the
     * pre-optimization full walk over every present page, charging
     * per present page (for A/B studies; see ViyojitConfig
     * `legacyEpochScan`).
     */
    void scanAndClearDirty(
        PageNum begin, PageNum end, bool flush_tlb,
        FunctionRef<void(PageNum, bool was_dirty)> visitor,
        bool legacy_walk = false);

    /** Direct PTE read access for tests and recovery tooling. */
    const Pte *findPte(PageNum vpn) const { return table_.find(vpn); }

    PageTable &pageTable() { return table_; }
    Tlb &tlb() { return tlb_; }

    const MmuCostModel &costs() const { return costs_; }

  private:
    sim::SimContext &ctx_;
    MmuCostModel costs_;
    PageTable table_;
    Tlb tlb_;
    WriteFaultHandler faultHandler_;
};

} // namespace viyojit::mmu

#endif // VIYOJIT_MMU_MMU_HH
