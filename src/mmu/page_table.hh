/**
 * @file
 * Four-level radix page table (x86-64 layout: 512 entries per level,
 * 36-bit virtual page numbers).
 *
 * Every node carries two 512-bit child masks:
 *
 *  - a *present* mask (which child slots are populated), letting the
 *    walkers skip absent subtrees with ctz instead of probing 512
 *    pointers;
 *  - an *any-dirty-below* summary mask, set on noteDirty() along the
 *    leaf's path and cleared as scans drain the underlying dirty
 *    bits.
 *
 * The summary masks make the epoch dirty-bit scan O(dirty): a
 * subtree whose summary bit is clear is pruned without touching any
 * of its PTEs, so a mostly-clean heap scans in the time it takes to
 * popcount a handful of words (the scan-cost concern of the NVM
 * cache literature; see DESIGN.md "Epoch-loop complexity").
 */

#ifndef VIYOJIT_MMU_PAGE_TABLE_HH
#define VIYOJIT_MMU_PAGE_TABLE_HH

#include <array>
#include <bit>
#include <cstdint>
#include <memory>

#include "common/function_ref.hh"
#include "common/types.hh"
#include "mmu/pte.hh"

namespace viyojit::mmu
{

/** Work accounting of one hierarchical dirty scan. */
struct DirtyScanStats
{
    /** Dirty leaf PTEs delivered to the visitor. */
    std::uint64_t visitedPages = 0;

    /** Tree nodes descended into (root included). */
    std::uint64_t visitedNodes = 0;

    /** Present children pruned because their summary bit was clear. */
    std::uint64_t skippedSubtrees = 0;
};

/** Radix page table mapping virtual page numbers to PTEs. */
class PageTable
{
  public:
    static constexpr unsigned levelBits = 9;
    static constexpr unsigned levelEntries = 1u << levelBits;
    static constexpr unsigned levels = 4;
    static constexpr unsigned maskWords = levelEntries / 64;

    /** Max mappable VPN (36 bits of VPN = 48-bit vaddrs). */
    static constexpr PageNum maxVpn =
        (1ULL << (levelBits * levels)) - 1;

    PageTable();

    /** Map a page with the given initial flags; pfn defaults to vpn. */
    void map(PageNum vpn, std::uint64_t flags,
             PageNum pfn = invalidPage);

    /** Remove a mapping entirely. */
    void unmap(PageNum vpn);

    /** True if the VPN is mapped and present. */
    bool isMapped(PageNum vpn) const;

    /**
     * Walk to the leaf PTE; nullptr when unmapped.  The returned
     * pointer stays valid until unmap() for that VPN.
     */
    Pte *find(PageNum vpn);
    const Pte *find(PageNum vpn) const;

    /** Number of present leaf mappings. */
    std::uint64_t mappedCount() const { return mappedCount_; }

    /**
     * Set the dirty bit of a mapped page *and* the any-dirty-below
     * summary bits along its path.  This is the only correct way to
     * dirty a page that forEachDirty() must later find; setting the
     * PTE bit directly leaves the summaries stale.
     */
    void noteDirty(PageNum vpn);

    /**
     * Clear a mapped page's dirty bit together with its summary
     * path.  Idempotent; no-op on unmapped pages.  The legacy full
     * epoch walk uses this so the summaries stay consistent even
     * when the hierarchical scan is switched off.
     */
    void clearDirty(PageNum vpn);

    /** True if any mapped page has its dirty bit set. */
    bool anyDirty() const;

    /**
     * Invariant check (tests): every summary bit is set if and only
     * if some present descendant PTE has its dirty bit set.
     */
    bool dirtySummariesConsistent() const;

    /**
     * Visit every present PTE with vpn in [begin, end).  The visitor
     * may mutate the PTE (used by the legacy epoch dirty-bit scan)
     * but must go through noteDirty() to *set* dirty bits it wants
     * summary-visible.
     */
    void forEachPresent(PageNum begin, PageNum end,
                        FunctionRef<void(PageNum, Pte &)> fn);

    /**
     * Visit every present PTE in [begin, end) whose dirty bit is
     * set, pruning clean subtrees via the summary masks.  If the
     * visitor clears the PTE's dirty bit (the epoch scan does), the
     * leaf mask bit and any emptied summary bits on the path are
     * cleared on the way out.
     *
     * @return the work accounting (visited vs. pruned).
     */
    template <typename Fn>
    DirtyScanStats
    forEachDirty(PageNum begin, PageNum end, Fn &&fn)
    {
        DirtyScanStats stats;
        if (begin >= end)
            return stats;
        ++stats.visitedNodes;
        stats.skippedSubtrees += prunedChildren(
            root_.presentMask, root_.dirtyMask, 3, 0, begin, end);
        forEachMaskedChild(
            root_.dirtyMask, 3, 0, begin, end, [&](unsigned i3) {
                Level3 &l3 = *root_.children[i3];
                const PageNum base3 = static_cast<PageNum>(i3)
                                      << (levelBits * 3);
                ++stats.visitedNodes;
                stats.skippedSubtrees +=
                    prunedChildren(l3.presentMask, l3.dirtyMask, 2,
                                   base3, begin, end);
                forEachMaskedChild(
                    l3.dirtyMask, 2, base3, begin, end,
                    [&](unsigned i2) {
                        Level2 &l2 = *l3.children[i2];
                        const PageNum base2 =
                            base3 | (static_cast<PageNum>(i2)
                                     << (levelBits * 2));
                        ++stats.visitedNodes;
                        stats.skippedSubtrees += prunedChildren(
                            l2.presentMask, l2.dirtyMask, 1, base2,
                            begin, end);
                        forEachMaskedChild(
                            l2.dirtyMask, 1, base2, begin, end,
                            [&](unsigned i1) {
                                Level1 &l1 = *l2.children[i1];
                                const PageNum base1 =
                                    base2 | (static_cast<PageNum>(i1)
                                             << levelBits);
                                ++stats.visitedNodes;
                                scanLeaf(l1, base1, begin, end, fn,
                                         stats);
                                if (allZero(l1.dirtyMask))
                                    clearBit(l2.dirtyMask, i1);
                            });
                        if (allZero(l2.dirtyMask))
                            clearBit(l3.dirtyMask, i2);
                    });
                if (allZero(l3.dirtyMask))
                    clearBit(root_.dirtyMask, i3);
            });
        return stats;
    }

  private:
    using Mask = std::array<std::uint64_t, maskWords>;

    struct Level1
    {
        std::array<Pte, levelEntries> entries;
        Mask presentMask{};
        Mask dirtyMask{};
    };

    struct Level2
    {
        std::array<std::unique_ptr<Level1>, levelEntries> children;
        Mask presentMask{};
        Mask dirtyMask{};
    };

    struct Level3
    {
        std::array<std::unique_ptr<Level2>, levelEntries> children;
        Mask presentMask{};
        Mask dirtyMask{};
    };

    struct Level4
    {
        std::array<std::unique_ptr<Level3>, levelEntries> children;
        Mask presentMask{};
        Mask dirtyMask{};
    };

    static unsigned
    index(PageNum vpn, unsigned level)
    {
        return static_cast<unsigned>(
            (vpn >> (levelBits * level)) & (levelEntries - 1));
    }

    static void
    setBit(Mask &mask, unsigned i)
    {
        mask[i / 64] |= 1ULL << (i % 64);
    }

    static void
    clearBit(Mask &mask, unsigned i)
    {
        mask[i / 64] &= ~(1ULL << (i % 64));
    }

    static bool
    testBit(const Mask &mask, unsigned i)
    {
        return (mask[i / 64] >> (i % 64)) & 1;
    }

    static bool
    allZero(const Mask &mask)
    {
        std::uint64_t any = 0;
        for (std::uint64_t word : mask)
            any |= word;
        return any == 0;
    }

    /** Span of VPNs covered by one child slot at `level`. */
    static constexpr PageNum
    childSpan(unsigned level)
    {
        return 1ULL << (levelBits * level);
    }

    /**
     * Invoke `fn(i)` for every set mask bit whose child range at
     * `level` (child i covers [base + i*span, base + (i+1)*span))
     * overlaps [begin, end), in ascending order.
     */
    template <typename Fn>
    static void
    forEachMaskedChild(const Mask &mask, unsigned level, PageNum base,
                       PageNum begin, PageNum end, Fn &&fn)
    {
        const PageNum span = childSpan(level);
        for (unsigned w = 0; w < maskWords; ++w) {
            std::uint64_t word = mask[w];
            while (word) {
                const unsigned i =
                    w * 64 +
                    static_cast<unsigned>(std::countr_zero(word));
                word &= word - 1;
                const PageNum lo = base + span * i;
                if (lo >= end)
                    return;
                if (lo + span <= begin)
                    continue;
                fn(i);
            }
        }
    }

    /** Present-but-clean children inside the scan range. */
    static std::uint64_t
    prunedChildren(const Mask &present, const Mask &dirty,
                   unsigned level, PageNum base, PageNum begin,
                   PageNum end)
    {
        const PageNum span = childSpan(level);
        // Fast path: the whole node lies inside the range.
        if (begin <= base && base + span * levelEntries <= end) {
            std::uint64_t pruned = 0;
            for (unsigned w = 0; w < maskWords; ++w)
                pruned += static_cast<std::uint64_t>(
                    std::popcount(present[w] & ~dirty[w]));
            return pruned;
        }
        std::uint64_t pruned = 0;
        forEachMaskedChild(present, level, base, begin, end,
                           [&](unsigned i) {
                               if (!testBit(dirty, i))
                                   ++pruned;
                           });
        return pruned;
    }

    template <typename Fn>
    static void
    scanLeaf(Level1 &l1, PageNum base1, PageNum begin, PageNum end,
             Fn &&fn, DirtyScanStats &stats)
    {
        forEachMaskedChild(
            l1.dirtyMask, 0, base1, begin, end, [&](unsigned i0) {
                const PageNum vpn = base1 | i0;
                Pte &pte = l1.entries[i0];
                ++stats.visitedPages;
                fn(vpn, pte);
                if (!pte.dirty())
                    clearBit(l1.dirtyMask, i0);
            });
    }

    /** Clear the dirty leaf + summary path of one page (unmap). */
    void clearDirtyPath(PageNum vpn);

    Level4 root_;
    std::uint64_t mappedCount_ = 0;
};

} // namespace viyojit::mmu

#endif // VIYOJIT_MMU_PAGE_TABLE_HH
