/**
 * @file
 * Four-level radix page table (x86-64 layout: 512 entries per level,
 * 36-bit virtual page numbers).
 */

#ifndef VIYOJIT_MMU_PAGE_TABLE_HH
#define VIYOJIT_MMU_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/types.hh"
#include "mmu/pte.hh"

namespace viyojit::mmu
{

/** Radix page table mapping virtual page numbers to PTEs. */
class PageTable
{
  public:
    static constexpr unsigned levelBits = 9;
    static constexpr unsigned levelEntries = 1u << levelBits;
    static constexpr unsigned levels = 4;

    /** Max mappable VPN (36 bits of VPN = 48-bit vaddrs). */
    static constexpr PageNum maxVpn =
        (1ULL << (levelBits * levels)) - 1;

    PageTable();

    /** Map a page with the given initial flags; pfn defaults to vpn. */
    void map(PageNum vpn, std::uint64_t flags,
             PageNum pfn = invalidPage);

    /** Remove a mapping entirely. */
    void unmap(PageNum vpn);

    /** True if the VPN is mapped and present. */
    bool isMapped(PageNum vpn) const;

    /**
     * Walk to the leaf PTE; nullptr when unmapped.  The returned
     * pointer stays valid until unmap() for that VPN.
     */
    Pte *find(PageNum vpn);
    const Pte *find(PageNum vpn) const;

    /** Number of present leaf mappings. */
    std::uint64_t mappedCount() const { return mappedCount_; }

    /**
     * Visit every present PTE with vpn in [begin, end).  The visitor
     * may mutate the PTE (used by the epoch dirty-bit scan).
     */
    void forEachPresent(PageNum begin, PageNum end,
                        const std::function<void(PageNum, Pte &)> &fn);

  private:
    struct Level1
    {
        std::array<Pte, levelEntries> entries;
    };

    struct Level2
    {
        std::array<std::unique_ptr<Level1>, levelEntries> children;
    };

    struct Level3
    {
        std::array<std::unique_ptr<Level2>, levelEntries> children;
    };

    struct Level4
    {
        std::array<std::unique_ptr<Level3>, levelEntries> children;
    };

    static unsigned
    index(PageNum vpn, unsigned level)
    {
        return static_cast<unsigned>(
            (vpn >> (levelBits * level)) & (levelEntries - 1));
    }

    Level4 root_;
    std::uint64_t mappedCount_ = 0;
};

} // namespace viyojit::mmu

#endif // VIYOJIT_MMU_PAGE_TABLE_HH
