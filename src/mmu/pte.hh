/**
 * @file
 * Page-table entry layout, following the x86-64 bit positions for the
 * flags Viyojit manipulates (present, writable, accessed, dirty).
 */

#ifndef VIYOJIT_MMU_PTE_HH
#define VIYOJIT_MMU_PTE_HH

#include <cstdint>

#include "common/types.hh"

namespace viyojit::mmu
{

/** A 64-bit page-table entry with x86-64 flag positions. */
class Pte
{
  public:
    static constexpr std::uint64_t presentBit = 1ULL << 0;
    static constexpr std::uint64_t writableBit = 1ULL << 1;
    static constexpr std::uint64_t userBit = 1ULL << 2;
    static constexpr std::uint64_t accessedBit = 1ULL << 5;
    static constexpr std::uint64_t dirtyBit = 1ULL << 6;

    /**
     * Shadow dirty bit (ignored by a real MMU; bit 9 is one of the
     * software-available bits on x86-64).  Models the MMU extension
     * of paper section 5.4.
     */
    static constexpr std::uint64_t shadowDirtyBit = 1ULL << 9;

    static constexpr std::uint64_t pfnShift = 12;
    static constexpr std::uint64_t pfnMask = 0x000ffffffffff000ULL;

    Pte() = default;

    explicit Pte(std::uint64_t raw)
        : raw_(raw)
    {}

    std::uint64_t raw() const { return raw_; }

    bool present() const { return raw_ & presentBit; }
    bool writable() const { return raw_ & writableBit; }
    bool accessed() const { return raw_ & accessedBit; }
    bool dirty() const { return raw_ & dirtyBit; }
    bool shadowDirty() const { return raw_ & shadowDirtyBit; }

    PageNum pfn() const { return (raw_ & pfnMask) >> pfnShift; }

    void setPresent(bool v) { setBit(presentBit, v); }
    void setWritable(bool v) { setBit(writableBit, v); }
    void setAccessed(bool v) { setBit(accessedBit, v); }
    void setDirty(bool v) { setBit(dirtyBit, v); }
    void setShadowDirty(bool v) { setBit(shadowDirtyBit, v); }

    void
    setPfn(PageNum pfn)
    {
        raw_ = (raw_ & ~pfnMask) | ((pfn << pfnShift) & pfnMask);
    }

  private:
    void
    setBit(std::uint64_t bit, bool v)
    {
        if (v)
            raw_ |= bit;
        else
            raw_ &= ~bit;
    }

    std::uint64_t raw_ = 0;
};

} // namespace viyojit::mmu

#endif // VIYOJIT_MMU_PTE_HH
