#include "battery/scaling.hh"

#include <cmath>

namespace viyojit::battery
{

ScalingModel::ScalingModel(double dram_growth_25yr,
                           double lithium_growth_25yr)
    : dramCagr_(std::pow(dram_growth_25yr, 1.0 / 25.0)),
      lithiumCagr_(std::pow(lithium_growth_25yr, 1.0 / 25.0))
{
}

double
ScalingModel::dramRelative(int year) const
{
    return std::pow(dramCagr_, year - 1990);
}

double
ScalingModel::lithiumRelative(int year) const
{
    return std::pow(lithiumCagr_, year - 1990);
}

double
ScalingModel::gap(int year) const
{
    return dramRelative(year) / lithiumRelative(year);
}

std::vector<GrowthPoint>
ScalingModel::series(int last_year, int step, int projection_start) const
{
    std::vector<GrowthPoint> out;
    for (int year = 1990; year <= last_year; year += step) {
        out.push_back(GrowthPoint{year, dramRelative(year),
                                  lithiumRelative(year),
                                  year > projection_start});
    }
    return out;
}

} // namespace viyojit::battery
