#include "battery/battery.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace viyojit::battery
{

Battery::Battery(const BatteryConfig &config)
    : config_(config)
{
    VIYOJIT_ASSERT(config.nominalJoules > 0, "battery with no energy");
    VIYOJIT_ASSERT(config.depthOfDischarge > 0 &&
                       config.depthOfDischarge <= 1.0,
                   "depth of discharge out of range");
    VIYOJIT_ASSERT(config.chemistryDerate > 0 &&
                       config.chemistryDerate <= 1.0,
                   "chemistry derate out of range");
}

double
Battery::effectiveJoules() const
{
    double fade = config_.fadePerYear * ageYears_;
    if (ambientCelsius_ > 25.0)
        fade += config_.fadePerDegreeAbove25 * (ambientCelsius_ - 25.0);
    const double health =
        std::max(0.0, (1.0 - fade) * (1.0 - failedCellFraction_));
    return config_.nominalJoules * config_.chemistryDerate *
           config_.depthOfDischarge * health;
}

double
Battery::flushSeconds(const PowerModel &power) const
{
    return effectiveJoules() / power.flushWatts();
}

void
Battery::setAgeYears(double years)
{
    VIYOJIT_ASSERT(years >= 0, "negative age");
    ageYears_ = years;
    notify();
}

void
Battery::setAmbientCelsius(double celsius)
{
    ambientCelsius_ = celsius;
    notify();
}

void
Battery::setFailedCellFraction(double fraction)
{
    VIYOJIT_ASSERT(fraction >= 0 && fraction <= 1.0,
                   "failed fraction out of range");
    failedCellFraction_ = fraction;
    notify();
}

void
Battery::addCapacityListener(CapacityListener listener)
{
    listeners_.push_back(std::move(listener));
}

void
Battery::notify()
{
    const double joules = effectiveJoules();
    for (auto &listener : listeners_)
        listener(joules);
}

DirtyBudgetCalculator::DirtyBudgetCalculator(
    PowerModel power, double ssd_write_bandwidth_bytes_per_sec,
    double bandwidth_safety_factor)
    : power_(power),
      ssdWriteBandwidth_(ssd_write_bandwidth_bytes_per_sec),
      bandwidthSafetyFactor_(bandwidth_safety_factor)
{
    VIYOJIT_ASSERT(ssd_write_bandwidth_bytes_per_sec > 0,
                   "zero SSD bandwidth");
    VIYOJIT_ASSERT(bandwidth_safety_factor > 0 &&
                       bandwidth_safety_factor <= 1.0,
                   "safety factor out of range");
}

void
DirtyBudgetCalculator::setMeasuredFlushBandwidth(double bytes_per_sec)
{
    VIYOJIT_ASSERT(bytes_per_sec >= 0,
                   "negative measured flush bandwidth");
    measured_ = bytes_per_sec;
}

void
DirtyBudgetCalculator::setAchievedCompression(double ratio)
{
    VIYOJIT_ASSERT(ratio >= 1.0,
                   "compression ratio below 1 would shrink the data");
    compression_ = ratio;
}

double
DirtyBudgetCalculator::conservativeBandwidth() const
{
    const double base = measured_ > 0.0 ? measured_
                                        : ssdWriteBandwidth_;
    return base * bandwidthSafetyFactor_;
}

std::uint64_t
DirtyBudgetCalculator::budgetBytes(double effective_joules) const
{
    // The channel moves stored bytes; an achieved ratio r means each
    // channel byte retires r raw bytes, so the raw-byte budget scales
    // by r while the energy term is untouched.
    const double seconds = effective_joules / power_.flushWatts();
    return static_cast<std::uint64_t>(
        seconds * conservativeBandwidth() * compression_);
}

std::uint64_t
DirtyBudgetCalculator::budgetPages(double effective_joules,
                                   std::uint64_t page_size) const
{
    return budgetBytes(effective_joules) / page_size;
}

double
DirtyBudgetCalculator::requiredJoules(std::uint64_t bytes) const
{
    return flushSeconds(bytes) * power_.flushWatts();
}

double
DirtyBudgetCalculator::flushSeconds(std::uint64_t bytes) const
{
    // `bytes` is raw; compression shrinks what the channel carries.
    return static_cast<double>(bytes) /
           (conservativeBandwidth() * compression_);
}

} // namespace viyojit::battery
