/**
 * @file
 * Server component power model used to convert battery energy into
 * flush time (paper section 5.1: "Using the peak power usage of
 * different system components (CPU, DRAM, SSD, etc), we determine the
 * amount of time the provisioned battery can support the entire
 * system").
 */

#ifndef VIYOJIT_BATTERY_POWER_MODEL_HH
#define VIYOJIT_BATTERY_POWER_MODEL_HH

#include <cstdint>

namespace viyojit::battery
{

/** Peak power draws during a post-power-loss flush, in watts. */
struct PowerModel
{
    /** CPU package power while orchestrating the flush. */
    double cpuWatts = 120.0;

    /** DRAM refresh + access power per GiB. */
    double dramWattsPerGib = 0.375;

    /** DRAM capacity being kept alive, in GiB. */
    double dramGib = 64.0;

    /** SSD write power. */
    double ssdWatts = 12.0;

    /** Fans, VRMs, NIC, board. */
    double otherWatts = 40.0;

    /** Total system draw during the backup flush. */
    double
    flushWatts() const
    {
        return cpuWatts + dramWattsPerGib * dramGib + ssdWatts +
               otherWatts;
    }
};

} // namespace viyojit::battery

#endif // VIYOJIT_BATTERY_POWER_MODEL_HH
