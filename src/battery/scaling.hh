/**
 * @file
 * DRAM vs. lithium density scaling model behind paper figure 1:
 * DRAM capacity per rack unit grew >50,000x from 1990 to 2015 while
 * lithium energy density grew ~3.3x in the same period.
 */

#ifndef VIYOJIT_BATTERY_SCALING_HH
#define VIYOJIT_BATTERY_SCALING_HH

#include <vector>

namespace viyojit::battery
{

/** One sample of the relative-growth series. */
struct GrowthPoint
{
    int year;
    double dramRelative;    ///< DRAM GB/RU relative to 1990.
    double lithiumRelative; ///< Li-ion J/volume relative to 1990.
    bool projected;         ///< True for years beyond the last datum.
};

/** Exponential growth model fit to the paper's endpoints. */
class ScalingModel
{
  public:
    /**
     * @param dram_growth_25yr total DRAM growth over 25 years
     *        (paper: >50,000x; we use the stated "four orders of
     *        magnitude plus" midpoint 50,000).
     * @param lithium_growth_25yr total Li growth over 25 years
     *        (paper: 3.3x).
     */
    ScalingModel(double dram_growth_25yr = 50000.0,
                 double lithium_growth_25yr = 3.3);

    /** Relative DRAM density at `year` (1990 = 1.0). */
    double dramRelative(int year) const;

    /** Relative lithium density at `year` (1990 = 1.0). */
    double lithiumRelative(int year) const;

    /** Ratio of DRAM growth to lithium growth at `year`. */
    double gap(int year) const;

    /**
     * Series from 1990 to `last_year` inclusive, stepping by `step`;
     * years after `projection_start` are flagged projected.
     */
    std::vector<GrowthPoint> series(int last_year = 2020, int step = 5,
                                    int projection_start = 2015) const;

  private:
    double dramCagr_;
    double lithiumCagr_;
};

} // namespace viyojit::battery

#endif // VIYOJIT_BATTERY_SCALING_HH
