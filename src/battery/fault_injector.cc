#include "battery/fault_injector.hh"

#include <algorithm>

#include "common/logging.hh"

namespace viyojit::battery
{

BatteryFaultInjector::BatteryFaultInjector(
    sim::SimContext &ctx, Battery &battery,
    const BatteryFaultConfig &config)
    : ctx_(ctx), battery_(battery), config_(config), rng_(config.seed)
{
    if (config_.checkInterval == 0)
        fatal("battery fault injector needs a nonzero check interval");
    auto probability = [](double p) { return p >= 0.0 && p <= 1.0; };
    if (!probability(config_.cellFailureProb) ||
        !probability(config_.fadeProb) ||
        !probability(config_.recoveryProb))
        fatal("battery fault probabilities must be in [0, 1]");
    if (config_.maxFailedFraction < 0.0 ||
        config_.maxFailedFraction >= 1.0)
        fatal("max failed-cell fraction must be in [0, 1)");
}

void
BatteryFaultInjector::start()
{
    running_ = true;
    ++generation_;
    scheduleNext();
}

void
BatteryFaultInjector::stop()
{
    running_ = false;
    ++generation_;
}

void
BatteryFaultInjector::scheduleNext()
{
    const std::uint64_t generation = generation_;
    ctx_.events().schedule(ctx_.now() + config_.checkInterval,
                           [this, generation]() {
                               if (!running_ ||
                                   generation != generation_)
                                   return;
                               tick();
                               scheduleNext();
                           });
}

void
BatteryFaultInjector::tick()
{
    // Fixed draw order keeps a seed's event stream stable across
    // config tweaks to unrelated probabilities.
    const bool failCells = rng_.nextBool(config_.cellFailureProb);
    const bool fade = rng_.nextBool(config_.fadeProb);
    const bool recover = rng_.nextBool(config_.recoveryProb);

    if (failCells &&
        battery_.failedCellFraction() < config_.maxFailedFraction) {
        const double fraction =
            std::min(config_.maxFailedFraction,
                     battery_.failedCellFraction() +
                         config_.cellFailureStep);
        ++stats_.cellFailureEvents;
        ctx_.stats().counter("battery.cell_failure_events").increment();
        battery_.setFailedCellFraction(fraction);
    }
    if (fade) {
        ++stats_.fadeEvents;
        ctx_.stats().counter("battery.fade_events").increment();
        battery_.setAgeYears(battery_.ageYears() +
                             config_.fadeStepYears);
    }
    if (recover && battery_.failedCellFraction() > 0.0) {
        ++stats_.recoveryEvents;
        ctx_.stats().counter("battery.recovery_events").increment();
        battery_.setFailedCellFraction(
            battery_.failedCellFraction() / 2.0);
    }
}

} // namespace viyojit::battery
