/**
 * @file
 * Battery pack model.
 *
 * Captures the derating chain the paper walks through in section 2.2:
 * nominal energy -> data-center-grade chemistry derate -> depth-of-
 * discharge cap -> aging/temperature fade.  The effective energy is
 * what the dirty-budget conversion may rely on, and capacity-change
 * listeners let Viyojit retune the budget at runtime (section 8,
 * "Handling battery cell failures").
 */

#ifndef VIYOJIT_BATTERY_BATTERY_HH
#define VIYOJIT_BATTERY_BATTERY_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "battery/power_model.hh"
#include "common/types.hh"

namespace viyojit::battery
{

/** Static battery configuration. */
struct BatteryConfig
{
    /** Nameplate energy in joules. */
    double nominalJoules = 30000.0;

    /**
     * Usable fraction per discharge; data-center packs stop at ~50%
     * depth of discharge to reach a 3-4 year life (paper section 2.2).
     */
    double depthOfDischarge = 0.5;

    /**
     * Data-center cells trade ~30% energy density for higher power
     * capability (paper section 2.2).
     */
    double chemistryDerate = 0.7;

    /** Capacity fade per year of age (linear approximation). */
    double fadePerYear = 0.05;

    /** Extra fade per degree C above 25C ambient. */
    double fadePerDegreeAbove25 = 0.005;
};

/** A battery pack with aging and capacity-change notification. */
class Battery
{
  public:
    using CapacityListener = std::function<void(double effective_joules)>;

    explicit Battery(const BatteryConfig &config);

    /** Nameplate joules before any derating. */
    double nominalJoules() const { return config_.nominalJoules; }

    /**
     * Energy actually available for a single emergency flush after
     * chemistry derate, DoD cap, and current fade.
     */
    double effectiveJoules() const;

    /** Seconds the given power draw can be sustained. */
    double flushSeconds(const PowerModel &power) const;

    /** Set pack age in years; notifies listeners. */
    void setAgeYears(double years);

    /** Set ambient temperature in C; notifies listeners. */
    void setAmbientCelsius(double celsius);

    /** Mark a fraction of cells failed; notifies listeners. */
    void setFailedCellFraction(double fraction);

    double ageYears() const { return ageYears_; }
    double ambientCelsius() const { return ambientCelsius_; }
    double failedCellFraction() const { return failedCellFraction_; }

    /** Register for capacity-change callbacks. */
    void addCapacityListener(CapacityListener listener);

    const BatteryConfig &config() const { return config_; }

  private:
    void notify();

    BatteryConfig config_;
    double ageYears_ = 0.0;
    double ambientCelsius_ = 25.0;
    double failedCellFraction_ = 0.0;
    std::vector<CapacityListener> listeners_;
};

/**
 * Conversions between battery energy and the dirty budget
 * (paper section 5.1).
 */
class DirtyBudgetCalculator
{
  public:
    DirtyBudgetCalculator(PowerModel power,
                          double ssd_write_bandwidth_bytes_per_sec,
                          double bandwidth_safety_factor = 0.8);

    /** Bytes that can be flushed with the given energy. */
    std::uint64_t budgetBytes(double effective_joules) const;

    /** Pages (of page_size) flushable with the given energy. */
    std::uint64_t budgetPages(double effective_joules,
                              std::uint64_t page_size) const;

    /** Joules needed to flush the given byte count. */
    double requiredJoules(std::uint64_t bytes) const;

    /** Seconds needed to flush the given byte count. */
    double flushSeconds(std::uint64_t bytes) const;

    const PowerModel &power() const { return power_; }

    /** Conservative (derated) flush bandwidth in bytes per second. */
    double conservativeBandwidth() const;

    /**
     * Replace the nameplate SSD bandwidth with a *measured* flush
     * rate (bytes/sec) — e.g. the rate a coalesced-IO emergency
     * flush actually sustained.  The safety factor still applies on
     * top, so the budget stays conservative relative to what was
     * observed.  Pass 0 to revert to the nameplate figure.
     *
     * This is the paper's decoupling knob made honest end to end:
     * batching raises the real flush rate, the measured rate raises
     * the budget, and the same battery then backs more dirty DRAM.
     */
    void setMeasuredFlushBandwidth(double bytes_per_sec);

    /** The measured override, or 0 when the nameplate is in use. */
    double measuredFlushBandwidth() const { return measured_; }

    /**
     * Fold an achieved copy-out compression ratio (raw/stored, >= 1)
     * into the conversion: the battery pays for STORED bytes, the
     * budget counts RAW pages, so an achieved ratio r lets the same
     * joules cover r times the raw bytes.  Callers must pass a
     * conservative figure — the flush-window floor
     * (DirtyPageTracker::floorRatio), never a point estimate; the
     * EWMA is for reporting (DESIGN.md §11).  Pass 1 to disable.
     */
    void setAchievedCompression(double ratio);

    /** The compression multiplier in effect (1 = off). */
    double achievedCompression() const { return compression_; }

  private:
    PowerModel power_;
    double ssdWriteBandwidth_;
    double bandwidthSafetyFactor_;
    double measured_ = 0.0;
    double compression_ = 1.0;
};

} // namespace viyojit::battery

#endif // VIYOJIT_BATTERY_BATTERY_HH
