/**
 * @file
 * Seeded runtime battery-degradation injector.
 *
 * The paper's section 8 argues Viyojit can absorb battery cell
 * failures by retuning the dirty budget at runtime; the injector
 * produces those events.  On a periodic virtual-time tick it draws
 * from a seeded stream and fires cell failures (a step increase in
 * the failed-cell fraction), accelerated fade (a step increase in
 * pack age), and occasional recoveries (pack service halving the
 * failed fraction).  Each event flows through the battery's
 * capacity-listener hook, so whatever is attached — a safe-mode
 * governor, a multi-tenant budget broker — reacts exactly as it
 * would to real telemetry.
 */

#ifndef VIYOJIT_BATTERY_FAULT_INJECTOR_HH
#define VIYOJIT_BATTERY_FAULT_INJECTOR_HH

#include <cstdint>

#include "battery/battery.hh"
#include "common/rng.hh"
#include "common/types.hh"
#include "sim/context.hh"

namespace viyojit::battery
{

/** Degradation-event probabilities, drawn once per check interval. */
struct BatteryFaultConfig
{
    /** Seed of the event stream (deterministic replay). */
    std::uint64_t seed = 1;

    /** Virtual time between event draws. */
    Tick checkInterval = 10_ms;

    /** Probability a check fails another batch of cells. */
    double cellFailureProb = 0.0;

    /** Failed-cell fraction added per failure event. */
    double cellFailureStep = 0.05;

    /** Ceiling on the injected failed fraction. */
    double maxFailedFraction = 0.6;

    /** Probability a check ages the pack by `fadeStepYears`. */
    double fadeProb = 0.0;

    /** Years of fade per fade event. */
    double fadeStepYears = 0.25;

    /** Probability a check halves the failed fraction (service). */
    double recoveryProb = 0.0;
};

/** Lifetime counters of one injector. */
struct BatteryFaultStats
{
    std::uint64_t cellFailureEvents = 0;
    std::uint64_t fadeEvents = 0;
    std::uint64_t recoveryEvents = 0;
};

/** Drives seeded degradation events into one battery pack. */
class BatteryFaultInjector
{
  public:
    BatteryFaultInjector(sim::SimContext &ctx, Battery &battery,
                         const BatteryFaultConfig &config);

    /** Begin periodic event draws (idempotent restart: reseeds nothing). */
    void start();

    /** Stop; pending draws become no-ops. */
    void stop();

    bool running() const { return running_; }

    const BatteryFaultStats &stats() const { return stats_; }

    const BatteryFaultConfig &config() const { return config_; }

  private:
    void scheduleNext();
    void tick();

    sim::SimContext &ctx_;
    Battery &battery_;
    BatteryFaultConfig config_;
    Rng rng_;

    bool running_ = false;
    std::uint64_t generation_ = 0;
    BatteryFaultStats stats_;
};

} // namespace viyojit::battery

#endif // VIYOJIT_BATTERY_FAULT_INJECTOR_HH
