#include "core/dirty_tracker.hh"

#include <algorithm>

#include "common/logging.hh"

namespace viyojit::core
{

DirtyPageTracker::DirtyPageTracker(std::uint64_t page_count)
{
    VIYOJIT_ASSERT(page_count < npos,
                   "page count exceeds tracker index width");
    position_.assign(page_count, npos);
    compressFrac_.assign(page_count, 0);
}

bool
DirtyPageTracker::markDirty(PageNum page)
{
    VIYOJIT_ASSERT(page < position_.size(), "page out of range");
    if (position_[page] != npos)
        return false;
    position_[page] = static_cast<std::uint32_t>(dirtyList_.size());
    dirtyList_.push_back(page);
    highWatermark_ = std::max<std::uint64_t>(highWatermark_,
                                             dirtyList_.size());
    ++newThisEpoch_;
    ++lifetimeEvents_;
    return true;
}

bool
DirtyPageTracker::markClean(PageNum page)
{
    VIYOJIT_ASSERT(page < position_.size(), "page out of range");
    const std::uint32_t pos = position_[page];
    if (pos == npos)
        return false;
    // Swap-remove from the dense list.
    const PageNum last = dirtyList_.back();
    dirtyList_[pos] = last;
    position_[last] = pos;
    dirtyList_.pop_back();
    position_[page] = npos;
    return true;
}

bool
DirtyPageTracker::isDirty(PageNum page) const
{
    VIYOJIT_ASSERT(page < position_.size(), "page out of range");
    return position_[page] != npos;
}

void
DirtyPageTracker::forEachDirty(FunctionRef<void(PageNum)> fn) const
{
    for (PageNum page : dirtyList_)
        fn(page);
}

void
DirtyPageTracker::recordCompressibility(PageNum page,
                                        std::uint64_t stored,
                                        std::uint64_t raw)
{
    VIYOJIT_ASSERT(page < position_.size(), "page out of range");
    VIYOJIT_ASSERT(raw > 0 && stored > 0 && stored <= raw,
                   "stored size out of range");
    // Scaled stored-fraction, ceil so a byte saved never rounds to a
    // better bucket than it earned; 0 stays reserved for "unknown".
    const std::uint64_t scaled = (stored * 255 + raw - 1) / raw;
    const auto frac = static_cast<std::uint8_t>(
        std::clamp<std::uint64_t>(scaled, 1, 255));
    compressFrac_[page] = frac;

    const double f = static_cast<double>(stored) /
                     static_cast<double>(raw);
    ewmaFrac_ = compressSamples_ == 0
                    ? f
                    : ewmaFrac_ + (f - ewmaFrac_) / 16.0;
    recentFrac_[recentHead_] = frac;
    recentHead_ = (recentHead_ + 1) % kRecentWindow;
    ++compressSamples_;
}

double
DirtyPageTracker::ewmaRatio() const
{
    if (compressSamples_ == 0 || ewmaFrac_ <= 0.0)
        return 1.0;
    return std::max(1.0, 1.0 / ewmaFrac_);
}

double
DirtyPageTracker::floorRatio() const
{
    if (compressSamples_ == 0)
        return 1.0;
    const std::size_t filled = static_cast<std::size_t>(
        std::min<std::uint64_t>(compressSamples_, kRecentWindow));
    std::uint8_t worst = 1;
    for (std::size_t i = 0; i < filled; ++i)
        worst = std::max(worst, recentFrac_[i]);
    const double floor = 255.0 / worst;
    return std::clamp(floor, 1.0, ewmaRatio());
}

} // namespace viyojit::core
