#include "core/dirty_tracker.hh"

#include <algorithm>

#include "common/logging.hh"

namespace viyojit::core
{

DirtyPageTracker::DirtyPageTracker(std::uint64_t page_count)
{
    VIYOJIT_ASSERT(page_count < npos,
                   "page count exceeds tracker index width");
    position_.assign(page_count, npos);
}

bool
DirtyPageTracker::markDirty(PageNum page)
{
    VIYOJIT_ASSERT(page < position_.size(), "page out of range");
    if (position_[page] != npos)
        return false;
    position_[page] = static_cast<std::uint32_t>(dirtyList_.size());
    dirtyList_.push_back(page);
    highWatermark_ = std::max<std::uint64_t>(highWatermark_,
                                             dirtyList_.size());
    ++newThisEpoch_;
    ++lifetimeEvents_;
    return true;
}

bool
DirtyPageTracker::markClean(PageNum page)
{
    VIYOJIT_ASSERT(page < position_.size(), "page out of range");
    const std::uint32_t pos = position_[page];
    if (pos == npos)
        return false;
    // Swap-remove from the dense list.
    const PageNum last = dirtyList_.back();
    dirtyList_[pos] = last;
    position_[last] = pos;
    dirtyList_.pop_back();
    position_[page] = npos;
    return true;
}

bool
DirtyPageTracker::isDirty(PageNum page) const
{
    VIYOJIT_ASSERT(page < position_.size(), "page out of range");
    return position_[page] != npos;
}

void
DirtyPageTracker::forEachDirty(FunctionRef<void(PageNum)> fn) const
{
    for (PageNum page : dirtyList_)
        fn(page);
}

} // namespace viyojit::core
