/**
 * @file
 * Post-reboot restore of NV-DRAM contents (paper section 8,
 * "Increased availability").
 *
 * After a power cycle, the NV-DRAM image lives on the SSD.  The
 * paper: "The start up time can be optimized by fetching pages from
 * SSD to DRAM on demand while sequentially reading data in the
 * background after the OS boots."  This module models the three
 * restore strategies so their availability trade-off is measurable:
 *
 *  - eager: sequentially reload everything before serving (the
 *    conventional approach; time-to-first-request = full reload);
 *  - demand-only: serve immediately, fault pages in as requests
 *    touch them (fast first request, long residency tail);
 *  - demand + background: demand faults for the foreground plus a
 *    sequential background sweep (the paper's recommendation).
 */

#ifndef VIYOJIT_CORE_RECOVERY_HH
#define VIYOJIT_CORE_RECOVERY_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sim/context.hh"
#include "storage/ssd.hh"

namespace viyojit::core
{

/** Restore strategies of section 8. */
enum class RestoreStrategy
{
    eager,
    demandOnly,
    demandPlusBackground,
};

/** Restore statistics. */
struct RecoveryStats
{
    std::uint64_t demandFetches = 0;
    std::uint64_t backgroundFetches = 0;

    /** Read attempts retried after an injected device error. */
    std::uint64_t readRetries = 0;

    /**
     * Background reads that failed and were skipped; the sweep
     * revisits them after the rest of the pass.
     */
    std::uint64_t sweepSkips = 0;

    /** Virtual time at which every page became resident. */
    Tick fullyResidentAt = 0;
};

/** Models the reload of one region's pages from the SSD. */
class RecoveryManager
{
  public:
    /**
     * @param ctx simulation context (the boot clock).
     * @param ssd device holding the image.
     * @param region_id region within the device.
     * @param page_count pages to restore.
     * @param page_size bytes per page.
     * @param strategy restore strategy.
     * @param max_outstanding_reads background/eager read queue depth.
     */
    RecoveryManager(sim::SimContext &ctx, storage::Ssd &ssd,
                    std::uint32_t region_id, std::uint64_t page_count,
                    std::uint64_t page_size, RestoreStrategy strategy,
                    unsigned max_outstanding_reads = 16,
                    unsigned max_read_retries = 8);

    /** Start restoring (begins the background/eager sweep). */
    void begin();

    /**
     * An application request touches `page`: block until it is
     * resident (demand-fetching it if the strategy allows).
     * @return the stall time the request experienced.
     */
    Tick access(PageNum page);

    /** True when every page is resident. */
    bool fullyResident() const
    {
        return residentCount_ == pageCount_;
    }

    /** Drive the sweep to completion (eager boot barrier). */
    void waitUntilFullyResident();

    const RecoveryStats &stats() const { return stats_; }

    std::uint64_t residentPages() const { return residentCount_; }

  private:
    /** Launch background reads up to the queue depth. */
    void pumpBackground();

    /**
     * Issue read attempt `attempt` (1-based) for `page`; returns its
     * completion time.  Failed demand attempts retry after a backoff
     * up to max_read_retries, then escalate to fatal(); failed
     * background attempts are skipped and revisited after the sweep.
     */
    Tick issueRead(PageNum page, unsigned attempt, bool background);

    /** Completion of one read attempt. */
    void onReadDone(PageNum page, unsigned attempt, bool background,
                    storage::IoStatus status);

    void markResident(PageNum page);

    sim::SimContext &ctx_;
    storage::Ssd &ssd_;
    std::uint32_t regionId_;
    std::uint64_t pageCount_;
    std::uint64_t pageSize_;
    RestoreStrategy strategy_;
    unsigned maxOutstandingReads_;
    unsigned maxReadRetries_;

    std::vector<std::uint8_t> resident_;
    std::uint64_t residentCount_ = 0;

    /** In-flight reads: page -> next state-change tick (completion
     *  or retry resubmit). */
    std::unordered_map<PageNum, Tick> inFlight_;

    /** Background reads that failed, awaiting a revisit pass. */
    std::deque<PageNum> revisit_;

    /** Next page the sequential sweep will fetch. */
    PageNum sweepCursor_ = 0;
    bool started_ = false;

    RecoveryStats stats_;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_RECOVERY_HH
