/**
 * @file
 * Post-reboot restore of NV-DRAM contents (paper section 8,
 * "Increased availability").
 *
 * After a power cycle, the NV-DRAM image lives on the SSD.  The
 * paper: "The start up time can be optimized by fetching pages from
 * SSD to DRAM on demand while sequentially reading data in the
 * background after the OS boots."  This module models the three
 * restore strategies so their availability trade-off is measurable:
 *
 *  - eager: sequentially reload everything before serving (the
 *    conventional approach; time-to-first-request = full reload);
 *  - demand-only: serve immediately, fault pages in as requests
 *    touch them (fast first request, long residency tail);
 *  - demand + background: demand faults for the foreground plus a
 *    sequential background sweep (the paper's recommendation).
 */

#ifndef VIYOJIT_CORE_RECOVERY_HH
#define VIYOJIT_CORE_RECOVERY_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "sim/context.hh"
#include "storage/ssd.hh"

namespace viyojit::core
{

/** Restore strategies of section 8. */
enum class RestoreStrategy
{
    eager,
    demandOnly,
    demandPlusBackground,
};

/** Restore statistics. */
struct RecoveryStats
{
    std::uint64_t demandFetches = 0;
    std::uint64_t backgroundFetches = 0;

    /** Read attempts retried after an injected device error. */
    std::uint64_t readRetries = 0;

    /**
     * Background reads that failed and were skipped; the sweep
     * revisits them after the rest of the pass.
     */
    std::uint64_t sweepSkips = 0;

    /**
     * Virtual time at which every page settled — became resident or
     * was quarantined.  Quarantined pages count: the restore is done
     * deciding, even though some pages came back bad.
     */
    Tick fullyResidentAt = 0;

    // Checksum verification (meaningful when a manifest is attached).

    /** Reads whose durable content failed its manifest checksum. */
    std::uint64_t checksumMismatches = 0;

    /** Mismatches on commits newer than the last sealed epoch: the
     *  torn tail of a flush the crash interrupted. */
    std::uint64_t tornRunPages = 0;

    /** Mismatches on commits AT the sealed boundary: data moved past
     *  its sealed metadata (stale epoch). */
    std::uint64_t staleEpochPages = 0;

    /** Mismatches on long-sealed commits: silent media corruption. */
    std::uint64_t silentCorruptPages = 0;

    // Quarantine escalation (replaces fatal()).

    /** Pages quarantined after exhausting all retry policy. */
    std::uint64_t quarantinedPages = 0;

    /** Demand fetches that exhausted maxReadRetries and escalated to
     *  quarantine instead of fatal(). */
    std::uint64_t demandRetryExhausted = 0;

    /** Background pages that exhausted their revisit passes. */
    std::uint64_t sweepRevisitExhausted = 0;
};

/**
 * Expected flush-commit metadata for one page, reconstructed from
 * the durable sidecar and handed to recovery for verify-on-reload.
 */
struct PageChecksum
{
    /** Committed CRC32C of the page content. */
    std::uint64_t crc = 0;

    /** Flush epoch (or commit sequence) the entry belongs to. */
    std::uint64_t epoch = 0;

    /** Run id of the flush batch that carried the page. */
    std::uint64_t runId = 0;

    /** False when the page never had a verified commit (skip it). */
    bool valid = false;
};

/** Sidecar view for verify-on-reload. */
struct RecoveryManifest
{
    /** Per-page expected checksums, indexed by page number. */
    std::vector<PageChecksum> pages;

    /**
     * Epoch boundary of the last sealed (header-committed) flush:
     * entries with a newer epoch belong to the unsealed tail a crash
     * may legitimately have torn.
     */
    std::uint64_t lastSealedEpoch = 0;
};

/** Models the reload of one region's pages from the SSD. */
class RecoveryManager
{
  public:
    /**
     * @param ctx simulation context (the boot clock).
     * @param ssd device holding the image.
     * @param region_id region within the device.
     * @param page_count pages to restore.
     * @param page_size bytes per page.
     * @param strategy restore strategy.
     * @param max_outstanding_reads background/eager read queue depth.
     */
    RecoveryManager(sim::SimContext &ctx, storage::Ssd &ssd,
                    std::uint32_t region_id, std::uint64_t page_count,
                    std::uint64_t page_size, RestoreStrategy strategy,
                    unsigned max_outstanding_reads = 16,
                    unsigned max_read_retries = 8,
                    unsigned max_revisit_passes = 3);

    /**
     * Attach expected checksums: every reloaded page is then verified
     * against its manifest entry, mismatches are classified (torn run
     * tail / stale epoch / silent corruption) and enter the same
     * retry-then-quarantine policy as device read errors.  Must be
     * called before begin().
     */
    void attachManifest(RecoveryManifest manifest);

    /** Start restoring (begins the background/eager sweep). */
    void begin();

    /**
     * An application request touches `page`: block until it is
     * resident (demand-fetching it if the strategy allows).
     * @return the stall time the request experienced.
     */
    Tick access(PageNum page);

    /** True when every page settled (resident or quarantined). */
    bool fullyResident() const
    {
        return residentCount_ == pageCount_;
    }

    /** Drive the sweep to completion (eager boot barrier). */
    void waitUntilFullyResident();

    const RecoveryStats &stats() const { return stats_; }

    std::uint64_t residentPages() const { return residentCount_; }

    /** True when `page` settled as known-bad (caller must not trust
     *  its contents: re-create, restore from elsewhere, or fail the
     *  object that owns it). */
    bool isQuarantined(PageNum page) const
    {
        return resident_[page] == kQuarantined;
    }

    /** All quarantined pages, ascending. */
    std::vector<PageNum> quarantinedPages() const;

  private:
    /** Launch background reads up to the queue depth. */
    void pumpBackground();

    /**
     * Issue read attempt `attempt` (1-based) for `page`; returns its
     * completion time.  Failed demand attempts retry after a backoff
     * up to max_read_retries, then escalate to quarantine; failed
     * background attempts are skipped and revisited after the sweep,
     * up to max_revisit_passes, then quarantined too.
     */
    Tick issueRead(PageNum page, unsigned attempt, bool background);

    /** Completion of one read attempt. */
    void onReadDone(PageNum page, unsigned attempt, bool background,
                    storage::IoStatus status);

    void markResident(PageNum page);

    /** Settle `page` as known-bad (terminal; counts as resident). */
    void quarantine(PageNum page);

    /**
     * Verify a successfully read page against the manifest; on
     * mismatch, classify it (torn / stale / silent) and return false
     * so the caller treats the read as failed.
     */
    bool checksumOk(PageNum page);

    /** Residency states in resident_. */
    static constexpr std::uint8_t kAbsent = 0;
    static constexpr std::uint8_t kResident = 1;
    static constexpr std::uint8_t kQuarantined = 2;

    sim::SimContext &ctx_;
    storage::Ssd &ssd_;
    std::uint32_t regionId_;
    std::uint64_t pageCount_;
    std::uint64_t pageSize_;
    RestoreStrategy strategy_;
    unsigned maxOutstandingReads_;
    unsigned maxReadRetries_;
    unsigned maxRevisitPasses_;

    RecoveryManifest manifest_;
    bool manifestAttached_ = false;

    std::vector<std::uint8_t> resident_;
    std::uint64_t residentCount_ = 0;

    /** Background failure count per page (bounds revisit passes). */
    std::unordered_map<PageNum, unsigned> sweepFailures_;

    /** In-flight reads: page -> next state-change tick (completion
     *  or retry resubmit). */
    std::unordered_map<PageNum, Tick> inFlight_;

    /** Background reads that failed, awaiting a revisit pass. */
    std::deque<PageNum> revisit_;

    /** Next page the sequential sweep will fetch. */
    PageNum sweepCursor_ = 0;
    bool started_ = false;

    RecoveryStats stats_;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_RECOVERY_HH
