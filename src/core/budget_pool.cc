#include "core/budget_pool.hh"

#include <algorithm>

#include "common/logging.hh"
#include "core/controller.hh"

namespace viyojit::core
{

BudgetPool::BudgetPool(std::uint64_t total_pages,
                       std::uint64_t available_pages)
    : total_(total_pages),
      available_(std::min(available_pages, total_pages))
{
    if (total_pages == 0)
        fatal("budget pool needs at least one page");
}

std::uint64_t
BudgetPool::tryBorrow(std::uint64_t want)
{
    if (want == 0)
        return 0;
    std::uint64_t avail = available_.load(std::memory_order_relaxed);
    while (avail > 0) {
        const std::uint64_t take = std::min(want, avail);
        if (available_.compare_exchange_weak(avail, avail - take,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed)) {
            borrows_.fetch_add(1, std::memory_order_relaxed);
            return take;
        }
    }
    return 0;
}

void
BudgetPool::deposit(std::uint64_t pages)
{
    if (pages)
        available_.fetch_add(pages, std::memory_order_acq_rel);
}

void
BudgetPool::grow(std::uint64_t pages)
{
    common::MutexLock guard(retuneLock_);
    // Raise the total before releasing the pages so a concurrent
    // borrower can never observe available > total headroom.
    total_.fetch_add(pages, std::memory_order_acq_rel);
    deposit(pages);
}

std::uint64_t
BudgetPool::confiscate(std::uint64_t pages)
{
    common::MutexLock guard(retuneLock_);
    std::uint64_t avail = available_.load(std::memory_order_relaxed);
    std::uint64_t take = 0;
    for (;;) {
        take = std::min(pages, avail);
        if (take == 0)
            break;
        if (available_.compare_exchange_weak(avail, avail - take,
                                             std::memory_order_acq_rel,
                                             std::memory_order_relaxed))
            break;
    }
    total_.fetch_sub(take, std::memory_order_acq_rel);
    return take;
}

void
BudgetPool::destroyReclaimed(std::uint64_t pages)
{
    if (pages == 0)
        return;
    common::MutexLock guard(retuneLock_);
    total_.fetch_sub(pages, std::memory_order_acq_rel);
}

void
redistributeBudget(BudgetPool &pool,
                   const std::vector<DirtyBudgetController *> &shards,
                   std::uint64_t new_total,
                   std::uint64_t floor_per_shard)
{
    VIYOJIT_ASSERT(!shards.empty(), "redistribute over zero shards");
    const std::uint64_t n = shards.size();
    const std::uint64_t old_total = pool.totalPages();
    if (new_total == 0)
        fatal("total budget must be at least one page");

    if (new_total > old_total)
        pool.grow(new_total - old_total);

    // Even per-shard targets (remainder stays in the pool); floors
    // apply only while the total can honour them for every shard.
    const std::uint64_t share = new_total / n;
    const std::uint64_t target =
        new_total >= floor_per_shard * n
            ? std::max(share, floor_per_shard)
            : share;

    // Shrinks first: claw back quota above target into the pool so
    // the grows below never oversubscribe the (possibly smaller)
    // total.  releaseQuota evicts synchronously when the shard's
    // dirty count exceeds its shrunken quota — and those evictions
    // can re-enter the quota machinery (in the simulator they
    // advance time, firing epoch boundaries whose hysteretic refills
    // borrow just-deposited pages back out of the pool), so the
    // sweep retries until the full difference is destroyed, exactly
    // like the runtime's incremental retune.
    std::uint64_t to_destroy =
        new_total < old_total ? old_total - new_total : 0;
    for (;;) {
        for (DirtyBudgetController *shard : shards) {
            const std::uint64_t quota = shard->dirtyBudget();
            if (quota > target)
                pool.deposit(
                    shard->releaseQuota(quota - target, target));
        }
        if (to_destroy == 0)
            break;
        const std::uint64_t destroyed = pool.confiscate(to_destroy);
        // Progress is guaranteed: while total > new_total, the pool
        // invariant (sum(quotas) + available == total, with
        // sum(targets) <= new_total) puts reclaimable quota either
        // above some shard's target or in available().
        VIYOJIT_ASSERT(destroyed > 0,
                       "budget shrink could not reclaim enough quota");
        to_destroy -= destroyed;
    }

    // Grows after the total settles: top shards up to the target.
    for (DirtyBudgetController *shard : shards) {
        const std::uint64_t quota = shard->dirtyBudget();
        if (quota < target)
            shard->grantQuota(pool.tryBorrow(target - quota));
    }
}

} // namespace viyojit::core
