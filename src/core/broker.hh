/**
 * @file
 * Battery-budget broker for co-located tenants.
 *
 * The paper's section 6.3 envisions cloud providers treating battery
 * as a first-class resource: "tenants can buy battery capacity based
 * on their expected workload ... providers can employ techniques
 * similar to memory ballooning to reallocate battery/dirty-budget
 * among co-located tenants to benefit from inherent statistical
 * multiplexing effects."
 *
 * The broker owns one machine-level page budget (from the physical
 * battery) and periodically reapportions it among tenant managers by
 * observed demand — a tenant's dirty set plus its predicted burst —
 * subject to per-tenant guaranteed minimums and weights.  Shrinks
 * are applied before grows so the machine-level budget is never
 * oversubscribed, even transiently.
 */

#ifndef VIYOJIT_CORE_BROKER_HH
#define VIYOJIT_CORE_BROKER_HH

#include <cstdint>
#include <vector>

#include "battery/battery.hh"
#include "core/manager.hh"

namespace viyojit::core
{

/** Per-tenant contract. */
struct TenantPolicy
{
    /** Pages the tenant is always entitled to (its purchased floor). */
    std::uint64_t minPages = 1;

    /** Share weight for surplus distribution. */
    double weight = 1.0;
};

/**
 * Reapportions one battery's dirty budget among tenant managers.
 *
 * Concurrency contract: externally synchronized, like the managers
 * it balances — broker, tenants, and the battery notifications all
 * run on the single simulation thread, so there is no lock to name
 * and no field is capability-guarded.  A rebalance mutates tenant
 * budgets through ViyojitManager::setDirtyBudget, which shares that
 * contract; only the real runtime's sharded path (runtime::NvRegion)
 * has a multi-threaded budget seam, and its contracts live in
 * budget_pool.hh / region.hh.
 */
class BatteryBudgetBroker
{
  public:
    /** @param total_pages machine-level budget from the battery. */
    explicit BatteryBudgetBroker(std::uint64_t total_pages);

    /**
     * Register a tenant.  Its current budget immediately becomes
     * broker-managed; the sum of all minimums must fit the total.
     */
    void addTenant(ViyojitManager &manager, const TenantPolicy &policy);

    /**
     * Recompute allocations from current demand and apply them
     * (shrinks first, then grows).  Call periodically, or after any
     * setTotalPages().
     */
    void rebalance();

    /**
     * Machine-level budget change (battery fade or recovery);
     * triggers a rebalance.  When the new budget no longer covers
     * the sum of tenant minimums, the contracted floors are scaled
     * down proportionally (each tenant keeps at least one page) with
     * a warn() — a degraded machine cannot honour contracts written
     * against a healthy battery, but it must not oversubscribe what
     * is left.
     */
    void setTotalPages(std::uint64_t total_pages);

    /**
     * Subscribe the broker to a battery: every capacity change
     * re-derives the machine budget through `calc` and rebalances.
     * The broker must outlive the battery's notifications.
     */
    void attachBattery(battery::Battery &battery,
                       const battery::DirtyBudgetCalculator &calc,
                       std::uint64_t page_size);

    std::uint64_t totalPages() const { return totalPages_; }

    /** Current allocation of tenant `index` (registration order). */
    std::uint64_t allocationOf(std::size_t index) const;

    std::size_t tenantCount() const { return tenants_.size(); }

  private:
    struct Tenant
    {
        ViyojitManager *manager;
        TenantPolicy policy;
        std::uint64_t allocation = 0;

        /**
         * Floor actually honoured this rebalance: the contracted
         * minimum, scaled down when the machine budget no longer
         * covers all contracts.
         */
        std::uint64_t effectiveMin = 0;

        /** Fault counter at the last rebalance (thrash detection). */
        std::uint64_t lastWriteFaults = 0;
    };

    /**
     * Demand estimate: dirty pages + predicted burst + faults taken
     * since the last rebalance.  The fault term is what lets a
     * tenant pinned at its allocation signal unmet demand — dirty
     * count alone is capacity-capped, so ballooning would never
     * grow a thrashing tenant without it.
     */
    static std::uint64_t demandOf(Tenant &tenant);

    /** Recompute per-tenant effective minimums against totalPages_. */
    void recomputeEffectiveMins();

    std::vector<Tenant> tenants_;
    std::uint64_t totalPages_;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_BROKER_HH
