#include "core/torture.hh"

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

#include "battery/fault_injector.hh"
#include "common/rng.hh"
#include "core/failure.hh"
#include "core/manager.hh"
#include "core/safe_mode.hh"
#include "mmu/mmu.hh"
#include "sim/context.hh"
#include "storage/ssd.hh"

namespace viyojit::core
{

namespace
{

/**
 * Size the battery so the healthy-hardware derived budget sits ~30%
 * above the nominal dirty budget: big enough that the governor idles
 * while everything is healthy, small enough that injected battery or
 * SSD degradation genuinely forces safe-mode shrinks.
 */
battery::BatteryConfig
sizeBattery(const TortureConfig &torture, const storage::SsdConfig &ssd,
            const SafeModeConfig &safe, const battery::PowerModel &power,
            std::uint64_t page_size)
{
    // Mirror FaultModel::expectedWriteAttempts: silent faults retry
    // through the read-back verify exactly like status-visible
    // errors, so they amplify the flush payload the same way.
    const double intact = (1.0 - torture.silentBitFlipProb) *
                          (1.0 - torture.droppedWriteProb) *
                          (1.0 - torture.misdirectedWriteProb);
    const double attempts =
        1.0 / ((1.0 - torture.writeErrorProb) * intact);
    const double flush_rate =
        ssd.writeBandwidth * safe.bandwidthSafetyFactor / attempts;
    const double payload_seconds =
        static_cast<double>(torture.dirtyBudgetPages * page_size) /
        flush_rate;
    // The attempt amplification above covers the MEAN retry payload
    // as amortized bandwidth.  Verify-retries do not amortize: the
    // failed page is split out of its coalesced run and re-serviced
    // alone — serialized behind a retry backoff, paying the per-IO
    // latency its run had amortized away.  Corruption-mode runs
    // therefore carry extra headroom for that serialized retry tail;
    // this is the battery cost of end-to-end verification, paid in
    // provisioning rather than in silently accepted wrong data.
    const double headroom = intact < 1.0 ? 1.45 : 1.3;
    const double window_seconds =
        ticksToSeconds(safe.flushOverheadReserve) +
        payload_seconds * headroom;

    battery::BatteryConfig config;
    config.nominalJoules = window_seconds * power.flushWatts() /
                           (config.chemistryDerate *
                            config.depthOfDischarge);
    return config;
}

/**
 * Fill `len` bytes of workload payload.  Compressed-flush mode
 * writes record-style data — short random keys padded with a
 * constant filler, the shape the paper's copy-out compression is
 * meant to exploit (~4x) — so the codec path actually engages;
 * otherwise pure random bytes, which the codec bypasses.
 */
void
fillPayload(Rng &rng, std::vector<char> &payload, std::uint64_t len,
            bool compressible)
{
    if (!compressible) {
        for (std::uint64_t i = 0; i < len; ++i)
            payload[i] = static_cast<char>(rng.next());
        return;
    }
    for (std::uint64_t i = 0; i < len; ++i)
        payload[i] = i % 100 < 20
                         ? static_cast<char>(rng.next())
                         : static_cast<char>(0x20);
}

/**
 * Multi-shard torture: N managers share the SSD, the battery, and
 * one BudgetPool; the governor retunes the pool total through a
 * ShardedBudgetDomain.  On top of the classic per-cut checks, every
 * cut asserts the distributed-budget invariant — the SUMMED dirty
 * count across shards never exceeds the (possibly degraded) pooled
 * budget — and flushes every shard on the shared battery window.
 */
TortureResult
runShardedTorture(const TortureConfig &torture)
{
    const std::uint64_t shard_count = torture.shards;
    Rng rng(torture.seed);
    TortureResult result;
    result.shards = shard_count;
    result.minHeadroomJoules = std::numeric_limits<double>::max();

    if (torture.dirtyBudgetPages < 2 * shard_count)
        fatal("sharded torture needs a dirty budget of at least two "
              "pages per shard");
    if (torture.regionPages < shard_count)
        fatal("sharded torture needs at least one page per shard");

    sim::SimContext ctx;

    storage::SsdConfig ssd_config;
    ssd_config.writeBandwidth = 50.0e6;
    ssd_config.readBandwidth = 100.0e6;
    ssd_config.perIoLatency = 80_us;
    ssd_config.enableCompression = torture.compressFlush;
    storage::Ssd ssd(ctx, ssd_config);

    storage::FaultModelConfig fault_config;
    fault_config.seed = rng.next();
    fault_config.writeErrorProb = torture.writeErrorProb;
    fault_config.readErrorProb = torture.readErrorProb;
    fault_config.tailLatencyProb = torture.tailLatencyProb;
    fault_config.silentBitFlipProb = torture.silentBitFlipProb;
    fault_config.droppedWriteProb = torture.droppedWriteProb;
    fault_config.misdirectedWriteProb = torture.misdirectedWriteProb;
    ssd.setFaultModel(
        std::make_unique<storage::FaultModel>(fault_config));
    const bool corruption = torture.silentBitFlipProb > 0.0 ||
                            torture.droppedWriteProb > 0.0 ||
                            torture.misdirectedWriteProb > 0.0;

    // Per-shard quota split mirrors the runtime: roughly half the
    // budget starts in the pool as migration headroom.
    const std::uint64_t budget = torture.dirtyBudgetPages;
    const std::uint64_t share = std::clamp<std::uint64_t>(
        budget / (2 * shard_count), 2, budget / shard_count);
    BudgetPool pool(budget, budget - share * shard_count);
    const std::uint64_t borrow_batch =
        std::max<std::uint64_t>(1, share / 4);

    ViyojitConfig config;
    config.dirtyBudgetPages = share;
    config.maxIoRetries = 6;
    config.retryBackoffBase = 10_us;
    config.retryBackoffCap = 200_us;
    config.ioTimeout = 10_ms;
    config.retrySeed = rng.next();
    config.coalesceRuns = torture.coalesceRuns;
    config.maxRunPages = torture.maxRunPages;
    config.extentShift = torture.extentShift;
    config.maxBridgePages = torture.maxBridgePages;

    SafeModeConfig safe_config;
    safe_config.flushOverheadReserve = 2_ms;
    safe_config.minBudgetPages = 2 * shard_count;
    safe_config.writeThroughFloorPages =
        std::max<std::uint64_t>(4, 2 * shard_count);

    const battery::PowerModel power;
    battery::Battery battery(
        sizeBattery(torture, ssd_config, safe_config, power,
                    config.pageSize));

    const std::uint64_t shard_pages =
        torture.regionPages / shard_count;
    std::vector<std::unique_ptr<ViyojitManager>> managers;
    std::vector<ViyojitManager *> shard_ptrs;
    std::vector<Addr> bases;
    for (std::uint64_t i = 0; i < shard_count; ++i) {
        managers.push_back(std::make_unique<ViyojitManager>(
            ctx, ssd, config, mmu::MmuCostModel{}, shard_pages,
            static_cast<std::uint32_t>(i)));
        managers.back()->controller().attachBudgetPool(&pool,
                                                       borrow_batch);
        bases.push_back(
            managers.back()->vmmap(shard_pages * config.pageSize));
        managers.back()->start();
        shard_ptrs.push_back(managers.back().get());
    }

    ShardedBudgetDomain domain(pool, shard_ptrs);
    SafeModeGovernor governor(domain, battery, power, safe_config);

    battery::BatteryFaultConfig battery_faults;
    battery_faults.seed = rng.next();
    battery_faults.checkInterval = 1_ms;
    battery_faults.cellFailureProb = 0.15;
    battery_faults.cellFailureStep = 0.05;
    battery_faults.maxFailedFraction = 0.4;
    battery_faults.fadeProb = 0.02;
    battery_faults.fadeStepYears = 0.25;
    battery_faults.recoveryProb = 0.2;
    battery::BatteryFaultInjector battery_injector(ctx, battery,
                                                   battery_faults);
    battery_injector.start();

    std::vector<char> payload(config.pageSize);
    const std::uint64_t shard_bytes = shard_pages * config.pageSize;

    auto fail = [&](std::uint64_t cut, const std::string &detail) {
        result.passed = false;
        result.failingCut = cut;
        result.failureDetail = detail;
    };


    for (std::uint64_t cut = 1;
         result.passed && cut <= torture.cuts; ++cut) {
        const std::uint64_t ops =
            1 + rng.nextBounded(torture.maxOpsPerRound);
        for (std::uint64_t op = 0; op < ops; ++op) {
            // Ops scatter across shards so quota migrates: bursting
            // shards borrow what idle shards returned at their epoch
            // boundaries.
            const std::size_t si = rng.nextBounded(shard_count);
            ViyojitManager &shard = *managers[si];
            if (rng.nextBool(0.9)) {
                const std::uint64_t len =
                    1 + rng.nextBounded(config.pageSize);
                const Addr addr =
                    bases[si] + rng.nextBounded(shard_bytes - len);
                fillPayload(rng, payload, len,
                            torture.compressFlush);
                shard.memWrite(addr, payload.data(), len);
            } else {
                const std::uint64_t len =
                    1 + rng.nextBounded(config.pageSize);
                shard.read(bases[si] +
                               rng.nextBounded(shard_bytes - len),
                           len);
            }
            if (rng.nextBool(0.25))
                ctx.events().runSteps(rng.nextBounded(8));
        }

        if (rng.nextBool(torture.bandwidthDegradeProb)) {
            const double span = 1.0 - torture.bandwidthDegradeFloor;
            ssd.faultModel()->setBandwidthDegradation(
                torture.bandwidthDegradeFloor +
                span * rng.nextDouble());
            governor.reevaluate();
        }
        if (rng.nextBool(torture.packServiceProb)) {
            battery.setFailedCellFraction(0.0);
            battery.setAgeYears(0.0);
        }
        if (torture.scrubPagesPerRound > 0) {
            for (auto &manager : managers) {
                const ScrubReport scrub = manager->scrubPass(
                    torture.scrubPagesPerRound);
                result.scrubScanned += scrub.scanned;
                result.scrubMismatches += scrub.mismatches;
                result.scrubRepairs += scrub.repaired;
                result.scrubRepairFailures += scrub.repairFailures;
            }
        }

        ctx.events().runSteps(rng.nextBounded(50));

        if (ssd.outstanding() > 0)
            ++result.cutsMidFlight;
        if (ssd.outstandingRuns() > 0)
            ++result.cutsMidRun;
        if (governor.mode() != SafeMode::normal)
            ++result.cutsInSafeMode;

        // The distributed-budget invariant: at the instant of the
        // cut, the SUM of per-shard dirty counts must fit the pooled
        // battery budget (as currently retuned by the governor).
        const std::uint64_t summed_dirty = domain.summedDirtyPages();
        result.maxSummedDirtyPages =
            std::max(result.maxSummedDirtyPages, summed_dirty);
        if (summed_dirty > pool.totalPages()) {
            std::ostringstream oss;
            oss << "summed dirty (" << summed_dirty
                << " pages) exceeds the pooled budget ("
                << pool.totalPages() << " pages) at cut " << cut;
            fail(cut, oss.str());
            break;
        }

        // Pre-cut energy headroom against the summed dirty set.
        // With compressed copy-out, credit the WORST per-shard
        // compression floor — the bound the governor budgets with —
        // since the serialized flush ships stored bytes, not raw.
        double floor_ratio = 1.0;
        if (torture.compressFlush) {
            double worst = std::numeric_limits<double>::max();
            for (const auto &manager : managers)
                worst = std::min(
                    worst,
                    manager->controller().tracker().floorRatio());
            if (worst > 1.0 &&
                worst < std::numeric_limits<double>::max())
                floor_ratio = worst;
        }
        const double flush_seconds =
            static_cast<double>(summed_dirty * config.pageSize) /
            floor_ratio / ssd.effectiveWriteBandwidth();
        const double headroom = battery.effectiveJoules() -
                                flush_seconds * power.flushWatts();
        result.minHeadroomJoules =
            std::min(result.minHeadroomJoules, headroom);
        if (headroom < 0.0) {
            std::ostringstream oss;
            oss << "negative pre-cut energy headroom (" << headroom
                << " J) at cut " << cut;
            fail(cut, oss.str());
            break;
        }

        // The cut: power fails for the whole machine at once.  Every
        // shard's epoch machinery stops first, then the shards flush
        // back-to-back on the shared (serialized) SSD; the summed
        // flush must fit the single battery window.
        const double available = battery.effectiveJoules();
        const Tick flush_start = ctx.now();
        std::uint64_t dirty_at_cut = 0;
        for (auto &manager : managers)
            manager->stop();
        for (auto &manager : managers)
            dirty_at_cut += manager->powerFailureFlush()
                                .dirtyPagesAtFailure;
        const Tick flush_duration = ctx.now() - flush_start;
        const double needed =
            ticksToSeconds(flush_duration) * power.flushWatts();
        if (needed > available) {
            std::ostringstream oss;
            oss << "summed flush exceeded the battery at cut " << cut
                << ": needed " << needed << " J, available "
                << available << " J (" << dirty_at_cut
                << " dirty pages across " << shard_count
                << " shards, flush took "
                << ticksToSeconds(flush_duration) * 1e3 << " ms)";
            fail(cut, oss.str());
            break;
        }
        // The checked audit runs after EVERY cut: each settled-image
        // mismatch must be attributable to an injected silent fault,
        // an aborted copy, or an unsettled page.  Without corruption
        // the audit must additionally come back pristine — the
        // pre-sidecar verifyDurability() contract.
        bool verified = true;
        std::uint64_t unattributed = 0;
        for (auto &manager : managers) {
            const DurabilityAuditReport audit =
                manager->verifyDurabilityChecked();
            result.auditMismatches += audit.mismatchedPages;
            unattributed += audit.unattributedPages;
            if (!corruption)
                verified = verified && audit.clean();
        }
        result.auditUnattributed += unattributed;
        if (unattributed > 0) {
            std::ostringstream oss;
            oss << unattributed << " unattributed settled-image "
                << "mismatch(es) after sharded cut " << cut
                << ": silent wrong-data acceptance";
            fail(cut, oss.str());
            break;
        }
        if (!verified) {
            std::ostringstream oss;
            oss << "SSD image failed verification after sharded cut "
                << cut << " outstanding=" << ssd.outstanding();
            fail(cut, oss.str());
            break;
        }
        ++result.cutsRun;

        for (auto &manager : managers)
            manager->start();
    }

    battery_injector.stop();
    governor.stopPeriodic();

    for (auto &manager : managers) {
        const IoFaultStats io = manager->ioFaultStats();
        result.totalRetries += io.retries;
        result.totalAborts += io.abortedCopies;
        result.runSubmits += io.runSubmits;
        result.runPagesCoalesced += io.runPagesCoalesced;
        result.runSplits += io.runSplits;
        result.verifyFailures += io.verifyFailures;
        const ControllerStats &cs = manager->controller().stats();
        result.quotaBorrowedPages += cs.quotaBorrowedPages;
        result.quotaReturnedPages += cs.quotaReturnedPages;
    }
    result.injectedWriteErrors =
        ssd.faultModel()->injectedWriteErrors();
    result.injectedSilentFaults =
        ssd.faultModel()->injectedSilentFaults();
    result.safeModeEntries = governor.stats().safeModeEntries;
    result.budgetShrinks = governor.stats().budgetShrinks;
    result.batteryCellFailures =
        battery_injector.stats().cellFailureEvents;
    result.batteryRecoveries =
        battery_injector.stats().recoveryEvents;
    result.budgetPoolPages = pool.totalPages();
    result.ssdBytesWritten = ssd.bytesWritten();
    result.ssdLogicalBytesWritten = ssd.logicalBytesWritten();
    return result;
}

} // namespace

TortureResult
runTorture(const TortureConfig &torture)
{
    if (torture.shards > 1)
        return runShardedTorture(torture);
    Rng rng(torture.seed);
    TortureResult result;
    result.minHeadroomJoules = std::numeric_limits<double>::max();

    sim::SimContext ctx;

    // A deliberately slow SSD: page transfers dominate the battery
    // window, so degradation moves the derived budget gradually
    // instead of snapping straight to write-through.
    storage::SsdConfig ssd_config;
    ssd_config.writeBandwidth = 50.0e6;
    ssd_config.readBandwidth = 100.0e6;
    ssd_config.perIoLatency = 80_us;
    ssd_config.enableCompression = torture.compressFlush;
    storage::Ssd ssd(ctx, ssd_config);

    storage::FaultModelConfig fault_config;
    fault_config.seed = rng.next();
    fault_config.writeErrorProb = torture.writeErrorProb;
    fault_config.readErrorProb = torture.readErrorProb;
    fault_config.tailLatencyProb = torture.tailLatencyProb;
    fault_config.silentBitFlipProb = torture.silentBitFlipProb;
    fault_config.droppedWriteProb = torture.droppedWriteProb;
    fault_config.misdirectedWriteProb = torture.misdirectedWriteProb;
    ssd.setFaultModel(
        std::make_unique<storage::FaultModel>(fault_config));
    const bool corruption = torture.silentBitFlipProb > 0.0 ||
                            torture.droppedWriteProb > 0.0 ||
                            torture.misdirectedWriteProb > 0.0;

    ViyojitConfig config;
    config.dirtyBudgetPages = torture.dirtyBudgetPages;
    config.maxIoRetries = 6;
    config.retryBackoffBase = 10_us;
    config.retryBackoffCap = 200_us;
    // Generous deadline: tight enough to exist, loose enough that a
    // saturated device queue does not cascade into timeout storms.
    config.ioTimeout = 10_ms;
    config.retrySeed = rng.next();
    config.coalesceRuns = torture.coalesceRuns;
    config.maxRunPages = torture.maxRunPages;
    config.extentShift = torture.extentShift;
    config.maxBridgePages = torture.maxBridgePages;

    SafeModeConfig safe_config;
    safe_config.flushOverheadReserve = 2_ms;
    safe_config.writeThroughFloorPages = 4;

    const battery::PowerModel power;
    battery::Battery battery(
        sizeBattery(torture, ssd_config, safe_config, power,
                    config.pageSize));

    ViyojitManager manager(ctx, ssd, config, mmu::MmuCostModel{},
                           torture.regionPages);
    const Addr base = manager.vmmap(torture.regionPages *
                                    config.pageSize);
    manager.start();

    SafeModeGovernor governor(manager, battery, power, safe_config);

    battery::BatteryFaultConfig battery_faults;
    battery_faults.seed = rng.next();
    battery_faults.checkInterval = 1_ms;
    battery_faults.cellFailureProb = 0.15;
    battery_faults.cellFailureStep = 0.05;
    battery_faults.maxFailedFraction = 0.4;
    battery_faults.fadeProb = 0.02;
    battery_faults.fadeStepYears = 0.25;
    battery_faults.recoveryProb = 0.2;
    battery::BatteryFaultInjector battery_injector(ctx, battery,
                                                   battery_faults);
    battery_injector.start();

    PowerFailureInjector cutter(manager, battery, power);

    std::vector<char> payload(config.pageSize);
    const std::uint64_t region_bytes =
        torture.regionPages * config.pageSize;

    auto fail = [&](std::uint64_t cut, const std::string &detail) {
        result.passed = false;
        result.failingCut = cut;
        result.failureDetail = detail;
    };

    // Debug invariant: a settled (clean, idle) written page must match
    // the durable image — anything else would survive a cut wrong.
    // Pages the injector's corruption ledger owns are exempt: their
    // divergence is attributed, and the audit/scrub machinery is what
    // must catch them.
    auto paranoidCheck = [&](std::uint64_t cut, std::uint64_t op) {
        for (PageNum p = 0; p < manager.mappedPages(); ++p) {
            if (manager.pageVersion(p) == 0 ||
                manager.controller().tracker().isDirty(p) ||
                manager.controller().isInFlight(p))
                continue;
            if (ssd.corruptionKind(storage::StorageKey{0, p}) !=
                storage::SilentFaultKind::none)
                continue;
            if (ssd.durableHash(storage::StorageKey{0, p}) ==
                manager.pageContentHash(p))
                continue;
            std::ostringstream oss;
            oss << "paranoid: settled page " << p << " v"
                << manager.pageVersion(p)
                << " does not match the image (cut " << cut << ", op "
                << op << ")";
            fail(cut, oss.str());
            return false;
        }
        return true;
    };

    for (std::uint64_t cut = 1;
         result.passed && cut <= torture.cuts; ++cut) {
        // Random ops, interleaved with partial event-queue drains so
        // IO completions, epochs, and battery events mix with writes.
        const std::uint64_t ops =
            1 + rng.nextBounded(torture.maxOpsPerRound);
        for (std::uint64_t op = 0; op < ops; ++op) {
            if (rng.nextBool(0.9)) {
                const std::uint64_t len =
                    1 + rng.nextBounded(config.pageSize);
                const Addr addr =
                    base + rng.nextBounded(region_bytes - len);
                fillPayload(rng, payload, len,
                            torture.compressFlush);
                manager.memWrite(addr, payload.data(), len);
            } else {
                const std::uint64_t len =
                    1 + rng.nextBounded(config.pageSize);
                manager.read(base + rng.nextBounded(region_bytes - len),
                             len);
            }
            if (rng.nextBool(0.25))
                ctx.events().runSteps(rng.nextBounded(8));
            if (torture.paranoid && !paranoidCheck(cut, op))
                break;
        }
        if (!result.passed)
            break;

        // Runtime degradation: SSD wear redraws and battery pack
        // service, on top of the periodic battery fault events.
        if (rng.nextBool(torture.bandwidthDegradeProb)) {
            const double span = 1.0 - torture.bandwidthDegradeFloor;
            ssd.faultModel()->setBandwidthDegradation(
                torture.bandwidthDegradeFloor +
                span * rng.nextDouble());
            governor.reevaluate();
        }
        if (rng.nextBool(torture.packServiceProb)) {
            battery.setFailedCellFraction(0.0);
            battery.setAgeYears(0.0);
        }
        if (torture.scrubPagesPerRound > 0) {
            const ScrubReport scrub =
                manager.scrubPass(torture.scrubPagesPerRound);
            result.scrubScanned += scrub.scanned;
            result.scrubMismatches += scrub.mismatches;
            result.scrubRepairs += scrub.repaired;
            result.scrubRepairFailures += scrub.repairFailures;
        }

        // Land the cut at an arbitrary point in the event stream —
        // possibly mid-transfer or inside a retry backoff.
        ctx.events().runSteps(rng.nextBounded(50));

        if (ssd.outstanding() > 0)
            ++result.cutsMidFlight;
        if (ssd.outstandingRuns() > 0)
            ++result.cutsMidRun;
        if (governor.mode() != SafeMode::normal)
            ++result.cutsInSafeMode;

        const double headroom = cutter.currentHeadroomJoules();
        result.minHeadroomJoules =
            std::min(result.minHeadroomJoules, headroom);
        if (headroom < 0.0) {
            std::ostringstream oss;
            oss << "negative pre-cut energy headroom (" << headroom
                << " J) at cut " << cut;
            fail(cut, oss.str());
            break;
        }

        const IoFaultStats pre_flush = manager.ioFaultStats();
        const FailureReport report = cutter.inject();
        if (!report.survived) {
            const IoFaultStats post = manager.ioFaultStats();
            std::ostringstream oss;
            oss << "flush exceeded the battery at cut " << cut
                << ": needed " << report.joulesNeeded
                << " J, available " << report.joulesAvailable
                << " J (" << report.dirtyPages << " dirty pages, "
                << "flush took "
                << ticksToSeconds(report.flushDuration) * 1e3
                << " ms)"
                << " [flush deltas: retries "
                << post.retries - pre_flush.retries << ", verifyFail "
                << post.verifyFailures - pre_flush.verifyFailures
                << ", runSubmits "
                << post.runSubmits - pre_flush.runSubmits
                << ", runPages "
                << post.runPagesCoalesced - pre_flush.runPagesCoalesced
                << ", splits " << post.runSplits - pre_flush.runSplits
                << ", wear "
                << ssd.faultModel()->bandwidthFactor() << "]";
            fail(cut, oss.str());
            break;
        }
        if (!corruption && !report.contentVerified) {
            std::ostringstream oss;
            oss << "SSD image failed verification after cut " << cut
                << " reverify=" << manager.verifyDurability()
                << " outstanding=" << ssd.outstanding()
                << " dirty=" << manager.dirtyPageCount();
            for (PageNum p = 0; p < manager.mappedPages(); ++p) {
                if (manager.pageVersion(p) == 0)
                    continue;
                if (ssd.durableHash(storage::StorageKey{0, p}) ==
                    manager.pageContentHash(p))
                    continue;
                oss << "; page " << p << " v" << manager.pageVersion(p)
                    << (manager.controller().tracker().isDirty(p)
                            ? " dirty"
                            : " clean")
                    << (manager.controller().isInFlight(p)
                            ? " in-flight"
                            : "");
            }
            fail(cut, oss.str());
            break;
        }

        // Checked audit after every cut: every settled-image
        // mismatch must be attributed (injector ledger, aborted
        // copy, or unsettled page).  One unattributed mismatch is
        // silent wrong-data acceptance, corruption mode or not.
        const DurabilityAuditReport audit =
            manager.verifyDurabilityChecked();
        result.auditMismatches += audit.mismatchedPages;
        result.auditUnattributed += audit.unattributedPages;
        if (audit.unattributedPages > 0) {
            std::ostringstream oss;
            oss << audit.unattributedPages
                << " unattributed settled-image mismatch(es) after "
                << "cut " << cut
                << ": silent wrong-data acceptance (mismatched="
                << audit.mismatchedPages << " torn="
                << audit.tornPages << " silent="
                << audit.silentCorruptPages << ")";
            fail(cut, oss.str());
            break;
        }
        ++result.cutsRun;

        // Power restored: resume epochs and keep going.
        manager.start();
    }

    battery_injector.stop();
    governor.stopPeriodic();

    const IoFaultStats &io = manager.ioFaultStats();
    result.totalRetries = io.retries;
    result.totalAborts = io.abortedCopies;
    result.runSubmits = io.runSubmits;
    result.runPagesCoalesced = io.runPagesCoalesced;
    result.runSplits = io.runSplits;
    result.verifyFailures = io.verifyFailures;
    result.injectedWriteErrors =
        ssd.faultModel()->injectedWriteErrors();
    result.injectedSilentFaults =
        ssd.faultModel()->injectedSilentFaults();
    result.safeModeEntries = governor.stats().safeModeEntries;
    result.budgetShrinks = governor.stats().budgetShrinks;
    result.batteryCellFailures =
        battery_injector.stats().cellFailureEvents;
    result.batteryRecoveries =
        battery_injector.stats().recoveryEvents;
    result.ssdBytesWritten = ssd.bytesWritten();
    result.ssdLogicalBytesWritten = ssd.logicalBytesWritten();
    return result;
}

} // namespace viyojit::core
