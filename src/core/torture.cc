#include "core/torture.hh"

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

#include "battery/fault_injector.hh"
#include "common/rng.hh"
#include "core/failure.hh"
#include "core/manager.hh"
#include "core/safe_mode.hh"
#include "mmu/mmu.hh"
#include "sim/context.hh"
#include "storage/ssd.hh"

namespace viyojit::core
{

namespace
{

/**
 * Size the battery so the healthy-hardware derived budget sits ~30%
 * above the nominal dirty budget: big enough that the governor idles
 * while everything is healthy, small enough that injected battery or
 * SSD degradation genuinely forces safe-mode shrinks.
 */
battery::BatteryConfig
sizeBattery(const TortureConfig &torture, const storage::SsdConfig &ssd,
            const SafeModeConfig &safe, const battery::PowerModel &power,
            std::uint64_t page_size)
{
    const double attempts = 1.0 / (1.0 - torture.writeErrorProb);
    const double flush_rate =
        ssd.writeBandwidth * safe.bandwidthSafetyFactor / attempts;
    const double payload_seconds =
        static_cast<double>(torture.dirtyBudgetPages * page_size) /
        flush_rate;
    const double window_seconds =
        ticksToSeconds(safe.flushOverheadReserve) +
        payload_seconds * 1.3;

    battery::BatteryConfig config;
    config.nominalJoules = window_seconds * power.flushWatts() /
                           (config.chemistryDerate *
                            config.depthOfDischarge);
    return config;
}

} // namespace

TortureResult
runTorture(const TortureConfig &torture)
{
    Rng rng(torture.seed);
    TortureResult result;
    result.minHeadroomJoules = std::numeric_limits<double>::max();

    sim::SimContext ctx;

    // A deliberately slow SSD: page transfers dominate the battery
    // window, so degradation moves the derived budget gradually
    // instead of snapping straight to write-through.
    storage::SsdConfig ssd_config;
    ssd_config.writeBandwidth = 50.0e6;
    ssd_config.readBandwidth = 100.0e6;
    ssd_config.perIoLatency = 80_us;
    storage::Ssd ssd(ctx, ssd_config);

    storage::FaultModelConfig fault_config;
    fault_config.seed = rng.next();
    fault_config.writeErrorProb = torture.writeErrorProb;
    fault_config.readErrorProb = torture.readErrorProb;
    fault_config.tailLatencyProb = torture.tailLatencyProb;
    ssd.setFaultModel(
        std::make_unique<storage::FaultModel>(fault_config));

    ViyojitConfig config;
    config.dirtyBudgetPages = torture.dirtyBudgetPages;
    config.maxIoRetries = 6;
    config.retryBackoffBase = 10_us;
    config.retryBackoffCap = 200_us;
    // Generous deadline: tight enough to exist, loose enough that a
    // saturated device queue does not cascade into timeout storms.
    config.ioTimeout = 10_ms;
    config.retrySeed = rng.next();

    SafeModeConfig safe_config;
    safe_config.flushOverheadReserve = 2_ms;
    safe_config.writeThroughFloorPages = 4;

    const battery::PowerModel power;
    battery::Battery battery(
        sizeBattery(torture, ssd_config, safe_config, power,
                    config.pageSize));

    ViyojitManager manager(ctx, ssd, config, mmu::MmuCostModel{},
                           torture.regionPages);
    const Addr base = manager.vmmap(torture.regionPages *
                                    config.pageSize);
    manager.start();

    SafeModeGovernor governor(manager, battery, power, safe_config);

    battery::BatteryFaultConfig battery_faults;
    battery_faults.seed = rng.next();
    battery_faults.checkInterval = 1_ms;
    battery_faults.cellFailureProb = 0.15;
    battery_faults.cellFailureStep = 0.05;
    battery_faults.maxFailedFraction = 0.4;
    battery_faults.fadeProb = 0.02;
    battery_faults.fadeStepYears = 0.25;
    battery_faults.recoveryProb = 0.2;
    battery::BatteryFaultInjector battery_injector(ctx, battery,
                                                   battery_faults);
    battery_injector.start();

    PowerFailureInjector cutter(manager, battery, power);

    std::vector<char> payload(config.pageSize);
    const std::uint64_t region_bytes =
        torture.regionPages * config.pageSize;

    auto fail = [&](std::uint64_t cut, const std::string &detail) {
        result.passed = false;
        result.failingCut = cut;
        result.failureDetail = detail;
    };

    // Debug invariant: a settled (clean, idle) written page must match
    // the durable image — anything else would survive a cut wrong.
    auto paranoidCheck = [&](std::uint64_t cut, std::uint64_t op) {
        for (PageNum p = 0; p < manager.mappedPages(); ++p) {
            if (manager.pageVersion(p) == 0 ||
                manager.controller().tracker().isDirty(p) ||
                manager.controller().isInFlight(p))
                continue;
            if (ssd.durableHash(storage::StorageKey{0, p}) ==
                manager.pageContentHash(p))
                continue;
            std::ostringstream oss;
            oss << "paranoid: settled page " << p << " v"
                << manager.pageVersion(p)
                << " does not match the image (cut " << cut << ", op "
                << op << ")";
            fail(cut, oss.str());
            return false;
        }
        return true;
    };

    for (std::uint64_t cut = 1;
         result.passed && cut <= torture.cuts; ++cut) {
        // Random ops, interleaved with partial event-queue drains so
        // IO completions, epochs, and battery events mix with writes.
        const std::uint64_t ops =
            1 + rng.nextBounded(torture.maxOpsPerRound);
        for (std::uint64_t op = 0; op < ops; ++op) {
            if (rng.nextBool(0.9)) {
                const std::uint64_t len =
                    1 + rng.nextBounded(config.pageSize);
                const Addr addr =
                    base + rng.nextBounded(region_bytes - len);
                for (std::uint64_t i = 0; i < len; ++i)
                    payload[i] = static_cast<char>(rng.next());
                manager.memWrite(addr, payload.data(), len);
            } else {
                const std::uint64_t len =
                    1 + rng.nextBounded(config.pageSize);
                manager.read(base + rng.nextBounded(region_bytes - len),
                             len);
            }
            if (rng.nextBool(0.25))
                ctx.events().runSteps(rng.nextBounded(8));
            if (torture.paranoid && !paranoidCheck(cut, op))
                break;
        }
        if (!result.passed)
            break;

        // Runtime degradation: SSD wear redraws and battery pack
        // service, on top of the periodic battery fault events.
        if (rng.nextBool(torture.bandwidthDegradeProb)) {
            const double span = 1.0 - torture.bandwidthDegradeFloor;
            ssd.faultModel()->setBandwidthDegradation(
                torture.bandwidthDegradeFloor +
                span * rng.nextDouble());
            governor.reevaluate();
        }
        if (rng.nextBool(torture.packServiceProb)) {
            battery.setFailedCellFraction(0.0);
            battery.setAgeYears(0.0);
        }

        // Land the cut at an arbitrary point in the event stream —
        // possibly mid-transfer or inside a retry backoff.
        ctx.events().runSteps(rng.nextBounded(50));

        if (ssd.outstanding() > 0)
            ++result.cutsMidFlight;
        if (governor.mode() != SafeMode::normal)
            ++result.cutsInSafeMode;

        const double headroom = cutter.currentHeadroomJoules();
        result.minHeadroomJoules =
            std::min(result.minHeadroomJoules, headroom);
        if (headroom < 0.0) {
            std::ostringstream oss;
            oss << "negative pre-cut energy headroom (" << headroom
                << " J) at cut " << cut;
            fail(cut, oss.str());
            break;
        }

        const FailureReport report = cutter.inject();
        if (!report.survived) {
            std::ostringstream oss;
            oss << "flush exceeded the battery at cut " << cut
                << ": needed " << report.joulesNeeded
                << " J, available " << report.joulesAvailable
                << " J (" << report.dirtyPages << " dirty pages, "
                << "flush took "
                << ticksToSeconds(report.flushDuration) * 1e3
                << " ms)";
            fail(cut, oss.str());
            break;
        }
        if (!report.contentVerified) {
            std::ostringstream oss;
            oss << "SSD image failed verification after cut " << cut
                << " reverify=" << manager.verifyDurability()
                << " outstanding=" << ssd.outstanding()
                << " dirty=" << manager.dirtyPageCount();
            for (PageNum p = 0; p < manager.mappedPages(); ++p) {
                if (manager.pageVersion(p) == 0)
                    continue;
                if (ssd.durableHash(storage::StorageKey{0, p}) ==
                    manager.pageContentHash(p))
                    continue;
                oss << "; page " << p << " v" << manager.pageVersion(p)
                    << (manager.controller().tracker().isDirty(p)
                            ? " dirty"
                            : " clean")
                    << (manager.controller().isInFlight(p)
                            ? " in-flight"
                            : "");
            }
            fail(cut, oss.str());
            break;
        }
        ++result.cutsRun;

        // Power restored: resume epochs and keep going.
        manager.start();
    }

    battery_injector.stop();
    governor.stopPeriodic();

    const IoFaultStats &io = manager.ioFaultStats();
    result.totalRetries = io.retries;
    result.totalAborts = io.abortedCopies;
    result.injectedWriteErrors =
        ssd.faultModel()->injectedWriteErrors();
    result.safeModeEntries = governor.stats().safeModeEntries;
    result.budgetShrinks = governor.stats().budgetShrinks;
    result.batteryCellFailures =
        battery_injector.stats().cellFailureEvents;
    result.batteryRecoveries =
        battery_injector.stats().recoveryEvents;
    return result;
}

} // namespace viyojit::core
