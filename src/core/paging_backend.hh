/**
 * @file
 * Abstraction over the paging substrate.
 *
 * The dirty-budget controller (the paper's contribution) is written
 * against this interface only, so the identical policy code runs on
 * the simulated MMU/SSD (benchmarks) and on real memory via
 * mprotect/SIGSEGV (the runtime library).  The interface is exactly
 * the three primitives the paper's mechanism consumes — protect,
 * unprotect, dirty-bit check-and-clear — plus page persistence.
 */

#ifndef VIYOJIT_CORE_PAGING_BACKEND_HH
#define VIYOJIT_CORE_PAGING_BACKEND_HH

#include <cstdint>
#include <functional>

#include "common/function_ref.hh"
#include "common/types.hh"

namespace viyojit::core
{

/** Paging + persistence primitives consumed by the controller. */
class PagingBackend
{
  public:
    virtual ~PagingBackend() = default;

    /** Number of pages in the managed NV region. */
    virtual std::uint64_t pageCount() const = 0;

    /** Bytes per page. */
    virtual std::uint64_t pageSize() const = 0;

    /** Write-protect one page (and shoot down its translation). */
    virtual void protectPage(PageNum page) = 0;

    /** Make one page writable (and shoot down its translation). */
    virtual void unprotectPage(PageNum page) = 0;

    /**
     * Report and clear the hardware dirty bit of managed pages.
     * `flush_tlb` requests a full TLB flush first so the scan
     * observes fresh bits.  Substrates may visit every managed page
     * (reporting `was_dirty == false` for clean ones) or only the
     * dirty population — callers must key off the flag, not the
     * visit.  The visitor is a non-owning view: the scan is on the
     * 1 ms epoch path and must not allocate per call.
     */
    virtual void scanAndClearDirty(
        bool flush_tlb,
        FunctionRef<void(PageNum, bool was_dirty)> visitor) = 0;

    /**
     * Start persisting a page to the backing store.  `on_complete`
     * fires when the page is durable.  The caller guarantees the page
     * is write-protected for the duration.
     */
    virtual void persistPageAsync(PageNum page,
                                  std::function<void()> on_complete) = 0;

    /** Persist a page and wait for durability. */
    virtual void persistPageBlocking(PageNum page) = 0;

    /**
     * Block until a previously submitted persistPageAsync for `page`
     * completes (used when a write faults on a page under writeback).
     */
    virtual void waitForPersist(PageNum page) = 0;

    /**
     * Block until at least one outstanding persistPageAsync
     * completes.  No-op when none are outstanding.
     */
    virtual void waitForAnyPersist() = 0;

    /** IOs submitted via persistPageAsync and not yet complete. */
    virtual unsigned outstandingIos() const = 0;

    /**
     * True when the device can take another asynchronous copy while
     * still leaving room for a synchronous (blocking) eviction.
     * Substrates without device-side queue limits return true.
     */
    virtual bool canSubmit() const { return true; }
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_PAGING_BACKEND_HH
