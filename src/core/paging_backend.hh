/**
 * @file
 * Abstraction over the paging substrate.
 *
 * The dirty-budget controller (the paper's contribution) is written
 * against this interface only, so the identical policy code runs on
 * the simulated MMU/SSD (benchmarks) and on real memory via
 * mprotect/SIGSEGV (the runtime library).  The interface is exactly
 * the three primitives the paper's mechanism consumes — protect,
 * unprotect, dirty-bit check-and-clear — plus page persistence.
 */

#ifndef VIYOJIT_CORE_PAGING_BACKEND_HH
#define VIYOJIT_CORE_PAGING_BACKEND_HH

#include <cstdint>

#include "common/function_ref.hh"
#include "common/types.hh"

namespace viyojit::core
{

/**
 * Receiver of asynchronous persistence outcomes.
 *
 * The controller implements this; backends deliver every
 * persistPageAsync outcome through it instead of per-call closures.
 * Keeping the channel a plain virtual interface (not std::function)
 * matters on the runtime substrate: a copy is launched from inside
 * the SIGSEGV admission path, where constructing a capturing closure
 * could heap-allocate — and malloc is not async-signal-safe (see
 * tools/sigsafe_lint.py).
 */
class PersistClient
{
  public:
    virtual ~PersistClient() = default;

    /** The page's copy is durable. */
    virtual void onPersistComplete(PageNum page) = 0;

    /** The page's copy was abandoned (IO retries exhausted). */
    virtual void onPersistAborted(PageNum page) = 0;
};

/** Paging + persistence primitives consumed by the controller. */
class PagingBackend
{
  public:
    virtual ~PagingBackend() = default;

    /**
     * Attach the receiver for persistPageAsync outcomes.  Called
     * once, by the controller's constructor, before any IO.
     */
    void setPersistClient(PersistClient &client) { client_ = &client; }

    /** Number of pages in the managed NV region. */
    virtual std::uint64_t pageCount() const = 0;

    /** Bytes per page. */
    virtual std::uint64_t pageSize() const = 0;

    /** Write-protect one page (and shoot down its translation). */
    virtual void protectPage(PageNum page) = 0;

    /** Make one page writable (and shoot down its translation). */
    virtual void unprotectPage(PageNum page) = 0;

    /**
     * Report and clear the hardware dirty bit of managed pages.
     * `flush_tlb` requests a full TLB flush first so the scan
     * observes fresh bits.  Substrates may visit every managed page
     * (reporting `was_dirty == false` for clean ones) or only the
     * dirty population — callers must key off the flag, not the
     * visit.  The visitor is a non-owning view: the scan is on the
     * 1 ms epoch path and must not allocate per call.
     */
    virtual void scanAndClearDirty(
        bool flush_tlb,
        FunctionRef<void(PageNum, bool was_dirty)> visitor) = 0;

    /**
     * Start persisting a page to the backing store.  The outcome is
     * delivered to the attached PersistClient — onPersistComplete
     * when the page is durable, onPersistAborted when the backend
     * gives up.  The caller guarantees the page is write-protected
     * for the duration, and that a client is attached.
     */
    virtual void persistPageAsync(PageNum page) = 0;

    /**
     * Start persisting `count` page-number-adjacent pages
     * [first, first + count) as one batched IO (run coalescing: one
     * device admission amortized over the run instead of one per
     * page).  Outcomes are still delivered per page through the
     * PersistClient, so a backend may split the run — a page whose
     * slice fails retries alone while the rest complete.  The caller
     * guarantees 1 <= count <= maxRunPages() and that every page in
     * the run is write-protected.  The default degenerates to
     * per-page submission for substrates without a batched path.
     */
    virtual void persistRunAsync(PageNum first, unsigned count)
    {
        for (unsigned i = 0; i < count; ++i)
            persistPageAsync(first + i);
    }

    /**
     * Largest run persistRunAsync accepts; 1 means the backend has no
     * batched path and the controller submits page-at-a-time.
     */
    virtual unsigned maxRunPages() const { return 1; }

    /** Persist a page and wait for durability. */
    virtual void persistPageBlocking(PageNum page) = 0;

    /**
     * Block until a previously submitted persistPageAsync for `page`
     * completes (used when a write faults on a page under writeback).
     */
    virtual void waitForPersist(PageNum page) = 0;

    /**
     * Block until at least one outstanding persistPageAsync
     * completes.  No-op when none are outstanding.
     */
    virtual void waitForAnyPersist() = 0;

    /** IOs submitted via persistPageAsync and not yet complete. */
    virtual unsigned outstandingIos() const = 0;

    /**
     * True when the device can take another asynchronous copy while
     * still leaving room for a synchronous (blocking) eviction.
     * Substrates without device-side queue limits return true.
     */
    virtual bool canSubmit() const { return true; }

  protected:
    /** Outcome receiver; set before the first async persist. */
    PersistClient *client_ = nullptr;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_PAGING_BACKEND_HH
