/**
 * @file
 * Seeded power-cut torture harness.
 *
 * Replays a random workload against a full Viyojit stack — SSD with
 * an active fault model, battery with runtime degradation events, a
 * safe-mode governor retuning the budget — and cuts wall power at
 * arbitrary points in the event stream: between two IO completions,
 * mid-transfer, in the middle of a retry backoff.  Every cut asserts
 * the section-4.1 durability invariant: the emergency flush fits the
 * (degraded) battery window and the SSD image verifies against every
 * written page.  All randomness derives from one seed, so a failing
 * run replays exactly from the printed seed.
 */

#ifndef VIYOJIT_CORE_TORTURE_HH
#define VIYOJIT_CORE_TORTURE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace viyojit::core
{

/** Torture-run parameters; defaults give a meaningful short run. */
struct TortureConfig
{
    /** Master seed: every random stream in the run derives from it. */
    std::uint64_t seed = 1;

    /** Power cuts to inject. */
    std::uint64_t cuts = 200;

    /** Upper bound on random ops between cuts. */
    std::uint64_t maxOpsPerRound = 120;

    /** NV region size in pages. */
    std::uint64_t regionPages = 256;

    /** Nominal (healthy-hardware) dirty budget in pages. */
    std::uint64_t dirtyBudgetPages = 48;

    /**
     * Managers sharing the battery budget through one BudgetPool.
     * 1 replays the classic single-manager harness; above 1 the
     * region splits evenly, each shard runs its own controller with
     * a pooled quota, the governor retunes the pool total, and every
     * cut additionally asserts that the SUMMED dirty count fits the
     * (possibly degraded) pooled budget.  Needs
     * `dirtyBudgetPages >= 2 * shards`.
     */
    std::uint64_t shards = 1;

    /** SSD fault model: per-attempt write error probability. */
    double writeErrorProb = 0.02;

    /** SSD fault model: per-attempt read error probability. */
    double readErrorProb = 0.01;

    /** SSD fault model: tail-latency spike probability. */
    double tailLatencyProb = 0.01;

    /** Per-round probability of redrawing the SSD wear factor. */
    double bandwidthDegradeProb = 0.10;

    /** Floor of the redrawn wear factor (drawn in [floor, 1]). */
    double bandwidthDegradeFloor = 0.5;

    /** Per-round probability of a pack service (health reset). */
    double packServiceProb = 0.05;

    /**
     * Torture the coalesced-IO flush path: victims batch into
     * vectored run writes (ViyojitConfig::coalesceRuns), so cuts land
     * mid-run — after the run was submitted, before its single
     * completion event granted durability.  A torn run must never
     * verify as clean; the emergency flush must re-persist every page
     * of it.
     */
    bool coalesceRuns = false;

    /** Run-length cap when coalesceRuns is set. */
    unsigned maxRunPages = 16;

    /**
     * Torture the compressed copy-out path
     * (storage::SsdConfig::enableCompression): the workload writes
     * record-style compressible payloads, every flush ships the
     * codec's measured stored size (cuts land mid-compressed-
     * transfer), and the measured ratios feed the governor's
     * compression-scaled budget.  The audit still verifies RAW
     * content, so a torn or wrong compressed transfer surfaces as
     * an (unattributed) mismatch exactly like a raw one.
     */
    bool compressFlush = false;

    /** Extent shift for locality-aware victim selection (0 = off). */
    unsigned extentShift = 0;

    /**
     * Clean-page gap bridging bound (ViyojitConfig::maxBridgePages):
     * with it on, cuts can land inside a run that carries clean
     * pages, exercising the bridged-completion bookkeeping under
     * torn-run replay.
     */
    unsigned maxBridgePages = 0;

    /**
     * Check the clean-pages-match-the-image invariant after every
     * op (debugging aid; quadratic, keep off for big runs).
     */
    bool paranoid = false;

    // Corruption torture: silent-fault injection (storage::FaultModel)
    // plus the verified-durability machinery that must catch it.
    // With any of these probabilities nonzero the per-cut check
    // changes shape: instead of demanding a pristine image (silent
    // faults make that impossible by construction), every settled
    // mismatch found by the checked audit MUST be attributed to an
    // injected fault, an aborted copy, or an unsettled page — one
    // unattributed mismatch is silent wrong-data acceptance and fails
    // the run.

    /** Probability an acknowledged write lands with a flipped bit. */
    double silentBitFlipProb = 0.0;

    /** Probability an acknowledged write never reaches the media. */
    double droppedWriteProb = 0.0;

    /** Probability an acknowledged write lands on the wrong page. */
    double misdirectedWriteProb = 0.0;

    /**
     * Pages the background scrubber verifies per round (pre-cut);
     * 0 disables.  With silent faults on, scrubbing repairs rotted
     * durable copies from the still-clean DRAM copy between cuts.
     */
    std::uint64_t scrubPagesPerRound = 0;
};

/** Outcome and exercised-path evidence of one torture run. */
struct TortureResult
{
    /** True when every cut survived and verified. */
    bool passed = true;

    /** Cuts actually injected. */
    std::uint64_t cutsRun = 0;

    /** 1-based index of the failing cut (0 when passed). */
    std::uint64_t failingCut = 0;

    /** Human-readable failure description (empty when passed). */
    std::string failureDetail;

    // Evidence that the run exercised what it claims to.

    /** Cuts landing with page copies still in flight (mid-flush). */
    std::uint64_t cutsMidFlight = 0;

    /** Cuts landing while the governor was out of normal mode. */
    std::uint64_t cutsInSafeMode = 0;

    /** IO attempts retried after injected errors. */
    std::uint64_t totalRetries = 0;

    /** Copies abandoned after retry exhaustion. */
    std::uint64_t totalAborts = 0;

    /** Write errors the SSD fault model injected. */
    std::uint64_t injectedWriteErrors = 0;

    /** Safe-mode entries over the run. */
    std::uint64_t safeModeEntries = 0;

    /** Budget shrinks the governor applied. */
    std::uint64_t budgetShrinks = 0;

    /** Battery cell-failure events injected. */
    std::uint64_t batteryCellFailures = 0;

    /** Battery recovery events injected. */
    std::uint64_t batteryRecoveries = 0;

    // Coalesced-flush evidence (meaningful when config.coalesceRuns).

    /** Vectored run IOs the backend submitted. */
    std::uint64_t runSubmits = 0;

    /** Pages those runs carried. */
    std::uint64_t runPagesCoalesced = 0;

    /** Runs split back to per-page retries by injected IO errors. */
    std::uint64_t runSplits = 0;

    /** Cuts landing with at least one run IO still in flight. */
    std::uint64_t cutsMidRun = 0;

    /** Smallest pre-cut energy headroom seen (must stay >= 0). */
    double minHeadroomJoules = 0.0;

    // Multi-shard evidence (meaningful when config.shards > 1).

    /** Shards the run was configured with. */
    std::uint64_t shards = 1;

    /** Largest summed dirty count observed at any cut. */
    std::uint64_t maxSummedDirtyPages = 0;

    /** Pool total at the end of the run (post any governor shrink). */
    std::uint64_t budgetPoolPages = 0;

    /** Quota pages shards borrowed from / returned to the pool. */
    std::uint64_t quotaBorrowedPages = 0;
    std::uint64_t quotaReturnedPages = 0;

    // Corruption-torture evidence (meaningful when a silent-fault
    // probability is nonzero).

    /** Silent faults the SSD model injected (flips/drops/misdirects). */
    std::uint64_t injectedSilentFaults = 0;

    /** Flush completions whose read-back verify caught wrong durable
     *  content and re-entered the retry chain. */
    std::uint64_t verifyFailures = 0;

    /** Settled-image mismatches across all post-cut checked audits. */
    std::uint64_t auditMismatches = 0;

    /**
     * Audit mismatches nothing could explain — not in the injector's
     * corruption ledger, not an aborted copy, not an unsettled page.
     * MUST stay zero: each one is silent wrong-data acceptance.
     */
    std::uint64_t auditUnattributed = 0;

    /** Scrub progress: pages verified, rotted durable copies found,
     *  and repairs from the DRAM copy. */
    std::uint64_t scrubScanned = 0;
    std::uint64_t scrubMismatches = 0;
    std::uint64_t scrubRepairs = 0;
    std::uint64_t scrubRepairFailures = 0;

    // Compressed-flush evidence (meaningful when
    // config.compressFlush): the wire bytes the SSD actually
    // transferred vs the raw bytes those transfers retired.  A run
    // that exercised compression shows wire < raw.
    std::uint64_t ssdBytesWritten = 0;
    std::uint64_t ssdLogicalBytesWritten = 0;
};

/** Run the torture loop; deterministic in `config` (same seed, same
 *  result). */
TortureResult runTorture(const TortureConfig &config);

} // namespace viyojit::core

#endif // VIYOJIT_CORE_TORTURE_HH
