#include "core/failure.hh"

namespace viyojit::core
{

PowerFailureInjector::PowerFailureInjector(ViyojitManager &manager,
                                           battery::Battery &battery,
                                           battery::PowerModel power)
    : manager_(manager), battery_(battery), power_(power)
{
}

FailureReport
PowerFailureInjector::inject()
{
    FailureReport report;
    report.joulesAvailable = battery_.effectiveJoules();

    const FlushReport flush = manager_.powerFailureFlush();
    report.dirtyPages = flush.dirtyPagesAtFailure;
    report.bytesFlushed = flush.bytesFlushed;
    report.flushDuration = flush.flushDuration;
    report.joulesNeeded =
        ticksToSeconds(flush.flushDuration) * power_.flushWatts();
    report.survived = report.joulesNeeded <= report.joulesAvailable;
    report.contentVerified = manager_.verifyDurability();
    return report;
}

double
PowerFailureInjector::currentHeadroomJoules() const
{
    // Use the wear-degraded bandwidth: headroom against the device we
    // actually have, not the one on the spec sheet.
    const double bandwidth = manager_.ssd().effectiveWriteBandwidth();
    // With compressed copy-out, the emergency flush moves stored
    // bytes, not raw bytes.  Credit the same conservative floor the
    // governor budgets with — the worst recently-observed per-page
    // ratio, never the EWMA — so this predictor and the budget
    // arithmetic agree on what "fits the window" means.
    double floor_ratio = 1.0;
    if (manager_.ssd().config().enableCompression) {
        const double floor =
            manager_.controller().tracker().floorRatio();
        if (floor > 1.0)
            floor_ratio = floor;
    }
    const double flush_seconds =
        static_cast<double>(manager_.dirtyBytes()) / floor_ratio /
        bandwidth;
    const double needed = flush_seconds * power_.flushWatts();
    return battery_.effectiveJoules() - needed;
}

} // namespace viyojit::core
