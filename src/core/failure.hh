/**
 * @file
 * Power-failure injection and durability verification.
 *
 * Durability is Viyojit's hard guarantee (section 4.1): at any
 * instant, the energy needed to flush the current dirty set must not
 * exceed what the battery can deliver.  The injector cuts wall power
 * at an arbitrary virtual time, runs the emergency flush, checks the
 * energy books, and verifies that the SSD image now matches every
 * written page.
 */

#ifndef VIYOJIT_CORE_FAILURE_HH
#define VIYOJIT_CORE_FAILURE_HH

#include "battery/battery.hh"
#include "core/manager.hh"

namespace viyojit::core
{

/** Outcome of one injected power failure. */
struct FailureReport
{
    /** Pages dirty at the instant power was lost. */
    std::uint64_t dirtyPages = 0;

    /** Bytes flushed on battery. */
    std::uint64_t bytesFlushed = 0;

    /** Modelled wall-clock duration of the flush. */
    Tick flushDuration = 0;

    /** Joules the flush required (power model x duration). */
    double joulesNeeded = 0.0;

    /** Joules the battery could deliver. */
    double joulesAvailable = 0.0;

    /** True when the battery covered the flush. */
    bool survived = false;

    /** True when every written page verified against the SSD. */
    bool contentVerified = false;
};

/** Injects power failures into a simulated manager. */
class PowerFailureInjector
{
  public:
    PowerFailureInjector(ViyojitManager &manager,
                         battery::Battery &battery,
                         battery::PowerModel power);

    /**
     * Cut wall power now: flush on battery, account energy, verify
     * content.  The manager's epoch machinery is stopped; call
     * ViyojitManager::start() to model a recovery/reboot.
     */
    FailureReport inject();

    /**
     * Energy headroom check without failing: joules needed for the
     * current dirty set vs. joules available.  Must never be negative
     * for a correctly budgeted system.
     */
    double currentHeadroomJoules() const;

  private:
    ViyojitManager &manager_;
    battery::Battery &battery_;
    battery::PowerModel power_;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_FAILURE_HH
