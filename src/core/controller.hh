/**
 * @file
 * The dirty-budget controller: Viyojit's central mechanism
 * (paper sections 4-5, figure 6).
 *
 * Responsibilities:
 *  - enforce the dirty budget exactly, in the write-fault path;
 *  - maintain least-recently-updated ordering from epoch dirty-bit
 *    scans;
 *  - proactively copy cold dirty pages to the backing store, keeping
 *    slack equal to the predicted dirty-page pressure;
 *  - flush every dirty page within the battery window on power
 *    failure.
 *
 * The controller is substrate-independent: it talks only to a
 * PagingBackend, so the identical code runs over the simulated MMU
 * and over real memory via mprotect.
 */

#ifndef VIYOJIT_CORE_CONTROLLER_HH
#define VIYOJIT_CORE_CONTROLLER_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/budget_pool.hh"
#include "core/config.hh"
#include "core/dirty_tracker.hh"
#include "core/paging_backend.hh"
#include "core/pressure.hh"
#include "core/recency.hh"

namespace viyojit::core
{

/** Lifetime statistics exported by the controller. */
struct ControllerStats
{
    std::uint64_t writeFaults = 0;
    std::uint64_t blockedEvictions = 0;
    std::uint64_t proactiveCopies = 0;
    std::uint64_t inFlightWaits = 0;
    std::uint64_t epochs = 0;

    /** Copies abandoned after the backend exhausted its IO retries. */
    std::uint64_t abortedCopies = 0;

    /** Quota pages borrowed from the attached budget pool. */
    std::uint64_t quotaBorrowedPages = 0;

    /** Quota pages returned to the attached budget pool. */
    std::uint64_t quotaReturnedPages = 0;

    /** Coalesced run IOs submitted (2+ adjacent victims batched). */
    std::uint64_t runSubmits = 0;

    /** Pages carried by those runs. */
    std::uint64_t runPagesCoalesced = 0;

    /** Clean pages written to bridge gaps between merged sub-runs. */
    std::uint64_t runPagesBridged = 0;

    /** Low-watermark batched refills from the budget pool (each one
     *  is a tryBorrow that restored spare quota to the mid target). */
    std::uint64_t watermarkRefills = 0;

    /** High-watermark epoch-boundary donations of surplus spare
     *  quota back to the pool. */
    std::uint64_t proactiveDonations = 0;

    /** Fault-path evictions shed to the async copy pipeline instead
     *  of a synchronous device write (shedBlockedEvictions). */
    std::uint64_t shedEvictions = 0;
};

/**
 * Dirty-budget enforcement engine.
 *
 * Concurrency contract: the controller is EXTERNALLY SYNCHRONIZED —
 * it holds no lock of its own, and every method (including the
 * PersistClient completions) must run under whatever serializes the
 * owning substrate: the shard lock in the mprotect runtime (see
 * NvRegion::Shard, whose controller pointer is PT_GUARDED_BY the
 * shard lock — that annotation carries the machine-checked form of
 * this contract), or the single simulation thread for a
 * ViyojitManager.  Only the attached BudgetPool is itself
 * thread-safe.
 */
class DirtyBudgetController : public PersistClient
{
  public:
    DirtyBudgetController(PagingBackend &backend,
                          const ViyojitConfig &config);

    /**
     * Attach a shared budget pool: `dirtyBudget()` becomes this
     * shard's local quota, grown by borrowing `borrow_batch`-page
     * slices from the pool when admissions hit the quota and shrunk
     * back at epoch boundaries.  The caller still synchronizes the
     * controller externally; only the pool itself is thread-safe.
     */
    void attachBudgetPool(BudgetPool *pool, std::uint64_t borrow_batch);

    BudgetPool *budgetPool() const { return pool_; }

    /**
     * (Re-)derive the spare-quota hysteresis watermarks from this
     * shard's fair share of the current total (DESIGN.md §14).  The
     * migration batch B is the borrow batch clamped to half the
     * share (so a degraded total still leaves a usable band):
     *
     *     low  = max(1, B/2)    refill trigger
     *     mid  = max(low, B)    restore target after either crossing
     *     high = 2 * mid        donation trigger
     *
     * Both triggers restore spare to `mid`, so after any migration
     * the spare sits at least `mid - low` (= high - mid) away from
     * BOTH watermarks — two shards at a boundary cannot ping-pong a
     * batch between them.  The effective SLO headroom
     * (ViyojitConfig::sloHeadroomPages) is re-clamped to share/2
     * here too.  Called at attach, and again by retune paths
     * (NvRegion::setDirtyBudget, safe-mode applyBudget) whenever the
     * total — and with it the fair share — moves.
     */
    void deriveQuotaWatermarks(std::uint64_t per_shard_share);

    /**
     * Donatable-quota gauge — spare (quota minus dirty count) ABOVE
     * the mid watermark — readable without the owner's lock: a
     * relaxed atomic the owning thread refreshes whenever quota, the
     * dirty count, or the watermarks move.  Cross-shard steal sweeps
     * use it to skip donors with nothing to give without taking
     * their locks; staleness only costs a skipped donor or a wasted
     * lock, never correctness (the authoritative value is re-read
     * under the donor's lock by releaseDonatableQuota).
     *
     * Gating on the HIGH watermark — not zero spare — is what makes
     * steals rare and cascade-free: spare inside the hysteresis band
     * is the donor's working headroom, and stealing it would push
     * the donor under its own low watermark, whose refill dries the
     * pool for the next shard — the quota-thrash loop hysteresis
     * exists to break.  In-band siblings therefore read 0 here and
     * the thief evicts locally (cheap once evictions shed to the
     * copiers) instead of churning quota.
     */
    std::uint64_t donatableQuotaGauge() const
    {
        return spareGauge_.load(std::memory_order_relaxed);
    }

    /**
     * Handle a write-protection fault on `page` (figure 6 steps 3-8).
     * On success the page is writable and accounted dirty, and the
     * dirty count is within the (local) budget.
     *
     * @param allow_evict permit evicting this shard's own pages to
     *        make room.  A pooled caller passes false on the first
     *        try so a full quota reports failure instead of paying
     *        an SSD write — spare quota idling in a sibling shard is
     *        free, an eviction is not — and retries with true once
     *        no sibling had any to give.
     * @return false only in pooled mode, when the pool is empty and
     *         the quota cannot cover the admission without an
     *         eviction the caller disallowed (or, with allow_evict,
     *         when the quota is zero outright).  Nothing was changed;
     *         the caller must acquire quota (steal via
     *         releaseDonatableQuota/the pool) and retry.  Standalone
     *         controllers (no pool) always return true.
     */
    bool onWriteFault(PageNum page, bool allow_evict = true);

    /**
     * Hardware-assist admission (section 5.4): the MMU set a dirty
     * bit for `page` and bumped its dirty counter; account the page,
     * making room first if the budget is full.  Unlike onWriteFault
     * there is no trap and the page is already writable.  Same
     * return contract as onWriteFault.
     */
    bool onHardwareDirty(PageNum page, bool allow_evict = true);

    /**
     * Epoch boundary (paper: every 1 ms): scan and clear dirty bits,
     * fold them into the recency histories, update the pressure
     * estimate, and pump proactive copies down to the threshold.
     */
    void onEpochBoundary();

    /** Called by the backend when an async page copy completes. */
    void onPersistComplete(PageNum page) override;

    /**
     * Called by the backend when an async page copy is abandoned
     * (IO retries exhausted, device fault).  The page stays dirty —
     * and budget-accounted — so durability is unaffected; it remains
     * write-protected until the next fault readmits it or a later
     * pump/flush copies it again.
     */
    void onPersistAborted(PageNum page) override;

    /**
     * Retune the budget at runtime (battery fade, section 8).  If the
     * new budget is below the current dirty count, pages are evicted
     * synchronously until the count fits.  Standalone mode only: a
     * pooled controller's quota is managed through the pool
     * (releaseQuota/grantQuota/redistributeBudget).
     */
    void setDirtyBudget(std::uint64_t pages);

    /**
     * Give up to `want` pages of quota, never dropping the local
     * budget below `floor`; evicts synchronously while the dirty
     * count exceeds the shrunken quota.  Used for cross-shard quota
     * steals and budget retuning.  The released pages are returned
     * to the caller (not deposited anywhere) — hand them to the pool
     * or to another shard's grantQuota.
     */
    std::uint64_t releaseQuota(std::uint64_t want, std::uint64_t floor);

    /**
     * Give up all spare quota above the mid watermark — a
     * demand-driven early donation, the donor side of a cross-shard
     * steal.  Never evicts; leaves the donor exactly at its restore
     * target, so the steal cannot push it across its own low
     * watermark and trigger a compensating refill (no cascade).
     * Returns 0 when spare is inside the hysteresis band — the
     * caller should then evict locally rather than churn quota.
     */
    std::uint64_t releaseDonatableQuota();

    /** Add quota pages taken from the pool or a sibling shard. */
    void grantQuota(std::uint64_t pages)
    {
        budget_ += pages;
        updateSpareGauge();
    }

    std::uint64_t dirtyBudget() const { return budget_; }

    /**
     * Emergency flush: persist every dirty page (power failure).
     * @return number of pages flushed.
     */
    std::uint64_t flushAllDirty();

    /**
     * Synchronously make one page durable and clean (used by
     * vmunmap).  Waits out an in-flight copy; no-op when clean.
     */
    void flushPageBlocking(PageNum page);

    /** Current proactive-copy threshold. */
    std::uint64_t currentThreshold() const;

    /**
     * Record a measured copy-out compression result (the substrate's
     * flush path calls this with the stored size it actually shipped;
     * bypassed pages pass stored == raw).  Forwards to the tracker's
     * compressibility metadata, which ewmaRatio()/floorRatio() — and
     * through them the budget arithmetic — aggregate.
     */
    void notePageCompression(PageNum page, std::uint64_t stored,
                             std::uint64_t raw)
    {
        tracker_.recordCompressibility(page, stored, raw);
    }

    const DirtyPageTracker &tracker() const { return tracker_; }
    const EpochRecencyTracker &recency() const { return recency_; }
    const DirtyPagePressure &pressure() const { return pressure_; }
    const ControllerStats &stats() const { return stats_; }
    const ViyojitConfig &config() const { return config_; }

    /** True while an async copy of `page` is outstanding. */
    bool isInFlight(PageNum page) const;

  private:
    /**
     * Pick the least-recently-updated dirty page not under copy.
     * @param skip a page that must not be chosen (or invalidPage).
     * @param spare_last_admitted when true (default), also spare the
     *        most recently admitted page: an unaligned store can
     *        span two pages, and both must stay resident until it
     *        completes or admissions livelock (each admit evicting
     *        the other page of the pair).
     */
    PageNum chooseVictim(PageNum skip = invalidPage,
                         bool spare_last_admitted = true);

    /** Synchronously evict one page (fault path at budget). */
    void evictOneBlocking();

    /**
     * Make room for one admission: loop until the dirty count is
     * under the budget, preferring a pool borrow (burst absorption,
     * no IO) over a local eviction.  Returns false only in pooled
     * mode with zero quota and an empty pool (see onWriteFault).
     */
    bool makeRoomForAdmission(bool allow_evict);

    /**
     * Low-watermark refill: borrow enough from the pool to restore
     * spare quota to the mid target (at least `min_take` pages).
     * The batched grant is what keeps pool CAS traffic off the
     * per-fault path; true if anything was granted.
     */
    bool refillQuota(std::uint64_t min_take);

    /**
     * Donate spare above the high watermark back to the pool,
     * restoring spare to mid; no-op in-band.  Runs at epoch
     * boundaries AND on copy completions — completions are where
     * spare accumulates mid-epoch, and parking it in the pool lets a
     * starving sibling take it with a lock-free borrow instead of a
     * donor-lock steal.  True if anything was donated.
     */
    bool maybeDonateSurplus();

    /**
     * Epoch-boundary hysteresis: donate surplus spare above the high
     * watermark back to the pool (restoring spare to mid), or refill
     * when spare has sagged below the low watermark.  Inside the
     * [low, high] band the quota is left alone — the band is what
     * prevents two shards from ping-ponging a batch at a boundary.
     */
    void rebalanceQuota();

    /** Refresh the lock-free donatable-quota gauge (relaxed store):
     *  what a steal could harvest — spare down to the mid restore
     *  target, but only once spare has reached the high (donation)
     *  watermark; 0 for in-band spare, which is working headroom. */
    void updateSpareGauge()
    {
        const std::uint64_t used = tracker_.count();
        const std::uint64_t spare = budget_ > used ? budget_ - used : 0;
        spareGauge_.store(spare >= quotaHigh_ ? spare - quotaMid_ : 0,
                          std::memory_order_relaxed);
    }

    /**
     * Launch async copies until threshold or IO-cap reached.
     * @param skip page exempt from eviction (the one just admitted,
     *        so the faulting write is guaranteed to make progress).
     */
    void pumpProactiveCopies(PageNum skip = invalidPage);

    /**
     * Launch an asynchronous copy of `victim`.
     * @param proactive false for emergency-flush copies, which do
     *        not count toward the proactive-copy statistic.
     */
    void startCopy(PageNum victim, bool proactive = true);

    /**
     * Protect `victim` and account it in flight — the submission-free
     * front half of startCopy, shared with the run-staging path.
     */
    void beginCopy(PageNum victim, bool proactive);

    /**
     * Accept `victim` into the staged-run window if it lands inside
     * it; otherwise submit the window's stretches and open a new
     * window around the victim.  Only called when maxRunLen() > 1.
     */
    void stageCopy(PageNum victim, bool proactive = true);

    /**
     * Submit every contiguous stretch of the staged window
     * (persistRunAsync for 2+ pages, the per-page path for
     * singletons).  Called whenever someone could wait on a staged
     * page — before any backend wait, at the epoch boundary, and in
     * the drain loops — so a latency-sensitive fault never stalls
     * behind an unfilled run.
     */
    void flushPendingRun();

    /** True while `page` sits in the staged, unsubmitted window. */
    bool isStaged(PageNum page) const;

    /** Effective run-length cap (1 = coalescing off). */
    unsigned maxRunLen() const;

    PagingBackend &backend_;
    ViyojitConfig config_;
    std::uint64_t budget_;

    /** Shared quota pool (sharded runtimes); null when standalone. */
    BudgetPool *pool_ = nullptr;
    std::uint64_t borrowBatch_ = 1;

    /** Spare-quota hysteresis band (deriveQuotaWatermarks). */
    std::uint64_t quotaLow_ = 0;
    std::uint64_t quotaMid_ = 1;
    std::uint64_t quotaHigh_ = 2;

    /** SLO admission reserve, clamped to half the fair share. */
    std::uint64_t effectiveHeadroom_ = 0;

    /** Lock-free spare-quota gauge for donor pre-filtering. */
    std::atomic<std::uint64_t> spareGauge_{0};

    DirtyPageTracker tracker_;
    EpochRecencyTracker recency_;
    DirtyPagePressure pressure_;

    std::vector<std::uint8_t> inFlight_;

    /**
     * Clean pages riding along in a submitted run to bridge a gap
     * between dirty sub-runs (config_.maxBridgePages).  They are
     * marked in inFlight_ so faults wait out the copy, but are NOT
     * counted in inFlightCount_, which tracks dirty pages under
     * copy (inFlightCount_ <= tracker_.count() must hold).
     */
    std::vector<std::uint8_t> bridged_;

    std::uint64_t inFlightCount_ = 0;
    bool pumping_ = false;

    /**
     * True while flushAllDirty drains the region on battery power.
     * Gap bridging is suppressed for its duration: bridging trades
     * extra page transfers for admission slots, which is the right
     * trade on wall power but wrong on battery, where transferred
     * bytes ARE the flush window and the battery was sized for the
     * dirty bytes alone.
     */
    bool emergencyFlush_ = false;

    /** Most recently admitted page (the straddling-store guard). */
    PageNum lastAdmitted_ = invalidPage;

    /**
     * Staged-run window: a bitmask of victims over up to 64 pages
     * anchored at `runBase_`.  Victims of one extent arrive in
     * recency order — scrambled within the extent — so an
     * append-at-the-ends run would split on every out-of-order pick;
     * the mask accepts them in any order and flushPendingRun submits
     * the contiguous stretches.  Anchoring at the extent base (when
     * the locality key is on) lets late lower-numbered picks land in
     * the window.  Member scalars (not a buffer) so the fault path
     * stays allocation-free.  runPages_ caches popcount(runMask_)
     * for the in-flight IO credit checks.
     */
    PageNum runBase_ = invalidPage;
    std::uint64_t runMask_ = 0;
    unsigned runPages_ = 0;

    ControllerStats stats_;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_CONTROLLER_HH
