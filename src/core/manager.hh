/**
 * @file
 * ViyojitManager: the mmap-like front end over the simulated
 * substrate (paper section 4.3's portability goal).
 *
 * The manager owns the NV address space (a real byte buffer plus the
 * modelled MMU state), wires write faults into the dirty-budget
 * controller, schedules epoch scans on the event queue, and provides
 * power-failure flush and durability verification.
 *
 * With `config.enforceBudget == false` it degrades to the baseline
 * NV-DRAM system the paper compares against: pages map writable, no
 * tracking or copying happens, and a power failure must flush every
 * written page — which is exactly what a full-capacity battery pays
 * for.
 */

#ifndef VIYOJIT_CORE_MANAGER_HH
#define VIYOJIT_CORE_MANAGER_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "core/config.hh"
#include "core/controller.hh"
#include "core/paging_backend.hh"
#include "mmu/mmu.hh"
#include "sim/context.hh"
#include "storage/ssd.hh"

namespace viyojit::core
{

/** Result of an emergency flush. */
struct FlushReport
{
    std::uint64_t dirtyPagesAtFailure = 0;
    std::uint64_t bytesFlushed = 0;
    Tick flushDuration = 0;
};

/**
 * Classified outcome of a checksum-path durability audit
 * (ViyojitManager::verifyDurabilityChecked): instead of one boolean,
 * every written page is verified against the durable image AND the
 * flush-commit sidecar, and mismatches are classified and attributed.
 */
struct DurabilityAuditReport
{
    /** Written pages examined. */
    std::uint64_t pagesChecked = 0;

    /** Pages whose durable image matches live content. */
    std::uint64_t verifiedPages = 0;

    /** Pages whose durable image differs from live content. */
    std::uint64_t mismatchedPages = 0;

    /**
     * Mismatches where the sidecar committed exactly the live
     * content: the flush landed and was verified, the medium has
     * since silently diverged (bit rot, misdirected clobber).
     */
    std::uint64_t silentCorruptPages = 0;

    /**
     * Mismatches with no commit covering the live content: the cut
     * (or an aborted copy) interrupted the write before its commit —
     * a torn page/run tail.
     */
    std::uint64_t tornPages = 0;

    /**
     * Verified pages whose sidecar entry lags the live content
     * (data durable, metadata not yet committed).  Benign; counted
     * so the stale-epoch window stays observable.
     */
    std::uint64_t staleMetaPages = 0;

    /**
     * Mismatches explained by the device's oracle corruption ledger,
     * an aborted copy, or a page legitimately still dirty/in-flight.
     */
    std::uint64_t attributedPages = 0;

    /**
     * Mismatches with no known cause.  Any nonzero value is a real
     * durability bug — data the system believes durable and intact
     * but silently wrong.
     */
    std::uint64_t unattributedPages = 0;

    /** True when the durable image matches everywhere. */
    bool clean() const { return mismatchedPages == 0; }

    /** True when every mismatch has an explanation (no silent
     *  wrong-data acceptance). */
    bool allAttributed() const { return unattributedPages == 0; }
};

/** Outcome of one background scrub pass (ViyojitManager::scrubPass). */
struct ScrubReport
{
    /** Clean, settled pages whose durable image was re-verified. */
    std::uint64_t scanned = 0;

    /** Pages skipped because they were dirty or had IO in flight. */
    std::uint64_t skippedBusy = 0;

    /** Whole-pass skips: dirty set too close to the budget (the
     *  scrubber must never steal flush bandwidth near the limit). */
    std::uint64_t skippedBudget = 0;

    /** Durable-image mismatches detected against the clean DRAM copy. */
    std::uint64_t mismatches = 0;

    /** Mismatched pages successfully rewritten from DRAM. */
    std::uint64_t repaired = 0;

    /** Repairs abandoned after bounded retries (page left corrupt). */
    std::uint64_t repairFailures = 0;
};

/**
 * IO fault-handling counters (fault model attached to the SSD).
 * Always obtained as a value snapshot: the backend keeps the live
 * counters atomic and materializes them in one read each, so a
 * reader concurrent with IO completions never sees a torn set
 * (e.g. a retry counted but its abort missing).
 */
struct IoFaultStats
{
    /** Attempts resubmitted after an injected error. */
    std::uint64_t retries = 0;

    /** Attempts abandoned at their per-IO deadline. */
    std::uint64_t timeouts = 0;

    /** Copies given up after maxIoRetries (page left dirty). */
    std::uint64_t abortedCopies = 0;

    /** Completions of abandoned attempts, ignored. */
    std::uint64_t staleCompletions = 0;

    /** Coalesced run IOs submitted (persistRunAsync batches). */
    std::uint64_t runSubmits = 0;

    /** Pages carried by those runs (avg run length = pages/submits). */
    std::uint64_t runPagesCoalesced = 0;

    /**
     * Pages that failed their slice of a run and fell back to the
     * per-page retry path (bad-page remap, transient error).
     */
    std::uint64_t runSplits = 0;

    /**
     * Completions acknowledged ok whose durable image failed the
     * read-back checksum verify (silent fault caught at flush time);
     * each one re-enters the retry chain.
     */
    std::uint64_t verifyFailures = 0;
};

/**
 * Simulated NV-DRAM manager with the Viyojit mechanism.
 *
 * Concurrency contract: a manager — like the controller it owns — is
 * externally synchronized and runs on the single simulation thread;
 * nothing here is annotated with a capability because there is no
 * lock to name.  The one exception is SimBackend's IO fault
 * counters, which tests read concurrently with simulated IO: they
 * are atomics materialized as coherent value snapshots.  When
 * managers shard one battery (ShardedBudgetDomain, the multi-shard
 * torture), the shared core::BudgetPool is the only thread-safe
 * seam, and its lock contracts live in budget_pool.hh.
 */
class ViyojitManager
{
  public:
    ViyojitManager(sim::SimContext &ctx, storage::Ssd &ssd,
                   const ViyojitConfig &config,
                   const mmu::MmuCostModel &mmu_costs,
                   std::uint64_t capacity_pages,
                   std::uint32_t region_id = 0);

    ~ViyojitManager();

    ViyojitManager(const ViyojitManager &) = delete;
    ViyojitManager &operator=(const ViyojitManager &) = delete;

    /**
     * Allocate a zeroed NV region of at least `bytes` bytes; pages
     * come up write-protected (fig. 6 step 1) unless running as the
     * baseline.  Addresses are page-aligned and never reused.
     */
    Addr vmmap(std::uint64_t bytes);

    /** Flush and unmap a region previously returned by vmmap. */
    void vmunmap(Addr base, std::uint64_t bytes);

    /** Model a read of [addr, addr+len). */
    void read(Addr addr, std::uint64_t len);

    /** Model a write of [addr, addr+len) (content untouched). */
    void write(Addr addr, std::uint64_t len);

    /** Charged write that also copies bytes into the NV buffer. */
    void memWrite(Addr addr, const void *src, std::uint64_t len);

    /** Charged read that copies bytes out of the NV buffer. */
    void memRead(Addr addr, void *dst, std::uint64_t len) const;

    /** Raw pointer into the NV buffer (no cost modelling). */
    char *rawData(Addr addr);
    const char *rawData(Addr addr) const;

    /** Begin epoch scans (no-op for the baseline). */
    void start();

    /** Stop epoch scans. */
    void stop();

    /** Deliver any due events (epochs, IO completions). */
    void processEvents();

    /**
     * Simulate loss of wall power: stop the epoch machinery and flush
     * every dirty page to the SSD on battery.
     */
    FlushReport powerFailureFlush();

    /**
     * True when the SSD image matches the live content version of
     * every page ever written (valid right after a flush).
     */
    bool verifyDurability() const;

    /**
     * Checksum-path durability audit: verify every written page
     * against the durable image and the flush-commit sidecar,
     * classify mismatches (torn vs. silent corruption), and attribute
     * them to known causes (oracle ledger, aborted copies, pages
     * still dirty).  An unattributed mismatch is a genuine bug.
     */
    DurabilityAuditReport verifyDurabilityChecked() const;

    /**
     * One bounded background scrub pass: re-verify up to `max_pages`
     * clean, settled pages against the durable image and repair
     * mismatches from the still-clean DRAM copy.  Budget-aware: the
     * pass yields entirely while the dirty set is near the budget, so
     * scrubbing never competes with the flush path for headroom.
     */
    ScrubReport scrubPass(std::uint64_t max_pages);

    /** Flush-commit sidecar entry for a page (test/audit hook). */
    struct SidecarEntry
    {
        /** CRC32C committed for the page's last verified flush. */
        std::uint64_t crc = 0;

        /** Global commit sequence number (monotonic). */
        std::uint64_t commitSeq = 0;

        /**
         * Stored (compressed) size of the committed image in bytes;
         * 0 means the page landed raw.  The CRC above stays over the
         * RAW page either way — recovery decompresses first, then
         * verifies (DESIGN.md §11).
         */
        std::uint64_t storedLength = 0;

        /** True once the page has had at least one verified commit. */
        bool valid = false;
    };
    const SidecarEntry &sidecarEntry(PageNum page) const;

    /** Bytes that would need flushing if power failed now. */
    std::uint64_t dirtyBytes() const;

    /** Current dirty-page count. */
    std::uint64_t dirtyPageCount() const;

    /** Retune the dirty budget (battery capacity change). */
    void setDirtyBudget(std::uint64_t pages);

    bool isBaseline() const { return !config_.enforceBudget; }

    DirtyBudgetController &controller();
    const DirtyBudgetController &controller() const;
    mmu::Mmu &mmu() { return mmu_; }
    sim::SimContext &ctx() { return ctx_; }
    storage::Ssd &ssd() { return ssd_; }
    const ViyojitConfig &config() const { return config_; }
    std::uint64_t capacityPages() const { return capacityPages_; }
    std::uint64_t mappedPages() const { return nextFreePage_; }

    /** Retry/timeout/abort counters of the simulated backend
     *  (coherent value snapshot; see IoFaultStats). */
    IoFaultStats ioFaultStats() const
    {
        return backend_.faultStats();
    }

    /** Content version of a page (test/verification hook). */
    std::uint64_t pageVersion(PageNum page) const;

    /** Pages written at least once over the manager's lifetime. */
    std::uint64_t writtenPageCount() const;

    /**
     * CRC32C of the page's live content (common/checksum.hh) — the
     * same checksum the flush path commits to the sidecar, so the
     * audit, the scrubber, and recovery all verify through one code
     * path.
     */
    std::uint64_t pageContentHash(PageNum page) const;

    /**
     * Measured stored size of a page under the pagezip codec
     * (common/pagezip.hh), used by the SSD's transparent-compression
     * model (section 7 extension).  Returns 0 — store raw — when
     * compression is disabled on the SSD or the page trips the
     * incompressible bypass; otherwise the exact compressed byte
     * count (< pageSize).  When compression is enabled the measured
     * ratio is also recorded as per-page compressibility metadata in
     * the dirty tracker, which feeds the budget-scaling EWMA.
     */
    std::uint64_t measuredStoredSize(PageNum page);

  private:
    /**
     * PagingBackend implementation over the simulated substrate.
     *
     * Fault handling: each page copy is a chain of submit attempts.
     * An attempt that completes with an error — or outlives its
     * per-IO deadline — is retried after an exponential backoff with
     * jitter, up to ViyojitConfig::maxIoRetries attempts; exhaustion
     * aborts the copy (controller_->onPersistAborted, page stays
     * dirty).  A generation counter per copy makes timed-out
     * stragglers' completions harmless.
     */
    class SimBackend : public PagingBackend
    {
      public:
        explicit SimBackend(ViyojitManager &mgr)
            : mgr_(mgr), jitterRng_(mgr.config_.retrySeed)
        {}

        std::uint64_t pageCount() const override;
        std::uint64_t pageSize() const override;
        void protectPage(PageNum page) override;
        void unprotectPage(PageNum page) override;
        void scanAndClearDirty(
            bool flush_tlb,
            FunctionRef<void(PageNum, bool)> visitor) override;
        void persistPageAsync(PageNum page) override;
        void persistRunAsync(PageNum first, unsigned count) override;
        unsigned maxRunPages() const override;
        void persistPageBlocking(PageNum page) override;
        void waitForPersist(PageNum page) override;
        void waitForAnyPersist() override;
        unsigned outstandingIos() const override;
        bool canSubmit() const override;

        /** Coherent value snapshot of the atomic counters. */
        IoFaultStats faultStats() const
        {
            IoFaultStats out;
            out.retries =
                faultStats_.retries.load(std::memory_order_relaxed);
            out.timeouts =
                faultStats_.timeouts.load(std::memory_order_relaxed);
            out.abortedCopies = faultStats_.abortedCopies.load(
                std::memory_order_relaxed);
            out.staleCompletions = faultStats_.staleCompletions.load(
                std::memory_order_relaxed);
            out.runSubmits =
                faultStats_.runSubmits.load(std::memory_order_relaxed);
            out.runPagesCoalesced = faultStats_.runPagesCoalesced.load(
                std::memory_order_relaxed);
            out.runSplits =
                faultStats_.runSplits.load(std::memory_order_relaxed);
            out.verifyFailures = faultStats_.verifyFailures.load(
                std::memory_order_relaxed);
            return out;
        }

        /** True while `page`'s last copy ended in an abort (left
         *  dirty); cleared by a later successful persist. */
        bool wasAborted(PageNum page) const
        {
            return abortedPages_.contains(page);
        }

      private:
        /** One logical page copy (possibly spanning attempts). */
        struct PendingCopy
        {
            /** Next tick at which this copy's state advances. */
            Tick nextEvent = 0;

            /** Device completion tick of the current attempt. */
            Tick completion = 0;

            /** Submit attempts made so far. */
            unsigned attempts = 0;

            /** Invalidates stragglers from abandoned attempts. */
            std::uint64_t generation = 0;

            /**
             * Content hash the current attempt carries to the device.
             * The read-back verify compares the durable image against
             * THIS, not the live page: a page redirtied while its
             * copy is in flight is the tracker's business, not a
             * verify failure.
             */
            std::uint64_t submittedHash = 0;

            /**
             * Stored (compressed) size the current attempt carries;
             * 0 = raw.  Committed to the sidecar alongside the hash
             * so recovery knows how to read the durable image.
             */
            std::uint64_t submittedStored = 0;
        };

        /** Launch the next submit attempt for `page`. */
        void submitAttempt(PageNum page);

        /**
         * Launch the (single) coalesced attempt for a run.  Pages
         * whose slice fails — or times out — leave the run and retry
         * through the per-page attempt chain.
         */
        void submitRunAttempt(PageNum first, unsigned count);

        /** Completion of an attempt (any status). */
        void onAttemptComplete(PageNum page, std::uint64_t generation,
                               storage::IoStatus status,
                               bool from_run = false);

        /** The per-IO deadline fired before the attempt completed. */
        void onAttemptTimeout(PageNum page, std::uint64_t generation);

        /** Schedule a backoff retry, or abort after maxIoRetries. */
        void retryOrAbort(PageNum page);

        /** Exponential backoff with jitter for attempt `n` (1-based). */
        Tick backoffFor(unsigned attempt);

        /** Live counters; atomics so snapshots are never torn. */
        struct AtomicIoFaultStats
        {
            std::atomic<std::uint64_t> retries{0};
            std::atomic<std::uint64_t> timeouts{0};
            std::atomic<std::uint64_t> abortedCopies{0};
            std::atomic<std::uint64_t> staleCompletions{0};
            std::atomic<std::uint64_t> runSubmits{0};
            std::atomic<std::uint64_t> runPagesCoalesced{0};
            std::atomic<std::uint64_t> runSplits{0};
            std::atomic<std::uint64_t> verifyFailures{0};
        };

        ViyojitManager &mgr_;
        std::unordered_map<PageNum, PendingCopy> inFlight_;
        std::unordered_set<PageNum> abortedPages_;
        Rng jitterRng_;
        std::uint64_t nextGeneration_ = 0;
        AtomicIoFaultStats faultStats_;
    };

    void scheduleNextEpoch();
    storage::StorageKey key(PageNum page) const;

    /** Record a verified flush commit for `page` (checksum `crc`,
     *  stored length `stored_len`; 0 = raw).  Ordered after
     *  durability: called only from completion paths that have
     *  already read the durable image back. */
    void commitSidecar(PageNum page, std::uint64_t crc,
                       std::uint64_t stored_len);

    /** True when `page` is neither dirty nor mid-copy (scrub/audit
     *  may trust its DRAM copy to match the durable image). */
    bool pageSettled(PageNum page) const;

    /**
     * Rewrite one settled page from its clean DRAM copy, verifying
     * the durable image after each attempt; bounded by maxIoRetries.
     * Returns false (page left corrupt) on exhaustion.
     */
    bool repairPageBlocking(PageNum page);

    sim::SimContext &ctx_;
    storage::Ssd &ssd_;
    ViyojitConfig config_;
    std::uint64_t capacityPages_;
    std::uint32_t regionId_;

    mmu::Mmu mmu_;
    SimBackend backend_;
    std::unique_ptr<DirtyBudgetController> controller_;

    /** Baseline-mode dirty set (no faults fire in that mode). */
    std::unique_ptr<DirtyPageTracker> baselineDirty_;

    std::vector<char> data_;
    std::vector<std::uint64_t> versions_;

    /** Per-page flush-commit metadata (the sim's sidecar). */
    std::vector<SidecarEntry> sidecar_;
    std::uint64_t nextCommitSeq_ = 0;

    /** Codec output scratch (pagezipBound(pageSize); reused, never
     *  grown — the copy-out path stays allocation-free). */
    std::vector<std::uint8_t> zipScratch_;

    /** Resume point of the incremental background scrub sweep. */
    PageNum scrubCursor_ = 0;

    PageNum nextFreePage_ = 0;
    bool running_ = false;

    /**
     * The per-IO timeout exists to bound tail latency for foreground
     * service; during the last-gasp power-failure flush there is no
     * foreground, and abandoning attempts could make a device slower
     * than the timeout unable to persist anything.  Timeouts are
     * disarmed while this is set.
     */
    bool lastGaspFlush_ = false;

    std::uint64_t epochGeneration_ = 0;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_MANAGER_HH
