/**
 * @file
 * ViyojitManager: the mmap-like front end over the simulated
 * substrate (paper section 4.3's portability goal).
 *
 * The manager owns the NV address space (a real byte buffer plus the
 * modelled MMU state), wires write faults into the dirty-budget
 * controller, schedules epoch scans on the event queue, and provides
 * power-failure flush and durability verification.
 *
 * With `config.enforceBudget == false` it degrades to the baseline
 * NV-DRAM system the paper compares against: pages map writable, no
 * tracking or copying happens, and a power failure must flush every
 * written page — which is exactly what a full-capacity battery pays
 * for.
 */

#ifndef VIYOJIT_CORE_MANAGER_HH
#define VIYOJIT_CORE_MANAGER_HH

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hh"
#include "core/config.hh"
#include "core/controller.hh"
#include "core/paging_backend.hh"
#include "mmu/mmu.hh"
#include "sim/context.hh"
#include "storage/ssd.hh"

namespace viyojit::core
{

/** Result of an emergency flush. */
struct FlushReport
{
    std::uint64_t dirtyPagesAtFailure = 0;
    std::uint64_t bytesFlushed = 0;
    Tick flushDuration = 0;
};

/** Simulated NV-DRAM manager with the Viyojit mechanism. */
class ViyojitManager
{
  public:
    ViyojitManager(sim::SimContext &ctx, storage::Ssd &ssd,
                   const ViyojitConfig &config,
                   const mmu::MmuCostModel &mmu_costs,
                   std::uint64_t capacity_pages,
                   std::uint32_t region_id = 0);

    ~ViyojitManager();

    ViyojitManager(const ViyojitManager &) = delete;
    ViyojitManager &operator=(const ViyojitManager &) = delete;

    /**
     * Allocate a zeroed NV region of at least `bytes` bytes; pages
     * come up write-protected (fig. 6 step 1) unless running as the
     * baseline.  Addresses are page-aligned and never reused.
     */
    Addr vmmap(std::uint64_t bytes);

    /** Flush and unmap a region previously returned by vmmap. */
    void vmunmap(Addr base, std::uint64_t bytes);

    /** Model a read of [addr, addr+len). */
    void read(Addr addr, std::uint64_t len);

    /** Model a write of [addr, addr+len) (content untouched). */
    void write(Addr addr, std::uint64_t len);

    /** Charged write that also copies bytes into the NV buffer. */
    void memWrite(Addr addr, const void *src, std::uint64_t len);

    /** Charged read that copies bytes out of the NV buffer. */
    void memRead(Addr addr, void *dst, std::uint64_t len) const;

    /** Raw pointer into the NV buffer (no cost modelling). */
    char *rawData(Addr addr);
    const char *rawData(Addr addr) const;

    /** Begin epoch scans (no-op for the baseline). */
    void start();

    /** Stop epoch scans. */
    void stop();

    /** Deliver any due events (epochs, IO completions). */
    void processEvents();

    /**
     * Simulate loss of wall power: stop the epoch machinery and flush
     * every dirty page to the SSD on battery.
     */
    FlushReport powerFailureFlush();

    /**
     * True when the SSD image matches the live content version of
     * every page ever written (valid right after a flush).
     */
    bool verifyDurability() const;

    /** Bytes that would need flushing if power failed now. */
    std::uint64_t dirtyBytes() const;

    /** Current dirty-page count. */
    std::uint64_t dirtyPageCount() const;

    /** Retune the dirty budget (battery capacity change). */
    void setDirtyBudget(std::uint64_t pages);

    bool isBaseline() const { return !config_.enforceBudget; }

    DirtyBudgetController &controller();
    const DirtyBudgetController &controller() const;
    mmu::Mmu &mmu() { return mmu_; }
    sim::SimContext &ctx() { return ctx_; }
    storage::Ssd &ssd() { return ssd_; }
    const ViyojitConfig &config() const { return config_; }
    std::uint64_t capacityPages() const { return capacityPages_; }
    std::uint64_t mappedPages() const { return nextFreePage_; }

    /** Content version of a page (test/verification hook). */
    std::uint64_t pageVersion(PageNum page) const;

    /** Pages written at least once over the manager's lifetime. */
    std::uint64_t writtenPageCount() const;

    /** FNV-1a hash of the page's live content. */
    std::uint64_t pageContentHash(PageNum page) const;

    /**
     * Run-length-based compressed-size estimate of a page, used by
     * the SSD's transparent-compression model (section 7 extension).
     */
    std::uint64_t compressedSizeEstimate(PageNum page) const;

  private:
    /** PagingBackend implementation over the simulated substrate. */
    class SimBackend : public PagingBackend
    {
      public:
        explicit SimBackend(ViyojitManager &mgr)
            : mgr_(mgr)
        {}

        std::uint64_t pageCount() const override;
        std::uint64_t pageSize() const override;
        void protectPage(PageNum page) override;
        void unprotectPage(PageNum page) override;
        void scanAndClearDirty(
            bool flush_tlb,
            FunctionRef<void(PageNum, bool)> visitor) override;
        void persistPageAsync(PageNum page,
                              std::function<void()> on_complete) override;
        void persistPageBlocking(PageNum page) override;
        void waitForPersist(PageNum page) override;
        void waitForAnyPersist() override;
        unsigned outstandingIos() const override;
        bool canSubmit() const override;

      private:
        ViyojitManager &mgr_;
        std::unordered_map<PageNum, Tick> inFlight_;
    };

    void scheduleNextEpoch();
    storage::StorageKey key(PageNum page) const;

    sim::SimContext &ctx_;
    storage::Ssd &ssd_;
    ViyojitConfig config_;
    std::uint64_t capacityPages_;
    std::uint32_t regionId_;

    mmu::Mmu mmu_;
    SimBackend backend_;
    std::unique_ptr<DirtyBudgetController> controller_;

    /** Baseline-mode dirty set (no faults fire in that mode). */
    std::unique_ptr<DirtyPageTracker> baselineDirty_;

    std::vector<char> data_;
    std::vector<std::uint64_t> versions_;

    PageNum nextFreePage_ = 0;
    bool running_ = false;
    std::uint64_t epochGeneration_ = 0;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_MANAGER_HH
