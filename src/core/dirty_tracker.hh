/**
 * @file
 * Exact dirty-page accounting (paper section 4.1).
 *
 * Viyojit must have a synchronous view of which pages are dirty: a
 * running count plus the set of dirty page addresses, updated in the
 * fault path when a page is first written and when a page's copy to
 * the backing store completes.
 */

#ifndef VIYOJIT_CORE_DIRTY_TRACKER_HH
#define VIYOJIT_CORE_DIRTY_TRACKER_HH

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "common/function_ref.hh"
#include "common/types.hh"

namespace viyojit::core
{

/**
 * Dirty-page set with O(1) insert, remove, and membership, and dense
 * iteration for flush-all.
 */
class DirtyPageTracker
{
  public:
    explicit DirtyPageTracker(std::uint64_t page_count);

    /**
     * Pre-size the dirty list for a dirty count up to `max_dirty`
     * (clamped to the page count), so steady-state markDirty never
     * heap-allocates — it runs on the fault path, which the real
     * runtime enters from a signal handler (tools/sigsafe_lint.py).
     * The list reaches this size at fixpoint anyway; reserving only
     * front-loads it.
     */
    void reserve(std::uint64_t max_dirty)
    {
        dirtyList_.reserve(static_cast<std::size_t>(
            std::min<std::uint64_t>(max_dirty, position_.size())));
    }

    /**
     * Record the first write to a page.
     * @return true if the page was clean (count incremented).
     */
    bool markDirty(PageNum page);

    /**
     * Record that a page's content is durable again.
     * @return true if the page was dirty (count decremented).
     */
    bool markClean(PageNum page);

    /** Membership query. */
    bool isDirty(PageNum page) const;

    /** Current dirty-page count. */
    std::uint64_t count() const { return dirtyList_.size(); }

    /** High watermark of the dirty count. */
    std::uint64_t highWatermark() const { return highWatermark_; }

    /** Pages dirtied since the last resetEpochCount(). */
    std::uint64_t newDirtyThisEpoch() const { return newThisEpoch_; }

    /** Reset the per-epoch new-dirty counter (at epoch boundaries). */
    void resetEpochCount() { newThisEpoch_ = 0; }

    /** Visit every dirty page (order unspecified). */
    void forEachDirty(FunctionRef<void(PageNum)> fn) const;

    /** Snapshot of the dirty set. */
    std::vector<PageNum> dirtyPages() const { return dirtyList_; }

    /** Total pages ever marked dirty (lifetime, with repeats). */
    std::uint64_t lifetimeDirtyEvents() const { return lifetimeEvents_; }

    std::uint64_t pageCount() const { return position_.size(); }

    /**
     * Record a measured copy-out compression result for a page:
     * `stored` bytes actually shipped for a `raw`-byte page (bypass
     * callers pass stored == raw).  Feeds the per-page metadata and
     * the two aggregates the budget arithmetic consumes, ewmaRatio()
     * and floorRatio().  Allocation-free (fault/flush path safe).
     */
    void recordCompressibility(PageNum page, std::uint64_t stored,
                               std::uint64_t raw);

    /**
     * Last measured stored-fraction of a page, scaled to [1, 255]
     * (ceil(stored*255/raw)); 0 = never measured.  Lower compresses
     * better — victim selection may prefer high values (pages that
     * barely compress buy the least budget by staying dirty).
     */
    std::uint8_t compressibility(PageNum page) const
    {
        return compressFrac_[page];
    }

    /**
     * Exponentially-weighted average achieved compression ratio
     * (raw/stored, alpha 1/16) across recorded copy-outs; >= 1.0,
     * exactly 1.0 before any sample.
     */
    double ewmaRatio() const;

    /**
     * Conservative floor of the achieved ratio: the WORST (smallest)
     * ratio over the last kRecentWindow recorded copy-outs, clamped
     * to [1.0, ewmaRatio()].  The emergency path budgets with this,
     * never the EWMA: one burst of incompressible pages must not be
     * flattered by a rosy average (DESIGN.md §11).
     */
    double floorRatio() const;

    /** Copy-out compression samples recorded (lifetime). */
    std::uint64_t compressionSamples() const
    {
        return compressSamples_;
    }

  private:
    /** position_[p] == npos when clean, else index into dirtyList_. */
    static constexpr std::uint32_t npos = ~0u;

    /** Samples the floor ratio looks back over. */
    static constexpr std::size_t kRecentWindow = 64;

    std::vector<std::uint32_t> position_;
    std::vector<PageNum> dirtyList_;
    std::uint64_t highWatermark_ = 0;
    std::uint64_t newThisEpoch_ = 0;
    std::uint64_t lifetimeEvents_ = 0;

    /** Per-page scaled stored-fraction; 0 = never measured. */
    std::vector<std::uint8_t> compressFrac_;

    /** EWMA of the stored fraction (stored/raw) over samples. */
    double ewmaFrac_ = 1.0;

    /** Ring of the most recent scaled fractions (floor window). */
    std::array<std::uint8_t, kRecentWindow> recentFrac_{};
    std::size_t recentHead_ = 0;
    std::uint64_t compressSamples_ = 0;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_DIRTY_TRACKER_HH
