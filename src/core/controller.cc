#include "core/controller.hh"

#include <algorithm>

#include "common/logging.hh"

namespace viyojit::core
{

DirtyBudgetController::DirtyBudgetController(PagingBackend &backend,
                                             const ViyojitConfig &config)
    : backend_(backend),
      config_(config),
      budget_(config.dirtyBudgetPages),
      tracker_(backend.pageCount()),
      recency_(backend.pageCount(), config.historyEpochs),
      pressure_(config.pressureWeightCurrent),
      inFlight_(backend.pageCount(), 0),
      bridged_(backend.pageCount(), 0)
{
    if (budget_ == 0)
        fatal("dirty budget must be at least one page");
    if (config.maxOutstandingIos == 0)
        fatal("need at least one outstanding IO slot");
    recency_.setUseSeqTieBreak(config.updateTimeTieBreak);
    recency_.setLegacyQueue(config.legacyEpochScan);
    recency_.setExtentShift(config.extentShift);
    // Steady-state faults must not heap-allocate (the real runtime
    // enters this path from its SIGSEGV handler): pre-size the
    // budget-bounded fault-path structures to their fixpoint.
    recency_.reserveStaging(config.maxOutstandingIos);
    recency_.reserveDirtyBound(budget_);
    tracker_.reserve(budget_);
    // Standalone share == the whole budget; attachBudgetPool and the
    // retune paths re-derive for pooled shards.
    effectiveHeadroom_ =
        std::min(config_.sloHeadroomPages, budget_ / 2);
    backend_.setPersistClient(*this);
}

bool
DirtyBudgetController::isInFlight(PageNum page) const
{
    return inFlight_[page] != 0;
}

void
DirtyBudgetController::attachBudgetPool(BudgetPool *pool,
                                        std::uint64_t borrow_batch)
{
    pool_ = pool;
    borrowBatch_ = std::max<std::uint64_t>(borrow_batch, 1);
    // Identity derivation until the owner states the per-shard fair
    // share (2 * batch leaves the batch unclamped); the sharded
    // runtime and the retune paths re-derive with the real share.
    deriveQuotaWatermarks(2 * borrowBatch_);
    // A pooled shard's quota can grow to the whole battery budget
    // via borrows; re-reserve to the pool total so those borrows
    // never push a fault-path insert into a reallocation.
    tracker_.reserve(pool->totalPages());
    recency_.reserveDirtyBound(pool->totalPages());
    updateSpareGauge();
}

void
DirtyBudgetController::deriveQuotaWatermarks(
    std::uint64_t per_shard_share)
{
    const std::uint64_t batch = std::min<std::uint64_t>(
        borrowBatch_,
        std::max<std::uint64_t>(1, per_shard_share / 2));
    quotaLow_ = std::max<std::uint64_t>(1, batch / 2);
    quotaMid_ = std::max(quotaLow_, batch);
    quotaHigh_ = 2 * quotaMid_;
    effectiveHeadroom_ =
        std::min(config_.sloHeadroomPages, per_shard_share / 2);
    // The donatable gauge measures spare from quotaMid_, so moved
    // watermarks shift what steal sweeps may see.
    updateSpareGauge();
}

bool
DirtyBudgetController::refillQuota(std::uint64_t min_take)
{
    const std::uint64_t used = tracker_.count();
    const std::uint64_t spare = budget_ > used ? budget_ - used : 0;
    const std::uint64_t want = std::max(
        spare < quotaMid_ ? quotaMid_ - spare : 0, min_take);
    if (want == 0)
        return false;
    const std::uint64_t got = pool_->tryBorrow(want);
    budget_ += got;
    stats_.quotaBorrowedPages += got;
    if (got) {
        ++stats_.watermarkRefills;
        updateSpareGauge();
    }
    return got > 0;
}

bool
DirtyBudgetController::maybeDonateSurplus()
{
    // No donation while an emergency drain runs: every shard is
    // flushing (the budget is about to be redistributed or the
    // region torn down), so parking transient spare in the pool is
    // CAS churn nobody will borrow against.  The post-drain surplus
    // stays local and steal-visible instead — the drain's caller
    // decides what happens to it.
    if (!pool_ || emergencyFlush_)
        return false;
    const std::uint64_t used = tracker_.count();
    const std::uint64_t spare = budget_ > used ? budget_ - used : 0;
    if (spare < quotaHigh_)
        return false;
    // Reaching the high watermark donates immediately — a shard is
    // never left *resting* at the band edge, so the steal sweep's
    // gauge scan finds donors only in the completion-to-donation
    // race window (or after a donation-suppressed drain).  Donate
    // down to the mid target, not to the low watermark: landing
    // mid-band means the next refill needs mid - low more admissions
    // than a donate-to-low would, which is the hysteresis that stops
    // boundary ping-pong.
    const std::uint64_t give = spare - quotaMid_;
    budget_ -= give;
    stats_.quotaReturnedPages += give;
    ++stats_.proactiveDonations;
    pool_->deposit(give);
    updateSpareGauge();
    return true;
}

void
DirtyBudgetController::rebalanceQuota()
{
    if (!pool_)
        return;
    if (maybeDonateSurplus())
        return;
    const std::uint64_t used = tracker_.count();
    const std::uint64_t spare = budget_ > used ? budget_ - used : 0;
    if (spare < quotaLow_)
        refillQuota(0);
}

bool
DirtyBudgetController::makeRoomForAdmission(bool allow_evict)
{
    while (tracker_.count() >= budget_) {
        // Prefer growing the quota over evicting: a burst should
        // consume global battery slack before it costs SSD writes.
        if (pool_ && refillQuota(1))
            continue;
        if (budget_ == 0 || !allow_evict)
            return false; // need external quota before evicting
        evictOneBlocking();
    }
    return true;
}

bool
DirtyBudgetController::onWriteFault(PageNum page, bool allow_evict)
{
    if (inFlight_[page]) {
        // The page is being copied out; its frame is write-protected
        // until the copy is durable (the protect-before-copy rule of
        // section 5.1).  Block until the copy completes, after which
        // the page is clean and we admit the write below.  It may be
        // sitting in the staged run, where no IO exists to wait on
        // yet; submit the run first.
        if (isStaged(page))
            flushPendingRun();
        ++stats_.inFlightWaits;
        backend_.waitForPersist(page);
        VIYOJIT_ASSERT(!inFlight_[page], "wait did not complete copy");
    }

    if (tracker_.isDirty(page)) {
        // Dirty but protected: the substrate re-protected the page
        // (the runtime's epoch re-protection does this to sample
        // recency).  Record the update and allow the write; the page
        // is already accounted against the budget.
        ++stats_.writeFaults;
        recency_.recordUpdate(page);
        backend_.unprotectPage(page);
        return true;
    }

    // Admitting a new dirty page; make room first (fig. 6 steps 5-7).
    // A quota-starved shard reports failure *before* counting the
    // fault, so the caller's steal-and-retry shows up as one fault.
    if (!makeRoomForAdmission(allow_evict))
        return false;
    ++stats_.writeFaults;

    // Fig. 6 step 8: unprotect, count, and list the faulting page.
    backend_.unprotectPage(page);
    tracker_.markDirty(page);
    recency_.recordUpdate(page);
    updateSpareGauge();

    // Hysteretic refill: crossing the low watermark tops spare quota
    // back up to the mid target in one batched borrow, so steady
    // admission never reaches the spare == 0 slow path (and the
    // donor-sweep steal behind it) while the pool has pages.  One
    // branch in the common case; the CAS only fires on a crossing.
    if (pool_ && budget_ - tracker_.count() < quotaLow_)
        refillQuota(0);

    // Crossing the threshold triggers background flushes immediately
    // (section 5.3's trigger is the threshold, not the epoch tick);
    // the epoch boundary merely refreshes recency and the threshold.
    // The just-admitted page is exempt so the faulting write always
    // makes progress; lastAdmitted_ still names the *previous*
    // admission here, keeping both halves of a page-straddling store
    // resident (see chooseVictim).
    if (config_.continuousCopyTrigger)
        pumpProactiveCopies(page);
    lastAdmitted_ = page;
    return true;
}

bool
DirtyBudgetController::onHardwareDirty(PageNum page, bool allow_evict)
{
    VIYOJIT_ASSERT(config_.hardwareAssist,
                   "hardware admission without hardware assist");
    if (inFlight_[page] || tracker_.isDirty(page))
        return true;
    if (!makeRoomForAdmission(allow_evict))
        return false;
    tracker_.markDirty(page);
    recency_.recordUpdate(page);
    updateSpareGauge();
    if (pool_ && budget_ - tracker_.count() < quotaLow_)
        refillQuota(0);
    if (config_.continuousCopyTrigger)
        pumpProactiveCopies(page);
    lastAdmitted_ = page;
    return true;
}

PageNum
DirtyBudgetController::chooseVictim(PageNum skip,
                                    bool spare_last_admitted)
{
    const PageNum spared =
        spare_last_admitted ? lastAdmitted_ : invalidPage;
    return recency_.pickVictim(
        tracker_, [this, skip, spared](PageNum p) {
            return p == skip || p == spared || inFlight_[p] != 0;
        });
}

void
DirtyBudgetController::evictOneBlocking()
{
    PageNum victim = chooseVictim();
    if (victim == invalidPage && inFlightCount_ == 0) {
        // Only the guard-window page is left (budget of 1-2 pages):
        // dropping the guard is the lesser evil; forward progress
        // then needs a budget of at least two pages for unaligned
        // writes, which the config documents.
        victim = chooseVictim(invalidPage,
                              /*spare_last_admitted=*/false);
    }
    if (victim == invalidPage) {
        // Every dirty page is already under copy; wait for one to
        // land, which lowers the dirty count.
        VIYOJIT_ASSERT(inFlightCount_ > 0,
                       "budget exceeded with no evictable page");
        // Those copies may all be sitting in the staged run, which
        // has no IO to complete until it is submitted; but while real
        // IOs are outstanding, keep the window staging across waits —
        // flushing here on every pass would cap runs at one page per
        // completion.
        if (backend_.outstandingIos() == 0)
            flushPendingRun();
        ++stats_.inFlightWaits;
        backend_.waitForAnyPersist();
        return;
    }
    // Copier back-pressure shedding: while the async pipe has
    // capacity, hand the victim to it instead of paying a whole
    // synchronous device write on the fault path.  The admission
    // loop comes straight back here (the in-flight page still counts
    // against the budget), so successive passes fill the pipe with
    // more victims until either a completion lands (count drops,
    // admission proceeds) or the cap is hit and the invalidPage
    // branch above waits for the FIRST completion — the faulting
    // thread's stall shrinks from one full write to the head of a
    // batch the copier pool drains in parallel.
    if (config_.shedBlockedEvictions &&
        backend_.outstandingIos() + runPages_ <
            config_.maxOutstandingIos &&
        backend_.canSubmit()) {
        if (maxRunLen() > 1)
            stageCopy(victim, /*proactive=*/false);
        else
            startCopy(victim, /*proactive=*/false);
        ++stats_.shedEvictions;
        return;
    }
    // Write protect before copying so a concurrent update cannot be
    // lost (section 5.1).
    backend_.protectPage(victim);
    backend_.persistPageBlocking(victim);
    tracker_.markClean(victim);
    if (config_.hardwareAssist) {
        // Clean pages stay writable under the assist; the MMU's
        // dirty counter — not write protection — readmits them.
        backend_.unprotectPage(victim);
    }
    ++stats_.blockedEvictions;
    updateSpareGauge();
}

void
DirtyBudgetController::onEpochBoundary()
{
    ++stats_.epochs;

    // Walk the page table, folding this epoch's hardware dirty bits
    // into the recency histories (section 5.2).
    // With the section-5.4 assist the MMU writes dirty bits through,
    // so the scan reads fresh bits without any TLB flush.
    const bool flush_tlb =
        config_.flushTlbOnScan && !config_.hardwareAssist;
    backend_.scanAndClearDirty(
        flush_tlb, [this](PageNum page, bool was_dirty) {
            if (was_dirty)
                recency_.recordUpdate(page);
        });

    // Update the burst predictor with this epoch's new-dirty count
    // (section 5.3) and roll the histories.
    pressure_.observe(tracker_.newDirtyThisEpoch());
    tracker_.resetEpochCount();
    recency_.advanceEpoch();
    recency_.rebuildVictimQueue(tracker_);

    pumpProactiveCopies();

    // Bounded staging latency: a partial run may linger between
    // pumps, but never across an epoch boundary.
    flushPendingRun();

    // Pooled shards breathe at epoch granularity: quota the burst no
    // longer needs goes back to the global pool (minus one borrow
    // batch of slack against the next burst).
    rebalanceQuota();
}

std::uint64_t
DirtyBudgetController::currentThreshold() const
{
    // Pooled shards size the threshold by their entitlement — the
    // local quota plus whatever the pool could still grant — not the
    // transient quota alone: rebalanceQuota deliberately keeps the
    // quota tight around the dirty count, and a threshold derived
    // from it would proactively copy half the shard's dirty set
    // every epoch no matter how much global budget sits unused.
    // Entitlement restores the intended trigger: proactive copying
    // ramps up as the *global* budget nears exhaustion (pool runs
    // dry), exactly when an unsharded controller would start copying.
    const std::uint64_t reachable =
        pool_ ? budget_ + pool_->available() : budget_;
    // SLO mode: effectiveHeadroom_ admission slots stay free below
    // whatever the pressure EWMA predicts (clamped to the fair share
    // at derivation, and to reachable/2 inside threshold()).
    return pressure_.threshold(reachable, effectiveHeadroom_);
}

void
DirtyBudgetController::pumpProactiveCopies(PageNum skip)
{
    // Backends that complete copies inline re-enter through
    // onPersistComplete; the outer loop (which holds the `skip`
    // exemption) does all the work, so nested pumps bail out.
    if (pumping_)
        return;
    pumping_ = true;
    const std::uint64_t threshold = currentThreshold();
    const unsigned run_cap = maxRunLen();
    // Staged (not yet submitted) run pages count against the IO cap:
    // they are in flight for budget purposes, just not on the device.
    while (backend_.outstandingIos() + runPages_ <
               config_.maxOutstandingIos &&
           backend_.canSubmit()) {
        const std::uint64_t settled = tracker_.count() - inFlightCount_;
        if (settled <= threshold)
            break;
        const PageNum victim = chooseVictim(skip);
        if (victim == invalidPage)
            break;
        if (run_cap > 1)
            stageCopy(victim);
        else
            startCopy(victim);
    }
    // A partial run stays staged across pump invocations: in steady
    // state each IO completion frees one page of credit, and flushing
    // here would degenerate every run to a single page.  Staged pages
    // block nobody — every wait site submits the run first, and the
    // epoch boundary bounds how long a partial run can linger.
    pumping_ = false;
}

void
DirtyBudgetController::beginCopy(PageNum victim, bool proactive)
{
    VIYOJIT_ASSERT(!inFlight_[victim], "double copy of one page");
    VIYOJIT_ASSERT(tracker_.isDirty(victim), "copying a clean page");
    backend_.protectPage(victim);
    inFlight_[victim] = 1;
    ++inFlightCount_;
    if (proactive)
        ++stats_.proactiveCopies;
}

void
DirtyBudgetController::startCopy(PageNum victim, bool proactive)
{
    beginCopy(victim, proactive);
    backend_.persistPageAsync(victim);
}

void
DirtyBudgetController::stageCopy(PageNum victim, bool proactive)
{
    beginCopy(victim, proactive);
    const unsigned window = std::min(maxRunLen(), 64u);
    if (runMask_ != 0) {
        if (victim >= runBase_ && victim < runBase_ + window) {
            runMask_ |= 1ULL << (victim - runBase_);
            ++runPages_;
            return;
        }
        flushPendingRun();
    }
    // Open a new window.  With the locality key on, anchor it at the
    // victim's extent base: same-extent victims arrive consecutively
    // but in recency order, so a later pick below the first one must
    // still land inside the window.  Clamp so the victim itself fits
    // when the extent is wider than the window.
    PageNum base = victim;
    if (config_.extentShift != 0) {
        const PageNum extent_base =
            victim >> config_.extentShift << config_.extentShift;
        base = victim - extent_base >= window
                   ? victim - (window - 1)
                   : extent_base;
    }
    runBase_ = base;
    runMask_ = 1ULL << (victim - base);
    runPages_ = 1;
}

bool
DirtyBudgetController::isStaged(PageNum page) const
{
    return runMask_ != 0 && page >= runBase_ &&
           page - runBase_ < 64 &&
           (runMask_ >> (page - runBase_) & 1) != 0;
}

void
DirtyBudgetController::flushPendingRun()
{
    if (runMask_ == 0)
        return;
    const PageNum base = runBase_;
    std::uint64_t mask = runMask_;
    // Clear before submitting: an inline-completing backend re-enters
    // onPersistComplete (and from there this pump) during the submit.
    // Staged pages are marked in flight, so a nested pump cannot
    // re-pick the pages still queued in the local mask.
    runBase_ = invalidPage;
    runMask_ = 0;
    runPages_ = 0;
    while (mask != 0) {
        const unsigned start =
            static_cast<unsigned>(__builtin_ctzll(mask));
        const std::uint64_t shifted = mask >> start;
        const std::uint64_t holes = ~shifted;
        unsigned len =
            holes == 0
                ? 64u - start
                : static_cast<unsigned>(__builtin_ctzll(holes));
        mask = holes == 0 ? 0
                          : ((shifted & ~((1ULL << len) - 1)) << start);
        // Merge across short gaps of clean, idle pages: an
        // already-durable page's DRAM content matches its durable
        // copy (clean pages stay protected until the next fault), so
        // rewriting it changes nothing — and one saved admission
        // slot buys the extra page transfers many times over on an
        // IOPS-bound device.  Bounded by maxBridgePages per gap; the
        // merged length stays within the window, which maxRunLen()
        // already caps to what the backend accepts.
        //
        // Never bridge during the emergency flush: on wall power the
        // extra transfers are amortized IOPS savings, but on battery
        // every transferred byte drains the flush window — and the
        // battery was sized for the DIRTY bytes, not dirty + bridge
        // padding.  Runs of genuinely adjacent dirty pages still
        // coalesce; only the clean-page padding stops.
        while (mask != 0 && config_.maxBridgePages != 0 &&
               !emergencyFlush_) {
            const unsigned next =
                static_cast<unsigned>(__builtin_ctzll(mask));
            const unsigned gap = next - (start + len);
            if (gap > config_.maxBridgePages)
                break;
            bool bridgeable = true;
            for (unsigned g = start + len; g < next; ++g) {
                const PageNum p = base + g;
                if (tracker_.isDirty(p) || inFlight_[p]) {
                    bridgeable = false;
                    break;
                }
            }
            if (!bridgeable)
                break;
            for (unsigned g = start + len; g < next; ++g) {
                const PageNum p = base + g;
                backend_.protectPage(p);
                inFlight_[p] = 1;
                bridged_[p] = 1;
            }
            stats_.runPagesBridged += gap;
            const std::uint64_t shifted2 = mask >> next;
            const std::uint64_t holes2 = ~shifted2;
            const unsigned len2 =
                holes2 == 0
                    ? 64u - next
                    : static_cast<unsigned>(__builtin_ctzll(holes2));
            mask = holes2 == 0
                       ? 0
                       : ((shifted2 & ~((1ULL << len2) - 1)) << next);
            len = next + len2 - start;
        }
        if (len == 1) {
            backend_.persistPageAsync(base + start);
            continue;
        }
        ++stats_.runSubmits;
        stats_.runPagesCoalesced += len;
        backend_.persistRunAsync(base + start, len);
    }
}

unsigned
DirtyBudgetController::maxRunLen() const
{
    if (!config_.coalesceRuns)
        return 1;
    unsigned cap = std::max(config_.maxRunPages, 1u);
    cap = std::min(cap, std::max(backend_.maxRunPages(), 1u));
    cap = std::min<std::uint64_t>(cap, config_.maxOutstandingIos);
    return cap;
}

void
DirtyBudgetController::onPersistComplete(PageNum page)
{
    VIYOJIT_ASSERT(inFlight_[page], "completion for idle page");
    if (bridged_[page]) {
        // A clean gap-bridging page: it was already durable, so the
        // write changed nothing — just release it.
        bridged_[page] = 0;
        inFlight_[page] = 0;
        if (config_.hardwareAssist)
            backend_.unprotectPage(page);
        return;
    }
    inFlight_[page] = 0;
    --inFlightCount_;
    tracker_.markClean(page);
    updateSpareGauge();
    // Completions are where spare accumulates mid-epoch; pushing the
    // surplus to the pool HERE (not only at the boundary) means a
    // starving sibling finds it by a lock-free borrow instead of a
    // donor-lock steal.
    maybeDonateSurplus();
    if (config_.hardwareAssist)
        backend_.unprotectPage(page);
    // Keep the pipeline full between epochs.
    if (config_.continuousCopyTrigger)
        pumpProactiveCopies();
}

void
DirtyBudgetController::onPersistAborted(PageNum page)
{
    VIYOJIT_ASSERT(inFlight_[page], "abort for idle page");
    if (bridged_[page]) {
        // The bridge write failed, but the page's previous durable
        // copy is intact and the page is still clean — no retry
        // needed, and no aborted-copy accounting (no copy was owed).
        bridged_[page] = 0;
        inFlight_[page] = 0;
        if (config_.hardwareAssist)
            backend_.unprotectPage(page);
        return;
    }
    inFlight_[page] = 0;
    --inFlightCount_;
    ++stats_.abortedCopies;
    // The page is still dirty and still counted against the budget,
    // so the section-4.1 invariant holds; it is also still protected,
    // so the next write faults into the dirty-but-protected readmit
    // path.  A later pump or emergency flush re-copies it.
    if (config_.continuousCopyTrigger)
        pumpProactiveCopies();
}

void
DirtyBudgetController::setDirtyBudget(std::uint64_t pages)
{
    if (pages == 0)
        fatal("dirty budget must be at least one page");
    if (pool_)
        fatal("a pooled shard's quota is managed by the budget pool; "
              "use releaseQuota/grantQuota or redistributeBudget");
    budget_ = pages;
    // A grown budget raises the fault-path fixpoint; re-reserve off
    // the fault path so faults still never allocate.
    tracker_.reserve(budget_);
    recency_.reserveDirtyBound(budget_);
    effectiveHeadroom_ =
        std::min(config_.sloHeadroomPages, budget_ / 2);
    // Shrinking below the current dirty count: evict synchronously
    // until we fit (battery fade handling, section 8).
    while (tracker_.count() > budget_)
        evictOneBlocking();
    updateSpareGauge();
}

std::uint64_t
DirtyBudgetController::releaseQuota(std::uint64_t want,
                                    std::uint64_t floor)
{
    if (budget_ <= floor)
        return 0;
    const std::uint64_t give = std::min(want, budget_ - floor);
    budget_ -= give;
    stats_.quotaReturnedPages += give;
    // Evict down to the shrunken quota (battery fade semantics): the
    // released pages are only safe to hand away once this shard's
    // dirty count fits what it keeps.
    while (tracker_.count() > budget_)
        evictOneBlocking();
    updateSpareGauge();
    return give;
}

std::uint64_t
DirtyBudgetController::releaseDonatableQuota()
{
    const std::uint64_t used = tracker_.count();
    const std::uint64_t spare = budget_ > used ? budget_ - used : 0;
    // Only donors at/above the high (donation) watermark give, and
    // they give down to mid — the same movement an epoch-boundary
    // donation would make, just demand-driven.  In-band spare is the
    // donor's working headroom: stealing it would push the donor
    // across its own low watermark and cascade refills.
    if (spare < quotaHigh_)
        return 0;
    const std::uint64_t give = spare - quotaMid_;
    budget_ -= give;
    stats_.quotaReturnedPages += give;
    updateSpareGauge();
    return give;
}

void
DirtyBudgetController::flushPageBlocking(PageNum page)
{
    if (inFlight_[page]) {
        if (isStaged(page)) // staged, not submitted: no IO to wait on
            flushPendingRun();
        backend_.waitForPersist(page);
        return;
    }
    if (!tracker_.isDirty(page))
        return;
    backend_.protectPage(page);
    backend_.persistPageBlocking(page);
    tracker_.markClean(page);
    updateSpareGauge();
}

std::uint64_t
DirtyBudgetController::flushAllDirty()
{
    std::uint64_t flushed = 0;
    emergencyFlush_ = true;
    const unsigned run_cap = maxRunLen();
    // Power is out, so victim order no longer protects hot pages —
    // everything must be durable before the reserve drains.  Sweep
    // the dirty set in page order instead of recency order: recency
    // buckets scatter page-adjacent victims across epochs, while a
    // page-order sweep hands the run stager maximal contiguity.
    // (Heap allocation is fine here: the emergency flush runs on a
    // normal thread, not in the fault signal handler.)
    std::vector<PageNum> order = tracker_.dirtyPages();
    std::sort(order.begin(), order.end());
    std::size_t cursor = 0;
    while (tracker_.count() > 0) {
        // Fill the IO queue from the sweep, then wait.
        bool launched = false;
        while (backend_.outstandingIos() + runPages_ <
                   config_.maxOutstandingIos &&
               backend_.canSubmit() &&
               tracker_.count() - inFlightCount_ > 0) {
            while (cursor < order.size() &&
                   (!tracker_.isDirty(order[cursor]) ||
                    inFlight_[order[cursor]]))
                ++cursor;
            if (cursor == order.size()) {
                // Aborted copies (and any late admissions) reopen
                // pages behind the cursor; restart the sweep over
                // what remains.  The loop condition guarantees an
                // eligible page exists in the fresh snapshot.
                order = tracker_.dirtyPages();
                std::sort(order.begin(), order.end());
                cursor = 0;
                continue;
            }
            const PageNum victim = order[cursor++];
            if (run_cap > 1)
                stageCopy(victim, /*proactive=*/false);
            else
                startCopy(victim, /*proactive=*/false);
            ++flushed;
            launched = true;
        }
        // Only submit the staged run once no real IO remains —
        // waitForAnyPersist would otherwise block on pages that were
        // never submitted.  While completions are still arriving the
        // window keeps filling across waits; flushing every pass
        // would degenerate the drain to one-page runs (each wait
        // returns after a single completion).
        if (backend_.outstandingIos() == 0)
            flushPendingRun();
        if (tracker_.count() == 0)
            break;
        if (!launched && inFlightCount_ == 0)
            panic("dirty pages remain but nothing can be flushed");
        backend_.waitForAnyPersist();
    }
    emergencyFlush_ = false;
    updateSpareGauge();
    return flushed;
}

} // namespace viyojit::core
