/**
 * @file
 * Global dirty-budget pool for sharded runtimes.
 *
 * The paper sizes ONE battery for ONE dirty budget.  When the page
 * space is partitioned into shards — each with its own controller and
 * lock so application threads fault concurrently — the battery-backed
 * budget must stay a single global quantity: the durability invariant
 * (section 4.1) bounds the SUM of per-shard dirty counts, not any one
 * shard's.
 *
 * The pool is that global quantity.  Each shard controller holds a
 * local quota (its `dirtyBudget()`); unassigned pages sit here.  The
 * invariant maintained at every instant:
 *
 *     sum(shard quotas) + available() <= totalPages()
 *
 * (equality except while a stolen grant is briefly in transit between
 * two shard locks), and each shard keeps `dirty <= quota`, so the
 * summed dirty count never exceeds the battery budget.
 *
 * Shards borrow and return quota in batches (`tryBorrow`/`deposit`),
 * both lock-free CAS loops on one cache line, so the write-fault fast
 * path touches no global lock — the whole point of sharding.  Total
 * retuning (battery fade, safe-mode governor) goes through the
 * mutex-serialized grow()/confiscate() paths, which are rare.
 */

#ifndef VIYOJIT_CORE_BUDGET_POOL_HH
#define VIYOJIT_CORE_BUDGET_POOL_HH

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.hh"

namespace viyojit::core
{

class DirtyBudgetController;

/** Atomic global pool of unassigned dirty-budget pages. */
class BudgetPool
{
  public:
    /**
     * @param total_pages machine-level budget (from the battery).
     * @param available_pages pages not pre-assigned to shard quotas;
     *        defaults to the full total.
     */
    explicit BudgetPool(std::uint64_t total_pages,
                        std::uint64_t available_pages = ~0ULL);

    BudgetPool(const BudgetPool &) = delete;
    BudgetPool &operator=(const BudgetPool &) = delete;

    /**
     * Take up to `want` pages from the pool (lock-free).
     * @return pages granted, in [0, want].
     */
    std::uint64_t tryBorrow(std::uint64_t want);

    /** Return pages to the pool (lock-free). */
    void deposit(std::uint64_t pages);

    /** Unassigned pages (racy gauge; exact only when quiesced). */
    std::uint64_t available() const
    {
        return available_.load(std::memory_order_relaxed);
    }

    /** Machine-level budget the pool distributes. */
    std::uint64_t totalPages() const
    {
        return total_.load(std::memory_order_relaxed);
    }

    /** Grow the total budget by `pages` (goes to available). */
    void grow(std::uint64_t pages) EXCLUDES(retuneLock_);

    /**
     * Shrink the total by destroying up to `pages` of *available*
     * quota.  Quota held by shards must be clawed back by the caller
     * (DirtyBudgetController::releaseQuota) and then confiscated.
     * @return pages actually destroyed, in [0, pages].
     */
    std::uint64_t confiscate(std::uint64_t pages) EXCLUDES(retuneLock_);

    /**
     * Shrink the total by `pages` the caller already clawed out of a
     * shard quota (releaseQuota under that shard's lock).  Unlike
     * deposit-then-confiscate, the pages never pass through
     * available(), so a concurrent borrower cannot snatch them back
     * mid-retune — the runtime's incremental shrink relies on this
     * to make monotonic progress against faulting threads.
     */
    void destroyReclaimed(std::uint64_t pages) EXCLUDES(retuneLock_);

    /** Lifetime borrow batches granted (observability). */
    std::uint64_t borrowCount() const
    {
        return borrows_.load(std::memory_order_relaxed);
    }

    /**
     * The lock serializing total-changing operations, exposed so
     * callers (e.g. redistributeBudget) can state EXCLUDES contracts
     * against it.  Lock-ordering rule 2 (region.hh): this lock nests
     * INSIDE a single shard lock and takes nothing under it.
     */
    common::Mutex &retuneLock() RETURN_CAPABILITY(retuneLock_)
    {
        return retuneLock_;
    }

  private:
    /** Serializes total-changing operations (grow/confiscate). */
    common::Mutex retuneLock_;

    /**
     * total_ and available_ are deliberately NOT GUARDED_BY
     * retuneLock_: the fault fast path reads and CASes them
     * lock-free (tryBorrow/deposit).  The lock only serializes the
     * rare total-changing writers against each other; lock-free
     * readers tolerate any interleaving the CAS loops allow.
     */
    std::atomic<std::uint64_t> total_;
    std::atomic<std::uint64_t> available_;
    std::atomic<std::uint64_t> borrows_{0};
};

/**
 * Retarget a pooled shard set to a new total budget (safe-mode
 * governor, battery fade).  Shrinks are applied before the total
 * drops and grows after it rises, so the invariant `sum(quotas) +
 * available <= total` holds at every intermediate step — the battery
 * is never oversubscribed, even transiently.
 *
 * Each shard ends with at least `floor_per_shard` pages whenever
 * `new_total >= floor_per_shard * shards`; claw-backs below a
 * shard's dirty count evict synchronously (inside releaseQuota).
 *
 * Caller must serialize against the shards (hold their locks or run
 * single-threaded): controllers themselves are externally
 * synchronized.
 */
void redistributeBudget(BudgetPool &pool,
                        const std::vector<DirtyBudgetController *> &shards,
                        std::uint64_t new_total,
                        std::uint64_t floor_per_shard = 1)
    EXCLUDES(pool.retuneLock());

} // namespace viyojit::core

#endif // VIYOJIT_CORE_BUDGET_POOL_HH
