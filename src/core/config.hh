/**
 * @file
 * Configuration for the Viyojit dirty-budget machinery.
 */

#ifndef VIYOJIT_CORE_CONFIG_HH
#define VIYOJIT_CORE_CONFIG_HH

#include <cstdint>

#include "common/types.hh"

namespace viyojit::core
{

/** Knobs of the dirty-budget controller (paper sections 4-5). */
struct ViyojitConfig
{
    /** Tracking granularity in bytes. */
    std::uint64_t pageSize = defaultPageSize;

    /**
     * Maximum pages allowed dirty at any instant; derived from the
     * provisioned battery via DirtyBudgetCalculator in deployments.
     */
    std::uint64_t dirtyBudgetPages = 0;

    /** Epoch length for dirty-bit scans (paper: 1 ms). */
    Tick epochLength = 1_ms;

    /** Epochs of update history kept per page (paper: 64). */
    unsigned historyEpochs = 64;

    /**
     * EWMA weight of the current epoch's new-dirty count when
     * predicting dirty page pressure (paper: 0.75).
     */
    double pressureWeightCurrent = 0.75;

    /** Cap on outstanding proactive-copy IOs (paper: 16). */
    unsigned maxOutstandingIos = 16;

    /**
     * Flush the TLB before each dirty-bit scan so recency is precise
     * (paper default; `false` reproduces the section 6.3 ablation
     * where stale dirty bits halve low-budget throughput).
     */
    bool flushTlbOnScan = true;

    /**
     * When true (default), proactive copies launch as soon as the
     * dirty count crosses the threshold (in the fault path and on IO
     * completion).  When false, copies launch only at epoch
     * boundaries — the burst slack must then absorb a whole epoch of
     * faults, and overflow blocks on the SSD.
     */
    bool continuousCopyTrigger = true;

    /**
     * Order history ties by last-update sequence (default).  False
     * restores a history-only victim sort, which is what makes the
     * section-6.3 stale-dirty-bit ablation collapse like the paper's
     * implementation did.
     */
    bool updateTimeTieBreak = true;

    /**
     * Section-5.4 hardware assist: the MMU counts dirty pages and
     * raises an interrupt at the budget threshold, so first writes
     * need no write-protection trap.  Pages stay writable except
     * while under writeback.  Requires a substrate whose MMU models
     * the assist (the simulator; real x86-64 cannot, which is the
     * paper's point).
     */
    bool hardwareAssist = false;

    /**
     * When false, run as the full-battery NV-DRAM baseline: pages map
     * writable, nothing is tracked or copied, and the battery must
     * cover the entire capacity.
     */
    bool enforceBudget = true;

    /**
     * Maximum submit attempts per page copy before the copy is
     * abandoned (async paths report onPersistAborted and leave the
     * page dirty for a later pass; blocking paths escalate to
     * fatal()).  Only reachable when the SSD has a fault model.
     */
    unsigned maxIoRetries = 8;

    /** First retry backoff; attempt k waits base * 2^(k-1). */
    Tick retryBackoffBase = 50_us;

    /** Ceiling on the exponential backoff. */
    Tick retryBackoffCap = 2_ms;

    /**
     * Per-attempt IO timeout; 0 disables.  An attempt whose service
     * time exceeds the deadline is abandoned at the deadline (its
     * straggling completion is ignored) and the copy is retried —
     * the tail-latency hedge production flushes need.
     */
    Tick ioTimeout = 0;

    /** Seed of the retry-jitter stream (deterministic replay). */
    std::uint64_t retrySeed = 0x7e57ab1e;

    /**
     * Coalesce page-number-adjacent victims into batched run IOs
     * (PagingBackend::persistRunAsync).  Off by default: the per-page
     * path is the paper's prototype and the A/B baseline; benches,
     * torture modes, and deployments opt in.
     */
    bool coalesceRuns = false;

    /**
     * Cap on coalesced run length in pages.  This is also the size of
     * the bounded staging window: victims accumulate in the window
     * across pump passes (each IO completion frees only one page of
     * credit, so submitting per pass would cap runs at one page), and
     * the window is submitted whenever something could wait on a
     * staged page and at every epoch boundary, so a latency-sensitive
     * fault never stalls behind an unfilled run.  The effective cap
     * is min(maxRunPages, backend.maxRunPages(), maxOutstandingIos, 64).
     */
    unsigned maxRunPages = 16;

    /**
     * log2 of the extent size (in pages) used as the locality sort
     * key: within a recency bucket, victims sort by extent id so
     * whole extents drain together and scattered working sets still
     * yield sequential IO.  0 disables the key (pure recency order,
     * the pre-coalescing behaviour).
     */
    unsigned extentShift = 0;

    /**
     * Bridge gaps between staged sub-runs by writing up to this many
     * intervening CLEAN pages per gap, merging the sub-runs into one
     * device IO.  A clean page is still write-protected (the
     * protect-before-copy rule keeps it protected after markClean
     * until the next fault), so its DRAM content equals its durable
     * copy and rewriting it is a semantic no-op — but the merge saves
     * an admission slot, which on an IOPS-bound device costs an order
     * of magnitude more than the extra page transfers.  Profitable
     * while gap * perPageTransfer < perIoAdmission.  0 disables
     * bridging.
     */
    unsigned maxBridgePages = 0;

    /**
     * Run the epoch boundary on the pre-optimization O(mapped-pages)
     * paths: eager per-epoch history shifts, a full page-table walk
     * for the dirty-bit scan, and the sort-based victim queue
     * rebuilt each epoch.  The default (false) uses the O(dirty)
     * fast paths — lazy histories, summary-bit-pruned hierarchical
     * scans, and the bucketed victim queue.  Both orders are
     * equivalent (see tests/core_test.cc VictimOrderEquivalence);
     * the switch exists for A/B validation and cost studies
     * (bench/abl_epoch_scan).
     */
    bool legacyEpochScan = false;

    /**
     * Shed fault-path blocking evictions to the async copy pipeline:
     * when the backend has submission capacity, a budget-limited
     * fault starts an async copy of the victim (filling the pipe
     * with more victims on subsequent passes) and blocks only until
     * the FIRST completion lands, instead of paying one full
     * synchronous device write per eviction.  With an inline backend
     * (no copier threads) the async submit degenerates to the same
     * blocking write, so the knob only changes behaviour when copies
     * genuinely overlap.  Off by default: the synchronous path is
     * the paper's prototype and the A/B baseline.
     */
    bool shedBlockedEvictions = false;

    /**
     * Latency-SLO admission headroom in pages (0 = off).  The
     * proactive-copy threshold is additionally clamped to
     * `reachable - headroom`, so background copying keeps at least
     * this many admission slots free even when the pressure EWMA
     * lags a burst — bounding how often a faulting thread meets a
     * full budget and has to evict (or wait) on the fault path.
     * Pooled shards clamp the effective headroom to half their fair
     * share at watermark (re-)derivation so a degraded total cannot
     * be consumed whole by the reserve.
     */
    std::uint64_t sloHeadroomPages = 0;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_CONFIG_HH
