/**
 * @file
 * Dirty-page-pressure predictor (paper section 5.3).
 *
 * Viyojit counts the new dirty pages each epoch and predicts the next
 * epoch's count with an exponentially decaying average: weight 0.75
 * on the current epoch's count, 0.25 on the previous prediction.  The
 * proactive-copy threshold is the dirty budget minus this pressure,
 * so the system keeps enough slack to absorb the predicted burst
 * without writes blocking on the SSD.
 */

#ifndef VIYOJIT_CORE_PRESSURE_HH
#define VIYOJIT_CORE_PRESSURE_HH

#include <cstdint>

namespace viyojit::core
{

/** EWMA predictor of new-dirty-pages per epoch. */
class DirtyPagePressure
{
  public:
    /** @param current_weight EWMA weight of the newest sample. */
    explicit DirtyPagePressure(double current_weight = 0.75);

    /** Feed the new-dirty count observed for the finished epoch. */
    void observe(std::uint64_t new_dirty_pages);

    /** Predicted new-dirty pages for the next epoch. */
    double predicted() const { return predicted_; }

    /**
     * Proactive-copy threshold: budget minus pressure, floored at
     * half the budget.  The floor is a robustness guard: when the
     * predicted burst exceeds the budget (e.g. epochs firing rarely
     * relative to the write rate), a zero threshold would make every
     * fault drain the entire dirty set — evicting the very pages the
     * current operation is using.  Keeping half the budget for
     * retained hot pages costs nothing when demand is that far over
     * capacity anyway.
     *
     * `headroom_pages` (latency-SLO mode, 0 = off) additionally
     * clamps the result to `budget - headroom`: the EWMA reacts one
     * epoch late by construction, so an SLO deployment reserves a
     * fixed number of admission slots that proactive copying must
     * keep free regardless of the prediction.  The clamp never takes
     * the threshold below half the budget's floor guard semantics:
     * headroom is capped at budget/2, for the same
     * hot-page-retention reason as the floor.
     */
    std::uint64_t threshold(std::uint64_t budget_pages,
                            std::uint64_t headroom_pages = 0) const;

    void reset() { predicted_ = 0.0; }

  private:
    double currentWeight_;
    double predicted_ = 0.0;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_PRESSURE_HH
