/**
 * @file
 * Safe-mode governor: keeps the section-4.1 durability invariant
 * true while the hardware degrades underneath it.
 *
 * The dirty budget is only safe relative to an assumed flush rate
 * (battery joules / system watts, SSD bandwidth).  When cells fail,
 * the pack fades, or the SSD wears — or fault injection models any
 * of these — the original budget oversubscribes the battery.  The
 * governor re-derives the budget from the *degraded* flush-time
 * estimate:
 *
 *   usable_seconds = effective_joules / flush_watts
 *                    - overhead_reserve            (latency tails,
 *                                                   one retry chain)
 *   flush_rate     = effective_ssd_bw * safety / expected_attempts
 *   budget_pages   = usable_seconds * flush_rate / page_size
 *
 * and applies it through ViyojitManager::setDirtyBudget (which
 * synchronously evicts down to the new budget).  Below a floor the
 * governor gives up on buffering entirely and pins the budget at the
 * two-page straddling-store minimum — effectively write-through.
 *
 * Battery capacity changes drive the governor through the battery's
 * capacity-listener hook; SSD degradation is picked up on every
 * reevaluate() (call it after changing the fault model, or run the
 * periodic mode).
 */

#ifndef VIYOJIT_CORE_SAFE_MODE_HH
#define VIYOJIT_CORE_SAFE_MODE_HH

#include <cstdint>

#include "battery/battery.hh"
#include "core/manager.hh"

namespace viyojit::core
{

/** Operating mode of a governed manager. */
enum class SafeMode
{
    /** Full configured budget is covered by the battery. */
    normal,

    /** Budget shrunk to match degraded flush capability. */
    degraded,

    /**
     * Degradation too deep for buffering: budget pinned at the
     * two-page minimum, so every further write is effectively
     * written through.
     */
    writeThrough,
};

/** Governor tunables. */
struct SafeModeConfig
{
    /** Derived budgets at or below this enter write-through mode. */
    std::uint64_t writeThroughFloorPages = 8;

    /**
     * Hard minimum applied budget; 2 is the smallest budget at which
     * page-straddling stores make progress.
     */
    std::uint64_t minBudgetPages = 2;

    /**
     * Battery time reserved for flush overheads that the bandwidth
     * term does not model: per-IO latency tails, one full
     * retry-backoff chain, the epoch in progress at the cut.
     */
    Tick flushOverheadReserve = 5_ms;

    /** Derate on the (already degraded) SSD bandwidth. */
    double bandwidthSafetyFactor = 0.8;
};

/** Lifetime counters of the governor. */
struct SafeModeStats
{
    /** Transitions out of normal mode. */
    std::uint64_t safeModeEntries = 0;

    /** Budget reductions applied. */
    std::uint64_t budgetShrinks = 0;

    /** Budget increases applied (degradation receded). */
    std::uint64_t budgetGrows = 0;

    /** Transitions into write-through mode. */
    std::uint64_t writeThroughEntries = 0;
};

/**
 * Watches one manager's battery + SSD health and retunes its dirty
 * budget so a power cut is always survivable.  The governor must
 * outlive neither the manager nor the battery it is attached to
 * (it registers a capacity listener on the battery).
 */
class SafeModeGovernor
{
  public:
    SafeModeGovernor(ViyojitManager &manager, battery::Battery &battery,
                     battery::PowerModel power,
                     const SafeModeConfig &config = {});

    /**
     * Re-derive the budget from the current battery/SSD health and
     * apply it if changed.  Called automatically on battery capacity
     * events; call manually (or via startPeriodic) after SSD health
     * changes.
     */
    void reevaluate();

    /** Reevaluate every `interval` of virtual time. */
    void startPeriodic(Tick interval);

    /** Stop the periodic reevaluation. */
    void stopPeriodic();

    SafeMode mode() const { return mode_; }

    /** Budget the last reevaluation derived (before the nominal cap). */
    std::uint64_t derivedBudgetPages() const { return derivedPages_; }

    /** Budget currently applied to the manager. */
    std::uint64_t appliedBudgetPages() const { return appliedPages_; }

    const SafeModeStats &stats() const { return stats_; }

    const SafeModeConfig &config() const { return config_; }

  private:
    std::uint64_t deriveBudgetPages() const;
    void apply(std::uint64_t pages, SafeMode mode);
    void scheduleNext(Tick interval);

    ViyojitManager &manager_;
    battery::Battery &battery_;
    battery::PowerModel power_;
    SafeModeConfig config_;

    /** The configured (healthy-hardware) budget: never exceeded. */
    std::uint64_t nominalPages_;

    std::uint64_t derivedPages_;
    std::uint64_t appliedPages_;
    SafeMode mode_ = SafeMode::normal;
    SafeModeStats stats_;

    bool periodicRunning_ = false;
    std::uint64_t periodicGeneration_ = 0;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_SAFE_MODE_HH
