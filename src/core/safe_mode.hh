/**
 * @file
 * Safe-mode governor: keeps the section-4.1 durability invariant
 * true while the hardware degrades underneath it.
 *
 * The dirty budget is only safe relative to an assumed flush rate
 * (battery joules / system watts, SSD bandwidth).  When cells fail,
 * the pack fades, or the SSD wears — or fault injection models any
 * of these — the original budget oversubscribes the battery.  The
 * governor re-derives the budget from the *degraded* flush-time
 * estimate:
 *
 *   usable_seconds = effective_joules / flush_watts
 *                    - overhead_reserve            (latency tails,
 *                                                   one retry chain)
 *   flush_rate     = effective_ssd_bw * safety / expected_attempts
 *   raw_rate       = flush_rate * compression_floor (copy-out codec:
 *                                                   each stored byte
 *                                                   retires floor raw
 *                                                   bytes)
 *   budget_pages   = usable_seconds * raw_rate / page_size
 *
 * and applies it through a BudgetDomain (which synchronously evicts
 * down to the new budget).  Below a floor the governor gives up on
 * buffering entirely and pins the budget at the straddling-store
 * minimum — effectively write-through.
 *
 * A BudgetDomain is whatever owns one battery's worth of dirty
 * budget: a single ViyojitManager (the classic case), or a sharded
 * set of managers drawing quotas from one core::BudgetPool — the
 * battery backs the SUM of the shards' dirty sets, so the governor
 * must retune the total, not any one shard.
 *
 * Battery capacity changes drive the governor through the battery's
 * capacity-listener hook; SSD degradation is picked up on every
 * reevaluate() (call it after changing the fault model, or run the
 * periodic mode).
 */

#ifndef VIYOJIT_CORE_SAFE_MODE_HH
#define VIYOJIT_CORE_SAFE_MODE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "battery/battery.hh"
#include "common/thread_annotations.hh"
#include "core/budget_pool.hh"
#include "core/manager.hh"

namespace viyojit::core
{

/**
 * One battery's worth of governable dirty budget.  The governor
 * derives a safe total from battery/SSD health and applies it here;
 * the domain decides how the total maps onto controllers.
 */
class BudgetDomain
{
  public:
    virtual ~BudgetDomain() = default;

    /** The configured (healthy-hardware) total budget. */
    virtual std::uint64_t nominalBudgetPages() const = 0;

    /** Bytes per page (flush-time arithmetic). */
    virtual std::uint64_t pageSize() const = 0;

    /** The device the emergency flush writes to. */
    virtual storage::Ssd &ssd() = 0;

    /** Simulation context (stats, event queue). */
    virtual sim::SimContext &ctx() = 0;

    /**
     * Apply a new total budget, evicting synchronously wherever a
     * dirty set no longer fits.  On return the domain's summed dirty
     * count is within `pages`.
     */
    virtual void applyBudget(std::uint64_t pages) = 0;

    /**
     * Conservative floor of the copy-out compression ratio achieved
     * over the recent flush window (raw/stored, >= 1; see
     * DirtyPageTracker::floorRatio).  The governor budgets the
     * emergency flush with THIS — never the EWMA — so one burst of
     * incompressible pages cannot oversubscribe the battery.
     * Domains without compression measurements return 1.
     */
    virtual double compressionFloorRatio() const { return 1.0; }
};

/** BudgetDomain over a single manager (the unsharded case). */
class ManagerBudgetDomain : public BudgetDomain
{
  public:
    explicit ManagerBudgetDomain(ViyojitManager &manager)
        : manager_(manager),
          nominal_(manager.controller().dirtyBudget())
    {}

    std::uint64_t nominalBudgetPages() const override
    {
        return nominal_;
    }

    std::uint64_t pageSize() const override
    {
        return manager_.config().pageSize;
    }

    storage::Ssd &ssd() override { return manager_.ssd(); }
    sim::SimContext &ctx() override { return manager_.ctx(); }

    void applyBudget(std::uint64_t pages) override
    {
        manager_.setDirtyBudget(pages);
    }

    double compressionFloorRatio() const override
    {
        return manager_.controller().tracker().floorRatio();
    }

  private:
    ViyojitManager &manager_;
    std::uint64_t nominal_;
};

/**
 * BudgetDomain over a sharded manager set sharing one BudgetPool.
 * Every manager's controller must already be attached to `pool`;
 * applyBudget redistributes the new total across shard quotas and
 * the pool (core::redistributeBudget), keeping at least the two-page
 * straddling-store floor per shard whenever the total allows.
 */
class ShardedBudgetDomain : public BudgetDomain
{
  public:
    ShardedBudgetDomain(BudgetPool &pool,
                        std::vector<ViyojitManager *> shards);

    std::uint64_t nominalBudgetPages() const override
    {
        return nominal_;
    }

    std::uint64_t pageSize() const override;
    storage::Ssd &ssd() override;
    sim::SimContext &ctx() override;

    /**
     * Redistributes through core::redistributeBudget, which takes
     * the pool's retune mutex — so the caller must not hold it
     * (machine-checked: a governor callback fired while a retune is
     * in progress on the same thread would self-deadlock).
     */
    void applyBudget(std::uint64_t pages)
        EXCLUDES(pool_.retuneLock()) override;

    /** Most conservative floor across the shard set: the battery
     *  backs the sum, so the worst shard's burst bounds them all. */
    double compressionFloorRatio() const override;

    /** Summed dirty pages across the shard set. */
    std::uint64_t summedDirtyPages() const;

  private:
    BudgetPool &pool_;
    std::vector<ViyojitManager *> shards_;
    std::uint64_t nominal_;
};

/** Operating mode of a governed domain. */
enum class SafeMode
{
    /** Full configured budget is covered by the battery. */
    normal,

    /** Budget shrunk to match degraded flush capability. */
    degraded,

    /**
     * Degradation too deep for buffering: budget pinned at the
     * two-page minimum, so every further write is effectively
     * written through.
     */
    writeThrough,
};

/** Governor tunables. */
struct SafeModeConfig
{
    /** Derived budgets at or below this enter write-through mode. */
    std::uint64_t writeThroughFloorPages = 8;

    /**
     * Hard minimum applied budget; 2 is the smallest budget at which
     * page-straddling stores make progress.  Sharded domains need
     * 2 x shards — every shard keeps its own straddling guard.
     */
    std::uint64_t minBudgetPages = 2;

    /**
     * Battery time reserved for flush overheads that the bandwidth
     * term does not model: per-IO latency tails, one full
     * retry-backoff chain, the epoch in progress at the cut.
     */
    Tick flushOverheadReserve = 5_ms;

    /** Derate on the (already degraded) SSD bandwidth. */
    double bandwidthSafetyFactor = 0.8;
};

/** Lifetime counters of the governor. */
struct SafeModeStats
{
    /** Transitions out of normal mode. */
    std::uint64_t safeModeEntries = 0;

    /** Budget reductions applied. */
    std::uint64_t budgetShrinks = 0;

    /** Budget increases applied (degradation receded). */
    std::uint64_t budgetGrows = 0;

    /** Transitions into write-through mode. */
    std::uint64_t writeThroughEntries = 0;
};

/**
 * Watches one domain's battery + SSD health and retunes its dirty
 * budget so a power cut is always survivable.  The governor must
 * outlive neither the domain nor the battery it is attached to
 * (it registers a capacity listener on the battery).
 *
 * Concurrency contract: externally synchronized — the governor runs
 * on the single simulation thread (battery events and periodic
 * reevaluations both arrive through the event queue), so no field
 * here is capability-guarded; the applying_/reevaluatePending_ latch
 * below handles same-thread re-entrancy, not cross-thread races.
 * The one multi-thread seam it touches is the domain's BudgetPool,
 * whose lock contracts (and applyBudget's EXCLUDES above) are
 * machine-checked.
 */
class SafeModeGovernor
{
  public:
    /** Govern a single manager (owns the adapter). */
    SafeModeGovernor(ViyojitManager &manager, battery::Battery &battery,
                     battery::PowerModel power,
                     const SafeModeConfig &config = {});

    /** Govern an arbitrary domain (caller keeps it alive). */
    SafeModeGovernor(BudgetDomain &domain, battery::Battery &battery,
                     battery::PowerModel power,
                     const SafeModeConfig &config = {});

    /**
     * Re-derive the budget from the current battery/SSD health and
     * apply it if changed.  Called automatically on battery capacity
     * events; call manually (or via startPeriodic) after SSD health
     * changes.
     */
    void reevaluate();

    /** Reevaluate every `interval` of virtual time. */
    void startPeriodic(Tick interval);

    /** Stop the periodic reevaluation. */
    void stopPeriodic();

    /**
     * Feed the governor a *measured* flush rate (bytes/sec) — what
     * the emergency-flush path actually sustained, e.g. with the
     * coalesced-IO writeback enabled — and re-derive the budget from
     * it.  Subsequent derivations scale the measurement by the SSD's
     * current degradation factor (effective / nameplate bandwidth),
     * so a device that wears AFTER the measurement still derates the
     * budget; the bandwidthSafetyFactor applies on top as usual.
     * Pass 0 to revert to the nameplate model.
     */
    void setMeasuredFlushBandwidth(double bytes_per_sec);

    /** The measured override, or 0 when the nameplate is in use. */
    double measuredFlushBandwidth() const
    {
        return measuredBandwidth_;
    }

    SafeMode mode() const { return mode_; }

    /** Budget the last reevaluation derived (before the nominal cap). */
    std::uint64_t derivedBudgetPages() const { return derivedPages_; }

    /** Budget currently applied to the domain. */
    std::uint64_t appliedBudgetPages() const { return appliedPages_; }

    const SafeModeStats &stats() const { return stats_; }

    const SafeModeConfig &config() const { return config_; }

  private:
    std::uint64_t deriveBudgetPages() const;
    void apply(std::uint64_t pages, SafeMode mode);
    void scheduleNext(Tick interval);
    void init();

    /** Set only by the manager convenience ctor. */
    std::unique_ptr<BudgetDomain> ownedDomain_;

    BudgetDomain &domain_;
    battery::Battery &battery_;
    battery::PowerModel power_;
    SafeModeConfig config_;

    /** The configured (healthy-hardware) budget: never exceeded. */
    std::uint64_t nominalPages_;

    std::uint64_t derivedPages_;
    std::uint64_t appliedPages_;

    /** Measured flush rate override; 0 = use the nameplate model. */
    double measuredBandwidth_ = 0.0;

    SafeMode mode_ = SafeMode::normal;
    SafeModeStats stats_;

    bool periodicRunning_ = false;
    std::uint64_t periodicGeneration_ = 0;

    /**
     * Re-entrancy latch: applying a shrink evicts pages, which runs
     * simulated IO events, which can fire a battery capacity event,
     * whose listener is reevaluate().  A nested redistribute would
     * corrupt the in-progress one's accounting (it reads the pool
     * total at entry), so the nested call just records that the
     * inputs changed and the outer apply() re-derives once it is
     * done with the domain.
     */
    bool applying_ = false;
    bool reevaluatePending_ = false;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_SAFE_MODE_HH
