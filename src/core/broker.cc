#include "core/broker.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace viyojit::core
{

BatteryBudgetBroker::BatteryBudgetBroker(std::uint64_t total_pages)
    : totalPages_(total_pages)
{
    if (total_pages == 0)
        fatal("broker needs a non-zero machine budget");
}

void
BatteryBudgetBroker::addTenant(ViyojitManager &manager,
                               const TenantPolicy &policy)
{
    if (manager.isBaseline())
        fatal("baseline managers have no budget to broker");
    if (policy.minPages == 0)
        fatal("tenant minimum must be at least one page");
    if (policy.weight <= 0.0)
        fatal("tenant weight must be positive");

    std::uint64_t committed = policy.minPages;
    for (const Tenant &tenant : tenants_)
        committed += tenant.policy.minPages;
    if (committed > totalPages_)
        fatal("tenant minimums (", committed,
              ") exceed the machine budget (", totalPages_, ")");

    tenants_.push_back(
        Tenant{&manager, policy, manager.controller().dirtyBudget()});
    recomputeEffectiveMins();
    rebalance();
}

std::uint64_t
BatteryBudgetBroker::demandOf(Tenant &tenant)
{
    const DirtyBudgetController &ctl = tenant.manager->controller();
    const auto burst = static_cast<std::uint64_t>(
        std::ceil(ctl.pressure().predicted()));
    const std::uint64_t faults = ctl.stats().writeFaults;
    const std::uint64_t thrash = faults - tenant.lastWriteFaults;
    tenant.lastWriteFaults = faults;
    return ctl.tracker().count() + burst + thrash + 1;
}

void
BatteryBudgetBroker::rebalance()
{
    if (tenants_.empty())
        return;

    // Pass 1: demands, floored at the (possibly scaled) minimum.
    std::vector<std::uint64_t> target(tenants_.size());
    std::uint64_t total_demand = 0;
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        target[i] =
            std::max(demandOf(tenants_[i]), tenants_[i].effectiveMin);
        total_demand += target[i];
    }

    if (total_demand <= totalPages_) {
        // Surplus: hand it out by weight (it absorbs future bursts).
        double total_weight = 0.0;
        for (const Tenant &tenant : tenants_)
            total_weight += tenant.policy.weight;
        const std::uint64_t surplus = totalPages_ - total_demand;
        std::uint64_t handed = 0;
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
            const auto share = static_cast<std::uint64_t>(
                static_cast<double>(surplus) *
                tenants_[i].policy.weight / total_weight);
            target[i] += share;
            handed += share;
        }
        // Rounding remainder goes to the first tenant.
        target[0] += surplus - handed;
    } else {
        // Oversubscribed: everyone keeps the minimum; the excess of
        // demand over minimum is scaled down proportionally (by
        // weighted demand) to fit.
        std::uint64_t total_min = 0;
        double weighted_excess = 0.0;
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
            total_min += tenants_[i].effectiveMin;
            weighted_excess +=
                static_cast<double>(target[i] -
                                    tenants_[i].effectiveMin) *
                tenants_[i].policy.weight;
        }
        const std::uint64_t distributable = totalPages_ - total_min;
        std::uint64_t handed = 0;
        for (std::size_t i = 0; i < tenants_.size(); ++i) {
            const double excess =
                static_cast<double>(target[i] -
                                    tenants_[i].effectiveMin) *
                tenants_[i].policy.weight;
            const auto share =
                weighted_excess > 0.0
                    ? static_cast<std::uint64_t>(
                          static_cast<double>(distributable) * excess /
                          weighted_excess)
                    : 0;
            target[i] = tenants_[i].effectiveMin + share;
            handed += share;
        }
        VIYOJIT_ASSERT(handed <= distributable,
                       "broker oversubscribed the budget");
    }

    // Apply: shrinks first so the sum never exceeds the total.
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        if (target[i] < tenants_[i].allocation) {
            tenants_[i].manager->setDirtyBudget(target[i]);
            tenants_[i].allocation = target[i];
        }
    }
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        if (target[i] > tenants_[i].allocation) {
            tenants_[i].manager->setDirtyBudget(target[i]);
            tenants_[i].allocation = target[i];
        }
    }
}

void
BatteryBudgetBroker::recomputeEffectiveMins()
{
    std::uint64_t total_min = 0;
    for (const Tenant &tenant : tenants_)
        total_min += tenant.policy.minPages;

    if (total_min <= totalPages_) {
        for (Tenant &tenant : tenants_)
            tenant.effectiveMin = tenant.policy.minPages;
        return;
    }

    // The machine budget no longer covers the contracted floors.
    // Oversubscribing would break the durability invariant for every
    // tenant at once, so scale the floors proportionally instead —
    // each tenant keeps at least one page.
    if (tenants_.size() > totalPages_)
        fatal("machine budget (", totalPages_,
              ") cannot give each of ", tenants_.size(),
              " tenants even one page");
    warn("machine budget (", totalPages_,
         ") below the sum of tenant minimums (", total_min,
         "); scaling contracted floors proportionally");

    std::uint64_t handed = 0;
    for (Tenant &tenant : tenants_) {
        const auto scaled = static_cast<std::uint64_t>(
            static_cast<double>(tenant.policy.minPages) *
            static_cast<double>(totalPages_) /
            static_cast<double>(total_min));
        tenant.effectiveMin = std::max<std::uint64_t>(1, scaled);
        handed += tenant.effectiveMin;
    }
    // The one-page floor can overshoot a tiny budget; trim the
    // largest floors back until the sum fits.
    while (handed > totalPages_) {
        Tenant *largest = nullptr;
        for (Tenant &tenant : tenants_)
            if (tenant.effectiveMin > 1 &&
                (!largest ||
                 tenant.effectiveMin > largest->effectiveMin))
                largest = &tenant;
        VIYOJIT_ASSERT(largest != nullptr,
                       "cannot trim floors below one page each");
        --largest->effectiveMin;
        --handed;
    }
}

void
BatteryBudgetBroker::setTotalPages(std::uint64_t total_pages)
{
    if (total_pages == 0)
        fatal("broker needs a non-zero machine budget");
    totalPages_ = total_pages;
    recomputeEffectiveMins();
    rebalance();
}

void
BatteryBudgetBroker::attachBattery(
    battery::Battery &battery,
    const battery::DirtyBudgetCalculator &calc,
    std::uint64_t page_size)
{
    battery.addCapacityListener(
        [this, calc, page_size](double effective_joules) {
            setTotalPages(std::max<std::uint64_t>(
                1, calc.budgetPages(effective_joules, page_size)));
        });
}

std::uint64_t
BatteryBudgetBroker::allocationOf(std::size_t index) const
{
    VIYOJIT_ASSERT(index < tenants_.size(), "tenant index out of range");
    return tenants_[index].allocation;
}

} // namespace viyojit::core
