#include "core/safe_mode.hh"

#include <algorithm>

#include "common/logging.hh"

namespace viyojit::core
{

SafeModeGovernor::SafeModeGovernor(ViyojitManager &manager,
                                   battery::Battery &battery,
                                   battery::PowerModel power,
                                   const SafeModeConfig &config)
    : manager_(manager),
      battery_(battery),
      power_(power),
      config_(config),
      nominalPages_(manager.controller().dirtyBudget()),
      derivedPages_(nominalPages_),
      appliedPages_(nominalPages_)
{
    if (config_.minBudgetPages < 2)
        fatal("safe-mode budget floor below the two-page minimum");
    if (config_.writeThroughFloorPages < config_.minBudgetPages)
        fatal("write-through floor below the budget floor");
    if (config_.bandwidthSafetyFactor <= 0.0 ||
        config_.bandwidthSafetyFactor > 1.0)
        fatal("bandwidth safety factor must be in (0, 1]");
    battery_.addCapacityListener(
        [this](double /*effective_joules*/) { reevaluate(); });
    reevaluate();
}

std::uint64_t
SafeModeGovernor::deriveBudgetPages() const
{
    const double watts = power_.flushWatts();
    const double seconds =
        battery_.effectiveJoules() / watts -
        ticksToSeconds(config_.flushOverheadReserve);
    if (seconds <= 0.0)
        return 0;

    double bandwidth = manager_.ssd().effectiveWriteBandwidth() *
                       config_.bandwidthSafetyFactor;
    // Every injected error costs a full page transfer, so a flush
    // under an error rate p needs 1/(1-p) attempts per page on
    // average; derate the flush rate accordingly.
    if (const auto *fm = manager_.ssd().faultModel())
        bandwidth /= fm->expectedWriteAttempts();

    const double bytes = seconds * bandwidth;
    return static_cast<std::uint64_t>(
        bytes / static_cast<double>(manager_.config().pageSize));
}

void
SafeModeGovernor::reevaluate()
{
    derivedPages_ = deriveBudgetPages();

    std::uint64_t target = std::min(derivedPages_, nominalPages_);
    SafeMode mode = SafeMode::normal;
    if (derivedPages_ <= config_.writeThroughFloorPages) {
        // Too degraded to buffer: pin at the floor so every further
        // write effectively evicts synchronously (write-through).
        target = config_.minBudgetPages;
        mode = SafeMode::writeThrough;
    } else if (target < nominalPages_) {
        target = std::max(target, config_.minBudgetPages);
        mode = SafeMode::degraded;
    }

    apply(target, mode);
}

void
SafeModeGovernor::apply(std::uint64_t pages, SafeMode mode)
{
    auto &stats = manager_.ctx().stats();
    if (mode != SafeMode::normal && mode_ == SafeMode::normal) {
        ++stats_.safeModeEntries;
        stats.counter("safemode.entries").increment();
    }
    if (mode == SafeMode::writeThrough &&
        mode_ != SafeMode::writeThrough) {
        ++stats_.writeThroughEntries;
        stats.counter("safemode.write_through_entries").increment();
        warn("safe mode: degradation past the write-through floor, "
             "budget pinned at ", pages, " pages");
    }
    mode_ = mode;

    if (pages == appliedPages_)
        return;
    if (pages < appliedPages_) {
        ++stats_.budgetShrinks;
        stats.counter("safemode.budget_shrinks").increment();
    } else {
        ++stats_.budgetGrows;
        stats.counter("safemode.budget_grows").increment();
    }
    appliedPages_ = pages;
    // Shrinking evicts synchronously down to the new budget, so the
    // dirty set fits the degraded battery window as soon as this
    // returns.
    manager_.setDirtyBudget(pages);
}

void
SafeModeGovernor::startPeriodic(Tick interval)
{
    if (interval == 0)
        fatal("periodic reevaluation needs a nonzero interval");
    periodicRunning_ = true;
    ++periodicGeneration_;
    scheduleNext(interval);
}

void
SafeModeGovernor::stopPeriodic()
{
    periodicRunning_ = false;
    ++periodicGeneration_;
}

void
SafeModeGovernor::scheduleNext(Tick interval)
{
    const std::uint64_t generation = periodicGeneration_;
    auto &ctx = manager_.ctx();
    ctx.events().schedule(
        ctx.now() + interval, [this, generation, interval]() {
            if (!periodicRunning_ || generation != periodicGeneration_)
                return;
            reevaluate();
            scheduleNext(interval);
        });
}

} // namespace viyojit::core
