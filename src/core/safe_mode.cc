#include "core/safe_mode.hh"

#include <algorithm>

#include "common/logging.hh"

namespace viyojit::core
{

// ---------------------------------------------------------------------
// ShardedBudgetDomain
// ---------------------------------------------------------------------

ShardedBudgetDomain::ShardedBudgetDomain(
    BudgetPool &pool, std::vector<ViyojitManager *> shards)
    : pool_(pool), shards_(std::move(shards)),
      nominal_(pool.totalPages())
{
    if (shards_.empty())
        fatal("sharded budget domain needs at least one shard");
    for (ViyojitManager *shard : shards_) {
        if (shard->controller().budgetPool() != &pool_)
            fatal("every shard controller must draw from the "
                  "domain's budget pool");
    }
}

std::uint64_t
ShardedBudgetDomain::pageSize() const
{
    return shards_.front()->config().pageSize;
}

storage::Ssd &
ShardedBudgetDomain::ssd()
{
    return shards_.front()->ssd();
}

sim::SimContext &
ShardedBudgetDomain::ctx()
{
    return shards_.front()->ctx();
}

void
ShardedBudgetDomain::applyBudget(std::uint64_t pages)
{
    std::vector<DirtyBudgetController *> controllers;
    controllers.reserve(shards_.size());
    for (ViyojitManager *shard : shards_)
        controllers.push_back(&shard->controller());
    // Keep each shard's two-page straddling guard whenever the total
    // can honour it (the governor's minBudgetPages for a sharded
    // domain is 2 x shards, so in practice it always can).
    redistributeBudget(pool_, controllers, pages,
                       /*floor_per_shard=*/2);
    // A degraded (or restored) total changes the fair share the
    // hysteresis band and SLO headroom hang off: re-derive per shard
    // so safe-mode shards neither donate a faded budget away against
    // stale high watermarks nor refill in stale oversized batches.
    const std::uint64_t share = std::max<std::uint64_t>(
        1, pages / controllers.size());
    for (DirtyBudgetController *controller : controllers)
        controller->deriveQuotaWatermarks(share);
}

double
ShardedBudgetDomain::compressionFloorRatio() const
{
    double floor = shards_.front()
                       ->controller().tracker().floorRatio();
    for (const ViyojitManager *shard : shards_)
        floor = std::min(floor,
                         shard->controller().tracker().floorRatio());
    return floor;
}

std::uint64_t
ShardedBudgetDomain::summedDirtyPages() const
{
    std::uint64_t sum = 0;
    for (const ViyojitManager *shard : shards_)
        sum += shard->dirtyPageCount();
    return sum;
}

// ---------------------------------------------------------------------
// SafeModeGovernor
// ---------------------------------------------------------------------

SafeModeGovernor::SafeModeGovernor(ViyojitManager &manager,
                                   battery::Battery &battery,
                                   battery::PowerModel power,
                                   const SafeModeConfig &config)
    : ownedDomain_(std::make_unique<ManagerBudgetDomain>(manager)),
      domain_(*ownedDomain_),
      battery_(battery),
      power_(power),
      config_(config),
      nominalPages_(domain_.nominalBudgetPages()),
      derivedPages_(nominalPages_),
      appliedPages_(nominalPages_)
{
    init();
}

SafeModeGovernor::SafeModeGovernor(BudgetDomain &domain,
                                   battery::Battery &battery,
                                   battery::PowerModel power,
                                   const SafeModeConfig &config)
    : domain_(domain),
      battery_(battery),
      power_(power),
      config_(config),
      nominalPages_(domain_.nominalBudgetPages()),
      derivedPages_(nominalPages_),
      appliedPages_(nominalPages_)
{
    init();
}

void
SafeModeGovernor::init()
{
    if (config_.minBudgetPages < 2)
        fatal("safe-mode budget floor below the two-page minimum");
    if (config_.writeThroughFloorPages < config_.minBudgetPages)
        fatal("write-through floor below the budget floor");
    if (config_.bandwidthSafetyFactor <= 0.0 ||
        config_.bandwidthSafetyFactor > 1.0)
        fatal("bandwidth safety factor must be in (0, 1]");
    battery_.addCapacityListener(
        [this](double /*effective_joules*/) { reevaluate(); });
    reevaluate();
}

void
SafeModeGovernor::setMeasuredFlushBandwidth(double bytes_per_sec)
{
    VIYOJIT_ASSERT(bytes_per_sec >= 0,
                   "negative measured flush bandwidth");
    measuredBandwidth_ = bytes_per_sec;
    reevaluate();
}

std::uint64_t
SafeModeGovernor::deriveBudgetPages() const
{
    const double watts = power_.flushWatts();
    const double seconds =
        battery_.effectiveJoules() / watts -
        ticksToSeconds(config_.flushOverheadReserve);
    if (seconds <= 0.0)
        return 0;

    double bandwidth = domain_.ssd().effectiveWriteBandwidth();
    if (measuredBandwidth_ > 0.0) {
        // A measured flush rate replaces the nameplate estimate, but
        // degradation that happens AFTER the measurement must still
        // derate it: rescale by the device's current health factor
        // (effective / nameplate bandwidth, 1.0 when undegraded).
        bandwidth = measuredBandwidth_ *
                    (domain_.ssd().effectiveWriteBandwidth() /
                     domain_.ssd().config().writeBandwidth);
    }
    bandwidth *= config_.bandwidthSafetyFactor;
    // Every injected error costs a full page transfer, so a flush
    // under an error rate p needs 1/(1-p) attempts per page on
    // average; derate the flush rate accordingly.
    if (const auto *fm = domain_.ssd().faultModel())
        bandwidth /= fm->expectedWriteAttempts();

    // Copy-out compression: the channel rate above is stored bytes;
    // each stored byte retires floor-ratio raw bytes.  The FLOOR of
    // the recent window, never the EWMA — the emergency flush must
    // survive its worst recent burst, not its average page.
    const double raw_rate =
        bandwidth * std::max(1.0, domain_.compressionFloorRatio());

    const double bytes = seconds * raw_rate;
    return static_cast<std::uint64_t>(
        bytes / static_cast<double>(domain_.pageSize()));
}

void
SafeModeGovernor::reevaluate()
{
    if (applying_) {
        // Called from inside our own apply() (battery event raised by
        // the eviction IO of a budget shrink): defer to the outer
        // call, which re-derives before returning.
        reevaluatePending_ = true;
        return;
    }

    derivedPages_ = deriveBudgetPages();

    // The nominal cap scales with the compression floor: the battery
    // was sized for nominalPages_ of RAW flush, and a sustained floor
    // ratio r means the same joules cover r times the raw pages — so
    // compression may raise the admitted dirty set above the
    // configured nominal, which is the whole point of compressing the
    // copy-out path.  The cap collapses back to nominalPages_ as soon
    // as incompressible pages drag the floor to 1.
    const auto cap = static_cast<std::uint64_t>(
        static_cast<double>(nominalPages_) *
        std::max(1.0, domain_.compressionFloorRatio()));
    std::uint64_t target = std::min(derivedPages_, cap);
    SafeMode mode = SafeMode::normal;
    if (derivedPages_ <= config_.writeThroughFloorPages) {
        // Too degraded to buffer: pin at the floor so every further
        // write effectively evicts synchronously (write-through).
        target = config_.minBudgetPages;
        mode = SafeMode::writeThrough;
    } else if (target < nominalPages_) {
        target = std::max(target, config_.minBudgetPages);
        mode = SafeMode::degraded;
    }

    apply(target, mode);
}

void
SafeModeGovernor::apply(std::uint64_t pages, SafeMode mode)
{
    auto &stats = domain_.ctx().stats();
    if (mode != SafeMode::normal && mode_ == SafeMode::normal) {
        ++stats_.safeModeEntries;
        stats.counter("safemode.entries").increment();
    }
    if (mode == SafeMode::writeThrough &&
        mode_ != SafeMode::writeThrough) {
        ++stats_.writeThroughEntries;
        stats.counter("safemode.write_through_entries").increment();
        warn("safe mode: degradation past the write-through floor, "
             "budget pinned at ", pages, " pages");
    }
    mode_ = mode;

    if (pages == appliedPages_)
        return;
    if (pages < appliedPages_) {
        ++stats_.budgetShrinks;
        stats.counter("safemode.budget_shrinks").increment();
    } else {
        ++stats_.budgetGrows;
        stats.counter("safemode.budget_grows").increment();
    }
    appliedPages_ = pages;
    // Shrinking evicts synchronously down to the new budget, so the
    // dirty set fits the degraded battery window as soon as this
    // returns.
    applying_ = true;
    domain_.applyBudget(pages);
    applying_ = false;

    // Battery capacity moved under the apply (its evictions run
    // simulated time): re-derive until the budget settles.
    while (reevaluatePending_) {
        reevaluatePending_ = false;
        reevaluate();
    }
}

void
SafeModeGovernor::startPeriodic(Tick interval)
{
    if (interval == 0)
        fatal("periodic reevaluation needs a nonzero interval");
    periodicRunning_ = true;
    ++periodicGeneration_;
    scheduleNext(interval);
}

void
SafeModeGovernor::stopPeriodic()
{
    periodicRunning_ = false;
    ++periodicGeneration_;
}

void
SafeModeGovernor::scheduleNext(Tick interval)
{
    const std::uint64_t generation = periodicGeneration_;
    auto &ctx = domain_.ctx();
    ctx.events().schedule(
        ctx.now() + interval, [this, generation, interval]() {
            if (!periodicRunning_ || generation != periodicGeneration_)
                return;
            reevaluate();
            scheduleNext(interval);
        });
}

} // namespace viyojit::core
