/**
 * @file
 * Epoch-based least-recently-updated tracking (paper section 5.2).
 *
 * Every page carries a 64-bit history bitmap: bit 63 says "updated in
 * the current epoch", bit 62 the epoch before, and so on.  At each
 * epoch boundary the dirty bits gathered by the page-table walk are
 * shifted into the histories.  Interpreted as an unsigned integer the
 * bitmap is a recency-weighted value — the page with the smallest
 * history is the least recently updated, which is Viyojit's victim
 * ordering ("sorts the pages according to update times and chooses
 * the least recently updated pages as targets").
 */

#ifndef VIYOJIT_CORE_RECENCY_HH
#define VIYOJIT_CORE_RECENCY_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "core/dirty_tracker.hh"

namespace viyojit::core
{

/** Per-page update history and victim selection. */
class EpochRecencyTracker
{
  public:
    /**
     * @param page_count pages tracked.
     * @param history_epochs history window; at most 64.
     */
    EpochRecencyTracker(std::uint64_t page_count,
                        unsigned history_epochs = 64);

    /**
     * Enable/disable the update-sequence tie-break (default on).
     * With it off, pages whose 64-epoch bitmaps tie are ordered by
     * page number — the information a history-only implementation
     * has.  The stale-dirty-bit ablation uses this to reproduce the
     * paper's measured collapse: with the tie-break on, fault-path
     * stamps keep correcting stale histories and the TLB flush stops
     * mattering (see abl_stale_dirty_bits).
     */
    void setUseSeqTieBreak(bool enable) { useSeqTieBreak_ = enable; }

    /**
     * Record that a page was updated during the current epoch (set
     * from the fault path for freshly dirtied pages and from the
     * epoch scan for repeat writers).
     */
    void recordUpdate(PageNum page);

    /**
     * Advance to a new epoch: shift every history right by one.  The
     * caller feeds this epoch's updates via recordUpdate() *before*
     * calling advanceEpoch() — i.e. the scan happens at the epoch
     * boundary, then histories shift.
     */
    void advanceEpoch();

    /** Raw history bitmap for a page. */
    std::uint64_t history(PageNum page) const;

    /** Update-sequence stamp of the page's last update (0 = never). */
    std::uint64_t lastUpdateSeq(PageNum page) const;

    /** True if the page has no recorded update in the window. */
    bool coldInWindow(PageNum page) const;

    /**
     * Rebuild the victim queue: dirty pages ordered least-recently-
     * updated first.  Call after each epoch's histories settle.
     */
    void rebuildVictimQueue(const DirtyPageTracker &tracker);

    /**
     * Pop the best victim that is still dirty and not excluded.
     * Falls back to any dirty page when the queue is exhausted (new
     * pages dirtied since the last rebuild).
     *
     * @param tracker current dirty set.
     * @param exclude predicate for pages that must not be chosen
     *        (e.g. already under writeback).
     * @return a victim page, or invalidPage when none qualifies.
     */
    PageNum pickVictim(const DirtyPageTracker &tracker,
                       const std::function<bool(PageNum)> &exclude);

    std::uint64_t epochIndex() const { return epochIndex_; }

  private:
    std::vector<std::uint64_t> history_;

    /**
     * Monotone sequence number of each page's most recent recorded
     * update; orders pages whose 64-epoch bitmaps tie — including
     * pages updated within the same epoch ("sorts the pages
     * according to update times", section 5.2).
     */
    std::vector<std::uint64_t> lastUpdateSeq_;
    std::uint64_t updateSeq_ = 0;
    bool useSeqTieBreak_ = true;

    std::uint64_t historyMask_;
    std::uint64_t epochIndex_ = 0;

    /** Dirty pages sorted by (history, page); consumed front-first. */
    std::vector<PageNum> victimQueue_;
    std::size_t victimCursor_ = 0;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_RECENCY_HH
