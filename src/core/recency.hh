/**
 * @file
 * Epoch-based least-recently-updated tracking (paper section 5.2).
 *
 * Every page carries a 64-bit history bitmap: bit 63 says "updated in
 * the current epoch", bit 62 the epoch before, and so on.  At each
 * epoch boundary the dirty bits gathered by the page-table walk are
 * shifted into the histories.  Interpreted as an unsigned integer the
 * bitmap is a recency-weighted value — the page with the smallest
 * history is the least recently updated, which is Viyojit's victim
 * ordering ("sorts the pages according to update times and chooses
 * the least recently updated pages as targets").
 *
 * Epoch-loop complexity: histories are stored *lazily* — instead of
 * shifting every page's word at each boundary, a global epoch index
 * advances and each page remembers the epoch its word was last folded
 * at.  Reads normalize on access (`raw >> (now - lastFolded)`), which
 * is arithmetically identical to the eager shift because right-shift
 * is order-preserving and the window mask only clears bits the shift
 * would eventually discard.  advanceEpoch() is therefore O(1), and
 * only pages that were actually updated pay a fold.
 *
 * Victim selection is likewise O(dirty-active): pages live in one of
 * 64 recency buckets keyed by their last-update epoch (a ring, one
 * slot per window epoch) plus a cold bucket for pages with no update
 * in the window.  A page's bucket *is* the position of the most
 * significant set bit of its normalized history (bucket "cold" =
 * history 0), so draining cold-then-oldest-to-newest visits pages in
 * exactly the order the old global sort produced.  Within a bucket:
 * while the bucket's epoch is current, updates append in O(1) (one
 * entry per page per epoch) and the first mid-epoch pick heapifies
 * the bucket into a min-heap on (history, first-update sequence)
 * keys — valid because a page's normalized history cannot change
 * within its own update epoch — so the controller's mid-epoch
 * admit/pick interleave costs O(log bucket) instead of a re-sort per
 * pick.  Once its epoch passes the bucket freezes: epoch shifts can
 * collapse a strict history order into a sequence-broken tie, so the
 * first pick of each later epoch re-sorts the remainder with the
 * live comparator.  The old sort-based queue is kept behind
 * setLegacyQueue() for A/B validation (config.legacyEpochScan).
 */

#ifndef VIYOJIT_CORE_RECENCY_HH
#define VIYOJIT_CORE_RECENCY_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/function_ref.hh"
#include "common/types.hh"
#include "core/dirty_tracker.hh"

namespace viyojit::core
{

/** Per-page update history and victim selection. */
class EpochRecencyTracker
{
  public:
    /**
     * @param page_count pages tracked.
     * @param history_epochs history window; at most 64.
     */
    EpochRecencyTracker(std::uint64_t page_count,
                        unsigned history_epochs = 64);

    /**
     * Enable/disable the update-sequence tie-break (default on).
     * With it off, pages whose 64-epoch bitmaps tie are ordered by
     * page number — the information a history-only implementation
     * has.  The stale-dirty-bit ablation uses this to reproduce the
     * paper's measured collapse: with the tie-break on, fault-path
     * stamps keep correcting stale histories and the TLB flush stops
     * mattering (see abl_stale_dirty_bits).
     *
     * History-only ordering cannot be bucketed (the cold bucket
     * would need a page-number sort that splicing cannot maintain
     * incrementally), so disabling the tie-break also falls back to
     * the legacy sort-based victim queue.
     */
    void setUseSeqTieBreak(bool enable) { useSeqTieBreak_ = enable; }

    /**
     * Select the legacy epoch path: eager per-epoch history shifts
     * and the sort-based victim queue rebuilt at each boundary.
     * Exists for A/B validation against the bucketed fast path
     * (config.legacyEpochScan); call before the first update.
     */
    void setLegacyQueue(bool enable) { legacyQueue_ = enable; }

    /**
     * Locality-aware eviction (run coalescing): order pages that tie
     * on recency by extent id (page >> shift) before the update
     * sequence, so a recency bucket drains extent-by-extent and
     * adjacent victims emerge back-to-back for the run detector.
     * This is a SECONDARY key — the primary least-recently-updated
     * order (the normalized history, and the bucket structure that
     * mirrors it) is untouched, so enabling it only reorders picks
     * *within* a recency bucket (see core_test
     * ExtentKeyReordersOnlyWithinBuckets).  0 disables (pure
     * recency/seq order); call before the first update.
     */
    void setExtentShift(unsigned shift) { extentShift_ = shift; }

    /**
     * Pre-size the pick-path scratch so victim selection does not
     * heap-allocate on the (possibly signal-context) fault path: the
     * stash of excluded-but-live entries a pick skips over is
     * bounded by the exclusion set — the pages under copy (at most
     * `max_outstanding`) plus the skip/straddling-guard pair.
     * Bucket and cold vectors still grow geometrically during
     * warm-up and reach a fixpoint; see DESIGN.md §8.
     */
    void reserveStaging(unsigned max_outstanding)
    {
        stash_.reserve(max_outstanding + 4);
    }

    /**
     * Pre-size the cold list for a dirty working set up to
     * `max_dirty` pages (clamped to the page count): every tracked
     * page can age out of the window at once, and the cold list must
     * absorb them without allocating on the fault path.  Like the
     * dirty tracker's reserve, this front-loads the fixpoint size.
     * The per-epoch ring buckets are NOT pre-sized — their worst
     * case is the same bound PER BUCKET, which would multiply the
     * footprint by the window length; their geometric growth reaches
     * a fixpoint during warm-up instead (see the sigsafe allowlist).
     */
    void reserveDirtyBound(std::uint64_t max_dirty)
    {
        cold_.reserve(static_cast<std::size_t>(
            std::min<std::uint64_t>(max_dirty,
                                    lastUpdateSeq_.size())));
    }

    /**
     * Record that a page was updated during the current epoch (set
     * from the fault path for freshly dirtied pages and from the
     * epoch scan for repeat writers).
     */
    void recordUpdate(PageNum page);

    /**
     * Advance to a new epoch.  Histories are lazy, so this only bumps
     * the global epoch index and retires the bucket ring slot that
     * falls out of the window (amortized O(1) per recorded update).
     * In legacy mode it performs the paper-era full-array shift.
     * The caller feeds this epoch's updates via recordUpdate()
     * *before* calling advanceEpoch() — i.e. the scan happens at the
     * epoch boundary, then histories shift.
     */
    void advanceEpoch();

    /** History bitmap for a page, normalized to the current epoch. */
    std::uint64_t history(PageNum page) const;

    /** Update-sequence stamp of the page's last update (0 = never). */
    std::uint64_t lastUpdateSeq(PageNum page) const;

    /** True if the page has no recorded update in the window. */
    bool coldInWindow(PageNum page) const;

    /**
     * Legacy mode only: rebuild the victim queue (dirty pages
     * ordered least-recently-updated first).  A no-op on the
     * bucketed path, which maintains its order incrementally.
     */
    void rebuildVictimQueue(const DirtyPageTracker &tracker);

    /**
     * Pop the best victim that is still dirty and not excluded.
     * Falls back to a linear scan of the dirty set when the queue is
     * exhausted (new pages dirtied since the last rebuild, or every
     * queued candidate excluded).
     *
     * @param tracker current dirty set.
     * @param exclude predicate for pages that must not be chosen
     *        (e.g. already under writeback).
     * @return a victim page, or invalidPage when none qualifies.
     */
    PageNum pickVictim(const DirtyPageTracker &tracker,
                       FunctionRef<bool(PageNum)> exclude);

    std::uint64_t epochIndex() const { return epochIndex_; }

  private:
    /**
     * Entry in an epoch bucket, at most one live per page (see
     * enqueuedKey_).  The keys are snapshots from the update that
     * pushed it: keyHistory stays live for the whole epoch (a repeat
     * update cannot change a history whose current-epoch bit is
     * already set), while keySeq can go stale by at most the
     * within-epoch re-update distance — below the mechanism's epoch
     * granularity.  An entry is live only while its page's last
     * update epoch still is the bucket's epoch.  Consumed entries
     * (sorted mode only) are skipped.
     */
    struct Entry
    {
        PageNum page;
        std::uint64_t keyHistory;
        std::uint64_t keySeq;
        bool consumed;
    };

    /** One ring slot: pages last updated in one window epoch. */
    struct Bucket
    {
        std::vector<Entry> entries;
        std::size_t cursor = 0;

        /**
         * While the bucket's epoch is current it accepts O(1)
         * appends; the first mid-epoch pick heapifies it into a
         * min-heap on the (keyHistory, keySeq) keys, and the first
         * pick after the epoch passes freezes it into the sorted
         * form below.
         */
        bool heapMode = true;

        /** Heap invariant established (heap mode only). */
        bool heapified = false;

        /**
         * Sorted mode: epoch of the last sort.  Histories shift
         * between epochs, which can collapse a strict within-bucket
         * order into a tie (broken by sequence), so a bucket sorted
         * in an earlier epoch must be re-sorted before it is drained
         * again.
         */
        std::uint64_t sortStamp = 0;

        void
        clear()
        {
            entries.clear();
            cursor = 0;
            heapMode = true;
            heapified = false;
            sortStamp = 0;
        }
    };

    /** Cold entry: page plus the sequence it expired with. */
    struct ColdEntry
    {
        PageNum page;
        std::uint64_t seq;
        bool consumed;
    };

    bool usesBuckets() const { return !legacyQueue_ && useSeqTieBreak_; }

    /**
     * Heap comparator over push-time keys ("a pops after b"); with
     * it, std::push_heap/pop_heap maintain a min-heap.  keySeq is
     * unique per entry, so this is a total order.  It only ever
     * compares entries of ONE bucket, whose pages all share a
     * last-update epoch — the recency class the drain respects — so
     * when the locality key is on, extent LEADS within the bucket:
     * adjacent victims coalesce into runs, and the sub-epoch history
     * refinement is demoted to a tiebreak.  Cross-bucket recency is
     * untouched (buckets drain oldest-epoch-first).
     */
    bool
    entryAfter(const Entry &a, const Entry &b) const
    {
        if (extentShift_ != 0) {
            const PageNum ea = a.page >> extentShift_;
            const PageNum eb = b.page >> extentShift_;
            if (ea != eb)
                return ea > eb;
        }
        if (a.keyHistory != b.keyHistory)
            return a.keyHistory > b.keyHistory;
        return a.keySeq > b.keySeq;
    }

    /** Fold a page's raw word up to the current epoch. */
    std::uint64_t normalizedHistory(PageNum page) const;

    bool victimLess(PageNum a, PageNum b) const;

    void spliceExpiredBucket();
    PageNum pickFromCold(const DirtyPageTracker &tracker,
                         FunctionRef<bool(PageNum)> exclude);
    PageNum pickFromBucket(Bucket &bucket, std::uint64_t bucket_epoch,
                           const DirtyPageTracker &tracker,
                           FunctionRef<bool(PageNum)> exclude);
    PageNum pickFallback(const DirtyPageTracker &tracker,
                         FunctionRef<bool(PageNum)> exclude) const;

    /** Raw history words, valid as of lastFolded_[page]. */
    std::vector<std::uint64_t> history_;
    std::vector<std::uint64_t> lastFolded_;

    /**
     * Monotone sequence number of each page's most recent recorded
     * update; orders pages whose 64-epoch bitmaps tie — including
     * pages updated within the same epoch ("sorts the pages
     * according to update times", section 5.2).
     */
    std::vector<std::uint64_t> lastUpdateSeq_;

    /**
     * epochIndex_ + 1 while the page has a live entry in the current
     * epoch's bucket (0 = none).  Dedups ring pushes, but precisely:
     * popping a page's entry out of the heap (victim or cleaned)
     * clears it, so a page cleaned and re-dirtied within one epoch
     * re-enters the bucket instead of hiding until the O(dirty)
     * fallback scan finds it.
     */
    std::vector<std::uint64_t> enqueuedKey_;

    std::uint64_t updateSeq_ = 0;
    bool useSeqTieBreak_ = true;
    bool legacyQueue_ = false;

    /** log2 extent pages for the locality key; 0 = disabled. */
    unsigned extentShift_ = 0;

    unsigned windowEpochs_;
    std::uint64_t historyMask_;
    std::uint64_t epochIndex_ = 0;

    /** Ring of window buckets; slot = update epoch % windowEpochs_. */
    std::vector<Bucket> ring_;

    /** Pages whose last update expired from the window, seq order. */
    std::vector<ColdEntry> cold_;
    std::size_t coldCursor_ = 0;

    /** Pick-time scratch: excluded live entries to push back. */
    std::vector<Entry> stash_;

    /** Legacy queue: dirty pages sorted by (history, seq, page). */
    std::vector<PageNum> victimQueue_;
    std::size_t victimCursor_ = 0;
};

} // namespace viyojit::core

#endif // VIYOJIT_CORE_RECENCY_HH
