#include "core/recovery.hh"

#include <algorithm>

#include "common/logging.hh"

namespace viyojit::core
{

RecoveryManager::RecoveryManager(sim::SimContext &ctx,
                                 storage::Ssd &ssd,
                                 std::uint32_t region_id,
                                 std::uint64_t page_count,
                                 std::uint64_t page_size,
                                 RestoreStrategy strategy,
                                 unsigned max_outstanding_reads)
    : ctx_(ctx),
      ssd_(ssd),
      regionId_(region_id),
      pageCount_(page_count),
      pageSize_(page_size),
      strategy_(strategy),
      maxOutstandingReads_(max_outstanding_reads),
      resident_(page_count, 0)
{
    if (page_count == 0)
        fatal("nothing to recover");
    if (max_outstanding_reads == 0)
        fatal("need at least one outstanding read");
}

void
RecoveryManager::markResident(PageNum page)
{
    if (!resident_[page]) {
        resident_[page] = 1;
        ++residentCount_;
        if (residentCount_ == pageCount_)
            stats_.fullyResidentAt = ctx_.now();
    }
}

Tick
RecoveryManager::issueRead(PageNum page)
{
    const Tick done = ssd_.readPage(
        storage::StorageKey{regionId_, page}, pageSize_,
        [this, page]() {
            inFlight_.erase(page);
            markResident(page);
            // A completed slot frees capacity for the sweep.
            if (strategy_ != RestoreStrategy::demandOnly)
                pumpBackground();
        });
    inFlight_[page] = done;
    return done;
}

void
RecoveryManager::pumpBackground()
{
    if (!started_ || strategy_ == RestoreStrategy::demandOnly)
        return;
    while (inFlight_.size() < maxOutstandingReads_ &&
           sweepCursor_ < pageCount_) {
        // Skip pages already resident (demand-fetched) or queued.
        if (resident_[sweepCursor_] ||
            inFlight_.contains(sweepCursor_)) {
            ++sweepCursor_;
            continue;
        }
        if (!ssd_.canAccept())
            break;
        issueRead(sweepCursor_);
        ++sweepCursor_;
        ++stats_.backgroundFetches;
    }
}

void
RecoveryManager::begin()
{
    started_ = true;
    pumpBackground();
}

Tick
RecoveryManager::access(PageNum page)
{
    VIYOJIT_ASSERT(page < pageCount_, "page out of range");
    VIYOJIT_ASSERT(started_, "access before begin()");
    if (resident_[page])
        return 0;

    const Tick start = ctx_.now();
    auto it = inFlight_.find(page);
    Tick done;
    if (it != inFlight_.end()) {
        done = it->second;
    } else if (strategy_ == RestoreStrategy::eager) {
        // No demand path: wait for the sweep to reach the page.
        while (!resident_[page]) {
            if (!ctx_.events().runOne())
                panic("eager restore stalled before page ", page);
        }
        return ctx_.now() - start;
    } else {
        ++stats_.demandFetches;
        done = issueRead(page);
    }
    ctx_.events().runUntil(done);
    VIYOJIT_ASSERT(resident_[page], "page-in did not complete");
    return ctx_.now() - start;
}

void
RecoveryManager::waitUntilFullyResident()
{
    VIYOJIT_ASSERT(strategy_ != RestoreStrategy::demandOnly,
                   "demand-only restore never sweeps");
    while (!fullyResident()) {
        if (!ctx_.events().runOne())
            panic("restore stalled with ", pageCount_ - residentCount_,
                  " pages missing");
    }
}

} // namespace viyojit::core
