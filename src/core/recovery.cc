#include "core/recovery.hh"

#include <algorithm>

#include "common/logging.hh"

namespace viyojit::core
{

RecoveryManager::RecoveryManager(sim::SimContext &ctx,
                                 storage::Ssd &ssd,
                                 std::uint32_t region_id,
                                 std::uint64_t page_count,
                                 std::uint64_t page_size,
                                 RestoreStrategy strategy,
                                 unsigned max_outstanding_reads,
                                 unsigned max_read_retries,
                                 unsigned max_revisit_passes)
    : ctx_(ctx),
      ssd_(ssd),
      regionId_(region_id),
      pageCount_(page_count),
      pageSize_(page_size),
      strategy_(strategy),
      maxOutstandingReads_(max_outstanding_reads),
      maxReadRetries_(max_read_retries),
      maxRevisitPasses_(max_revisit_passes),
      resident_(page_count, kAbsent)
{
    if (page_count == 0)
        fatal("nothing to recover");
    if (max_outstanding_reads == 0)
        fatal("need at least one outstanding read");
    if (max_read_retries == 0)
        fatal("need at least one read attempt");
    if (max_revisit_passes == 0)
        fatal("need at least one revisit pass");
}

void
RecoveryManager::attachManifest(RecoveryManifest manifest)
{
    VIYOJIT_ASSERT(!started_, "manifest attached after begin()");
    VIYOJIT_ASSERT(manifest.pages.size() >= pageCount_,
                   "manifest smaller than the region");
    manifest_ = std::move(manifest);
    manifestAttached_ = true;
}

void
RecoveryManager::markResident(PageNum page)
{
    if (resident_[page] == kAbsent) {
        resident_[page] = kResident;
        ++residentCount_;
        if (residentCount_ == pageCount_)
            stats_.fullyResidentAt = ctx_.now();
    }
}

void
RecoveryManager::quarantine(PageNum page)
{
    if (resident_[page] != kAbsent)
        return;
    resident_[page] = kQuarantined;
    ++residentCount_;
    ++stats_.quarantinedPages;
    ctx_.stats().counter("recovery.quarantined_pages").increment();
    warn("recovery quarantined page ", page,
         " (unreadable or failed checksum verification)");
    if (residentCount_ == pageCount_)
        stats_.fullyResidentAt = ctx_.now();
}

bool
RecoveryManager::checksumOk(PageNum page)
{
    if (!manifestAttached_)
        return true;
    const PageChecksum &expect = manifest_.pages[page];
    if (!expect.valid)
        return true; // never had a verified commit: nothing to check
    const std::uint64_t durable =
        ssd_.durableHash(storage::StorageKey{regionId_, page});
    if (durable == expect.crc)
        return true;

    ++stats_.checksumMismatches;
    ctx_.stats().counter("recovery.checksum_mismatches").increment();
    // Classify by where the commit sits relative to the last sealed
    // flush: newer-than-seal mismatches are the torn tail the crash
    // is allowed to have produced; at-the-seal mismatches mean data
    // moved past its sealed metadata (stale epoch); older mismatches
    // are silent media corruption of a long-committed page.
    if (expect.epoch > manifest_.lastSealedEpoch) {
        ++stats_.tornRunPages;
        ctx_.stats().counter("recovery.torn_run_pages").increment();
    } else if (expect.epoch == manifest_.lastSealedEpoch) {
        ++stats_.staleEpochPages;
        ctx_.stats().counter("recovery.stale_epoch_pages").increment();
    } else {
        ++stats_.silentCorruptPages;
        ctx_.stats()
            .counter("recovery.silent_corrupt_pages")
            .increment();
    }
    return false;
}

std::vector<PageNum>
RecoveryManager::quarantinedPages() const
{
    std::vector<PageNum> out;
    for (PageNum p = 0; p < pageCount_; ++p)
        if (resident_[p] == kQuarantined)
            out.push_back(p);
    return out;
}

Tick
RecoveryManager::issueRead(PageNum page, unsigned attempt,
                           bool background)
{
    const Tick done = ssd_.submitRead(
        storage::StorageKey{regionId_, page}, pageSize_,
        [this, page, attempt, background](storage::IoStatus status) {
            onReadDone(page, attempt, background, status);
        });
    inFlight_[page] = done;
    return done;
}

void
RecoveryManager::onReadDone(PageNum page, unsigned attempt,
                            bool background, storage::IoStatus status)
{
    // A read that completed "ok" but fails checksum verification is
    // just as unusable as a device error: feed it into the same
    // retry/skip-revisit policy.
    if (status == storage::IoStatus::ok && checksumOk(page)) {
        inFlight_.erase(page);
        markResident(page);
        // A completed slot frees capacity for the sweep.
        if (strategy_ != RestoreStrategy::demandOnly)
            pumpBackground();
        return;
    }

    if (background) {
        // Don't stall the sequential pass behind one flaky page:
        // skip it now, revisit after the rest of the sweep.  A page
        // that keeps failing across maxRevisitPasses_ revisits is
        // quarantined so the restore can still finish.
        inFlight_.erase(page);
        if (++sweepFailures_[page] > maxRevisitPasses_) {
            ++stats_.sweepRevisitExhausted;
            ctx_.stats()
                .counter("recovery.sweep_revisit_exhausted")
                .increment();
            quarantine(page);
        } else {
            ++stats_.sweepSkips;
            ctx_.stats().counter("recovery.sweep_skips").increment();
            revisit_.push_back(page);
        }
        pumpBackground();
        return;
    }

    // Demand fetch: a foreground request is blocked on this page, so
    // retry in place with a growing backoff.  Exhausting the retries
    // quarantines the page instead of killing the process: the caller
    // sees it settle and must check isQuarantined() before trusting
    // the contents.
    if (attempt >= maxReadRetries_) {
        ++stats_.demandRetryExhausted;
        ctx_.stats()
            .counter("recovery.demand_retry_exhausted")
            .increment();
        inFlight_.erase(page);
        quarantine(page);
        if (strategy_ != RestoreStrategy::demandOnly)
            pumpBackground();
        return;
    }
    ++stats_.readRetries;
    ctx_.stats().counter("recovery.read_retries").increment();
    const Tick resume =
        ctx_.now() + 20_us * (Tick{1} << std::min(attempt - 1, 6u));
    inFlight_[page] = resume;
    ctx_.events().schedule(resume, [this, page, attempt]() {
        if (resident_[page] || !inFlight_.contains(page))
            return;
        issueRead(page, attempt + 1, /*background=*/false);
    });
}

void
RecoveryManager::pumpBackground()
{
    if (!started_ || strategy_ == RestoreStrategy::demandOnly)
        return;
    while (inFlight_.size() < maxOutstandingReads_ &&
           (sweepCursor_ < pageCount_ || !revisit_.empty())) {
        PageNum page;
        if (sweepCursor_ < pageCount_) {
            page = sweepCursor_;
            // Skip pages already resident (demand-fetched) or queued.
            if (resident_[page] || inFlight_.contains(page)) {
                ++sweepCursor_;
                continue;
            }
            if (!ssd_.canAccept())
                break;
            ++sweepCursor_;
        } else {
            // Revisit pass: pages whose background read failed.
            page = revisit_.front();
            revisit_.pop_front();
            if (resident_[page] || inFlight_.contains(page))
                continue;
            if (!ssd_.canAccept()) {
                revisit_.push_front(page);
                break;
            }
        }
        issueRead(page, 1, /*background=*/true);
        ++stats_.backgroundFetches;
    }
}

void
RecoveryManager::begin()
{
    started_ = true;
    pumpBackground();
}

Tick
RecoveryManager::access(PageNum page)
{
    VIYOJIT_ASSERT(page < pageCount_, "page out of range");
    VIYOJIT_ASSERT(started_, "access before begin()");
    if (resident_[page])
        return 0;

    const Tick start = ctx_.now();
    if (strategy_ == RestoreStrategy::eager) {
        // No demand path: wait for the sweep to reach the page.
        while (!resident_[page]) {
            if (!ctx_.events().runOne())
                panic("eager restore stalled before page ", page);
        }
        return ctx_.now() - start;
    }

    // Chase the page until it lands: an in-flight read may traverse
    // several attempts (completion, backoff, resubmit), and a pending
    // background read that fails is skipped — in which case we take
    // over with a demand fetch.
    while (!resident_[page]) {
        auto it = inFlight_.find(page);
        if (it == inFlight_.end()) {
            ++stats_.demandFetches;
            issueRead(page, 1, /*background=*/false);
            it = inFlight_.find(page);
        }
        ctx_.events().runUntil(it->second);
    }
    return ctx_.now() - start;
}

void
RecoveryManager::waitUntilFullyResident()
{
    VIYOJIT_ASSERT(strategy_ != RestoreStrategy::demandOnly,
                   "demand-only restore never sweeps");
    while (!fullyResident()) {
        if (!ctx_.events().runOne())
            panic("restore stalled with ", pageCount_ - residentCount_,
                  " pages missing");
    }
}

} // namespace viyojit::core
