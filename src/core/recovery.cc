#include "core/recovery.hh"

#include <algorithm>

#include "common/logging.hh"

namespace viyojit::core
{

RecoveryManager::RecoveryManager(sim::SimContext &ctx,
                                 storage::Ssd &ssd,
                                 std::uint32_t region_id,
                                 std::uint64_t page_count,
                                 std::uint64_t page_size,
                                 RestoreStrategy strategy,
                                 unsigned max_outstanding_reads,
                                 unsigned max_read_retries)
    : ctx_(ctx),
      ssd_(ssd),
      regionId_(region_id),
      pageCount_(page_count),
      pageSize_(page_size),
      strategy_(strategy),
      maxOutstandingReads_(max_outstanding_reads),
      maxReadRetries_(max_read_retries),
      resident_(page_count, 0)
{
    if (page_count == 0)
        fatal("nothing to recover");
    if (max_outstanding_reads == 0)
        fatal("need at least one outstanding read");
    if (max_read_retries == 0)
        fatal("need at least one read attempt");
}

void
RecoveryManager::markResident(PageNum page)
{
    if (!resident_[page]) {
        resident_[page] = 1;
        ++residentCount_;
        if (residentCount_ == pageCount_)
            stats_.fullyResidentAt = ctx_.now();
    }
}

Tick
RecoveryManager::issueRead(PageNum page, unsigned attempt,
                           bool background)
{
    const Tick done = ssd_.submitRead(
        storage::StorageKey{regionId_, page}, pageSize_,
        [this, page, attempt, background](storage::IoStatus status) {
            onReadDone(page, attempt, background, status);
        });
    inFlight_[page] = done;
    return done;
}

void
RecoveryManager::onReadDone(PageNum page, unsigned attempt,
                            bool background, storage::IoStatus status)
{
    if (status == storage::IoStatus::ok) {
        inFlight_.erase(page);
        markResident(page);
        // A completed slot frees capacity for the sweep.
        if (strategy_ != RestoreStrategy::demandOnly)
            pumpBackground();
        return;
    }

    if (background) {
        // Don't stall the sequential pass behind one flaky page:
        // skip it now, revisit after the rest of the sweep.
        inFlight_.erase(page);
        ++stats_.sweepSkips;
        ctx_.stats().counter("recovery.sweep_skips").increment();
        revisit_.push_back(page);
        pumpBackground();
        return;
    }

    // Demand fetch: a foreground request is blocked on this page, so
    // retry in place with a growing backoff.
    if (attempt >= maxReadRetries_)
        fatal("demand fetch of page ", page, " failed after ",
              maxReadRetries_, " attempts");
    ++stats_.readRetries;
    ctx_.stats().counter("recovery.read_retries").increment();
    const Tick resume =
        ctx_.now() + 20_us * (Tick{1} << std::min(attempt - 1, 6u));
    inFlight_[page] = resume;
    ctx_.events().schedule(resume, [this, page, attempt]() {
        if (resident_[page] || !inFlight_.contains(page))
            return;
        issueRead(page, attempt + 1, /*background=*/false);
    });
}

void
RecoveryManager::pumpBackground()
{
    if (!started_ || strategy_ == RestoreStrategy::demandOnly)
        return;
    while (inFlight_.size() < maxOutstandingReads_ &&
           (sweepCursor_ < pageCount_ || !revisit_.empty())) {
        PageNum page;
        if (sweepCursor_ < pageCount_) {
            page = sweepCursor_;
            // Skip pages already resident (demand-fetched) or queued.
            if (resident_[page] || inFlight_.contains(page)) {
                ++sweepCursor_;
                continue;
            }
            if (!ssd_.canAccept())
                break;
            ++sweepCursor_;
        } else {
            // Revisit pass: pages whose background read failed.
            page = revisit_.front();
            revisit_.pop_front();
            if (resident_[page] || inFlight_.contains(page))
                continue;
            if (!ssd_.canAccept()) {
                revisit_.push_front(page);
                break;
            }
        }
        issueRead(page, 1, /*background=*/true);
        ++stats_.backgroundFetches;
    }
}

void
RecoveryManager::begin()
{
    started_ = true;
    pumpBackground();
}

Tick
RecoveryManager::access(PageNum page)
{
    VIYOJIT_ASSERT(page < pageCount_, "page out of range");
    VIYOJIT_ASSERT(started_, "access before begin()");
    if (resident_[page])
        return 0;

    const Tick start = ctx_.now();
    if (strategy_ == RestoreStrategy::eager) {
        // No demand path: wait for the sweep to reach the page.
        while (!resident_[page]) {
            if (!ctx_.events().runOne())
                panic("eager restore stalled before page ", page);
        }
        return ctx_.now() - start;
    }

    // Chase the page until it lands: an in-flight read may traverse
    // several attempts (completion, backoff, resubmit), and a pending
    // background read that fails is skipped — in which case we take
    // over with a demand fetch.
    while (!resident_[page]) {
        auto it = inFlight_.find(page);
        if (it == inFlight_.end()) {
            ++stats_.demandFetches;
            issueRead(page, 1, /*background=*/false);
            it = inFlight_.find(page);
        }
        ctx_.events().runUntil(it->second);
    }
    return ctx_.now() - start;
}

void
RecoveryManager::waitUntilFullyResident()
{
    VIYOJIT_ASSERT(strategy_ != RestoreStrategy::demandOnly,
                   "demand-only restore never sweeps");
    while (!fullyResident()) {
        if (!ctx_.events().runOne())
            panic("restore stalled with ", pageCount_ - residentCount_,
                  " pages missing");
    }
}

} // namespace viyojit::core
