#include "core/manager.hh"

#include <algorithm>
#include <cstring>
#include <deque>

#include "common/checksum.hh"
#include "common/logging.hh"
#include "common/pagezip.hh"

namespace viyojit::core
{

// ---------------------------------------------------------------------
// SimBackend
// ---------------------------------------------------------------------

std::uint64_t
ViyojitManager::SimBackend::pageCount() const
{
    return mgr_.capacityPages_;
}

std::uint64_t
ViyojitManager::SimBackend::pageSize() const
{
    return mgr_.config_.pageSize;
}

void
ViyojitManager::SimBackend::protectPage(PageNum page)
{
    mgr_.mmu_.protectPage(page);
}

void
ViyojitManager::SimBackend::unprotectPage(PageNum page)
{
    mgr_.mmu_.unprotectPage(page);
}

void
ViyojitManager::SimBackend::scanAndClearDirty(
    bool flush_tlb, FunctionRef<void(PageNum, bool)> visitor)
{
    mgr_.mmu_.scanAndClearDirty(0, mgr_.nextFreePage_, flush_tlb,
                                visitor,
                                mgr_.config_.legacyEpochScan);
}

Tick
ViyojitManager::SimBackend::backoffFor(unsigned attempt)
{
    // attempt is 1-based: the first retry waits base, then doubles.
    const Tick base = mgr_.config_.retryBackoffBase;
    const Tick cap = std::max<Tick>(mgr_.config_.retryBackoffCap, base);
    Tick backoff = base;
    for (unsigned i = 1; i < attempt && backoff < cap; ++i)
        backoff *= 2;
    backoff = std::min(backoff, cap);
    // Decorrelating jitter in [0, backoff/2] keeps retry storms from
    // re-synchronizing on the bandwidth channel.
    return backoff + jitterRng_.nextBounded(backoff / 2 + 1);
}

void
ViyojitManager::SimBackend::submitAttempt(PageNum page)
{
    auto it = inFlight_.find(page);
    VIYOJIT_ASSERT(it != inFlight_.end(), "attempt for idle page");
    PendingCopy &io = it->second;

    if (!mgr_.ssd_.canAccept()) {
        // Device queue saturated (retry storm): hold the attempt back
        // one backoff period; completions will free slots.
        const Tick resume =
            mgr_.ctx_.now() + mgr_.config_.retryBackoffBase;
        io.nextEvent = resume;
        const std::uint64_t generation = io.generation;
        mgr_.ctx_.events().schedule(resume, [this, page, generation]() {
            auto held = inFlight_.find(page);
            if (held == inFlight_.end() ||
                held->second.generation != generation)
                return;
            submitAttempt(page);
        });
        return;
    }

    ++io.attempts;
    const std::uint64_t generation = io.generation;
    io.submittedHash = mgr_.pageContentHash(page);
    io.submittedStored = mgr_.measuredStoredSize(page);
    const Tick done = mgr_.ssd_.submitWrite(
        mgr_.key(page), io.submittedHash,
        mgr_.config_.pageSize,
        [this, page, generation](storage::IoStatus status) {
            onAttemptComplete(page, generation, status);
        },
        io.submittedStored);
    io.nextEvent = done;
    io.completion = done;

    // Per-IO timeout: completion times are known at submit in the
    // model, so a blown deadline is detected deterministically.  The
    // host abandons the attempt at the deadline; the straggler's
    // completion is recognized by its stale generation and dropped.
    // Not armed during the power-failure flush: with nothing left to
    // serve, waiting out a straggler always beats abandoning it.
    const Tick timeout = mgr_.config_.ioTimeout;
    if (timeout != 0 && !mgr_.lastGaspFlush_ &&
        done > mgr_.ctx_.now() + timeout) {
        const Tick deadline = mgr_.ctx_.now() + timeout;
        io.nextEvent = deadline;
        mgr_.ctx_.events().schedule(deadline,
                                    [this, page, generation]() {
            onAttemptTimeout(page, generation);
        });
    }
}

void
ViyojitManager::SimBackend::onAttemptComplete(PageNum page,
                                              std::uint64_t generation,
                                              storage::IoStatus status,
                                              bool from_run)
{
    auto it = inFlight_.find(page);
    if (it == inFlight_.end() || it->second.generation != generation) {
        ++faultStats_.staleCompletions;
        mgr_.ctx_.stats().counter("io.stale_completions").increment();
        return;
    }
    if (status == storage::IoStatus::ok) {
        // Read-back verify: an ok status is the device's word; the
        // durable image is the truth.  A silent fault (bit flip,
        // dropped or misdirected write) leaves the image wrong while
        // the status channel stays clean — catch it here and push the
        // page back through the retry chain instead of committing.
        // The expectation is the hash the attempt SUBMITTED: a page
        // redirtied while the copy was in flight still verifies (the
        // old content landed intact) and stays dirty in the tracker.
        const std::uint64_t expected = it->second.submittedHash;
        if (mgr_.ssd_.durableHash(mgr_.key(page)) != expected) {
            ++faultStats_.verifyFailures;
            mgr_.ctx_.stats().counter("io.verify_failures").increment();
            if (from_run) {
                ++faultStats_.runSplits;
                mgr_.ctx_.stats().counter("io.run_splits").increment();
            }
            retryOrAbort(page);
            return;
        }
        const std::uint64_t stored = it->second.submittedStored;
        inFlight_.erase(it);
        abortedPages_.erase(page);
        mgr_.commitSidecar(page, expected, stored);
        VIYOJIT_ASSERT(client_, "persist completion without client");
        client_->onPersistComplete(page);
        return;
    }
    if (from_run) {
        // The page's slice of a coalesced run failed (bad-page remap
        // or transient error): split it out — retries run through the
        // per-page attempt chain while the rest of the run completes.
        ++faultStats_.runSplits;
        mgr_.ctx_.stats().counter("io.run_splits").increment();
    }
    retryOrAbort(page);
}

void
ViyojitManager::SimBackend::onAttemptTimeout(PageNum page,
                                             std::uint64_t generation)
{
    auto it = inFlight_.find(page);
    if (it == inFlight_.end() || it->second.generation != generation)
        return; // the attempt completed before its deadline
    if (mgr_.lastGaspFlush_) {
        // Deadline armed before the cut: let the attempt run to its
        // real completion instead of abandoning it mid-flush.
        it->second.nextEvent = it->second.completion;
        return;
    }
    ++faultStats_.timeouts;
    mgr_.ctx_.stats().counter("io.timeouts").increment();
    // Invalidate the straggler, then treat the attempt as failed.
    it->second.generation = ++nextGeneration_;
    retryOrAbort(page);
}

void
ViyojitManager::SimBackend::retryOrAbort(PageNum page)
{
    auto it = inFlight_.find(page);
    VIYOJIT_ASSERT(it != inFlight_.end(), "retry for idle page");
    PendingCopy &io = it->second;

    if (io.attempts >= mgr_.config_.maxIoRetries) {
        inFlight_.erase(it);
        abortedPages_.insert(page);
        ++faultStats_.abortedCopies;
        mgr_.ctx_.stats().counter("io.aborted_copies").increment();
        warn("page copy abandoned after ", mgr_.config_.maxIoRetries,
             " attempts (page ", page, "); left dirty");
        VIYOJIT_ASSERT(client_, "persist abort without client");
        client_->onPersistAborted(page);
        return;
    }

    ++faultStats_.retries;
    mgr_.ctx_.stats().counter("io.retries").increment();
    const Tick resume = mgr_.ctx_.now() + backoffFor(io.attempts);
    io.nextEvent = resume;
    io.generation = ++nextGeneration_;
    const std::uint64_t generation = io.generation;
    mgr_.ctx_.events().schedule(resume, [this, page, generation]() {
        auto due = inFlight_.find(page);
        if (due == inFlight_.end() ||
            due->second.generation != generation)
            return;
        submitAttempt(page);
    });
}

void
ViyojitManager::SimBackend::persistPageAsync(PageNum page)
{
    VIYOJIT_ASSERT(!inFlight_.contains(page), "double copy of a page");
    PendingCopy io;
    io.generation = ++nextGeneration_;
    inFlight_.emplace(page, io);
    submitAttempt(page);
}

void
ViyojitManager::SimBackend::persistRunAsync(PageNum first,
                                            unsigned count)
{
    VIYOJIT_ASSERT(count >= 1 && count <= maxRunPages(),
                   "run length out of range");
    for (unsigned i = 0; i < count; ++i) {
        VIYOJIT_ASSERT(!inFlight_.contains(first + i),
                       "double copy of a page");
        PendingCopy io;
        io.generation = ++nextGeneration_;
        inFlight_.emplace(first + i, io);
    }
    submitRunAttempt(first, count);
}

unsigned
ViyojitManager::SimBackend::maxRunPages() const
{
    return mgr_.config_.coalesceRuns
               ? std::max(1u, mgr_.config_.maxRunPages)
               : 1;
}

void
ViyojitManager::SimBackend::submitRunAttempt(PageNum first,
                                             unsigned count)
{
    if (!mgr_.ssd_.canAccept()) {
        // Device queue saturated: hold the whole run back one backoff
        // period, like the per-page path.
        const Tick resume =
            mgr_.ctx_.now() + mgr_.config_.retryBackoffBase;
        std::vector<std::uint64_t> generations(count);
        for (unsigned i = 0; i < count; ++i) {
            auto it = inFlight_.find(first + i);
            VIYOJIT_ASSERT(it != inFlight_.end(),
                           "run attempt for idle page");
            it->second.nextEvent = resume;
            generations[i] = it->second.generation;
        }
        mgr_.ctx_.events().schedule(
            resume,
            [this, first, count,
             generations = std::move(generations)]() {
                // Resubmit as a run only if every member survived
                // untouched; otherwise the stragglers go per-page.
                unsigned live = 0;
                for (unsigned i = 0; i < count; ++i) {
                    auto it = inFlight_.find(first + i);
                    if (it != inFlight_.end() &&
                        it->second.generation == generations[i])
                        ++live;
                }
                if (live == count) {
                    submitRunAttempt(first, count);
                    return;
                }
                for (unsigned i = 0; i < count; ++i) {
                    auto it = inFlight_.find(first + i);
                    if (it != inFlight_.end() &&
                        it->second.generation == generations[i])
                        submitAttempt(first + i);
                }
            });
        return;
    }

    std::vector<std::uint64_t> generations(count);
    std::vector<std::uint64_t> hashes(count);
    std::vector<std::uint64_t> stored(count);
    for (unsigned i = 0; i < count; ++i) {
        auto it = inFlight_.find(first + i);
        VIYOJIT_ASSERT(it != inFlight_.end(),
                       "run attempt for idle page");
        ++it->second.attempts;
        generations[i] = it->second.generation;
        hashes[i] = mgr_.pageContentHash(first + i);
        it->second.submittedHash = hashes[i];
        stored[i] = mgr_.measuredStoredSize(first + i);
        it->second.submittedStored = stored[i];
    }
    ++faultStats_.runSubmits;
    faultStats_.runPagesCoalesced.fetch_add(count,
                                            std::memory_order_relaxed);
    mgr_.ctx_.stats().counter("io.run_submits").increment();
    mgr_.ctx_.stats().counter("io.run_pages").increment(count);

    const Tick done = mgr_.ssd_.submitWriteRun(
        mgr_.key(first), count, hashes.data(), mgr_.config_.pageSize,
        [this, first, generations](unsigned i,
                                   storage::IoStatus status) {
            onAttemptComplete(first + i, generations[i], status,
                              /*from_run=*/true);
        },
        stored.data());

    // Per-IO deadline applies to the whole group: a page that blows
    // it is invalidated (generation bump) and retried alone, and the
    // group completion for that page arrives generation-stale.
    const Tick timeout = mgr_.config_.ioTimeout;
    const bool armed = timeout != 0 && !mgr_.lastGaspFlush_ &&
                       done > mgr_.ctx_.now() + timeout;
    const Tick deadline = mgr_.ctx_.now() + timeout;
    for (unsigned i = 0; i < count; ++i) {
        PendingCopy &io = inFlight_.find(first + i)->second;
        io.nextEvent = done;
        io.completion = done;
        if (armed) {
            io.nextEvent = deadline;
            const PageNum page = first + i;
            const std::uint64_t generation = io.generation;
            mgr_.ctx_.events().schedule(deadline,
                                        [this, page, generation]() {
                onAttemptTimeout(page, generation);
            });
        }
    }
}

void
ViyojitManager::SimBackend::persistPageBlocking(PageNum page)
{
    // Bounded inline retry: the blocking paths (fault-path eviction,
    // vmunmap) cannot abandon the page, so exhaustion is fatal.
    for (unsigned attempt = 1;
         attempt <= mgr_.config_.maxIoRetries; ++attempt) {
        bool ok = false;
        bool settled = false;
        const std::uint64_t expected = mgr_.pageContentHash(page);
        const std::uint64_t stored = mgr_.measuredStoredSize(page);
        const Tick done = mgr_.ssd_.submitWrite(
            mgr_.key(page), expected, mgr_.config_.pageSize,
            [&ok, &settled](storage::IoStatus status) {
                ok = status == storage::IoStatus::ok;
                settled = true;
            },
            stored);
        mgr_.ctx_.events().runUntil(done);
        VIYOJIT_ASSERT(settled, "blocking write did not complete");
        // Read-back verify, same contract as the async path: ok from
        // the device does not grant durability until the image checks.
        if (ok &&
            mgr_.ssd_.durableHash(mgr_.key(page)) != expected) {
            ok = false;
            ++faultStats_.verifyFailures;
            mgr_.ctx_.stats().counter("io.verify_failures").increment();
        }
        if (ok) {
            abortedPages_.erase(page);
            mgr_.commitSidecar(page, expected, stored);
            return;
        }
        ++faultStats_.retries;
        mgr_.ctx_.stats().counter("io.retries").increment();
        if (attempt < mgr_.config_.maxIoRetries) {
            mgr_.ctx_.events().runUntil(mgr_.ctx_.now() +
                                        backoffFor(attempt));
        }
    }
    fatal("blocking page persist failed after ",
          mgr_.config_.maxIoRetries, " attempts (page ", page, ")");
}

void
ViyojitManager::SimBackend::waitForPersist(PageNum page)
{
    // The copy may traverse several attempts (completion, backoff,
    // resubmit); chase its next state-change time until it either
    // completes or aborts.
    while (true) {
        auto it = inFlight_.find(page);
        if (it == inFlight_.end())
            return;
        mgr_.ctx_.events().runUntil(it->second.nextEvent);
    }
}

void
ViyojitManager::SimBackend::waitForAnyPersist()
{
    if (inFlight_.empty())
        return;
    Tick earliest = maxTick;
    for (const auto &[page, io] : inFlight_)
        earliest = std::min(earliest, io.nextEvent);
    mgr_.ctx_.events().runUntil(earliest);
}

unsigned
ViyojitManager::SimBackend::outstandingIos() const
{
    return static_cast<unsigned>(inFlight_.size());
}

bool
ViyojitManager::SimBackend::canSubmit() const
{
    // Leave two device slots for synchronous work (a blocking
    // eviction in the fault path, or vmunmap flushes) so a copy
    // pipeline as deep as the device queue cannot starve them.
    return mgr_.ssd_.outstanding() + 2 <=
           mgr_.ssd_.config().queueDepth;
}

// ---------------------------------------------------------------------
// ViyojitManager
// ---------------------------------------------------------------------

namespace
{

/** The section-5.4 assist implies write-through dirty bits. */
mmu::MmuCostModel
adjustCosts(const mmu::MmuCostModel &costs, const ViyojitConfig &config)
{
    mmu::MmuCostModel adjusted = costs;
    if (config.hardwareAssist)
        adjusted.writeThroughDirty = true;
    return adjusted;
}

} // namespace

ViyojitManager::ViyojitManager(sim::SimContext &ctx, storage::Ssd &ssd,
                               const ViyojitConfig &config,
                               const mmu::MmuCostModel &mmu_costs,
                               std::uint64_t capacity_pages,
                               std::uint32_t region_id)
    : ctx_(ctx),
      ssd_(ssd),
      config_(config),
      capacityPages_(capacity_pages),
      regionId_(region_id),
      mmu_(ctx, adjustCosts(mmu_costs, config)),
      backend_(*this)
{
    if (capacity_pages == 0)
        fatal("NV capacity must be non-zero");
    if (config.enforceBudget &&
        config.dirtyBudgetPages > capacity_pages) {
        warn("dirty budget exceeds capacity; clamping");
        config_.dirtyBudgetPages = capacity_pages;
    }

    data_.assign(capacity_pages * config_.pageSize, 0);
    versions_.assign(capacity_pages, 0);
    sidecar_.assign(capacity_pages, SidecarEntry{});
    zipScratch_.resize(common::pagezipBound(config_.pageSize));

    if (config_.enforceBudget) {
        controller_ =
            std::make_unique<DirtyBudgetController>(backend_, config_);
        // Even under the hardware assist, writeback-protected pages
        // fault; the controller waits out the copy and readmits.
        mmu_.setWriteFaultHandler(
            [this](PageNum page) { controller_->onWriteFault(page); });
    } else {
        baselineDirty_ = std::make_unique<DirtyPageTracker>(
            capacity_pages);
    }
}

ViyojitManager::~ViyojitManager()
{
    stop();
}

storage::StorageKey
ViyojitManager::key(PageNum page) const
{
    return storage::StorageKey{regionId_, page};
}

Addr
ViyojitManager::vmmap(std::uint64_t bytes)
{
    if (bytes == 0)
        fatal("vmmap of zero bytes");
    const std::uint64_t pages =
        (bytes + config_.pageSize - 1) / config_.pageSize;
    if (nextFreePage_ + pages > capacityPages_)
        fatal("NV capacity exhausted: need ", pages, " pages, have ",
              capacityPages_ - nextFreePage_);

    const PageNum first = nextFreePage_;
    // Paper fig. 6 step 1: regions come up write-protected so the
    // first write to every page traps.  The baseline and the
    // section-5.4 hardware assist map pages writable: the former
    // pays in battery, the latter tracks via the MMU dirty counter.
    const bool writable =
        !config_.enforceBudget || config_.hardwareAssist;
    for (PageNum p = first; p < first + pages; ++p)
        mmu_.mapPage(p, writable);
    nextFreePage_ += pages;
    return first * config_.pageSize;
}

void
ViyojitManager::vmunmap(Addr base, std::uint64_t bytes)
{
    const PageNum first = base / config_.pageSize;
    const std::uint64_t pages =
        (bytes + config_.pageSize - 1) / config_.pageSize;
    // Make the region durable before dropping it.
    for (PageNum p = first; p < first + pages; ++p) {
        if (config_.enforceBudget) {
            controller_->flushPageBlocking(p);
        } else if (baselineDirty_->isDirty(p)) {
            backend_.persistPageBlocking(p);
            baselineDirty_->markClean(p);
        }
    }
    for (PageNum p = first; p < first + pages; ++p)
        mmu_.unmapPage(p);
}

void
ViyojitManager::read(Addr addr, std::uint64_t len)
{
    mmu_.accessRange(addr, len, /*is_write=*/false, config_.pageSize);
}

void
ViyojitManager::write(Addr addr, std::uint64_t len)
{
    if (len == 0)
        return;
    const PageNum first = addr / config_.pageSize;
    const PageNum last = (addr + len - 1) / config_.pageSize;
    for (PageNum p = first; p <= last; ++p) {
        mmu_.access(p, /*is_write=*/true);
        ++versions_[p];
        if (!config_.enforceBudget) {
            baselineDirty_->markDirty(p);
        } else if (config_.hardwareAssist &&
                   !controller_->tracker().isDirty(p) &&
                   !controller_->isInFlight(p)) {
            // Section 5.4: the MMU counted a new dirty page.  The
            // threshold interrupt costs OS time only when room must
            // be made; mere counting is free.
            if (controller_->tracker().count() >=
                controller_->dirtyBudget()) {
                ctx_.clock().advance(
                    mmu_.costs().assistInterruptCost);
            }
            controller_->onHardwareDirty(p);
        }
    }
}

void
ViyojitManager::memWrite(Addr addr, const void *src, std::uint64_t len)
{
    VIYOJIT_ASSERT(addr + len <= data_.size(), "NV write out of range");
    // Fault and copy one page at a time.  A later page's admission can
    // block and run the event loop, where an eviction may pick an
    // earlier page of this range as victim; its bytes must already be
    // in memory by then, or the copy persists the pre-write content
    // and the page goes clean with the new bytes never durable.
    const char *bytes = static_cast<const char *>(src);
    std::uint64_t off = 0;
    while (off < len) {
        const Addr at = addr + off;
        const std::uint64_t chunk =
            std::min(len - off,
                     config_.pageSize - at % config_.pageSize);
        write(at, chunk);
        std::memcpy(data_.data() + at, bytes + off, chunk);
        off += chunk;
    }
}

void
ViyojitManager::memRead(Addr addr, void *dst, std::uint64_t len) const
{
    VIYOJIT_ASSERT(addr + len <= data_.size(), "NV read out of range");
    const_cast<ViyojitManager *>(this)->read(addr, len);
    std::memcpy(dst, data_.data() + addr, len);
}

char *
ViyojitManager::rawData(Addr addr)
{
    VIYOJIT_ASSERT(addr < data_.size(), "NV address out of range");
    return data_.data() + addr;
}

const char *
ViyojitManager::rawData(Addr addr) const
{
    VIYOJIT_ASSERT(addr < data_.size(), "NV address out of range");
    return data_.data() + addr;
}

void
ViyojitManager::scheduleNextEpoch()
{
    const std::uint64_t generation = epochGeneration_;
    ctx_.events().scheduleAfter(config_.epochLength,
                                [this, generation]() {
        if (!running_ || generation != epochGeneration_)
            return;
        controller_->onEpochBoundary();
        scheduleNextEpoch();
    });
}

void
ViyojitManager::start()
{
    if (!config_.enforceBudget || running_)
        return;
    running_ = true;
    ++epochGeneration_;
    scheduleNextEpoch();
}

void
ViyojitManager::stop()
{
    running_ = false;
    ++epochGeneration_;
}

void
ViyojitManager::processEvents()
{
    ctx_.events().runUntil(ctx_.now());
}

std::uint64_t
ViyojitManager::dirtyPageCount() const
{
    return config_.enforceBudget ? controller_->tracker().count()
                                 : baselineDirty_->count();
}

std::uint64_t
ViyojitManager::dirtyBytes() const
{
    return dirtyPageCount() * config_.pageSize;
}

FlushReport
ViyojitManager::powerFailureFlush()
{
    stop();
    lastGaspFlush_ = true;
    FlushReport report;
    report.dirtyPagesAtFailure = dirtyPageCount();
    const Tick start = ctx_.now();

    if (config_.enforceBudget) {
        controller_->flushAllDirty();
    } else {
        // Baseline: flush the entire dirty set, pipelining IOs up to
        // the device queue depth.  Failed attempts re-queue until the
        // page lands (the baseline has no budget to protect, but the
        // image must still verify).
        std::vector<PageNum> pages = baselineDirty_->dirtyPages();
        std::deque<PageNum> redo;
        std::size_t submitted = 0;
        while (submitted < pages.size() || !redo.empty() ||
               ssd_.outstanding() > 0) {
            while ((submitted < pages.size() || !redo.empty()) &&
                   ssd_.canAccept()) {
                PageNum p;
                if (!redo.empty()) {
                    p = redo.front();
                    redo.pop_front();
                } else {
                    p = pages[submitted++];
                }
                const std::uint64_t expected = pageContentHash(p);
                const std::uint64_t stored = measuredStoredSize(p);
                ssd_.submitWrite(key(p), expected, config_.pageSize,
                                 [this, p, expected, stored,
                                  &redo](storage::IoStatus status) {
                                     // Same read-back verify as the
                                     // budgeted path: an ok with a
                                     // wrong image re-queues.
                                     if (status ==
                                             storage::IoStatus::ok &&
                                         ssd_.durableHash(key(p)) ==
                                             expected) {
                                         baselineDirty_->markClean(p);
                                         commitSidecar(p, expected,
                                                       stored);
                                     } else {
                                         redo.push_back(p);
                                     }
                                 },
                                 stored);
            }
            if (ssd_.outstanding() > 0) {
                if (!ctx_.events().runOne())
                    break;
            }
        }
    }

    lastGaspFlush_ = false;
    report.bytesFlushed =
        report.dirtyPagesAtFailure * config_.pageSize;
    report.flushDuration = ctx_.now() - start;
    return report;
}

bool
ViyojitManager::verifyDurability() const
{
    for (PageNum p = 0; p < nextFreePage_; ++p) {
        if (versions_[p] == 0)
            continue;
        if (ssd_.durableHash(key(p)) != pageContentHash(p))
            return false;
    }
    return true;
}

void
ViyojitManager::commitSidecar(PageNum page, std::uint64_t crc,
                              std::uint64_t stored_len)
{
    VIYOJIT_ASSERT(page < sidecar_.size(), "page out of range");
    sidecar_[page] =
        SidecarEntry{crc, ++nextCommitSeq_, stored_len, true};
}

const ViyojitManager::SidecarEntry &
ViyojitManager::sidecarEntry(PageNum page) const
{
    VIYOJIT_ASSERT(page < sidecar_.size(), "page out of range");
    return sidecar_[page];
}

bool
ViyojitManager::pageSettled(PageNum page) const
{
    if (backend_.wasAborted(page))
        return false;
    if (config_.enforceBudget) {
        return !controller_->tracker().isDirty(page) &&
               !controller_->isInFlight(page);
    }
    return !baselineDirty_->isDirty(page);
}

DurabilityAuditReport
ViyojitManager::verifyDurabilityChecked() const
{
    DurabilityAuditReport report;
    for (PageNum p = 0; p < nextFreePage_; ++p) {
        if (versions_[p] == 0)
            continue;
        ++report.pagesChecked;
        const std::uint64_t live = pageContentHash(p);
        const std::uint64_t durable = ssd_.durableHash(key(p));
        const SidecarEntry &meta = sidecar_[p];

        if (durable == live) {
            ++report.verifiedPages;
            if (!meta.valid || meta.crc != live)
                ++report.staleMetaPages;
            continue;
        }

        ++report.mismatchedPages;
        if (meta.valid && meta.crc == live) {
            // The flush committed exactly this content after a
            // verified read-back; the medium has since diverged.
            ++report.silentCorruptPages;
        } else {
            // No commit covers the live content: the write was torn
            // off mid-flight (cut, abort) before its commit point.
            ++report.tornPages;
        }

        const bool attributed =
            ssd_.corruptionKind(key(p)) !=
                storage::SilentFaultKind::none ||
            backend_.wasAborted(p) || !pageSettled(p);
        if (attributed)
            ++report.attributedPages;
        else
            ++report.unattributedPages;
    }
    return report;
}

bool
ViyojitManager::repairPageBlocking(PageNum page)
{
    for (unsigned attempt = 1; attempt <= config_.maxIoRetries;
         ++attempt) {
        if (!ssd_.canAccept()) {
            ctx_.events().runUntil(ctx_.now() +
                                   config_.retryBackoffBase);
            continue;
        }
        bool ok = false;
        const std::uint64_t expected = pageContentHash(page);
        const std::uint64_t stored = measuredStoredSize(page);
        const Tick done = ssd_.submitWrite(
            key(page), expected, config_.pageSize,
            [&ok](storage::IoStatus status) {
                ok = status == storage::IoStatus::ok;
            },
            stored);
        ctx_.events().runUntil(done);
        if (ok && ssd_.durableHash(key(page)) == expected) {
            commitSidecar(page, expected, stored);
            return true;
        }
    }
    return false;
}

ScrubReport
ViyojitManager::scrubPass(std::uint64_t max_pages)
{
    ScrubReport report;
    if (nextFreePage_ == 0 || max_pages == 0)
        return report;

    // Budget awareness: scrubbing is strictly lower priority than
    // making flush headroom.  Yield the whole pass while the dirty
    // set is within two pages of the budget or the device queue is
    // full — the controller needs every slot it can get there.
    if (config_.enforceBudget &&
        controller_->tracker().count() + 2 >=
            controller_->dirtyBudget()) {
        ++report.skippedBudget;
        return report;
    }
    if (!ssd_.canAccept()) {
        ++report.skippedBudget;
        return report;
    }

    for (std::uint64_t i = 0;
         i < nextFreePage_ && report.scanned < max_pages; ++i) {
        const PageNum p = scrubCursor_;
        scrubCursor_ = (scrubCursor_ + 1) % nextFreePage_;
        if (versions_[p] == 0)
            continue;
        if (!pageSettled(p)) {
            ++report.skippedBusy;
            continue;
        }
        ++report.scanned;
        const std::uint64_t live = pageContentHash(p);
        if (ssd_.durableHash(key(p)) == live)
            continue;
        // A settled page's DRAM copy matches its last verified flush,
        // so DRAM is the good replica: repair the durable image from
        // it (this also heals misdirected-write victims, whose own
        // writes were never at fault).
        ++report.mismatches;
        ctx_.stats().counter("scrub.mismatches").increment();
        if (repairPageBlocking(p)) {
            ++report.repaired;
            ctx_.stats().counter("scrub.repairs").increment();
        } else {
            ++report.repairFailures;
            warn("scrub could not repair page ", p,
                 " after bounded retries; left corrupt");
        }
    }
    return report;
}

void
ViyojitManager::setDirtyBudget(std::uint64_t pages)
{
    if (!config_.enforceBudget)
        fatal("baseline mode has no dirty budget");
    config_.dirtyBudgetPages = pages;
    controller_->setDirtyBudget(pages);
}

DirtyBudgetController &
ViyojitManager::controller()
{
    VIYOJIT_ASSERT(controller_, "baseline mode has no controller");
    return *controller_;
}

const DirtyBudgetController &
ViyojitManager::controller() const
{
    VIYOJIT_ASSERT(controller_, "baseline mode has no controller");
    return *controller_;
}

std::uint64_t
ViyojitManager::pageVersion(PageNum page) const
{
    VIYOJIT_ASSERT(page < versions_.size(), "page out of range");
    return versions_[page];
}

std::uint64_t
ViyojitManager::writtenPageCount() const
{
    std::uint64_t count = 0;
    for (PageNum p = 0; p < nextFreePage_; ++p)
        count += versions_[p] > 0;
    return count;
}

std::uint64_t
ViyojitManager::pageContentHash(PageNum page) const
{
    VIYOJIT_ASSERT(page < capacityPages_, "page out of range");
    const char *bytes = data_.data() + page * config_.pageSize;
    return common::crc32c(bytes, config_.pageSize);
}

std::uint64_t
ViyojitManager::measuredStoredSize(PageNum page)
{
    VIYOJIT_ASSERT(page < capacityPages_, "page out of range");
    if (!ssd_.config().enableCompression)
        return 0;
    const std::uint64_t ps = config_.pageSize;
    const char *bytes = data_.data() + page * ps;
    const std::uint64_t stored = common::pagezipCompress(
        bytes, ps, zipScratch_.data(), zipScratch_.size());
    // Record what the flush path actually ships (bypass = raw) so
    // the budget EWMA never sees a rosier ratio than the device.
    const std::uint64_t shipped = stored != 0 ? stored : ps;
    if (config_.enforceBudget)
        controller_->notePageCompression(page, shipped, ps);
    else
        baselineDirty_->recordCompressibility(page, shipped, ps);
    return stored;
}

} // namespace viyojit::core
